#include "sim/memory.h"

#include <gtest/gtest.h>

namespace sasynth {
namespace {

TEST(DdrModel, BytesPerCycle) {
  FpgaDevice device = arria10_gt1150();
  device.bw_total_gbs = 19.2;
  device.bw_port_gbs = 12.8;
  const DdrModel ddr(device, 200.0);  // 200 MHz
  EXPECT_NEAR(ddr.bytes_per_cycle_total(), 19.2e9 / 200e6, 1e-9);
  EXPECT_NEAR(ddr.bytes_per_cycle_port(), 12.8e9 / 200e6, 1e-9);
}

TEST(DdrModel, PortCycles) {
  FpgaDevice device = tiny_test_device();
  device.bw_port_gbs = 2.0;
  const DdrModel ddr(device, 200.0);  // 10 bytes/cycle per port
  EXPECT_EQ(ddr.port_cycles(0.0), 0);
  EXPECT_EQ(ddr.port_cycles(1.0), 1);
  EXPECT_EQ(ddr.port_cycles(10.0), 1);
  EXPECT_EQ(ddr.port_cycles(11.0), 2);
  EXPECT_EQ(ddr.port_cycles(100.0), 10);
}

TEST(DdrModel, AggregateLimitDominatesManyStreams) {
  FpgaDevice device = tiny_test_device();
  device.bw_total_gbs = 4.0;  // 20 B/cycle @ 200 MHz
  device.bw_port_gbs = 2.0;   // 10 B/cycle
  const DdrModel ddr(device, 200.0);
  // Three streams of 100 B: per-port 10 cycles each, aggregate 300/20 = 15.
  EXPECT_EQ(ddr.transfer_cycles({100.0, 100.0, 100.0}), 15);
}

TEST(DdrModel, PortLimitDominatesSkewedStreams) {
  FpgaDevice device = tiny_test_device();
  device.bw_total_gbs = 4.0;
  device.bw_port_gbs = 2.0;
  const DdrModel ddr(device, 200.0);
  // One big stream: port bound 200/10 = 20 > aggregate 210/20 = 11.
  EXPECT_EQ(ddr.transfer_cycles({200.0, 5.0, 5.0}), 20);
}

TEST(DdrModel, EmptyTransferIsFree) {
  const DdrModel ddr(tiny_test_device(), 100.0);
  EXPECT_EQ(ddr.transfer_cycles({}), 0);
  EXPECT_EQ(ddr.transfer_cycles({0.0, 0.0}), 0);
}

TEST(DdrModel, FrequencyScalesCycleCounts) {
  FpgaDevice device = tiny_test_device();
  const DdrModel slow(device, 100.0);
  const DdrModel fast(device, 400.0);
  // Higher clock => fewer bytes per cycle => more cycles for the same bytes.
  EXPECT_GT(fast.transfer_cycles({10000.0}), slow.transfer_cycles({10000.0}));
}

}  // namespace
}  // namespace sasynth
