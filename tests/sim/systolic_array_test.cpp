#include "sim/systolic_array.h"

#include <gtest/gtest.h>

#include "core/perf_model.h"
#include "loopnest/conv_nest.h"
#include "loopnest/reuse.h"
#include "core/mapping.h"
#include "nn/network.h"
#include "util/rng.h"

namespace sasynth {
namespace {

DesignPoint make_design(const LoopNest& nest, SystolicMapping mapping,
                        ArrayShape shape, std::vector<std::int64_t> middle) {
  return DesignPoint(nest, mapping, shape, std::move(middle));
}

TEST(SystolicSim, MatchesReferenceOnCanonicalMapping) {
  const ConvLayerDesc layer = make_conv("sim", 8, 6, 5, 3);
  const LoopNest nest = build_conv_nest(layer);
  Rng rng(101);
  const ConvData data = make_random_conv_data(layer, rng);
  const DesignPoint design = make_design(
      nest, SystolicMapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI},
      ArrayShape{3, 2, 4}, {2, 2, 2, 5, 3, 3});
  const SimResult result = simulate_systolic(nest, design, layer, data);
  const Tensor ref = reference_conv(layer, data);
  EXPECT_LT(Tensor::max_abs_diff(result.output, ref), 1e-3F)
      << result.summary();
}

TEST(SystolicSim, ActiveMacsEqualEffectiveIterations) {
  // Every original iteration executes exactly once: the measured DSP
  // efficiency equals the analytical Eff (Eq. 1).
  const ConvLayerDesc layer = make_conv("eff", 8, 6, 5, 3);
  const LoopNest nest = build_conv_nest(layer);
  Rng rng(7);
  const ConvData data = make_random_conv_data(layer, rng);
  const DesignPoint design = make_design(
      nest, SystolicMapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI},
      ArrayShape{4, 2, 4}, {1, 2, 2, 5, 3, 3});
  const SimResult result = simulate_systolic(nest, design, layer, data);
  EXPECT_EQ(result.active_macs, nest.total_iterations());
  EXPECT_NEAR(result.measured_efficiency(),
              dsp_efficiency(nest, design), 1e-12);
}

TEST(SystolicSim, CycleCountMatchesModel) {
  const ConvLayerDesc layer = make_conv("cyc", 8, 6, 5, 3);
  const LoopNest nest = build_conv_nest(layer);
  const ConvData data = make_conv_data(layer);
  const DesignPoint design = make_design(
      nest, SystolicMapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI},
      ArrayShape{3, 2, 4}, {2, 2, 2, 5, 3, 3});
  const SimResult result = simulate_systolic(nest, design, layer, data);
  EXPECT_EQ(result.pipelined_cycles, modeled_compute_cycles(nest, design));
}

TEST(SystolicSim, AllFeasibleMappingsProduceCorrectOutput) {
  // The strongest architecture test: for every feasible mapping the shifted
  // dataflow must still compute the exact convolution.
  const ConvLayerDesc layer = make_conv("all", 6, 4, 4, 3);
  const LoopNest nest = build_conv_nest(layer);
  Rng rng(31);
  const ConvData data = make_random_conv_data(layer, rng);
  const Tensor ref = reference_conv(layer, data);
  const ReuseMatrix reuse = analyze_reuse(nest);
  const std::vector<SystolicMapping> mappings =
      enumerate_feasible_mappings(nest, reuse);
  ASSERT_EQ(mappings.size(), 12U);
  for (const SystolicMapping& mapping : mappings) {
    const DesignPoint design =
        make_design(nest, mapping, ArrayShape{2, 3, 2}, {2, 1, 2, 2, 2, 2});
    const SimResult result = simulate_systolic(nest, design, layer, data);
    EXPECT_LT(Tensor::max_abs_diff(result.output, ref), 1e-3F)
        << mapping.to_string(nest);
  }
}

TEST(SystolicSim, NonDivisibleShapesStillCorrect) {
  // Shape extents that do not divide the trip counts exercise the padding
  // path (zero-injection) — results must stay exact.
  const ConvLayerDesc layer = make_conv("pad", 5, 7, 5, 3);
  const LoopNest nest = build_conv_nest(layer);
  Rng rng(43);
  const ConvData data = make_random_conv_data(layer, rng);
  const Tensor ref = reference_conv(layer, data);
  const DesignPoint design = make_design(
      nest, SystolicMapping{ConvLoops::kO, ConvLoops::kR, ConvLoops::kI},
      ArrayShape{3, 4, 4}, {2, 1, 4, 1, 2, 2});
  const SimResult result = simulate_systolic(nest, design, layer, data);
  EXPECT_LT(Tensor::max_abs_diff(result.output, ref), 1e-3F);
  // Padding wastes slots: efficiency strictly below 1.
  EXPECT_LT(result.measured_efficiency(), 1.0);
  EXPECT_NEAR(result.measured_efficiency(), dsp_efficiency(nest, design),
              1e-12);
}

TEST(SystolicSim, StridedConvolutionCorrect) {
  const ConvLayerDesc layer = make_conv("stride", 4, 4, 4, 3, /*stride=*/2);
  const LoopNest nest = build_conv_nest(layer);
  Rng rng(53);
  const ConvData data = make_random_conv_data(layer, rng);
  const Tensor ref = reference_conv(layer, data);
  const DesignPoint design = make_design(
      nest, SystolicMapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI},
      ArrayShape{2, 2, 2}, {2, 2, 2, 4, 3, 3});
  const SimResult result = simulate_systolic(nest, design, layer, data);
  EXPECT_LT(Tensor::max_abs_diff(result.output, ref), 1e-3F);
}

TEST(SystolicSim, WavefrontActivityMatchesFig3) {
  // Fig. 3: on a 3x3 array, PEs activate along anti-diagonals; all 9 PEs are
  // active from cycle 4 (0-indexed; the paper counts "after five cycles").
  const ConvLayerDesc layer = make_conv("fig3", 4, 3, 4, 2);
  const LoopNest nest = build_conv_nest(layer);
  const ConvData data = make_conv_data(layer);
  const DesignPoint design = make_design(
      nest, SystolicMapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI},
      ArrayShape{3, 3, 2}, {1, 2, 2, 4, 2, 2});
  SimOptions options;
  options.record_first_block_activity = true;
  const SimResult result = simulate_systolic(nest, design, layer, data, options);
  const std::vector<std::int64_t>& activity = result.first_block_active_pes;
  ASSERT_GE(activity.size(), 6U);
  // A PE is active at cycle t when 0 <= t - x - y < M; with M >> 5 the count
  // at cycle t is |{(x,y) : x + y <= t}|.
  EXPECT_EQ(activity[0], 1);  // PE(0,0) only
  EXPECT_EQ(activity[1], 3);
  EXPECT_EQ(activity[2], 6);
  EXPECT_EQ(activity[3], 8);
  EXPECT_EQ(activity[4], 9);  // fully active after five cycles (Fig. 3)
  // Ramp-down mirrors ramp-up at the end of the block.
  EXPECT_EQ(activity.back(), 1);
}

TEST(SystolicSim, SingleWavefrontBlock) {
  // Degenerate tiling: every middle bound 1 (one wavefront per block).
  const ConvLayerDesc layer = make_conv("deg", 2, 2, 2, 2);
  const LoopNest nest = build_conv_nest(layer);
  Rng rng(61);
  const ConvData data = make_random_conv_data(layer, rng);
  const DesignPoint design = make_design(
      nest, SystolicMapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI},
      ArrayShape{2, 2, 2}, {1, 1, 1, 1, 1, 1});
  const SimResult result = simulate_systolic(nest, design, layer, data);
  EXPECT_LT(Tensor::max_abs_diff(result.output, reference_conv(layer, data)),
            1e-4F);
}

TEST(SystolicSim, OneByOneArray) {
  // A 1x1x1 "array" degenerates to a sequential MAC unit — still correct.
  const ConvLayerDesc layer = make_conv("seq", 2, 2, 3, 2);
  const LoopNest nest = build_conv_nest(layer);
  Rng rng(71);
  const ConvData data = make_random_conv_data(layer, rng);
  const DesignPoint design = make_design(
      nest, SystolicMapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI},
      ArrayShape{1, 1, 1}, {2, 2, 3, 3, 2, 2});
  const SimResult result = simulate_systolic(nest, design, layer, data);
  EXPECT_LT(Tensor::max_abs_diff(result.output, reference_conv(layer, data)),
            1e-4F);
  EXPECT_NEAR(result.measured_efficiency(), 1.0, 1e-12);
}

TEST(SystolicSimGeneric, MatrixMultiplyOnTheArray) {
  // The generic entry point runs non-convolution nests: classic systolic
  // matmul C[i][j] += A[i][k] * B[k][j], verified against a plain loop.
  LoopNest nest;
  nest.add_loop("i", 7);
  nest.add_loop("j", 6);
  nest.add_loop("k", 9);
  AccessFunction c;
  c.array = "Cm";
  c.indices.push_back(AffineExpr::term(3, 0));
  c.indices.push_back(AffineExpr::term(3, 1));
  nest.add_access(ArrayAccess{c, AccessRole::kReduce});
  AccessFunction af;
  af.array = "A";
  af.indices.push_back(AffineExpr::term(3, 0));
  af.indices.push_back(AffineExpr::term(3, 2));
  nest.add_access(ArrayAccess{af, AccessRole::kRead});
  AccessFunction bf;
  bf.array = "B";
  bf.indices.push_back(AffineExpr::term(3, 2));
  bf.indices.push_back(AffineExpr::term(3, 1));
  nest.add_access(ArrayAccess{bf, AccessRole::kRead});

  Rng rng(7);
  Tensor a({7, 9});
  Tensor b({9, 6});
  a.fill_random(rng);
  b.fill_random(rng);
  Tensor ref({7, 6});
  for (std::int64_t i = 0; i < 7; ++i) {
    for (std::int64_t j = 0; j < 6; ++j) {
      float acc = 0.0F;
      for (std::int64_t k = 0; k < 9; ++k) acc += a.at(i, k) * b.at(k, j);
      ref.at(i, j) = acc;
    }
  }

  const ReuseMatrix reuse = analyze_reuse(nest);
  for (const SystolicMapping& mapping :
       enumerate_feasible_mappings(nest, reuse)) {
    const DesignPoint design(nest, mapping, ArrayShape{3, 2, 4}, {2, 2, 2});
    Tensor out({7, 6});
    std::vector<const Tensor*> operands{nullptr, &a, &b};
    const SimResult sim = simulate_systolic_nest(nest, design, operands, &out);
    EXPECT_LT(Tensor::max_abs_diff(sim.output, ref), 1e-4F)
        << mapping.to_string(nest);
    EXPECT_EQ(sim.active_macs, nest.total_iterations());
  }
}

TEST(SystolicSim, SkewErrorInjectionBreaksResults) {
  // Failure injection: desynchronizing the weight stream by one cycle must
  // corrupt the output — evidence the correctness checks actually exercise
  // the systolic timing, not just the arithmetic.
  const ConvLayerDesc layer = make_conv("skew", 6, 4, 4, 3);
  const LoopNest nest = build_conv_nest(layer);
  Rng rng(83);
  const ConvData data = make_random_conv_data(layer, rng);
  const Tensor ref = reference_conv(layer, data);
  const DesignPoint design = make_design(
      nest, SystolicMapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI},
      ArrayShape{2, 3, 2}, {2, 3, 2, 4, 3, 3});

  SimOptions correct;
  EXPECT_LT(Tensor::max_abs_diff(
                simulate_systolic(nest, design, layer, data, correct).output,
                ref),
            1e-3F);
  for (const std::int64_t offset : {-1LL, 1LL, 2LL}) {
    SimOptions broken;
    broken.inject_skew_error = offset;
    const SimResult result =
        simulate_systolic(nest, design, layer, data, broken);
    EXPECT_GT(Tensor::max_abs_diff(result.output, ref), 1e-2F)
        << "skew offset " << offset << " went undetected";
  }
}

TEST(SystolicSim, SummaryFormat) {
  const ConvLayerDesc layer = make_conv("sum", 2, 2, 2, 2);
  const LoopNest nest = build_conv_nest(layer);
  const ConvData data = make_conv_data(layer);
  const DesignPoint design = make_design(
      nest, SystolicMapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI},
      ArrayShape{2, 2, 2}, {1, 1, 1, 2, 1, 1});
  const SimResult result = simulate_systolic(nest, design, layer, data);
  EXPECT_NE(result.summary().find("blocks"), std::string::npos);
  EXPECT_NE(result.summary().find("eff"), std::string::npos);
}

}  // namespace
}  // namespace sasynth
