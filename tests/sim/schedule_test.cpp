#include "sim/schedule.h"

#include <gtest/gtest.h>

#include <set>

#include "loopnest/conv_nest.h"
#include "nn/layer.h"

namespace sasynth {
namespace {

class ScheduleTest : public ::testing::Test {
 protected:
  ScheduleTest()
      : layer_(make_conv("s", 8, 6, 5, 3)), nest_(build_conv_nest(layer_)) {}

  DesignPoint design(ArrayShape shape, std::vector<std::int64_t> middle) const {
    return DesignPoint(
        nest_, SystolicMapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI},
        shape, std::move(middle));
  }

  ConvLayerDesc layer_;
  LoopNest nest_;
};

TEST_F(ScheduleTest, BlockAndWavefrontCounts) {
  // t = (o:3, c:2, i:4); s = (2, 1, 1, 5, 3, 3).
  const DesignPoint d = design(ArrayShape{3, 2, 4}, {2, 1, 1, 5, 3, 3});
  const BlockSchedule schedule(nest_, d);
  // Outer trips: o: ceil(6/6)=1, i: ceil(8/4)=2, c: ceil(5/2)=3 wait c block
  // = 1*2 = 2 -> ceil(5/2)=3; r: ceil(5/5)=1; p,q: 1.
  EXPECT_EQ(schedule.num_blocks(), 1 * 2 * 3 * 1 * 1 * 1);
  EXPECT_EQ(schedule.full_block_wavefronts(), 2 * 5 * 3 * 3);
  // Total wavefronts = prod(granules) = ceil(6/3)*ceil(8/4)*ceil(5/2)*5*3*3.
  EXPECT_EQ(schedule.total_wavefronts(), 2LL * 2 * 3 * 5 * 3 * 3);
}

TEST_F(ScheduleTest, BoundaryBlocksClip) {
  const DesignPoint d = design(ArrayShape{3, 2, 4}, {2, 1, 1, 5, 3, 3});
  const BlockSchedule schedule(nest_, d);
  std::int64_t sum = 0;
  for (std::int64_t b = 0; b < schedule.num_blocks(); ++b) {
    EXPECT_LE(schedule.wavefronts(b), schedule.full_block_wavefronts());
    sum += schedule.wavefronts(b);
  }
  EXPECT_EQ(sum, schedule.total_wavefronts());
  // The last block along c (granules 3, s_c = 1 per block... c blocks of 1
  // granule each) — actually clip shows along o: granules(o)=2, s_o=2 -> one
  // block holds both granules; no clip there. c: 3 blocks x 1 granule. The
  // clipped loop is none here; use a clipping config below.
}

TEST_F(ScheduleTest, ClippedMiddleRadices) {
  // o: trip 6, t=3 -> 2 granules; s_o = 4 covers more than available, so the
  // single block clips to 2.
  const DesignPoint d = design(ArrayShape{3, 2, 4}, {4, 1, 1, 5, 3, 3});
  const BlockSchedule schedule(nest_, d);
  const std::vector<std::int64_t> radices = schedule.middle_radices(0);
  EXPECT_EQ(radices[ConvLoops::kO], 2);  // clipped from 4
  EXPECT_EQ(radices[ConvLoops::kR], 5);
  EXPECT_EQ(schedule.wavefronts(0), 2 * 5 * 3 * 3);
}

TEST_F(ScheduleTest, DecompositionsRoundTrip) {
  const DesignPoint d = design(ArrayShape{3, 2, 4}, {2, 1, 1, 5, 3, 3});
  const BlockSchedule schedule(nest_, d);
  for (std::int64_t b = 0; b < schedule.num_blocks(); ++b) {
    const auto g = schedule.decompose_block(b);
    // Recompose in the same mixed radix.
    std::int64_t recomposed = 0;
    for (std::size_t l = 0; l < g.size(); ++l) {
      recomposed = recomposed * d.tiling().outer_trip(nest_, l) + g[l];
    }
    EXPECT_EQ(recomposed, b);
  }
}

TEST_F(ScheduleTest, EveryIterationExecutedExactlyOnce) {
  // The fundamental schedule invariant: over all (block, m, x, y, v), every
  // point of the iteration domain appears exactly once among the valid slots.
  const DesignPoint d = design(ArrayShape{3, 2, 4}, {2, 2, 2, 5, 3, 3});
  const BlockSchedule schedule(nest_, d);
  std::set<std::vector<std::int64_t>> seen;
  std::int64_t valid_count = 0;
  std::vector<std::int64_t> iters;
  for (std::int64_t b = 0; b < schedule.num_blocks(); ++b) {
    for (std::int64_t m = 0; m < schedule.wavefronts(b); ++m) {
      for (std::int64_t x = 0; x < 3; ++x) {
        for (std::int64_t y = 0; y < 2; ++y) {
          for (std::int64_t v = 0; v < 4; ++v) {
            if (schedule.global_iters(b, m, x, y, v, iters)) {
              ++valid_count;
              EXPECT_TRUE(seen.insert(iters).second)
                  << "duplicate iteration";
            }
          }
        }
      }
    }
  }
  EXPECT_EQ(valid_count, nest_.total_iterations());
  EXPECT_EQ(static_cast<std::int64_t>(seen.size()), nest_.total_iterations());
}

TEST_F(ScheduleTest, CycleOfSkew) {
  EXPECT_EQ(BlockSchedule::cycle_of(0, 0, 0), 0);
  EXPECT_EQ(BlockSchedule::cycle_of(0, 2, 2), 4);
  EXPECT_EQ(BlockSchedule::cycle_of(5, 1, 3), 9);
}

TEST_F(ScheduleTest, BlockSpanCycles) {
  const DesignPoint d = design(ArrayShape{3, 2, 4}, {2, 1, 1, 5, 3, 3});
  const BlockSchedule schedule(nest_, d);
  EXPECT_EQ(schedule.block_span_cycles(0),
            schedule.wavefronts(0) + 3 + 2 - 2);
}

}  // namespace
}  // namespace sasynth
