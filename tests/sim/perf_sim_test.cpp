#include "sim/perf_sim.h"

#include <gtest/gtest.h>

#include "core/perf_model.h"
#include "loopnest/conv_nest.h"
#include "nn/network.h"

namespace sasynth {
namespace {

class PerfSimTest : public ::testing::Test {
 protected:
  PerfSimTest()
      : layer_(alexnet_conv5()),
        nest_(build_conv_nest(layer_)),
        device_(arria10_gt1150()) {}

  DesignPoint design(std::vector<std::int64_t> middle) const {
    return DesignPoint(
        nest_, SystolicMapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI},
        ArrayShape{11, 13, 8}, std::move(middle));
  }

  ConvLayerDesc layer_;
  LoopNest nest_;
  FpgaDevice device_;
};

TEST_F(PerfSimTest, ComputeBoundMatchesModelWithin2Percent) {
  // The <2% model-vs-board claim (Fig. 7b): on a compute-bound design the
  // block-pipeline simulator must land within 2% of min(PT, MT).
  const DesignPoint d = design({4, 4, 1, 13, 3, 3});
  PerfSimOptions options;
  options.freq_mhz = 280.0;
  const PerfSimResult sim =
      simulate_performance(nest_, d, device_, DataType::kFloat32, options);
  const PerfEstimate model =
      estimate_performance(nest_, d, device_, DataType::kFloat32, 280.0);
  EXPECT_FALSE(sim.memory_bound);
  EXPECT_NEAR(sim.achieved_gops, model.throughput_gops,
              0.02 * model.throughput_gops);
}

TEST_F(PerfSimTest, MemoryBoundMatchesModel) {
  const DesignPoint d = design({1, 1, 1, 2, 1, 1});
  PerfSimOptions options;
  options.freq_mhz = 280.0;
  options.ddr_overhead_cycles = 0;  // isolate the bandwidth model
  const PerfSimResult sim =
      simulate_performance(nest_, d, device_, DataType::kFloat32, options);
  const PerfEstimate model =
      estimate_performance(nest_, d, device_, DataType::kFloat32, 280.0);
  EXPECT_TRUE(sim.memory_bound);
  EXPECT_TRUE(model.memory_bound);
  EXPECT_NEAR(sim.achieved_gops, model.throughput_gops,
              0.05 * model.throughput_gops);
}

TEST_F(PerfSimTest, StallAccounting) {
  const DesignPoint d = design({1, 1, 1, 2, 1, 1});
  const PerfSimResult sim = simulate_performance(nest_, d, device_,
                                                 DataType::kFloat32, {});
  EXPECT_GT(sim.stall_cycles, 0);
  // Steady streaming: total = all wavefronts + stalls + skew (compute
  // already includes the skew).
  EXPECT_EQ(sim.total_cycles, sim.compute_cycles + sim.stall_cycles);
  // A cold start additionally exposes the first block's load.
  PerfSimOptions cold;
  cold.cold_start = true;
  const PerfSimResult cold_sim =
      simulate_performance(nest_, d, device_, DataType::kFloat32, cold);
  EXPECT_GT(cold_sim.total_cycles, sim.total_cycles);
  EXPECT_EQ(cold_sim.stall_cycles, sim.stall_cycles);
}

TEST_F(PerfSimTest, ComputeBoundHasNoStalls) {
  const DesignPoint d = design({4, 4, 1, 13, 3, 3});
  const PerfSimResult sim = simulate_performance(nest_, d, device_,
                                                 DataType::kFloat32, {});
  EXPECT_EQ(sim.stall_cycles, 0);
}

TEST_F(PerfSimTest, HigherClockNeverSlower) {
  const DesignPoint d = design({4, 4, 1, 13, 3, 3});
  PerfSimOptions slow;
  slow.freq_mhz = 150.0;
  PerfSimOptions fast;
  fast.freq_mhz = 300.0;
  const double g_slow =
      simulate_performance(nest_, d, device_, DataType::kFloat32, slow)
          .achieved_gops;
  const double g_fast =
      simulate_performance(nest_, d, device_, DataType::kFloat32, fast)
          .achieved_gops;
  EXPECT_GE(g_fast, g_slow);
}

TEST_F(PerfSimTest, DdrOverheadHurts) {
  const DesignPoint d = design({1, 1, 1, 2, 1, 1});
  PerfSimOptions cheap;
  cheap.ddr_overhead_cycles = 0;
  PerfSimOptions pricey;
  pricey.ddr_overhead_cycles = 2000;
  const double g_cheap =
      simulate_performance(nest_, d, device_, DataType::kFloat32, cheap)
          .achieved_gops;
  const double g_pricey =
      simulate_performance(nest_, d, device_, DataType::kFloat32, pricey)
          .achieved_gops;
  EXPECT_GT(g_cheap, g_pricey);
}

TEST_F(PerfSimTest, LayerLatencyScalesWithGroups) {
  const DesignPoint d = design({4, 4, 1, 13, 3, 3});
  const PerfSimResult sim = simulate_performance(nest_, d, device_,
                                                 DataType::kFloat32, {});
  ConvLayerDesc grouped = layer_;
  grouped.groups = 2;
  EXPECT_NEAR(simulated_layer_latency_ms(grouped, sim),
              2.0 * simulated_layer_latency_ms(layer_, sim), 1e-12);
}

TEST_F(PerfSimTest, SummaryMentionsBound) {
  const DesignPoint d = design({1, 1, 1, 2, 1, 1});
  const PerfSimResult sim = simulate_performance(nest_, d, device_,
                                                 DataType::kFloat32, {});
  EXPECT_NE(sim.summary().find("memory-bound"), std::string::npos);
}

}  // namespace
}  // namespace sasynth
