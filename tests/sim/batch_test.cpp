#include "sim/batch.h"

#include <gtest/gtest.h>

#include "loopnest/conv_nest.h"
#include "nn/network.h"

namespace sasynth {
namespace {

class BatchTest : public ::testing::Test {
 protected:
  BatchTest()
      : layer_(alexnet_conv5()),
        nest_(build_conv_nest(layer_)),
        device_(arria10_gt1150()),
        analysis_(nest_,
                  DesignPoint(nest_,
                              SystolicMapping{ConvLoops::kO, ConvLoops::kC,
                                              ConvLoops::kI},
                              ArrayShape{11, 13, 8}, {4, 4, 1, 13, 3, 3}),
                  layer_, device_, DataType::kFloat32, 250.0) {}

  ConvLayerDesc layer_;
  LoopNest nest_;
  FpgaDevice device_;
  BatchAnalysis analysis_;
};

TEST_F(BatchTest, ColdCostsMoreThanSteady) {
  EXPECT_GT(analysis_.cold_image_ms(), analysis_.steady_image_ms());
  EXPECT_GT(analysis_.steady_image_ms(), 0.0);
}

TEST_F(BatchTest, LatencyIsAffineInBatchSize) {
  const double one = analysis_.batch_latency_ms(1);
  const double two = analysis_.batch_latency_ms(2);
  const double ten = analysis_.batch_latency_ms(10);
  EXPECT_DOUBLE_EQ(one, analysis_.cold_image_ms());
  EXPECT_DOUBLE_EQ(two - one, analysis_.steady_image_ms());
  EXPECT_NEAR(ten, one + 9.0 * analysis_.steady_image_ms(), 1e-12);
}

TEST_F(BatchTest, ThroughputMonotoneTowardAsymptote) {
  double prev = 0.0;
  for (const std::int64_t images : {1LL, 2LL, 4LL, 16LL, 256LL}) {
    const double gops = analysis_.batch_throughput_gops(images);
    EXPECT_GT(gops, prev);
    prev = gops;
  }
  EXPECT_LT(prev, analysis_.steady_throughput_gops());
  EXPECT_NEAR(analysis_.batch_throughput_gops(1LL << 20),
              analysis_.steady_throughput_gops(),
              0.001 * analysis_.steady_throughput_gops());
}

TEST_F(BatchTest, BatchForFraction) {
  const std::int64_t b90 = analysis_.batch_for_fraction(0.90);
  const std::int64_t b99 = analysis_.batch_for_fraction(0.99);
  EXPECT_GE(b90, 1);
  EXPECT_GE(b99, b90);
  EXPECT_GE(analysis_.batch_throughput_gops(b90),
            0.90 * analysis_.steady_throughput_gops());
  if (b90 > 1) {
    EXPECT_LT(analysis_.batch_throughput_gops(b90 - 1),
              0.90 * analysis_.steady_throughput_gops());
  }
}

TEST_F(BatchTest, SummaryHasNumbers) {
  EXPECT_NE(analysis_.summary().find("Gops"), std::string::npos);
}

}  // namespace
}  // namespace sasynth
