#include "loopnest/domain.h"

#include <gtest/gtest.h>

#include "loopnest/conv_nest.h"
#include "nn/layer.h"

namespace sasynth {
namespace {

TEST(RectDomain, SizeAndExtents) {
  const RectDomain d({2, 3, 4});
  EXPECT_EQ(d.rank(), 3U);
  EXPECT_EQ(d.size(), 24);
  EXPECT_EQ(d.extent(1), 3);
}

TEST(RectDomain, ForEachVisitsAllInLexOrder) {
  const RectDomain d({2, 3});
  std::vector<std::vector<std::int64_t>> points;
  d.for_each([&](const std::vector<std::int64_t>& p) { points.push_back(p); });
  ASSERT_EQ(points.size(), 6U);
  EXPECT_EQ(points.front(), (std::vector<std::int64_t>{0, 0}));
  EXPECT_EQ(points[1], (std::vector<std::int64_t>{0, 1}));
  EXPECT_EQ(points.back(), (std::vector<std::int64_t>{1, 2}));
}

TEST(RectDomain, RankZeroHasOnePoint) {
  const RectDomain d;
  int count = 0;
  d.for_each([&](const std::vector<std::int64_t>&) { ++count; });
  EXPECT_EQ(count, 1);
  EXPECT_EQ(d.size(), 1);
}

TEST(DimRangeSize, SingleIterator) {
  const AffineExpr e = AffineExpr::term(2, 0);
  EXPECT_EQ(dim_range_size(e, RectDomain({5, 7})), 5);
}

TEST(DimRangeSize, SumOfIterators) {
  // r + p with r in [0,4), p in [0,3): range 0..5 -> 6 values
  AffineExpr e(2);
  e.set_coeff(0, 1).set_coeff(1, 1);
  EXPECT_EQ(dim_range_size(e, RectDomain({4, 3})), 6);
}

TEST(DimRangeSize, StridedExpr) {
  // 2*c + q, c in [0,4), q in [0,3): max = 6+2 = 8 -> 9 values
  AffineExpr e(2);
  e.set_coeff(0, 2).set_coeff(1, 1);
  EXPECT_EQ(dim_range_size(e, RectDomain({4, 3})), 9);
}

TEST(DimRangeSize, Constant) {
  AffineExpr e(1);
  e.set_constant(7);
  EXPECT_EQ(dim_range_size(e, RectDomain({10})), 1);
}

TEST(Footprint, ClosedFormMatchesExactForConvAccesses) {
  // The central §3.3 claim: the per-dimension range product is exact for CNN
  // access patterns. Verify on the real conv accesses over block domains.
  const ConvLayerDesc layer = make_conv("c", 4, 5, 6, 3);
  const LoopNest nest = build_conv_nest(layer);
  const RectDomain block({3, 2, 4, 3, 2, 3});  // some block of the 6 loops
  for (const ArrayAccess& access : nest.accesses()) {
    EXPECT_EQ(closed_form_footprint(access.access, block),
              exact_footprint(access.access, block))
        << access.access.array;
  }
}

TEST(Footprint, ClosedFormMatchesExactForStridedConv) {
  const ConvLayerDesc layer = make_conv("c", 3, 4, 5, 3, 2);
  const LoopNest nest = build_conv_nest(layer);
  const RectDomain block({2, 3, 3, 2, 3, 3});
  for (const ArrayAccess& access : nest.accesses()) {
    EXPECT_EQ(closed_form_footprint(access.access, block),
              exact_footprint(access.access, block))
        << access.access.array;
  }
}

TEST(Footprint, ClosedFormOvercountsWhenDimsShareIterators) {
  // Counter-case documenting the closed form's precondition: if two array
  // dims use the same iterator, the product over-counts (diagonal access).
  AccessFunction diag;
  diag.array = "D";
  diag.indices.push_back(AffineExpr::term(1, 0));
  diag.indices.push_back(AffineExpr::term(1, 0));
  const RectDomain d({4});
  EXPECT_EQ(exact_footprint(diag, d), 4);
  EXPECT_EQ(closed_form_footprint(diag, d), 16);
}

TEST(Footprint, KnownConvValues) {
  // IN footprint of a (b_I, b_R, b_C, K) = (4, 5, 6, 3) block:
  // 4 * (5+3-1) * (6+3-1) = 4 * 7 * 8 = 224.
  const ConvLayerDesc layer = make_conv("c", 8, 8, 13, 3);
  const LoopNest nest = build_conv_nest(layer);
  const std::size_t in_idx = nest.find_access(kInArray);
  // Block extents in loop order (o,i,c,r,p,q).
  const RectDomain block({2, 4, 6, 5, 3, 3});
  EXPECT_EQ(closed_form_footprint(nest.accesses()[in_idx].access, block), 224);
  const std::size_t w_idx = nest.find_access(kWeightArray);
  EXPECT_EQ(closed_form_footprint(nest.accesses()[w_idx].access, block),
            2 * 4 * 3 * 3);
  const std::size_t out_idx = nest.find_access(kOutArray);
  EXPECT_EQ(closed_form_footprint(nest.accesses()[out_idx].access, block),
            2 * 5 * 6);
}

}  // namespace
}  // namespace sasynth
