#include "loopnest/affine.h"

#include <gtest/gtest.h>

namespace sasynth {
namespace {

TEST(AffineExpr, ZeroByDefault) {
  const AffineExpr e(4);
  EXPECT_EQ(e.num_loops(), 4U);
  EXPECT_TRUE(e.is_constant());
  EXPECT_EQ(e.eval({1, 2, 3, 4}), 0);
}

TEST(AffineExpr, TermFactory) {
  const AffineExpr e = AffineExpr::term(3, 1, 2, 5);  // 2*i1 + 5
  EXPECT_EQ(e.coeff(0), 0);
  EXPECT_EQ(e.coeff(1), 2);
  EXPECT_EQ(e.constant(), 5);
  EXPECT_EQ(e.eval({9, 10, 11}), 25);
}

TEST(AffineExpr, AddTermAccumulates) {
  AffineExpr e(2);
  e.add_term(0, 1);
  e.add_term(0, 2);
  EXPECT_EQ(e.coeff(0), 3);
}

TEST(AffineExpr, InvariantIn) {
  AffineExpr e(3);
  e.set_coeff(0, 1);
  e.set_coeff(2, 4);
  EXPECT_FALSE(e.invariant_in(0));
  EXPECT_TRUE(e.invariant_in(1));
  EXPECT_FALSE(e.invariant_in(2));
}

TEST(AffineExpr, Addition) {
  const AffineExpr a = AffineExpr::term(2, 0, 1, 1);
  const AffineExpr b = AffineExpr::term(2, 1, 3, 2);
  const AffineExpr sum = a + b;
  EXPECT_EQ(sum.coeff(0), 1);
  EXPECT_EQ(sum.coeff(1), 3);
  EXPECT_EQ(sum.constant(), 3);
}

TEST(AffineExpr, ToString) {
  const std::vector<std::string> names{"r", "p"};
  AffineExpr e(2);
  e.set_coeff(0, 1).set_coeff(1, 1);
  EXPECT_EQ(e.to_string(names), "r + p");
  AffineExpr strided(2);
  strided.set_coeff(0, 2).set_coeff(1, 1).set_constant(1);
  EXPECT_EQ(strided.to_string(names), "2*r + p + 1");
  const AffineExpr zero(2);
  EXPECT_EQ(zero.to_string(names), "0");
}

TEST(AffineExpr, Equality) {
  EXPECT_EQ(AffineExpr::term(3, 1, 2), AffineExpr::term(3, 1, 2));
  EXPECT_FALSE(AffineExpr::term(3, 1, 2) == AffineExpr::term(3, 1, 3));
}

TEST(AccessFunction, EvalAllDims) {
  AccessFunction f;
  f.array = "IN";
  f.indices.push_back(AffineExpr::term(3, 0));
  AffineExpr sum(3);
  sum.set_coeff(1, 1).set_coeff(2, 1);
  f.indices.push_back(sum);
  EXPECT_EQ(f.eval({5, 2, 3}), (std::vector<std::int64_t>{5, 5}));
  EXPECT_EQ(f.rank(), 2U);
}

TEST(AccessFunction, InvarianceRequiresAllDims) {
  AccessFunction f;
  f.indices.push_back(AffineExpr::term(2, 0));
  f.indices.push_back(AffineExpr::term(2, 1));
  EXPECT_FALSE(f.invariant_in(0));
  EXPECT_FALSE(f.invariant_in(1));
  AccessFunction g;
  g.indices.push_back(AffineExpr::term(2, 0));
  EXPECT_TRUE(g.invariant_in(1));
}

TEST(AccessFunction, ToString) {
  const std::vector<std::string> names{"i", "r", "p"};
  AccessFunction f;
  f.array = "IN";
  f.indices.push_back(AffineExpr::term(3, 0));
  AffineExpr rp(3);
  rp.set_coeff(1, 1).set_coeff(2, 1);
  f.indices.push_back(rp);
  EXPECT_EQ(f.to_string(names), "IN[i][r + p]");
}

}  // namespace
}  // namespace sasynth
