#include "loopnest/tiling.h"

#include <gtest/gtest.h>

#include "loopnest/conv_nest.h"
#include "nn/layer.h"
#include "nn/network.h"

namespace sasynth {
namespace {

TEST(TilingSpec, IdentityDefaults) {
  const TilingSpec spec(3);
  EXPECT_EQ(spec.num_loops(), 3U);
  EXPECT_EQ(spec.middle(0), 1);
  EXPECT_EQ(spec.inner(2), 1);
  EXPECT_EQ(spec.block_trip(1), 1);
  EXPECT_EQ(spec.macs_per_block(), 1);
  EXPECT_EQ(spec.cycles_per_block(), 1);
}

TEST(TilingSpec, BlockTrips) {
  TilingSpec spec({4, 2}, {3, 5});
  EXPECT_EQ(spec.block_trip(0), 12);
  EXPECT_EQ(spec.block_trip(1), 10);
  EXPECT_EQ(spec.block_trips(), (std::vector<std::int64_t>{12, 10}));
  EXPECT_EQ(spec.macs_per_block(), 120);
  EXPECT_EQ(spec.cycles_per_block(), 8);  // prod(s)
}

LoopNest two_loop_nest(std::int64_t n0, std::int64_t n1) {
  LoopNest nest;
  nest.add_loop("a", n0);
  nest.add_loop("b", n1);
  AccessFunction out;
  out.array = "O";
  out.indices.push_back(AffineExpr::term(2, 0));
  nest.add_access(ArrayAccess{out, AccessRole::kReduce});
  AccessFunction x;
  x.array = "X";
  x.indices.push_back(AffineExpr::term(2, 1));
  nest.add_access(ArrayAccess{x, AccessRole::kRead});
  return nest;
}

TEST(TilingSpec, OuterTripsAndBlocks) {
  const LoopNest nest = two_loop_nest(13, 8);
  const TilingSpec spec({1, 2}, {5, 2});  // blocks 5 and 4
  EXPECT_EQ(spec.outer_trip(nest, 0), 3);  // ceil(13/5)
  EXPECT_EQ(spec.outer_trip(nest, 1), 2);  // ceil(8/4)
  EXPECT_EQ(spec.num_blocks(nest), 6);
}

TEST(TilingSpec, GranulesAndWavefronts) {
  const LoopNest nest = two_loop_nest(13, 8);
  const TilingSpec spec({1, 2}, {5, 2});
  EXPECT_EQ(spec.granules(nest, 0), 3);   // ceil(13/5)
  EXPECT_EQ(spec.granules(nest, 1), 4);   // ceil(8/2)
  EXPECT_EQ(spec.total_wavefronts(nest), 12);
}

TEST(TilingSpec, EfficiencyOnlyChargesInnerQuantization) {
  const LoopNest nest = two_loop_nest(13, 8);
  // Inner 5 on trip 13 pads to 15; inner 2 on 8 is exact.
  const TilingSpec spec({1, 2}, {5, 2});
  EXPECT_EQ(spec.executed_iterations(nest), 15 * 8);
  EXPECT_DOUBLE_EQ(spec.efficiency(nest), (13.0 * 8.0) / (15.0 * 8.0));
  // Larger middle bounds do not change efficiency (middle loops clip).
  const TilingSpec bigger({4, 8}, {5, 2});
  EXPECT_DOUBLE_EQ(bigger.efficiency(nest), spec.efficiency(nest));
}

TEST(TilingSpec, Table1Efficiencies) {
  // Paper Table 1: AlexNet conv5 with shapes (11,13,8) and (16,10,8) mapped
  // to (o, c, i): eff 96.97% and 65.0% (the published 60.00% is inconsistent
  // with the same row's 466-GFlops peak throughput; see EXPERIMENTS.md).
  const LoopNest nest = build_conv_nest(alexnet_conv5());
  TilingSpec sys1(ConvLoops::kCount);
  sys1.set_inner(ConvLoops::kO, 11);
  sys1.set_inner(ConvLoops::kC, 13);
  sys1.set_inner(ConvLoops::kI, 8);
  EXPECT_NEAR(sys1.efficiency(nest), 128.0 / 132.0, 1e-12);
  EXPECT_NEAR(sys1.efficiency(nest), 0.9697, 1e-4);

  TilingSpec sys2(ConvLoops::kCount);
  sys2.set_inner(ConvLoops::kO, 16);
  sys2.set_inner(ConvLoops::kC, 10);
  sys2.set_inner(ConvLoops::kI, 8);
  EXPECT_NEAR(sys2.efficiency(nest), 13.0 / 20.0, 1e-12);
}

TEST(TilingSpec, FootprintsMatchPaperExample) {
  // Paper §2.3: sys1 with Tile(I,O,R,C,P,Q) = (4,4,13,1,3,3).
  const LoopNest nest = build_conv_nest(alexnet_conv5());
  TilingSpec spec(ConvLoops::kCount);
  spec.set_inner(ConvLoops::kO, 11).set_middle(ConvLoops::kO, 4);
  spec.set_inner(ConvLoops::kC, 13).set_middle(ConvLoops::kC, 1);
  spec.set_inner(ConvLoops::kI, 8).set_middle(ConvLoops::kI, 4);
  spec.set_middle(ConvLoops::kR, 13);
  spec.set_middle(ConvLoops::kP, 3);
  spec.set_middle(ConvLoops::kQ, 3);

  const std::size_t w = nest.find_access(kWeightArray);
  const std::size_t in = nest.find_access(kInArray);
  const std::size_t out = nest.find_access(kOutArray);
  EXPECT_EQ(spec.footprint_elems(nest.accesses()[w].access),
            44 * 32 * 3 * 3);
  EXPECT_EQ(spec.footprint_elems(nest.accesses()[in].access),
            32 * (13 + 2) * (13 + 2));
  EXPECT_EQ(spec.footprint_elems(nest.accesses()[out].access), 44 * 13 * 13);
}

TEST(TilingSpec, ValidateCatchesErrors) {
  const LoopNest nest = two_loop_nest(13, 8);
  EXPECT_FALSE(TilingSpec(3).validate(nest).empty());  // wrong loop count
  EXPECT_TRUE(TilingSpec(2).validate(nest).empty());
  // Block trip way beyond the padded trip count is flagged.
  const TilingSpec huge({64, 1}, {5, 1});
  EXPECT_FALSE(huge.validate(nest).empty());
}

TEST(TilingSpec, ToStringAndEquality) {
  const TilingSpec spec({4, 2}, {3, 5});
  EXPECT_EQ(spec.to_string(), "s=(4,2) t=(3,5)");
  EXPECT_EQ(spec, TilingSpec({4, 2}, {3, 5}));
  EXPECT_FALSE(spec == TilingSpec({4, 2}, {3, 4}));
}

}  // namespace
}  // namespace sasynth
