#include "loopnest/conv_nest.h"

#include <gtest/gtest.h>

#include "loopnest/domain.h"
#include "nn/layer.h"
#include "nn/network.h"
#include "nn/reference.h"
#include "util/rng.h"

namespace sasynth {
namespace {

TEST(ConvNest, LoopOrderMatchesCode1) {
  const LoopNest nest = build_conv_nest(make_conv("c", 4, 5, 6, 3));
  ASSERT_EQ(nest.num_loops(), ConvLoops::kCount);
  EXPECT_EQ(nest.loop(ConvLoops::kO).name, "o");
  EXPECT_EQ(nest.loop(ConvLoops::kO).trip, 5);
  EXPECT_EQ(nest.loop(ConvLoops::kI).trip, 4);
  EXPECT_EQ(nest.loop(ConvLoops::kC).trip, 6);
  EXPECT_EQ(nest.loop(ConvLoops::kR).trip, 6);
  EXPECT_EQ(nest.loop(ConvLoops::kP).trip, 3);
  EXPECT_EQ(nest.loop(ConvLoops::kQ).trip, 3);
}

TEST(ConvNest, LoopNames) {
  EXPECT_STREQ(ConvLoops::name(ConvLoops::kO), "o");
  EXPECT_STREQ(ConvLoops::name(ConvLoops::kQ), "q");
}

TEST(ConvNest, TotalIterationsEqualsMacs) {
  const ConvLayerDesc layer = make_conv("c", 4, 5, 6, 3);
  const LoopNest nest = build_conv_nest(layer);
  EXPECT_EQ(nest.total_iterations(), layer.macs_per_group());
}

TEST(ConvNest, ValidatesClean) {
  EXPECT_TRUE(build_conv_nest(alexnet_conv5()).validate().empty());
}

TEST(ConvNest, AccessRoles) {
  const LoopNest nest = build_conv_nest(make_conv("c", 2, 2, 2, 2));
  const std::size_t out = nest.find_access(kOutArray);
  ASSERT_NE(out, LoopNest::npos);
  EXPECT_EQ(nest.accesses()[out].role, AccessRole::kReduce);
  EXPECT_EQ(nest.accesses()[nest.find_access(kWeightArray)].role,
            AccessRole::kRead);
  EXPECT_EQ(nest.accesses()[nest.find_access(kInArray)].role,
            AccessRole::kRead);
}

TEST(ConvNest, AccessFunctionsReproduceReferenceConv) {
  // Walking the full iteration domain and multiply-accumulating through the
  // nest's access functions must equal the reference convolution — the IR
  // and the golden model agree on semantics.
  const ConvLayerDesc layer = make_conv("c", 3, 4, 5, 3, /*stride=*/2);
  const LoopNest nest = build_conv_nest(layer);
  Rng rng(21);
  const ConvData data = make_random_conv_data(layer, rng);

  Tensor out({layer.out_maps, layer.out_rows, layer.out_cols});
  const AccessFunction& out_f =
      nest.accesses()[nest.find_access(kOutArray)].access;
  const AccessFunction& w_f =
      nest.accesses()[nest.find_access(kWeightArray)].access;
  const AccessFunction& in_f =
      nest.accesses()[nest.find_access(kInArray)].access;

  RectDomain domain(nest.trip_counts());
  domain.for_each([&](const std::vector<std::int64_t>& iters) {
    const auto oi = out_f.eval(iters);
    const auto wi = w_f.eval(iters);
    const auto ii = in_f.eval(iters);
    out.at(oi[0], oi[1], oi[2]) +=
        data.weights.at(wi[0], wi[1], wi[2], wi[3]) *
        data.input.at(ii[0], ii[1], ii[2]);
  });

  const Tensor ref = reference_conv(layer, data);
  EXPECT_LT(Tensor::max_abs_diff(out, ref), 1e-4F);
}

TEST(ConvNest, StrideAppearsInInputAccess) {
  const LoopNest nest = build_conv_nest(make_conv("c", 2, 2, 3, 3, 4));
  const AccessFunction& in_f =
      nest.accesses()[nest.find_access(kInArray)].access;
  EXPECT_EQ(in_f.indices[1].coeff(ConvLoops::kR), 4);
  EXPECT_EQ(in_f.indices[1].coeff(ConvLoops::kP), 1);
  EXPECT_EQ(in_f.indices[2].coeff(ConvLoops::kC), 4);
  EXPECT_EQ(in_f.indices[2].coeff(ConvLoops::kQ), 1);
}

}  // namespace
}  // namespace sasynth
