#include "loopnest/reuse.h"

#include <gtest/gtest.h>

#include "loopnest/conv_nest.h"
#include "nn/layer.h"

namespace sasynth {
namespace {

TEST(ReuseMatrix, SetGet) {
  ReuseMatrix m(2, 3);
  EXPECT_FALSE(m.carries_reuse(0, 0));
  m.set(0, 2, true);
  EXPECT_TRUE(m.carries_reuse(0, 2));
  EXPECT_EQ(m.num_accesses(), 2U);
  EXPECT_EQ(m.num_loops(), 3U);
}

TEST(ReuseAnalysis, ConvCrlMatrix) {
  // The paper's §3.2 reuse structure for Code 1:
  //   OUT[o][r][c]      reused on i (L2), p (L5), q (L6)
  //   W[o][i][p][q]     reused on c (L3), r (L4)
  //   IN[i][r+p][c+q]   reused on o (L1)
  const LoopNest nest = build_conv_nest(make_conv("c", 4, 5, 6, 3));
  const ReuseMatrix m = analyze_reuse(nest);
  const std::size_t out = nest.find_access(kOutArray);
  const std::size_t w = nest.find_access(kWeightArray);
  const std::size_t in = nest.find_access(kInArray);

  EXPECT_EQ(m.reuse_loops(out),
            (std::vector<std::size_t>{ConvLoops::kI, ConvLoops::kP,
                                      ConvLoops::kQ}));
  EXPECT_EQ(m.reuse_loops(w),
            (std::vector<std::size_t>{ConvLoops::kC, ConvLoops::kR}));
  EXPECT_EQ(m.reuse_loops(in), (std::vector<std::size_t>{ConvLoops::kO}));
}

TEST(ReuseAnalysis, ReusedAccessesByLoop) {
  const LoopNest nest = build_conv_nest(make_conv("c", 4, 5, 6, 3));
  const ReuseMatrix m = analyze_reuse(nest);
  const std::size_t in = nest.find_access(kInArray);
  EXPECT_EQ(m.reused_accesses(ConvLoops::kO), (std::vector<std::size_t>{in}));
  // The c loop carries reuse of W only.
  const std::size_t w = nest.find_access(kWeightArray);
  EXPECT_EQ(m.reused_accesses(ConvLoops::kC), (std::vector<std::size_t>{w}));
}

TEST(ReuseAnalysis, ExhaustiveMatchesClosedFormOnConv) {
  // Validates Eq. 3's closed form (coefficient == 0) against brute-force
  // enumeration of the iteration domain on a small conv.
  const LoopNest nest = build_conv_nest(make_conv("c", 3, 4, 4, 2));
  const ReuseMatrix fast = analyze_reuse(nest);
  const ReuseMatrix slow = analyze_reuse_exhaustive(nest);
  for (std::size_t a = 0; a < nest.num_accesses(); ++a) {
    for (std::size_t l = 0; l < nest.num_loops(); ++l) {
      EXPECT_EQ(fast.carries_reuse(a, l), slow.carries_reuse(a, l))
          << "access " << a << " loop " << l;
    }
  }
}

TEST(ReuseAnalysis, ExhaustiveMatchesOnStridedConv) {
  const LoopNest nest = build_conv_nest(make_conv("c", 2, 3, 3, 2, 2));
  const ReuseMatrix fast = analyze_reuse(nest);
  const ReuseMatrix slow = analyze_reuse_exhaustive(nest);
  for (std::size_t a = 0; a < nest.num_accesses(); ++a) {
    for (std::size_t l = 0; l < nest.num_loops(); ++l) {
      EXPECT_EQ(fast.carries_reuse(a, l), slow.carries_reuse(a, l));
    }
  }
}

TEST(ReuseAnalysis, TripOneLoopCarriesReuseTrivially) {
  LoopNest nest;
  nest.add_loop("a", 1);
  nest.add_loop("b", 3);
  AccessFunction out;
  out.array = "O";
  out.indices.push_back(AffineExpr::term(2, 0));  // depends on trip-1 loop a
  nest.add_access(ArrayAccess{out, AccessRole::kReduce});
  AccessFunction x;
  x.array = "X";
  x.indices.push_back(AffineExpr::term(2, 1));
  nest.add_access(ArrayAccess{x, AccessRole::kRead});
  // Exhaustive: loop a has no successive iterations, so reuse is vacuous.
  const ReuseMatrix slow = analyze_reuse_exhaustive(nest);
  EXPECT_TRUE(slow.carries_reuse(0, 0));
  // Closed form says "not invariant" (coefficient 1). This is the one
  // deliberate divergence: trip-1 loops never matter to the DSE because they
  // cannot be mapped usefully anyway.
  const ReuseMatrix fast = analyze_reuse(nest);
  EXPECT_FALSE(fast.carries_reuse(0, 0));
}

TEST(ReuseReport, RendersMatrix) {
  const LoopNest nest = build_conv_nest(make_conv("c", 2, 2, 2, 2));
  const std::string report = reuse_report(nest, analyze_reuse(nest));
  EXPECT_NE(report.find("OUT"), std::string::npos);
  EXPECT_NE(report.find("W"), std::string::npos);
  EXPECT_NE(report.find("IN"), std::string::npos);
  EXPECT_NE(report.find("\t1"), std::string::npos);
  EXPECT_NE(report.find("\t0"), std::string::npos);
}

}  // namespace
}  // namespace sasynth
