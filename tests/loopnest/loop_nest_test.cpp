#include "loopnest/loop_nest.h"

#include <gtest/gtest.h>

#include "loopnest/conv_nest.h"
#include "nn/layer.h"

namespace sasynth {
namespace {

LoopNest small_nest() {
  LoopNest nest;
  nest.add_loop("a", 4);
  nest.add_loop("b", 3);
  AccessFunction out;
  out.array = "O";
  out.indices.push_back(AffineExpr::term(2, 0));
  nest.add_access(ArrayAccess{out, AccessRole::kReduce});
  AccessFunction x;
  x.array = "X";
  x.indices.push_back(AffineExpr::term(2, 1));
  nest.add_access(ArrayAccess{x, AccessRole::kRead});
  return nest;
}

TEST(LoopNest, Accessors) {
  const LoopNest nest = small_nest();
  EXPECT_EQ(nest.num_loops(), 2U);
  EXPECT_EQ(nest.loop(0).name, "a");
  EXPECT_EQ(nest.loop(1).trip, 3);
  EXPECT_EQ(nest.find_loop("b"), 1U);
  EXPECT_EQ(nest.find_loop("z"), LoopNest::npos);
  EXPECT_EQ(nest.find_access("X"), 1U);
  EXPECT_EQ(nest.find_access("Y"), LoopNest::npos);
  EXPECT_EQ(nest.trip_counts(), (std::vector<std::int64_t>{4, 3}));
  EXPECT_EQ(nest.total_iterations(), 12);
  EXPECT_EQ(nest.iter_names(), (std::vector<std::string>{"a", "b"}));
}

TEST(LoopNest, ValidateRejectsBadNests) {
  LoopNest empty;
  EXPECT_FALSE(empty.validate().empty());

  LoopNest no_access;
  no_access.add_loop("a", 2);
  EXPECT_FALSE(no_access.validate().empty());

  LoopNest bad_trip;
  bad_trip.add_loop("a", 0);
  EXPECT_FALSE(bad_trip.validate().empty());

  // Two reductions is invalid.
  LoopNest two_reduce = small_nest();
  AccessFunction extra;
  extra.array = "O2";
  extra.indices.push_back(AffineExpr::term(2, 0));
  two_reduce.add_access(ArrayAccess{extra, AccessRole::kReduce});
  EXPECT_FALSE(two_reduce.validate().empty());
}

TEST(LoopNest, ValidateRejectsMismatchedAccessArity) {
  LoopNest nest;
  nest.add_loop("a", 2);
  AccessFunction wrong;
  wrong.array = "O";
  wrong.indices.push_back(AffineExpr::term(5, 0));  // built for 5 loops
  nest.add_access(ArrayAccess{wrong, AccessRole::kReduce});
  EXPECT_FALSE(nest.validate().empty());
}

TEST(LoopNest, ConvNestToStringRendersCode1) {
  const LoopNest nest = build_conv_nest(make_conv("c", 2, 3, 4, 3));
  const std::string code = nest.to_string();
  EXPECT_NE(code.find("for (o = 0; o < 3; o++)"), std::string::npos);
  EXPECT_NE(code.find("for (q = 0; q < 3; q++)"), std::string::npos);
  EXPECT_NE(code.find("OUT[o][r][c] += W[o][i][p][q] * IN[i][r + p][c + q];"),
            std::string::npos);
}

TEST(LoopNest, StridedConvToString) {
  const LoopNest nest = build_conv_nest(make_conv("c", 2, 3, 4, 3, 2));
  EXPECT_NE(nest.to_string().find("IN[i][2*r + p][2*c + q]"),
            std::string::npos);
}

}  // namespace
}  // namespace sasynth
