#include "serve/tcp.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <thread>

namespace sasynth {
namespace {

int connect_loopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::string read_to_eof(int fd) {
  std::string out;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return out;
    }
    out.append(chunk, static_cast<std::size_t>(n));
  }
}

TEST(TcpListenerTest, EphemeralPortIsReported) {
  TcpListener listener;
  std::string error;
  ASSERT_TRUE(listener.listen_on(0, &error)) << error;
  EXPECT_GT(listener.port(), 0);
  listener.close_listener();
}

TEST(TcpListenerTest, CloseUnblocksAccept) {
  TcpListener listener;
  std::string error;
  ASSERT_TRUE(listener.listen_on(0, &error)) << error;
  std::thread closer([&] { listener.close_listener(); });
  // accept_client must return -1 once the listener is gone, not hang.
  for (;;) {
    const int client = listener.accept_client();
    if (client < 0) break;
    ::close(client);
  }
  closer.join();
}

TEST(TcpSessionTest, EndToEndRequestOverSocket) {
  ServeOptions options;
  options.jobs = 1;
  SynthServer server(options);

  TcpListener listener;
  std::string error;
  ASSERT_TRUE(listener.listen_on(0, &error)) << error;

  std::thread session([&] {
    const int fd = listener.accept_client();
    ASSERT_GE(fd, 0);
    serve_fd_session(server, fd);
  });

  const int client = connect_loopback(listener.port());
  ASSERT_GE(client, 0);
  const std::string script =
      "ping\n"
      "sasynth-request v1\n"
      "layer 16,16,8,8,3\n"
      "device tiny\n"
      "option min_util 0.5\n"
      "end\n"
      "shutdown\n";
  ASSERT_TRUE(write_all_fd(client, script));
  ::shutdown(client, SHUT_WR);
  const std::string transcript = read_to_eof(client);
  ::close(client);
  session.join();
  listener.close_listener();

  const std::size_t pong = transcript.find("sasynth-pong v1");
  const std::size_t ok = transcript.find("sasynth-response v1 ok");
  const std::size_t bye = transcript.find("sasynth-bye v1");
  ASSERT_NE(pong, std::string::npos) << transcript;
  ASSERT_NE(ok, std::string::npos) << transcript;
  ASSERT_NE(bye, std::string::npos) << transcript;
  EXPECT_LT(pong, ok);
  EXPECT_LT(ok, bye);
  EXPECT_TRUE(server.stop_requested());
}

TEST(FdLineReaderTest, SplitsLinesAndDeliversTrailingFragment) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string payload = "alpha\nbeta\n\ngamma";  // no trailing newline
  ASSERT_TRUE(write_all_fd(fds[1], payload));
  ::close(fds[1]);

  FdLineReader reader(fds[0]);
  std::string line;
  ASSERT_TRUE(reader.read_line(&line));
  EXPECT_EQ(line, "alpha");
  ASSERT_TRUE(reader.read_line(&line));
  EXPECT_EQ(line, "beta");
  ASSERT_TRUE(reader.read_line(&line));
  EXPECT_EQ(line, "");
  ASSERT_TRUE(reader.read_line(&line));
  EXPECT_EQ(line, "gamma");
  EXPECT_FALSE(reader.read_line(&line));
  ::close(fds[0]);
}

}  // namespace
}  // namespace sasynth
