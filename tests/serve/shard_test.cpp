// Sharded-DSE tier tests: wire-block round trips, peer-list validation,
// byte-identity of the coordinator against single-node at several shard and
// jobs counts, degradation on dead/faulty peers, and coordinator drain with
// worker RPCs in flight. Workers are real in-process daemons (SynthServer
// behind an EventLoopServer on an ephemeral loopback port) so every test
// exercises the actual TCP path the fleet uses.
#include "serve/shard.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/design_io.h"
#include "faultinject/faultinject.h"
#include "loopnest/conv_nest.h"
#include "obs/metrics.h"
#include "serve/event_loop.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/tcp.h"
#include "util/strings.h"

namespace sasynth {
namespace {

/// A real AlexNet layer (conv2: 96->256, 27x27, k5, 2 groups) and a real
/// GoogLeNet layer (inception 3a's 3x3-reduce: 192->96, 28x28, k1) — the
/// byte-identity contract is tested on the paper's workloads, not a toy
/// device.
const char* const kAlexNetConv2 = "96,256,27,27,5,1,2";
const char* const kGoogLeNetReduce = "192,96,28,28,1";

int connect_loopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::string request_block(const std::string& layer, int jobs) {
  return strformat(
      "sasynth-request v1\n"
      "layer %s\n"
      "device arria10_gt1150\n"
      "dtype float32\n"
      "option jobs %d\n"
      "end\n",
      layer.c_str(), jobs);
}

/// One worker daemon: a SynthServer behind an event loop on an ephemeral
/// loopback port, running on its own thread until stop().
class WorkerDaemon {
 public:
  explicit WorkerDaemon(ServeOptions options = {}) : server_(options) {
    loop_ = std::make_unique<EventLoopServer>(server_, EventLoopOptions{});
    std::string error;
    started_ = loop_->start(&error);
    EXPECT_TRUE(started_) << error;
    if (started_) thread_ = std::thread([this] { loop_->run(); });
  }

  ~WorkerDaemon() { stop(); }

  void stop() {
    if (thread_.joinable()) {
      loop_->request_stop();
      thread_.join();
    }
  }

  int port() const { return loop_->port(); }
  std::string peer() const {
    return "127.0.0.1:" + std::to_string(loop_->port());
  }

 private:
  SynthServer server_;
  std::unique_ptr<EventLoopServer> loop_;
  std::thread thread_;
  bool started_ = false;
};

class ShardTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::set_metrics_enabled(true); }
  void TearDown() override { fault::disarm_all(); }

  static obs::Counter& shard_degraded() {
    return obs::MetricsRegistry::global().counter("shard_degraded_total");
  }
  static obs::Counter& shard_requests() {
    return obs::MetricsRegistry::global().counter("shard_requests_total");
  }
};

// ---------------------------------------------------------------------------
// Peer-list flag parsing.

TEST_F(ShardTest, PeerListAcceptsNumericHostsAndLocalhost) {
  std::vector<std::string> peers;
  EXPECT_EQ(parse_peer_list("127.0.0.1:9000,localhost:80,10.0.0.7:65535",
                            &peers),
            "");
  ASSERT_EQ(peers.size(), 3u);
  EXPECT_EQ(peers[0], "127.0.0.1:9000");
  EXPECT_EQ(peers[1], "localhost:80");
}

TEST_F(ShardTest, PeerListRejectsBadEntries) {
  for (const char* bad : {
           "",                    // empty list
           "127.0.0.1",           // no port
           "127.0.0.1:",          // empty port
           "127.0.0.1:abc",       // non-numeric port
           "127.0.0.1:0",         // port out of range
           "127.0.0.1:70000",     // port out of range
           "127.0.0.1:80x",       // trailing garbage
           "example.com:80",      // DNS names are rejected by design
           "127.0.0.1:80,,127.0.0.1:81",  // empty entry mid-list
       }) {
    std::vector<std::string> peers;
    EXPECT_NE(parse_peer_list(bad, &peers), "") << "'" << bad << "'";
  }
}

// ---------------------------------------------------------------------------
// Wire-block round trips.

TEST_F(ShardTest, ShardRequestRoundTripsThroughTheCanonicalText) {
  ParsedRequest inner = parse_request_block(
      "sasynth-request v1\n"
      "layer 16,16,8,8,3\n"
      "device tiny\n"
      "option min_util 0.25\n"
      "option auto_relax 0\n"
      "option jobs 4\n"
      "end\n");
  ASSERT_TRUE(inner.ok) << inner.error;

  const std::string block =
      format_shard_request_block(inner.request, 3, 17, 250);
  const ParsedShardRequest parsed = parse_shard_request_block(block);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.request.item_begin, 3);
  EXPECT_EQ(parsed.request.item_end, 17);
  EXPECT_EQ(parsed.request.request.deadline_ms, 250);
  EXPECT_EQ(parsed.request.request.dse.min_dsp_util, 0.25);
  EXPECT_FALSE(parsed.request.request.dse.auto_relax_util);
  // The inner request survives bit-exact: its canonical text (the cache-key
  // text) is unchanged by a format/parse cycle through the shard framing.
  EXPECT_EQ(canonical_request_text(parsed.request.request),
            canonical_request_text(inner.request));

  // deadline_ms < 0 omits the line entirely.
  const std::string unbounded =
      format_shard_request_block(inner.request, 0, 4, -1);
  EXPECT_EQ(unbounded.find("deadline_ms"), std::string::npos);
  const ParsedShardRequest reparsed = parse_shard_request_block(unbounded);
  ASSERT_TRUE(reparsed.ok) << reparsed.error;
  // No line -> the parsed request keeps the "no deadline" default.
  EXPECT_EQ(reparsed.request.request.deadline_ms, inner.request.deadline_ms);
}

TEST_F(ShardTest, ShardRequestParserRejectsMalformedBlocks) {
  const char* const kBad[] = {
      // Wrong magic.
      "sasynth-request v1\nshard_items 0 4\nlayer 16,16,8,8,3\nend\n",
      // Missing shard_items.
      "sasynth-shard v1\nlayer 16,16,8,8,3\ndevice tiny\nend\n",
      // Garbled windows.
      "sasynth-shard v1\nshard_items 4\nlayer 16,16,8,8,3\nend\n",
      "sasynth-shard v1\nshard_items a b\nlayer 16,16,8,8,3\nend\n",
      "sasynth-shard v1\nshard_items 0 4x\nlayer 16,16,8,8,3\nend\n",
      "sasynth-shard v1\nshard_items -1 4\nlayer 16,16,8,8,3\nend\n",
      "sasynth-shard v1\nshard_items 5 4\nlayer 16,16,8,8,3\nend\n",
      // Duplicate window.
      "sasynth-shard v1\nshard_items 0 4\nshard_items 0 4\n"
      "layer 16,16,8,8,3\nend\n",
      // Inner-request errors surface through the same parser.
      "sasynth-shard v1\nshard_items 0 4\ndevice tiny\nend\n",
      "sasynth-shard v1\nshard_items 0 4\nlayer 16,16,8,8,3\n"
      "device not_a_device\nend\n",
  };
  for (const char* block : kBad) {
    const ParsedShardRequest parsed = parse_shard_request_block(block);
    EXPECT_FALSE(parsed.ok) << block;
    EXPECT_FALSE(parsed.error.empty()) << block;
  }
}

TEST_F(ShardTest, ShardResponseRoundTripsDesigns) {
  // Harvest real designs by running the windowed sweep directly.
  ParsedRequest inner = parse_request_block(
      "sasynth-request v1\nlayer 16,16,8,8,3\ndevice tiny\n"
      "option min_util 0.25\nend\n");
  ASSERT_TRUE(inner.ok) << inner.error;
  const LoopNest nest = build_conv_nest(inner.request.layer);
  DseOptions opts = inner.request.dse;
  opts.auto_relax_util = false;
  DesignSpaceExplorer explorer(inner.request.device, inner.request.dtype,
                               opts);
  const DseResult swept = explorer.explore(nest);
  ASSERT_FALSE(swept.top.empty());

  ShardPartial partial;
  partial.ok = true;
  partial.total_items = explorer.count_phase1_items(nest);
  partial.work_items = 42;
  partial.cancelled = false;
  for (const DseCandidate& c : swept.top) {
    partial.designs.push_back(c.design);
  }

  const ShardPartial parsed =
      parse_shard_response(format_shard_response(partial), nest);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.total_items, partial.total_items);
  EXPECT_EQ(parsed.work_items, 42);
  EXPECT_FALSE(parsed.cancelled);
  ASSERT_EQ(parsed.designs.size(), partial.designs.size());
  for (std::size_t i = 0; i < parsed.designs.size(); ++i) {
    EXPECT_EQ(save_design_text(parsed.designs[i]),
              save_design_text(partial.designs[i]));
  }

  // The error form round-trips its message.
  const ShardPartial err = parse_shard_response(
      format_shard_error_response("queue full"), nest);
  EXPECT_FALSE(err.ok);
  EXPECT_NE(err.error.find("queue full"), std::string::npos);

  // Truncated and corrupted responses reject instead of feeding the merge.
  std::string text = format_shard_response(partial);
  const ShardPartial truncated = parse_shard_response(
      text.substr(0, text.rfind("end")), nest);
  EXPECT_FALSE(truncated.ok);
  const ShardPartial corrupt = parse_shard_response(
      replace_all(text, "mapping", "mangling"), nest);
  EXPECT_FALSE(corrupt.ok);
}

// ---------------------------------------------------------------------------
// The worker side: shard blocks over the real event-loop transport.

TEST_F(ShardTest, WorkerAnswersShardBlocksOverTcp) {
  WorkerDaemon worker;
  ParsedRequest inner = parse_request_block(request_block(kGoogLeNetReduce, 1));
  ASSERT_TRUE(inner.ok) << inner.error;
  const LoopNest nest = build_conv_nest(inner.request.layer);
  DseOptions opts = inner.request.dse;
  opts.auto_relax_util = false;
  const std::int64_t total =
      DesignSpaceExplorer(inner.request.device, inner.request.dtype, opts)
          .count_phase1_items(nest);
  ASSERT_GT(total, 1);

  ServeRequest pinned = inner.request;
  pinned.dse.auto_relax_util = false;
  const std::string block =
      format_shard_request_block(pinned, 0, total / 2, -1);

  const int fd = connect_loopback(worker.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(write_all_fd(fd, block));
  FdLineReader reader(fd);
  std::string text;
  std::string line;
  while (reader.read_line(&line)) {
    text += line + "\n";
    if (line == kBlockEnd) break;
  }
  ::close(fd);

  const ShardPartial partial = parse_shard_response(text, nest);
  ASSERT_TRUE(partial.ok) << partial.error << "\n" << text;
  EXPECT_EQ(partial.total_items, total);
  EXPECT_EQ(partial.work_items, total / 2);
  EXPECT_FALSE(partial.cancelled);
  EXPECT_LE(partial.designs.size(),
            static_cast<std::size_t>(inner.request.dse.top_k));

  // A malformed shard block gets a shard error response, not a hangup.
  SynthServer direct({});
  const std::string err = direct.handle_shard("sasynth-shard v1\nend\n");
  EXPECT_NE(err.find(std::string(kShardResponseMagic) + " error"),
            std::string::npos)
      << err;
}

// ---------------------------------------------------------------------------
// Byte-identity: the coordinator's response equals single-node execution at
// every shard count and jobs count.

TEST_F(ShardTest, CoordinatorIsByteIdenticalToSingleNode) {
  std::vector<std::unique_ptr<WorkerDaemon>> workers;
  for (int i = 0; i < 3; ++i) {
    workers.push_back(std::make_unique<WorkerDaemon>());
  }

  for (const char* layer : {kAlexNetConv2, kGoogLeNetReduce}) {
    for (const int jobs : {1, 4}) {
      const std::string block = request_block(layer, jobs);
      // One reference per (layer, jobs): determinism across jobs counts is
      // already covered by the core DSE tests.
      SynthServer reference({});
      const std::string expected = reference.handle(block);
      ASSERT_NE(expected.find("sasynth-response v1 ok"), std::string::npos)
          << expected;

      for (const int shards : {1, 2, 3}) {
        ServeOptions options;
        for (int p = 0; p < shards; ++p) {
          options.shard_peers.push_back(workers[p]->peer());
        }
        const std::int64_t degraded_before = shard_degraded().value();
        const std::int64_t requests_before = shard_requests().value();
        // A fresh coordinator per config keeps its DesignCache cold so the
        // shard path actually runs.
        SynthServer coordinator(options);
        EXPECT_EQ(coordinator.handle(block), expected)
            << "layer=" << layer << " jobs=" << jobs << " shards=" << shards;
        EXPECT_EQ(shard_degraded().value(), degraded_before);
        EXPECT_EQ(shard_requests().value() - requests_before, shards);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Degradation: dead and faulty peers re-execute locally, never change bytes.

TEST_F(ShardTest, DeadPeerDegradesToLocalExecutionWithIdenticalBytes) {
  std::vector<std::unique_ptr<WorkerDaemon>> workers;
  for (int i = 0; i < 3; ++i) {
    workers.push_back(std::make_unique<WorkerDaemon>());
  }
  ServeOptions options;
  for (const auto& w : workers) options.shard_peers.push_back(w->peer());

  const std::string block = request_block(kAlexNetConv2, 4);
  SynthServer reference({});
  const std::string expected = reference.handle(block);

  // Kill the middle worker; its port now refuses connections.
  workers[1]->stop();

  const std::int64_t degraded_before = shard_degraded().value();
  SynthServer coordinator(options);
  EXPECT_EQ(coordinator.handle(block), expected);
  EXPECT_GE(shard_degraded().value() - degraded_before, 1);
}

TEST_F(ShardTest, ShardFaultSitesAllDegradeWithoutChangingBytes) {
  std::vector<std::unique_ptr<WorkerDaemon>> workers;
  for (int i = 0; i < 2; ++i) {
    workers.push_back(std::make_unique<WorkerDaemon>());
  }
  ServeOptions options;
  for (const auto& w : workers) options.shard_peers.push_back(w->peer());

  const std::string block = request_block(kGoogLeNetReduce, 4);
  SynthServer reference({});
  const std::string expected = reference.handle(block);

  for (const char* site :
       {fault::kSiteShardConnect, fault::kSiteShardRead,
        fault::kSiteShardWrite}) {
    for (const fault::ErrorKind kind :
         {fault::ErrorKind::kError, fault::ErrorKind::kCorrupt,
          fault::ErrorKind::kStall}) {
      fault::FaultSpec spec;
      spec.kind = kind;
      spec.after = 1;
      spec.count = 1;
      fault::arm(site, spec);

      const std::int64_t degraded_before = shard_degraded().value();
      SynthServer coordinator(options);
      EXPECT_EQ(coordinator.handle(block), expected)
          << site << "/" << fault::kind_name(kind);
      EXPECT_GT(fault::injected_total(), 0)
          << site << "/" << fault::kind_name(kind);
      EXPECT_GE(shard_degraded().value() - degraded_before, 1)
          << site << "/" << fault::kind_name(kind);
      fault::disarm_all();
    }
  }
}

// ---------------------------------------------------------------------------
// Coordinator drain: a shutdown with a sharded request in flight finishes
// the accepted work (the response arrives, then the goodbye) and exits 0.

TEST_F(ShardTest, CoordinatorDrainFinishesInFlightShardedWork) {
  std::vector<std::unique_ptr<WorkerDaemon>> workers;
  for (int i = 0; i < 2; ++i) {
    workers.push_back(std::make_unique<WorkerDaemon>());
  }
  ServeOptions options;
  for (const auto& w : workers) options.shard_peers.push_back(w->peer());
  SynthServer coordinator(options);

  EventLoopServer loop(coordinator, EventLoopOptions{});
  std::string error;
  ASSERT_TRUE(loop.start(&error)) << error;
  int status = -1;
  std::thread runner([&] { status = loop.run(); });

  const int fd = connect_loopback(loop.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(
      write_all_fd(fd, request_block(kAlexNetConv2, 4) + "shutdown\n"));
  ::shutdown(fd, SHUT_WR);
  std::string transcript;
  {
    FdLineReader reader(fd);
    std::string line;
    while (reader.read_line(&line)) transcript += line + "\n";
  }
  ::close(fd);
  runner.join();

  EXPECT_EQ(status, 0);
  const std::size_t ok = transcript.find("sasynth-response v1 ok");
  const std::size_t bye = transcript.find("sasynth-bye v1");
  ASSERT_NE(ok, std::string::npos) << transcript;
  ASSERT_NE(bye, std::string::npos) << transcript;
  EXPECT_LT(ok, bye);
}

}  // namespace
}  // namespace sasynth
