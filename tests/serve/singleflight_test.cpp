#include "serve/singleflight.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace sasynth {
namespace {

TEST(SingleFlightTest, FirstJoinIsLeaderDuplicatesAreFollowers) {
  SingleFlight sf;
  EXPECT_EQ(sf.inflight(), 0);
  EXPECT_EQ(sf.join("k", {}), SingleFlight::Role::kLeader);
  EXPECT_EQ(sf.inflight(), 1);
  EXPECT_EQ(sf.join("k", [](const std::string&, bool) {}),
            SingleFlight::Role::kFollower);
  EXPECT_EQ(sf.join("other", {}), SingleFlight::Role::kLeader);
  EXPECT_EQ(sf.inflight(), 2);
}

TEST(SingleFlightTest, CompleteDeliversFollowersInJoinOrder) {
  SingleFlight sf;
  ASSERT_EQ(sf.join("k", {}), SingleFlight::Role::kLeader);
  std::vector<int> order;
  std::string seen;
  bool seen_shared = false;
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(sf.join("k",
                      [&, i](const std::string& response, bool shared) {
                        order.push_back(i);
                        seen = response;
                        seen_shared = shared;
                      }),
              SingleFlight::Role::kFollower);
  }
  EXPECT_EQ(sf.complete("k", "resp", true), 3);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(seen, "resp");
  EXPECT_TRUE(seen_shared);
  EXPECT_EQ(sf.inflight(), 0);
  // The key is free again: the next join starts a fresh flight.
  EXPECT_EQ(sf.join("k", {}), SingleFlight::Role::kLeader);
}

TEST(SingleFlightTest, UnsharedCompletionTellsFollowersToRunThemselves) {
  SingleFlight sf;
  ASSERT_EQ(sf.join("k", {}), SingleFlight::Role::kLeader);
  bool shared = true;
  ASSERT_EQ(sf.join("k", [&](const std::string&, bool s) { shared = s; }),
            SingleFlight::Role::kFollower);
  EXPECT_EQ(sf.complete("k", "leader timed out", false), 1);
  EXPECT_FALSE(shared);
}

TEST(SingleFlightTest, CompleteOnUnknownKeyIsANoOp) {
  SingleFlight sf;
  EXPECT_EQ(sf.complete("never-joined", "resp", true), 0);
}

TEST(SingleFlightTest, CallbacksRunOutsideTheTableLock) {
  // A follower callback that re-enters the table (an unshared follower
  // re-executing may itself become a leader for a new flight of the same
  // key) must not deadlock.
  SingleFlight sf;
  ASSERT_EQ(sf.join("k", {}), SingleFlight::Role::kLeader);
  SingleFlight::Role reentry = SingleFlight::Role::kFollower;
  ASSERT_EQ(sf.join("k",
                    [&](const std::string&, bool) {
                      reentry = sf.join("k", {});
                      sf.complete("k", "again", true);
                    }),
            SingleFlight::Role::kFollower);
  EXPECT_EQ(sf.complete("k", "resp", true), 1);
  EXPECT_EQ(reentry, SingleFlight::Role::kLeader);
}

// ---------------------------------------------------------------------------
// SynthServer::submit_session_block follower semantics, driven
// deterministically: the test itself takes the leader role in the server's
// singleflight table, so follower behavior is exercised without any timing
// dependence on a real in-flight DSE.
// ---------------------------------------------------------------------------

constexpr const char* kBlock =
    "sasynth-request v1\n"
    "layer 16,16,8,8,3\n"
    "device tiny\n"
    "option min_util 0.5\n"
    "end\n";

std::string canonical_of(const std::string& block) {
  const ParsedRequest parsed = parse_request_block(block);
  EXPECT_TRUE(parsed.ok) << parsed.error;
  return canonical_request_text(parsed.request);
}

TEST(CoalescingTest, FollowerReceivesTheLeadersShareableResponse) {
  ServeOptions options;
  options.jobs = 1;
  SynthServer server(options);
  const std::string key = canonical_of(kBlock);

  // The test is the leader; the submitted duplicate must park as follower.
  ASSERT_EQ(server.singleflight().join(key, {}), SingleFlight::Role::kLeader);
  std::string got;
  int posts = 0;
  server.submit_session_block(kBlock, /*is_deploy=*/false, /*seq=*/0,
                              [&](std::uint64_t, std::string response) {
                                got = std::move(response);
                                ++posts;
                              });
  EXPECT_EQ(posts, 0);  // parked: no scheduler slot, no DSE, no answer yet
  EXPECT_EQ(server.counters().coalesced.load(), 1);
  EXPECT_EQ(server.counters().dse_runs.load(), 0);

  const std::string shared = "sasynth-response v1 ok\nfake\nend\n";
  EXPECT_EQ(server.singleflight().complete(key, shared, true), 1);
  EXPECT_EQ(posts, 1);
  EXPECT_EQ(got, shared);  // byte-identical to the leader's bytes
  EXPECT_EQ(server.counters().dse_runs.load(), 0);  // follower never ran DSE
  EXPECT_EQ(server.counters().requests.load(), 1);
  EXPECT_EQ(server.counters().ok.load(), 1);
}

TEST(CoalescingTest, UnsharedCompletionMakesTheFollowerRunItself) {
  ServeOptions options;
  options.jobs = 1;
  SynthServer server(options);
  const std::string key = canonical_of(kBlock);
  const std::string reference = server.handle(kBlock);
  ASSERT_NE(reference.find("sasynth-response v1 ok"), std::string::npos);

  ASSERT_EQ(server.singleflight().join(key, {}), SingleFlight::Role::kLeader);
  std::string got;
  server.submit_session_block(kBlock, false, 0,
                              [&](std::uint64_t, std::string response) {
                                got = std::move(response);
                              });
  ASSERT_EQ(server.counters().coalesced.load(), 1);

  // The leader "timed out": its verdict reflects the leader's budget and is
  // never handed over. The follower re-executes under its own (unbounded)
  // token and produces the normal ok response.
  server.singleflight().complete(key, "sasynth-response v1 timeout\nend\n",
                                 /*shareable=*/false);
  EXPECT_EQ(got, reference);
}

TEST(CoalescingTest, ExpiredFollowerGetsItsOwnTimeoutNotTheSharedResult) {
  ServeOptions options;
  options.jobs = 1;
  SynthServer server(options);
  // deadline_ms 0 = "answer instantly or time out": the follower's own
  // budget is already spent when the leader's (shareable) result lands, so
  // it must get a timeout verdict, never a late shared answer.
  const std::string block = std::string(kBlock).replace(
      std::string(kBlock).find("end\n"), 4, "deadline_ms 0\nend\n");
  const std::string key = canonical_of(block);
  ASSERT_EQ(key, canonical_of(kBlock));  // execution policy is not key material

  ASSERT_EQ(server.singleflight().join(key, {}), SingleFlight::Role::kLeader);
  std::string got;
  server.submit_session_block(block, false, 0,
                              [&](std::uint64_t, std::string response) {
                                got = std::move(response);
                              });
  ASSERT_EQ(server.counters().coalesced.load(), 1);

  server.singleflight().complete(key, "sasynth-response v1 ok\nfake\nend\n",
                                 true);
  EXPECT_NE(got.find("sasynth-response v1 timeout"), std::string::npos) << got;
  EXPECT_NE(got.find("deadline expired waiting in queue"), std::string::npos)
      << got;
  EXPECT_EQ(server.counters().timeouts.load(), 1);
  EXPECT_EQ(server.counters().shed_expired.load(), 1);
}

TEST(CoalescingTest, MalformedBlocksAreNotCoalesced) {
  ServeOptions options;
  options.jobs = 1;
  SynthServer server(options);
  std::string got;
  server.submit_session_block("sasynth-request v1\nnot a field\nend\n", false,
                              0, [&](std::uint64_t, std::string response) {
                                got = std::move(response);
                              });
  server.scheduler().drain();  // execution is asynchronous at any jobs count
  EXPECT_NE(got.find("sasynth-response v1 error"), std::string::npos) << got;
  EXPECT_EQ(server.counters().coalesced.load(), 0);
  EXPECT_EQ(server.singleflight().inflight(), 0);
}

TEST(CoalescingTest, LeaderCompletionClosesTheFlight) {
  // End-to-end through submit_session_block alone. Execution is
  // asynchronous even at jobs=1 (the scheduler never runs a request on the
  // submitter), so each submission is drained before the flight table is
  // inspected: once the leader's response lands the flight must be closed,
  // and the next identical submission must lead again (and hit the
  // DesignCache instead of coalescing).
  ServeOptions options;
  options.jobs = 1;
  SynthServer server(options);
  std::string first;
  std::string second;
  server.submit_session_block(kBlock, false, 0,
                              [&](std::uint64_t, std::string r) { first = r; });
  server.scheduler().drain();
  EXPECT_EQ(server.singleflight().inflight(), 0);
  server.submit_session_block(kBlock, false, 1,
                              [&](std::uint64_t, std::string r) { second = r; });
  server.scheduler().drain();
  EXPECT_EQ(server.singleflight().inflight(), 0);
  EXPECT_EQ(first, second);
  EXPECT_EQ(server.counters().coalesced.load(), 0);
  EXPECT_EQ(server.counters().dse_runs.load(), 1);  // second was a cache hit
}

}  // namespace
}  // namespace sasynth
