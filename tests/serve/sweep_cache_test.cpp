// Cross-request sweep-cache behavior: the incremental-DSE tier below the
// DesignCache. Reuse across requests that are not byte-identical, strict
// keying on everything the reuse DFS reads (device change = miss), warm
// responses byte-identical to cold ones, and bounded memory with observable
// LRU eviction.
#include "serve/sweep_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve/server.h"
#include "util/strings.h"

namespace sasynth {
namespace {

// Tiny-device layers; a fresh DSE is milliseconds. kLayerTall differs from
// kLayerBase only in the H/W feature-map dimensions, so the two sweeps
// share every hint-tier key; kLayerBaseKu is the same layer on another
// device, which shares nothing.
const char* kLayerBase =
    "sasynth-request v1\n"
    "layer 16,16,8,8,3\n"
    "device tiny\n"
    "option min_util 0.5\n"
    "end\n";
const char* kLayerTall =
    "sasynth-request v1\n"
    "layer 16,16,6,6,3\n"
    "device tiny\n"
    "option min_util 0.5\n"
    "end\n";
const char* kLayerBaseRelaxed =
    "sasynth-request v1\n"
    "layer 16,16,8,8,3\n"
    "device tiny\n"
    "option min_util 0.4\n"
    "end\n";
const char* kLayerBaseKu =
    "sasynth-request v1\n"
    "layer 16,16,8,8,3\n"
    "device ku060\n"
    "option min_util 0.5\n"
    "end\n";

ServeOptions sweep_options(std::size_t sweep_capacity) {
  ServeOptions options;
  options.jobs = 1;
  options.cache_enabled = false;  // isolate the SweepCache from DesignCache hits
  options.sweep_cache_capacity = sweep_capacity;
  return options;
}

TEST(SweepCacheTest, HintTierCarriesAcrossHwOnlyDifferingLayers) {
  SynthServer server(sweep_options(4096));
  ASSERT_TRUE(starts_with(server.handle(kLayerBase), "sasynth-response v1 ok"));
  const SweepCacheStats after_first = server.sweep_cache().stats();
  EXPECT_GT(after_first.insertions, 0);
  EXPECT_EQ(after_first.hint_hits, 0);

  ASSERT_TRUE(starts_with(server.handle(kLayerTall), "sasynth-response v1 ok"));
  const SweepCacheStats after_second = server.sweep_cache().stats();
  // The second sweep's floor seeding found middle bounds remembered from
  // the first layer's structurally identical items.
  EXPECT_GT(after_second.hint_hits, 0);
  // Different trips: the exact tier cannot hit across these two layers.
  EXPECT_EQ(after_second.exact_hits, 0);
}

TEST(SweepCacheTest, ExactTierReplaysAcrossUtilSettings) {
  // min_dsp_util is deliberately excluded from the sweep context (the reuse
  // DFS never reads it), so re-exploring a layer under a relaxed floor
  // replays the per-item DFS results verbatim even though the request texts
  // — and so the DesignCache keys — differ.
  SynthServer server(sweep_options(4096));
  const std::string cold = server.handle(kLayerBase);
  ASSERT_TRUE(starts_with(cold, "sasynth-response v1 ok"));
  const std::string relaxed = server.handle(kLayerBaseRelaxed);
  ASSERT_TRUE(starts_with(relaxed, "sasynth-response v1 ok"));
  EXPECT_GT(server.sweep_cache().stats().exact_hits, 0);
}

TEST(SweepCacheTest, DeviceChangeSharesNothing) {
  SynthServer server(sweep_options(4096));
  ASSERT_TRUE(starts_with(server.handle(kLayerBase), "sasynth-response v1 ok"));
  ASSERT_TRUE(starts_with(server.handle(kLayerBaseKu), "sasynth-response v1 ok"));
  const SweepCacheStats stats = server.sweep_cache().stats();
  // Same layer, different device: every BRAM/bandwidth parameter in the
  // context changed, so neither tier may answer.
  EXPECT_EQ(stats.exact_hits, 0);
  EXPECT_EQ(stats.hint_hits, 0);
}

TEST(SweepCacheTest, WarmResponsesAreByteIdenticalToCold) {
  // A warm sweep cache may only change the time to a response, never its
  // bytes: hint-tier floors are re-evaluated, exact-tier hits replay the
  // same DFS results the cold server computes fresh.
  SynthServer cold_server(sweep_options(4096));
  SynthServer warm_server(sweep_options(4096));
  ASSERT_TRUE(starts_with(warm_server.handle(kLayerBase),
                          "sasynth-response v1 ok"));
  ASSERT_TRUE(starts_with(warm_server.handle(kLayerBaseRelaxed),
                          "sasynth-response v1 ok"));
  for (const char* request : {kLayerTall, kLayerBaseRelaxed, kLayerBase}) {
    EXPECT_EQ(cold_server.handle(request), warm_server.handle(request));
  }
}

TEST(SweepCacheTest, LruEvictionKeepsTheCacheBounded) {
  SynthServer server(sweep_options(8));
  ASSERT_TRUE(starts_with(server.handle(kLayerBase), "sasynth-response v1 ok"));
  ASSERT_TRUE(starts_with(server.handle(kLayerTall), "sasynth-response v1 ok"));
  const SweepCacheStats stats = server.sweep_cache().stats();
  EXPECT_LE(server.sweep_cache().size(), 8u);
  EXPECT_GT(stats.insertions, 8);
  EXPECT_GT(stats.evictions, 0);
  // The eviction counters are part of the stats surface.
  const std::string text = server.stats_text();
  EXPECT_NE(text.find("sweep_cache_evictions"), std::string::npos) << text;
  EXPECT_NE(text.find("sweep_cache_entries"), std::string::npos) << text;
}

TEST(SweepCacheTest, CapacityZeroDisablesTheTier) {
  SynthServer server(sweep_options(0));
  ASSERT_TRUE(starts_with(server.handle(kLayerBase), "sasynth-response v1 ok"));
  ASSERT_TRUE(starts_with(server.handle(kLayerTall), "sasynth-response v1 ok"));
  const SweepCacheStats stats = server.sweep_cache().stats();
  EXPECT_EQ(server.sweep_cache().size(), 0u);
  EXPECT_EQ(stats.insertions, 0);
  EXPECT_EQ(stats.exact_hits + stats.hint_hits, 0);
  EXPECT_EQ(stats.exact_misses + stats.hint_misses, 0);
}

}  // namespace
}  // namespace sasynth
