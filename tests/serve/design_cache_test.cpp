#include "serve/design_cache.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/design_io.h"
#include "loopnest/conv_nest.h"
#include "nn/network.h"
#include "util/rng.h"

namespace sasynth {
namespace {

class DesignCacheTest : public ::testing::Test {
 protected:
  DesignCacheTest() : nest_(build_conv_nest(alexnet_conv5())) {}

  DesignPoint sys1() const {
    return DesignPoint(
        nest_, SystolicMapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI},
        ArrayShape{11, 13, 8}, {4, 4, 1, 13, 3, 3});
  }

  DesignPoint sys2() const {
    return DesignPoint(
        nest_, SystolicMapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI},
        ArrayShape{11, 13, 4}, {4, 4, 1, 13, 3, 3});
  }

  std::string temp_dir(const char* tag) const {
    const std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) /
        (std::string("sasynth_cache_") + tag);
    std::filesystem::remove_all(dir);
    return dir.string();
  }

  LoopNest nest_;
};

TEST_F(DesignCacheTest, MemoryHitAfterInsert) {
  DesignCache cache("", 8);
  DesignPoint out;
  EXPECT_FALSE(cache.lookup("req-a", nest_, &out));
  cache.insert("req-a", sys1());
  ASSERT_TRUE(cache.lookup("req-a", nest_, &out));
  EXPECT_EQ(out, sys1());
  EXPECT_FALSE(cache.lookup("req-b", nest_, &out));

  const DesignCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.disk_hits, 0);
  EXPECT_EQ(stats.insertions, 1);
  EXPECT_EQ(cache.size(), 1u);
}

TEST_F(DesignCacheTest, LruEvictsTheColdestEntry) {
  DesignCache cache("", 2);
  cache.insert("a", sys1());
  cache.insert("b", sys2());
  DesignPoint out;
  ASSERT_TRUE(cache.lookup("a", nest_, &out));  // "b" is now coldest
  cache.insert("c", sys1());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.lookup("a", nest_, &out));
  EXPECT_FALSE(cache.lookup("b", nest_, &out));
  EXPECT_TRUE(cache.lookup("c", nest_, &out));
  EXPECT_EQ(cache.stats().evictions, 1);
}

TEST_F(DesignCacheTest, ZeroCapacityClampsToOne) {
  DesignCache cache("", 0);
  cache.insert("a", sys1());
  DesignPoint out;
  EXPECT_TRUE(cache.lookup("a", nest_, &out));
  EXPECT_EQ(cache.size(), 1u);
}

TEST_F(DesignCacheTest, DiskEntrySurvivesRestart) {
  const std::string dir = temp_dir("restart");
  {
    DesignCache cache(dir, 8);
    cache.insert("req-a", sys1());
  }
  DesignCache fresh(dir, 8);
  DesignPoint out;
  ASSERT_TRUE(fresh.lookup("req-a", nest_, &out));
  EXPECT_EQ(out, sys1());
  EXPECT_EQ(fresh.stats().disk_hits, 1);
  // Promoted into memory: second lookup does not count another disk hit.
  ASSERT_TRUE(fresh.lookup("req-a", nest_, &out));
  EXPECT_EQ(fresh.stats().disk_hits, 1);
  EXPECT_EQ(fresh.stats().hits, 2);
}

TEST_F(DesignCacheTest, EntryPathUsesThe16DigitHexKey) {
  DesignCache cache("/some/dir", 8);
  EXPECT_EQ(cache.entry_path(0x1234abcdu),
            "/some/dir/000000001234abcd.design");
}

TEST_F(DesignCacheTest, TruncatedDiskEntryFallsBackToMiss) {
  const std::string dir = temp_dir("truncated");
  {
    DesignCache cache(dir, 8);
    cache.insert("req-a", sys1());
  }
  const std::string path =
      DesignCache(dir, 8).entry_path(fnv1a64("req-a"));
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string blob = buffer.str();

  // Every truncation of the entry file either loads fully or misses cleanly.
  for (std::size_t len = 0; len < blob.size(); len += 7) {
    std::ofstream(path, std::ios::trunc) << blob.substr(0, len);
    DesignCache fresh(dir, 8);
    DesignPoint out;
    const bool hit = fresh.lookup("req-a", nest_, &out);
    if (hit) {
      EXPECT_EQ(out, sys1()) << "truncated to " << len;
    } else {
      EXPECT_EQ(fresh.stats().load_failures + fresh.stats().misses, 2)
          << "truncated to " << len;
    }
  }
}

TEST_F(DesignCacheTest, GarbageDiskEntryFallsBackToMiss) {
  const std::string dir = temp_dir("garbage");
  DesignCache seed(dir, 8);
  seed.insert("req-a", sys1());
  const std::string path = seed.entry_path(fnv1a64("req-a"));
  std::ofstream(path, std::ios::trunc) << "not a cache entry at all\n\x01\x02";

  DesignCache fresh(dir, 8);
  DesignPoint out;
  EXPECT_FALSE(fresh.lookup("req-a", nest_, &out));
  EXPECT_EQ(fresh.stats().load_failures, 1);
  EXPECT_EQ(fresh.stats().misses, 1);
}

TEST_F(DesignCacheTest, CanonicalMismatchOnDiskIsRejected) {
  // A file stored for a different request must not satisfy this one, even
  // when placed at this key's path (hash-collision / aliasing guard).
  const std::string dir = temp_dir("alias");
  DesignCache seed(dir, 8);
  seed.insert("req-b", sys1());
  std::filesystem::copy_file(
      seed.entry_path(fnv1a64("req-b")), seed.entry_path(fnv1a64("req-a")),
      std::filesystem::copy_options::overwrite_existing);

  DesignCache fresh(dir, 8);
  DesignPoint out;
  EXPECT_FALSE(fresh.lookup("req-a", nest_, &out));
  EXPECT_GE(fresh.stats().load_failures, 1);
}

TEST_F(DesignCacheTest, StaleEntryForADifferentNestIsRejected) {
  // Same canonical text, but the design no longer fits the nest the caller
  // supplies (e.g. the layer behind the key changed shape): reject, fresh DSE.
  const LoopNest other_nest = build_conv_nest(make_conv("other", 4, 4, 4, 3));
  const std::string dir = temp_dir("stale");
  DesignCache seed(dir, 8);
  seed.insert("req-a", sys1());

  DesignCache fresh(dir, 8);
  DesignPoint out;
  EXPECT_FALSE(fresh.lookup("req-a", other_nest, &out));
  EXPECT_GE(fresh.stats().load_failures, 1);
}

TEST_F(DesignCacheTest, DiskStoreFailureIsCountedAndMemoryTierSurvives) {
  // Park a regular file where the cache directory should go: every disk
  // store fails (create_directories cannot succeed), even when running as
  // root — unlike permission tricks.
  const std::string blocker = temp_dir("storefail_blocker");
  std::ofstream(blocker) << "not a directory";
  const std::string dir = blocker + "/sub";

  DesignCache cache(dir, 8);
  cache.insert("req-a", sys1());
  cache.insert("req-b", sys2());
  DesignCacheStats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 2);
  EXPECT_EQ(stats.disk_store_failures, 2);

  // The memory tier is untouched by the disk failure.
  DesignPoint out;
  ASSERT_TRUE(cache.lookup("req-a", nest_, &out));
  EXPECT_EQ(out, sys1());

  // The accounting invariant: insertions - disk_store_failures bounds what a
  // fresh process can find on disk. Here that is zero, and indeed:
  DesignCache fresh(dir, 8);
  EXPECT_FALSE(fresh.lookup("req-a", nest_, &out));
  EXPECT_FALSE(fresh.lookup("req-b", nest_, &out));
  EXPECT_EQ(fresh.stats().disk_hits, 0);
}

TEST_F(DesignCacheTest, HealthyStoresCountNoFailures) {
  const std::string dir = temp_dir("storefail_healthy");
  DesignCache cache(dir, 8);
  cache.insert("req-a", sys1());
  EXPECT_EQ(cache.stats().insertions, 1);
  EXPECT_EQ(cache.stats().disk_store_failures, 0);
}

TEST_F(DesignCacheTest, MemoryOnlyCacheNeverCountsStoreFailures) {
  // No directory configured: there is no disk tier to fail, so insertions
  // must not be misreported as failed stores.
  DesignCache cache("", 8);
  cache.insert("req-a", sys1());
  EXPECT_EQ(cache.stats().disk_store_failures, 0);
}

TEST_F(DesignCacheTest, MemoryOnlyWhenDirEmpty) {
  DesignCache cache("", 8);
  cache.insert("req-a", sys1());
  // No dir: nothing persisted, a fresh cache misses.
  DesignCache fresh("", 8);
  DesignPoint out;
  EXPECT_FALSE(fresh.lookup("req-a", nest_, &out));
}

}  // namespace
}  // namespace sasynth
