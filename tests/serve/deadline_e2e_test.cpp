// End-to-end deadline behavior of the synthesis service: timeout verdicts
// with deterministic partial payloads, cache hygiene (a partial sweep is
// never stored), the health probe, and the transport-level slow-loris guard
// — all over the same real code paths sasynthd uses, including a real TCP
// socket for the acceptance-style latency test.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/dse.h"
#include "loopnest/conv_nest.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/tcp.h"
#include "util/deadline.h"
#include "util/strings.h"

namespace sasynth {
namespace {

// Sanitizer builds run the DSE and the models an order of magnitude slower,
// so the "response within deadline + slack" bound gets a wider (but still
// finite) allowance there.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr std::int64_t kLatencySlackMs = 2000;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr std::int64_t kLatencySlackMs = 2000;
#else
constexpr std::int64_t kLatencySlackMs = 50;
#endif
#else
constexpr std::int64_t kLatencySlackMs = 50;
#endif

constexpr const char* kTinyBlock =
    "sasynth-request v1\n"
    "layer 16,16,8,8,3\n"
    "device tiny\n"
    "option min_util 0.5\n"
    "end\n";

int connect_loopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::string read_to_eof(int fd) {
  std::string out;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return out;
    }
    out.append(chunk, static_cast<std::size_t>(n));
  }
}

/// Reads until one full response block ("...\nend\n") has arrived.
std::string read_one_block(int fd) {
  std::string out;
  char chunk[4096];
  while (out.find("\nend\n") == std::string::npos &&
         !(out.size() >= 5 && out.compare(out.size() - 5, 5, "end\n") == 0)) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    out.append(chunk, static_cast<std::size_t>(n));
  }
  return out;
}

TEST(HandleDeadlineTest, TimeoutResponseIsNeverCached) {
  ServeOptions options;
  options.jobs = 1;
  SynthServer server(options);

  // An already-fired token: the DSE is entered, cancels on item 0, and the
  // result is a payload-free timeout.
  const std::string timeout_response = server.handle(
      kTinyBlock, CancelToken::with_deadline(Deadline::after_ms(0)));
  EXPECT_TRUE(starts_with(timeout_response, "sasynth-response v1 timeout"))
      << timeout_response;
  EXPECT_EQ(server.counters().timeouts.load(), 1);
  EXPECT_EQ(server.counters().dse_runs.load(), 1);

  // The same request without a deadline must re-run the DSE (dse_runs goes
  // up): the cancelled sweep was not stored into the cache.
  const std::string full_response = server.handle(kTinyBlock);
  EXPECT_TRUE(starts_with(full_response, "sasynth-response v1 ok"))
      << full_response;
  EXPECT_EQ(server.counters().dse_runs.load(), 2);

  // And the full run *was* cached: a third request is a hit.
  const std::string cached_response = server.handle(kTinyBlock);
  EXPECT_EQ(cached_response, full_response);
  EXPECT_EQ(server.counters().dse_runs.load(), 2);
}

TEST(HandleDeadlineTest, CutTimeoutCarriesDeterministicPartialPayload) {
  // Place a deterministic cut strictly inside the sweep, then check the
  // timed-out response is byte-identical at dse jobs=1 and jobs=4.
  const ParsedRequest parsed = parse_request_block(kTinyBlock);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const LoopNest nest = build_conv_nest(parsed.request.layer);
  DseStats stats;
  const DesignSpaceExplorer explorer(parsed.request.device,
                                     parsed.request.dtype, parsed.request.dse);
  explorer.enumerate_phase1(nest, &stats);
  ASSERT_GT(stats.work_items, 2);
  const std::int64_t cut = stats.work_items / 2;

  auto run = [&](const char* extra_option) {
    std::string block = kTinyBlock;
    const std::size_t end_at = block.rfind("end\n");
    block.insert(end_at, extra_option);
    ServeOptions options;
    options.jobs = 1;
    options.cache_enabled = false;
    SynthServer server(options);
    CancelToken token = CancelToken::cancellable();
    token.set_cut_at_item(cut);
    const std::string response = server.handle(block, token);
    EXPECT_EQ(server.counters().timeouts.load(), 1);
    return response;
  };

  const std::string serial = run("");
  const std::string parallel = run("option jobs 4\n");
  EXPECT_TRUE(starts_with(serial, "sasynth-response v1 timeout")) << serial;
  // The partial payload is a full, valid design block.
  EXPECT_NE(serial.find("sasynth-design v1"), std::string::npos) << serial;
  EXPECT_NE(serial.find("perf freq_mhz="), std::string::npos) << serial;
  EXPECT_EQ(serial, parallel);
}

TEST(ServerHealthTest, HealthReportsStateWithoutDraining) {
  ServeOptions options;
  options.jobs = 1;
  SynthServer server(options);
  const std::string healthy = server.health_text();
  EXPECT_NE(healthy.find("sasynth-health v1"), std::string::npos);
  EXPECT_NE(healthy.find("status ok"), std::string::npos);
  EXPECT_NE(healthy.find("queue_limit 64"), std::string::npos);
  EXPECT_NE(healthy.find("shedding 0"), std::string::npos);

  server.begin_drain();
  EXPECT_TRUE(server.draining());
  EXPECT_NE(server.health_text().find("status draining"), std::string::npos);
}

TEST(ServerHealthTest, HealthCommandAnsweredInSession) {
  ServeOptions options;
  options.jobs = 1;
  SynthServer server(options);
  std::vector<std::string> lines = {"health"};
  std::size_t at = 0;
  std::string transcript;
  server.serve(
      [&](std::string* line) {
        if (at >= lines.size()) return false;
        *line = lines[at++];
        return true;
      },
      [&](const std::string& response) { transcript += response; });
  EXPECT_NE(transcript.find("sasynth-health v1"), std::string::npos)
      << transcript;
  EXPECT_NE(transcript.find("uptime_s "), std::string::npos);
  EXPECT_EQ(server.counters().commands.load(), 1);
}

TEST(ServerDeadlineTest, ZeroDeadlineShedsAtAdmission) {
  ServeOptions options;
  options.jobs = 1;
  SynthServer server(options);
  std::vector<std::string> lines = {
      "sasynth-request v1", "layer 16,16,8,8,3", "device tiny",
      "deadline_ms 0",      "end",
  };
  std::size_t at = 0;
  std::string transcript;
  server.serve(
      [&](std::string* line) {
        if (at >= lines.size()) return false;
        *line = lines[at++];
        return true;
      },
      [&](const std::string& response) { transcript += response; });
  EXPECT_EQ(transcript,
            "sasynth-response v1 timeout deadline expired before admission\n"
            "end\n");
  EXPECT_EQ(server.counters().rejected_expired.load(), 1);
  EXPECT_EQ(server.counters().timeouts.load(), 1);
  // Shed at admission: the DSE never ran.
  EXPECT_EQ(server.counters().dse_runs.load(), 0);
}

TEST(TcpDeadlineTest, ColdRequestTimesOutWithinBudgetOverTcp) {
  // The acceptance scenario: a deadline far below the cold-DSE time must
  // come back as `timeout` with a valid partial design, within
  // deadline + slack, over a real socket.
  constexpr std::int64_t kDeadlineMs = 500;
  ServeOptions options;
  options.jobs = 4;
  options.cache_enabled = false;
  SynthServer server(options);

  TcpListener listener;
  std::string error;
  ASSERT_TRUE(listener.listen_on(0, &error)) << error;
  std::thread session([&] {
    const int fd = listener.accept_client();
    ASSERT_GE(fd, 0);
    serve_fd_session(server, fd);
  });

  const int client = connect_loopback(listener.port());
  ASSERT_GE(client, 0);
  // bound_prune off: the branch-and-bound sweep finishes this layer well
  // inside 500 ms, and the scenario needs a cold DSE that cannot.
  const std::string request =
      "sasynth-request v1\n"
      "layer 48,128,13,13,3\n"
      "option bound_prune 0\n"
      "deadline_ms 500\n"
      "end\n";
  const auto sent_at = std::chrono::steady_clock::now();
  ASSERT_TRUE(write_all_fd(client, request));
  const std::string response = read_one_block(client);
  const std::int64_t elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - sent_at)
          .count();

  ASSERT_TRUE(write_all_fd(client, "shutdown\n"));
  read_to_eof(client);
  ::close(client);
  session.join();
  listener.close_listener();

  EXPECT_TRUE(starts_with(response, "sasynth-response v1 timeout"))
      << response;
  // Enough of the sweep ran inside 500 ms to have a best-so-far design.
  EXPECT_NE(response.find("sasynth-design v1"), std::string::npos) << response;
  EXPECT_NE(response.find("resource dsp="), std::string::npos) << response;
  EXPECT_LT(elapsed_ms, kDeadlineMs + kLatencySlackMs);
  EXPECT_EQ(server.counters().timeouts.load(), 1);
}

TEST(TcpDeadlineTest, NoDeadlineResponseByteIdenticalAcrossJobs) {
  // The control arm: without a deadline the same request completes with the
  // full response, identical at every worker count.
  auto run = [](int jobs) {
    ServeOptions options;
    options.jobs = jobs;
    options.cache_enabled = false;
    SynthServer server(options);
    TcpListener listener;
    std::string error;
    EXPECT_TRUE(listener.listen_on(0, &error)) << error;
    std::thread session([&] {
      const int fd = listener.accept_client();
      ASSERT_GE(fd, 0);
      serve_fd_session(server, fd);
    });
    const int client = connect_loopback(listener.port());
    EXPECT_GE(client, 0);
    const std::string script =
        "sasynth-request v1\n"
        "layer 48,128,13,13,3\n"
        "option jobs " + std::to_string(jobs) + "\n"
        "end\n"
        "shutdown\n";
    EXPECT_TRUE(write_all_fd(client, script));
    ::shutdown(client, SHUT_WR);
    const std::string transcript = read_to_eof(client);
    ::close(client);
    session.join();
    listener.close_listener();
    // First block only (the bye block follows).
    const std::size_t end_at = transcript.find("\nend\n");
    EXPECT_NE(end_at, std::string::npos) << transcript;
    return transcript.substr(0, end_at + 5);
  };

  const std::string serial = run(1);
  const std::string parallel = run(4);
  EXPECT_TRUE(starts_with(serial, "sasynth-response v1 ok")) << serial;
  EXPECT_EQ(serial, parallel);
}

TEST(TcpIoTimeoutTest, SlowLorisClientLosesItsSession) {
  ServeOptions options;
  options.jobs = 1;
  options.io_timeout_ms = 200;
  SynthServer server(options);

  TcpListener listener;
  std::string error;
  ASSERT_TRUE(listener.listen_on(0, &error)) << error;
  std::thread session([&] {
    const int fd = listener.accept_client();
    ASSERT_GE(fd, 0);
    serve_fd_session(server, fd);
  });

  const int client = connect_loopback(listener.port());
  ASSERT_GE(client, 0);
  // Half a request, then silence: the session must end on its own once the
  // read timeout fires — no shutdown, no EOF from the client.
  ASSERT_TRUE(write_all_fd(client, "sasynth-request v1\nlayer 16,16"));
  const auto stalled_at = std::chrono::steady_clock::now();
  session.join();  // hangs forever if the timeout never fires
  const std::int64_t waited_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - stalled_at)
          .count();
  listener.close_listener();
  ::close(client);
  // Fired after the configured idle budget, with scheduling slack.
  EXPECT_GE(waited_ms, 150);
  EXPECT_LT(waited_ms, 5000);
}

}  // namespace
}  // namespace sasynth
