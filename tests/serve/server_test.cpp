#include "serve/server.h"

#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/strings.h"

namespace sasynth {
namespace {

// Small layer on the tiny device: a fresh DSE takes well under a second, a
// cache hit is instant.
const char* kRequestA =
    "sasynth-request v1\n"
    "layer 16,16,8,8,3\n"
    "device tiny\n"
    "option min_util 0.5\n"
    "end\n";
const char* kRequestB =
    "sasynth-request v1\n"
    "layer 8,16,4,4,3\n"
    "device tiny\n"
    "option min_util 0.5\n"
    "end\n";

ServeOptions memory_options(int jobs = 1) {
  ServeOptions options;
  options.jobs = jobs;
  options.cache_capacity = 16;
  return options;
}

std::string cache_dir(const char* tag) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) /
      (std::string("sasynth_server_") + tag);
  std::filesystem::remove_all(dir);
  return dir.string();
}

/// Runs one session over a canned line stream; returns every response
/// concatenated in emit order.
std::string run_session(SynthServer& server, const std::string& input) {
  std::vector<std::string> lines = split(input, '\n');
  std::size_t i = 0;
  std::string transcript;
  std::mutex mutex;  // writer thread vs. test thread
  server.serve(
      [&](std::string* line) {
        if (i >= lines.size()) return false;
        *line = lines[i++];
        return true;
      },
      [&](const std::string& response) {
        std::lock_guard<std::mutex> lock(mutex);
        transcript += response;
      });
  return transcript;
}

TEST(SynthServerTest, MalformedRequestGetsErrorResponse) {
  SynthServer server(memory_options());
  const std::string response =
      server.handle("sasynth-request v1\nlayer 1,2\nend\n");
  EXPECT_TRUE(starts_with(response, "sasynth-response v1 error"));
  EXPECT_EQ(server.counters().requests.load(), 1);
  EXPECT_EQ(server.counters().errors.load(), 1);
  EXPECT_EQ(server.counters().dse_runs.load(), 0);
}

TEST(SynthServerTest, CachedResponseIsByteIdenticalAndSkipsTheDse) {
  SynthServer server(memory_options());
  const std::string cold = server.handle(kRequestA);
  ASSERT_TRUE(starts_with(cold, "sasynth-response v1 ok")) << cold;
  EXPECT_EQ(server.counters().dse_runs.load(), 1);
  const std::int64_t cold_work = server.counters().dse_work_items.load();
  EXPECT_GT(cold_work, 0);

  const std::string warm = server.handle(kRequestA);
  EXPECT_EQ(warm, cold);  // byte-identical, though it came from the cache
  // The warm request never re-entered the exploration.
  EXPECT_EQ(server.counters().dse_runs.load(), 1);
  EXPECT_EQ(server.counters().dse_work_items.load(), cold_work);
  EXPECT_EQ(server.cache().stats().hits, 1);
}

TEST(SynthServerTest, DisabledCacheStillYieldsIdenticalResponses) {
  ServeOptions options = memory_options();
  options.cache_enabled = false;
  SynthServer server(options);
  const std::string first = server.handle(kRequestA);
  const std::string second = server.handle(kRequestA);
  EXPECT_EQ(first, second);
  EXPECT_EQ(server.counters().dse_runs.load(), 2);  // no memoization
}

TEST(SynthServerTest, DiskCacheWarmsAcrossServerInstances) {
  const std::string dir = cache_dir("across");
  ServeOptions options = memory_options();
  options.cache_dir = dir;

  std::string cold;
  {
    SynthServer server(options);
    cold = server.handle(kRequestA);
    EXPECT_EQ(server.counters().dse_runs.load(), 1);
  }
  SynthServer warm_server(options);
  const std::string warm = warm_server.handle(kRequestA);
  EXPECT_EQ(warm, cold);
  EXPECT_EQ(warm_server.counters().dse_runs.load(), 0);
  EXPECT_EQ(warm_server.counters().dse_work_items.load(), 0);
  EXPECT_EQ(warm_server.cache().stats().disk_hits, 1);
}

TEST(SynthServerTest, SessionCommandsAndOrdering) {
  SynthServer server(memory_options());
  const std::string transcript =
      run_session(server, std::string("ping\n") + kRequestA + "bogus\n");
  // Responses come back in request order regardless of completion order.
  const std::size_t pong = transcript.find("sasynth-pong v1");
  const std::size_t ok = transcript.find("sasynth-response v1 ok");
  const std::size_t error = transcript.find("sasynth-response v1 error");
  ASSERT_NE(pong, std::string::npos) << transcript;
  ASSERT_NE(ok, std::string::npos) << transcript;
  ASSERT_NE(error, std::string::npos) << transcript;
  EXPECT_LT(pong, ok);
  EXPECT_LT(ok, error);
  EXPECT_EQ(server.counters().commands.load(), 1);
}

TEST(SynthServerTest, ShutdownStopsTheSessionAndDrains) {
  SynthServer server(memory_options());
  const std::string transcript =
      run_session(server, std::string(kRequestA) + "shutdown\nping\n");
  EXPECT_NE(transcript.find("sasynth-response v1 ok"), std::string::npos);
  EXPECT_NE(transcript.find("sasynth-bye v1"), std::string::npos);
  // The line after `shutdown` is never processed.
  EXPECT_EQ(transcript.find("sasynth-pong"), std::string::npos);
  EXPECT_TRUE(server.stop_requested());
}

TEST(SynthServerTest, StatsCommandReportsCountersAndCache) {
  SynthServer server(memory_options());
  // `stats` drains in-flight work, so the stats between the two identical
  // requests pins their order: request execution is asynchronous at any
  // jobs count, and without the barrier the second request would race the
  // first — sometimes a cache hit, sometimes a coalesced follower.
  const std::string transcript = run_session(
      server, std::string(kRequestA) + "stats\n" + kRequestA + "stats\n");
  EXPECT_NE(transcript.find("sasynth-stats v1"), std::string::npos);
  EXPECT_NE(transcript.find("requests 2\n"), std::string::npos) << transcript;
  EXPECT_NE(transcript.find("ok 2\n"), std::string::npos);
  EXPECT_NE(transcript.find("cache_hits 1\n"), std::string::npos);
  EXPECT_NE(transcript.find("cache_misses 1\n"), std::string::npos);
  EXPECT_NE(transcript.find("dse_runs 1\n"), std::string::npos);
  EXPECT_NE(transcript.find("queue_limit 64\n"), std::string::npos);
}

TEST(SynthServerTest, BackpressureAnswersRetryDeterministically) {
  ServeOptions options = memory_options(/*jobs=*/2);
  options.queue_limit = 1;
  SynthServer server(options);

  // Fill the admission queue with a gated blocker so the session's request
  // is refused — no timing involved.
  std::mutex mutex;
  std::condition_variable cv;
  bool open = false;
  ASSERT_EQ(Admission::kAccepted, server.scheduler().try_submit([&](bool) {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return open; });
  }));

  std::vector<std::string> lines = split(std::string(kRequestA), '\n');
  std::size_t i = 0;
  std::string transcript;
  std::mutex transcript_mutex;
  server.serve(
      [&](std::string* line) {
        if (i < lines.size()) {
          *line = lines[i++];
          return true;
        }
        // The request block has been submitted (and refused) by now; release
        // the blocker so the session's final drain can finish.
        {
          std::lock_guard<std::mutex> lock(mutex);
          open = true;
        }
        cv.notify_all();
        return false;
      },
      [&](const std::string& response) {
        std::lock_guard<std::mutex> lock(transcript_mutex);
        transcript += response;
      });

  EXPECT_NE(transcript.find("sasynth-response v1 retry"), std::string::npos)
      << transcript;
  EXPECT_NE(transcript.find("retry later"), std::string::npos);
  EXPECT_EQ(server.counters().rejected.load(), 1);
  EXPECT_EQ(server.counters().dse_runs.load(), 0);
}

/// `base` with `deadline_ms 0` spliced in before `end`: dead on arrival,
/// same canonical key (deadline_ms is execution policy, never key material).
std::string expired_block(const char* base) {
  std::string block(base);
  block.insert(block.rfind("end\n"), "deadline_ms 0\n");
  return block;
}

TEST(SynthServerTest, CoalescedFollowerVerdictsUpdateTheGlobalRegistry) {
  obs::set_metrics_enabled(true);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  const std::int64_t rejected_before =
      reg.counter("serve_rejected_total").value();
  const std::int64_t shed_before =
      reg.counter("serve_shed_expired_total").value();

  SynthServer server(memory_options());
  const ParsedRequest peek = parse_request_block(kRequestA);
  ASSERT_TRUE(peek.ok) << peek.error;
  const std::string key = canonical_request_text(peek.request);
  // The test holds the leader role so both submissions below park as
  // followers and the flight closes exactly when the test completes it.
  ASSERT_EQ(server.singleflight().join(key, {}), SingleFlight::Role::kLeader);

  std::mutex mutex;
  std::map<std::uint64_t, std::string> responses;
  auto post = [&](std::uint64_t seq, std::string response) {
    std::lock_guard<std::mutex> lock(mutex);
    responses[seq] = std::move(response);
  };
  server.submit_session_block(kRequestA, /*is_deploy=*/false, 0, post);
  server.submit_session_block(expired_block(kRequestA), /*is_deploy=*/false, 1,
                              post);
  EXPECT_EQ(server.counters().coalesced.load(), 2);

  // A shareable retry verdict: follower 0 receives it byte-for-byte;
  // follower 1's own already-fired deadline outranks it (shed).
  const std::string retry = format_retry_response("queue full, retry later");
  EXPECT_EQ(server.singleflight().complete(key, retry, true), 2);
  EXPECT_EQ(responses[0], retry);
  EXPECT_NE(responses[1].find("deadline expired waiting in queue"),
            std::string::npos)
      << responses[1];

  // The legacy stats block and the registry (stats --format=prom|json) must
  // agree: each follower verdict bumps both or neither.
  EXPECT_EQ(server.counters().rejected.load(), 1);
  EXPECT_EQ(server.counters().shed_expired.load(), 1);
  EXPECT_EQ(reg.counter("serve_rejected_total").value() - rejected_before, 1);
  EXPECT_EQ(reg.counter("serve_shed_expired_total").value() - shed_before, 1);
  EXPECT_EQ(server.counters().dse_runs.load(), 0);
}

TEST(SynthServerTest, ExpiredAtAdmissionLeaderStillClosesItsFlight) {
  SynthServer server(memory_options());
  std::mutex mutex;
  std::map<std::uint64_t, std::string> responses;
  auto post = [&](std::uint64_t seq, std::string response) {
    std::lock_guard<std::mutex> lock(mutex);
    responses[seq] = std::move(response);
  };
  // Dead on arrival: the leader is answered inline, and its flight is
  // completed through a scheduler follow-up — off the submitting thread,
  // which in the TCP transport is the event loop — so followers' inline
  // re-executions can never stall it. drain() covers the follow-up.
  server.submit_session_block(expired_block(kRequestA), /*is_deploy=*/false, 0,
                              post);
  {
    std::lock_guard<std::mutex> lock(mutex);
    ASSERT_NE(responses[0].find("deadline expired before admission"),
              std::string::npos)
        << responses[0];
  }
  server.scheduler().drain();
  EXPECT_EQ(server.singleflight().inflight(), 0);

  // The key is free again: the identical canonical text runs as a fresh
  // leader instead of parking forever behind a leaked flight.
  server.submit_session_block(kRequestA, /*is_deploy=*/false, 1, post);
  server.scheduler().drain();
  std::lock_guard<std::mutex> lock(mutex);
  EXPECT_NE(responses[1].find("sasynth-response v1 ok"), std::string::npos)
      << responses[1];
  EXPECT_EQ(server.counters().coalesced.load(), 0);
}

// Satellite (d): the same request stream yields a byte-identical transcript
// at any worker count, with the cache on or off, cold or warm.
TEST(SynthServerTest, TranscriptIsInvariantAcrossJobsAndCacheState) {
  const std::string stream =
      std::string(kRequestA) + kRequestB + "ping\n" + kRequestA;

  SynthServer baseline(memory_options(/*jobs=*/1));
  const std::string reference = run_session(baseline, stream);
  ASSERT_NE(reference.find("sasynth-response v1 ok"), std::string::npos)
      << reference;

  {  // more workers, cold cache
    SynthServer server(memory_options(/*jobs=*/4));
    EXPECT_EQ(run_session(server, stream), reference);
  }
  {  // cache disabled entirely
    ServeOptions options = memory_options(/*jobs=*/4);
    options.cache_enabled = false;
    SynthServer server(options);
    EXPECT_EQ(run_session(server, stream), reference);
  }
  {  // warm replay on one server: second pass is all cache hits
    SynthServer server(memory_options(/*jobs=*/2));
    EXPECT_EQ(run_session(server, stream), reference);
    const std::int64_t work = server.counters().dse_work_items.load();
    EXPECT_EQ(run_session(server, stream), reference);
    EXPECT_EQ(server.counters().dse_work_items.load(), work);
  }
}

}  // namespace
}  // namespace sasynth
