#include "serve/event_loop.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <string>
#include <thread>
#include <vector>

#include "faultinject/faultinject.h"
#include "obs/metrics.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/tcp.h"
#include "util/strings.h"

namespace sasynth {
namespace {

int connect_loopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::string read_to_eof(int fd) {
  std::string out;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return out;
    }
    out.append(chunk, static_cast<std::size_t>(n));
  }
}

/// One full client session against the loop: write the script, half-close,
/// read everything until the server closes.
std::string run_client(int port, const std::string& script) {
  const int fd = connect_loopback(port);
  if (fd < 0) return "<connect failed>";
  if (!write_all_fd(fd, script)) {
    ::close(fd);
    return "<write failed>";
  }
  ::shutdown(fd, SHUT_WR);
  const std::string transcript = read_to_eof(fd);
  ::close(fd);
  return transcript;
}

std::string request_block(double min_util) {
  return strformat(
      "sasynth-request v1\n"
      "layer 16,16,8,8,3\n"
      "device tiny\n"
      "option min_util %g\n"
      "end\n",
      min_util);
}

class EventLoopTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::set_metrics_enabled(true); }
  void TearDown() override { fault::disarm_all(); }

  /// Starts a loop over `server` on an ephemeral port and runs it on a
  /// background thread. stop() joins and returns run()'s status.
  void start(SynthServer& server, EventLoopOptions options = {}) {
    loop_ = std::make_unique<EventLoopServer>(server, options);
    std::string error;
    ASSERT_TRUE(loop_->start(&error)) << error;
    thread_ = std::thread([this] { status_ = loop_->run(); });
  }

  int stop() {
    loop_->request_stop();
    return join();
  }

  int join() {
    if (thread_.joinable()) thread_.join();
    return status_;
  }

  int port() const { return loop_->port(); }
  EventLoopServer& loop() { return *loop_; }

 private:
  std::unique_ptr<EventLoopServer> loop_;
  std::thread thread_;
  int status_ = -1;
};

TEST_F(EventLoopTest, EndToEndSessionMatchesTheBlockingTransport) {
  ServeOptions options;
  options.jobs = 1;
  SynthServer server(options);
  start(server);

  const std::string transcript = run_client(
      port(), "ping\n" + request_block(0.5) + "shutdown\n");
  EXPECT_EQ(join(), 0);  // the shutdown command drains the loop itself

  const std::size_t pong = transcript.find("sasynth-pong v1");
  const std::size_t ok = transcript.find("sasynth-response v1 ok");
  const std::size_t bye = transcript.find("sasynth-bye v1");
  ASSERT_NE(pong, std::string::npos) << transcript;
  ASSERT_NE(ok, std::string::npos) << transcript;
  ASSERT_NE(bye, std::string::npos) << transcript;
  EXPECT_LT(pong, ok);
  EXPECT_LT(ok, bye);
  EXPECT_TRUE(server.stop_requested());

  // Byte-identical to the blocking path: the ok response is exactly what a
  // fresh handle() of the same block produces.
  SynthServer reference({});
  const std::string ref = reference.handle(request_block(0.5));
  EXPECT_NE(transcript.find(ref), std::string::npos) << transcript;
}

TEST_F(EventLoopTest, StormOfMixedSessionsMatchesSerialReplay) {
  // 64 concurrent sessions: 8 unique requests x 8 duplicate sessions each.
  // Every transcript must be byte-identical to a serial replay, and the 8
  // uniques must cost exactly 8 DSE executions (one dse_work_items unit per
  // unique request) — duplicates are answered by coalescing or the cache,
  // never by a second exploration.
  constexpr int kUnique = 8;
  constexpr int kDup = 8;

  // Serial reference on an identically-configured fresh server.
  std::vector<std::string> blocks;
  std::vector<std::string> expected;
  SynthServer reference({});
  for (int u = 0; u < kUnique; ++u) {
    blocks.push_back(request_block(0.1 + 0.05 * u));
    expected.push_back(reference.handle(blocks.back()));
    ASSERT_NE(expected.back().find("sasynth-response v1 ok"),
              std::string::npos)
        << expected.back();
  }
  const std::int64_t serial_work = reference.counters().dse_work_items.load();

  ServeOptions options;
  options.jobs = 4;
  options.queue_limit = 256;
  SynthServer server(options);
  start(server);

  std::vector<std::string> transcripts(kUnique * kDup);
  std::vector<std::thread> clients;
  clients.reserve(transcripts.size());
  for (int u = 0; u < kUnique; ++u) {
    for (int d = 0; d < kDup; ++d) {
      clients.emplace_back([this, &transcripts, &blocks, u, d] {
        transcripts[u * kDup + d] = run_client(port(), blocks[u]);
      });
    }
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(stop(), 0);

  for (int u = 0; u < kUnique; ++u) {
    for (int d = 0; d < kDup; ++d) {
      EXPECT_EQ(transcripts[u * kDup + d], expected[u])
          << "session " << u << "/" << d;
    }
  }
  EXPECT_EQ(server.counters().requests.load(), kUnique * kDup);
  EXPECT_EQ(server.counters().ok.load(), kUnique * kDup);
  EXPECT_EQ(server.counters().dse_runs.load(), kUnique);
  EXPECT_EQ(server.counters().dse_work_items.load(), serial_work);
  EXPECT_EQ(loop().open_connections(), 0);
}

TEST_F(EventLoopTest, LoopStaysLiveWhileAFlightIsParked) {
  // The liveness property behind coalescing: a session waiting on an
  // in-flight DSE parks as a singleflight follower and must never occupy the
  // loop thread. The test takes the leader role itself so the flight stays
  // open exactly as long as it wants, then proves the loop still answers a
  // second session while the first is parked — at jobs=1, where an inline
  // execution path would deadlock this exact sequence.
  ServeOptions options;
  options.jobs = 1;
  SynthServer server(options);
  start(server);

  const std::string block = request_block(0.5);
  const ParsedRequest peek = parse_request_block(block);
  ASSERT_TRUE(peek.ok) << peek.error;
  const std::string key = canonical_request_text(peek.request);
  ASSERT_EQ(server.singleflight().join(key, {}), SingleFlight::Role::kLeader);

  const int parked = connect_loopback(port());
  ASSERT_GE(parked, 0);
  ASSERT_TRUE(write_all_fd(parked, block));
  ::shutdown(parked, SHUT_WR);
  while (server.counters().coalesced.load() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // With the follower parked, a fresh session must still get served.
  EXPECT_NE(run_client(port(), "ping\n").find("sasynth-pong v1"),
            std::string::npos);

  // Release the flight; the parked session receives the shared bytes.
  const std::string shared = "sasynth-response v1 ok\nfake\nend\n";
  EXPECT_EQ(server.singleflight().complete(key, shared, true), 1);
  EXPECT_EQ(read_to_eof(parked), shared);
  ::close(parked);
  EXPECT_EQ(server.counters().dse_runs.load(), 0);  // nobody ran a DSE
  EXPECT_EQ(stop(), 0);
}

TEST_F(EventLoopTest, DrainMidStormFinishesAcceptedWorkAndExitsCleanly) {
  ServeOptions options;
  options.jobs = 2;
  options.queue_limit = 256;
  SynthServer server(options);
  EventLoopOptions loop_options;
  loop_options.drain_timeout_ms = 30000;
  start(server, loop_options);

  // Three client shapes, all holding their sockets open when the drain
  // fires: (a) answered sessions — request already answered, socket idle;
  // (b) parked sessions — a *partial* block and then silence; (c) racing
  // sessions — a request whose bytes may or may not have been read yet.
  // The drain must close (a) untouched, answer (b) with the parse error for
  // the truncated block, and either answer or drop (c) — but never hang.
  constexpr int kAnswered = 6;
  constexpr int kParked = 6;
  constexpr int kRacing = 4;
  constexpr int kClients = kAnswered + kParked + kRacing;
  SynthServer reference({});
  const std::string ref = reference.handle(request_block(0.5));

  std::vector<std::string> transcripts(kClients);
  std::atomic<int> settled{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([this, &transcripts, &settled, &ref, i] {
      const int fd = connect_loopback(port());
      if (fd < 0) {
        transcripts[i] = "<connect failed>";
        settled.fetch_add(1);
        return;
      }
      std::string& transcript = transcripts[i];
      if (i < kAnswered) {
        write_all_fd(fd, request_block(0.5));
        // Read the full response *before* reporting settled, so the drain
        // finds this session idle with its answer already delivered.
        char ch;
        while (transcript.size() < ref.size() && ::read(fd, &ch, 1) == 1) {
          transcript.push_back(ch);
        }
        settled.fetch_add(1);
      } else if (i < kAnswered + kParked) {
        // `layer 1,2` cannot parse, so the truncated block's answer is
        // unambiguously the parse error (a well-formed prefix would
        // default its missing fields and answer `ok`).
        write_all_fd(fd, "sasynth-request v1\nlayer 1,2\n");
        settled.fetch_add(1);
      } else {
        write_all_fd(fd, request_block(0.5));
        settled.fetch_add(1);
      }
      // No SHUT_WR: the session still looks open when the drain fires.
      transcript += read_to_eof(fd);
      ::close(fd);
    });
  }
  while (settled.load() < kClients) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(stop(), 0);  // SIGTERM path: clean bounded drain
  for (std::thread& t : clients) t.join();

  for (int i = 0; i < kClients; ++i) {
    if (i < kAnswered) {
      EXPECT_EQ(transcripts[i], ref) << "answered session " << i;
    } else if (i < kAnswered + kParked) {
      EXPECT_NE(transcripts[i].find("sasynth-response v1 error"),
                std::string::npos)
          << "parked session " << i << ": " << transcripts[i];
    } else {
      // Racing: depending on how far the loop had read this request when
      // the drain fired, the session sees the full byte-identical answer, a
      // parse error for a partially-read block, or nothing (bytes never
      // read — same as the blocking transport). Never a partial response.
      EXPECT_TRUE(transcripts[i].empty() || transcripts[i] == ref ||
                  transcripts[i].find("sasynth-response v1 error") !=
                      std::string::npos)
          << "racing session " << i << ": " << transcripts[i];
    }
  }
  EXPECT_FALSE(server.stop_requested());  // drained, not shut down
  EXPECT_TRUE(server.draining());
}

TEST_F(EventLoopTest, PollFaultsAreAbsorbedWithoutChangingResponses) {
  SynthServer reference({});
  const std::string ref = reference.handle(request_block(0.5));

  fault::FaultSpec spec;
  spec.kind = fault::ErrorKind::kError;
  spec.after = 1;
  spec.count = 25;  // a burst of failing epoll_wait/poll calls
  fault::arm(fault::kSiteLoopPoll, spec);

  ServeOptions options;
  options.jobs = 1;
  SynthServer server(options);
  start(server);
  const std::string transcript = run_client(port(), request_block(0.5));
  EXPECT_EQ(stop(), 0);

  EXPECT_EQ(transcript, ref);
  EXPECT_GT(fault::site(fault::kSiteLoopPoll).injected(), 0);
}

TEST_F(EventLoopTest, LostWakeupsAreRecoveredByTheBoundedWaitTick) {
  SynthServer reference({});
  const std::string ref = reference.handle(request_block(0.5));

  fault::FaultSpec spec;
  spec.kind = fault::ErrorKind::kError;
  spec.after = 1;
  spec.count = -1;  // EVERY wakeup is lost for the whole session
  fault::arm(fault::kSiteLoopWakeup, spec);

  ServeOptions options;
  options.jobs = 1;
  SynthServer server(options);
  start(server);
  const std::string transcript = run_client(port(), request_block(0.5));

  EXPECT_EQ(transcript, ref);  // delayed by the <=250 ms tick, never dropped
  EXPECT_GT(fault::site(fault::kSiteLoopWakeup).injected(), 0);
  fault::disarm_all();  // let the drain's own wakeup through
  EXPECT_EQ(stop(), 0);
}

TEST_F(EventLoopTest, MaxConnectionsRejectsOverflowWithARetryResponse) {
  ServeOptions options;
  options.jobs = 1;
  SynthServer server(options);
  EventLoopOptions loop_options;
  loop_options.max_connections = 1;
  start(server, loop_options);

  const int held = connect_loopback(port());
  ASSERT_GE(held, 0);
  // Make sure the loop has accepted the held connection before overflowing.
  while (loop().open_connections() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const std::string rejected = run_client(port(), "ping\n");
  EXPECT_NE(rejected.find("sasynth-response v1 retry"), std::string::npos)
      << rejected;
  EXPECT_NE(rejected.find("connection limit"), std::string::npos) << rejected;

  // The held session is unaffected and still works.
  ASSERT_TRUE(write_all_fd(held, "ping\n"));
  ::shutdown(held, SHUT_WR);
  EXPECT_NE(read_to_eof(held).find("sasynth-pong v1"), std::string::npos);
  ::close(held);
  EXPECT_EQ(stop(), 0);
}

TEST_F(EventLoopTest, FailedCommandWriteClosesOnlyThatSession) {
  ServeOptions options;
  options.jobs = 1;
  SynthServer server(options);
  start(server);

  // One injected write failure, consumed by the server's response write.
  // The client writes with raw send(2) — write_all_fd fires the same fault
  // site and would eat the window client-side.
  fault::FaultSpec spec;
  spec.kind = fault::ErrorKind::kError;
  spec.after = 1;
  spec.count = 1;
  fault::arm(fault::kSiteTcpWrite, spec);

  // Two commands in one burst: the first response write fails and destroys
  // the connection while the second line is still buffered — the dispatch
  // loop must re-resolve the connection and stop, never touch the freed
  // state (the ASan regression for the process_inbuf use-after-free).
  const int fd = connect_loopback(port());
  ASSERT_GE(fd, 0);
  const std::string script = "ping\nping\n";
  ASSERT_EQ(::send(fd, script.data(), script.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(script.size()));
  EXPECT_EQ(read_to_eof(fd).find("sasynth-pong"), std::string::npos);
  ::close(fd);
  EXPECT_GT(fault::site(fault::kSiteTcpWrite).injected(), 0);

  // The fault window is spent; an unrelated session is served normally.
  fault::disarm_all();
  EXPECT_NE(run_client(port(), "ping\n").find("sasynth-pong v1"),
            std::string::npos);
  EXPECT_EQ(stop(), 0);
}

TEST_F(EventLoopTest, FailedWriteOfTheTrailingEofCommandIsContained) {
  ServeOptions options;
  options.jobs = 1;
  SynthServer server(options);
  start(server);

  fault::FaultSpec spec;
  spec.kind = fault::ErrorKind::kError;
  spec.after = 1;
  spec.count = 1;
  fault::arm(fault::kSiteTcpWrite, spec);

  // An unterminated trailing command delivered at clean EOF: its response
  // write fails and destroys the connection mid-handle_eof — ending input
  // afterwards must re-resolve, not touch the freed connection.
  const int fd = connect_loopback(port());
  ASSERT_GE(fd, 0);
  const std::string script = "ping";  // no newline: the EOF frames it
  ASSERT_EQ(::send(fd, script.data(), script.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(script.size()));
  ::shutdown(fd, SHUT_WR);
  EXPECT_EQ(read_to_eof(fd).find("sasynth-pong"), std::string::npos);
  ::close(fd);
  EXPECT_GT(fault::site(fault::kSiteTcpWrite).injected(), 0);

  fault::disarm_all();
  EXPECT_NE(run_client(port(), "ping\n").find("sasynth-pong v1"),
            std::string::npos);
  EXPECT_EQ(stop(), 0);
}

TEST_F(EventLoopTest, ExpiredAtAdmissionRequestDoesNotLeakItsFlight) {
  ServeOptions options;
  options.jobs = 1;
  SynthServer server(options);
  start(server);
  SynthServer reference({});
  const std::string ref = reference.handle(request_block(0.5));

  // deadline_ms 0: refused at admission on the loop thread. The flight it
  // opened is completed through a scheduler follow-up — if it leaked, the
  // identical request below would park forever as a follower of a leader
  // that will never complete.
  std::string expired = request_block(0.5);
  expired.insert(expired.rfind("end\n"), "deadline_ms 0\n");
  const std::string refused = run_client(port(), expired);
  EXPECT_NE(refused.find("deadline expired before admission"),
            std::string::npos)
      << refused;

  EXPECT_EQ(run_client(port(), request_block(0.5)), ref);
  EXPECT_EQ(stop(), 0);
}

TEST_F(EventLoopTest, SlowLorisSessionIsDroppedByTheIoTimeout) {
  ServeOptions options;
  options.jobs = 1;
  options.io_timeout_ms = 200;
  SynthServer server(options);
  start(server);

  obs::Counter& io_timeouts =
      obs::MetricsRegistry::global().counter("io_timeouts_total");
  const std::int64_t before = io_timeouts.value();

  const int fd = connect_loopback(port());
  ASSERT_GE(fd, 0);
  // Half a request, then silence: the read deadline must end the session.
  ASSERT_TRUE(write_all_fd(fd, "sasynth-request v1\nlayer 1,2\n"));
  const std::string transcript = read_to_eof(fd);
  ::close(fd);

  // The partial block was submitted at timeout, so the one answer the
  // session got is the parse error for the truncated request.
  EXPECT_NE(transcript.find("sasynth-response v1 error"), std::string::npos)
      << transcript;
  EXPECT_GT(io_timeouts.value(), before);
  EXPECT_EQ(stop(), 0);
}

}  // namespace
}  // namespace sasynth
