#include "serve/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace sasynth {
namespace {

// A gate tasks can block on, so tests control exactly how many requests are
// in flight (no sleeps, no timing assumptions).
class Gate {
 public:
  void open() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return open_; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
};

TEST(RequestSchedulerTest, InlineAtOneJob) {
  RequestScheduler scheduler(/*jobs=*/1, /*queue_limit=*/4);
  std::atomic<int> ran{0};
  EXPECT_TRUE(scheduler.try_submit([&] { ++ran; }));
  // jobs=1 executes on the submitting thread: complete before return.
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(scheduler.pending(), 0);
  EXPECT_EQ(scheduler.high_water(), 1);
  EXPECT_EQ(scheduler.rejected(), 0);
  EXPECT_EQ(scheduler.jobs(), 1);
}

TEST(RequestSchedulerTest, DrainWaitsForAllAcceptedWork) {
  RequestScheduler scheduler(/*jobs=*/2, /*queue_limit=*/16);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(scheduler.try_submit([&] { ++ran; }));
  }
  scheduler.drain();
  EXPECT_EQ(ran.load(), 8);
  EXPECT_EQ(scheduler.pending(), 0);
  EXPECT_GE(scheduler.high_water(), 1);
  EXPECT_LE(scheduler.high_water(), 8);
}

TEST(RequestSchedulerTest, RefusesBeyondTheAdmissionLimit) {
  RequestScheduler scheduler(/*jobs=*/2, /*queue_limit=*/2);
  Gate gate;
  std::atomic<int> ran{0};
  ASSERT_TRUE(scheduler.try_submit([&] {
    gate.wait();
    ++ran;
  }));
  ASSERT_TRUE(scheduler.try_submit([&] {
    gate.wait();
    ++ran;
  }));
  // Two in flight == the limit: the third is refused, not queued.
  std::atomic<int> extra{0};
  EXPECT_FALSE(scheduler.try_submit([&] { ++extra; }));
  EXPECT_EQ(scheduler.rejected(), 1);
  EXPECT_EQ(scheduler.high_water(), 2);

  gate.open();
  scheduler.drain();
  EXPECT_EQ(ran.load(), 2);
  EXPECT_EQ(extra.load(), 0);  // the refused lambda never runs

  // Capacity is available again after the drain.
  EXPECT_TRUE(scheduler.try_submit([&] { ++ran; }));
  scheduler.drain();
  EXPECT_EQ(ran.load(), 3);
}

TEST(RequestSchedulerTest, QueueLimitClampedToOne) {
  RequestScheduler scheduler(/*jobs=*/1, /*queue_limit=*/-5);
  EXPECT_EQ(scheduler.queue_limit(), 1);
}

TEST(RequestSchedulerTest, DestructionDrainsInFlightWork) {
  std::atomic<int> ran{0};
  {
    RequestScheduler scheduler(/*jobs=*/2, /*queue_limit=*/16);
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(scheduler.try_submit([&] { ++ran; }));
    }
    // No drain: the destructor must finish accepted work, not drop it.
  }
  EXPECT_EQ(ran.load(), 6);
}

}  // namespace
}  // namespace sasynth
