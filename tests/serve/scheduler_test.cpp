#include "serve/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace sasynth {
namespace {

// A gate tasks can block on, so tests control exactly how many requests are
// in flight (no sleeps, no timing assumptions).
class Gate {
 public:
  void open() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return open_; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
};

TEST(RequestSchedulerTest, OneJobNeverExecutesOnTheSubmitter) {
  // jobs=1 must still hand work to a worker thread: the submitter is the
  // event-loop (or stdio reader) thread, and executing a request inline
  // would block every other session behind this one. The gated task proves
  // it: try_submit returns while the task is still parked.
  RequestScheduler scheduler(/*jobs=*/1, /*queue_limit=*/4);
  Gate gate;
  std::atomic<int> ran{0};
  EXPECT_EQ(Admission::kAccepted, scheduler.try_submit([&](bool) {
    gate.wait();
    ++ran;
  }));
  EXPECT_EQ(ran.load(), 0);  // accepted, parked, not run on this thread
  EXPECT_EQ(scheduler.pending(), 1);
  gate.open();
  scheduler.drain();
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(scheduler.pending(), 0);
  EXPECT_EQ(scheduler.high_water(), 1);
  EXPECT_EQ(scheduler.rejected(), 0);
  EXPECT_EQ(scheduler.jobs(), 1);
}

TEST(RequestSchedulerTest, DrainWaitsForAllAcceptedWork) {
  RequestScheduler scheduler(/*jobs=*/2, /*queue_limit=*/16);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(Admission::kAccepted, scheduler.try_submit([&](bool) { ++ran; }));
  }
  scheduler.drain();
  EXPECT_EQ(ran.load(), 8);
  EXPECT_EQ(scheduler.pending(), 0);
  EXPECT_GE(scheduler.high_water(), 1);
  EXPECT_LE(scheduler.high_water(), 8);
}

TEST(RequestSchedulerTest, RefusesBeyondTheAdmissionLimit) {
  RequestScheduler scheduler(/*jobs=*/2, /*queue_limit=*/2);
  Gate gate;
  std::atomic<int> ran{0};
  ASSERT_EQ(Admission::kAccepted, scheduler.try_submit([&](bool) {
    gate.wait();
    ++ran;
  }));
  ASSERT_EQ(Admission::kAccepted, scheduler.try_submit([&](bool) {
    gate.wait();
    ++ran;
  }));
  // Two in flight == the limit: the third is refused, not queued.
  std::atomic<int> extra{0};
  EXPECT_EQ(Admission::kQueueFull, scheduler.try_submit([&](bool) { ++extra; }));
  EXPECT_EQ(scheduler.rejected(), 1);
  EXPECT_EQ(scheduler.high_water(), 2);

  gate.open();
  scheduler.drain();
  EXPECT_EQ(ran.load(), 2);
  EXPECT_EQ(extra.load(), 0);  // the refused lambda never runs

  // Capacity is available again after the drain.
  EXPECT_EQ(Admission::kAccepted, scheduler.try_submit([&](bool) { ++ran; }));
  scheduler.drain();
  EXPECT_EQ(ran.load(), 3);
}

TEST(RequestSchedulerTest, QueueLimitClampedToOne) {
  RequestScheduler scheduler(/*jobs=*/1, /*queue_limit=*/-5);
  EXPECT_EQ(scheduler.queue_limit(), 1);
}

TEST(RequestSchedulerTest, ExpiredDeadlineRefusedAtAdmission) {
  RequestScheduler scheduler(/*jobs=*/1, /*queue_limit=*/4);
  std::atomic<int> ran{0};
  // An already-expired deadline never runs the work, never takes a slot,
  // and is distinguished from backpressure.
  EXPECT_EQ(Admission::kExpired,
            scheduler.try_submit([&](bool) { ++ran; }, Deadline::after_ms(0)));
  EXPECT_EQ(ran.load(), 0);
  EXPECT_EQ(scheduler.rejected_expired(), 1);
  EXPECT_EQ(scheduler.rejected(), 0);
  EXPECT_EQ(scheduler.pending(), 0);
  // A live deadline is admitted normally.
  EXPECT_EQ(Admission::kAccepted,
            scheduler.try_submit([&](bool shed) { ran += shed ? 0 : 1; },
                                 Deadline::after_ms(60000)));
  scheduler.drain();
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(scheduler.shed_expired(), 0);
}

TEST(RequestSchedulerTest, DeadlineExpiringInQueueShedsAtDequeue) {
  RequestScheduler scheduler(/*jobs=*/2, /*queue_limit=*/16);
  Gate gate;
  std::atomic<int> held{0};
  // Fill both workers so later submissions sit in the queue.
  for (int i = 0; i < 2; ++i) {
    ASSERT_EQ(Admission::kAccepted, scheduler.try_submit([&](bool) {
      ++held;
      gate.wait();
    }));
  }
  while (held.load() < 2) std::this_thread::yield();
  // Admitted live, but the 1 ms budget is gone long before a worker frees
  // up — the callback must still run (ordered responses) with shed=true.
  std::atomic<int> shed_count{0};
  std::atomic<int> full_runs{0};
  ASSERT_EQ(Admission::kAccepted, scheduler.try_submit(
                                      [&](bool shed) {
                                        if (shed) {
                                          ++shed_count;
                                        } else {
                                          ++full_runs;
                                        }
                                      },
                                      Deadline::after_ms(1)));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate.open();
  scheduler.drain();
  EXPECT_EQ(shed_count.load(), 1);
  EXPECT_EQ(full_runs.load(), 0);
  EXPECT_EQ(scheduler.shed_expired(), 1);
}

TEST(RequestSchedulerTest, FollowUpIsAdmissionExemptRunsOffCallerAndDrains) {
  RequestScheduler scheduler(/*jobs=*/2, /*queue_limit=*/1);
  Gate gate;
  std::atomic<int> ran{0};
  ASSERT_EQ(Admission::kAccepted, scheduler.try_submit([&](bool) {
    gate.wait();
    ++ran;
  }));
  // The queue is at its limit, but a follow-up is an internal continuation,
  // not a client admission: it must be accepted anyway, must not execute on
  // the submitting thread (the event loop completes singleflight flights
  // through this path), and must be covered by drain().
  scheduler.submit_followup([&] {
    gate.wait();
    ++ran;
  });
  EXPECT_EQ(ran.load(), 0);  // parked on workers, nothing ran inline
  EXPECT_EQ(scheduler.pending(), 2);
  EXPECT_EQ(scheduler.rejected(), 0);
  gate.open();
  scheduler.drain();
  EXPECT_EQ(ran.load(), 2);
  EXPECT_EQ(scheduler.pending(), 0);
}

TEST(RequestSchedulerTest, DestructionDrainsInFlightWork) {
  std::atomic<int> ran{0};
  {
    RequestScheduler scheduler(/*jobs=*/2, /*queue_limit=*/16);
    for (int i = 0; i < 6; ++i) {
      ASSERT_EQ(Admission::kAccepted, scheduler.try_submit([&](bool) { ++ran; }));
    }
    // No drain: the destructor must finish accepted work, not drop it.
  }
  EXPECT_EQ(ran.load(), 6);
}

}  // namespace
}  // namespace sasynth
