// Deploy protocol + server plumbing: parse errors, canonical-text policy,
// cached-vs-fresh byte identity, deadline handling, and a full session mix
// of synthesis and deploy blocks.
#include <gtest/gtest.h>

#include <mutex>
#include <string>
#include <vector>

#include "serve/deploy_protocol.h"
#include "serve/server.h"
#include "util/deadline.h"
#include "util/strings.h"

namespace sasynth {
namespace {

const char* kDeployRequest =
    "sasynth-deploy v1\n"
    "network tiny\n"
    "fleet 1\n"
    "device tiny\n"
    "option min_util 0.5\n"
    "end\n";

const char* kWeightedFleetRequest =
    "sasynth-deploy v1\n"
    "network tiny 3\n"
    "network tiny 0.25\n"
    "fleet 2\n"
    "device tiny\n"
    "option min_util 0.5\n"
    "end\n";

ServeOptions memory_options(int jobs = 1) {
  ServeOptions options;
  options.jobs = jobs;
  options.cache_capacity = 16;
  return options;
}

std::string run_session(SynthServer& server, const std::string& input) {
  std::vector<std::string> lines = split(input, '\n');
  std::size_t i = 0;
  std::string transcript;
  std::mutex mutex;
  server.serve(
      [&](std::string* line) {
        if (i >= lines.size()) return false;
        *line = lines[i++];
        return true;
      },
      [&](const std::string& response) {
        std::lock_guard<std::mutex> lock(mutex);
        transcript += response;
      });
  return transcript;
}

TEST(DeployProtocol, ParsesAFullRequest) {
  const ParsedDeployRequest parsed = parse_deploy_request_block(
      "sasynth-deploy v1\n"
      "network alexnet 2.5\n"
      "network vgg16\n"
      "fleet 3\n"
      "device tiny\n"
      "dtype fixed8_16\n"
      "option min_util 0.6\n"
      "deadline_ms 1500\n"
      "end\n");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const DeployRequest& r = parsed.request;
  ASSERT_EQ(r.workload.size(), 2u);
  EXPECT_EQ(r.workload[0].network, "alexnet");
  EXPECT_DOUBLE_EQ(r.workload[0].weight, 2.5);
  EXPECT_EQ(r.workload[1].network, "vgg16");
  EXPECT_DOUBLE_EQ(r.workload[1].weight, 1.0);
  EXPECT_EQ(r.fleet_size, 3);
  EXPECT_EQ(r.device.name, tiny_test_device().name);
  EXPECT_EQ(r.dtype, DataType::kFixed8_16);
  EXPECT_DOUBLE_EQ(r.dse.min_dsp_util, 0.6);
  EXPECT_EQ(r.deadline_ms, 1500);
}

TEST(DeployProtocol, RejectsMalformedBlocks) {
  const char* bad[] = {
      // wrong magic
      "sasynth-request v1\nnetwork tiny\nend\n",
      // no network line at all
      "sasynth-deploy v1\nfleet 1\nend\n",
      // unknown network name
      "sasynth-deploy v1\nnetwork resnet50\nend\n",
      // non-positive weight
      "sasynth-deploy v1\nnetwork tiny 0\nend\n",
      "sasynth-deploy v1\nnetwork tiny -1\nend\n",
      // fleet size out of range / duplicated
      "sasynth-deploy v1\nnetwork tiny\nfleet 0\nend\n",
      "sasynth-deploy v1\nnetwork tiny\nfleet 65\nend\n",
      "sasynth-deploy v1\nnetwork tiny\nfleet 2\nfleet 2\nend\n",
      // unknown field and unknown option key
      "sasynth-deploy v1\nnetwork tiny\nbitstream yes\nend\n",
      "sasynth-deploy v1\nnetwork tiny\noption warp_speed 9\nend\n",
  };
  for (const char* block : bad) {
    const ParsedDeployRequest parsed = parse_deploy_request_block(block);
    EXPECT_FALSE(parsed.ok) << block;
    EXPECT_FALSE(parsed.error.empty()) << block;
  }
}

TEST(DeployProtocol, CanonicalTextExcludesExecutionPolicy) {
  ParsedDeployRequest a = parse_deploy_request_block(kDeployRequest);
  ASSERT_TRUE(a.ok) << a.error;
  ParsedDeployRequest b = parse_deploy_request_block(kDeployRequest);
  ASSERT_TRUE(b.ok);
  b.request.deadline_ms = 123;
  b.request.dse.jobs = 7;
  EXPECT_EQ(canonical_deploy_request_text(a.request),
            canonical_deploy_request_text(b.request));
  // ...but everything request-identity-bearing is included.
  ParsedDeployRequest c = parse_deploy_request_block(kDeployRequest);
  ASSERT_TRUE(c.ok);
  c.request.fleet_size = 2;
  EXPECT_NE(canonical_deploy_request_text(a.request),
            canonical_deploy_request_text(c.request));
  const std::string canonical = canonical_deploy_request_text(a.request);
  EXPECT_TRUE(starts_with(canonical, "deploy\n")) << canonical;
  // Derived per-design keys are distinct.
  EXPECT_NE(deploy_cache_entry_text(canonical, 0, 2),
            deploy_cache_entry_text(canonical, 1, 2));
}

TEST(DeployServer, CachedResponseIsByteIdentical) {
  SynthServer server(memory_options());
  const std::string cold = server.handle_deploy(kDeployRequest);
  ASSERT_TRUE(starts_with(cold, "sasynth-response v1 ok")) << cold;
  EXPECT_NE(cold.find("fleet 1"), std::string::npos);
  EXPECT_NE(cold.find("sasynth-design v1"), std::string::npos);
  // Assign lines carry the resolved network's display name.
  EXPECT_NE(cold.find("assign TinyTestNet"), std::string::npos) << cold;

  const std::string warm = server.handle_deploy(kDeployRequest);
  EXPECT_EQ(warm, cold);
  EXPECT_GT(server.cache().stats().hits, 0);
}

TEST(DeployServer, MultiDesignFleetCachesAllOrNothing) {
  SynthServer server(memory_options());
  const std::string cold = server.handle_deploy(kWeightedFleetRequest);
  ASSERT_TRUE(starts_with(cold, "sasynth-response v1 ok")) << cold;
  const std::string warm = server.handle_deploy(kWeightedFleetRequest);
  EXPECT_EQ(warm, cold);
  // Both assignment lines carry their request weights, workload order.
  const std::size_t first = cold.find("assign TinyTestNet weight=3");
  const std::size_t second = cold.find("assign TinyTestNet weight=0.25");
  ASSERT_NE(first, std::string::npos) << cold;
  ASSERT_NE(second, std::string::npos) << cold;
  EXPECT_LT(first, second);
}

TEST(DeployServer, MalformedDeployBlockGetsErrorResponse) {
  SynthServer server(memory_options());
  const std::string response =
      server.handle_deploy("sasynth-deploy v1\nnetwork nope\nend\n");
  EXPECT_TRUE(starts_with(response, "sasynth-response v1 error")) << response;
}

TEST(DeployServer, PreFiredTokenTimesOutInFleetSelection) {
  SynthServer server(memory_options());
  CancelToken token = CancelToken::cancellable();
  token.request_cancel();
  const std::string response = server.handle_deploy(kDeployRequest, token);
  EXPECT_TRUE(starts_with(response, "sasynth-response v1 timeout")) << response;
  EXPECT_NE(response.find("deadline exceeded during fleet selection"),
            std::string::npos)
      << response;
}

TEST(DeployServer, SessionMixesSynthesisAndDeployBlocks) {
  const char* kSynthRequest =
      "sasynth-request v1\n"
      "layer 16,16,8,8,3\n"
      "device tiny\n"
      "option min_util 0.5\n"
      "end\n";
  SynthServer server(memory_options());
  const std::string transcript = run_session(
      server, std::string("ping\n") + kSynthRequest + kDeployRequest);
  const std::size_t pong = transcript.find("sasynth-pong v1");
  const std::size_t synth_ok = transcript.find("sasynth-response v1 ok");
  const std::size_t fleet = transcript.find("fleet 1");
  ASSERT_NE(pong, std::string::npos) << transcript;
  ASSERT_NE(synth_ok, std::string::npos) << transcript;
  ASSERT_NE(fleet, std::string::npos) << transcript;
  EXPECT_LT(pong, synth_ok);
  EXPECT_LT(synth_ok, fleet);  // responses in request order
}

TEST(DeployServer, SessionTranscriptInvariantAcrossJobsAndCacheState) {
  const std::string stream =
      std::string(kDeployRequest) + kWeightedFleetRequest + kDeployRequest;
  SynthServer baseline(memory_options(/*jobs=*/1));
  const std::string reference = run_session(baseline, stream);
  ASSERT_NE(reference.find("sasynth-response v1 ok"), std::string::npos)
      << reference;
  {
    SynthServer server(memory_options(/*jobs=*/4));
    EXPECT_EQ(run_session(server, stream), reference);
  }
  {
    ServeOptions options = memory_options(/*jobs=*/2);
    options.cache_enabled = false;
    SynthServer server(options);
    EXPECT_EQ(run_session(server, stream), reference);
  }
}

}  // namespace
}  // namespace sasynth
