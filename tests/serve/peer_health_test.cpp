// Resilience-tier tests: the breaker state machine (closed -> open ->
// half-open -> closed) driven socket-free with synthetic clocks, the
// deterministic backoff schedule, probe single-flight, the shard.probe
// fault site, and the coordinator-level behaviors — open peers skipped
// byte-identically, a restarted peer re-admitted through the background
// prober, and a stalled peer hedged by local re-execution.
#include "serve/peer_health.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "faultinject/faultinject.h"
#include "obs/metrics.h"
#include "serve/event_loop.h"
#include "serve/server.h"
#include "serve/shard.h"
#include "util/strings.h"

namespace sasynth {
namespace {

using Clock = PeerHealthRegistry::Clock;
using Admit = PeerHealthRegistry::Admit;

const char* const kGoogLeNetReduce = "192,96,28,28,1";

std::string request_block(const std::string& layer, int jobs) {
  return strformat(
      "sasynth-request v1\n"
      "layer %s\n"
      "device arria10_gt1150\n"
      "dtype float32\n"
      "option jobs %d\n"
      "end\n",
      layer.c_str(), jobs);
}

/// One worker daemon on its own thread; `port` 0 = ephemeral. A fixed port
/// lets a test restart a killed worker on the same address — the re-admission
/// scenario.
class WorkerDaemon {
 public:
  explicit WorkerDaemon(ServeOptions options = {}, int port = 0)
      : server_(options) {
    EventLoopOptions loop_options;
    loop_options.port = port;
    loop_ = std::make_unique<EventLoopServer>(server_, loop_options);
    std::string error;
    started_ = loop_->start(&error);
    EXPECT_TRUE(started_) << error;
    if (started_) thread_ = std::thread([this] { loop_->run(); });
  }

  ~WorkerDaemon() { stop(); }

  void stop() {
    if (thread_.joinable()) {
      loop_->request_stop();
      thread_.join();
    }
  }

  int port() const { return loop_->port(); }
  std::string peer() const {
    return "127.0.0.1:" + std::to_string(loop_->port());
  }

 private:
  SynthServer server_;
  std::unique_ptr<EventLoopServer> loop_;
  std::thread thread_;
  bool started_ = false;
};

/// A listener that never accepts: connects succeed (kernel backlog) and the
/// request write lands in the socket buffer, but no response ever comes —
/// the deterministic "slow peer" for hedge tests.
class SilentPeer {
 public:
  SilentPeer() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    EXPECT_EQ(::listen(fd_, 8), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    port_ = ntohs(addr.sin_port);
  }
  ~SilentPeer() {
    if (fd_ >= 0) ::close(fd_);
  }
  int port() const { return port_; }
  std::string peer() const { return "127.0.0.1:" + std::to_string(port_); }

 private:
  int fd_ = -1;
  int port_ = 0;
};

class PeerHealthTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::set_metrics_enabled(true); }
  void TearDown() override { fault::disarm_all(); }

  static obs::Counter& breaker_opens() {
    return obs::MetricsRegistry::global().counter("shard_breaker_opens_total");
  }
  static obs::Counter& probes_total() {
    return obs::MetricsRegistry::global().counter("shard_probes_total");
  }
  static obs::Counter& hedges_total() {
    return obs::MetricsRegistry::global().counter("shard_hedges_total");
  }
  static obs::Counter& hedge_wins_total() {
    return obs::MetricsRegistry::global().counter("shard_hedge_wins_total");
  }
  static obs::Counter& degraded_total() {
    return obs::MetricsRegistry::global().counter("shard_degraded_total");
  }
  static obs::Counter& requests_total() {
    return obs::MetricsRegistry::global().counter("shard_requests_total");
  }

  /// The `peer<i>_<field>` value out of a health payload, or "" if absent.
  static std::string health_field(const std::string& health, std::size_t peer,
                                  const std::string& field) {
    const std::string key =
        strformat("peer%zu_%s ", peer, field.c_str());
    for (const std::string& line : split(health, '\n')) {
      if (starts_with(line, key)) return line.substr(key.size());
    }
    return "";
  }
};

// ---------------------------------------------------------------------------
// The deterministic backoff schedule.

TEST_F(PeerHealthTest, BackoffScheduleIsDeterministicAndCapped) {
  PeerHealthOptions opts;
  opts.probe_interval_ms = 1000;
  EXPECT_EQ(PeerHealthRegistry::backoff_ms(opts, 0), 1000);
  EXPECT_EQ(PeerHealthRegistry::backoff_ms(opts, 1), 2000);
  EXPECT_EQ(PeerHealthRegistry::backoff_ms(opts, 2), 4000);
  EXPECT_EQ(PeerHealthRegistry::backoff_ms(opts, 3), 8000);
  EXPECT_EQ(PeerHealthRegistry::backoff_ms(opts, 4), 16000);
  EXPECT_EQ(PeerHealthRegistry::backoff_ms(opts, 5), 16000);    // capped
  EXPECT_EQ(PeerHealthRegistry::backoff_ms(opts, 1000), 16000); // no overflow

  // The same history always yields the same schedule.
  for (std::int64_t round = 0; round < 8; ++round) {
    EXPECT_EQ(PeerHealthRegistry::backoff_ms(opts, round),
              PeerHealthRegistry::backoff_ms(opts, round));
  }

  // interval 0 (prober disabled) still yields a sane >= 1 ms schedule for
  // manually driven probes.
  PeerHealthOptions zero;
  zero.probe_interval_ms = 0;
  EXPECT_EQ(PeerHealthRegistry::backoff_ms(zero, 0), 1);
  EXPECT_EQ(PeerHealthRegistry::backoff_ms(zero, 4), 16);
}

// ---------------------------------------------------------------------------
// The breaker state machine, socket-free with synthetic clocks.

TEST_F(PeerHealthTest, FullBreakerCycleClosedOpenHalfOpenClosed) {
  PeerHealthOptions opts;
  opts.failure_threshold = 3;
  opts.probe_interval_ms = 100;
  PeerHealthRegistry registry({"127.0.0.1:9"}, opts);
  const Clock::time_point t0 = Clock::now();
  const std::int64_t opens_before = breaker_opens().value();

  // Closed: everything admits as a normal send.
  EXPECT_EQ(registry.admit(0, t0), Admit::kSend);

  // Two failures: still closed (threshold is 3).
  registry.on_failure(0, false, "connect timed out", t0);
  registry.on_failure(0, false, "connect timed out", t0);
  EXPECT_EQ(registry.admit(0, t0), Admit::kSend);
  std::vector<PeerHealthSnapshot> snaps = registry.snapshot(t0);
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].state, PeerState::kClosed);
  EXPECT_EQ(snaps[0].consecutive_failures, 2);
  EXPECT_EQ(snaps[0].last_error, "connect timed out");

  // Third failure trips the breaker: open, skip, first probe one interval
  // out, global counter bumped.
  registry.on_failure(0, false, "connect timed out", t0);
  EXPECT_EQ(registry.admit(0, t0), Admit::kSkip);
  snaps = registry.snapshot(t0);
  EXPECT_EQ(snaps[0].state, PeerState::kOpen);
  EXPECT_EQ(snaps[0].breaker_opens, 1);
  EXPECT_EQ(snaps[0].next_probe_in_ms, 100);
  EXPECT_EQ(breaker_opens().value() - opens_before, 1);

  // A successful background ping moves it to half-open.
  registry.record_probe_result(0, true, "", t0);
  snaps = registry.snapshot(t0);
  EXPECT_EQ(snaps[0].state, PeerState::kHalfOpen);
  EXPECT_EQ(snaps[0].probes, 1);

  // Half-open hands out exactly one probe ticket (single-flight): a second
  // concurrent request still takes the local fallback.
  EXPECT_EQ(registry.admit(0, t0), Admit::kProbe);
  EXPECT_EQ(registry.admit(0, t0), Admit::kSkip);

  // The probe request succeeds: re-admitted, counters reset.
  registry.on_success(0, /*was_probe=*/true, 1500, t0);
  snaps = registry.snapshot(t0);
  EXPECT_EQ(snaps[0].state, PeerState::kClosed);
  EXPECT_EQ(snaps[0].consecutive_failures, 0);
  EXPECT_EQ(snaps[0].last_latency_us, 1500);
  EXPECT_EQ(snaps[0].last_error, "");
  EXPECT_EQ(registry.admit(0, t0), Admit::kSend);
}

TEST_F(PeerHealthTest, FailedProbeRequestReopensOneBackoffStepLater) {
  PeerHealthOptions opts;
  opts.failure_threshold = 1;
  opts.probe_interval_ms = 100;
  PeerHealthRegistry registry({"127.0.0.1:9"}, opts);
  const Clock::time_point t0 = Clock::now();

  registry.on_failure(0, false, "dead", t0);           // open (round 0: 100)
  registry.record_probe_result(0, true, "", t0);       // half-open
  EXPECT_EQ(registry.admit(0, t0), Admit::kProbe);
  registry.on_failure(0, /*was_probe=*/true, "dead again", t0);

  // Re-opened, and the next background probe waits the round-1 step.
  std::vector<PeerHealthSnapshot> snaps = registry.snapshot(t0);
  EXPECT_EQ(snaps[0].state, PeerState::kOpen);
  EXPECT_EQ(snaps[0].breaker_opens, 2);
  EXPECT_EQ(snaps[0].next_probe_in_ms, 200);
  // The probe ticket was released: once half-open again, a new probe admits.
  registry.record_probe_result(0, true, "", t0);
  EXPECT_EQ(registry.admit(0, t0), Admit::kProbe);
}

TEST_F(PeerHealthTest, FailedBackgroundProbesBackOffExponentially) {
  PeerHealthOptions opts;
  opts.failure_threshold = 1;
  opts.probe_interval_ms = 100;
  PeerHealthRegistry registry({"127.0.0.1:9"}, opts);
  const Clock::time_point t0 = Clock::now();

  registry.on_failure(0, false, "dead", t0);
  EXPECT_EQ(registry.snapshot(t0)[0].next_probe_in_ms, 100);
  const std::int64_t expected[] = {200, 400, 800, 1600, 1600, 1600};
  for (const std::int64_t next : expected) {
    registry.record_probe_result(0, false, "still dead", t0);
    EXPECT_EQ(registry.snapshot(t0)[0].next_probe_in_ms, next);
    EXPECT_EQ(registry.snapshot(t0)[0].state, PeerState::kOpen);
  }
}

TEST_F(PeerHealthTest, LateLosersNeverReopenABreakerTheyDoNotOwn) {
  PeerHealthOptions opts;
  opts.failure_threshold = 2;
  opts.probe_interval_ms = 100;
  PeerHealthRegistry registry({"127.0.0.1:9"}, opts);
  const Clock::time_point t0 = Clock::now();

  registry.on_failure(0, false, "a", t0);
  registry.on_failure(0, false, "b", t0);  // open
  ASSERT_EQ(registry.snapshot(t0)[0].state, PeerState::kOpen);

  // A hedge loser failing after the breaker already opened only refreshes
  // the error text — no double-open, no schedule change.
  registry.on_failure(0, false, "late loser", t0);
  std::vector<PeerHealthSnapshot> snaps = registry.snapshot(t0);
  EXPECT_EQ(snaps[0].state, PeerState::kOpen);
  EXPECT_EQ(snaps[0].breaker_opens, 1);
  EXPECT_EQ(snaps[0].last_error, "late loser");

  // But a late *success* (the peer answered after all) re-admits instantly:
  // the breaker exists to predict failure, and a success refutes it.
  registry.on_success(0, false, 900, t0);
  EXPECT_EQ(registry.snapshot(t0)[0].state, PeerState::kClosed);
}

// ---------------------------------------------------------------------------
// Real probes: ping over TCP, the shard.probe fault site, probe_due_peers.

TEST_F(PeerHealthTest, ProbePingAgainstLiveAndDeadPeers) {
  WorkerDaemon worker;
  std::string error;
  EXPECT_TRUE(probe_peer_ping(worker.peer(), 2000, &error)) << error;

  // A dead port refuses; the probe fails with a nonempty reason.
  WorkerDaemon doomed;
  const std::string dead = doomed.peer();
  doomed.stop();
  error.clear();
  EXPECT_FALSE(probe_peer_ping(dead, 2000, &error));
  EXPECT_FALSE(error.empty());
}

TEST_F(PeerHealthTest, ShardProbeFaultSiteFailsProbesOfEveryKind) {
  WorkerDaemon worker;
  for (const fault::ErrorKind kind :
       {fault::ErrorKind::kError, fault::ErrorKind::kCorrupt,
        fault::ErrorKind::kStall}) {
    fault::FaultSpec spec;
    spec.kind = kind;
    spec.after = 1;
    spec.count = 1;
    fault::arm(fault::kSiteShardProbe, spec);
    std::string error;
    EXPECT_FALSE(probe_peer_ping(worker.peer(), 2000, &error))
        << fault::kind_name(kind);
    EXPECT_FALSE(error.empty()) << fault::kind_name(kind);
    fault::disarm_all();
    // The site is disarmed again: the same probe succeeds.
    EXPECT_TRUE(probe_peer_ping(worker.peer(), 2000, &error)) << error;
  }
}

TEST_F(PeerHealthTest, ProbeDuePeersPingsOnlyDueOpenPeers) {
  WorkerDaemon worker;
  PeerHealthOptions opts;
  opts.failure_threshold = 1;
  opts.probe_interval_ms = 100;
  opts.probe_timeout_ms = 2000;
  // Prober not started: the test drives probe_due_peers directly.
  PeerHealthRegistry registry({worker.peer()}, opts);
  const Clock::time_point t0 = Clock::now();
  const std::int64_t probes_before = probes_total().value();

  // Closed peers are never probed.
  EXPECT_EQ(registry.probe_due_peers(t0 + std::chrono::hours(1)), 0);

  registry.on_failure(0, false, "flap", t0);
  ASSERT_EQ(registry.snapshot(t0)[0].state, PeerState::kOpen);
  // Not due yet at t0; due one interval later.
  EXPECT_EQ(registry.probe_due_peers(t0), 0);
  EXPECT_EQ(registry.probe_due_peers(t0 + std::chrono::milliseconds(100)), 1);

  // The worker is alive, so the ping moved the peer to half-open — and a
  // half-open peer is no longer probed by the background pass.
  std::vector<PeerHealthSnapshot> snaps = registry.snapshot(t0);
  EXPECT_EQ(snaps[0].state, PeerState::kHalfOpen);
  EXPECT_EQ(snaps[0].probes, 1);
  EXPECT_GE(snaps[0].last_probe_age_ms, 0);
  EXPECT_EQ(probes_total().value() - probes_before, 1);
  EXPECT_EQ(registry.probe_due_peers(t0 + std::chrono::hours(1)), 0);
}

// ---------------------------------------------------------------------------
// Coordinator integration: breaker skips, re-admission, hedging — all
// byte-identical to single-node.

TEST_F(PeerHealthTest, OpenBreakerSkipsTheConnectAndStaysByteIdentical) {
  WorkerDaemon alive;
  WorkerDaemon doomed;
  ServeOptions options;
  options.shard_peers = {alive.peer(), doomed.peer()};
  options.shard_failure_threshold = 1;
  options.shard_probe_interval_ms = 0;  // no prober: open stays open
  doomed.stop();

  const std::string block = request_block(kGoogLeNetReduce, 2);
  SynthServer reference({});
  const std::string expected = reference.handle(block);

  SynthServer coordinator(options);
  // First request pays the dead peer's connect failure once and opens its
  // breaker (threshold 1).
  EXPECT_EQ(coordinator.handle(block), expected);
  EXPECT_EQ(health_field(coordinator.health_text(), 1, "state"), "open");
  EXPECT_EQ(health_field(coordinator.health_text(), 0, "state"), "closed");

  // From now on the dead peer's range skips the connect entirely: the RPC
  // counter moves by exactly one per request (the alive peer), and the
  // bytes never change. Distinct layers keep the DesignCache out of the way.
  // Layers distinct from the warm-up request, so the coordinator's
  // DesignCache cannot answer them without a fan-out.
  for (int i = 0; i < 3; ++i) {
    const std::string layer = strformat("192,96,%d,%d,1", 29 + i, 29 + i);
    const std::string varied = request_block(layer, 2);
    SynthServer ref({});
    const std::int64_t requests_before = requests_total().value();
    const std::int64_t degraded_before = degraded_total().value();
    EXPECT_EQ(coordinator.handle(varied), ref.handle(varied));
    EXPECT_EQ(requests_total().value() - requests_before, 1);
    EXPECT_GE(degraded_total().value() - degraded_before, 1);
  }
}

TEST_F(PeerHealthTest, RestartedPeerIsReAdmittedByTheProber) {
  WorkerDaemon alive;
  auto flappy = std::make_unique<WorkerDaemon>();
  const int flappy_port = flappy->port();
  const std::string flappy_peer = flappy->peer();

  ServeOptions options;
  options.shard_peers = {alive.peer(), flappy_peer};
  options.shard_failure_threshold = 1;
  options.shard_probe_interval_ms = 50;
  options.cache_enabled = false;
  SynthServer coordinator(options);

  const std::string block = request_block(kGoogLeNetReduce, 2);
  SynthServer reference({});
  const std::string expected = reference.handle(block);

  // Healthy fleet first: both peers closed.
  EXPECT_EQ(coordinator.handle(block), expected);
  EXPECT_EQ(health_field(coordinator.health_text(), 1, "state"), "closed");

  // Kill the peer; the next request opens its breaker (threshold 1) and
  // still answers byte-identically.
  flappy->stop();
  flappy.reset();
  EXPECT_EQ(coordinator.handle(block), expected);
  EXPECT_EQ(health_field(coordinator.health_text(), 1, "state"), "open");

  // Restart on the same port: the background prober (50 ms cadence) must
  // move it to half-open without any request traffic.
  auto restarted = std::make_unique<WorkerDaemon>(ServeOptions{}, flappy_port);
  ASSERT_EQ(restarted->port(), flappy_port);
  std::string state;
  for (int i = 0; i < 400; ++i) {  // <= 20 s, TSan-safe bound
    state = health_field(coordinator.health_text(), 1, "state");
    if (state == "half_open") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_EQ(state, "half_open");

  // The next request carries the single-flight probe; success re-admits.
  EXPECT_EQ(coordinator.handle(block), expected);
  EXPECT_EQ(health_field(coordinator.health_text(), 1, "state"), "closed");
  // And the re-admitted peer serves real RPC traffic again: with both peers
  // closed, one request moves the RPC counter by two.
  const std::string varied = request_block("192,96,30,30,1", 2);
  SynthServer ref({});
  const std::int64_t requests_before = requests_total().value();
  EXPECT_EQ(coordinator.handle(varied), ref.handle(varied));
  EXPECT_EQ(requests_total().value() - requests_before, 2);
}

TEST_F(PeerHealthTest, SlowPeerIsHedgedByLocalReExecution) {
  WorkerDaemon alive;
  SilentPeer silent;  // connects fine, never answers

  ServeOptions options;
  options.shard_peers = {alive.peer(), silent.peer()};
  options.shard_io_timeout_ms = 2000;  // the RPC would block this long
  options.shard_hedge_ms = 100;        // ...but the hedge fires at 100 ms
  options.cache_enabled = false;
  SynthServer coordinator(options);

  const std::string block = request_block(kGoogLeNetReduce, 2);
  SynthServer reference({});
  const std::string expected = reference.handle(block);

  const std::int64_t hedges_before = hedges_total().value();
  const std::int64_t wins_before = hedge_wins_total().value();
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(coordinator.handle(block), expected);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);

  EXPECT_GE(hedges_total().value() - hedges_before, 1);
  EXPECT_GE(hedge_wins_total().value() - wins_before, 1);
  // The request must NOT have waited out the silent peer's full io timeout:
  // the hedge converted a 2 s stall into ~a hedge delay plus local work.
  EXPECT_LT(elapsed.count(), 1900) << "hedge did not preempt the stall";
}

}  // namespace
}  // namespace sasynth
