// Failure-path tests for the serving stack (no fault injection here — these
// drive real kernel-level failures: disconnects, truncated streams, unlinked
// cache files). The injection-driven sweep lives in tests/faultinject/.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <filesystem>
#include <string>
#include <thread>

#include "serve/server.h"
#include "serve/tcp.h"
#include "util/strings.h"

namespace sasynth {
namespace {

const char* kRequestA =
    "sasynth-request v1\n"
    "layer 16,16,8,8,3\n"
    "device tiny\n"
    "option min_util 0.5\n"
    "end\n";

int connect_loopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool client_send_all(int fd, const std::string& data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::send(fd, data.data() + written,
                             data.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

std::string read_to_eof(int fd) {
  std::string out;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return out;
    }
    out.append(chunk, static_cast<std::size_t>(n));
  }
}

ServeOptions memory_options() {
  ServeOptions options;
  options.jobs = 1;
  options.cache_capacity = 16;
  return options;
}

std::string cache_dir(const char* tag) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) /
      (std::string("sasynth_failure_") + tag);
  std::filesystem::remove_all(dir);
  return dir.string();
}

/// Satellite (a): a client that vanishes mid-response must end the session
/// cleanly — no SIGPIPE, no hang, no work done for responses nobody reads.
TEST(ServeFailureTest, ClientDisconnectMidResponseEndsSessionCleanly) {
  SynthServer server(memory_options());
  TcpListener listener;
  std::string error;
  ASSERT_TRUE(listener.listen_on(0, &error)) << error;

  std::thread session([&] {
    const int fd = listener.accept_client();
    if (fd >= 0) serve_fd_session(server, fd);
  });

  const int client = connect_loopback(listener.port());
  ASSERT_GE(client, 0);
  // Queue a burst of pings (plenty of response bytes to write), read only the
  // first response, then slam the connection shut. The server keeps writing
  // into a dead socket until the kernel reports the disconnect; with the
  // session fix that surfaces as a failed write, not a crash.
  std::string burst;
  for (int i = 0; i < 200; ++i) burst += "ping\n";
  ASSERT_TRUE(client_send_all(client, burst));
  char first[16];
  ASSERT_GT(::read(client, first, sizeof(first)), 0);
  // RST (via SO_LINGER 0) rather than FIN makes the very next server write
  // fail instead of silently buffering.
  struct linger hard = {1, 0};
  ::setsockopt(client, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
  ::close(client);

  session.join();  // if the session thread returns, the path is clean
  listener.close_listener();
  // The session processed at most the pings it managed to write responses
  // for; the important part is that the process is still here.
  EXPECT_GT(server.counters().commands.load(), 0);
}

/// Satellite (b): EOF in the middle of a request block — the partial request
/// is dropped, the session terminates, and nothing is parsed as complete.
TEST(ServeFailureTest, HalfRequestAtEofIsDroppedNotParsed) {
  SynthServer server(memory_options());
  TcpListener listener;
  std::string error;
  ASSERT_TRUE(listener.listen_on(0, &error)) << error;

  std::thread session([&] {
    const int fd = listener.accept_client();
    if (fd >= 0) serve_fd_session(server, fd);
  });

  const int client = connect_loopback(listener.port());
  ASSERT_GE(client, 0);
  // A request block cut off before `end` — and the last line cut off before
  // its newline.
  ASSERT_TRUE(client_send_all(
      client, "sasynth-request v1\nlayer 16,16,8,8,3\ndevice ti"));
  ::shutdown(client, SHUT_WR);
  const std::string transcript = read_to_eof(client);
  ::close(client);
  session.join();
  listener.close_listener();

  // The truncated block never reaches the DSE as a valid request; the parse
  // of the incomplete block yields an error response (missing device/end),
  // never an ok.
  EXPECT_EQ(transcript.find("sasynth-response v1 ok"), std::string::npos)
      << transcript;
  EXPECT_EQ(server.counters().dse_runs.load(), 0);
}

/// Satellite (b) continued: a read *error* (not EOF) mid-line must not
/// deliver the buffered prefix as a line — pre-fix, FdLineReader treated any
/// failed read like EOF and handed the truncated tail to the parser. A real
/// kernel error is forced by dup2-ing a directory fd over the reader's fd:
/// the next read(2) fails with EISDIR while "partial-fragment" sits in the
/// reader's buffer.
TEST(ServeFailureTest, ReadErrorDropsBufferedPartialLine) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // One complete line, then an unterminated fragment — delivered in a single
  // chunk, so the reader's first read(2) buffers both.
  ASSERT_TRUE(client_send_all(fds[1], "complete\npartial-fragment"));

  FdLineReader reader(fds[0]);
  std::string line;
  ASSERT_TRUE(reader.read_line(&line));
  EXPECT_EQ(line, "complete");
  EXPECT_FALSE(reader.failed());

  const int dirfd = ::open(".", O_RDONLY | O_DIRECTORY);
  ASSERT_GE(dirfd, 0);
  ASSERT_GE(::dup2(dirfd, fds[0]), 0);  // next read on fds[0]: EISDIR
  ::close(dirfd);

  // The buffered "partial-fragment" must NOT come back as a line; the error
  // ends the stream and reports through failed().
  EXPECT_FALSE(reader.read_line(&line));
  EXPECT_TRUE(reader.failed());
  EXPECT_FALSE(reader.read_line(&line));  // stays ended
  ::close(fds[0]);
  ::close(fds[1]);
}

/// Satellite (c): garbage after a valid request gets its own error response;
/// the valid request before it is answered normally.
TEST(ServeFailureTest, GarbageAfterValidRequestGetsErrorResponse) {
  SynthServer server(memory_options());
  TcpListener listener;
  std::string error;
  ASSERT_TRUE(listener.listen_on(0, &error)) << error;

  std::thread session([&] {
    const int fd = listener.accept_client();
    if (fd >= 0) serve_fd_session(server, fd);
  });

  const int client = connect_loopback(listener.port());
  ASSERT_GE(client, 0);
  ASSERT_TRUE(client_send_all(
      client, std::string(kRequestA) + "\x01\x02 total garbage\n" +
                  "ping\nshutdown\n"));
  ::shutdown(client, SHUT_WR);
  const std::string transcript = read_to_eof(client);
  ::close(client);
  session.join();
  listener.close_listener();

  const std::size_t ok = transcript.find("sasynth-response v1 ok");
  const std::size_t err = transcript.find("sasynth-response v1 error");
  const std::size_t pong = transcript.find("sasynth-pong v1");
  const std::size_t bye = transcript.find("sasynth-bye v1");
  ASSERT_NE(ok, std::string::npos) << transcript;
  ASSERT_NE(err, std::string::npos) << transcript;
  ASSERT_NE(pong, std::string::npos) << transcript;
  ASSERT_NE(bye, std::string::npos) << transcript;
  EXPECT_LT(ok, err);    // responses stay in request order
  EXPECT_LT(err, pong);  // and the session survived the garbage
  EXPECT_LT(pong, bye);
}

/// Satellite (d): the cache file vanishing between requests (operator tidied
/// /var/cache, tmpwatch, ...) silently falls back to a fresh DSE with a
/// byte-identical response.
TEST(ServeFailureTest, UnlinkedCacheFileFallsBackToIdenticalResponse) {
  const std::string dir = cache_dir("unlink");
  ServeOptions options = memory_options();
  options.cache_dir = dir;

  std::string cold;
  {
    SynthServer server(options);
    cold = server.handle(kRequestA);
    ASSERT_TRUE(starts_with(cold, "sasynth-response v1 ok")) << cold;
  }
  ASSERT_FALSE(std::filesystem::is_empty(dir));
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::filesystem::remove(entry.path());
  }

  SynthServer server(options);  // fresh instance: memory tier is cold too
  const std::string warm = server.handle(kRequestA);
  EXPECT_EQ(warm, cold);
  EXPECT_EQ(server.counters().dse_runs.load(), 1);  // re-explored, not served stale
  EXPECT_EQ(server.cache().stats().disk_hits, 0);
}

}  // namespace
}  // namespace sasynth
