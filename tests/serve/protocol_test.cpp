#include "serve/protocol.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sasynth {
namespace {

TEST(ParseLayerFieldsTest, FiveFields) {
  ConvLayerDesc layer;
  std::string error;
  ASSERT_TRUE(parse_layer_fields("256,384,13,13,3", &layer, &error)) << error;
  EXPECT_EQ(layer.in_maps, 256);
  EXPECT_EQ(layer.out_maps, 384);
  EXPECT_EQ(layer.out_rows, 13);
  EXPECT_EQ(layer.out_cols, 13);
  EXPECT_EQ(layer.kernel, 3);
  EXPECT_EQ(layer.stride, 1);
  EXPECT_EQ(layer.groups, 1);
}

TEST(ParseLayerFieldsTest, StrideAndGroups) {
  ConvLayerDesc layer;
  std::string error;
  ASSERT_TRUE(parse_layer_fields("96,256,27,27,5,1,2", &layer, &error))
      << error;
  EXPECT_EQ(layer.stride, 1);
  EXPECT_EQ(layer.groups, 2);
}

TEST(ParseLayerFieldsTest, Rejections) {
  ConvLayerDesc layer;
  std::string error;
  EXPECT_FALSE(parse_layer_fields("1,2,3,4", &layer, &error));
  EXPECT_FALSE(parse_layer_fields("1,2,3,4,5,6,7,8", &layer, &error));
  EXPECT_FALSE(parse_layer_fields("a,2,3,4,5", &layer, &error));
  EXPECT_FALSE(parse_layer_fields("0,2,3,4,5", &layer, &error));
  EXPECT_FALSE(parse_layer_fields("16,16,8,8,3x", &layer, &error));
  EXPECT_FALSE(parse_layer_fields("", &layer, &error));
}

TEST(ParseRequestBlockTest, FullBlock) {
  const ParsedRequest parsed = parse_request_block(
      "sasynth-request v1\n"
      "layer 16,16,8,8,3\n"
      "device tiny\n"
      "dtype fixed8_16\n"
      "option min_util 0.5\n"
      "option top_k 4\n"
      "option pow2_middle off\n"
      "end\n");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.request.layer.in_maps, 16);
  EXPECT_EQ(parsed.request.device.name, "TinyTestDevice");
  EXPECT_EQ(parsed.request.dtype, DataType::kFixed8_16);
  EXPECT_DOUBLE_EQ(parsed.request.dse.min_dsp_util, 0.5);
  EXPECT_EQ(parsed.request.dse.top_k, 4);
  EXPECT_FALSE(parsed.request.dse.pow2_middle);
}

TEST(ParseRequestBlockTest, DefaultsApplied) {
  const ParsedRequest parsed =
      parse_request_block("sasynth-request v1\nlayer 16,16,8,8,3\nend\n");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.request.device.name, "Arria10 GT1150");
  EXPECT_EQ(parsed.request.dtype, DataType::kFloat32);
  // Serving default: per-request serial DSE.
  EXPECT_EQ(parsed.request.dse.jobs, 1);
}

TEST(ParseRequestBlockTest, Rejections) {
  EXPECT_FALSE(parse_request_block("").ok);
  EXPECT_FALSE(parse_request_block("bogus\n").ok);
  EXPECT_FALSE(parse_request_block("sasynth-request v1\nend\n").ok);
  EXPECT_FALSE(
      parse_request_block("sasynth-request v1\nlayer 1,2\nend\n").ok);
  EXPECT_FALSE(parse_request_block(
                   "sasynth-request v1\nlayer 16,16,8,8,3\ndevice mars\nend\n")
                   .ok);
  EXPECT_FALSE(
      parse_request_block(
          "sasynth-request v1\nlayer 16,16,8,8,3\ndtype float64\nend\n")
          .ok);
  EXPECT_FALSE(
      parse_request_block(
          "sasynth-request v1\nlayer 16,16,8,8,3\noption bogus 1\nend\n")
          .ok);
  EXPECT_FALSE(
      parse_request_block(
          "sasynth-request v1\nlayer 16,16,8,8,3\noption min_util 2.5\nend\n")
          .ok);
  EXPECT_FALSE(
      parse_request_block(
          "sasynth-request v1\nlayer 16,16,8,8,3\nwhatever 1\nend\n")
          .ok);
}

TEST(CanonicalRequestTest, DefaultsHashEqualToExplicitSpelling) {
  const ParsedRequest implicit =
      parse_request_block("sasynth-request v1\nlayer 16,16,8,8,3\nend\n");
  const ParsedRequest explicit_block = parse_request_block(
      "sasynth-request v1\n"
      "layer 16,16,8,8,3,1,1\n"
      "device arria10_gt1150\n"
      "dtype float32\n"
      "end\n");
  ASSERT_TRUE(implicit.ok && explicit_block.ok);
  EXPECT_EQ(canonical_request_text(implicit.request),
            canonical_request_text(explicit_block.request));
  EXPECT_EQ(request_cache_key(implicit.request),
            request_cache_key(explicit_block.request));
}

TEST(CanonicalRequestTest, JobsDoesNotFragmentTheKey) {
  ParsedRequest a =
      parse_request_block("sasynth-request v1\nlayer 16,16,8,8,3\nend\n");
  ParsedRequest b = parse_request_block(
      "sasynth-request v1\nlayer 16,16,8,8,3\noption jobs 8\nend\n");
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_EQ(request_cache_key(a.request), request_cache_key(b.request));
}

TEST(CanonicalRequestTest, EveryOtherOptionChangesTheKey) {
  const char* variants[] = {
      "layer 16,16,8,9,3",          "layer 16,16,8,8,3\ndevice tiny",
      "layer 16,16,8,8,3\ndtype fixed8_16",
      "layer 16,16,8,8,3\noption freq 200",
      "layer 16,16,8,8,3\noption min_util 0.5",
      "layer 16,16,8,8,3\noption top_k 5",
      "layer 16,16,8,8,3\noption pow2_middle 0",
      "layer 16,16,8,8,3\noption max_rows 7",
      "layer 16,16,8,8,3\noption max_cols 7",
      "layer 16,16,8,8,3\noption max_vec 4",
      "layer 16,16,8,8,3\noption pow2_vec 0",
      "layer 16,16,8,8,3\noption max_bram_util 0.7",
      "layer 16,16,8,8,3\noption soft_logic 0",
      "layer 16,16,8,8,3\noption auto_relax 0",
  };
  const ParsedRequest base =
      parse_request_block("sasynth-request v1\nlayer 16,16,8,8,3\nend\n");
  ASSERT_TRUE(base.ok);
  const std::uint64_t base_key = request_cache_key(base.request);
  for (const char* variant : variants) {
    const ParsedRequest parsed = parse_request_block(
        std::string("sasynth-request v1\n") + variant + "\nend\n");
    ASSERT_TRUE(parsed.ok) << variant << ": " << parsed.error;
    EXPECT_NE(request_cache_key(parsed.request), base_key) << variant;
  }
}

TEST(CanonicalRequestTest, KeyIsFnv1aOfCanonicalText) {
  const ParsedRequest parsed =
      parse_request_block("sasynth-request v1\nlayer 16,16,8,8,3\nend\n");
  ASSERT_TRUE(parsed.ok);
  EXPECT_EQ(request_cache_key(parsed.request),
            fnv1a64(canonical_request_text(parsed.request)));
}

TEST(FormatResponseTest, ErrorAndRetryShape) {
  EXPECT_EQ(format_error_response("boom"),
            "sasynth-response v1 error boom\nend\n");
  EXPECT_EQ(format_retry_response("busy"),
            "sasynth-response v1 retry busy\nend\n");
}

TEST(FormatResponseTest, TimeoutWithoutPayload) {
  EXPECT_EQ(format_timeout_response("too slow"),
            "sasynth-response v1 timeout too slow\nend\n");
}

TEST(ParseDeadlineTest, ValidValues) {
  const ParsedRequest none =
      parse_request_block("sasynth-request v1\nlayer 16,16,8,8,3\nend\n");
  ASSERT_TRUE(none.ok);
  EXPECT_EQ(none.request.deadline_ms, -1);  // -1 = no deadline given

  const ParsedRequest zero = parse_request_block(
      "sasynth-request v1\nlayer 16,16,8,8,3\ndeadline_ms 0\nend\n");
  ASSERT_TRUE(zero.ok) << zero.error;
  EXPECT_EQ(zero.request.deadline_ms, 0);  // 0 = already expired, still legal

  const ParsedRequest plain = parse_request_block(
      "sasynth-request v1\nlayer 16,16,8,8,3\ndeadline_ms 1500\nend\n");
  ASSERT_TRUE(plain.ok) << plain.error;
  EXPECT_EQ(plain.request.deadline_ms, 1500);
}

TEST(ParseDeadlineTest, Rejections) {
  // Strict on purpose: a garbled deadline treated as "none" would silently
  // turn a bounded request into an unbounded one.
  const char* bad[] = {
      // negative
      "sasynth-request v1\nlayer 16,16,8,8,3\ndeadline_ms -1\nend\n",
      // non-numeric / trailing garbage
      "sasynth-request v1\nlayer 16,16,8,8,3\ndeadline_ms soon\nend\n",
      "sasynth-request v1\nlayer 16,16,8,8,3\ndeadline_ms 100ms\nend\n",
      // missing / extra values
      "sasynth-request v1\nlayer 16,16,8,8,3\ndeadline_ms\nend\n",
      "sasynth-request v1\nlayer 16,16,8,8,3\ndeadline_ms 1 2\nend\n",
      // int64 overflow
      "sasynth-request v1\nlayer 16,16,8,8,3\n"
      "deadline_ms 99999999999999999999999\nend\n",
      // duplicate field
      "sasynth-request v1\nlayer 16,16,8,8,3\n"
      "deadline_ms 5\ndeadline_ms 10\nend\n",
  };
  for (const char* block : bad) {
    const ParsedRequest parsed = parse_request_block(block);
    EXPECT_FALSE(parsed.ok) << block;
    EXPECT_FALSE(parsed.error.empty()) << block;
  }
}

TEST(ParseDeadlineTest, DeadlineDoesNotFragmentTheCacheKey) {
  const ParsedRequest plain =
      parse_request_block("sasynth-request v1\nlayer 16,16,8,8,3\nend\n");
  const ParsedRequest deadlined = parse_request_block(
      "sasynth-request v1\nlayer 16,16,8,8,3\ndeadline_ms 250\nend\n");
  ASSERT_TRUE(plain.ok);
  ASSERT_TRUE(deadlined.ok);
  // Deadlines are execution policy, like jobs: same canonical text, same
  // cache entry.
  EXPECT_EQ(canonical_request_text(plain.request),
            canonical_request_text(deadlined.request));
  EXPECT_EQ(request_cache_key(plain.request),
            request_cache_key(deadlined.request));
}

}  // namespace
}  // namespace sasynth
