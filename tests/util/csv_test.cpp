#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace sasynth {
namespace {

TEST(Csv, HeaderAndRows) {
  CsvWriter csv;
  csv.header({"a", "b"});
  csv.add_row({"1", "2"});
  csv.add_row({"3", "4"});
  EXPECT_EQ(csv.str(), "a,b\n1,2\n3,4\n");
  EXPECT_EQ(csv.row_count(), 2U);
}

TEST(Csv, NoHeader) {
  CsvWriter csv;
  csv.add_row({"1", "2"});
  EXPECT_EQ(csv.str(), "1,2\n");
}

TEST(Csv, EscapingCommaQuoteNewline) {
  EXPECT_EQ(CsvWriter::escape_field("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape_field("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape_field("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape_field("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, RowBuilderFormatting) {
  CsvWriter csv;
  csv.row().cell("x").cell(static_cast<std::int64_t>(-5)).cell(2.5, 2);
  EXPECT_EQ(csv.str(), "x,-5,2.50\n");
}

TEST(Csv, WriteFileRoundTrip) {
  CsvWriter csv;
  csv.header({"k", "v"});
  csv.add_row({"design", "(11,13,8)"});
  const std::string path = ::testing::TempDir() + "/sasynth_csv_test.csv";
  ASSERT_TRUE(csv.write_file(path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), csv.str());
  std::remove(path.c_str());
}

TEST(Csv, WriteFileFailsOnBadPath) {
  CsvWriter csv;
  csv.add_row({"x"});
  EXPECT_FALSE(csv.write_file("/nonexistent-dir-xyz/file.csv"));
}

}  // namespace
}  // namespace sasynth
