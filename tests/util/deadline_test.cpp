#include "util/deadline.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace sasynth {
namespace {

TEST(DeadlineTest, DefaultIsUnbounded) {
  const Deadline d;
  EXPECT_TRUE(d.unbounded());
  EXPECT_FALSE(d.expired());
  // The unbounded sentinel is huge but finite, so min() against real
  // budgets needs no branching.
  EXPECT_GT(d.remaining_ms(), std::int64_t{1} << 50);
}

TEST(DeadlineTest, ZeroMeansAlreadyExpired) {
  const Deadline d = Deadline::after_ms(0);
  EXPECT_FALSE(d.unbounded());
  EXPECT_TRUE(d.expired());
  EXPECT_LE(d.remaining_ms(), 0);
}

TEST(DeadlineTest, NegativeClampsToExpired) {
  const Deadline d = Deadline::after_ms(-500);
  EXPECT_TRUE(d.expired());
}

TEST(DeadlineTest, FutureDeadlineNotExpired) {
  const Deadline d = Deadline::after_ms(60000);
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_ms(), 0);
  EXPECT_LE(d.remaining_ms(), 60000);
}

TEST(DeadlineTest, ExpiresWithTheClock) {
  const Deadline d = Deadline::after_ms(5);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(d.expired());
}

TEST(CancelTokenTest, DefaultTokenIsInert) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(token.deadline().unbounded());
  // No shared state: request_cancel and cut-setting are harmless no-ops.
  token.request_cancel();
  token.set_cut_at_item(0);
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.cut(0));
  EXPECT_FALSE(token.cut(1 << 20));
}

TEST(CancelTokenTest, RequestCancelReachesEveryCopy) {
  CancelToken token = CancelToken::cancellable();
  CancelToken copy = token;
  EXPECT_FALSE(copy.cancelled());
  token.request_cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(copy.cancelled());
}

TEST(CancelTokenTest, DeadlineExpiryCancels) {
  const CancelToken token =
      CancelToken::with_deadline(Deadline::after_ms(0));
  EXPECT_TRUE(token.cancelled());
  const CancelToken alive =
      CancelToken::with_deadline(Deadline::after_ms(60000));
  EXPECT_FALSE(alive.cancelled());
}

TEST(CancelTokenTest, CutIsExactOnItemIndexes) {
  CancelToken token = CancelToken::cancellable();
  EXPECT_FALSE(token.cut(0));
  token.set_cut_at_item(3);
  EXPECT_FALSE(token.cut(0));
  EXPECT_FALSE(token.cut(2));
  EXPECT_TRUE(token.cut(3));
  EXPECT_TRUE(token.cut(4));
  // cut() folds in cancelled(): after an explicit cancel every index cuts.
  EXPECT_FALSE(token.cut(1));
  token.request_cancel();
  EXPECT_TRUE(token.cut(1));
}

TEST(CancelTokenTest, CancelledIsVisibleAcrossThreads) {
  CancelToken token = CancelToken::cancellable();
  std::thread canceller([&token] { token.request_cancel(); });
  canceller.join();
  EXPECT_TRUE(token.cancelled());
}

}  // namespace
}  // namespace sasynth
