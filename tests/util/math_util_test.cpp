#include "util/math_util.h"

#include <gtest/gtest.h>

#include <limits>

namespace sasynth {
namespace {

TEST(CeilDiv, ExactAndInexact) {
  EXPECT_EQ(ceil_div(0, 4), 0);
  EXPECT_EQ(ceil_div(1, 4), 1);
  EXPECT_EQ(ceil_div(4, 4), 1);
  EXPECT_EQ(ceil_div(5, 4), 2);
  EXPECT_EQ(ceil_div(128, 11), 12);
  EXPECT_EQ(ceil_div(13, 14), 1);
}

TEST(RoundUp, Multiples) {
  EXPECT_EQ(round_up(0, 8), 0);
  EXPECT_EQ(round_up(1, 8), 8);
  EXPECT_EQ(round_up(8, 8), 8);
  EXPECT_EQ(round_up(9, 8), 16);
  EXPECT_EQ(round_up(128, 11), 132);  // the Table 1 quantization example
}

TEST(RoundUpPow2, Values) {
  EXPECT_EQ(round_up_pow2(1), 1);
  EXPECT_EQ(round_up_pow2(2), 2);
  EXPECT_EQ(round_up_pow2(3), 4);
  EXPECT_EQ(round_up_pow2(4), 4);
  EXPECT_EQ(round_up_pow2(5), 8);
  EXPECT_EQ(round_up_pow2(1000), 1024);
  EXPECT_EQ(round_up_pow2(1024), 1024);
  EXPECT_EQ(round_up_pow2(1025), 2048);
}

TEST(IsPow2, Values) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(96));
  EXPECT_FALSE(is_pow2(-4));
}

TEST(Log2, FloorAndCeil) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(1023), 9);
  EXPECT_EQ(floor_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1025), 11);
}

TEST(GcdLcm, Values) {
  EXPECT_EQ(gcd(12, 18), 6);
  EXPECT_EQ(gcd(7, 13), 1);
  EXPECT_EQ(gcd(0, 5), 5);
  EXPECT_EQ(gcd(5, 0), 5);
  EXPECT_EQ(lcm(4, 6), 12);
  EXPECT_EQ(lcm(0, 6), 0);
  EXPECT_EQ(lcm(13, 13), 13);
}

TEST(Product, EmptyIsOne) {
  EXPECT_EQ(product({}), 1);
  EXPECT_EQ(product({3}), 3);
  EXPECT_EQ(product({2, 3, 4}), 24);
}

// Satellite: overflow is detected, never wrapped. A DSE footprint that does
// not fit in int64 must read as "infinitely large" (fails every budget),
// not as a small or negative number.
TEST(CheckedMul, DetectsOverflow) {
  const std::int64_t max = std::numeric_limits<std::int64_t>::max();
  std::int64_t out = 0;
  EXPECT_TRUE(checked_mul(6, 7, &out));
  EXPECT_EQ(out, 42);
  EXPECT_TRUE(checked_mul(max, 1, &out));
  EXPECT_EQ(out, max);
  EXPECT_TRUE(checked_mul(0, max, &out));
  EXPECT_EQ(out, 0);
  EXPECT_FALSE(checked_mul(max, 2, &out));
  EXPECT_FALSE(checked_mul(std::int64_t{1} << 32, std::int64_t{1} << 32, &out));
  EXPECT_FALSE(checked_mul(std::int64_t{3037000500}, std::int64_t{3037000500},
                           &out));  // ~sqrt(INT64_MAX), squared just overflows
}

TEST(SatMul, SaturatesAtInt64Max) {
  const std::int64_t max = std::numeric_limits<std::int64_t>::max();
  EXPECT_EQ(sat_mul(6, 7), 42);
  EXPECT_EQ(sat_mul(max, 1), max);
  EXPECT_EQ(sat_mul(max, 2), max);
  EXPECT_EQ(sat_mul(std::int64_t{1} << 40, std::int64_t{1} << 40), max);
}

TEST(CheckedProduct, DetectsOverflow) {
  std::int64_t out = 0;
  EXPECT_TRUE(checked_product({}, &out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(checked_product({1 << 20, 1 << 20, 1 << 20}, &out));
  EXPECT_EQ(out, std::int64_t{1} << 60);
  EXPECT_FALSE(checked_product({1 << 20, 1 << 20, 1 << 20, 16}, &out));
}

TEST(Product, SaturatesInsteadOfWrapping) {
  const std::int64_t max = std::numeric_limits<std::int64_t>::max();
  EXPECT_EQ(product({std::int64_t{1} << 32, std::int64_t{1} << 32}), max);
  EXPECT_EQ(product({max, max, max}), max);
}

TEST(GcdLcm, LcmSaturatesInsteadOfOverflowing) {
  const std::int64_t max = std::numeric_limits<std::int64_t>::max();
  // Two coprime values near 2^62: their true LCM is their product, which
  // does not fit — pre-fix this wrapped into garbage (UB).
  const std::int64_t a = (std::int64_t{1} << 62) - 1;
  const std::int64_t b = (std::int64_t{1} << 62) - 3;
  EXPECT_EQ(lcm(a, b), max);
  EXPECT_EQ(lcm(max, max), max);  // equal inputs still exact
}

TEST(RoundUpPow2, SaturatesAbove2To62) {
  const std::int64_t max = std::numeric_limits<std::int64_t>::max();
  EXPECT_EQ(round_up_pow2(std::int64_t{1} << 62), std::int64_t{1} << 62);
  EXPECT_EQ(round_up_pow2((std::int64_t{1} << 62) + 1), max);  // pre-fix: UB
  EXPECT_EQ(round_up_pow2(max), max);
}

TEST(Divisors, SortedComplete) {
  EXPECT_EQ(divisors(1), (std::vector<std::int64_t>{1}));
  EXPECT_EQ(divisors(12), (std::vector<std::int64_t>{1, 2, 3, 4, 6, 12}));
  EXPECT_EQ(divisors(13), (std::vector<std::int64_t>{1, 13}));
  EXPECT_EQ(divisors(36), (std::vector<std::int64_t>{1, 2, 3, 4, 6, 9, 12, 18, 36}));
}

TEST(Pow2Candidates, BelowBound) {
  EXPECT_EQ(pow2_candidates(1), (std::vector<std::int64_t>{1}));
  EXPECT_EQ(pow2_candidates(8), (std::vector<std::int64_t>{1, 2, 4, 8}));
  EXPECT_EQ(pow2_candidates(9), (std::vector<std::int64_t>{1, 2, 4, 8}));
}

TEST(Pow2CandidatesCovering, IncludesCover) {
  // The DSE explores tile bounds covering the trip count: 13 needs 16.
  EXPECT_EQ(pow2_candidates_covering(13),
            (std::vector<std::int64_t>{1, 2, 4, 8, 16}));
  EXPECT_EQ(pow2_candidates_covering(1), (std::vector<std::int64_t>{1}));
  EXPECT_EQ(pow2_candidates_covering(2), (std::vector<std::int64_t>{1, 2}));
  EXPECT_EQ(pow2_candidates_covering(16),
            (std::vector<std::int64_t>{1, 2, 4, 8, 16}));
}

TEST(Clamp64, Bounds) {
  EXPECT_EQ(clamp64(5, 0, 10), 5);
  EXPECT_EQ(clamp64(-5, 0, 10), 0);
  EXPECT_EQ(clamp64(50, 0, 10), 10);
}

// Property sweep: ceil_div/round_up consistency over a grid.
class CeilDivProperty : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(CeilDivProperty, RoundUpIsMultipleAndMinimal) {
  const std::int64_t b = GetParam();
  for (std::int64_t a = 0; a <= 200; ++a) {
    const std::int64_t r = round_up(a, b);
    EXPECT_EQ(r % b, 0);
    EXPECT_GE(r, a);
    EXPECT_LT(r - a, b);
    EXPECT_EQ(r / b, ceil_div(a, b));
  }
}

INSTANTIATE_TEST_SUITE_P(Divisors, CeilDivProperty,
                         ::testing::Values(1, 2, 3, 7, 8, 11, 13, 64));

}  // namespace
}  // namespace sasynth
