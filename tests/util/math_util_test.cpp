#include "util/math_util.h"

#include <gtest/gtest.h>

namespace sasynth {
namespace {

TEST(CeilDiv, ExactAndInexact) {
  EXPECT_EQ(ceil_div(0, 4), 0);
  EXPECT_EQ(ceil_div(1, 4), 1);
  EXPECT_EQ(ceil_div(4, 4), 1);
  EXPECT_EQ(ceil_div(5, 4), 2);
  EXPECT_EQ(ceil_div(128, 11), 12);
  EXPECT_EQ(ceil_div(13, 14), 1);
}

TEST(RoundUp, Multiples) {
  EXPECT_EQ(round_up(0, 8), 0);
  EXPECT_EQ(round_up(1, 8), 8);
  EXPECT_EQ(round_up(8, 8), 8);
  EXPECT_EQ(round_up(9, 8), 16);
  EXPECT_EQ(round_up(128, 11), 132);  // the Table 1 quantization example
}

TEST(RoundUpPow2, Values) {
  EXPECT_EQ(round_up_pow2(1), 1);
  EXPECT_EQ(round_up_pow2(2), 2);
  EXPECT_EQ(round_up_pow2(3), 4);
  EXPECT_EQ(round_up_pow2(4), 4);
  EXPECT_EQ(round_up_pow2(5), 8);
  EXPECT_EQ(round_up_pow2(1000), 1024);
  EXPECT_EQ(round_up_pow2(1024), 1024);
  EXPECT_EQ(round_up_pow2(1025), 2048);
}

TEST(IsPow2, Values) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(96));
  EXPECT_FALSE(is_pow2(-4));
}

TEST(Log2, FloorAndCeil) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(1023), 9);
  EXPECT_EQ(floor_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1025), 11);
}

TEST(GcdLcm, Values) {
  EXPECT_EQ(gcd(12, 18), 6);
  EXPECT_EQ(gcd(7, 13), 1);
  EXPECT_EQ(gcd(0, 5), 5);
  EXPECT_EQ(gcd(5, 0), 5);
  EXPECT_EQ(lcm(4, 6), 12);
  EXPECT_EQ(lcm(0, 6), 0);
  EXPECT_EQ(lcm(13, 13), 13);
}

TEST(Product, EmptyIsOne) {
  EXPECT_EQ(product({}), 1);
  EXPECT_EQ(product({3}), 3);
  EXPECT_EQ(product({2, 3, 4}), 24);
}

TEST(Divisors, SortedComplete) {
  EXPECT_EQ(divisors(1), (std::vector<std::int64_t>{1}));
  EXPECT_EQ(divisors(12), (std::vector<std::int64_t>{1, 2, 3, 4, 6, 12}));
  EXPECT_EQ(divisors(13), (std::vector<std::int64_t>{1, 13}));
  EXPECT_EQ(divisors(36), (std::vector<std::int64_t>{1, 2, 3, 4, 6, 9, 12, 18, 36}));
}

TEST(Pow2Candidates, BelowBound) {
  EXPECT_EQ(pow2_candidates(1), (std::vector<std::int64_t>{1}));
  EXPECT_EQ(pow2_candidates(8), (std::vector<std::int64_t>{1, 2, 4, 8}));
  EXPECT_EQ(pow2_candidates(9), (std::vector<std::int64_t>{1, 2, 4, 8}));
}

TEST(Pow2CandidatesCovering, IncludesCover) {
  // The DSE explores tile bounds covering the trip count: 13 needs 16.
  EXPECT_EQ(pow2_candidates_covering(13),
            (std::vector<std::int64_t>{1, 2, 4, 8, 16}));
  EXPECT_EQ(pow2_candidates_covering(1), (std::vector<std::int64_t>{1}));
  EXPECT_EQ(pow2_candidates_covering(2), (std::vector<std::int64_t>{1, 2}));
  EXPECT_EQ(pow2_candidates_covering(16),
            (std::vector<std::int64_t>{1, 2, 4, 8, 16}));
}

TEST(Clamp64, Bounds) {
  EXPECT_EQ(clamp64(5, 0, 10), 5);
  EXPECT_EQ(clamp64(-5, 0, 10), 0);
  EXPECT_EQ(clamp64(50, 0, 10), 10);
}

// Property sweep: ceil_div/round_up consistency over a grid.
class CeilDivProperty : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(CeilDivProperty, RoundUpIsMultipleAndMinimal) {
  const std::int64_t b = GetParam();
  for (std::int64_t a = 0; a <= 200; ++a) {
    const std::int64_t r = round_up(a, b);
    EXPECT_EQ(r % b, 0);
    EXPECT_GE(r, a);
    EXPECT_LT(r - a, b);
    EXPECT_EQ(r / b, ceil_div(a, b));
  }
}

INSTANTIATE_TEST_SUITE_P(Divisors, CeilDivProperty,
                         ::testing::Values(1, 2, 3, 7, 8, 11, 13, 64));

}  // namespace
}  // namespace sasynth
