#include "util/table.h"

#include <gtest/gtest.h>

namespace sasynth {
namespace {

TEST(AsciiTable, EmptyRendersEmpty) {
  AsciiTable table;
  EXPECT_EQ(table.render(), "");
}

TEST(AsciiTable, HeaderSeparator) {
  AsciiTable table;
  table.add_row({"name", "value"});
  table.add_row({"x", "1"});
  const std::string out = table.render();
  // header + data + 3 separators = 5 lines
  int lines = 0;
  for (const char c : out) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 5);
  EXPECT_NE(out.find("| name | value |"), std::string::npos);
}

TEST(AsciiTable, ColumnsPadded) {
  AsciiTable table(false);
  table.add_row({"long-cell", "a"});
  table.add_row({"b", "longer-cell"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| long-cell | a           |"), std::string::npos);
  EXPECT_NE(out.find("| b         | longer-cell |"), std::string::npos);
}

TEST(AsciiTable, RaggedRows) {
  AsciiTable table(false);
  table.add_row({"a", "b", "c"});
  table.add_row({"d"});
  EXPECT_EQ(table.column_count(), 3U);
  const std::string out = table.render();
  EXPECT_NE(out.find("| d |   |   |"), std::string::npos);
}

TEST(AsciiTable, RowBuilder) {
  AsciiTable table(false);
  table.row().cell("x").cell(static_cast<std::int64_t>(42)).cell(3.14159, 2).percent(0.9697, 2);
  EXPECT_EQ(table.row_count(), 1U);
  const std::string out = table.render();
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);
  EXPECT_NE(out.find("96.97%"), std::string::npos);
}

}  // namespace
}  // namespace sasynth
