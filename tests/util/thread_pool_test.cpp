#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace sasynth {
namespace {

TEST(ThreadPoolTest, ResolveJobsPrefersExplicitRequest) {
  EXPECT_EQ(ThreadPool::resolve_jobs(3), 3);
  EXPECT_EQ(ThreadPool::resolve_jobs(1), 1);
  EXPECT_GE(ThreadPool::resolve_jobs(0), 1);
}

TEST(ThreadPoolTest, EnvOverrideControlsDefault) {
  ASSERT_EQ(setenv("SASYNTH_JOBS", "5", 1), 0);
  EXPECT_EQ(ThreadPool::env_jobs(), 5);
  EXPECT_EQ(ThreadPool::resolve_jobs(0), 5);
  // An explicit request still wins over the environment.
  EXPECT_EQ(ThreadPool::resolve_jobs(2), 2);

  ASSERT_EQ(setenv("SASYNTH_JOBS", "garbage", 1), 0);
  EXPECT_EQ(ThreadPool::env_jobs(), 0);
  ASSERT_EQ(unsetenv("SASYNTH_JOBS"), 0);
  EXPECT_EQ(ThreadPool::env_jobs(), 0);
}

TEST(ThreadPoolTest, SingleJobRunsInlineOnCaller) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.jobs(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen;
  std::vector<std::int64_t> order;
  pool.for_each(10, [&](std::int64_t begin, std::int64_t end, int worker) {
    EXPECT_EQ(worker, 0);
    seen.push_back(std::this_thread::get_id());
    for (std::int64_t i = begin; i < end; ++i) order.push_back(i);
  });
  // Inline: exactly one contiguous range, executed on the calling thread.
  ASSERT_EQ(seen.size(), 1U);
  EXPECT_EQ(seen.front(), caller);
  std::vector<std::int64_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  constexpr std::int64_t kCount = 1000;
  ThreadPool pool(4);
  EXPECT_EQ(pool.jobs(), 4);
  std::vector<std::atomic<int>> hits(kCount);
  pool.for_each(kCount, [&](std::int64_t begin, std::int64_t end, int worker) {
    EXPECT_GE(worker, 0);
    EXPECT_LT(worker, 4);
    for (std::int64_t i = begin; i < end; ++i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    }
  });
  for (std::int64_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ResultIndependentOfSchedulingOrder) {
  // Accumulating by item index gives the same result no matter which worker
  // runs which range — the property the DSE's deterministic merge rests on.
  constexpr std::int64_t kCount = 512;
  std::vector<std::int64_t> serial(kCount);
  ThreadPool(1).for_each(kCount,
                         [&](std::int64_t begin, std::int64_t end, int) {
                           for (std::int64_t i = begin; i < end; ++i) {
                             serial[static_cast<std::size_t>(i)] = i * i;
                           }
                         });
  for (const int jobs : {2, 3, 8}) {
    std::vector<std::int64_t> parallel(kCount);
    ThreadPool(jobs).for_each(
        kCount,
        [&](std::int64_t begin, std::int64_t end, int) {
          for (std::int64_t i = begin; i < end; ++i) {
            parallel[static_cast<std::size_t>(i)] = i * i;
          }
        },
        /*chunk=*/7);  // deliberately uneven chunking
    EXPECT_EQ(parallel, serial) << "jobs=" << jobs;
  }
}

TEST(ThreadPoolTest, PropagatesExceptionFromWorker) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.for_each(100,
                    [](std::int64_t begin, std::int64_t end, int) {
                      for (std::int64_t i = begin; i < end; ++i) {
                        if (i == 42) throw std::runtime_error("boom at 42");
                      }
                    }),
      std::runtime_error);
  // The pool survives a throw and can run again.
  std::atomic<std::int64_t> sum{0};
  pool.for_each(10, [&](std::int64_t begin, std::int64_t end, int) {
    for (std::int64_t i = begin; i < end; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolTest, PropagatesExceptionInline) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.for_each(5,
                             [](std::int64_t, std::int64_t, int) {
                               throw std::logic_error("inline boom");
                             }),
               std::logic_error);
}

TEST(ThreadPoolTest, EmptyAndTinyRangesAreSafe) {
  ThreadPool pool(4);
  bool ran = false;
  pool.for_each(0, [&](std::int64_t, std::int64_t, int) { ran = true; });
  EXPECT_FALSE(ran);
  std::atomic<int> count{0};
  pool.for_each(1, [&](std::int64_t begin, std::int64_t end, int) {
    count.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, SubmitRunsTasksAndWaitTasksBlocks) {
  ThreadPool pool(3);
  std::atomic<std::int64_t> sum{0};
  for (int i = 1; i <= 20; ++i) {
    pool.submit([&sum, i] { sum.fetch_add(i); });
  }
  pool.wait_tasks();
  EXPECT_EQ(sum.load(), 210);
  // The pool is reusable for more tasks and for ranges afterwards.
  pool.submit([&sum] { sum.fetch_add(1); });
  pool.wait_tasks();
  EXPECT_EQ(sum.load(), 211);
  std::atomic<std::int64_t> range_sum{0};
  pool.for_each(10, [&](std::int64_t begin, std::int64_t end, int) {
    for (std::int64_t i = begin; i < end; ++i) range_sum.fetch_add(i);
  });
  EXPECT_EQ(range_sum.load(), 45);
}

TEST(ThreadPoolTest, SubmitInlineAtOneJob) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.submit([&] { ran_on = std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, caller);  // complete before submit returned
  pool.wait_tasks();          // trivially satisfied
}

TEST(ThreadPoolTest, TaskExceptionsAreContained) {
  // Unlike for_each (a sweep with one caller to rethrow to), fire-and-forget
  // tasks own their errors: a throwing task must not take the pool down.
  for (const int jobs : {1, 3}) {
    ThreadPool pool(jobs);
    pool.submit([] { throw std::runtime_error("task boom"); });
    pool.wait_tasks();
    std::atomic<int> ran{0};
    pool.submit([&] { ++ran; });
    pool.wait_tasks();
    EXPECT_EQ(ran.load(), 1) << "jobs=" << jobs;
  }
}

TEST(ThreadPoolTest, DestructorDrainsSubmittedTasks) {
  std::atomic<std::int64_t> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 16; ++i) {
      pool.submit([&ran] { ++ran; });
    }
  }
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPoolTest, ReusableAcrossManySweeps) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::int64_t> sum{0};
    pool.for_each(round + 1, [&](std::int64_t begin, std::int64_t end, int) {
      for (std::int64_t i = begin; i < end; ++i) sum.fetch_add(i + 1);
    });
    const std::int64_t n = round + 1;
    EXPECT_EQ(sum.load(), n * (n + 1) / 2) << "round " << round;
  }
}

}  // namespace
}  // namespace sasynth
