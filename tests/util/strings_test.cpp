#include "util/strings.h"

#include <gtest/gtest.h>

namespace sasynth {
namespace {

TEST(Split, PreservesEmptyFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitWs, DropsEmpty) {
  EXPECT_EQ(split_ws("  a\t b \n c  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(split_ws("   ").empty());
  EXPECT_TRUE(split_ws("").empty());
}

TEST(Trim, Whitespace) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("\t\n x y \r"), "x y");
  EXPECT_EQ(trim("   "), "");
}

TEST(StartsEndsWith, Basic) {
  EXPECT_TRUE(starts_with("pragma systolic", "pragma"));
  EXPECT_FALSE(starts_with("pra", "pragma"));
  EXPECT_TRUE(ends_with("kernel.cl", ".cl"));
  EXPECT_FALSE(ends_with("cl", ".cl"));
  EXPECT_TRUE(starts_with("x", ""));
  EXPECT_TRUE(ends_with("x", ""));
}

TEST(Join, Separator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({"a"}, ","), "a");
  EXPECT_EQ(join({}, ","), "");
}

TEST(ReplaceAll, NonOverlapping) {
  EXPECT_EQ(replace_all("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(replace_all("{{x}} and {{x}}", "{{x}}", "7"), "7 and 7");
  EXPECT_EQ(replace_all("abc", "", "z"), "abc");
  EXPECT_EQ(replace_all("abc", "x", "z"), "abc");
}

TEST(ToLower, Ascii) {
  EXPECT_EQ(to_lower("AlexNet VGG16"), "alexnet vgg16");
}

TEST(StrFormat, Printf) {
  EXPECT_EQ(strformat("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(strformat("%.2f%%", 96.966), "96.97%");
  EXPECT_EQ(strformat("%s", ""), "");
}

TEST(Repeat, Count) {
  EXPECT_EQ(repeat("ab", 3), "ababab");
  EXPECT_EQ(repeat("ab", 0), "");
  EXPECT_EQ(repeat("ab", -1), "");
}

TEST(Indent, MultiLine) {
  EXPECT_EQ(indent("a\nb", 2), "  a\n  b");
  EXPECT_EQ(indent("a\n\nb", 2), "  a\n\n  b");  // blank lines stay blank
  EXPECT_EQ(indent("", 2), "");
}

TEST(FormatTrimmed, TrimsZeros) {
  EXPECT_EQ(format_trimmed(12.50, 2), "12.5");
  EXPECT_EQ(format_trimmed(3.00, 2), "3");
  EXPECT_EQ(format_trimmed(0.25, 2), "0.25");
  EXPECT_EQ(format_trimmed(100.0, 0), "100");
}

TEST(ParseInt64Strict, AcceptsWholeTokensOnly) {
  std::int64_t v = -1;
  EXPECT_TRUE(parse_int64_strict("0", &v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(parse_int64_strict("8080", &v));
  EXPECT_EQ(v, 8080);
  EXPECT_TRUE(parse_int64_strict("-17", &v));
  EXPECT_EQ(v, -17);
  EXPECT_TRUE(parse_int64_strict("9223372036854775807", &v));
  EXPECT_EQ(v, INT64_MAX);
}

TEST(ParseInt64Strict, RejectsTheSilentAtoiFamily) {
  // Every input here is one std::atoi would quietly turn into 0 or truncate
  // — the bug class that made "--port abc" bind an ephemeral port.
  std::int64_t v = 42;
  EXPECT_FALSE(parse_int64_strict("abc", &v));
  EXPECT_FALSE(parse_int64_strict("", &v));
  EXPECT_FALSE(parse_int64_strict("12abc", &v));     // trailing garbage
  EXPECT_FALSE(parse_int64_strict("12 ", &v));       // trailing space
  EXPECT_FALSE(parse_int64_strict(" 12", &v));       // tokens come pre-trimmed
  EXPECT_FALSE(parse_int64_strict("1.5", &v));
  EXPECT_FALSE(parse_int64_strict("9223372036854775808", &v));   // overflow
  EXPECT_FALSE(parse_int64_strict("-9223372036854775809", &v));  // underflow
  EXPECT_EQ(v, 42);  // *out untouched on every reject
}

TEST(ParseDoubleStrict, AcceptsAndRejects) {
  double d = -1.0;
  EXPECT_TRUE(parse_double_strict("0.5", &d));
  EXPECT_EQ(d, 0.5);
  EXPECT_TRUE(parse_double_strict("-2e3", &d));
  EXPECT_EQ(d, -2000.0);
  EXPECT_TRUE(parse_double_strict("280", &d));
  EXPECT_EQ(d, 280.0);

  double keep = 7.0;
  EXPECT_FALSE(parse_double_strict("", &keep));
  EXPECT_FALSE(parse_double_strict("banana", &keep));
  EXPECT_FALSE(parse_double_strict("1.5x", &keep));
  EXPECT_FALSE(parse_double_strict("1e9999", &keep));  // overflow (ERANGE)
  EXPECT_EQ(keep, 7.0);
}

}  // namespace
}  // namespace sasynth
