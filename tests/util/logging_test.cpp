#include "util/logging.h"

#include <gtest/gtest.h>

namespace sasynth {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::kWarn); }
};

TEST_F(LoggingTest, LevelRoundTrip) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST_F(LoggingTest, ParseNames) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("none"), LogLevel::kOff);
}

TEST_F(LoggingTest, ParseReportsRecognition) {
  bool recognized = false;
  EXPECT_EQ(parse_log_level("debug", &recognized), LogLevel::kDebug);
  EXPECT_TRUE(recognized);
  EXPECT_EQ(parse_log_level("bogus", &recognized), LogLevel::kInfo);
  EXPECT_FALSE(recognized);
}

TEST_F(LoggingTest, UnknownNameWarnsInsteadOfSilentFallback) {
  set_log_level(LogLevel::kWarn);
  testing::internal::CaptureStderr();
  EXPECT_EQ(parse_log_level("bogus"), LogLevel::kInfo);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("unrecognized log level 'bogus'"), std::string::npos)
      << err;
  EXPECT_NE(err.find("falling back to info"), std::string::npos);
  // Recognized names stay silent.
  testing::internal::CaptureStderr();
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST_F(LoggingTest, LevelNames) {
  EXPECT_STREQ(log_level_name(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(log_level_name(LogLevel::kError), "ERROR");
}

TEST_F(LoggingTest, SuppressedMessagesDoNotCrash) {
  set_log_level(LogLevel::kOff);
  SA_LOG_ERROR << "suppressed " << 42;
  set_log_level(LogLevel::kError);
  SA_LOG_DEBUG << "also suppressed";
}

TEST_F(LoggingTest, EmittingMessageDoesNotCrash) {
  set_log_level(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  SA_LOG_INFO << "hello " << 1 << " " << 2.5;
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("hello 1 2.5"), std::string::npos);
  EXPECT_NE(err.find("[INFO"), std::string::npos);
}

}  // namespace
}  // namespace sasynth
