#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace sasynth {
namespace {

TEST(SplitMix, DeterministicAndSpread) {
  EXPECT_EQ(splitmix64(0), splitmix64(0));
  EXPECT_NE(splitmix64(0), splitmix64(1));
  std::set<std::uint64_t> values;
  for (std::uint64_t i = 0; i < 1000; ++i) values.insert(splitmix64(i));
  EXPECT_EQ(values.size(), 1000U);
}

TEST(Fnv1a, KnownValues) {
  // FNV-1a offset basis for the empty string.
  EXPECT_EQ(fnv1a64(std::string("")), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a64(std::string("a")), fnv1a64(std::string("b")));
  EXPECT_EQ(fnv1a64(std::string("design1")), fnv1a64(std::string("design1")));
}

TEST(Rng, Reproducible) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(13), 13U);
    EXPECT_EQ(rng.next_below(1), 0U);
  }
}

TEST(Rng, NextRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.next_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnit) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.next_gaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, FillUniformBounds) {
  Rng rng(13);
  std::vector<float> buf(500);
  rng.fill_uniform(buf, -2.0F, 3.0F);
  for (const float v : buf) {
    EXPECT_GE(v, -2.0F);
    EXPECT_LT(v, 3.0F);
  }
}

}  // namespace
}  // namespace sasynth
