#include "faultinject/faultinject.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>

#include "obs/metrics.h"

namespace sasynth {
namespace {

/// Every test starts disarmed with metrics on (the injection/degradation
/// counters are part of the contract) and leaves no armed site behind.
class FaultInjectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::disarm_all();
    obs::set_metrics_enabled(true);
    injected_before_ = counter("faults_injected_total").value();
    degraded_before_ = counter("degraded_total").value();
  }

  void TearDown() override {
    fault::disarm_all();
    ::unsetenv("SASYNTH_FAULTS");
  }

  static obs::Counter& counter(const char* name) {
    return obs::MetricsRegistry::global().counter(name);
  }

  std::int64_t injected_delta() const {
    return counter("faults_injected_total").value() - injected_before_;
  }
  std::int64_t degraded_delta() const {
    return counter("degraded_total").value() - degraded_before_;
  }

 private:
  std::int64_t injected_before_ = 0;
  std::int64_t degraded_before_ = 0;
};

TEST_F(FaultInjectTest, DisarmedSiteNeverFires) {
  EXPECT_FALSE(fault::faults_enabled());
  fault::Site& s = fault::site(fault::kSiteTcpRead);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(s.fire(), fault::ErrorKind::kNone);
  }
  EXPECT_EQ(s.injected(), 0);
  EXPECT_EQ(injected_delta(), 0);
}

TEST_F(FaultInjectTest, ArmedSiteFiresOnTheNthCallOnly) {
  fault::FaultSpec spec;
  spec.kind = fault::ErrorKind::kError;
  spec.after = 3;  // fire exactly on the 3rd call
  fault::arm(fault::kSiteCacheLoad, spec);
  EXPECT_TRUE(fault::faults_enabled());

  fault::Site& s = fault::site(fault::kSiteCacheLoad);
  EXPECT_EQ(s.fire(), fault::ErrorKind::kNone);
  EXPECT_EQ(s.fire(), fault::ErrorKind::kNone);
  EXPECT_EQ(s.fire(), fault::ErrorKind::kError);
  EXPECT_EQ(s.fire(), fault::ErrorKind::kNone);  // window is one call wide
  EXPECT_EQ(s.injected(), 1);
  EXPECT_EQ(injected_delta(), 1);
}

TEST_F(FaultInjectTest, CountWindowAndUnlimitedCount) {
  fault::FaultSpec spec;
  spec.kind = fault::ErrorKind::kEintr;
  spec.after = 2;
  spec.count = 3;  // calls 2, 3, 4
  fault::arm(fault::kSiteTcpWrite, spec);
  fault::Site& s = fault::site(fault::kSiteTcpWrite);
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    if (s.fire() != fault::ErrorKind::kNone) ++fired;
  }
  EXPECT_EQ(fired, 3);

  spec.after = 1;
  spec.count = -1;  // every call
  fault::arm(fault::kSiteTcpWrite, spec);  // re-arm resets the call counter
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(s.fire(), fault::ErrorKind::kEintr);
  }
}

TEST_F(FaultInjectTest, ArmingOneSiteLeavesOthersCold) {
  fault::FaultSpec spec;
  spec.kind = fault::ErrorKind::kEnospc;
  fault::arm(fault::kSiteCacheStore, spec);
  EXPECT_EQ(fault::site(fault::kSiteTcpRead).fire(), fault::ErrorKind::kNone);
  EXPECT_EQ(fault::site(fault::kSiteCacheStore).fire(),
            fault::ErrorKind::kEnospc);
}

TEST_F(FaultInjectTest, DisarmAllDropsTheFlagAndCounters) {
  fault::FaultSpec spec;
  spec.kind = fault::ErrorKind::kError;
  spec.count = -1;
  fault::arm(fault::kSiteSchedAdmit, spec);
  fault::Site& s = fault::site(fault::kSiteSchedAdmit);
  EXPECT_NE(s.fire(), fault::ErrorKind::kNone);
  fault::disarm_all();
  EXPECT_FALSE(fault::faults_enabled());
  EXPECT_EQ(s.fire(), fault::ErrorKind::kNone);
  EXPECT_EQ(s.injected(), 0);
  EXPECT_EQ(fault::injected_total(), 0);
}

TEST_F(FaultInjectTest, KindNamesRoundTrip) {
  const fault::ErrorKind kinds[] = {
      fault::ErrorKind::kShortRead, fault::ErrorKind::kEintr,
      fault::ErrorKind::kEpipe,     fault::ErrorKind::kEnospc,
      fault::ErrorKind::kCorrupt,   fault::ErrorKind::kError,
  };
  for (const fault::ErrorKind kind : kinds) {
    fault::ErrorKind parsed = fault::ErrorKind::kNone;
    ASSERT_TRUE(fault::parse_kind(fault::kind_name(kind), &parsed))
        << fault::kind_name(kind);
    EXPECT_EQ(parsed, kind);
  }
  fault::ErrorKind parsed = fault::ErrorKind::kNone;
  EXPECT_FALSE(fault::parse_kind("bogus", &parsed));
}

TEST_F(FaultInjectTest, SpecStringParsesAllForms) {
  std::string error;
  ASSERT_TRUE(fault::parse_and_arm(
      "tcp.read:eintr@2x3,cache.store:enospc,pool.task:error@5x*", &error))
      << error;

  fault::Site& read = fault::site(fault::kSiteTcpRead);
  EXPECT_EQ(read.fire(), fault::ErrorKind::kNone);
  EXPECT_EQ(read.fire(), fault::ErrorKind::kEintr);

  EXPECT_EQ(fault::site(fault::kSiteCacheStore).fire(),
            fault::ErrorKind::kEnospc);

  fault::Site& task = fault::site(fault::kSitePoolTask);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(task.fire(), fault::ErrorKind::kNone);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(task.fire(), fault::ErrorKind::kError);
}

TEST_F(FaultInjectTest, SpecStringRejectsMalformedEntries) {
  const char* bad[] = {
      "nosuch.site:error",  // unknown site
      "tcp.read",           // missing kind
      "tcp.read:bogus",     // unknown kind
      "tcp.read:error@0",   // after must be >= 1
      "tcp.read:error@2x0", // count must be >= 1 or *
      "tcp.read:error@x3",  // empty after
  };
  for (const char* spec : bad) {
    fault::disarm_all();
    std::string error;
    EXPECT_FALSE(fault::parse_and_arm(spec, &error)) << spec;
    EXPECT_FALSE(error.empty()) << spec;
  }
}

TEST_F(FaultInjectTest, EmptySpecIsANoOpSuccess) {
  std::string error;
  EXPECT_TRUE(fault::parse_and_arm("", &error));
  EXPECT_FALSE(fault::faults_enabled());
}

TEST_F(FaultInjectTest, InstallFromEnvArmsGoodEntriesAndSkipsBad) {
  ::setenv("SASYNTH_FAULTS", "cache.load:corrupt,junk.site:error,tcp.write:epipe",
           1);
  EXPECT_EQ(fault::install_from_env(), 2);  // the malformed entry is skipped
  EXPECT_EQ(fault::site(fault::kSiteCacheLoad).fire(),
            fault::ErrorKind::kCorrupt);
  EXPECT_EQ(fault::site(fault::kSiteTcpWrite).fire(), fault::ErrorKind::kEpipe);

  ::unsetenv("SASYNTH_FAULTS");
  fault::disarm_all();
  EXPECT_EQ(fault::install_from_env(), 0);
}

TEST_F(FaultInjectTest, RaiseIfArmedThrowsFaultInjected) {
  EXPECT_NO_THROW(fault::raise_if_armed(fault::kSitePoolTask));
  fault::FaultSpec spec;
  spec.kind = fault::ErrorKind::kError;
  fault::arm(fault::kSitePoolTask, spec);
  EXPECT_THROW(fault::raise_if_armed(fault::kSitePoolTask),
               fault::FaultInjected);
  EXPECT_NO_THROW(fault::raise_if_armed(fault::kSitePoolTask));  // window past
}

TEST_F(FaultInjectTest, NoteDegradedFeedsTheCounter) {
  fault::note_degraded();
  fault::note_degraded();
  EXPECT_EQ(degraded_delta(), 2);
}

TEST_F(FaultInjectTest, KnownSitesCoverEveryConstant) {
  const std::vector<std::string>& sites = fault::known_sites();
  for (const char* name :
       {fault::kSiteTcpRead, fault::kSiteTcpWrite, fault::kSiteTcpAccept,
        fault::kSiteCacheLoad, fault::kSiteCacheStore, fault::kSiteCacheEvict,
        fault::kSiteSchedAdmit, fault::kSitePoolTask, fault::kSiteDeployPlan,
        fault::kSiteDeploySelect, fault::kSiteLoopPoll,
        fault::kSiteLoopWakeup, fault::kSiteShardConnect,
        fault::kSiteShardRead, fault::kSiteShardWrite,
        fault::kSiteShardProbe}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), name), sites.end())
        << name;
  }
  EXPECT_EQ(sites.size(), 16u);
}

}  // namespace
}  // namespace sasynth
