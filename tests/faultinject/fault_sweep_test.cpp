// The fault sweep: every injection point crossed with every error kind,
// driven through real TCP sessions against a disk-backed server.
//
// The contract under test (ISSUE: failure-path hardening):
//   * no crash, no hang, for any (site, kind);
//   * benign kinds (EINTR, short read/write) are invisible — the transcript
//     is byte-identical to the clean reference;
//   * recoverable faults (cache disk errors, transient accept failures)
//     degrade silently: the transcript stays byte-identical and
//     `degraded_total` counts the fallback;
//   * surfaced faults (admission failure, task failure) yield a clean
//     retry/error response and the session keeps serving;
//   * fatal transport faults end the session cleanly (no partial request is
//     ever parsed);
//   * after disarming, a fresh server over the same cache produces a
//     byte-identical transcript (retries are deterministic).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "faultinject/faultinject.h"
#include "obs/metrics.h"
#include "serve/server.h"
#include "serve/tcp.h"

namespace sasynth {
namespace {

const char* kRequestA =
    "sasynth-request v1\n"
    "layer 16,16,8,8,3\n"
    "device tiny\n"
    "option min_util 0.5\n"
    "end\n";
const char* kRequestB =
    "sasynth-request v1\n"
    "layer 8,16,4,4,3\n"
    "device tiny\n"
    "option min_util 0.5\n"
    "end\n";
/// Exercises the deploy sites (deploy.select fires at selection entry,
/// deploy.plan on the first per-layer fold of the latency matrix).
const char* kDeployRequest =
    "sasynth-deploy v1\n"
    "network tiny\n"
    "fleet 1\n"
    "device tiny\n"
    "option min_util 0.5\n"
    "end\n";

int connect_loopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Client-side writer on raw write(2): the client must NOT go through
/// write_all_fd, whose tcp.write injection site belongs to the server under
/// test — a shared site would consume the armed fault on the client's send.
bool client_send_all(int fd, const std::string& data) {
  std::size_t written = 0;
  while (written < data.size()) {
    // MSG_NOSIGNAL: a fatal-read fault makes the server close the socket
    // mid-script, and that must surface as EPIPE, not SIGPIPE in the test.
    const ssize_t n = ::send(fd, data.data() + written,
                             data.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

std::string read_to_eof(int fd) {
  std::string out;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return out;
    }
    out.append(chunk, static_cast<std::size_t>(n));
  }
}

class FaultSweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::disarm_all();
    obs::set_metrics_enabled(true);
  }
  void TearDown() override { fault::disarm_all(); }

  /// One cache directory shared by every sweep iteration: responses are
  /// derived deterministically from (request, design), so it does not matter
  /// whether a particular run got its design from memory, disk, or a fresh
  /// DSE — the bytes on the wire are identical. Sharing the warm directory
  /// keeps the 48-iteration sweep fast.
  static std::string shared_cache_dir() {
    static const std::string dir = [] {
      // Per-pid: ctest runs each test case as its own process, possibly in
      // parallel, and two processes sweeping one directory race remove_all
      // against each other's stores.
      const std::filesystem::path p =
          std::filesystem::path(::testing::TempDir()) /
          ("sasynth_fault_sweep_" + std::to_string(::getpid()));
      std::filesystem::remove_all(p);
      return p.string();
    }();
    return dir;
  }

  /// remove_all that tolerates entries vanishing underneath it.
  static void reset_cache_dir() {
    std::error_code ec;
    std::filesystem::remove_all(shared_cache_dir(), ec);
  }

  static ServeOptions sweep_options() {
    ServeOptions options;
    options.jobs = 1;
    options.cache_dir = shared_cache_dir();
    // Capacity 1 forces an eviction on the second distinct request, so the
    // cache.evict site actually fires during the sweep.
    options.cache_capacity = 1;
    return options;
  }

  /// A session that exercises every serve-side site: a command (ping), a
  /// disk-warm request, a second request (evicts + stores), a repeat of
  /// the first (reloads from disk after the eviction), and a deploy
  /// request (fleet selection; crosses deploy.select and deploy.plan).
  static std::string session_script() {
    return std::string("ping\n") + kRequestA + kRequestB + kRequestA +
           kDeployRequest + "shutdown\n";
  }

  /// Runs one full TCP client/server session and returns what the client
  /// received. Joins everything: if this returns, nothing hung.
  static std::string run_tcp_session(SynthServer& server) {
    TcpListener listener;
    std::string error;
    EXPECT_TRUE(listener.listen_on(0, &error)) << error;
    std::thread session([&] {
      const int fd = listener.accept_client();
      if (fd >= 0) serve_fd_session(server, fd);
    });
    const int client = connect_loopback(listener.port());
    EXPECT_GE(client, 0);
    std::string transcript;
    if (client >= 0) {
      client_send_all(client, session_script());
      ::shutdown(client, SHUT_WR);
      transcript = read_to_eof(client);
      ::close(client);
    }
    session.join();
    listener.close_listener();
    return transcript;
  }

  /// The clean-run transcript (computed once; also warms the shared cache
  /// directory so later iterations skip most DSE work).
  static const std::string& reference() {
    static const std::string ref = [] {
      SynthServer server(sweep_options());
      return run_tcp_session(server);
    }();
    return ref;
  }

  static obs::Counter& degraded_counter() {
    return obs::MetricsRegistry::global().counter("degraded_total");
  }
};

/// How a (site, kind) pair is expected to surface.
enum class Outcome {
  kInvisible,   ///< transcript byte-identical, no degradation recorded
  kDegraded,    ///< transcript byte-identical, degraded_total incremented
  kSurfaced,    ///< clean retry/error response; session keeps serving
  kSessionEnd,  ///< transport gone: session ends cleanly, nothing parsed
};

Outcome expected_outcome(const std::string& site, fault::ErrorKind kind) {
  const bool benign = kind == fault::ErrorKind::kEintr ||
                      kind == fault::ErrorKind::kShortRead;
  if (site == fault::kSiteTcpRead || site == fault::kSiteTcpWrite) {
    // The sweep sessions run without an I/O timeout, so a stall is a brief
    // real delay and then the call proceeds — invisible. The timed flavor
    // (stall == elapsed timeout, session ends) is covered separately below.
    if (kind == fault::ErrorKind::kStall) return Outcome::kInvisible;
    return benign ? Outcome::kInvisible : Outcome::kSessionEnd;
  }
  if (site == fault::kSiteSchedAdmit) return Outcome::kSurfaced;
  if (site == fault::kSitePoolTask) return Outcome::kSurfaced;
  // Deploy faults abort that one request (clean `internal error` response);
  // the session and every other request keep working.
  if (site == fault::kSiteDeployPlan || site == fault::kSiteDeploySelect) {
    return Outcome::kSurfaced;
  }
  // tcp.accept treats every kind as a transient accept failure; cache sites
  // always fall back (fresh DSE / skip persist / drop memory tier).
  return Outcome::kDegraded;
}

TEST_F(FaultSweepTest, EverySiteTimesEveryKindDegradesGracefully) {
  const std::string& ref = reference();
  ASSERT_NE(ref.find("sasynth-pong v1"), std::string::npos) << ref;
  ASSERT_NE(ref.find("sasynth-response v1 ok"), std::string::npos) << ref;
  ASSERT_NE(ref.find("sasynth-bye v1"), std::string::npos) << ref;

  const fault::ErrorKind kinds[] = {
      fault::ErrorKind::kShortRead, fault::ErrorKind::kEintr,
      fault::ErrorKind::kEpipe,     fault::ErrorKind::kEnospc,
      fault::ErrorKind::kCorrupt,   fault::ErrorKind::kError,
      fault::ErrorKind::kStall,
  };

  for (const std::string& site_name : fault::known_sites()) {
    // The loop.* sites only exist on the event-loop transport; this sweep
    // drives the blocking thread-per-session path, where they never fire
    // (the EXPECT_GT(injected, 0) assertions would be vacuously wrong).
    // event_loop_test.cpp sweeps them against the real loop. Likewise the
    // shard.* sites only exist on a coordinator's peer RPCs;
    // serve/shard_test.cpp sweeps them against a real worker fleet.
    if (site_name.rfind("loop.", 0) == 0) continue;
    if (site_name.rfind("shard.", 0) == 0) continue;
    for (const fault::ErrorKind kind : kinds) {
      SCOPED_TRACE(site_name + ":" + fault::kind_name(kind));
      fault::disarm_all();

      // Reset the disk tier to "request A only" so every cache site has
      // work each iteration: A loads from disk (cache.load), B is cold and
      // must be explored + stored (cache.store), and capacity 1 forces an
      // eviction when B lands (cache.evict).
      reset_cache_dir();
      {
        SynthServer prewarm(sweep_options());
        prewarm.handle(kRequestA);
      }

      fault::FaultSpec spec;
      spec.kind = kind;
      spec.after = 1;
      spec.count = 1;
      fault::arm(site_name, spec);

      const std::int64_t degraded_before = degraded_counter().value();
      SynthServer server(sweep_options());
      const std::string transcript = run_tcp_session(server);
      const std::int64_t degraded =
          degraded_counter().value() - degraded_before;
      const std::int64_t injected = fault::injected_total();

      switch (expected_outcome(site_name, kind)) {
        case Outcome::kInvisible:
          EXPECT_GT(injected, 0);
          EXPECT_EQ(transcript, ref);
          break;
        case Outcome::kDegraded:
          EXPECT_GT(injected, 0);
          EXPECT_EQ(transcript, ref);
          EXPECT_GT(degraded, 0);
          break;
        case Outcome::kSurfaced:
          EXPECT_GT(injected, 0);
          EXPECT_GT(degraded, 0);
          // The faulted request gets a clean protocol response...
          if (site_name == fault::kSiteSchedAdmit) {
            EXPECT_NE(transcript.find("sasynth-response v1 retry"),
                      std::string::npos)
                << transcript;
          } else {
            EXPECT_NE(transcript.find("internal error"), std::string::npos)
                << transcript;
          }
          // ...and the session keeps serving: later requests succeed and
          // the shutdown handshake completes.
          EXPECT_NE(transcript.find("sasynth-response v1 ok"),
                    std::string::npos)
              << transcript;
          EXPECT_NE(transcript.find("sasynth-bye v1"), std::string::npos)
              << transcript;
          break;
        case Outcome::kSessionEnd:
          EXPECT_GT(injected, 0);
          EXPECT_GT(degraded, 0);
          // The very first read/write failed, so the client saw nothing —
          // crucially, no partial or garbage response.
          EXPECT_TRUE(transcript.empty()) << transcript;
          break;
      }

      // Retry determinism: disarm and replay the identical stream against a
      // fresh server over the same cache directory — byte-identical.
      fault::disarm_all();
      SynthServer retry_server(sweep_options());
      EXPECT_EQ(run_tcp_session(retry_server), ref);
    }
  }
}

/// The tcp.accept site rides out a whole burst of transient failures, not
/// just one: the listener must keep retrying until the kernel hands it the
/// parked connection.
TEST_F(FaultSweepTest, AcceptSurvivesATransientErrorBurst) {
  const std::string& ref = reference();  // computed before arming
  fault::FaultSpec spec;
  spec.kind = fault::ErrorKind::kError;
  spec.after = 1;
  spec.count = 3;  // three consecutive failed accepts, then the real one
  fault::arm(fault::kSiteTcpAccept, spec);

  SynthServer server(sweep_options());
  const std::string transcript = run_tcp_session(server);
  EXPECT_EQ(fault::site(fault::kSiteTcpAccept).injected(), 3);
  EXPECT_EQ(transcript, ref);
}

/// EINTR storms on the transport are fully absorbed: a long run of
/// interrupted reads/writes never surfaces in the transcript.
TEST_F(FaultSweepTest, EintrStormIsInvisible) {
  const std::string& ref = reference();  // computed before arming
  std::string error;
  ASSERT_TRUE(
      fault::parse_and_arm("tcp.read:eintr@1x20,tcp.write:eintr@2x20", &error))
      << error;
  SynthServer server(sweep_options());
  EXPECT_EQ(run_tcp_session(server), ref);
  EXPECT_GE(fault::injected_total(), 40);
}

/// With an I/O timeout configured, a stalled peer is modeled as the timer
/// having elapsed: the session ends cleanly before anything is parsed, the
/// degradation is recorded, and io_timeouts_total counts the firing.
TEST_F(FaultSweepTest, StallWithIoTimeoutEndsTheSession) {
  const std::string& ref = reference();  // computed before arming
  fault::FaultSpec spec;
  spec.kind = fault::ErrorKind::kStall;
  spec.after = 1;
  spec.count = 1;
  fault::arm(fault::kSiteTcpRead, spec);

  obs::Counter& io_timeouts =
      obs::MetricsRegistry::global().counter("io_timeouts_total");
  const std::int64_t timeouts_before = io_timeouts.value();
  const std::int64_t degraded_before = degraded_counter().value();

  ServeOptions options = sweep_options();
  options.io_timeout_ms = 30000;  // never actually waited: stall == elapsed
  SynthServer server(options);
  const std::string transcript = run_tcp_session(server);
  // First read stalled out, so the client saw nothing — and no partial
  // request was ever parsed.
  EXPECT_TRUE(transcript.empty()) << transcript;
  EXPECT_EQ(fault::site(fault::kSiteTcpRead).injected(), 1);
  EXPECT_EQ(io_timeouts.value() - timeouts_before, 1);
  EXPECT_GT(degraded_counter().value() - degraded_before, 0);

  // Disarmed replay over the same cache: byte-identical to the reference.
  fault::disarm_all();
  SynthServer retry_server(sweep_options());
  EXPECT_EQ(run_tcp_session(retry_server), ref);
}

/// A cache directory that fails on every disk operation still serves every
/// request correctly — the server just re-runs the DSE each time.
TEST_F(FaultSweepTest, AllDiskFaultsFallBackToFreshDse) {
  const std::string& ref = reference();  // computed before arming
  std::string error;
  ASSERT_TRUE(fault::parse_and_arm(
                  "cache.load:error@1x*,cache.store:enospc@1x*", &error))
      << error;
  SynthServer server(sweep_options());
  EXPECT_EQ(run_tcp_session(server), ref);
  EXPECT_GT(server.counters().dse_runs.load(), 0);
}

}  // namespace
}  // namespace sasynth
