#include "codegen/report_gen.h"

#include <gtest/gtest.h>

#include <memory>

#include "loopnest/conv_nest.h"
#include "nn/network.h"

namespace sasynth {
namespace {

class ReportGenTest : public ::testing::Test {
 protected:
  ReportGenTest()
      : layer_(alexnet_conv5()),
        nest_(build_conv_nest(layer_)),
        device_(arria10_gt1150()) {
    DseOptions options;
    options.min_dsp_util = 0.85;
    explorer_ = std::make_unique<DesignSpaceExplorer>(
        device_, DataType::kFloat32, options);
    result_ = explorer_->explore(nest_);
  }

  ConvLayerDesc layer_;
  LoopNest nest_;
  FpgaDevice device_;
  std::unique_ptr<DesignSpaceExplorer> explorer_;
  DseResult result_;
};

TEST_F(ReportGenTest, DesignReportSections) {
  ASSERT_FALSE(result_.empty());
  const std::string report = generate_design_report(
      nest_, result_.top.front(), layer_, device_, DataType::kFloat32);
  EXPECT_NE(report.find("# Systolic Array Design Report"), std::string::npos);
  EXPECT_NE(report.find("## Architecture"), std::string::npos);
  EXPECT_NE(report.find("## Resources"), std::string::npos);
  EXPECT_NE(report.find("## Performance"), std::string::npos);
  EXPECT_NE(report.find("Mapping: `(row="), std::string::npos);
  EXPECT_NE(report.find("Realized"), std::string::npos);
  EXPECT_NE(report.find("Layer latency"), std::string::npos);
  EXPECT_NE(report.find("Roofline:"), std::string::npos);
  EXPECT_NE(report.find("ops/B"), std::string::npos);
}

TEST_F(ReportGenTest, DseReportHasCandidateTable) {
  const std::string report = generate_dse_report(nest_, result_, layer_,
                                                 device_, DataType::kFloat32);
  EXPECT_NE(report.find("# Design Space Exploration Report"),
            std::string::npos);
  EXPECT_NE(report.find("mappings"), std::string::npos);
  EXPECT_NE(report.find("| # "), std::string::npos);
  EXPECT_NE(report.find("Best realized design"), std::string::npos);
  // One table row per top candidate.
  std::size_t rows = 0;
  for (std::size_t pos = report.find("(row=");
       pos != std::string::npos; pos = report.find("(row=", pos + 1)) {
    ++rows;
  }
  EXPECT_GE(rows, result_.top.size());
}

}  // namespace
}  // namespace sasynth
