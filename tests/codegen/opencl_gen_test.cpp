#include "codegen/opencl_gen.h"

#include <gtest/gtest.h>

#include "loopnest/conv_nest.h"
#include "nn/network.h"

namespace sasynth {
namespace {

class OpenclGenTest : public ::testing::Test {
 protected:
  OpenclGenTest() : layer_(alexnet_conv5()), nest_(build_conv_nest(layer_)) {}

  DesignPoint sys1() const {
    return DesignPoint(
        nest_, SystolicMapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI},
        ArrayShape{11, 13, 8}, {4, 4, 1, 13, 3, 3});
  }

  ConvLayerDesc layer_;
  LoopNest nest_;
};

TEST_F(OpenclGenTest, ParamsEncodeDesign) {
  const KernelSources src =
      generate_opencl_kernel(nest_, sys1(), layer_, DataType::kFloat32);
  EXPECT_NE(src.params_h.find("#define PE_ROWS 11"), std::string::npos);
  EXPECT_NE(src.params_h.find("#define PE_COLS 13"), std::string::npos);
  EXPECT_NE(src.params_h.find("#define SIMD_VEC 8"), std::string::npos);
  EXPECT_NE(src.params_h.find("#define TILE_O 4"), std::string::npos);
  EXPECT_NE(src.params_h.find("#define TILE_R 13"), std::string::npos);
  EXPECT_NE(src.params_h.find("#define CFG_O 128"), std::string::npos);
  EXPECT_NE(src.params_h.find("#define CFG_I 192"), std::string::npos);
  EXPECT_NE(src.params_h.find("ROW_LOOP_O 1"), std::string::npos);
  EXPECT_NE(src.params_h.find("COL_LOOP_C 1"), std::string::npos);
  EXPECT_NE(src.params_h.find("VEC_LOOP_I 1"), std::string::npos);
}

TEST_F(OpenclGenTest, FloatTypesForFloat32) {
  const KernelSources src =
      generate_opencl_kernel(nest_, sys1(), layer_, DataType::kFloat32);
  EXPECT_NE(src.params_h.find("typedef float data_t;"), std::string::npos);
  EXPECT_EQ(src.params_h.find("typedef char"), std::string::npos);
}

TEST_F(OpenclGenTest, FixedTypesForFixed) {
  const KernelSources src =
      generate_opencl_kernel(nest_, sys1(), layer_, DataType::kFixed8_16);
  EXPECT_NE(src.params_h.find("typedef char  weight_t;"), std::string::npos);
  EXPECT_NE(src.params_h.find("typedef short data_t;"), std::string::npos);
  EXPECT_NE(src.params_h.find("typedef int   acc_t;"), std::string::npos);
  EXPECT_EQ(src.params_h.find("typedef float data_t;"), std::string::npos);
}

TEST_F(OpenclGenTest, KernelHasSystolicStructure) {
  const KernelSources src =
      generate_opencl_kernel(nest_, sys1(), layer_, DataType::kFloat32);
  // The four pipeline stages.
  EXPECT_NE(src.kernel_cl.find("__kernel void feed_vert"), std::string::npos);
  EXPECT_NE(src.kernel_cl.find("__kernel void feed_horz"), std::string::npos);
  EXPECT_NE(src.kernel_cl.find("__kernel void pe"), std::string::npos);
  EXPECT_NE(src.kernel_cl.find("__kernel void drain_out"), std::string::npos);
  // Channels and the neighbour shifts.
  EXPECT_NE(src.kernel_cl.find("cl_intel_channels"), std::string::npos);
  EXPECT_NE(src.kernel_cl.find("ch_vert[x + 1][y]"), std::string::npos);
  EXPECT_NE(src.kernel_cl.find("ch_horz[x][y + 1]"), std::string::npos);
  // Autorun PE grid sized by the shape macros.
  EXPECT_NE(src.kernel_cl.find("num_compute_units(PE_ROWS, PE_COLS)"),
            std::string::npos);
}

TEST_F(OpenclGenTest, WavefrontCountMatchesTiling) {
  const DesignPoint d = sys1();
  const KernelSources src =
      generate_opencl_kernel(nest_, d, layer_, DataType::kFloat32);
  const std::string expect = "#define WAVEFRONTS_PER_BLOCK " +
                             std::to_string(d.tiling().cycles_per_block());
  EXPECT_NE(src.params_h.find(expect), std::string::npos);
}

TEST_F(OpenclGenTest, DifferentDesignsDiffer) {
  const DesignPoint a = sys1();
  const DesignPoint b(
      nest_, SystolicMapping{ConvLoops::kO, ConvLoops::kR, ConvLoops::kI},
      ArrayShape{16, 10, 8}, {1, 4, 2, 1, 3, 3});
  const KernelSources sa =
      generate_opencl_kernel(nest_, a, layer_, DataType::kFloat32);
  const KernelSources sb =
      generate_opencl_kernel(nest_, b, layer_, DataType::kFloat32);
  EXPECT_NE(sa.params_h, sb.params_h);
  EXPECT_NE(sb.params_h.find("#define PE_ROWS 16"), std::string::npos);
  EXPECT_NE(sb.params_h.find("COL_LOOP_R 1"), std::string::npos);
}

}  // namespace
}  // namespace sasynth
