#include "codegen/host_gen.h"

#include <gtest/gtest.h>

#include "loopnest/conv_nest.h"
#include "nn/network.h"

namespace sasynth {
namespace {

class HostGenTest : public ::testing::Test {
 protected:
  HostGenTest() : layer_(alexnet_conv5()), nest_(build_conv_nest(layer_)) {}

  DesignPoint sys1() const {
    return DesignPoint(
        nest_, SystolicMapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI},
        ArrayShape{11, 13, 8}, {4, 4, 1, 13, 3, 3});
  }

  ConvLayerDesc layer_;
  LoopNest nest_;
};

TEST_F(HostGenTest, ContainsOpenClBoilerplate) {
  const std::string host =
      generate_host_program(nest_, sys1(), layer_, DataType::kFloat32);
  EXPECT_NE(host.find("clGetPlatformIDs"), std::string::npos);
  EXPECT_NE(host.find("clCreateProgramWithBinary"), std::string::npos);
  EXPECT_NE(host.find("clEnqueueTask"), std::string::npos);
  EXPECT_NE(host.find("#include \"params.h\""), std::string::npos);
}

TEST_F(HostGenTest, LaunchesAllPipelineKernels) {
  const std::string host =
      generate_host_program(nest_, sys1(), layer_, DataType::kFloat32);
  EXPECT_NE(host.find("\"feed_vert\""), std::string::npos);
  EXPECT_NE(host.find("\"feed_horz\""), std::string::npos);
  EXPECT_NE(host.find("\"drain_out\""), std::string::npos);
}

TEST_F(HostGenTest, EmbedsBlockCount) {
  const DesignPoint d = sys1();
  const std::string host =
      generate_host_program(nest_, d, layer_, DataType::kFloat32);
  const std::string expect =
      "// " + std::to_string(d.tiling().num_blocks(nest_)) +
      " blocks per image";
  EXPECT_NE(host.find(expect), std::string::npos);
  // The feeders are bound by orientation.
  EXPECT_NE(host.find("clSetKernelArg(k_vert"), std::string::npos);
  EXPECT_NE(host.find("clSetKernelArg(k_horz"), std::string::npos);
}

TEST_F(HostGenTest, IncludesSoftwareReference) {
  // The host verifies against the original Code 1 nest.
  const std::string host =
      generate_host_program(nest_, sys1(), layer_, DataType::kFloat32);
  EXPECT_NE(host.find("static void reference"), std::string::npos);
  EXPECT_NE(host.find("for (int q = 0; q < CFG_K; q++)"), std::string::npos);
  EXPECT_NE(host.find("PASS"), std::string::npos);
}

TEST_F(HostGenTest, MentionsDesignInHeaderComment) {
  const std::string host =
      generate_host_program(nest_, sys1(), layer_, DataType::kFloat32);
  EXPECT_NE(host.find("(row=o, col=c, vec=i)"), std::string::npos);
}

}  // namespace
}  // namespace sasynth
