#include "codegen/template_engine.h"

#include <gtest/gtest.h>

namespace sasynth {
namespace {

TEST(TemplateEngine, SimpleSubstitution) {
  TemplateEngine engine;
  engine.bind("name", "world").bind("n", 42LL);
  EXPECT_EQ(engine.render("hello {{name}} x{{n}}"), "hello world x42");
  EXPECT_TRUE(engine.error().empty());
}

TEST(TemplateEngine, DoubleBinding) {
  TemplateEngine engine;
  engine.bind("x", "a");
  engine.bind("x", "b");  // last wins
  EXPECT_EQ(engine.render("{{x}}"), "b");
}

TEST(TemplateEngine, DoubleFormatting) {
  TemplateEngine engine;
  engine.bind("f", 3.14159, 2);
  EXPECT_EQ(engine.render("{{f}}"), "3.14");
}

TEST(TemplateEngine, UnboundKeyIsError) {
  TemplateEngine engine;
  EXPECT_EQ(engine.render("{{missing}}"), "");
  EXPECT_NE(engine.error().find("missing"), std::string::npos);
}

TEST(TemplateEngine, UnterminatedIsError) {
  TemplateEngine engine;
  EXPECT_EQ(engine.render("oops {{key"), "");
  EXPECT_NE(engine.error().find("unterminated"), std::string::npos);
}

TEST(TemplateEngine, SectionEnabled) {
  TemplateEngine engine;
  engine.bind_section("on", true).bind_section("off", false);
  EXPECT_EQ(engine.render("a{{#on}}b{{/on}}c"), "abc");
  EXPECT_EQ(engine.render("a{{#off}}b{{/off}}c"), "ac");
}

TEST(TemplateEngine, SectionSuppressesKeys) {
  TemplateEngine engine;
  engine.bind_section("off", false);
  // Keys inside a disabled section need not be bound.
  EXPECT_EQ(engine.render("x{{#off}}{{unbound}}{{/off}}y"), "xy");
  EXPECT_TRUE(engine.error().empty());
}

TEST(TemplateEngine, NestedSections) {
  TemplateEngine engine;
  engine.bind_section("outer", true).bind_section("inner", false);
  EXPECT_EQ(engine.render("a{{#outer}}b{{#inner}}c{{/inner}}d{{/outer}}e"),
            "abde");
  engine.bind_section("outer", false).bind_section("inner", true);
  EXPECT_EQ(engine.render("a{{#outer}}b{{#inner}}c{{/inner}}d{{/outer}}e"),
            "ae");
}

TEST(TemplateEngine, UnboundSectionIsError) {
  TemplateEngine engine;
  EXPECT_EQ(engine.render("{{#nope}}x{{/nope}}"), "");
  EXPECT_NE(engine.error().find("nope"), std::string::npos);
}

TEST(TemplateEngine, ErrorClearsOnSuccess) {
  TemplateEngine engine;
  engine.render("{{missing}}");
  EXPECT_FALSE(engine.error().empty());
  engine.bind("k", "v");
  EXPECT_EQ(engine.render("{{k}}"), "v");
  EXPECT_TRUE(engine.error().empty());
}

}  // namespace
}  // namespace sasynth
