#include "codegen/addressing_gen.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "loopnest/conv_nest.h"
#include "nn/network.h"
#include "sim/schedule.h"

namespace sasynth {
namespace {

class AddressingGenTest : public ::testing::Test {
 protected:
  AddressingGenTest()
      : layer_(make_conv("ag", 8, 6, 5, 3)), nest_(build_conv_nest(layer_)) {}

  DesignPoint design(SystolicMapping mapping, ArrayShape shape,
                     std::vector<std::int64_t> middle) const {
    return DesignPoint(nest_, mapping, shape, std::move(middle));
  }

  ConvLayerDesc layer_;
  LoopNest nest_;
};

TEST_F(AddressingGenTest, HeaderStructure) {
  const DesignPoint d = design(
      SystolicMapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI},
      ArrayShape{3, 2, 4}, {2, 2, 2, 5, 3, 3});
  const AddressingInfo info = generate_addressing(nest_, d, layer_);
  EXPECT_TRUE(info.in_is_vertical);
  EXPECT_EQ(info.num_blocks, d.tiling().num_blocks(nest_));
  // OUT varies with o, c, r: regs = s_o * s_c * s_r = 2 * 2 * 5.
  EXPECT_EQ(info.out_regs_per_pe, 20);
  EXPECT_NE(info.header.find("#define OUT_REGS_PER_PE 20"), std::string::npos);
  EXPECT_NE(info.header.find("sa_iters"), std::string::npos);
  EXPECT_NE(info.header.find("ib_address"), std::string::npos);
  EXPECT_NE(info.header.find("ob_address"), std::string::npos);
  EXPECT_NE(info.header.find("IN shifts down"), std::string::npos);
}

TEST_F(AddressingGenTest, FlippedOrientationDetected) {
  // row = c carries W's reuse? No: with (row=c, col=o), IN is invariant in
  // the col loop (o) and W in the row loop (c) -> W is the vertical operand.
  const DesignPoint d = design(
      SystolicMapping{ConvLoops::kC, ConvLoops::kO, ConvLoops::kI},
      ArrayShape{2, 3, 4}, {2, 2, 2, 5, 3, 3});
  const AddressingInfo info = generate_addressing(nest_, d, layer_);
  EXPECT_FALSE(info.in_is_vertical);
  EXPECT_NE(info.header.find("W shifts down"), std::string::npos);
}

TEST_F(AddressingGenTest, FlippedOrientationCompiledFeederAddresses) {
  // For a W-vertical design, ib_address must produce W addresses: compile
  // the header and compare the vertical feeder against the schedule + W
  // access function.
  const DesignPoint d = design(
      SystolicMapping{ConvLoops::kC, ConvLoops::kO, ConvLoops::kI},
      ArrayShape{2, 3, 4}, {2, 2, 2, 5, 3, 3});
  const AddressingInfo info = generate_addressing(nest_, d, layer_);
  ASSERT_FALSE(info.in_is_vertical);

  const std::string dir = ::testing::TempDir();
  const std::string header_path = dir + "/sasynth_addr_flip.h";
  const std::string driver_path = dir + "/sasynth_addr_flip.c";
  const std::string bin_path = dir + "/sasynth_addr_flip";
  const std::string out_path = dir + "/sasynth_addr_flip.txt";
  {
    std::ofstream h(header_path);
    h << info.header;
  }
  {
    std::ofstream c(driver_path);
    c << "#include <stdio.h>\n#include \"sasynth_addr_flip.h\"\n"
      << "int main(void) {\n"
      << "  for (long m = 0; m < sa_wavefronts_of(0); m++)\n"
      << "    for (long y = 0; y < 3; y++)\n"
      << "      for (long l = 0; l < 4; l++)\n"
      << "        printf(\"%ld\\n\", ib_address(0, m, y, l));\n"
      << "  return 0;\n}\n";
  }
  if (std::system(("cc -std=c99 -O1 -o " + bin_path + " " + driver_path +
                   " 2>/dev/null")
                      .c_str()) != 0) {
    GTEST_SKIP() << "no C compiler available";
  }
  ASSERT_EQ(std::system((bin_path + " > " + out_path).c_str()), 0);
  std::ifstream out(out_path);

  const BlockSchedule schedule(nest_, d);
  const AccessFunction& w_f =
      nest_.accesses()[nest_.find_access(kWeightArray)].access;
  std::vector<std::int64_t> iters;
  for (std::int64_t m = 0; m < schedule.wavefronts(0); ++m) {
    for (std::int64_t y = 0; y < 3; ++y) {
      for (std::int64_t l = 0; l < 4; ++l) {
        schedule.global_iters(0, m, 0, y, l, iters);
        const std::vector<std::int64_t> idx = w_f.eval(iters);
        std::int64_t expected = 0;
        const std::int64_t dims[4] = {layer_.out_maps, layer_.in_maps,
                                      layer_.kernel, layer_.kernel};
        bool valid = true;
        for (int dd = 0; dd < 4; ++dd) {
          if (idx[static_cast<std::size_t>(dd)] < 0 ||
              idx[static_cast<std::size_t>(dd)] >= dims[dd]) {
            valid = false;
          }
          expected = expected * dims[dd] + idx[static_cast<std::size_t>(dd)];
        }
        if (!valid) expected = -1;
        std::int64_t got = 0;
        ASSERT_TRUE(out >> got);
        EXPECT_EQ(got, expected) << "m=" << m << " y=" << y << " l=" << l;
      }
    }
  }
}

// The strongest test: compile the generated header with the system C
// compiler and cross-check its address functions against BlockSchedule and
// the access functions for every (block, wavefront, PE, lane) slot.
TEST_F(AddressingGenTest, CompiledHeaderMatchesSchedule) {
  const DesignPoint d = design(
      SystolicMapping{ConvLoops::kO, ConvLoops::kR, ConvLoops::kI},
      ArrayShape{3, 2, 4}, {1, 2, 3, 2, 3, 1});
  const AddressingInfo info = generate_addressing(nest_, d, layer_);

  const std::string dir = ::testing::TempDir();
  const std::string header_path = dir + "/sasynth_addressing.h";
  const std::string driver_path = dir + "/sasynth_addr_driver.c";
  const std::string bin_path = dir + "/sasynth_addr_driver";
  const std::string out_path = dir + "/sasynth_addr_out.txt";
  {
    std::ofstream h(header_path);
    h << info.header;
  }
  {
    std::ofstream c(driver_path);
    c << "#include <stdio.h>\n#include \"sasynth_addressing.h\"\n"
      << "int main(void) {\n"
      << "  for (long blk = 0; blk < NUM_BLOCKS; blk++) {\n"
      << "    const long M = sa_wavefronts_of(blk);\n"
      << "    printf(\"M %ld %ld\\n\", blk, M);\n"
      << "    for (long m = 0; m < M; m++) {\n"
      << "      for (long y = 0; y < 2; y++)\n"
      << "        for (long l = 0; l < 4; l++)\n"
      << "          printf(\"I %ld\\n\", ib_address(blk, m, y, l));\n"
      << "      for (long x = 0; x < 3; x++)\n"
      << "        for (long l = 0; l < 4; l++)\n"
      << "          printf(\"W %ld\\n\", wb_address(blk, m, x, l));\n"
      << "      printf(\"R %ld\\n\", out_reg_index(blk, m));\n"
      << "    }\n"
      << "    for (long x = 0; x < 3; x++)\n"
      << "      for (long y = 0; y < 2; y++)\n"
      << "        for (long r = 0; r < OUT_REGS_PER_PE; r++)\n"
      << "          printf(\"O %ld\\n\", ob_address(blk, x, y, r));\n"
      << "  }\n  return 0;\n}\n";
  }
  const std::string compile =
      "cc -std=c99 -O1 -o " + bin_path + " " + driver_path + " 2>/dev/null";
  if (std::system(compile.c_str()) != 0) {
    GTEST_SKIP() << "no C compiler available";
  }
  ASSERT_EQ(std::system((bin_path + " > " + out_path).c_str()), 0);
  std::ifstream out(out_path);
  ASSERT_TRUE(out.good());

  // Reference values from the schedule + access functions.
  const BlockSchedule schedule(nest_, d);
  const AccessFunction& in_f =
      nest_.accesses()[nest_.find_access(kInArray)].access;
  const AccessFunction& w_f =
      nest_.accesses()[nest_.find_access(kWeightArray)].access;
  const AccessFunction& out_f =
      nest_.accesses()[nest_.find_access(kOutArray)].access;
  auto linear_or_minus1 = [](const std::vector<std::int64_t>& idx,
                             const std::vector<std::int64_t>& dims) {
    std::int64_t off = 0;
    for (std::size_t i = 0; i < dims.size(); ++i) {
      if (idx[i] < 0 || idx[i] >= dims[i]) return static_cast<std::int64_t>(-1);
      off = off * dims[i] + idx[i];
    }
    return off;
  };
  const std::vector<std::int64_t> in_dims{layer_.in_maps, layer_.in_rows(),
                                          layer_.in_cols()};
  const std::vector<std::int64_t> w_dims{layer_.out_maps, layer_.in_maps,
                                         layer_.kernel, layer_.kernel};
  const std::vector<std::int64_t> out_dims{layer_.out_maps, layer_.out_rows,
                                           layer_.out_cols};

  auto expect_line = [&](const char* tag, std::int64_t value) {
    std::string got_tag;
    std::int64_t got_value = 0;
    ASSERT_TRUE(out >> got_tag >> got_value) << "output exhausted";
    if (got_tag == "M") {
      // "M blk value" — consume the second number.
      std::int64_t m_value = 0;
      ASSERT_TRUE(out >> m_value);
      ASSERT_STREQ(tag, "M");
      EXPECT_EQ(m_value, value);
      return;
    }
    ASSERT_EQ(got_tag, tag);
    EXPECT_EQ(got_value, value);
  };

  std::vector<std::int64_t> iters;
  for (std::int64_t blk = 0; blk < schedule.num_blocks(); ++blk) {
    expect_line("M", schedule.wavefronts(blk));
    for (std::int64_t m = 0; m < schedule.wavefronts(blk); ++m) {
      for (std::int64_t y = 0; y < 2; ++y) {
        for (std::int64_t l = 0; l < 4; ++l) {
          schedule.global_iters(blk, m, 0, y, l, iters);
          expect_line("I", linear_or_minus1(in_f.eval(iters), in_dims));
        }
      }
      for (std::int64_t x = 0; x < 3; ++x) {
        for (std::int64_t l = 0; l < 4; ++l) {
          schedule.global_iters(blk, m, x, 0, l, iters);
          expect_line("W", linear_or_minus1(w_f.eval(iters), w_dims));
        }
      }
      // out_reg_index: fold OUT-varying middle digits (o, c, r) in loop
      // order over the full (unclipped) radices.
      const std::vector<std::int64_t> digits = schedule.decompose_middle(blk, m);
      const TilingSpec& t = d.tiling();
      const std::int64_t reg =
          (digits[ConvLoops::kO] * t.middle(ConvLoops::kC) +
           digits[ConvLoops::kC]) *
              t.middle(ConvLoops::kR) +
          digits[ConvLoops::kR];
      expect_line("R", reg);
    }
    for (std::int64_t x = 0; x < 3; ++x) {
      for (std::int64_t y = 0; y < 2; ++y) {
        for (std::int64_t r = 0;
             r < d.tiling().middle(ConvLoops::kO) *
                     d.tiling().middle(ConvLoops::kC) *
                     d.tiling().middle(ConvLoops::kR);
             ++r) {
          // Expand r into (s_o, s_c, s_r) digits and evaluate OUT at the
          // corresponding wavefront (validity: address bounds only).
          std::int64_t rr = r;
          std::vector<std::int64_t> mid(6, 0);
          mid[ConvLoops::kR] = rr % d.tiling().middle(ConvLoops::kR);
          rr /= d.tiling().middle(ConvLoops::kR);
          mid[ConvLoops::kC] = rr % d.tiling().middle(ConvLoops::kC);
          rr /= d.tiling().middle(ConvLoops::kC);
          mid[ConvLoops::kO] = rr;
          // Rebuild global iters by hand.
          const std::vector<std::int64_t> g = schedule.decompose_block(blk);
          std::vector<std::int64_t> it(6, 0);
          for (std::size_t loop = 0; loop < 6; ++loop) {
            std::int64_t inner = 0;
            if (loop == d.mapping().row_loop) inner = x;
            else if (loop == d.mapping().col_loop) inner = y;
            it[loop] =
                (g[loop] * d.tiling().middle(loop) + mid[loop]) *
                    d.tiling().inner(loop) +
                inner;
          }
          expect_line("O", linear_or_minus1(out_f.eval(it), out_dims));
        }
      }
    }
  }
}

}  // namespace
}  // namespace sasynth
