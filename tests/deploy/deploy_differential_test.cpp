// The differential gate for folded execution (ISSUE 7 acceptance):
//
//  1. Every unique layer of AlexNet, VGG-16 and GoogLeNet, folded onto that
//     network's own unified design, must agree between the folded analytical
//     estimate and the cycle-level simulator within the same tolerances the
//     bespoke path is held to (tests/integration/model_vs_sim_test.cpp).
//  2. Every unique layer executed on its *own* bespoke DSE design must
//     reproduce the bespoke prediction exactly — the fold is an identity.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/dse.h"
#include "core/perf_model.h"
#include "core/unified.h"
#include "deploy/fold.h"
#include "fpga/device.h"
#include "loopnest/conv_nest.h"
#include "nn/network.h"
#include "sim/perf_sim.h"

namespace sasynth {
namespace {

using deploy::FoldPlan;
using deploy::plan_fold;

/// Layers deduplicated by their dimension signature: folding is a function
/// of the nest, so repeated VGG/GoogLeNet shapes add runtime, not coverage.
std::vector<ConvLayerDesc> unique_layers(const Network& net) {
  std::vector<ConvLayerDesc> out;
  std::set<std::string> seen;
  for (const ConvLayerDesc& layer : net.layers) {
    ConvLayerDesc dims = layer;
    dims.name.clear();  // dedup on dimensions only
    if (seen.insert(dims.summary()).second) out.push_back(layer);
  }
  return out;
}

/// True when any middle block clips (granules % s != 0) — the regime where
/// the simulator's clipped-footprint transfers diverge most from the
/// model's full-block assumption.
bool plan_clips(const FoldPlan& plan) {
  for (const deploy::LoopFold& f : plan.loops) {
    if (f.granules % f.middle != 0) return true;
  }
  return false;
}

bool plan_pads(const FoldPlan& plan) {
  for (const deploy::LoopFold& f : plan.loops) {
    if (f.pad != 0) return true;
  }
  return false;
}

/// Model-vs-simulator agreement for every unique layer of `net` folded onto
/// the network's unified design — the flexible-deployment analogue of the
/// bespoke differential test, at the same 250 MHz / zero-DDR-overhead
/// operating point and the same tolerance structure: 2% for clean tilings,
/// a wider band once clipping or padding is in play.
void run_folded_differential(const Network& net) {
  const FpgaDevice device = arria10_gt1150();
  UnifiedOptions options;
  options.dse.min_dsp_util = 0.70;
  options.shape_shortlist = 16;
  const UnifiedDesign unified =
      select_unified_design(net, device, DataType::kFloat32, options);
  ASSERT_TRUE(unified.valid) << net.name;

  PerfSimOptions sim_options;
  sim_options.freq_mhz = 250.0;
  sim_options.ddr_overhead_cycles = 0;

  for (const ConvLayerDesc& layer : unique_layers(net)) {
    SCOPED_TRACE(net.name + "/" + layer.name);
    const LoopNest nest = build_conv_nest(layer);
    const FoldPlan plan = plan_fold(nest, unified.design);
    ASSERT_TRUE(plan.feasible) << plan.error;

    const FoldedPerfEstimate model = estimate_folded_performance(
        nest, plan.design, device, DataType::kFloat32, 250.0);
    const PerfSimResult board =
        simulate_performance(nest, plan.design, device, DataType::kFloat32,
                             sim_options);
    ASSERT_GT(model.perf.throughput_gops, 0.0);
    const double ratio = board.achieved_gops / model.perf.throughput_gops;
    if (!plan_clips(plan) && !plan_pads(plan)) {
      EXPECT_NEAR(ratio, 1.0, 0.02) << plan.summary();
    } else {
      // Clipped/padded folds sit in a regime the bespoke DSE avoids by
      // construction, and the divergence runs both ways: partial blocks
      // still pay full fill/drain and per-block transfer setup in the
      // simulator while the roofline charges steady-state rates (model
      // optimistic, observed up to ~40% on heavily padded GoogLeNet/VGG
      // shapes), but on memory-bound layers the simulator moves clipped
      // block footprints where the model charges full-block DRAM traffic
      // (sim faster, observed up to ~7%).
      EXPECT_GE(ratio, 0.55) << plan.summary();
      EXPECT_LE(ratio, 1.10) << plan.summary();
    }
  }
}

TEST(DeployDifferential, AlexNetFoldedModelMatchesSim) {
  run_folded_differential(make_alexnet());
}

TEST(DeployDifferential, Vgg16FoldedModelMatchesSim) {
  run_folded_differential(make_vgg16());
}

TEST(DeployDifferential, GoogLeNetFoldedModelMatchesSim) {
  run_folded_differential(make_googlenet());
}

TEST(DeployDifferential, EveryUniqueLayerIsIdentityOnItsBespokeDesign) {
  // Exact reproduction, not a tolerance: fold plan == bespoke design, and
  // the folded estimate at the bespoke realized clock equals the bespoke
  // realized numbers bit for bit. The tiny device keeps 70+ per-layer DSE
  // runs affordable; the identity clamp is device-independent arithmetic.
  const FpgaDevice device = tiny_test_device();
  DseOptions options;
  options.min_dsp_util = 0.5;
  options.top_k = 4;
  const DesignSpaceExplorer explorer(device, DataType::kFloat32, options);
  for (const Network& net :
       {make_alexnet(), make_vgg16(), make_googlenet()}) {
    for (const ConvLayerDesc& layer : unique_layers(net)) {
      SCOPED_TRACE(net.name + "/" + layer.name);
      const LoopNest nest = build_conv_nest(layer);
      const DseResult result = explorer.explore(nest);
      ASSERT_FALSE(result.empty());
      const DseCandidate* best = result.best();
      ASSERT_NE(best, nullptr);
      const FoldPlan plan = plan_fold(nest, best->design);
      ASSERT_TRUE(plan.feasible) << plan.error;
      EXPECT_TRUE(plan.identity);
      EXPECT_TRUE(plan.design == best->design);
      const FoldedPerfEstimate folded = estimate_folded_performance(
          nest, plan.design, device, DataType::kFloat32,
          best->realized_freq_mhz);
      EXPECT_EQ(folded.perf.throughput_gops, best->realized.throughput_gops);
      EXPECT_EQ(folded.perf.eff, best->realized.eff);
      EXPECT_EQ(folded.perf.mt_gops, best->realized.mt_gops);
      EXPECT_EQ(folded.perf.memory_bound, best->realized.memory_bound);
    }
  }
}

}  // namespace
}  // namespace sasynth
