// Fleet optimizer: determinism across jobs counts, K semantics, input
// validation, cooperative cancellation, and the select/evaluate consistency
// that backs the serving cache's byte-identity guarantee.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "deploy/fleet.h"
#include "fpga/device.h"
#include "nn/network.h"
#include "util/deadline.h"

namespace sasynth {
namespace {

using deploy::FleetOptions;
using deploy::FleetResult;
using deploy::WorkloadEntry;
using deploy::select_fleet;

/// A second tiny network with a deliberately different layer mix so K=2 has
/// something to specialize for.
Network make_wide_testnet() {
  Network net;
  net.name = "wide";
  net.layers.push_back(make_conv("w1", 4, 8, 6, 1));
  net.layers.push_back(make_conv("w2", 8, 4, 6, 3));
  return net;
}

FleetOptions fast_options(int jobs = 1) {
  FleetOptions options;
  options.unified.dse.min_dsp_util = 0.5;
  options.unified.dse.jobs = jobs;
  options.unified.shape_shortlist = 12;
  return options;
}

std::vector<WorkloadEntry> tiny_workload() {
  return {{make_tiny_testnet(), 2.0}, {make_wide_testnet(), 1.0}};
}

std::vector<std::string> fleet_signatures(const FleetResult& fleet) {
  std::vector<std::string> sigs;
  for (const DesignPoint& d : fleet.designs) sigs.push_back(d.signature());
  return sigs;
}

TEST(Fleet, SelectsAValidFleetForTheTinyWorkload) {
  const FpgaDevice device = tiny_test_device();
  const FleetResult fleet =
      select_fleet(tiny_workload(), device, DataType::kFloat32, fast_options());
  ASSERT_TRUE(fleet.valid) << fleet.error;
  EXPECT_FALSE(fleet.cancelled);
  ASSERT_EQ(fleet.designs.size(), 1u);
  ASSERT_EQ(fleet.realized_freq_mhz.size(), fleet.designs.size());
  ASSERT_EQ(fleet.plans.size(), 2u);
  // Plans come back in workload order with the request weights.
  EXPECT_EQ(fleet.plans[0].network, make_tiny_testnet().name);
  EXPECT_EQ(fleet.plans[1].network, "wide");
  EXPECT_DOUBLE_EQ(fleet.plans[0].weight, 2.0);
  EXPECT_DOUBLE_EQ(fleet.plans[1].weight, 1.0);
  double weighted = 0.0;
  for (const deploy::NetworkPlan& p : fleet.plans) {
    EXPECT_LT(p.design_index, fleet.designs.size());
    EXPECT_GT(p.latency_ms, 0.0);
    EXPECT_GT(p.aggregate_gops, 0.0);
    weighted += p.weight * p.latency_ms;
  }
  EXPECT_DOUBLE_EQ(fleet.weighted_latency_ms, weighted);
  EXPECT_GT(fleet.weighted_gops, 0.0);
  EXPECT_FALSE(fleet.summary().empty());
}

TEST(Fleet, BitIdenticalAtAnyJobsCount) {
  const FpgaDevice device = tiny_test_device();
  const std::vector<WorkloadEntry> workload = tiny_workload();
  FleetOptions options = fast_options(1);
  options.num_designs = 2;
  const FleetResult serial =
      select_fleet(workload, device, DataType::kFloat32, options);
  ASSERT_TRUE(serial.valid) << serial.error;
  for (const int jobs : {2, 4}) {
    FleetOptions parallel_options = fast_options(jobs);
    parallel_options.num_designs = 2;
    const FleetResult parallel =
        select_fleet(workload, device, DataType::kFloat32, parallel_options);
    ASSERT_TRUE(parallel.valid) << parallel.error;
    EXPECT_EQ(fleet_signatures(serial), fleet_signatures(parallel))
        << "jobs=" << jobs;
    EXPECT_EQ(serial.weighted_latency_ms, parallel.weighted_latency_ms)
        << "jobs=" << jobs;
    EXPECT_EQ(serial.weighted_gops, parallel.weighted_gops) << "jobs=" << jobs;
    ASSERT_EQ(serial.plans.size(), parallel.plans.size());
    for (std::size_t n = 0; n < serial.plans.size(); ++n) {
      EXPECT_EQ(serial.plans[n].design_index, parallel.plans[n].design_index);
      EXPECT_EQ(serial.plans[n].latency_ms, parallel.plans[n].latency_ms);
    }
  }
}

TEST(Fleet, LargerFleetNeverHurtsTheObjective) {
  const FpgaDevice device = tiny_test_device();
  const std::vector<WorkloadEntry> workload = tiny_workload();
  FleetOptions k1 = fast_options();
  k1.num_designs = 1;
  FleetOptions k2 = fast_options();
  k2.num_designs = 2;
  const FleetResult one =
      select_fleet(workload, device, DataType::kFloat32, k1);
  const FleetResult two =
      select_fleet(workload, device, DataType::kFloat32, k2);
  ASSERT_TRUE(one.valid) << one.error;
  ASSERT_TRUE(two.valid) << two.error;
  EXPECT_EQ(one.designs.size(), 1u);
  // The pool may not hold 2 distinct useful designs, but greedy never keeps
  // a second design that worsens the objective.
  EXPECT_LE(two.weighted_latency_ms, one.weighted_latency_ms * (1.0 + 1e-12));
  // K=1 on a one-network workload is exactly unified selection's shape:
  // the first greedy pick minimizes the single weighted latency.
  EXPECT_GE(two.designs.size(), 1u);
  EXPECT_LE(two.designs.size(), 2u);
}

TEST(Fleet, RejectsBadInputs) {
  const FpgaDevice device = tiny_test_device();
  const FleetOptions options = fast_options();

  const FleetResult empty =
      select_fleet({}, device, DataType::kFloat32, options);
  EXPECT_FALSE(empty.valid);
  EXPECT_FALSE(empty.error.empty());

  FleetResult bad_weight = select_fleet({{make_tiny_testnet(), 0.0}}, device,
                                        DataType::kFloat32, options);
  EXPECT_FALSE(bad_weight.valid);
  EXPECT_NE(bad_weight.error.find("weight"), std::string::npos)
      << bad_weight.error;

  FleetOptions bad_k = fast_options();
  bad_k.num_designs = 0;
  const FleetResult zero_k = select_fleet(tiny_workload(), device,
                                          DataType::kFloat32, bad_k);
  EXPECT_FALSE(zero_k.valid);

  Network empty_net;
  empty_net.name = "empty";
  const FleetResult no_layers = select_fleet(
      {{empty_net, 1.0}}, device, DataType::kFloat32, options);
  EXPECT_FALSE(no_layers.valid);
}

TEST(Fleet, PreFiredCancelTokenStopsSelection) {
  const FpgaDevice device = tiny_test_device();
  FleetOptions options = fast_options();
  CancelToken token = CancelToken::cancellable();
  token.request_cancel();
  options.unified.dse.cancel = token;
  const FleetResult fleet =
      select_fleet(tiny_workload(), device, DataType::kFloat32, options);
  EXPECT_TRUE(fleet.cancelled);
  EXPECT_FALSE(fleet.valid);
}

TEST(Fleet, EvaluateReproducesSelectExactly) {
  // The serving cache stores only the K designs; a hit re-derives everything
  // else through evaluate_fleet. That is byte-identical to the fresh path
  // only if evaluate_fleet(select.designs) reproduces select's own numbers.
  const FpgaDevice device = tiny_test_device();
  const std::vector<WorkloadEntry> workload = tiny_workload();
  FleetOptions options = fast_options();
  options.num_designs = 2;
  const FleetResult fleet =
      select_fleet(workload, device, DataType::kFloat32, options);
  ASSERT_TRUE(fleet.valid) << fleet.error;
  const FleetResult echoed = deploy::evaluate_fleet(
      workload, fleet.designs, device, DataType::kFloat32);
  ASSERT_TRUE(echoed.valid) << echoed.error;
  EXPECT_EQ(fleet_signatures(fleet), fleet_signatures(echoed));
  EXPECT_EQ(fleet.realized_freq_mhz, echoed.realized_freq_mhz);
  EXPECT_EQ(fleet.weighted_latency_ms, echoed.weighted_latency_ms);
  EXPECT_EQ(fleet.weighted_gops, echoed.weighted_gops);
  ASSERT_EQ(fleet.plans.size(), echoed.plans.size());
  for (std::size_t n = 0; n < fleet.plans.size(); ++n) {
    EXPECT_EQ(fleet.plans[n].design_index, echoed.plans[n].design_index);
    EXPECT_EQ(fleet.plans[n].latency_ms, echoed.plans[n].latency_ms);
    EXPECT_EQ(fleet.plans[n].aggregate_gops, echoed.plans[n].aggregate_gops);
  }
  EXPECT_EQ(fleet.summary(), echoed.summary());
}

TEST(Fleet, EvaluateRejectsAnUncoverableNetwork) {
  const FpgaDevice device = tiny_test_device();
  const FleetResult direct = deploy::evaluate_fleet(
      tiny_workload(), {}, device, DataType::kFloat32);
  EXPECT_FALSE(direct.valid);
  EXPECT_FALSE(direct.error.empty());
}

}  // namespace
}  // namespace sasynth
