// Edge cases of the deterministic fold/pad planner: non-dividing trips,
// 1x1 convs, FC-shaped layers, layers strictly smaller than the array in
// every dimension, exact fits, and the bespoke-identity guarantee.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/dse.h"
#include "core/mapping.h"
#include "core/perf_model.h"
#include "deploy/fold.h"
#include "loopnest/conv_nest.h"
#include "loopnest/reuse.h"
#include "nn/layer.h"

namespace sasynth {
namespace {

using deploy::FoldPlan;
using deploy::LoopFold;
using deploy::plan_fold;

DesignPoint make_design(const LoopNest& nest, ArrayShape shape,
                        std::vector<std::int64_t> middle) {
  return DesignPoint(
      nest, SystolicMapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI},
      shape, std::move(middle));
}

/// Invariants every feasible plan must satisfy, regardless of shape.
void check_plan_invariants(const LoopNest& nest, const FoldPlan& plan) {
  ASSERT_TRUE(plan.feasible) << plan.error;
  ASSERT_EQ(plan.loops.size(), nest.num_loops());
  std::int64_t executed = 1;
  for (std::size_t l = 0; l < plan.loops.size(); ++l) {
    const LoopFold& f = plan.loops[l];
    EXPECT_EQ(f.trip, nest.loop(l).trip);
    EXPECT_GE(f.inner, 1);
    EXPECT_GE(f.middle, 1);
    // DIVCEIL: granules cover the trip with less than one quantum of slack.
    EXPECT_EQ(f.granules, (f.trip + f.inner - 1) / f.inner);
    EXPECT_EQ(f.pad, f.granules * f.inner - f.trip);
    EXPECT_GE(f.pad, 0);
    EXPECT_LT(f.pad, f.inner);
    // Folds cover the granules: folds blocks of (middle) granules each.
    EXPECT_GE(f.folds * f.middle, f.granules);
    executed *= f.granules * f.inner;
  }
  EXPECT_EQ(plan.executed_iterations, executed);
  EXPECT_EQ(plan.effective_iterations, nest.total_iterations());
  EXPECT_GE(plan.executed_iterations, plan.effective_iterations);
  EXPECT_DOUBLE_EQ(
      plan.waste_ratio,
      static_cast<double>(plan.executed_iterations -
                          plan.effective_iterations) /
          static_cast<double>(plan.executed_iterations));
}

TEST(FoldPlan, ExactFitHasZeroWaste) {
  // Every mapped trip divides its hardware extent and the middle bounds
  // divide the granule counts: the plan must assert exactly zero waste.
  const ConvLayerDesc layer = make_conv("fit", 8, 16, 8, 3);
  const LoopNest nest = build_conv_nest(layer);
  // o=16 on 4 rows (4 granules), c=8 on 4 cols (2 granules), i=8 on vec 8
  // (1 granule); middle bounds in [o,i,c,r,p,q] order.
  const DesignPoint design =
      make_design(nest, ArrayShape{4, 4, 8}, {4, 1, 2, 8, 3, 3});
  const FoldPlan plan = plan_fold(nest, design);
  check_plan_invariants(nest, plan);
  for (const LoopFold& f : plan.loops) EXPECT_EQ(f.pad, 0) << f.loop;
  EXPECT_EQ(plan.executed_iterations, plan.effective_iterations);
  EXPECT_DOUBLE_EQ(plan.waste_ratio, 0.0);
  EXPECT_TRUE(plan.identity);  // bounds already minimal: retarget is a no-op
}

TEST(FoldPlan, NonDividingTripsArePaddedUp) {
  // o=9 on 4 rows, i=7 on vec 2, c=5 on 3 cols: none divide.
  const ConvLayerDesc layer = make_conv("nd", 7, 9, 5, 3);
  const LoopNest nest = build_conv_nest(layer);
  const DesignPoint design =
      make_design(nest, ArrayShape{4, 3, 2}, {1, 1, 1, 1, 1, 1});
  const FoldPlan plan = plan_fold(nest, design);
  check_plan_invariants(nest, plan);
  EXPECT_EQ(plan.loops[ConvLoops::kO].granules, 3);
  EXPECT_EQ(plan.loops[ConvLoops::kO].pad, 3);  // 3*4 - 9
  EXPECT_EQ(plan.loops[ConvLoops::kI].granules, 4);
  EXPECT_EQ(plan.loops[ConvLoops::kI].pad, 1);  // 4*2 - 7
  EXPECT_EQ(plan.loops[ConvLoops::kC].granules, 2);
  EXPECT_EQ(plan.loops[ConvLoops::kC].pad, 1);  // 2*3 - 5
  EXPECT_GT(plan.waste_ratio, 0.0);
  EXPECT_LT(plan.waste_ratio, 1.0);
}

TEST(FoldPlan, OneByOneConvFolds) {
  // Pointwise conv: kernel loops are trip 1; the fold must treat them as
  // single granules with no padding.
  const ConvLayerDesc layer = make_conv("pw", 64, 96, 7, 1);
  const LoopNest nest = build_conv_nest(layer);
  const DesignPoint design =
      make_design(nest, ArrayShape{8, 8, 8}, {4, 2, 1, 7, 1, 1});
  const FoldPlan plan = plan_fold(nest, design);
  check_plan_invariants(nest, plan);
  EXPECT_EQ(plan.loops[ConvLoops::kP].granules, 1);
  EXPECT_EQ(plan.loops[ConvLoops::kQ].pad, 0);
  EXPECT_EQ(plan.loops[ConvLoops::kO].pad, 0);    // 96 % 8 == 0
  EXPECT_EQ(plan.loops[ConvLoops::kC].pad, 1);    // ceil(7/8)*8 - 7
}

TEST(FoldPlan, FcShapedLayerWastesTheSpatialColumns) {
  // A fully connected layer expressed as a 1x1 conv over a 1x1 feature map:
  // the columns dimension has one granule and pads 15 of 16 lanes.
  const ConvLayerDesc layer = make_conv("fc", 256, 128, 1, 1);
  const LoopNest nest = build_conv_nest(layer);
  const DesignPoint design =
      make_design(nest, ArrayShape{16, 16, 8}, {8, 4, 1, 1, 1, 1});
  const FoldPlan plan = plan_fold(nest, design);
  check_plan_invariants(nest, plan);
  const LoopFold& c = plan.loops[ConvLoops::kC];
  EXPECT_EQ(c.granules, 1);
  EXPECT_EQ(c.pad, 15);
  EXPECT_NEAR(plan.waste_ratio, 15.0 / 16.0, 1e-12);
}

TEST(FoldPlan, LayerSmallerThanArrayClampsTheSchedule) {
  // A design synthesized for a big layer, folded onto a layer strictly
  // smaller than the array in every dimension: one granule per mapped loop,
  // and the oversized middle bounds are clamped so the schedule does not
  // spin through empty blocks.
  const ConvLayerDesc big = make_conv("big", 32, 64, 16, 3);
  const LoopNest big_nest = build_conv_nest(big);
  const DesignPoint fixed =
      make_design(big_nest, ArrayShape{8, 8, 8}, {8, 4, 2, 16, 3, 3});

  const ConvLayerDesc tiny = make_conv("tiny", 2, 3, 2, 1);
  const LoopNest nest = build_conv_nest(tiny);
  const FoldPlan plan = plan_fold(nest, fixed);
  check_plan_invariants(nest, plan);
  EXPECT_FALSE(plan.identity);
  for (const std::size_t l :
       {ConvLoops::kO, ConvLoops::kC, ConvLoops::kI}) {
    EXPECT_EQ(plan.loops[l].granules, 1);
    EXPECT_EQ(plan.loops[l].folds, 1);
  }
  // Clamped: s'_l = min(s_l, round_up_pow2(ceil(N_l / t_l))).
  EXPECT_EQ(plan.design.tiling().middle(ConvLoops::kO), 1);  // min(8, 1)
  EXPECT_EQ(plan.design.tiling().middle(ConvLoops::kI), 1);  // min(4, 1)
  EXPECT_EQ(plan.design.tiling().middle(ConvLoops::kR), 2);  // min(16, 2)
  EXPECT_EQ(plan.design.tiling().middle(ConvLoops::kP), 1);  // min(3, 1)
  // Same silicon, different schedule.
  EXPECT_EQ(plan.design.shape(), fixed.shape());
  EXPECT_EQ(plan.design.mapping(), fixed.mapping());
  EXPECT_GT(plan.waste_ratio, 0.9);  // 24 useful of 1024 executed
}

TEST(FoldPlan, BespokeDesignIsIdentity) {
  // The acceptance anchor: a layer folded onto its own DSE-chosen design is
  // a no-op plan, and the folded estimate reproduces the bespoke realized
  // prediction bit for bit.
  const ConvLayerDesc layer = make_conv("own", 32, 64, 14, 3);
  const LoopNest nest = build_conv_nest(layer);
  const FpgaDevice device = tiny_test_device();
  DseOptions options;
  options.min_dsp_util = 0.5;
  const DesignSpaceExplorer explorer(device, DataType::kFloat32, options);
  const DseResult result = explorer.explore(nest);
  ASSERT_FALSE(result.empty());
  for (const DseCandidate& c : result.top) {
    const FoldPlan plan = plan_fold(nest, c.design);
    ASSERT_TRUE(plan.feasible) << plan.error;
    EXPECT_TRUE(plan.identity) << c.design.to_string(nest);
    EXPECT_TRUE(plan.design == c.design);
    const FoldedPerfEstimate folded = estimate_folded_performance(
        nest, plan.design, device, DataType::kFloat32, c.realized_freq_mhz);
    EXPECT_EQ(folded.perf.throughput_gops, c.realized.throughput_gops);
    EXPECT_EQ(folded.perf.eff, c.realized.eff);
    EXPECT_EQ(folded.perf.memory_bound, c.realized.memory_bound);
  }
}

TEST(FoldPlan, InfeasibleMappingIsRejectedWithAReason) {
  // The planner re-checks the Eq. 2/3/11 mapping conditions on the target
  // layer's own reuse analysis (a fixed design may come from a structurally
  // different frontend nest). A mapping without the o-loop can never drive
  // the row/col shift chains of a conv nest — the oracle and the planner
  // must agree it is unusable.
  const ConvLayerDesc layer = make_conv("home", 16, 16, 8, 3);
  const LoopNest nest = build_conv_nest(layer);
  const SystolicMapping bad{ConvLoops::kC, ConvLoops::kR, ConvLoops::kI};
  std::string why;
  ASSERT_FALSE(is_feasible_mapping(nest, analyze_reuse(nest), bad, &why));
  const DesignPoint fixed(nest, bad, ArrayShape{4, 4, 4},
                          {1, 1, 1, 1, 1, 1});
  const FoldPlan plan = plan_fold(nest, fixed);
  EXPECT_FALSE(plan.feasible);
  EXPECT_NE(plan.error.find("mapping infeasible"), std::string::npos)
      << plan.error;
}

}  // namespace
}  // namespace sasynth
