#include "core/roofline.h"

#include <gtest/gtest.h>

#include "core/perf_model.h"
#include "loopnest/conv_nest.h"
#include "nn/network.h"

namespace sasynth {
namespace {

class RooflineTest : public ::testing::Test {
 protected:
  RooflineTest()
      : nest_(build_conv_nest(alexnet_conv5())), device_(arria10_gt1150()) {}

  DesignPoint design(std::vector<std::int64_t> middle) const {
    return DesignPoint(
        nest_, SystolicMapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI},
        ArrayShape{11, 13, 8}, std::move(middle));
  }

  LoopNest nest_;
  FpgaDevice device_;
};

TEST_F(RooflineTest, RoofsMatchPerfModel) {
  // The roofline view is Eqs. 7-10 re-expressed: compute roof == PT and
  // memory roof == MT_t (aggregate-bandwidth term).
  for (const std::vector<std::int64_t>& middle :
       {std::vector<std::int64_t>{4, 4, 1, 13, 3, 3},
        std::vector<std::int64_t>{1, 1, 1, 2, 1, 1}}) {
    const DesignPoint d = design(middle);
    const RooflinePoint point =
        roofline_point(nest_, d, device_, DataType::kFloat32, 280.0);
    const PerfEstimate perf =
        estimate_performance(nest_, d, device_, DataType::kFloat32, 280.0);
    EXPECT_NEAR(point.compute_roof_gops, perf.pt_gops, 1e-9);
    EXPECT_NEAR(point.memory_roof_gops, perf.mt_total_gops, 1e-9);
  }
}

TEST_F(RooflineTest, GoodTilingIsComputeBound) {
  const RooflinePoint point = roofline_point(
      nest_, design({4, 4, 1, 13, 3, 3}), device_, DataType::kFloat32, 280.0);
  EXPECT_FALSE(point.memory_bound);
  EXPECT_GT(point.operational_intensity, point.ridge_intensity);
  EXPECT_DOUBLE_EQ(point.attainable_gops, point.compute_roof_gops);
}

TEST_F(RooflineTest, TinyTilingIsMemoryBound) {
  const RooflinePoint point = roofline_point(
      nest_, design({1, 1, 1, 2, 1, 1}), device_, DataType::kFloat32, 280.0);
  EXPECT_TRUE(point.memory_bound);
  EXPECT_LT(point.operational_intensity, point.ridge_intensity);
  EXPECT_DOUBLE_EQ(point.attainable_gops, point.memory_roof_gops);
}

TEST_F(RooflineTest, IntensityGrowsWithTiles) {
  const RooflinePoint small = roofline_point(
      nest_, design({1, 1, 1, 2, 1, 1}), device_, DataType::kFloat32, 280.0);
  const RooflinePoint big = roofline_point(
      nest_, design({4, 4, 1, 13, 3, 3}), device_, DataType::kFloat32, 280.0);
  EXPECT_GT(big.operational_intensity, small.operational_intensity);
}

TEST_F(RooflineTest, BandwidthSweepMonotoneWithCrossover) {
  const DesignPoint d = design({4, 4, 1, 13, 3, 3});
  const std::vector<double> bws{1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0};
  const std::vector<BandwidthSweepSample> sweep =
      sweep_bandwidth(nest_, d, device_, DataType::kFloat32, 280.0, bws);
  ASSERT_EQ(sweep.size(), bws.size());
  // Monotone non-decreasing in bandwidth, memory-bound at the low end,
  // compute-bound (saturated) at the high end.
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GE(sweep[i].throughput_gops, sweep[i - 1].throughput_gops - 1e-9);
  }
  EXPECT_TRUE(sweep.front().memory_bound);
  EXPECT_FALSE(sweep.back().memory_bound);
  EXPECT_NEAR(sweep.back().throughput_gops, 621.2, 1.0);
}

TEST_F(RooflineTest, SummaryMentionsBound) {
  const RooflinePoint point = roofline_point(
      nest_, design({1, 1, 1, 2, 1, 1}), device_, DataType::kFloat32, 280.0);
  EXPECT_NE(point.summary().find("memory-bound"), std::string::npos);
}

}  // namespace
}  // namespace sasynth
