#include "core/perf_model.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "loopnest/conv_nest.h"
#include "nn/network.h"

namespace sasynth {
namespace {

class PerfModelTest : public ::testing::Test {
 protected:
  PerfModelTest()
      : layer_(alexnet_conv5()),
        nest_(build_conv_nest(layer_)),
        device_(arria10_gt1150()) {}

  DesignPoint design(ArrayShape shape,
                     std::vector<std::int64_t> middle = {4, 4, 1, 13, 3, 3})
      const {
    return DesignPoint(
        nest_, SystolicMapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI},
        shape, std::move(middle));
  }

  ConvLayerDesc layer_;
  LoopNest nest_;
  FpgaDevice device_;
};

TEST_F(PerfModelTest, Table1Sys1PeakThroughput) {
  // Paper Table 1 / §2.3: sys1 = (11,13,8) @ 280 MHz with the good tiling
  // reaches 96.97% x 2 x 11 x 13 x 8 x 280MHz ~= 621 GFlops.
  const PerfEstimate perf = estimate_performance(
      nest_, design(ArrayShape{11, 13, 8}), device_, DataType::kFloat32, 280.0);
  EXPECT_NEAR(perf.eff, 0.9697, 1e-4);
  EXPECT_NEAR(perf.pt_gops, 621.0, 1.0);
  // The paper's chosen tiling keeps the design compute-bound.
  EXPECT_FALSE(perf.memory_bound);
  EXPECT_NEAR(perf.throughput_gops, 621.0, 1.0);
}

TEST_F(PerfModelTest, Table1Sys2LowerEfficiency) {
  // sys2 = (16,10,8): eff = 13/20 = 65% (consistent with the row's 466
  // GFlops), peak = 0.65 * 2 * 1280 * 0.28 = 465.9.
  const PerfEstimate perf =
      estimate_performance(nest_, design(ArrayShape{16, 10, 8}, {1, 4, 2, 13, 3, 3}),
                           device_, DataType::kFloat32, 280.0);
  EXPECT_NEAR(perf.eff, 0.65, 1e-9);
  EXPECT_NEAR(perf.pt_gops, 465.9, 1.0);
}

TEST_F(PerfModelTest, BadTilingIsMemoryBound) {
  // §2.3: Tile(2,2,2,2,2,2) needs ~67 GB/s to keep sys1 busy; at 19.2 GB/s
  // the design is memory-bound far below peak.
  // (Middle bounds here give block trips (22,16,26,2,2,2)... we mirror the
  // paper's point with uniformly tiny tiles: s = 1 except the mapped loops.)
  const PerfEstimate perf = estimate_performance(
      nest_, design(ArrayShape{11, 13, 8}, {1, 1, 1, 2, 1, 1}), device_,
      DataType::kFloat32, 280.0);
  EXPECT_TRUE(perf.memory_bound);
  EXPECT_LT(perf.throughput_gops, 0.6 * perf.pt_gops);
}

TEST_F(PerfModelTest, ThroughputIsMinOfPtMt) {
  const PerfEstimate perf = estimate_performance(
      nest_, design(ArrayShape{11, 13, 8}), device_, DataType::kFloat32, 280.0);
  EXPECT_DOUBLE_EQ(perf.throughput_gops, std::min(perf.pt_gops, perf.mt_gops));
  EXPECT_EQ(perf.mt_port_gops.size(), 3U);
  for (const double port : perf.mt_port_gops) {
    EXPECT_GE(port, perf.mt_gops - 1e-9);
  }
  EXPECT_GE(perf.mt_total_gops, perf.mt_gops - 1e-9);
}

TEST_F(PerfModelTest, PortBoundWhenOnePortDominates) {
  // Eq. 9's per-port refinement: when one array's stream saturates its port
  // while aggregate bandwidth still has headroom, MT is the port bound
  // (strictly below MT_t).
  FpgaDevice device = device_;
  device.bw_total_gbs = 100.0;  // aggregate never binds
  device.bw_port_gbs = 1.0;     // every port tiny
  const PerfEstimate perf = estimate_performance(
      nest_, design(ArrayShape{11, 13, 8}), device, DataType::kFloat32, 280.0);
  EXPECT_LT(perf.mt_gops, perf.mt_total_gops * 0.5);
  double min_port = 1e300;
  for (const double port : perf.mt_port_gops) {
    min_port = std::min(min_port, port);
  }
  EXPECT_DOUBLE_EQ(perf.mt_gops, min_port);
}

TEST_F(PerfModelTest, PtScalesWithFrequency) {
  const DesignPoint d = design(ArrayShape{11, 13, 8});
  const PerfEstimate p280 =
      estimate_performance(nest_, d, device_, DataType::kFloat32, 280.0);
  const PerfEstimate p140 =
      estimate_performance(nest_, d, device_, DataType::kFloat32, 140.0);
  EXPECT_NEAR(p280.pt_gops, 2.0 * p140.pt_gops, 1e-9);
  // MT does not scale with clock (fixed GB/s).
  EXPECT_NEAR(p280.mt_gops, p140.mt_gops, 1e-9);
}

TEST_F(PerfModelTest, MtImprovesWithBiggerTiles) {
  const PerfEstimate small = estimate_performance(
      nest_, design(ArrayShape{11, 13, 8}, {1, 1, 1, 2, 1, 1}), device_,
      DataType::kFloat32, 280.0);
  const PerfEstimate big = estimate_performance(
      nest_, design(ArrayShape{11, 13, 8}, {4, 4, 1, 13, 3, 3}), device_,
      DataType::kFloat32, 280.0);
  EXPECT_GT(big.mt_gops, small.mt_gops);
}

TEST_F(PerfModelTest, FixedPointEasesBandwidth) {
  const DesignPoint d = design(ArrayShape{11, 13, 8}, {1, 1, 1, 2, 1, 1});
  const PerfEstimate fp =
      estimate_performance(nest_, d, device_, DataType::kFloat32, 280.0);
  const PerfEstimate fx =
      estimate_performance(nest_, d, device_, DataType::kFixed8_16, 280.0);
  EXPECT_GT(fx.mt_gops, fp.mt_gops);
}

TEST_F(PerfModelTest, LayerLatency) {
  const PerfEstimate perf = estimate_performance(
      nest_, design(ArrayShape{11, 13, 8}), device_, DataType::kFloat32, 280.0);
  const double ms = layer_latency_ms(layer_, perf);
  const double expected =
      static_cast<double>(layer_.total_ops()) /
      (perf.throughput_gops * 1e9) * 1e3;
  EXPECT_NEAR(ms, expected, 1e-12);
  // Grouped layer doubles the work.
  ConvLayerDesc grouped = layer_;
  grouped.groups = 2;
  EXPECT_NEAR(layer_latency_ms(grouped, perf), 2.0 * ms, 1e-12);
}

TEST_F(PerfModelTest, ModeledCyclesAccounting) {
  const DesignPoint d = design(ArrayShape{11, 13, 8}, {4, 4, 1, 13, 3, 3});
  // Wavefronts: prod(ceil(N/t)) = ceil(128/11)*24*1*13*3*3 per blocks...
  const std::int64_t wavefronts = d.tiling().total_wavefronts(nest_);
  EXPECT_EQ(modeled_compute_cycles(nest_, d), wavefronts + 11 + 13 - 2);
}

TEST_F(PerfModelTest, DspEfficiencyHelper) {
  EXPECT_NEAR(dsp_efficiency(nest_, design(ArrayShape{11, 13, 8})),
              128.0 / 132.0, 1e-12);
}

TEST_F(PerfModelTest, SummaryMentionsBottleneck) {
  const PerfEstimate perf = estimate_performance(
      nest_, design(ArrayShape{11, 13, 8}, {1, 1, 1, 2, 1, 1}), device_,
      DataType::kFloat32, 280.0);
  EXPECT_NE(perf.summary().find("memory-bound"), std::string::npos);
}

}  // namespace
}  // namespace sasynth
