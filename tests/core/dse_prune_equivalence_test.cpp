// Differential proof-by-test for the branch-and-bound phase-1 sweep: the
// pruned search must return the exhaustive sweep's top-K bit for bit —
// designs, order, and every estimate field — at any worker count. The
// default run covers a calibrated layer subset that keeps tier-1 fast; set
// SASYNTH_PRUNE_EQUIV_FULL=1 to sweep every deduplicated layer of every
// bundled network (the CI prune-equivalence job does), and
// SASYNTH_PRUNE_REPORT=<path> to dump the per-rule prune counters as JSON.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "core/dse.h"
#include "core/lean_batch.h"
#include "core/perf_model.h"
#include "loopnest/conv_nest.h"
#include "nn/network.h"

namespace sasynth {
namespace {

std::vector<DseCandidate> run_phase1(const LoopNest& nest, bool prune,
                                     int jobs, DseStats* stats) {
  DseOptions options;
  options.jobs = jobs;
  options.bound_prune = prune;
  const DesignSpaceExplorer explorer(arria10_gt1150(), DataType::kFloat32,
                                     options);
  return explorer.enumerate_phase1(nest, stats);
}

/// Top-K comparison at full bit precision. The exhaustive list bounds K:
/// pruning may drop or understate everything below the floor, never the
/// head of the list.
void expect_topk_identical(const std::vector<DseCandidate>& exhaustive,
                           const std::vector<DseCandidate>& pruned,
                           std::size_t top_k, const std::string& label) {
  const std::size_t k =
      std::min(top_k, std::min(exhaustive.size(), pruned.size()));
  ASSERT_GE(pruned.size(), std::min(top_k, exhaustive.size())) << label;
  for (std::size_t i = 0; i < k; ++i) {
    const DseCandidate& want = exhaustive[i];
    const DseCandidate& got = pruned[i];
    EXPECT_EQ(want.design, got.design) << label << " rank " << i;
    EXPECT_EQ(want.estimate.throughput_gops, got.estimate.throughput_gops)
        << label << " rank " << i;
    EXPECT_EQ(want.estimate.pt_gops, got.estimate.pt_gops)
        << label << " rank " << i;
    EXPECT_EQ(want.estimate.mt_gops, got.estimate.mt_gops)
        << label << " rank " << i;
    EXPECT_EQ(want.estimate.eff, got.estimate.eff) << label << " rank " << i;
    EXPECT_EQ(want.resources.bram_blocks, got.resources.bram_blocks)
        << label << " rank " << i;
  }
}

/// Deduplicated layer list (repeated inception branches collapse).
std::vector<ConvLayerDesc> unique_layers(const Network& net) {
  std::vector<ConvLayerDesc> out;
  std::set<std::string> seen;
  for (const ConvLayerDesc& layer : net.layers) {
    const std::string key = std::to_string(layer.in_maps) + "," +
                            std::to_string(layer.out_maps) + "," +
                            std::to_string(layer.out_rows) + "," +
                            std::to_string(layer.out_cols) + "," +
                            std::to_string(layer.kernel) + "," +
                            std::to_string(layer.stride) + "," +
                            std::to_string(layer.groups);
    if (seen.insert(key).second) out.push_back(layer);
  }
  return out;
}

TEST(DsePruneEquivalenceTest, TopKIdenticalOnAlexNetTail) {
  // conv4 and conv5 at the paper's c_s = 0.80, serial and parallel. These
  // are the layers where the floor prunes >97% of the work items, so any
  // admissibility bug (a floor above the true K-th best) shows up here
  // first.
  const Network net = make_alexnet();
  for (const char* name : {"conv4", "conv5"}) {
    const ConvLayerDesc* layer = net.find_layer(name);
    ASSERT_NE(layer, nullptr) << name;
    const LoopNest nest = build_conv_nest(*layer);
    DseStats ex_stats;
    const std::vector<DseCandidate> exhaustive =
        run_phase1(nest, /*prune=*/false, /*jobs=*/1, &ex_stats);
    ASSERT_FALSE(exhaustive.empty()) << name;
    for (const int jobs : {1, 4}) {
      DseStats pr_stats;
      const std::vector<DseCandidate> pruned =
          run_phase1(nest, /*prune=*/true, jobs, &pr_stats);
      expect_topk_identical(exhaustive, pruned, 14,
                            std::string(name) + " jobs=" +
                                std::to_string(jobs));
      EXPECT_GT(pr_stats.items_pruned_bound, 0) << name;
      // The prune must pay for itself in model evaluations, not just time.
      EXPECT_LT(pr_stats.reuse_evaluated + pr_stats.reuse_bound_evals,
                ex_stats.reuse_evaluated)
          << name;
    }
  }
}

TEST(DsePruneEquivalenceTest, SeedWalkFormsFloorPastInfeasibleHead) {
  // AlexNet conv2: the highest-bound work items are all rejected (BRAM or
  // soft logic), so a seed pass that stopped after top_k ranks would gather
  // no contributions and never form a floor. The walk must continue down
  // the bound order until K items produced accepted candidates.
  const Network net = make_alexnet();
  const ConvLayerDesc* conv2 = net.find_layer("conv2");
  ASSERT_NE(conv2, nullptr);
  const LoopNest nest = build_conv_nest(*conv2);
  DseStats stats;
  const std::vector<DseCandidate> pruned =
      run_phase1(nest, /*prune=*/true, /*jobs=*/1, &stats);
  ASSERT_FALSE(pruned.empty());
  EXPECT_GT(stats.bound_seed_evaluated, 14);
  EXPECT_GT(stats.items_pruned_bound, 0);
}

TEST(DsePruneEquivalenceTest, BatchBoundMatchesScalarModelBitExact) {
  // The three PT expressions — the SoA kernel, the scalar bound helper, and
  // estimate_performance's Eq. 8 — must agree to the last bit; the
  // branch-and-bound comparison against the floor is exact only because
  // they do.
  const LoopNest nest = build_conv_nest(alexnet_conv5());
  DseOptions options;
  options.min_dsp_util = 0.90;
  options.jobs = 1;
  const DesignSpaceExplorer explorer(arria10_gt1150(), DataType::kFloat32,
                                     options);
  const std::vector<DseCandidate> candidates =
      explorer.enumerate_phase1(nest, nullptr);
  ASSERT_FALSE(candidates.empty());

  ShapeBatch batch;
  batch.resize(candidates.size());
  std::vector<std::int64_t> inner(nest.num_loops(), 1);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const DesignPoint& design = candidates[i].design;
    std::fill(inner.begin(), inner.end(), 1);
    inner[design.mapping().row_loop] = design.shape().rows;
    inner[design.mapping().col_loop] = design.shape().cols;
    inner[design.mapping().vec_loop] = design.shape().vec;
    batch.lanes[i] = static_cast<double>(design.num_lanes());
    batch.executed[i] =
        static_cast<double>(executed_iterations_for_inner(nest, inner));
  }
  const double freq_mhz = options.assumed_freq_mhz;
  batch_pt_bounds(batch, static_cast<double>(nest.total_iterations()),
                  freq_mhz * 1e-3);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const DesignPoint& design = candidates[i].design;
    std::fill(inner.begin(), inner.end(), 1);
    inner[design.mapping().row_loop] = design.shape().rows;
    inner[design.mapping().col_loop] = design.shape().cols;
    inner[design.mapping().vec_loop] = design.shape().vec;
    const double scalar =
        phase1_pt_bound_gops(nest, inner, design.num_lanes(), freq_mhz);
    EXPECT_EQ(batch.pt_gops[i], scalar) << "item " << i;
    EXPECT_EQ(scalar, candidates[i].estimate.pt_gops) << "item " << i;
  }
}

TEST(DsePruneEquivalenceTest, FullNetworkSweepWhenRequested) {
  // Exhaustive differential over every deduplicated layer of every bundled
  // network. Minutes of work — opt-in via SASYNTH_PRUNE_EQUIV_FULL=1 (the
  // CI prune-equivalence job runs it under ASan/UBSan).
  if (std::getenv("SASYNTH_PRUNE_EQUIV_FULL") == nullptr) {
    GTEST_SKIP() << "set SASYNTH_PRUNE_EQUIV_FULL=1 for the full sweep";
  }
  std::string report;
  for (const char* name : {"alexnet", "vgg16", "googlenet"}) {
    const Network net = std::string(name) == "alexnet" ? make_alexnet()
                        : std::string(name) == "vgg16" ? make_vgg16()
                                                       : make_googlenet();
    DseStats ex_total;
    DseStats pr_total;
    for (const ConvLayerDesc& layer : unique_layers(net)) {
      const LoopNest nest = build_conv_nest(layer);
      const std::vector<DseCandidate> exhaustive =
          run_phase1(nest, /*prune=*/false, /*jobs=*/0, &ex_total);
      const std::vector<DseCandidate> pruned =
          run_phase1(nest, /*prune=*/true, /*jobs=*/0, &pr_total);
      expect_topk_identical(exhaustive, pruned, 14,
                            std::string(name) + "/" + layer.name);
    }
    report += std::string(report.empty() ? "" : ",\n") + "  \"" + name +
              "\": {\"reuse_evaluated_exhaustive\": " +
              std::to_string(ex_total.reuse_evaluated) +
              ", \"reuse_evaluated_pruned\": " +
              std::to_string(pr_total.reuse_evaluated) +
              ", \"items_pruned_bound\": " +
              std::to_string(pr_total.items_pruned_bound) +
              ", \"bound_seed_evaluated\": " +
              std::to_string(pr_total.bound_seed_evaluated) +
              ", \"reuse_subtrees_pruned\": " +
              std::to_string(pr_total.reuse_subtrees_pruned) +
              ", \"reuse_bound_evals\": " +
              std::to_string(pr_total.reuse_bound_evals) + "}";
    // Pruning must never evaluate more reuse strategies than the
    // exhaustive sweep, even counting the corner-bound overhead.
    EXPECT_LT(pr_total.reuse_evaluated + pr_total.reuse_bound_evals,
              ex_total.reuse_evaluated)
        << name;
  }
  if (const char* path = std::getenv("SASYNTH_PRUNE_REPORT")) {
    std::ofstream out(path);
    out << "{\n" << report << "\n}\n";
  }
}

}  // namespace
}  // namespace sasynth
