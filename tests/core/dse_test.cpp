#include "core/dse.h"

#include <gtest/gtest.h>

#include "core/mapping.h"
#include "loopnest/conv_nest.h"
#include "loopnest/reuse.h"
#include "nn/network.h"

namespace sasynth {
namespace {

DseOptions fast_options() {
  DseOptions options;
  options.assumed_freq_mhz = 280.0;
  options.min_dsp_util = 0.80;
  options.top_k = 14;
  return options;
}

class DseTest : public ::testing::Test {
 protected:
  DseTest()
      : layer_(alexnet_conv5()),
        nest_(build_conv_nest(layer_)),
        device_(arria10_gt1150()) {}

  ConvLayerDesc layer_;
  LoopNest nest_;
  FpgaDevice device_;
};

TEST_F(DseTest, ShapeEnumerationRespectsConstraints) {
  const DseOptions options = fast_options();
  const ReuseMatrix reuse = analyze_reuse(nest_);
  const SystolicMapping mapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI};
  std::int64_t considered = 0;
  const std::vector<ArrayShape> shapes = enumerate_shapes(
      nest_, mapping, device_, DataType::kFloat32, options, &considered);
  EXPECT_GT(considered, 0);
  EXPECT_FALSE(shapes.empty());
  const std::int64_t cap = mac_capacity(DataType::kFloat32, device_.dsp_blocks);
  for (const ArrayShape& shape : shapes) {
    EXPECT_LE(shape.num_lanes(), cap);
    // Eq. 12 with c_s = 0.8.
    EXPECT_GE(static_cast<double>(shape.num_lanes()),
              0.80 * static_cast<double>(cap) - 1.0);
    // pow2 SIMD vector.
    EXPECT_EQ(shape.vec & (shape.vec - 1), 0) << shape.to_string();
  }
}

TEST_F(DseTest, UtilizationPruneShrinksSpace) {
  const ReuseMatrix reuse = analyze_reuse(nest_);
  const SystolicMapping mapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI};
  DseOptions loose = fast_options();
  loose.min_dsp_util = 0.0;
  DseOptions tight = fast_options();
  tight.min_dsp_util = 0.9;
  const auto all = enumerate_shapes(nest_, mapping, device_,
                                    DataType::kFloat32, loose, nullptr);
  const auto pruned = enumerate_shapes(nest_, mapping, device_,
                                       DataType::kFloat32, tight, nullptr);
  EXPECT_GT(all.size(), 4 * pruned.size());
}

TEST_F(DseTest, BestReuseRespectsBramBudget) {
  const DesignSpaceExplorer explorer(device_, DataType::kFloat32,
                                     fast_options());
  const SystolicMapping mapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI};
  DesignPoint design;
  DseStats stats;
  ASSERT_TRUE(explorer.best_reuse_strategy(nest_, mapping,
                                           ArrayShape{11, 13, 8}, &design,
                                           &stats));
  EXPECT_GT(stats.reuse_evaluated, 0);
  EXPECT_LE(bram_usage_blocks(nest_, design, device_, DataType::kFloat32),
            device_.bram_blocks);
  // All middle bounds are powers of two under the default pruning.
  for (std::size_t l = 0; l < 6; ++l) {
    const std::int64_t s = design.tiling().middle(l);
    EXPECT_EQ(s & (s - 1), 0) << "loop " << l;
  }
}

TEST_F(DseTest, BestReuseReachesPaperThroughput) {
  // With the paper's sys1 shape, the reuse search must recover a tiling that
  // keeps the design compute-bound at ~621 GFlops (paper §2.3).
  const DesignSpaceExplorer explorer(device_, DataType::kFloat32,
                                     fast_options());
  const SystolicMapping mapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI};
  DesignPoint design;
  ASSERT_TRUE(explorer.best_reuse_strategy(nest_, mapping,
                                           ArrayShape{11, 13, 8}, &design,
                                           nullptr));
  const PerfEstimate perf = estimate_performance(
      nest_, design, device_, DataType::kFloat32, 280.0);
  EXPECT_NEAR(perf.throughput_gops, 621.0, 2.0);
  EXPECT_FALSE(perf.memory_bound);
}

TEST_F(DseTest, TinyDeviceInfeasibleShapeFails) {
  // A shape that cannot fit any reuse buffers within the tiny device's BRAM
  // must report failure instead of returning a bogus design.
  FpgaDevice device = tiny_test_device();
  device.bram_blocks = 1;
  DseOptions options = fast_options();
  options.min_dsp_util = 0.0;
  const DesignSpaceExplorer explorer(device, DataType::kFloat32, options);
  const SystolicMapping mapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI};
  DesignPoint design;
  EXPECT_FALSE(explorer.best_reuse_strategy(nest_, mapping, ArrayShape{4, 4, 4},
                                            &design, nullptr));
}

TEST_F(DseTest, ExploreProducesSortedTopK) {
  const DesignSpaceExplorer explorer(device_, DataType::kFloat32,
                                     fast_options());
  const DseResult result = explorer.explore(nest_);
  ASSERT_FALSE(result.empty());
  EXPECT_LE(result.top.size(), 14U);
  for (std::size_t i = 1; i < result.top.size(); ++i) {
    EXPECT_GE(result.top[i - 1].estimated_gops(),
              result.top[i].estimated_gops());
  }
  // Phase 2 ran: every candidate has a realized clock.
  for (const DseCandidate& c : result.top) {
    EXPECT_GT(c.realized_freq_mhz, 0.0);
    EXPECT_GT(c.realized_gops(), 0.0);
  }
}

TEST_F(DseTest, StatsAreConsistent) {
  const DesignSpaceExplorer explorer(device_, DataType::kFloat32,
                                     fast_options());
  const DseResult result = explorer.explore(nest_);
  const DseStats& stats = result.stats;
  EXPECT_EQ(stats.mappings_candidates, 120);
  EXPECT_EQ(stats.mappings_feasible, 12);
  EXPECT_GE(stats.shapes_considered, stats.shapes_after_prune);
  EXPECT_GT(stats.reuse_evaluated, 0);
  // The two §4 pruning claims: pow2 restriction shrinks the reuse space by
  // an order of magnitude; Eq. 12 shrinks the shape space.
  EXPECT_GT(stats.reuse_space_bruteforce, 10 * stats.reuse_space_pow2);
  EXPECT_GT(stats.phase1_seconds, 0.0);
  // Paper: phase 1 takes < 30 seconds.
  EXPECT_LT(stats.phase1_seconds, 30.0);
}

TEST_F(DseTest, BestRealizedIsMaxOverTop) {
  const DesignSpaceExplorer explorer(device_, DataType::kFloat32,
                                     fast_options());
  const DseResult result = explorer.explore(nest_);
  const DseCandidate* best = result.best();
  ASSERT_NE(best, nullptr);
  for (const DseCandidate& c : result.top) {
    EXPECT_LE(c.realized_gops(), best->realized_gops() + 1e-9);
  }
}

TEST_F(DseTest, ExploreLayerMatchesExploreNest) {
  const DesignSpaceExplorer explorer(device_, DataType::kFloat32,
                                     fast_options());
  const DseResult by_layer = explorer.explore_layer(layer_);
  const DseResult by_nest = explorer.explore(nest_);
  ASSERT_EQ(by_layer.top.size(), by_nest.top.size());
  for (std::size_t i = 0; i < by_layer.top.size(); ++i) {
    EXPECT_EQ(by_layer.top[i].design, by_nest.top[i].design);
  }
}

TEST_F(DseTest, Phase1CandidatesAllValid) {
  DseOptions options = fast_options();
  options.min_dsp_util = 0.90;  // keep the dump small
  const DesignSpaceExplorer explorer(device_, DataType::kFloat32, options);
  DseStats stats;
  const std::vector<DseCandidate> all = explorer.enumerate_phase1(nest_, &stats);
  ASSERT_FALSE(all.empty());
  for (const DseCandidate& c : all) {
    EXPECT_TRUE(c.design.validate(nest_).empty());
    EXPECT_LE(c.resources.bram_blocks, device_.bram_blocks);
    EXPECT_LE(c.resources.dsp_blocks, device_.dsp_blocks);
    EXPECT_GT(c.estimated_gops(), 0.0);
  }
}

TEST(DseSmallDevice, TinyLayerExploresQuickly) {
  // End-to-end DSE on a tiny layer and device: sanity for the generic path.
  const ConvLayerDesc layer = make_conv("tiny", 8, 8, 6, 3);
  DseOptions options;
  options.min_dsp_util = 0.5;
  options.max_rows = 8;
  options.max_cols = 8;
  options.max_vec = 8;
  const DesignSpaceExplorer explorer(tiny_test_device(), DataType::kFloat32,
                                     options);
  const DseResult result = explorer.explore_layer(layer);
  ASSERT_FALSE(result.empty());
  const DseCandidate* best = result.best();
  EXPECT_LE(best->design.num_lanes(), 64);
  EXPECT_GT(best->realized_gops(), 0.0);
}

TEST(DseSmallDevice, AutoRelaxFindsDesignForTinyLayer) {
  // A 2x2x2 layer can never reach 80% of an Arria 10 — with auto_relax the
  // flow still returns its best (small) design; without it, nothing.
  const ConvLayerDesc layer = make_conv("wee", 2, 2, 2, 1);
  DseOptions options;
  options.min_dsp_util = 0.80;
  options.auto_relax_util = false;
  const DesignSpaceExplorer strict(arria10_gt1150(), DataType::kFloat32,
                                   options);
  EXPECT_TRUE(strict.explore_layer(layer).empty());

  options.auto_relax_util = true;
  const DesignSpaceExplorer relaxed(arria10_gt1150(), DataType::kFloat32,
                                    options);
  const DseResult result = relaxed.explore_layer(layer);
  ASSERT_FALSE(result.empty());
  EXPECT_LE(result.best()->design.num_lanes(), 8);
}

TEST(DseSmallDevice, FullyDeterministicAcrossRuns) {
  // The whole pipeline (models, pruning, tie-breaks, pseudo-P&R) is
  // deterministic: two independent explorations agree design-for-design.
  const ConvLayerDesc layer = make_conv("det", 8, 8, 6, 3);
  DseOptions options;
  options.min_dsp_util = 0.5;
  options.max_rows = 8;
  options.max_cols = 8;
  options.max_vec = 8;
  const DesignSpaceExplorer a(tiny_test_device(), DataType::kFloat32, options);
  const DesignSpaceExplorer b(tiny_test_device(), DataType::kFloat32, options);
  const DseResult ra = a.explore_layer(layer);
  const DseResult rb = b.explore_layer(layer);
  ASSERT_EQ(ra.top.size(), rb.top.size());
  for (std::size_t i = 0; i < ra.top.size(); ++i) {
    EXPECT_EQ(ra.top[i].design, rb.top[i].design);
    EXPECT_DOUBLE_EQ(ra.top[i].realized_freq_mhz, rb.top[i].realized_freq_mhz);
    EXPECT_DOUBLE_EQ(ra.top[i].realized_gops(), rb.top[i].realized_gops());
  }
}

TEST(DseSmallDevice, SoftLogicConstraintFilters) {
  // A device with just enough logic for the I/O shell admits no PE array;
  // disabling the check (the paper's literal Problem 2) admits designs.
  const ConvLayerDesc layer = make_conv("logic", 8, 8, 6, 3);
  FpgaDevice device = tiny_test_device();
  device.logic_cells = 65000;  // shell (~60K) + almost nothing
  DseOptions options;
  options.min_dsp_util = 0.5;
  options.max_rows = 8;
  options.max_cols = 8;
  options.max_vec = 8;
  options.auto_relax_util = false;  // isolate the logic filter
  const DesignSpaceExplorer strict(device, DataType::kFloat32, options);
  EXPECT_TRUE(strict.explore_layer(layer).empty());

  options.enforce_soft_logic = false;
  const DesignSpaceExplorer lax(device, DataType::kFloat32, options);
  EXPECT_FALSE(lax.explore_layer(layer).empty());
}

TEST(DseGeneric, MatrixMultiplyNestExplores) {
  // The DSE is not conv-specific: a matrix-multiply nest (2 feasible
  // mappings) explores end to end through the same machinery.
  LoopNest nest;
  nest.add_loop("i", 32);
  nest.add_loop("j", 24);
  nest.add_loop("k", 48);
  AccessFunction c;
  c.array = "Cm";
  c.indices.push_back(AffineExpr::term(3, 0));
  c.indices.push_back(AffineExpr::term(3, 1));
  nest.add_access(ArrayAccess{c, AccessRole::kReduce});
  AccessFunction a;
  a.array = "A";
  a.indices.push_back(AffineExpr::term(3, 0));
  a.indices.push_back(AffineExpr::term(3, 2));
  nest.add_access(ArrayAccess{a, AccessRole::kRead});
  AccessFunction b;
  b.array = "B";
  b.indices.push_back(AffineExpr::term(3, 2));
  b.indices.push_back(AffineExpr::term(3, 1));
  nest.add_access(ArrayAccess{b, AccessRole::kRead});

  DseOptions options;
  options.min_dsp_util = 0.5;
  options.max_rows = 8;
  options.max_cols = 8;
  options.max_vec = 8;
  const DesignSpaceExplorer explorer(tiny_test_device(), DataType::kFloat32,
                                     options);
  const DseResult result = explorer.explore(nest);
  ASSERT_FALSE(result.empty());
  EXPECT_EQ(result.stats.mappings_feasible, 2);
  const DseCandidate* best = result.best();
  EXPECT_GT(best->realized_gops(), 0.0);
  // The accumulation loop k must be the SIMD vector.
  EXPECT_EQ(best->design.mapping().vec_loop, 2U);
}

TEST(DseOptionsTest, BruteForceMiddleMatchesPow2OnSmallLayer) {
  // On a small layer, exhaustive integer s-search must never find a better
  // throughput than... rather: pow2 search must be within the brute-force
  // optimum (monotonicity argument of §4) — and brute force must be at least
  // as good. Equality of throughput validates the pruning-covers-optimum
  // claim (BRAM rounding makes the pow2 point equivalent).
  const ConvLayerDesc layer = make_conv("small", 8, 8, 6, 3);
  const LoopNest nest = build_conv_nest(layer);
  DseOptions pow2;
  pow2.min_dsp_util = 0.5;
  pow2.max_rows = 8;
  pow2.max_cols = 8;
  pow2.max_vec = 8;
  DseOptions brute = pow2;
  brute.pow2_middle = false;

  const FpgaDevice device = tiny_test_device();
  const DesignSpaceExplorer e_pow2(device, DataType::kFloat32, pow2);
  const DesignSpaceExplorer e_brute(device, DataType::kFloat32, brute);
  const SystolicMapping mapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI};
  const ArrayShape shape{4, 3, 4};
  DesignPoint d_pow2;
  DesignPoint d_brute;
  ASSERT_TRUE(e_pow2.best_reuse_strategy(nest, mapping, shape, &d_pow2, nullptr));
  ASSERT_TRUE(
      e_brute.best_reuse_strategy(nest, mapping, shape, &d_brute, nullptr));
  const double t_pow2 =
      estimate_performance(nest, d_pow2, device, DataType::kFloat32, 280.0)
          .throughput_gops;
  const double t_brute =
      estimate_performance(nest, d_brute, device, DataType::kFloat32, 280.0)
          .throughput_gops;
  EXPECT_NEAR(t_pow2, t_brute, 1e-6);
}

}  // namespace
}  // namespace sasynth
