#include "core/resource_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "loopnest/conv_nest.h"
#include "nn/network.h"
#include "util/math_util.h"

namespace sasynth {
namespace {

class ResourceModelTest : public ::testing::Test {
 protected:
  ResourceModelTest()
      : nest_(build_conv_nest(alexnet_conv5())), device_(arria10_gt1150()) {}

  DesignPoint sys1_design(std::vector<std::int64_t> middle = {4, 4, 1, 13, 3,
                                                              3}) const {
    return DesignPoint(
        nest_, SystolicMapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI},
        ArrayShape{11, 13, 8}, std::move(middle));
  }

  LoopNest nest_;
  FpgaDevice device_;
};

TEST_F(ResourceModelTest, DspUsageEq4) {
  const ResourceUsage usage =
      model_resources(nest_, sys1_design(), device_, DataType::kFloat32);
  EXPECT_EQ(usage.lanes, 1144);           // prod(t)
  EXPECT_EQ(usage.dsp_blocks, 1144);      // DSP_per_PE = 1 for fp32
  // Table 1 quotes 71.5% against the 1600-unit denominator; against the
  // device's 1518 blocks it is 75.4%.
  EXPECT_NEAR(usage.report.dsp_util, 1144.0 / 1518.0, 1e-9);
}

TEST_F(ResourceModelTest, FixedPointHalvesDsp) {
  const ResourceUsage usage =
      model_resources(nest_, sys1_design(), device_, DataType::kFixed8_16);
  EXPECT_EQ(usage.dsp_blocks, 572);
}

TEST_F(ResourceModelTest, BufferFootprintsMatchClosedForm) {
  const DesignPoint design = sys1_design();
  const ResourceUsage usage =
      model_resources(nest_, design, device_, DataType::kFloat32);
  ASSERT_EQ(usage.buffers.size(), 3U);
  for (const BufferUsage& buf : usage.buffers) {
    if (buf.array == kWeightArray) {
      EXPECT_EQ(buf.footprint_elems, 44 * 32 * 9);
    } else if (buf.array == kInArray) {
      EXPECT_EQ(buf.footprint_elems, 32 * 15 * 15);
    } else {
      EXPECT_EQ(buf.footprint_elems, 44 * 169);
    }
    EXPECT_EQ(buf.depth_pow2, round_up_pow2(buf.footprint_elems));
    EXPECT_GE(buf.depth_pow2, buf.footprint_elems);
    EXPECT_LT(buf.depth_pow2, 2 * buf.footprint_elems);
  }
}

TEST_F(ResourceModelTest, BramEq6Structure) {
  const DesignPoint design = sys1_design();
  const ResourceUsage usage =
      model_resources(nest_, design, device_, DataType::kFloat32);
  // Recompute Eq. 6 by hand: sum_r (ceil(2*pow2(DA_r)*bytes / block) + c_b)
  // + ceil(c_p * PEs).
  std::int64_t expected = 0;
  for (const BufferUsage& buf : usage.buffers) {
    expected += static_cast<std::int64_t>(
                    std::ceil(buf.bytes / device_.bram_bytes())) +
                device_.bram_const_per_buffer;
  }
  expected += static_cast<std::int64_t>(
      std::ceil(device_.bram_per_pe * 143.0));
  EXPECT_EQ(usage.bram_blocks, expected);
  EXPECT_EQ(usage.bram_blocks,
            bram_usage_blocks(nest_, design, device_, DataType::kFloat32));
}

TEST_F(ResourceModelTest, BramMonotoneInMiddleBounds) {
  // The DSE's pruning requires B(s,t) monotone non-decreasing in every s_l.
  const std::vector<std::int64_t> base{2, 2, 1, 2, 1, 1};
  const std::int64_t b0 = bram_usage_blocks(nest_, sys1_design(base), device_,
                                            DataType::kFloat32);
  for (std::size_t l = 0; l < 6; ++l) {
    std::vector<std::int64_t> bigger = base;
    bigger[l] *= 2;
    const std::int64_t b1 = bram_usage_blocks(nest_, sys1_design(bigger),
                                              device_, DataType::kFloat32);
    EXPECT_GE(b1, b0) << "loop " << l;
  }
}

TEST_F(ResourceModelTest, FixedPointBuffersSmaller) {
  const DesignPoint design = sys1_design();
  const std::int64_t fp =
      bram_usage_blocks(nest_, design, device_, DataType::kFloat32);
  const std::int64_t fx =
      bram_usage_blocks(nest_, design, device_, DataType::kFixed8_16);
  EXPECT_LT(fx, fp);
}

TEST_F(ResourceModelTest, BytesPerElementRoles) {
  EXPECT_DOUBLE_EQ(bytes_per_element(DataType::kFixed8_16, nest_,
                                     nest_.find_access(kWeightArray)),
                   1.0);
  EXPECT_DOUBLE_EQ(
      bytes_per_element(DataType::kFixed8_16, nest_, nest_.find_access(kInArray)),
      2.0);
  EXPECT_DOUBLE_EQ(bytes_per_element(DataType::kFixed8_16, nest_,
                                     nest_.find_access(kOutArray)),
                   2.0);
  for (std::size_t a = 0; a < 3; ++a) {
    EXPECT_DOUBLE_EQ(bytes_per_element(DataType::kFloat32, nest_, a), 4.0);
  }
}

TEST_F(ResourceModelTest, BankedModelNeverSmallerThanEq6) {
  // Banking fragments the depth rounding across many small banks, so the
  // banked estimate dominates the paper's monolithic Eq. 6.
  for (const std::vector<std::int64_t>& middle :
       {std::vector<std::int64_t>{4, 4, 1, 13, 3, 3},
        std::vector<std::int64_t>{1, 1, 1, 2, 1, 1},
        std::vector<std::int64_t>{2, 8, 1, 13, 3, 3}}) {
    const DesignPoint d = sys1_design(middle);
    EXPECT_GE(bram_usage_blocks_banked(nest_, d, device_, DataType::kFloat32),
              bram_usage_blocks(nest_, d, device_, DataType::kFloat32))
        << d.to_string(nest_);
  }
}

TEST_F(ResourceModelTest, BankedModelMonotoneInMiddleBounds) {
  const std::vector<std::int64_t> base{2, 2, 1, 2, 1, 1};
  const std::int64_t b0 = bram_usage_blocks_banked(nest_, sys1_design(base),
                                                   device_, DataType::kFloat32);
  for (std::size_t l = 0; l < 6; ++l) {
    std::vector<std::int64_t> bigger = base;
    bigger[l] *= 2;
    EXPECT_GE(bram_usage_blocks_banked(nest_, sys1_design(bigger), device_,
                                       DataType::kFloat32),
              b0)
        << "loop " << l;
  }
}

TEST_F(ResourceModelTest, SummaryListsBuffers) {
  const ResourceUsage usage =
      model_resources(nest_, sys1_design(), device_, DataType::kFloat32);
  const std::string s = usage.summary();
  EXPECT_NE(s.find("OUT"), std::string::npos);
  EXPECT_NE(s.find("W:"), std::string::npos);
  EXPECT_NE(s.find("IN:"), std::string::npos);
}

}  // namespace
}  // namespace sasynth
