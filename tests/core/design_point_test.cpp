#include "core/design_point.h"

#include <gtest/gtest.h>

#include "loopnest/conv_nest.h"
#include "nn/network.h"

namespace sasynth {
namespace {

SystolicMapping sys1_mapping() {
  return SystolicMapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI};
}

TEST(ArrayShape, Counts) {
  const ArrayShape shape{11, 13, 8};
  EXPECT_EQ(shape.num_pes(), 143);
  EXPECT_EQ(shape.num_lanes(), 1144);
  EXPECT_EQ(shape.to_string(), "(11,13,8)");
  EXPECT_EQ(shape, (ArrayShape{11, 13, 8}));
  EXPECT_FALSE(shape == (ArrayShape{11, 13, 4}));
}

TEST(DesignPoint, InnerBoundsFollowMapping) {
  const LoopNest nest = build_conv_nest(alexnet_conv5());
  const DesignPoint design(nest, sys1_mapping(), ArrayShape{11, 13, 8},
                           std::vector<std::int64_t>(6, 1));
  EXPECT_EQ(design.tiling().inner(ConvLoops::kO), 11);
  EXPECT_EQ(design.tiling().inner(ConvLoops::kC), 13);
  EXPECT_EQ(design.tiling().inner(ConvLoops::kI), 8);
  EXPECT_EQ(design.tiling().inner(ConvLoops::kR), 1);
  EXPECT_EQ(design.tiling().inner(ConvLoops::kP), 1);
  EXPECT_EQ(design.tiling().inner(ConvLoops::kQ), 1);
  EXPECT_EQ(design.num_lanes(), 1144);
}

TEST(DesignPoint, MiddleBoundsStored) {
  const LoopNest nest = build_conv_nest(alexnet_conv5());
  std::vector<std::int64_t> middle{4, 4, 1, 13, 3, 3};
  DesignPoint design(nest, sys1_mapping(), ArrayShape{11, 13, 8}, middle);
  EXPECT_EQ(design.tiling().middle(ConvLoops::kO), 4);
  EXPECT_EQ(design.tiling().middle(ConvLoops::kR), 13);
  design.set_middle_bounds({1, 1, 1, 1, 1, 1});
  EXPECT_EQ(design.tiling().middle(ConvLoops::kR), 1);
  EXPECT_EQ(design.tiling().inner(ConvLoops::kO), 11);  // inner preserved
}

TEST(DesignPoint, SignatureStableAndDistinct) {
  const LoopNest nest = build_conv_nest(alexnet_conv5());
  const DesignPoint a(nest, sys1_mapping(), ArrayShape{11, 13, 8},
                      std::vector<std::int64_t>(6, 1));
  const DesignPoint b(nest, sys1_mapping(), ArrayShape{11, 13, 8},
                      std::vector<std::int64_t>(6, 1));
  const DesignPoint c(nest, sys1_mapping(), ArrayShape{16, 10, 8},
                      std::vector<std::int64_t>(6, 1));
  EXPECT_EQ(a.signature(), b.signature());
  EXPECT_NE(a.signature(), c.signature());
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(DesignPoint, ToStringMentionsEverything) {
  const LoopNest nest = build_conv_nest(alexnet_conv5());
  const DesignPoint design(nest, sys1_mapping(), ArrayShape{11, 13, 8},
                           {4, 4, 1, 13, 3, 3});
  const std::string s = design.to_string(nest);
  EXPECT_NE(s.find("(row=o, col=c, vec=i)"), std::string::npos);
  EXPECT_NE(s.find("(11,13,8)"), std::string::npos);
  EXPECT_NE(s.find("s=(4,4,1,13,3,3)"), std::string::npos);
}

TEST(DesignPoint, ValidateCatchesBadShape) {
  const LoopNest nest = build_conv_nest(alexnet_conv5());
  const DesignPoint design(nest, sys1_mapping(), ArrayShape{0, 13, 8},
                           std::vector<std::int64_t>(6, 1));
  EXPECT_FALSE(design.validate(nest).empty());
}

TEST(DesignPoint, ValidGoodDesign) {
  const LoopNest nest = build_conv_nest(alexnet_conv5());
  const DesignPoint design(nest, sys1_mapping(), ArrayShape{11, 13, 8},
                           {4, 4, 1, 13, 3, 3});
  EXPECT_TRUE(design.validate(nest).empty());
}

}  // namespace
}  // namespace sasynth
