#include "core/mapping.h"

#include <gtest/gtest.h>

#include "loopnest/conv_nest.h"
#include "nn/network.h"

namespace sasynth {
namespace {

class MappingTest : public ::testing::Test {
 protected:
  MappingTest()
      : nest_(build_conv_nest(alexnet_conv5())), reuse_(analyze_reuse(nest_)) {}
  LoopNest nest_;
  ReuseMatrix reuse_;
};

TEST_F(MappingTest, CandidateCount) {
  EXPECT_EQ(num_candidate_mappings(nest_), 6 * 5 * 4);
}

TEST_F(MappingTest, WeakConditionCount) {
  // Eq. 2: choose one loop from each array's reuse set
  // ({i,p,q} x {c,r} x {o}) = 6 sets, each in 3! orders = 36.
  EXPECT_EQ(enumerate_reuse_condition_mappings(nest_, reuse_).size(), 36U);
}

TEST_F(MappingTest, ArchitecturalCount) {
  // vec must carry OUT reuse (3 choices), row/col an ordered pair of the
  // o-loop and one of {c, r} (4 arrangements) = 12.
  EXPECT_EQ(enumerate_feasible_mappings(nest_, reuse_).size(), 12U);
}

TEST_F(MappingTest, ArchitecturalImpliesWeak) {
  for (const SystolicMapping& m : enumerate_feasible_mappings(nest_, reuse_)) {
    EXPECT_TRUE(satisfies_reuse_condition(nest_, reuse_, m))
        << m.to_string(nest_);
  }
}

TEST_F(MappingTest, PaperSys1MappingIsFeasible) {
  // Table 1 maps (L1, L3, L2) = (o, c, i) to (row, col, vec).
  const SystolicMapping sys1{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI};
  std::string why;
  EXPECT_TRUE(is_feasible_mapping(nest_, reuse_, sys1, &why)) << why;
  EXPECT_TRUE(why.empty());
}

TEST_F(MappingTest, PaperInfeasibleExampleRejected) {
  // §2.3's counter-example: mapping L3 and L4 (c, r) to the PE dimensions is
  // infeasible because W has no reuse on either... precisely: neither c nor
  // r carries IN's reuse, so the operand orientation fails.
  const SystolicMapping bad{ConvLoops::kC, ConvLoops::kR, ConvLoops::kI};
  std::string why;
  EXPECT_FALSE(is_feasible_mapping(nest_, reuse_, bad, &why));
  EXPECT_FALSE(why.empty());
}

TEST_F(MappingTest, VecMustCarryOutputReuse) {
  // vec = o (which carries IN reuse, not OUT) must be rejected.
  const SystolicMapping bad{ConvLoops::kI, ConvLoops::kC, ConvLoops::kO};
  std::string why;
  EXPECT_FALSE(is_feasible_mapping(nest_, reuse_, bad, &why));
  EXPECT_NE(why.find("vec"), std::string::npos);
}

TEST_F(MappingTest, DuplicateLoopsRejected) {
  const SystolicMapping dup{ConvLoops::kO, ConvLoops::kO, ConvLoops::kI};
  EXPECT_FALSE(satisfies_reuse_condition(nest_, reuse_, dup));
  EXPECT_FALSE(is_feasible_mapping(nest_, reuse_, dup));
}

TEST_F(MappingTest, OutOfRangeRejected) {
  const SystolicMapping oob{99, ConvLoops::kC, ConvLoops::kI};
  EXPECT_FALSE(satisfies_reuse_condition(nest_, reuse_, oob));
  EXPECT_FALSE(is_feasible_mapping(nest_, reuse_, oob));
}

TEST_F(MappingTest, AllFeasibleMappingsHaveExpectedStructure) {
  for (const SystolicMapping& m : enumerate_feasible_mappings(nest_, reuse_)) {
    // vec in {i, p, q}.
    EXPECT_TRUE(m.vec_loop == ConvLoops::kI || m.vec_loop == ConvLoops::kP ||
                m.vec_loop == ConvLoops::kQ)
        << m.to_string(nest_);
    // One of row/col is o, the other is c or r.
    const bool row_is_o = m.row_loop == ConvLoops::kO;
    const std::size_t other = row_is_o ? m.col_loop : m.row_loop;
    EXPECT_TRUE(row_is_o || m.col_loop == ConvLoops::kO) << m.to_string(nest_);
    EXPECT_TRUE(other == ConvLoops::kC || other == ConvLoops::kR)
        << m.to_string(nest_);
  }
}

TEST_F(MappingTest, ToStringAndSignature) {
  const SystolicMapping m{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI};
  EXPECT_EQ(m.to_string(nest_), "(row=o, col=c, vec=i)");
  EXPECT_EQ(m.signature(), "m0_2_1");
  EXPECT_EQ(m, (SystolicMapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI}));
}

TEST(MappingGeneric, RequiresExactlyTwoOperands) {
  // A nest with one operand array cannot be systolically mapped.
  LoopNest nest;
  nest.add_loop("a", 4);
  nest.add_loop("b", 4);
  nest.add_loop("c", 4);
  AccessFunction out;
  out.array = "O";
  out.indices.push_back(AffineExpr::term(3, 0));
  nest.add_access(ArrayAccess{out, AccessRole::kReduce});
  AccessFunction x;
  x.array = "X";
  x.indices.push_back(AffineExpr::term(3, 1));
  nest.add_access(ArrayAccess{x, AccessRole::kRead});
  const ReuseMatrix reuse = analyze_reuse(nest);
  std::string why;
  EXPECT_FALSE(is_feasible_mapping(nest, reuse, SystolicMapping{0, 1, 2}, &why));
  EXPECT_NE(why.find("two operand"), std::string::npos);
}

TEST(MappingGeneric, MatrixMultiplyHasFeasibleMappings) {
  // C[i][j] += A[i][k] * B[k][j] — the classic systolic case: row=j (A
  // reuse), col=i (B reuse), vec=k (C reuse) and its mirror.
  LoopNest nest;
  nest.add_loop("i", 8);
  nest.add_loop("j", 8);
  nest.add_loop("k", 8);
  AccessFunction cacc;
  cacc.array = "Cm";
  cacc.indices.push_back(AffineExpr::term(3, 0));
  cacc.indices.push_back(AffineExpr::term(3, 1));
  nest.add_access(ArrayAccess{cacc, AccessRole::kReduce});
  AccessFunction a;
  a.array = "A";
  a.indices.push_back(AffineExpr::term(3, 0));
  a.indices.push_back(AffineExpr::term(3, 2));
  nest.add_access(ArrayAccess{a, AccessRole::kRead});
  AccessFunction b;
  b.array = "B";
  b.indices.push_back(AffineExpr::term(3, 2));
  b.indices.push_back(AffineExpr::term(3, 1));
  nest.add_access(ArrayAccess{b, AccessRole::kRead});

  const ReuseMatrix reuse = analyze_reuse(nest);
  const std::vector<SystolicMapping> feasible =
      enumerate_feasible_mappings(nest, reuse);
  ASSERT_EQ(feasible.size(), 2U);
  for (const SystolicMapping& m : feasible) {
    EXPECT_EQ(m.vec_loop, 2U);  // k accumulates in the PE
  }
}

}  // namespace
}  // namespace sasynth
