#include "core/unified.h"

#include <gtest/gtest.h>

#include "loopnest/conv_nest.h"
#include "nn/network.h"

namespace sasynth {
namespace {

UnifiedOptions fast_unified_options() {
  UnifiedOptions options;
  options.dse.assumed_freq_mhz = 280.0;
  options.dse.min_dsp_util = 0.5;
  options.dse.max_rows = 8;
  options.dse.max_cols = 8;
  options.dse.max_vec = 8;
  options.shape_shortlist = 12;
  return options;
}

TEST(EvaluateUnified, PerLayerAccounting) {
  const Network net = make_tiny_testnet();
  const LoopNest nest0 = build_conv_nest(net.layers[0]);
  const DesignPoint design(
      nest0, SystolicMapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI},
      ArrayShape{4, 3, 4}, std::vector<std::int64_t>(6, 1));
  const UnifiedDesign result = evaluate_unified_design(
      net, design, tiny_test_device(), DataType::kFloat32, 250.0);
  ASSERT_TRUE(result.valid);
  ASSERT_EQ(result.per_layer.size(), net.layers.size());
  double sum_ms = 0.0;
  for (const LayerPerf& lp : result.per_layer) {
    EXPECT_GT(lp.latency_ms, 0.0);
    EXPECT_GT(lp.throughput_gops(), 0.0);
    EXPECT_GT(lp.eff(), 0.0);
    EXPECT_LE(lp.eff(), 1.0);
    sum_ms += lp.latency_ms;
  }
  EXPECT_NEAR(result.total_latency_ms, sum_ms, 1e-9);
  EXPECT_NEAR(result.aggregate_gops,
              static_cast<double>(net.total_ops()) /
                  (result.total_latency_ms * 1e-3) * 1e-9,
              1e-6);
}

TEST(EvaluateUnified, AggregateBelowBestLayer) {
  // Aggregate throughput is a weighted harmonic mean: it cannot exceed the
  // best per-layer throughput nor fall below the worst.
  const Network net = make_tiny_testnet();
  const LoopNest nest0 = build_conv_nest(net.layers[0]);
  const DesignPoint design(
      nest0, SystolicMapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI},
      ArrayShape{4, 3, 4}, std::vector<std::int64_t>(6, 1));
  const UnifiedDesign result = evaluate_unified_design(
      net, design, tiny_test_device(), DataType::kFloat32, 250.0);
  double best = 0.0;
  double worst = 1e18;
  for (const LayerPerf& lp : result.per_layer) {
    best = std::max(best, lp.throughput_gops());
    worst = std::min(worst, lp.throughput_gops());
  }
  EXPECT_LE(result.aggregate_gops, best + 1e-9);
  EXPECT_GE(result.aggregate_gops, worst - 1e-9);
}

TEST(SelectUnified, TinyNetworkFindsValidDesign) {
  const Network net = make_tiny_testnet();
  const UnifiedDesign result = select_unified_design(
      net, tiny_test_device(), DataType::kFloat32, fast_unified_options());
  ASSERT_TRUE(result.valid);
  EXPECT_GT(result.aggregate_gops, 0.0);
  EXPECT_GT(result.realized_freq_mhz, 0.0);
  EXPECT_EQ(result.per_layer.size(), net.layers.size());
  EXPECT_LE(result.resources.bram_blocks, tiny_test_device().bram_blocks);
}

TEST(SelectUnified, JobsSweepSelectsIdenticalDesign) {
  // The shortlist scoring and per-entry reuse searches fan out across a
  // thread pool; the selected design must not depend on the worker count.
  const Network net = make_tiny_testnet();
  UnifiedOptions options = fast_unified_options();
  options.jobs = 1;
  const UnifiedDesign serial = select_unified_design(
      net, tiny_test_device(), DataType::kFloat32, options);
  ASSERT_TRUE(serial.valid);
  for (const int jobs : {2, 8}) {
    options.jobs = jobs;
    const UnifiedDesign parallel = select_unified_design(
        net, tiny_test_device(), DataType::kFloat32, options);
    ASSERT_TRUE(parallel.valid) << "jobs=" << jobs;
    EXPECT_EQ(parallel.design, serial.design) << "jobs=" << jobs;
    EXPECT_EQ(parallel.realized_freq_mhz, serial.realized_freq_mhz);
    EXPECT_EQ(parallel.aggregate_gops, serial.aggregate_gops);
    EXPECT_EQ(parallel.total_latency_ms, serial.total_latency_ms);
  }
}

TEST(SelectUnified, BeatsNaiveTinyDesign) {
  // The selected design must be at least as good as an arbitrary small
  // hand-picked one under the same evaluation.
  const Network net = make_tiny_testnet();
  const FpgaDevice device = tiny_test_device();
  const UnifiedDesign chosen = select_unified_design(
      net, device, DataType::kFloat32, fast_unified_options());
  ASSERT_TRUE(chosen.valid);

  const LoopNest nest0 = build_conv_nest(net.layers[0]);
  const DesignPoint naive(
      nest0, SystolicMapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI},
      ArrayShape{2, 2, 2}, std::vector<std::int64_t>(6, 1));
  const UnifiedDesign naive_eval = evaluate_unified_design(
      net, naive, device, DataType::kFloat32, chosen.realized_freq_mhz);
  EXPECT_GE(chosen.aggregate_gops, naive_eval.aggregate_gops * 0.99);
}

TEST(SelectUnified, FixedPointOutperformsFloatOnTinyNet) {
  // Fixed mode doubles the MAC yield per DSP block; the selected fixed
  // design must beat the float one on the same network and device.
  const Network net = make_tiny_testnet();
  const FpgaDevice device = tiny_test_device();
  const UnifiedDesign fp = select_unified_design(
      net, device, DataType::kFloat32, fast_unified_options());
  const UnifiedDesign fx = select_unified_design(
      net, device, DataType::kFixed8_16, fast_unified_options());
  ASSERT_TRUE(fp.valid);
  ASSERT_TRUE(fx.valid);
  EXPECT_GT(fx.aggregate_gops, fp.aggregate_gops);
}

TEST(SelectUnified, EmptyNetworkInvalid) {
  Network empty;
  empty.name = "empty";
  const UnifiedDesign result = select_unified_design(
      empty, tiny_test_device(), DataType::kFloat32, fast_unified_options());
  EXPECT_FALSE(result.valid);
}

TEST(SelectUnified, SummaryListsLayers) {
  const Network net = make_tiny_testnet();
  const UnifiedDesign result = select_unified_design(
      net, tiny_test_device(), DataType::kFloat32, fast_unified_options());
  ASSERT_TRUE(result.valid);
  const std::string s = result.summary(net);
  EXPECT_NE(s.find("t1"), std::string::npos);
  EXPECT_NE(s.find("t3"), std::string::npos);
  EXPECT_NE(s.find("Gops"), std::string::npos);
}

}  // namespace
}  // namespace sasynth
