// Cooperative cancellation of the DSE: a fired CancelToken must end the
// sweep early with DseStatus::kCancelled and a *deterministic* partial
// result — the item-index cut makes the truncated top-K bit-identical at any
// worker count, which is what lets a timed-out service response stay a pure
// function of (request, cancellation point).
#include <gtest/gtest.h>

#include "core/dse.h"
#include "core/unified.h"
#include "loopnest/conv_nest.h"
#include "nn/network.h"
#include "util/deadline.h"

namespace sasynth {
namespace {

TEST(DseCancelTest, InertTokenChangesNothing) {
  const LoopNest nest = build_conv_nest(alexnet_conv5());
  DseOptions options;
  options.min_dsp_util = 0.85;
  options.jobs = 1;
  const DseResult result =
      DesignSpaceExplorer(arria10_gt1150(), DataType::kFloat32, options)
          .explore(nest);
  ASSERT_FALSE(result.empty());
  EXPECT_EQ(result.status, DseStatus::kOk);
  EXPECT_FALSE(result.stats.cancelled);
  EXPECT_EQ(result.stats.summary().find("cancelled"), std::string::npos);
}

TEST(DseCancelTest, PreCancelledTokenYieldsEmptyCancelledResult) {
  const LoopNest nest = build_conv_nest(alexnet_conv5());
  DseOptions options;
  options.min_dsp_util = 0.85;
  options.jobs = 1;
  options.auto_relax_util = true;  // must NOT retry a cancelled empty sweep
  options.cancel = CancelToken::with_deadline(Deadline::after_ms(0));
  const DseResult result =
      DesignSpaceExplorer(arria10_gt1150(), DataType::kFloat32, options)
          .explore(nest);
  EXPECT_EQ(result.status, DseStatus::kCancelled);
  EXPECT_TRUE(result.stats.cancelled);
  EXPECT_TRUE(result.empty());
  // A cancelled empty sweep is "ran out of time", not "space exhausted":
  // the auto-relax loop must not burn the remaining budget re-sweeping.
  EXPECT_EQ(result.stats.util_relaxations, 0);
  EXPECT_NE(result.stats.summary().find("cancelled"), std::string::npos);
}

TEST(DseCancelTest, CutPartialResultIsBitIdenticalAcrossJobs) {
  const LoopNest nest = build_conv_nest(alexnet_conv5());
  DseOptions options;
  options.min_dsp_util = 0.80;
  options.jobs = 1;

  // Measure the full sweep once to place the cut strictly inside it.
  const DseResult full =
      DesignSpaceExplorer(arria10_gt1150(), DataType::kFloat32, options)
          .explore(nest);
  ASSERT_FALSE(full.empty());
  ASSERT_GT(full.stats.work_items, 4);
  const std::int64_t cut = full.stats.work_items / 2;

  auto run_with_cut = [&](int jobs) {
    DseOptions cut_options = options;
    cut_options.jobs = jobs;
    cut_options.cancel = CancelToken::cancellable();
    cut_options.cancel.set_cut_at_item(cut);
    return DesignSpaceExplorer(arria10_gt1150(), DataType::kFloat32,
                               cut_options)
        .explore(nest);
  };

  const DseResult serial = run_with_cut(1);
  EXPECT_EQ(serial.status, DseStatus::kCancelled);
  EXPECT_TRUE(serial.stats.cancelled);
  ASSERT_FALSE(serial.empty());
  // work_items counts the enumerated plan (fixed before evaluation starts),
  // so it is identical to the full run — the cut truncates evaluation, not
  // enumeration. That is exactly what keeps the cut index meaningful.
  EXPECT_EQ(serial.stats.work_items, full.stats.work_items);

  for (const int jobs : {2, 4}) {
    const DseResult parallel = run_with_cut(jobs);
    EXPECT_EQ(parallel.status, DseStatus::kCancelled) << "jobs=" << jobs;
    ASSERT_EQ(parallel.top.size(), serial.top.size()) << "jobs=" << jobs;
    for (std::size_t i = 0; i < serial.top.size(); ++i) {
      EXPECT_EQ(parallel.top[i].design, serial.top[i].design)
          << "jobs=" << jobs << " rank " << i;
      EXPECT_EQ(parallel.top[i].estimate.throughput_gops,
                serial.top[i].estimate.throughput_gops)
          << "jobs=" << jobs << " rank " << i;
      EXPECT_EQ(parallel.top[i].realized_freq_mhz,
                serial.top[i].realized_freq_mhz)
          << "jobs=" << jobs << " rank " << i;
    }
    EXPECT_EQ(parallel.stats.work_items, serial.stats.work_items)
        << "jobs=" << jobs;
  }
}

TEST(DseCancelTest, PartialResultIsPrefixOptimal) {
  // The cut result must equal a full sweep over a space that simply ends at
  // the cut — i.e. best-so-far, not an arbitrary subset. We verify the
  // invariant cheaply: every cut design also appears in the full sweep's
  // candidate dump.
  const LoopNest nest = build_conv_nest(alexnet_conv5());
  DseOptions options;
  options.min_dsp_util = 0.85;
  options.jobs = 1;
  DseStats full_stats;
  const DesignSpaceExplorer explorer(arria10_gt1150(), DataType::kFloat32,
                                     options);
  const std::vector<DseCandidate> all =
      explorer.enumerate_phase1(nest, &full_stats);
  ASSERT_FALSE(all.empty());

  DseOptions cut_options = options;
  cut_options.cancel = CancelToken::cancellable();
  cut_options.cancel.set_cut_at_item(full_stats.work_items / 2);
  const DseResult partial =
      DesignSpaceExplorer(arria10_gt1150(), DataType::kFloat32, cut_options)
          .explore(nest);
  for (const DseCandidate& got : partial.top) {
    bool found = false;
    for (const DseCandidate& candidate : all) {
      if (candidate.design == got.design) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "cancelled result contains a design the full sweep "
                          "never produced";
  }
}

TEST(UnifiedCancelTest, PreCancelledSelectionReportsCancelled) {
  const Network net = make_tiny_testnet();
  UnifiedOptions options;
  options.dse.min_dsp_util = 0.5;
  options.dse.max_rows = 8;
  options.dse.max_cols = 8;
  options.dse.max_vec = 8;
  options.shape_shortlist = 12;
  options.dse.jobs = 1;
  options.dse.cancel = CancelToken::with_deadline(Deadline::after_ms(0));
  const UnifiedDesign cancelled = select_unified_design(
      net, tiny_test_device(), DataType::kFloat32, options);
  EXPECT_TRUE(cancelled.cancelled);
  EXPECT_FALSE(cancelled.valid);
}

}  // namespace
}  // namespace sasynth
