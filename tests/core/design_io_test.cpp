#include "core/design_io.h"

#include <gtest/gtest.h>

#include "loopnest/conv_nest.h"
#include "nn/network.h"

namespace sasynth {
namespace {

class DesignIoTest : public ::testing::Test {
 protected:
  DesignIoTest() : nest_(build_conv_nest(alexnet_conv5())) {}

  DesignPoint sys1() const {
    return DesignPoint(
        nest_, SystolicMapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI},
        ArrayShape{11, 13, 8}, {4, 4, 1, 13, 3, 3});
  }

  LoopNest nest_;
};

TEST_F(DesignIoTest, RoundTrip) {
  const DesignPoint original = sys1();
  const std::string text = save_design_text(original);
  const DesignLoadResult loaded = load_design_text(text, nest_);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.design, original);
  EXPECT_EQ(loaded.design.signature(), original.signature());
}

TEST_F(DesignIoTest, FormatIsReadable) {
  const std::string text = save_design_text(sys1());
  EXPECT_NE(text.find("sasynth-design v1"), std::string::npos);
  EXPECT_NE(text.find("mapping row=0 col=2 vec=1"), std::string::npos);
  EXPECT_NE(text.find("shape 11 13 8"), std::string::npos);
  EXPECT_NE(text.find("middle 4 4 1 13 3 3"), std::string::npos);
}

TEST_F(DesignIoTest, ToleratesBlankLines) {
  std::string text = save_design_text(sys1());
  text = "\n\n" + text + "\n\n";
  EXPECT_TRUE(load_design_text(text, nest_).ok);
}

struct BadInput {
  const char* name;
  const char* text;
  const char* expect;
};

class DesignIoErrorTest : public ::testing::TestWithParam<BadInput> {};

TEST_P(DesignIoErrorTest, Rejected) {
  const LoopNest nest = build_conv_nest(alexnet_conv5());
  const DesignLoadResult result = load_design_text(GetParam().text, nest);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find(GetParam().expect), std::string::npos)
      << "actual: " << result.error;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DesignIoErrorTest,
    ::testing::Values(
        BadInput{"empty", "", "header"},
        BadInput{"bad_magic", "sasynth-design v9\n", "header"},
        BadInput{"missing_mapping", "sasynth-design v1\nshape 1 1 1\n",
                 "mapping"},
        BadInput{"mapping_oob",
                 "sasynth-design v1\nmapping row=9 col=2 vec=1\n"
                 "shape 2 2 2\nmiddle 1 1 1 1 1 1\n",
                 "out of range"},
        BadInput{"bad_shape",
                 "sasynth-design v1\nmapping row=0 col=2 vec=1\n"
                 "shape 0 2 2\nmiddle 1 1 1 1 1 1\n",
                 "shape"},
        BadInput{"middle_count",
                 "sasynth-design v1\nmapping row=0 col=2 vec=1\n"
                 "shape 2 2 2\nmiddle 1 1 1\n",
                 "count"},
        BadInput{"middle_zero",
                 "sasynth-design v1\nmapping row=0 col=2 vec=1\n"
                 "shape 2 2 2\nmiddle 1 0 1 1 1 1\n",
                 ">= 1"},
        BadInput{"oversized_block",
                 "sasynth-design v1\nmapping row=0 col=2 vec=1\n"
                 "shape 2 2 2\nmiddle 999 1 1 1 1 1\n",
                 "invalid design"}),
    [](const ::testing::TestParamInfo<BadInput>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace sasynth
