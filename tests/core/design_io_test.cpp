#include "core/design_io.h"

#include <gtest/gtest.h>

#include "loopnest/conv_nest.h"
#include "nn/network.h"

namespace sasynth {
namespace {

class DesignIoTest : public ::testing::Test {
 protected:
  DesignIoTest() : nest_(build_conv_nest(alexnet_conv5())) {}

  DesignPoint sys1() const {
    return DesignPoint(
        nest_, SystolicMapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI},
        ArrayShape{11, 13, 8}, {4, 4, 1, 13, 3, 3});
  }

  LoopNest nest_;
};

TEST_F(DesignIoTest, RoundTrip) {
  const DesignPoint original = sys1();
  const std::string text = save_design_text(original);
  const DesignLoadResult loaded = load_design_text(text, nest_);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.design, original);
  EXPECT_EQ(loaded.design.signature(), original.signature());
}

TEST_F(DesignIoTest, FormatIsReadable) {
  const std::string text = save_design_text(sys1());
  EXPECT_NE(text.find("sasynth-design v1"), std::string::npos);
  EXPECT_NE(text.find("mapping row=0 col=2 vec=1"), std::string::npos);
  EXPECT_NE(text.find("shape 11 13 8"), std::string::npos);
  EXPECT_NE(text.find("middle 4 4 1 13 3 3"), std::string::npos);
}

TEST_F(DesignIoTest, ToleratesBlankLines) {
  std::string text = save_design_text(sys1());
  text = "\n\n" + text + "\n\n";
  EXPECT_TRUE(load_design_text(text, nest_).ok);
}

// Every byte-prefix of a valid blob either loads the complete design or
// fails cleanly — never a crash, never a partially-populated design.
TEST_F(DesignIoTest, TruncationSweepNeverYieldsPartialDesign) {
  const DesignPoint original = sys1();
  const std::string text = save_design_text(original);
  for (std::size_t len = 0; len <= text.size(); ++len) {
    const DesignLoadResult result = load_design_text(text.substr(0, len), nest_);
    if (result.ok) {
      EXPECT_EQ(result.design, original) << "prefix length " << len;
    } else {
      EXPECT_FALSE(result.error.empty()) << "prefix length " << len;
    }
  }
  // The full blob (and the full blob minus the trailing newline) round-trip.
  EXPECT_TRUE(load_design_text(text, nest_).ok);
  EXPECT_TRUE(load_design_text(text.substr(0, text.size() - 1), nest_).ok);
}

TEST_F(DesignIoTest, WrongFieldOrderRejected) {
  // Same lines as a valid blob, shape/mapping swapped.
  const std::string text =
      "sasynth-design v1\n"
      "shape 11 13 8\n"
      "mapping row=0 col=2 vec=1\n"
      "middle 4 4 1 13 3 3\n";
  const DesignLoadResult result = load_design_text(text, nest_);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.error.empty());
}

TEST_F(DesignIoTest, ToleratesCarriageReturns) {
  std::string text = save_design_text(sys1());
  std::string crlf;
  for (char c : text) {
    if (c == '\n') crlf += '\r';
    crlf += c;
  }
  const DesignLoadResult result = load_design_text(crlf, nest_);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.design, sys1());
}

struct BadInput {
  const char* name;
  const char* text;
  const char* expect;
};

class DesignIoErrorTest : public ::testing::TestWithParam<BadInput> {};

TEST_P(DesignIoErrorTest, Rejected) {
  const LoopNest nest = build_conv_nest(alexnet_conv5());
  const DesignLoadResult result = load_design_text(GetParam().text, nest);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find(GetParam().expect), std::string::npos)
      << "actual: " << result.error;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DesignIoErrorTest,
    ::testing::Values(
        BadInput{"empty", "", "header"},
        BadInput{"bad_magic", "sasynth-design v9\n", "header"},
        BadInput{"missing_mapping", "sasynth-design v1\nshape 1 1 1\n",
                 "mapping"},
        BadInput{"mapping_oob",
                 "sasynth-design v1\nmapping row=9 col=2 vec=1\n"
                 "shape 2 2 2\nmiddle 1 1 1 1 1 1\n",
                 "out of range"},
        BadInput{"bad_shape",
                 "sasynth-design v1\nmapping row=0 col=2 vec=1\n"
                 "shape 0 2 2\nmiddle 1 1 1 1 1 1\n",
                 "shape"},
        BadInput{"middle_count",
                 "sasynth-design v1\nmapping row=0 col=2 vec=1\n"
                 "shape 2 2 2\nmiddle 1 1 1\n",
                 "count"},
        BadInput{"shape_garbage_token",
                 "sasynth-design v1\nmapping row=0 col=2 vec=1\n"
                 "shape 2x 2 2\nmiddle 1 1 1 1 1 1\n",
                 "integer"},
        BadInput{"shape_word",
                 "sasynth-design v1\nmapping row=0 col=2 vec=1\n"
                 "shape two 2 2\nmiddle 1 1 1 1 1 1\n",
                 "integer"},
        BadInput{"middle_garbage_token",
                 "sasynth-design v1\nmapping row=0 col=2 vec=1\n"
                 "shape 2 2 2\nmiddle 1 abc 1 1 1 1\n",
                 "integer"},
        BadInput{"middle_empty",
                 "sasynth-design v1\nmapping row=0 col=2 vec=1\n"
                 "shape 2 2 2\nmiddle\n",
                 "count"},
        BadInput{"mapping_garbage_role",
                 "sasynth-design v1\nmapping row=x col=2 vec=1\n"
                 "shape 2 2 2\nmiddle 1 1 1 1 1 1\n",
                 "mapping"},
        BadInput{"middle_zero",
                 "sasynth-design v1\nmapping row=0 col=2 vec=1\n"
                 "shape 2 2 2\nmiddle 1 0 1 1 1 1\n",
                 ">= 1"},
        BadInput{"oversized_block",
                 "sasynth-design v1\nmapping row=0 col=2 vec=1\n"
                 "shape 2 2 2\nmiddle 999 1 1 1 1 1\n",
                 "invalid design"}),
    [](const ::testing::TestParamInfo<BadInput>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace sasynth
