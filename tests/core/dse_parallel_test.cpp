// Regression coverage for the thread-pooled phase-1 sweep: the parallel
// explorer must be bit-identical to the serial one at any worker count
// (designs, order, estimates, and stat counters), and the auto-relax path
// must record what it did.
#include <gtest/gtest.h>

#include "core/dse.h"
#include "loopnest/conv_nest.h"
#include "nn/network.h"

namespace sasynth {
namespace {

void expect_counters_equal(const DseStats& a, const DseStats& b,
                           const char* label) {
  EXPECT_EQ(a.mappings_candidates, b.mappings_candidates) << label;
  EXPECT_EQ(a.mappings_feasible, b.mappings_feasible) << label;
  EXPECT_EQ(a.shapes_considered, b.shapes_considered) << label;
  EXPECT_EQ(a.shapes_after_prune, b.shapes_after_prune) << label;
  EXPECT_EQ(a.reuse_evaluated, b.reuse_evaluated) << label;
  EXPECT_EQ(a.reuse_space_pow2, b.reuse_space_pow2) << label;
  EXPECT_EQ(a.reuse_space_bruteforce, b.reuse_space_bruteforce) << label;
  EXPECT_EQ(a.work_items, b.work_items) << label;
  EXPECT_EQ(a.util_relaxations, b.util_relaxations) << label;
  EXPECT_DOUBLE_EQ(a.effective_min_dsp_util, b.effective_min_dsp_util)
      << label;
}

TEST(DseParallelTest, JobsSweepIsBitIdentical) {
  // AlexNet conv5 on Arria 10 — the paper's own phase-1 workload. jobs=1 is
  // the serial reference; 2 and 8 must reproduce it exactly (including with
  // more workers than this machine has cores).
  const LoopNest nest = build_conv_nest(alexnet_conv5());
  DseOptions options;
  options.min_dsp_util = 0.80;
  options.jobs = 1;
  const DesignSpaceExplorer serial(arria10_gt1150(), DataType::kFloat32,
                                   options);
  const DseResult reference = serial.explore(nest);
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(reference.stats.jobs_used, 1);
  EXPECT_GT(reference.stats.work_items, 0);
  EXPECT_GT(reference.stats.phase1_cpu_seconds, 0.0);

  for (const int jobs : {2, 8}) {
    options.jobs = jobs;
    const DesignSpaceExplorer parallel(arria10_gt1150(), DataType::kFloat32,
                                       options);
    const DseResult result = parallel.explore(nest);
    EXPECT_EQ(result.stats.jobs_used, jobs);
    ASSERT_EQ(result.top.size(), reference.top.size()) << "jobs=" << jobs;
    for (std::size_t i = 0; i < result.top.size(); ++i) {
      const DseCandidate& got = result.top[i];
      const DseCandidate& want = reference.top[i];
      EXPECT_EQ(got.design, want.design) << "jobs=" << jobs << " rank " << i;
      // Bitwise-equal estimates: same work items evaluated through the same
      // arithmetic, merged in the same order.
      EXPECT_EQ(got.estimate.throughput_gops, want.estimate.throughput_gops);
      EXPECT_EQ(got.estimate.eff, want.estimate.eff);
      EXPECT_EQ(got.resources.bram_blocks, want.resources.bram_blocks);
      EXPECT_EQ(got.realized_freq_mhz, want.realized_freq_mhz);
      EXPECT_EQ(got.realized.throughput_gops, want.realized.throughput_gops);
    }
    expect_counters_equal(result.stats, reference.stats,
                          jobs == 2 ? "jobs=2" : "jobs=8");
  }
}

TEST(DseParallelTest, Phase1FullDumpIdenticalAcrossJobs) {
  // The Fig. 7(a)-style full phase-1 dump (no top-K cut) must match too —
  // the merge covers every candidate, not just the head of the list.
  const LoopNest nest = build_conv_nest(alexnet_conv5());
  DseOptions options;
  options.min_dsp_util = 0.90;  // keep the dump small
  options.jobs = 1;
  DseStats stats1;
  const DesignSpaceExplorer serial(arria10_gt1150(), DataType::kFloat32,
                                   options);
  const std::vector<DseCandidate> ref = serial.enumerate_phase1(nest, &stats1);
  ASSERT_FALSE(ref.empty());

  options.jobs = 4;
  DseStats stats4;
  const DesignSpaceExplorer parallel(arria10_gt1150(), DataType::kFloat32,
                                     options);
  const std::vector<DseCandidate> got =
      parallel.enumerate_phase1(nest, &stats4);
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].design, ref[i].design) << "rank " << i;
    EXPECT_EQ(got[i].estimate.throughput_gops, ref[i].estimate.throughput_gops);
  }
  expect_counters_equal(stats4, stats1, "full dump");
}

TEST(DseParallelTest, AutoRelaxRecordsRelaxationInStats) {
  // A 2x2x2 layer can never reach 80% of an Arria 10's DSPs: c_s=0.80 finds
  // nothing, floor-halving must still produce a design, and the stats must
  // say how far the floor moved.
  const ConvLayerDesc layer = make_conv("wee", 2, 2, 2, 1);
  DseOptions options;
  options.min_dsp_util = 0.80;
  options.auto_relax_util = true;
  const DesignSpaceExplorer explorer(arria10_gt1150(), DataType::kFloat32,
                                     options);
  const DseResult result = explorer.explore_layer(layer);
  ASSERT_FALSE(result.empty());
  EXPECT_GT(result.stats.util_relaxations, 0);
  EXPECT_LT(result.stats.effective_min_dsp_util, 0.80);
  EXPECT_GE(result.stats.effective_min_dsp_util, 0.0);
  // The relaxation shows up in the human-readable summary as well.
  EXPECT_NE(result.stats.summary().find("relaxed"), std::string::npos);

  // Without relaxation nothing is found — and the stats say so.
  options.auto_relax_util = false;
  const DesignSpaceExplorer strict(arria10_gt1150(), DataType::kFloat32,
                                   options);
  const DseResult none = strict.explore_layer(layer);
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(none.stats.util_relaxations, 0);
  EXPECT_DOUBLE_EQ(none.stats.effective_min_dsp_util, 0.80);
}

TEST(DseParallelTest, AutoRelaxIdenticalAcrossJobs) {
  // The relaxation loop reruns phase 1 several times; the retry sequence
  // must also be jobs-invariant.
  const ConvLayerDesc layer = make_conv("wee", 2, 2, 2, 1);
  DseOptions options;
  options.min_dsp_util = 0.80;
  options.jobs = 1;
  const DseResult serial =
      DesignSpaceExplorer(arria10_gt1150(), DataType::kFloat32, options)
          .explore_layer(layer);
  options.jobs = 8;
  const DseResult parallel =
      DesignSpaceExplorer(arria10_gt1150(), DataType::kFloat32, options)
          .explore_layer(layer);
  ASSERT_FALSE(serial.empty());
  ASSERT_EQ(parallel.top.size(), serial.top.size());
  for (std::size_t i = 0; i < serial.top.size(); ++i) {
    EXPECT_EQ(parallel.top[i].design, serial.top[i].design);
    EXPECT_EQ(parallel.top[i].realized_freq_mhz,
              serial.top[i].realized_freq_mhz);
  }
  expect_counters_equal(parallel.stats, serial.stats, "auto-relax");
}

}  // namespace
}  // namespace sasynth
