#include "fpga/device.h"

#include <gtest/gtest.h>

namespace sasynth {
namespace {

TEST(Device, Arria10Gt1150MatchesPaper) {
  const FpgaDevice d = arria10_gt1150();
  // The paper's §5.2 headline: 1518 hardened floating-point DSPs; BRAM count
  // consistent with the 90% = 2455 blocks figure in Table 3.
  EXPECT_EQ(d.dsp_blocks, 1518);
  EXPECT_EQ(d.bram_blocks, 2713);
  EXPECT_EQ(d.bram_kbits, 20);
  EXPECT_NEAR(d.bw_total_gbs, 19.2, 0.5);  // "19 GB/s bandwidth" in §2.3
  EXPECT_GT(d.logic_cells, 400000);
}

TEST(Device, BramBytes) {
  EXPECT_EQ(arria10_gt1150().bram_bytes(), 20 * 1024 / 8);
  EXPECT_EQ(xilinx_ku060().bram_bytes(), 18 * 1024 / 8);
}

TEST(Device, AllPresetsAreSane) {
  for (const FpgaDevice& d :
       {arria10_gt1150(), arria10_gx1150(), xilinx_ku060(), xilinx_vc709(),
        stratix_v(), tiny_test_device()}) {
    EXPECT_FALSE(d.name.empty());
    EXPECT_GT(d.dsp_blocks, 0) << d.name;
    EXPECT_GT(d.bram_blocks, 0) << d.name;
    EXPECT_GT(d.logic_cells, 0) << d.name;
    EXPECT_GT(d.bw_total_gbs, 0.0) << d.name;
    EXPECT_GE(d.bw_total_gbs, d.bw_port_gbs) << d.name;
    EXPECT_GT(d.fmax_mhz, 100.0) << d.name;
    EXPECT_GE(d.bram_per_pe, 0.0) << d.name;
  }
}

TEST(Device, TinyDeviceIsSmall) {
  const FpgaDevice tiny = tiny_test_device();
  EXPECT_LT(tiny.dsp_blocks, 100);
  EXPECT_LT(tiny.bram_blocks, 256);
}

TEST(Device, ParseDeviceNameAcceptsAllPresets) {
  const struct {
    const char* name;
    const char* expect;
  } cases[] = {
      {"arria10_gt1150", "Arria10 GT1150"}, {"gt1150", "Arria10 GT1150"},
      {"arria10_gx1150", "Arria10 GX1150"}, {"gx1150", "Arria10 GX1150"},
      {"ku060", "Xilinx KU060"},            {"vc709", "Xilinx VC709"},
      {"stratixv", "Stratix-V GSD8"},       {"tiny", "TinyTestDevice"},
      {"TINY", "TinyTestDevice"},  // case-insensitive
  };
  for (const auto& c : cases) {
    FpgaDevice device;
    ASSERT_TRUE(parse_device_name(c.name, &device)) << c.name;
    EXPECT_EQ(device.name, c.expect) << c.name;
  }
  FpgaDevice device;
  EXPECT_FALSE(parse_device_name("not_a_device", &device));
  EXPECT_FALSE(parse_device_name("", &device));
}

TEST(Device, DeviceNameListMentionsEveryPreset) {
  const std::string list = device_name_list();
  for (const char* name : {"arria10_gt1150", "arria10_gx1150", "ku060",
                           "vc709", "stratixv", "tiny"}) {
    EXPECT_NE(list.find(name), std::string::npos) << name;
  }
}

TEST(Device, SummaryMentionsKeyNumbers) {
  const std::string s = arria10_gt1150().summary();
  EXPECT_NE(s.find("1518"), std::string::npos);
  EXPECT_NE(s.find("2713"), std::string::npos);
  EXPECT_NE(s.find("19.2"), std::string::npos);
}

}  // namespace
}  // namespace sasynth
