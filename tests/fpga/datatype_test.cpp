#include "fpga/datatype.h"

#include <gtest/gtest.h>

namespace sasynth {
namespace {

TEST(DataType, Float32Info) {
  const DataTypeInfo& info = data_type_info(DataType::kFloat32);
  EXPECT_EQ(info.weight_bits, 32);
  EXPECT_EQ(info.pixel_bits, 32);
  EXPECT_DOUBLE_EQ(info.macs_per_dsp_block, 1.0);
  EXPECT_DOUBLE_EQ(info.weight_bytes(), 4.0);
  EXPECT_DOUBLE_EQ(info.pixel_bytes(), 4.0);
}

TEST(DataType, Fixed816Info) {
  const DataTypeInfo& info = data_type_info(DataType::kFixed8_16);
  EXPECT_EQ(info.weight_bits, 8);
  EXPECT_EQ(info.pixel_bits, 16);
  EXPECT_EQ(info.accum_bits, 32);
  EXPECT_DOUBLE_EQ(info.macs_per_dsp_block, 2.0);
  EXPECT_DOUBLE_EQ(info.weight_bytes(), 1.0);
  EXPECT_DOUBLE_EQ(info.pixel_bytes(), 2.0);
}

TEST(DataType, Names) {
  EXPECT_EQ(data_type_name(DataType::kFloat32), "float32");
  EXPECT_EQ(data_type_name(DataType::kFixed8_16), "fixed8_16");
}

TEST(DataType, Parse) {
  DataType t;
  EXPECT_TRUE(parse_data_type("float32", &t));
  EXPECT_EQ(t, DataType::kFloat32);
  EXPECT_TRUE(parse_data_type("fp32", &t));
  EXPECT_EQ(t, DataType::kFloat32);
  EXPECT_TRUE(parse_data_type("fixed", &t));
  EXPECT_EQ(t, DataType::kFixed8_16);
  EXPECT_FALSE(parse_data_type("bf16", &t));
}

TEST(DataType, DspBlocksForMacs) {
  EXPECT_EQ(dsp_blocks_for_macs(DataType::kFloat32, 1144), 1144);
  // Fixed: two MACs per block, odd counts round up.
  EXPECT_EQ(dsp_blocks_for_macs(DataType::kFixed8_16, 1500), 750);
  EXPECT_EQ(dsp_blocks_for_macs(DataType::kFixed8_16, 1501), 751);
  EXPECT_EQ(dsp_blocks_for_macs(DataType::kFloat32, 0), 0);
}

TEST(DataType, MacCapacity) {
  // Arria 10 GT1150: 1518 blocks -> 1518 fp32 MACs or 3036 fixed MACs.
  EXPECT_EQ(mac_capacity(DataType::kFloat32, 1518), 1518);
  EXPECT_EQ(mac_capacity(DataType::kFixed8_16, 1518), 3036);
}

TEST(DataType, CapacityRoundTrip) {
  for (const DataType t : {DataType::kFloat32, DataType::kFixed8_16}) {
    const std::int64_t cap = mac_capacity(t, 100);
    EXPECT_LE(dsp_blocks_for_macs(t, cap), 100);
    EXPECT_GT(dsp_blocks_for_macs(t, cap + 1), 100);
  }
}

}  // namespace
}  // namespace sasynth
