#include "fpga/synth.h"

#include <gtest/gtest.h>

namespace sasynth {
namespace {

SynthInput paper_alexnet_design() {
  // The paper's AlexNet design: (11,14,8) fp32, BRAM ~45% of 2713.
  SynthInput input;
  input.pe_rows = 11;
  input.pe_cols = 14;
  input.simd_vec = 8;
  input.bram_blocks = 1220;
  input.dtype = DataType::kFloat32;
  return input;
}

TEST(Synth, LaneAndPeCounts) {
  const SynthInput input = paper_alexnet_design();
  EXPECT_EQ(input.num_pes(), 154);
  EXPECT_EQ(input.num_lanes(), 1232);
}

TEST(Synth, DspBlocksFollowDataType) {
  SynthInput input = paper_alexnet_design();
  const FpgaDevice device = arria10_gt1150();
  ResourceReport fp = estimate_resources(input, device);
  EXPECT_EQ(fp.dsp_blocks, 1232);
  input.dtype = DataType::kFixed8_16;
  ResourceReport fx = estimate_resources(input, device);
  EXPECT_EQ(fx.dsp_blocks, 616);
}

TEST(Synth, UtilizationFractions) {
  const FpgaDevice device = arria10_gt1150();
  const ResourceReport report =
      estimate_resources(paper_alexnet_design(), device);
  EXPECT_NEAR(report.dsp_util, 1232.0 / 1518.0, 1e-9);
  EXPECT_NEAR(report.bram_util, 1220.0 / 2713.0, 1e-9);
  // The paper reports 57% ALM for this design; our soft-logic calibration
  // should land in the same region (40-80%).
  EXPECT_GT(report.logic_util, 0.40);
  EXPECT_LT(report.logic_util, 0.80);
  EXPECT_TRUE(report.fits());
}

TEST(Synth, LogicGrowsWithArraySize) {
  const FpgaDevice device = arria10_gt1150();
  SynthInput small = paper_alexnet_design();
  SynthInput large = paper_alexnet_design();
  large.pe_rows = 20;
  large.pe_cols = 20;
  const ResourceReport rs = estimate_resources(small, device);
  const ResourceReport rl = estimate_resources(large, device);
  EXPECT_GT(rl.luts, rs.luts);
  EXPECT_GT(rl.ffs, rs.ffs);
}

TEST(Synth, FixedLanesCheaperThanFloat) {
  const FpgaDevice device = arria10_gt1150();
  SynthInput fp = paper_alexnet_design();
  SynthInput fx = paper_alexnet_design();
  fx.dtype = DataType::kFixed8_16;
  EXPECT_LT(estimate_resources(fx, device).luts,
            estimate_resources(fp, device).luts);
}

TEST(Synth, DeviceAwareMacAccounting) {
  // Arria 10's hardened FP DSPs: one fp32 MAC per block; Xilinx DSP48
  // slices need several per fp32 MAC but do one 16-bit MAC each.
  EXPECT_EQ(device_mac_capacity(arria10_gt1150(), DataType::kFloat32), 1518);
  EXPECT_EQ(device_mac_capacity(arria10_gt1150(), DataType::kFixed8_16), 3036);
  EXPECT_EQ(device_mac_capacity(xilinx_ku060(), DataType::kFloat32), 1104);
  EXPECT_EQ(device_mac_capacity(xilinx_ku060(), DataType::kFixed8_16), 2760);
  EXPECT_EQ(device_dsp_blocks_for_macs(xilinx_ku060(), DataType::kFloat32, 100),
            250);
  EXPECT_EQ(
      device_dsp_blocks_for_macs(arria10_gt1150(), DataType::kFixed8_16, 101),
      51);
}

TEST(Synth, OverflowDetected) {
  const FpgaDevice device = tiny_test_device();
  SynthInput input = paper_alexnet_design();  // far too big for the tiny part
  const ResourceReport report = estimate_resources(input, device);
  EXPECT_FALSE(report.fits());
  EXPECT_GT(report.dsp_util, 1.0);
}

TEST(Synth, SummaryFormat) {
  const ResourceReport report =
      estimate_resources(paper_alexnet_design(), arria10_gt1150());
  const std::string s = report.summary();
  EXPECT_NE(s.find("DSP 1232"), std::string::npos);
  EXPECT_NE(s.find("BRAM 1220"), std::string::npos);
}

}  // namespace
}  // namespace sasynth
