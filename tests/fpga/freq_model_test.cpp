#include "fpga/freq_model.h"

#include <gtest/gtest.h>

namespace sasynth {
namespace {

ResourceReport report_with_utils(double dsp, double bram, double logic) {
  ResourceReport r;
  r.dsp_util = dsp;
  r.bram_util = bram;
  r.logic_util = logic;
  r.ff_util = logic / 2.0;
  return r;
}

TEST(FreqModel, LowUtilizationRunsAtFmax) {
  const FpgaDevice device = arria10_gt1150();
  const double f =
      frequency_trend_mhz(device, report_with_utils(0.1, 0.1, 0.1));
  EXPECT_DOUBLE_EQ(f, device.fmax_mhz);
}

TEST(FreqModel, HighUtilizationDerates) {
  const FpgaDevice device = arria10_gt1150();
  const double low =
      frequency_trend_mhz(device, report_with_utils(0.5, 0.5, 0.5));
  const double high =
      frequency_trend_mhz(device, report_with_utils(0.95, 0.9, 0.85));
  EXPECT_LT(high, low);
  EXPECT_GT(high, device.fmax_mhz * 0.5);  // systolic scalability: no cliff
}

TEST(FreqModel, MonotoneInEachUtilization) {
  const FpgaDevice device = arria10_gt1150();
  double prev = 1e9;
  for (double u = 0.0; u <= 1.0; u += 0.05) {
    const double f =
        frequency_trend_mhz(device, report_with_utils(u, 0.5, 0.5));
    EXPECT_LE(f, prev + 1e-9);
    prev = f;
  }
}

TEST(FreqModel, JitterIsDeterministicPerDesign) {
  const FpgaDevice device = arria10_gt1150();
  const ResourceReport r = report_with_utils(0.8, 0.6, 0.6);
  const double f1 = pseudo_pnr_frequency_mhz(device, r, "designA");
  const double f2 = pseudo_pnr_frequency_mhz(device, r, "designA");
  EXPECT_DOUBLE_EQ(f1, f2);
}

TEST(FreqModel, DifferentDesignsGetDifferentClocks) {
  // The paper's phase-2 rationale: same estimated throughput, different
  // realized frequency. Our jitter reproduces that scatter.
  const FpgaDevice device = arria10_gt1150();
  const ResourceReport r = report_with_utils(0.8, 0.6, 0.6);
  const double fa = pseudo_pnr_frequency_mhz(device, r, "designA");
  const double fb = pseudo_pnr_frequency_mhz(device, r, "designB");
  EXPECT_NE(fa, fb);
}

TEST(FreqModel, JitterBounded) {
  const FpgaDevice device = arria10_gt1150();
  const ResourceReport r = report_with_utils(0.8, 0.6, 0.6);
  const double trend = frequency_trend_mhz(device, r);
  FreqModelParams params;
  for (int i = 0; i < 50; ++i) {
    const double f = pseudo_pnr_frequency_mhz(device, r,
                                              "design" + std::to_string(i));
    EXPECT_GE(f, trend * (1.0 - params.jitter_span / 2.0) - 1e-9);
    EXPECT_LE(f, trend * (1.0 + params.jitter_span / 2.0) + 1e-9);
  }
}

TEST(FreqModel, PaperDesignsLandNearPublishedClocks) {
  // The paper's unified designs close timing at 270.8 (AlexNet fp32) and
  // 252.6 MHz (VGG fp32) at ~81% DSP. Our calibrated model must put designs
  // of that utilization in the 230-300 MHz band.
  const FpgaDevice device = arria10_gt1150();
  const ResourceReport r = report_with_utils(0.81, 0.46, 0.58);
  const double f = pseudo_pnr_frequency_mhz(device, r, "alexnet_unified");
  EXPECT_GT(f, 230.0);
  EXPECT_LT(f, 300.0);
}

TEST(FreqModel, BroadcastCollapsesWithScale) {
  // The §1-2 motivation: the broadcast clock decreases monotonically with PE
  // count and falls below half of fmax near a thousand lanes, while the
  // systolic trend stays flat for the same utilization.
  const FpgaDevice device = arria10_gt1150();
  double prev = 1e9;
  for (const std::int64_t pes : {8LL, 64LL, 256LL, 1024LL, 2048LL}) {
    const double f = broadcast_frequency_mhz(device, pes);
    EXPECT_LT(f, prev);
    prev = f;
  }
  EXPECT_GT(broadcast_frequency_mhz(device, 8), 0.85 * device.fmax_mhz);
  EXPECT_LT(broadcast_frequency_mhz(device, 1024), 0.5 * device.fmax_mhz);
  // Systolic comparison point at high utilization.
  const double systolic =
      frequency_trend_mhz(device, report_with_utils(0.8, 0.5, 0.6));
  EXPECT_GT(systolic, 2.0 * broadcast_frequency_mhz(device, 1024));
}

TEST(FreqModel, DerateFloor) {
  // Even absurd utilization never collapses below a quarter of fmax per term.
  const FpgaDevice device = arria10_gt1150();
  const double f =
      frequency_trend_mhz(device, report_with_utils(3.0, 3.0, 3.0));
  EXPECT_GT(f, 0.0);
}

}  // namespace
}  // namespace sasynth
