// MetricsRegistry semantics: exact totals under thread hammering, gated
// no-ops when disabled, percentile interpolation, and handle stability.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace sasynth::obs {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { set_metrics_enabled(true); }
  void TearDown() override { set_metrics_enabled(false); }
};

TEST_F(MetricsTest, CounterHammerHasExactTotal) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("hammer_total");
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIters; ++i) counter.add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(), static_cast<std::int64_t>(kThreads) * kIters);
}

TEST_F(MetricsTest, HistogramHammerHasExactCountAndBuckets) {
  MetricsRegistry registry;
  Histogram& hist = registry.histogram("lat_ms", {1.0, 10.0});
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist] {
      for (int i = 0; i < kIters; ++i) {
        hist.observe(0.5);   // bucket le=1
        hist.observe(5.0);   // bucket le=10
        hist.observe(99.0);  // overflow
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const std::int64_t per_bucket = static_cast<std::int64_t>(kThreads) * kIters;
  EXPECT_EQ(hist.count(), 3 * per_bucket);
  EXPECT_EQ(hist.bucket_count(0), per_bucket);
  EXPECT_EQ(hist.bucket_count(1), per_bucket);
  EXPECT_EQ(hist.bucket_count(2), per_bucket);
  EXPECT_DOUBLE_EQ(hist.sum(),
                   static_cast<double>(per_bucket) * (0.5 + 5.0 + 99.0));
}

TEST_F(MetricsTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge& gauge = registry.gauge("depth");
  gauge.set(7);
  EXPECT_EQ(gauge.value(), 7);
  gauge.add(-3);
  EXPECT_EQ(gauge.value(), 4);
  gauge.reset();
  EXPECT_EQ(gauge.value(), 0);
}

TEST_F(MetricsTest, DisabledPathIsANoOp) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("gated_total");
  Gauge& gauge = registry.gauge("gated_depth");
  Histogram& hist = registry.histogram("gated_ms", {1.0});
  set_metrics_enabled(false);
  counter.add(5);
  gauge.set(5);
  hist.observe(0.5);
  EXPECT_EQ(counter.value(), 0);
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_EQ(hist.count(), 0);
  set_metrics_enabled(true);
  counter.add(5);
  EXPECT_EQ(counter.value(), 5);
}

TEST_F(MetricsTest, SameNameReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.counter("shared_total");
  Counter& b = registry.counter("shared_total");
  EXPECT_EQ(&a, &b);
  a.add(1);
  b.add(1);
  EXPECT_EQ(a.value(), 2);
}

TEST_F(MetricsTest, PercentileInterpolatesWithinBucket) {
  MetricsRegistry registry;
  Histogram& hist = registry.histogram("interp_ms", {1.0, 2.0, 3.0});
  for (int i = 0; i < 10; ++i) hist.observe(0.5);  // all in [0, 1)
  // rank = 0.5 * 10 + 0.5 = 5 -> 5/10 through the [0, 1) bucket.
  EXPECT_DOUBLE_EQ(hist.percentile(0.50), 0.5);
  // Overflow-only distribution reports the last finite bound.
  Histogram& over = registry.histogram("over_ms", {1.0, 2.0});
  over.observe(100.0);
  EXPECT_DOUBLE_EQ(over.percentile(0.99), 2.0);
  // Empty histogram reports 0.
  Histogram& empty = registry.histogram("empty_ms", {1.0});
  EXPECT_DOUBLE_EQ(empty.percentile(0.99), 0.0);
}

TEST_F(MetricsTest, DefaultBucketsCoverMicrosecondsToMinute) {
  const std::vector<double>& buckets = latency_buckets_ms();
  ASSERT_FALSE(buckets.empty());
  EXPECT_DOUBLE_EQ(buckets.front(), 0.001);  // 1 us
  EXPECT_DOUBLE_EQ(buckets.back(), 6e4);     // 60 s
  for (std::size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_LT(buckets[i - 1], buckets[i]);
  }
}

TEST_F(MetricsTest, ResetValuesClearsEveryInstrument) {
  MetricsRegistry registry;
  registry.counter("c_total").add(3);
  registry.gauge("g").set(3);
  registry.histogram("h_ms", {1.0}).observe(0.5);
  registry.reset_values();
  EXPECT_EQ(registry.counter("c_total").value(), 0);
  EXPECT_EQ(registry.gauge("g").value(), 0);
  EXPECT_EQ(registry.histogram("h_ms").count(), 0);
}

TEST_F(MetricsTest, ConcurrentRegistrationIsSafe) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 100; ++i) {
        registry.counter("race_" + std::to_string(i % 7)).add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  std::int64_t total = 0;
  for (int i = 0; i < 7; ++i) {
    total += registry.counter("race_" + std::to_string(i)).value();
  }
  EXPECT_EQ(total, kThreads * 100);
}

}  // namespace
}  // namespace sasynth::obs
