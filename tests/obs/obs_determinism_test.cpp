// PR 3 acceptance: observability must never feed back into the search. The
// DSE's explored designs are byte-identical with metrics + tracing on or
// off, serial or parallel, and the registry deltas published by a run agree
// with the DseStats the run hands back.
#include <gtest/gtest.h>

#include <string>

#include "core/dse.h"
#include "fpga/device.h"
#include "loopnest/conv_nest.h"
#include "nn/layer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/strings.h"

namespace sasynth {
namespace {

LoopNest test_nest() {
  ConvLayerDesc layer;
  layer.name = "obs_test";
  layer.in_maps = 16;
  layer.out_maps = 16;
  layer.out_rows = 8;
  layer.out_cols = 8;
  layer.kernel = 3;
  return build_conv_nest(layer);
}

DseResult run_dse(const LoopNest& nest, int jobs) {
  DseOptions options;
  options.jobs = jobs;
  options.min_dsp_util = 0.5;
  const DesignSpaceExplorer explorer(tiny_test_device(), DataType::kFloat32,
                                     options);
  return explorer.explore(nest);
}

/// Round-trip-precision serialization of every explored design.
std::string signature(const LoopNest& nest, const DseResult& result) {
  std::string sig;
  for (const DseCandidate& c : result.top) {
    sig += c.design.to_string(nest);
    sig += strformat(" est=%.17g realized=%.17g freq=%.17g\n",
                     c.estimated_gops(), c.realized_gops(),
                     c.realized_freq_mhz);
  }
  return sig;
}

class ObsDeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override {
    obs::set_metrics_enabled(false);
    obs::set_trace_enabled(false);
  }
};

TEST_F(ObsDeterminismTest, ResultsIdenticalWithObservabilityOnOrOff) {
  const LoopNest nest = test_nest();
  obs::set_metrics_enabled(false);
  obs::set_trace_enabled(false);
  const std::string off_j1 = signature(nest, run_dse(nest, 1));
  const std::string off_j4 = signature(nest, run_dse(nest, 4));
  obs::set_metrics_enabled(true);
  obs::set_trace_enabled(true);
  const std::string on_j1 = signature(nest, run_dse(nest, 1));
  const std::string on_j4 = signature(nest, run_dse(nest, 4));
  ASSERT_FALSE(off_j1.empty());
  EXPECT_EQ(off_j1, on_j1);
  EXPECT_EQ(off_j4, on_j4);
  EXPECT_EQ(off_j1, off_j4);  // the PR 1 any-jobs invariant still holds
}

TEST_F(ObsDeterminismTest, RegistryDeltasMatchDseStats) {
  const LoopNest nest = test_nest();
  obs::set_metrics_enabled(true);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  // The registry is process-global and other tests in this binary may have
  // published into it, so compare before/after deltas, not absolute values.
  const std::int64_t runs_before =
      registry.counter("dse_explorations_total").value();
  const std::int64_t work_before =
      registry.counter("dse_work_items_total").value();
  const std::int64_t reuse_before =
      registry.counter("dse_reuse_evaluated_total").value();
  const std::int64_t cand_before =
      registry.counter("dse_candidates_total").value();

  const DseResult result = run_dse(nest, 2);
  ASSERT_FALSE(result.empty());

  EXPECT_EQ(registry.counter("dse_explorations_total").value() - runs_before,
            1);
  EXPECT_EQ(registry.counter("dse_work_items_total").value() - work_before,
            result.stats.work_items);
  EXPECT_EQ(registry.counter("dse_reuse_evaluated_total").value() -
                reuse_before,
            result.stats.reuse_evaluated);
  // Phase 1 publishes its candidate count before the top-K cut, so the delta
  // is at least the surviving top set.
  EXPECT_GE(registry.counter("dse_candidates_total").value() - cand_before,
            static_cast<std::int64_t>(result.top.size()));
}

TEST_F(ObsDeterminismTest, TraceSpansCoverTheExploration) {
  const LoopNest nest = test_nest();
  obs::TraceRecorder::global().clear();
  obs::set_metrics_enabled(true);
  obs::set_trace_enabled(true);
  const DseResult result = run_dse(nest, 2);
  ASSERT_FALSE(result.empty());
  obs::set_trace_enabled(false);

  bool saw_phase1 = false;
  bool saw_shard = false;
  bool saw_phase2 = false;
  for (const obs::TraceEvent& e : obs::TraceRecorder::global().snapshot()) {
    if (e.name == "dse.phase1") saw_phase1 = true;
    if (e.name == "dse.phase1.shard") saw_shard = true;
    if (e.name == "dse.phase2") saw_phase2 = true;
  }
  EXPECT_TRUE(saw_phase1);
  EXPECT_TRUE(saw_shard);
  EXPECT_TRUE(saw_phase2);
  obs::TraceRecorder::global().clear();
}

}  // namespace
}  // namespace sasynth
