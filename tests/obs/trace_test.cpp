// TraceRecorder/ScopedSpan semantics: nesting by time containment,
// completion-order recording, bounded buffers, and disabled-path behavior.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace sasynth::obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::global().clear();
    set_trace_enabled(true);
  }
  void TearDown() override {
    set_trace_enabled(false);
    TraceRecorder::global().clear();
  }
};

TEST_F(TraceTest, NestedSpansRecordInnerFirstAndContained) {
  // Each event's ts is reconstructed as end - dur from two clock reads, so
  // zero-length spans can jitter by fractions of a microsecond. Millisecond
  // sleeps make the expected ordering dominate that noise.
  constexpr auto kTick = std::chrono::milliseconds(2);
  {
    ScopedSpan outer("outer", "test");
    std::this_thread::sleep_for(kTick);
    {
      ScopedSpan inner("inner", "test");
      std::this_thread::sleep_for(kTick);
    }
    std::this_thread::sleep_for(kTick);
  }
  const std::vector<TraceEvent> events = TraceRecorder::global().snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Complete events are emitted at destruction: inner closes first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[0].tid, events[1].tid);
  // Time containment is what makes the Chrome viewer nest them.
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_LE(outer.ts_us, inner.ts_us);
  EXPECT_GE(outer.ts_us + outer.dur_us, inner.ts_us + inner.dur_us);
}

TEST_F(TraceTest, SpanArgsAreAttached) {
  {
    ScopedSpan span("with_args", "test");
    span.arg("items", 42);
    span.arg("worker", 3);
  }
  const std::vector<TraceEvent> events = TraceRecorder::global().snapshot();
  ASSERT_EQ(events.size(), 1u);
  ASSERT_EQ(events[0].args.size(), 2u);
  EXPECT_EQ(events[0].args[0].first, "items");
  EXPECT_EQ(events[0].args[0].second, 42);
  EXPECT_EQ(events[0].args[1].first, "worker");
  EXPECT_EQ(events[0].args[1].second, 3);
}

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  set_trace_enabled(false);
  {
    ScopedSpan span("ghost", "test");
    span.arg("ignored", 1);
  }
  EXPECT_EQ(TraceRecorder::global().size(), 0u);
}

TEST_F(TraceTest, ElapsedSecondsWorksWithTracingDisabled) {
  set_trace_enabled(false);
  ScopedSpan span("timer_only", "test");
  const double a = span.elapsed_seconds();
  const double b = span.elapsed_seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);  // monotone
}

TEST_F(TraceTest, BoundedBufferCountsDrops) {
  TraceRecorder recorder(2);
  for (int i = 0; i < 5; ++i) {
    TraceEvent event;
    event.name = "event";
    recorder.record(std::move(event));
  }
  EXPECT_EQ(recorder.size(), 2u);
  EXPECT_EQ(recorder.dropped(), 3);
  recorder.clear();
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_EQ(recorder.dropped(), 0);
}

TEST_F(TraceTest, ThreadsGetDistinctStableIds) {
  const int main_id = TraceRecorder::thread_id();
  EXPECT_EQ(TraceRecorder::thread_id(), main_id);  // stable per thread
  int other_id = main_id;
  std::thread t([&other_id] { other_id = TraceRecorder::thread_id(); });
  t.join();
  EXPECT_NE(other_id, main_id);
}

TEST_F(TraceTest, ConcurrentSpansAllRecorded) {
  constexpr int kThreads = 8;
  constexpr int kSpans = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpans; ++i) {
        ScopedSpan span("worker_span", "test");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(TraceRecorder::global().size(),
            static_cast<std::size_t>(kThreads) * kSpans);
}

}  // namespace
}  // namespace sasynth::obs
