// Golden-file tests pinning the three serialized observability formats:
// Prometheus text exposition, the JSON stats document, and Chrome
// trace_event JSON. External consumers (scrapers, the CI doc-drift check,
// Perfetto) parse these byte-for-byte, so any change here is a contract
// change and must be deliberate.
#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sasynth::obs {
namespace {

class ObsSerializationTest : public ::testing::Test {
 protected:
  void SetUp() override { set_metrics_enabled(true); }
  void TearDown() override { set_metrics_enabled(false); }
};

/// One of each instrument with small hand-checkable values.
void populate(MetricsRegistry* registry) {
  registry->counter("requests_total").add(3);
  registry->gauge("queue_depth").set(2);
  Histogram& hist = registry->histogram("latency_ms", {1.0, 5.0});
  hist.observe(0.5);   // bucket le=1
  hist.observe(2.0);   // bucket le=5
  hist.observe(50.0);  // overflow
}

TEST_F(ObsSerializationTest, PromGolden) {
  MetricsRegistry registry;
  populate(&registry);
  EXPECT_EQ(registry.to_prom(),
            "# TYPE sasynth_requests_total counter\n"
            "sasynth_requests_total 3\n"
            "# TYPE sasynth_queue_depth gauge\n"
            "sasynth_queue_depth 2\n"
            "# TYPE sasynth_latency_ms histogram\n"
            "sasynth_latency_ms_bucket{le=\"1\"} 1\n"
            "sasynth_latency_ms_bucket{le=\"5\"} 2\n"
            "sasynth_latency_ms_bucket{le=\"+Inf\"} 3\n"
            "sasynth_latency_ms_sum 52.5\n"
            "sasynth_latency_ms_count 3\n");
}

TEST_F(ObsSerializationTest, PromPrefixAndEmptyRegistry) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.to_prom(), "");
  registry.counter("hits_total").add(1);
  EXPECT_EQ(registry.to_prom("cache_"),
            "# TYPE cache_hits_total counter\n"
            "cache_hits_total 1\n");
}

TEST_F(ObsSerializationTest, PromSortsByName) {
  MetricsRegistry registry;
  registry.counter("zeta_total").add(1);
  registry.counter("alpha_total").add(2);
  EXPECT_EQ(registry.to_prom(),
            "# TYPE sasynth_alpha_total counter\n"
            "sasynth_alpha_total 2\n"
            "# TYPE sasynth_zeta_total counter\n"
            "sasynth_zeta_total 1\n");
}

TEST_F(ObsSerializationTest, JsonGolden) {
  MetricsRegistry registry;
  populate(&registry);
  // Percentiles for {0.5, 2, 50} over bounds {1, 5}: every rank lands in or
  // past the le=5 bucket, so p50/p95/p99 all report 5.
  EXPECT_EQ(
      registry.to_json(),
      "{\n"
      "  \"counters\": {\n"
      "    \"requests_total\": 3\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"queue_depth\": 2\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"latency_ms\": {\"count\": 3, \"sum\": 52.5, \"p50\": 5, "
      "\"p95\": 5, \"p99\": 5, \"buckets\": [{\"le\": 1, \"count\": 1}, "
      "{\"le\": 5, \"count\": 1}, {\"le\": \"+Inf\", \"count\": 1}]}\n"
      "  }\n"
      "}\n");
}

TEST_F(ObsSerializationTest, JsonEmptyRegistry) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.to_json(),
            "{\n"
            "  \"counters\": {},\n"
            "  \"gauges\": {},\n"
            "  \"histograms\": {}\n"
            "}\n");
}

TEST_F(ObsSerializationTest, JsonEscapesNames) {
  MetricsRegistry registry;
  registry.counter("we\"ird\\name").add(1);
  EXPECT_EQ(registry.to_json(),
            "{\n"
            "  \"counters\": {\n"
            "    \"we\\\"ird\\\\name\": 1\n"
            "  },\n"
            "  \"gauges\": {},\n"
            "  \"histograms\": {}\n"
            "}\n");
}

TEST_F(ObsSerializationTest, ChromeTraceGolden) {
  TraceRecorder recorder;
  TraceEvent event;
  event.name = "phase";
  event.category = "dse";
  event.tid = 0;
  event.ts_us = 100.0;
  event.dur_us = 50.0;
  event.args.emplace_back("items", 3);
  recorder.record(std::move(event));
  EXPECT_EQ(recorder.to_chrome_trace(),
            "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n"
            "  {\"name\": \"phase\", \"cat\": \"dse\", \"ph\": \"X\", "
            "\"pid\": 1, \"tid\": 0, \"ts\": 100.000, \"dur\": 50.000, "
            "\"args\": {\"items\": 3}}\n"
            "]}\n");
}

TEST_F(ObsSerializationTest, ChromeTraceMultipleEventsAndNoArgs) {
  TraceRecorder recorder;
  TraceEvent first;
  first.name = "a\"b";  // quote must be escaped
  first.category = "dse";
  first.tid = 0;
  first.ts_us = 100.0;
  first.dur_us = 50.0;
  recorder.record(std::move(first));
  TraceEvent second;
  second.name = "io";
  second.category = "serve";
  second.tid = 1;
  second.ts_us = 200.5;
  second.dur_us = 1.25;
  recorder.record(std::move(second));
  EXPECT_EQ(recorder.to_chrome_trace(),
            "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n"
            "  {\"name\": \"a\\\"b\", \"cat\": \"dse\", \"ph\": \"X\", "
            "\"pid\": 1, \"tid\": 0, \"ts\": 100.000, \"dur\": 50.000},\n"
            "  {\"name\": \"io\", \"cat\": \"serve\", \"ph\": \"X\", "
            "\"pid\": 1, \"tid\": 1, \"ts\": 200.500, \"dur\": 1.250}\n"
            "]}\n");
}

TEST_F(ObsSerializationTest, ChromeTraceEmpty) {
  TraceRecorder recorder;
  EXPECT_EQ(recorder.to_chrome_trace(),
            "{\"displayTimeUnit\": \"ms\", \"traceEvents\": []}\n");
}

}  // namespace
}  // namespace sasynth::obs
