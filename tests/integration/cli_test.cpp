// End-to-end tests of the sasynth_cli binary (run via the shell; tests are
// skipped if the binary is not where the build puts it).
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace sasynth {
namespace {

const char* const kCliPath = "../tools/sasynth_cli";

bool cli_available() {
  std::ifstream f(kCliPath);
  return f.good();
}

/// Runs the CLI with `args`, captures stdout, returns the exit status.
int run_cli(const std::string& args, std::string* output) {
  // pid + counter keep the capture file unique per invocation: several test
  // binaries (and ctest -j shards) share TempDir, and a shared fixed name
  // races one process's read against another's truncation.
  static std::atomic<int> next_capture{0};
  const std::string out_file =
      ::testing::TempDir() + "/sasynth_cli_out_" + std::to_string(::getpid()) +
      "_" + std::to_string(next_capture.fetch_add(1)) + ".txt";
  const std::string command =
      std::string(kCliPath) + " " + args + " > " + out_file + " 2>&1";
  const int status = std::system(command.c_str());
  {
    std::ifstream in(out_file);
    std::stringstream buffer;
    buffer << in.rdbuf();
    *output = buffer.str();
  }
  std::remove(out_file.c_str());
  return status;
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!cli_available()) GTEST_SKIP() << "sasynth_cli binary not found";
  }
};

TEST_F(CliTest, LayerModeRunsDse) {
  std::string out;
  const int status =
      run_cli("--layer 16,16,8,8,3 --device tiny --min-util 0.5", &out);
  EXPECT_EQ(status, 0) << out;
  EXPECT_NE(out.find("design  :"), std::string::npos);
  EXPECT_NE(out.find("Gops"), std::string::npos);
}

TEST_F(CliTest, FileModeAndArtifacts) {
  const std::string dir = ::testing::TempDir();
  const std::string src_path = dir + "/cli_conv.c";
  {
    std::ofstream src(src_path);
    src << "#pragma sasynth systolic\n"
           "for (o = 0; o < 16; o++)\n"
           " for (i = 0; i < 16; i++)\n"
           "  for (c = 0; c < 8; c++)\n"
           "   for (r = 0; r < 8; r++)\n"
           "    for (p = 0; p < 3; p++)\n"
           "     for (q = 0; q < 3; q++)\n"
           "      OUT[o][r][c] += W[o][i][p][q] * IN[i][r + p][c + q];\n";
  }
  const std::string out_dir = dir + "/cli_artifacts";
  std::string out;
  const int status = run_cli("--device tiny --min-util 0.5 --out " + out_dir +
                                 " " + src_path,
                             &out);
  EXPECT_EQ(status, 0) << out;
  for (const char* artifact :
       {"params.h", "systolic_conv.cl", "addressing.h", "host.c",
        "report.md"}) {
    std::ifstream f(out_dir + "/" + artifact);
    EXPECT_TRUE(f.good()) << artifact;
  }
}

TEST_F(CliTest, DesignSaveLoadRoundTrip) {
  const std::string design_path = ::testing::TempDir() + "/cli_design.txt";
  std::string out1;
  ASSERT_EQ(run_cli("--layer 16,16,8,8,3 --device tiny --min-util 0.5 "
                    "--save-design " +
                        design_path,
                    &out1),
            0)
      << out1;
  std::string out2;
  ASSERT_EQ(run_cli("--layer 16,16,8,8,3 --device tiny --design " +
                        design_path,
                    &out2),
            0)
      << out2;
  // Same design line in both runs (the load bypasses the DSE).
  const std::size_t d1 = out1.find("design  :");
  const std::size_t d2 = out2.find("design  :");
  ASSERT_NE(d1, std::string::npos);
  ASSERT_NE(d2, std::string::npos);
  EXPECT_EQ(out1.substr(d1, out1.find('\n', d1) - d1),
            out2.substr(d2, out2.find('\n', d2) - d2));
}

TEST_F(CliTest, DesignCacheColdThenWarm) {
  const std::string cache_dir = ::testing::TempDir() + "/cli_design_cache";
  std::system(("rm -rf " + cache_dir).c_str());
  const std::string args =
      "--layer 16,16,8,8,3 --device tiny --min-util 0.5 --design-cache " +
      cache_dir;
  std::string cold;
  ASSERT_EQ(run_cli(args, &cold), 0) << cold;
  EXPECT_NE(cold.find("cache   : miss"), std::string::npos) << cold;

  std::string warm;
  ASSERT_EQ(run_cli(args, &warm), 0) << warm;
  EXPECT_NE(warm.find("cache   : hit"), std::string::npos) << warm;
  EXPECT_NE(warm.find("DSE skipped"), std::string::npos);
  // The cached run reports the same design and performance.
  for (const char* field : {"design  :", "perf    :", "resource:"}) {
    const std::size_t c = cold.find(field);
    const std::size_t w = warm.find(field);
    ASSERT_NE(c, std::string::npos) << field;
    ASSERT_NE(w, std::string::npos) << field;
    EXPECT_EQ(cold.substr(c, cold.find('\n', c) - c),
              warm.substr(w, warm.find('\n', w) - w))
        << field;
  }
  // The warm run's DSE counters stay at zero — the exploration never ran.
  EXPECT_NE(warm.find("0 work items"), std::string::npos) << warm;
}

TEST_F(CliTest, LogLevelFlagWarnsOnUnknownName) {
  std::string out;
  EXPECT_EQ(
      run_cli("--layer 16,16,8,8,3 --device tiny --min-util 0.5 "
              "--log-level bogus",
              &out),
      0)
      << out;
  EXPECT_NE(out.find("unrecognized log level 'bogus'"), std::string::npos)
      << out;
}

TEST_F(CliTest, BadArgumentsRejected) {
  std::string out;
  EXPECT_NE(run_cli("--layer 0,1,1,1,1 --device tiny", &out), 0);
  EXPECT_NE(run_cli("--device not_a_device --layer 4,4,4,4,1", &out), 0);
  EXPECT_NE(run_cli("", &out), 0);
}

TEST_F(CliTest, InfeasibleDesignRejected) {
  // A design saved for one mapping fails cleanly if hand-edited to an
  // infeasible one.
  const std::string design_path = ::testing::TempDir() + "/cli_bad_design.txt";
  {
    std::ofstream f(design_path);
    // row=c, col=r cannot both carry operand reuse (paper §2.3 example).
    f << "sasynth-design v1\n"
         "mapping row=2 col=3 vec=1\n"
         "shape 2 2 2\n"
         "middle 1 1 1 1 1 1\n";
  }
  std::string out;
  EXPECT_NE(run_cli("--layer 16,16,8,8,3 --device tiny --design " +
                        design_path,
                    &out),
            0);
  EXPECT_NE(out.find("not feasible"), std::string::npos);
}

}  // namespace
}  // namespace sasynth
