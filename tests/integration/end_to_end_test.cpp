// Full-pipeline integration: C source -> flow -> chosen design ->
// cycle-accurate simulation -> numerical verification, plus fixed-point.
#include <gtest/gtest.h>

#include "frontend/flow.h"
#include "nn/quantize.h"
#include "nn/network.h"
#include "sim/perf_sim.h"
#include "sim/systolic_array.h"
#include "util/rng.h"

namespace sasynth {
namespace {

FlowOptions tiny_flow_options() {
  FlowOptions options;
  options.device = tiny_test_device();
  options.dtype = DataType::kFloat32;
  options.dse.min_dsp_util = 0.5;
  options.dse.max_rows = 8;
  options.dse.max_cols = 8;
  options.dse.max_vec = 8;
  return options;
}

TEST(EndToEnd, SourceToVerifiedSimulation) {
  const ConvLayerDesc layer = make_conv("e2e", 8, 8, 6, 3);
  const FlowResult flow =
      run_automation_flow(render_conv_source(layer), tiny_flow_options());
  ASSERT_TRUE(flow.ok) << flow.error;

  // The extracted layer equals the one we rendered (modulo the name).
  EXPECT_EQ(flow.conv.layer.in_maps, layer.in_maps);
  EXPECT_EQ(flow.conv.layer.out_maps, layer.out_maps);
  EXPECT_EQ(flow.conv.layer.kernel, layer.kernel);

  // Execute the chosen design on the cycle-accurate array.
  Rng rng(99);
  const ConvData data = make_random_conv_data(layer, rng);
  const SimResult sim =
      simulate_systolic(flow.parse.nest, flow.best.design, layer, data);
  EXPECT_LT(Tensor::max_abs_diff(sim.output, reference_conv(layer, data)),
            1e-3F);

  // And the block-pipeline "board run" lands near the model at the realized
  // clock. DDR burst overhead is zeroed: on this deliberately tiny layer the
  // per-block latency (which Eqs. 9-10 do not model) would dominate.
  PerfSimOptions board;
  board.freq_mhz = flow.best.realized_freq_mhz;
  board.ddr_overhead_cycles = 0;
  const PerfSimResult perf = simulate_performance(
      flow.parse.nest, flow.best.design, tiny_test_device(),
      DataType::kFloat32, board);
  EXPECT_NEAR(perf.achieved_gops, flow.best.realized_gops(),
              0.05 * flow.best.realized_gops());
}

TEST(EndToEnd, StridedLayerThroughFlow) {
  const ConvLayerDesc layer = make_conv("e2es", 4, 8, 5, 3, /*stride=*/2);
  const FlowResult flow =
      run_automation_flow(render_conv_source(layer), tiny_flow_options());
  ASSERT_TRUE(flow.ok) << flow.error;
  EXPECT_EQ(flow.conv.layer.stride, 2);
  Rng rng(7);
  const ConvData data = make_random_conv_data(layer, rng);
  const SimResult sim =
      simulate_systolic(flow.parse.nest, flow.best.design, layer, data);
  EXPECT_LT(Tensor::max_abs_diff(sim.output, reference_conv(layer, data)),
            1e-3F);
}

TEST(EndToEnd, FixedPointFlowAndDatapath) {
  const ConvLayerDesc layer = make_conv("e2efx", 8, 8, 6, 3);
  FlowOptions options = tiny_flow_options();
  options.dtype = DataType::kFixed8_16;
  const FlowResult flow =
      run_automation_flow(render_conv_source(layer), options);
  ASSERT_TRUE(flow.ok) << flow.error;
  EXPECT_NE(flow.kernel.params_h.find("typedef short data_t;"),
            std::string::npos);

  // The fixed-point datapath (8-bit weights, 16-bit pixels) stays within the
  // paper's quoted accuracy envelope on synthetic data.
  Rng rng(5);
  const ConvData data = make_random_conv_data(layer, rng);
  const Tensor ref = reference_conv(layer, data);
  const Tensor fx = fixed_point_conv(layer, data, 8, 16);
  EXPECT_LT(compare_quantized(ref, fx).relative_rms, 0.02);
}

TEST(EndToEnd, AlexNetConv5FlowOnRealDevice) {
  // The paper's running example through the entire flow on the real device
  // description (phase 1 assumed clock 280 MHz, c_s = 0.8).
  FlowOptions options;
  options.device = arria10_gt1150();
  options.dtype = DataType::kFloat32;
  options.dse.min_dsp_util = 0.80;
  const FlowResult flow =
      run_automation_flow(render_conv_source(alexnet_conv5()), options);
  ASSERT_TRUE(flow.ok) << flow.error;
  // The chosen design must beat the paper's fixed sys1 example (621 GFlops
  // at the assumed clock) or at least reach that class of throughput.
  EXPECT_GT(flow.best.estimated_gops(), 550.0);
  EXPECT_GT(flow.best.realized_freq_mhz, 200.0);
  // High utilization (Eq. 12 with the default c_s).
  EXPECT_GE(flow.best.design.num_lanes(), 0.8 * 1518);
}

}  // namespace
}  // namespace sasynth
