// Quantitative checks against the numbers the paper publishes. Where the
// paper is internally inconsistent we assert our model's value and reference
// EXPERIMENTS.md for the discrepancy note.
#include <gtest/gtest.h>

#include "core/dse.h"
#include "core/unified.h"
#include "loopnest/conv_nest.h"
#include "nn/network.h"

namespace sasynth {
namespace {

TEST(PaperNumbers, Table1Sys1Row) {
  // sys1: shape (11,13,8) on (o,c,i) @ 280 MHz:
  // DSP eff 96.97%, peak 621 GFlops; util 71.5% vs the 1600-unit denominator
  // used by the paper's table (1144/1600), 75.4% vs the 1518 device blocks.
  const LoopNest nest = build_conv_nest(alexnet_conv5());
  const DesignPoint sys1(
      nest, SystolicMapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI},
      ArrayShape{11, 13, 8}, {4, 4, 1, 13, 3, 3});
  const PerfEstimate perf = estimate_performance(
      nest, sys1, arria10_gt1150(), DataType::kFloat32, 280.0);
  EXPECT_NEAR(perf.eff * 100.0, 96.97, 0.01);
  EXPECT_NEAR(perf.pt_gops, 621.0, 1.0);
  EXPECT_NEAR(1144.0 / 1600.0, 0.715, 0.001);
}

TEST(PaperNumbers, Table1Sys2Row) {
  // sys2: shape (16,10,8): util 80.0% (1280/1600); eff 65.0% consistent with
  // the row's 466-GFlops peak (the printed 60.00% contradicts it).
  const LoopNest nest = build_conv_nest(alexnet_conv5());
  const DesignPoint sys2(
      nest, SystolicMapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI},
      ArrayShape{16, 10, 8}, {1, 4, 2, 13, 3, 3});
  const PerfEstimate perf = estimate_performance(
      nest, sys2, arria10_gt1150(), DataType::kFloat32, 280.0);
  EXPECT_NEAR(perf.eff, 0.65, 1e-9);
  EXPECT_NEAR(perf.pt_gops, 466.0, 1.0);
  EXPECT_NEAR(1280.0 / 1600.0, 0.800, 0.001);
}

TEST(PaperNumbers, Sys1BeatsSys2DespiteLowerUtilization) {
  // Table 1's whole point: the higher-utilization shape loses on efficiency.
  const LoopNest nest = build_conv_nest(alexnet_conv5());
  const DesignPoint sys1(
      nest, SystolicMapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI},
      ArrayShape{11, 13, 8}, {4, 4, 1, 13, 3, 3});
  const DesignPoint sys2(
      nest, SystolicMapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI},
      ArrayShape{16, 10, 8}, {1, 4, 2, 13, 3, 3});
  const FpgaDevice device = arria10_gt1150();
  const double t1 = estimate_performance(nest, sys1, device,
                                         DataType::kFloat32, 280.0)
                        .pt_gops;
  const double t2 = estimate_performance(nest, sys2, device,
                                         DataType::kFloat32, 280.0)
                        .pt_gops;
  EXPECT_GT(sys2.num_lanes(), sys1.num_lanes());
  EXPECT_GT(t1, t2);
}

TEST(PaperNumbers, BadTilingNeedsTensOfGBs) {
  // §2.3: with tiny tiles the design needs ~67 GB/s to stay compute-bound
  // and only achieves ~160 GFlops at 19 GB/s. Shape check: the required
  // bandwidth of the bad tiling is several times the device's 19.2 GB/s and
  // the achieved throughput collapses to the low hundreds.
  const LoopNest nest = build_conv_nest(alexnet_conv5());
  const DesignPoint bad(
      nest, SystolicMapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI},
      ArrayShape{11, 13, 8}, {1, 1, 1, 2, 1, 1});
  const FpgaDevice device = arria10_gt1150();
  const PerfEstimate perf =
      estimate_performance(nest, bad, device, DataType::kFloat32, 280.0);
  EXPECT_TRUE(perf.memory_bound);
  // Required bandwidth to reach PT: PT / MT * 19.2 GB/s.
  const double required_gbs = perf.pt_gops / perf.mt_gops * device.bw_total_gbs;
  EXPECT_GT(required_gbs, 3.0 * device.bw_total_gbs);
  EXPECT_LT(perf.throughput_gops, 250.0);
}

TEST(PaperNumbers, DseSpaceReductionClaims) {
  // §4: c_s pruning shrinks the mapping/shape space several-fold; pow2
  // pruning shrinks the reuse space by an order of magnitude (the paper
  // reports 160K -> 64K and a 17.5x average search-time saving).
  const LoopNest nest = build_conv_nest(alexnet_conv5());
  DseOptions options;
  options.min_dsp_util = 0.80;
  const DesignSpaceExplorer explorer(arria10_gt1150(), DataType::kFloat32,
                                     options);
  DseStats stats;
  (void)explorer.enumerate_phase1(nest, &stats);
  EXPECT_GT(stats.shapes_considered, 2 * stats.shapes_after_prune);
  EXPECT_GT(stats.reuse_space_bruteforce, 10 * stats.reuse_space_pow2);
  // Phase 1 in seconds, not hours (paper: < 30 s vs 311 hours brute force).
  EXPECT_LT(stats.phase1_seconds, 30.0);
}

TEST(PaperNumbers, AlexNetUnifiedDesignBand) {
  // Table 3/4: AlexNet fp32 unified design lands at ~(11,14,8)-scale
  // (~1100-1500 lanes), 230-300 MHz, with end-to-end throughput in the
  // 300-700 Gops band (paper: 360 Gops end-to-end, 496 Gops conv average)
  // and a memory-bound first layer.
  UnifiedOptions options;
  options.dse.min_dsp_util = 0.70;
  options.shape_shortlist = 24;
  const UnifiedDesign design = select_unified_design(
      make_alexnet(), arria10_gt1150(), DataType::kFloat32, options);
  ASSERT_TRUE(design.valid);
  EXPECT_GE(design.design.num_lanes(), 1000);
  EXPECT_LE(design.design.num_lanes(), 1518);
  EXPECT_GT(design.realized_freq_mhz, 200.0);
  EXPECT_LT(design.realized_freq_mhz, 312.0);
  EXPECT_GT(design.aggregate_gops, 300.0);
  EXPECT_LT(design.aggregate_gops, 700.0);
}

TEST(PaperNumbers, Vgg16MoreRegularThanAlexNet) {
  // §5.3: VGG16's regular shape yields better aggregate efficiency than
  // AlexNet under the same flow.
  UnifiedOptions options;
  options.dse.min_dsp_util = 0.70;
  options.shape_shortlist = 24;
  const FpgaDevice device = arria10_gt1150();
  const UnifiedDesign alex = select_unified_design(
      make_alexnet(), device, DataType::kFloat32, options);
  const UnifiedDesign vgg = select_unified_design(
      make_vgg16(), device, DataType::kFloat32, options);
  ASSERT_TRUE(alex.valid);
  ASSERT_TRUE(vgg.valid);
  EXPECT_GT(vgg.aggregate_gops, alex.aggregate_gops);
}

TEST(PaperNumbers, FixedPointRoughlyTriplesThroughput) {
  // Table 3: VGG fixed 1171 Gops vs VGG float 460 Gops (~2.5x). Fixed mode
  // doubles MAC capacity and halves bandwidth pressure.
  UnifiedOptions options;
  options.dse.min_dsp_util = 0.70;
  options.shape_shortlist = 24;
  const FpgaDevice device = arria10_gt1150();
  const UnifiedDesign fp = select_unified_design(
      make_vgg16(), device, DataType::kFloat32, options);
  const UnifiedDesign fx = select_unified_design(
      make_vgg16(), device, DataType::kFixed8_16, options);
  ASSERT_TRUE(fp.valid);
  ASSERT_TRUE(fx.valid);
  EXPECT_GT(fx.aggregate_gops, 1.6 * fp.aggregate_gops);
  EXPECT_LT(fx.aggregate_gops, 3.5 * fp.aggregate_gops);
}

}  // namespace
}  // namespace sasynth
