// Parameterized property sweeps: every (layer, mapping, shape, tiling)
// combination must satisfy the framework's core invariants —
//   1. the systolic simulation equals the reference convolution,
//   2. measured efficiency equals the analytical Eff,
//   3. footprint closed forms equal exact enumeration,
//   4. simulated cycles equal the modeled cycle count.
#include <gtest/gtest.h>

#include <tuple>

#include "core/mapping.h"
#include "core/perf_model.h"
#include "loopnest/conv_nest.h"
#include "loopnest/reuse.h"
#include "nn/reference.h"
#include "sim/systolic_array.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace sasynth {
namespace {

struct SweepCase {
  const char* name;
  ConvLayerDesc layer;
  ArrayShape shape;
  std::vector<std::int64_t> middle;
  std::size_t mapping_index;  ///< index into the feasible-mapping list
};

class SystolicSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(SystolicSweep, AllInvariantsHold) {
  const SweepCase& param = GetParam();
  const LoopNest nest = build_conv_nest(param.layer);
  const ReuseMatrix reuse = analyze_reuse(nest);
  const std::vector<SystolicMapping> mappings =
      enumerate_feasible_mappings(nest, reuse);
  ASSERT_LT(param.mapping_index, mappings.size());
  const DesignPoint design(nest, mappings[param.mapping_index], param.shape,
                           std::vector<std::int64_t>(param.middle));
  ASSERT_TRUE(design.validate(nest).empty()) << design.to_string(nest);

  Rng rng(fnv1a64(std::string(param.name)));
  const ConvData data = make_random_conv_data(param.layer, rng);

  // Invariant 3: footprints.
  const RectDomain block = design.tiling().block_domain();
  for (const ArrayAccess& access : nest.accesses()) {
    EXPECT_EQ(closed_form_footprint(access.access, block),
              exact_footprint(access.access, block))
        << access.access.array;
  }

  // Invariants 1, 2, 4: simulate.
  const SimResult sim = simulate_systolic(nest, design, param.layer, data);
  const Tensor ref = reference_conv(param.layer, data);
  EXPECT_LT(Tensor::max_abs_diff(sim.output, ref), 2e-3F)
      << design.to_string(nest);
  EXPECT_NEAR(sim.measured_efficiency(), dsp_efficiency(nest, design), 1e-12);
  EXPECT_EQ(sim.pipelined_cycles, modeled_compute_cycles(nest, design));
  EXPECT_EQ(sim.active_macs, nest.total_iterations());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SystolicSweep,
    ::testing::Values(
        SweepCase{"dividing_shapes", make_conv("a", 8, 6, 6, 3),
                  ArrayShape{3, 2, 4}, {2, 2, 3, 6, 3, 3}, 0},
        SweepCase{"padding_rows", make_conv("b", 8, 7, 6, 3),
                  ArrayShape{3, 2, 4}, {1, 2, 1, 2, 1, 3}, 1},
        SweepCase{"padding_everything", make_conv("c", 5, 5, 5, 3),
                  ArrayShape{2, 3, 4}, {2, 1, 2, 2, 2, 2}, 2},
        SweepCase{"vec_on_p", make_conv("d", 6, 4, 4, 3),
                  ArrayShape{2, 2, 2}, {2, 2, 2, 2, 2, 2}, 3},
        SweepCase{"vec_on_q", make_conv("e", 6, 4, 4, 3),
                  ArrayShape{2, 2, 2}, {1, 3, 2, 2, 1, 2}, 11},
        SweepCase{"row_is_c", make_conv("f", 6, 4, 5, 3),
                  ArrayShape{4, 2, 2}, {1, 2, 1, 3, 2, 2}, 6},
        SweepCase{"row_is_r", make_conv("g", 6, 4, 5, 3),
                  ArrayShape{4, 2, 2}, {2, 2, 2, 1, 2, 2}, 8},
        SweepCase{"strided", make_conv("h", 4, 4, 4, 3, 2),
                  ArrayShape{2, 2, 2}, {2, 1, 2, 2, 2, 2}, 0},
        SweepCase{"kernel1", make_conv("i", 8, 8, 5, 1),
                  ArrayShape{4, 5, 2}, {1, 2, 1, 5, 1, 1}, 0},
        SweepCase{"kernel5", make_conv("j", 4, 4, 4, 5),
                  ArrayShape{2, 2, 2}, {1, 2, 2, 2, 3, 3}, 0},
        SweepCase{"wide_vec", make_conv("k", 16, 4, 4, 3),
                  ArrayShape{2, 2, 8}, {2, 2, 2, 2, 2, 2}, 0},
        SweepCase{"single_pe_row", make_conv("l", 6, 4, 4, 3),
                  ArrayShape{1, 4, 2}, {2, 3, 1, 4, 3, 3}, 0}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return info.param.name;
    });

// Randomized sweep: derive designs pseudo-randomly from a seed; shapes and
// tilings are drawn from valid ranges, all invariants re-checked.
class RandomizedSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomizedSweep, InvariantsHoldOnRandomDesign) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const ConvLayerDesc layer = make_conv(
      "rand", rng.next_range(2, 10), rng.next_range(2, 10),
      rng.next_range(3, 7), rng.next_range(1, 3) * 2 - 1);
  const LoopNest nest = build_conv_nest(layer);
  const ReuseMatrix reuse = analyze_reuse(nest);
  const std::vector<SystolicMapping> mappings =
      enumerate_feasible_mappings(nest, reuse);
  const SystolicMapping mapping =
      mappings[rng.next_below(mappings.size())];

  auto pick_extent = [&](std::size_t loop) {
    return rng.next_range(1, std::min<std::int64_t>(4, nest.loop(loop).trip));
  };
  const ArrayShape shape{pick_extent(mapping.row_loop),
                         pick_extent(mapping.col_loop),
                         pick_extent(mapping.vec_loop)};
  std::vector<std::int64_t> middle(6, 1);
  for (std::size_t l = 0; l < 6; ++l) {
    // Keep the block within the padded trip count (oversized middle bounds
    // on tiny loops are a configuration error the validator rejects).
    const std::int64_t inner =
        l == mapping.row_loop ? shape.rows
        : l == mapping.col_loop ? shape.cols
        : l == mapping.vec_loop ? shape.vec
                                : 1;
    const std::int64_t cap = ceil_div(nest.loop(l).trip, inner);
    middle[l] = rng.next_range(1, std::min<std::int64_t>(3, cap));
  }
  const DesignPoint design(nest, mapping, shape, std::move(middle));
  ASSERT_TRUE(design.validate(nest).empty());

  const ConvData data = make_random_conv_data(layer, rng);
  const SimResult sim = simulate_systolic(nest, design, layer, data);
  EXPECT_LT(Tensor::max_abs_diff(sim.output, reference_conv(layer, data)),
            2e-3F)
      << layer.summary() << " " << design.to_string(nest);
  EXPECT_NEAR(sim.measured_efficiency(), dsp_efficiency(nest, design), 1e-12);
  EXPECT_EQ(sim.active_macs, nest.total_iterations());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedSweep, ::testing::Range(0, 24));

}  // namespace
}  // namespace sasynth
