// Regression tests for the silent-atoi bug family: every numeric flag on
// both tools must reject non-numeric input, trailing garbage, overflow and
// out-of-range values with exit 2 and a message naming the flag and the
// value. The headline bug: `sasynthd --port abc` used to atoi to 0, pass
// the 0..65535 range check, and silently bind a kernel-chosen ephemeral
// port. Tests are skipped when the binaries are not where the build puts
// them (same convention as cli_test.cpp).
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace sasynth {
namespace {

const char* const kCliPath = "../tools/sasynth_cli";
const char* const kDaemonPath = "../tools/sasynthd";

bool tool_available(const char* path) {
  std::ifstream f(path);
  return f.good();
}

/// Runs `tool args`, captures stdout+stderr, returns the exit code (or -1
/// if the process did not exit normally).
int run_tool(const char* tool, const std::string& args, std::string* output) {
  static std::atomic<int> next_capture{0};
  const std::string out_file =
      ::testing::TempDir() + "/sasynth_flag_out_" + std::to_string(::getpid()) +
      "_" + std::to_string(next_capture.fetch_add(1)) + ".txt";
  const std::string command =
      std::string(tool) + " " + args + " > " + out_file + " 2>&1";
  const int status = std::system(command.c_str());
  {
    std::ifstream in(out_file);
    std::stringstream buffer;
    buffer << in.rdbuf();
    *output = buffer.str();
  }
  std::remove(out_file.c_str());
  if (!WIFEXITED(status)) return -1;
  return WEXITSTATUS(status);
}

class FlagStrictnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!tool_available(kCliPath) || !tool_available(kDaemonPath)) {
      GTEST_SKIP() << "tool binaries not found";
    }
  }

  /// Asserts the tool exits 2 and the diagnostic names both the flag and
  /// the offending value — "bad --queue" without the value is exactly the
  /// misleading-diagnostics bug this family fixed.
  void expect_rejected(const char* tool, const std::string& args,
                       const std::string& flag, const std::string& value) {
    std::string out;
    EXPECT_EQ(run_tool(tool, args, &out), 2) << args << "\n" << out;
    EXPECT_NE(out.find("bad " + flag + " value '" + value + "'"),
              std::string::npos)
        << args << "\n" << out;
  }
};

TEST_F(FlagStrictnessTest, DaemonRejectsNonNumericPort) {
  expect_rejected(kDaemonPath, "--port abc", "--port", "abc");
}

TEST_F(FlagStrictnessTest, DaemonRejectsTheSilentAtoiFamilyOnEveryIntFlag) {
  // flag, bad value pairs spanning the whole family: non-numeric, trailing
  // garbage, overflow, negative-where-positive, out of range.
  const struct {
    const char* args;
    const char* flag;
    const char* value;
  } kCases[] = {
      {"--port 8080x", "--port", "8080x"},
      {"--port 70000", "--port", "70000"},
      {"--port -1", "--port", "-1"},
      {"--port 99999999999999999999", "--port", "99999999999999999999"},
      {"--cache-capacity banana", "--cache-capacity", "banana"},
      {"--cache-capacity 0", "--cache-capacity", "0"},
      {"--cache-capacity -5", "--cache-capacity", "-5"},
      {"--sweep-cache-capacity -1", "--sweep-cache-capacity", "-1"},
      {"--jobs banana", "--jobs", "banana"},
      {"--jobs -2", "--jobs", "-2"},
      {"--queue banana", "--queue", "banana"},
      {"--queue 0", "--queue", "0"},
      {"--default-deadline 5s", "--default-deadline", "5s"},
      {"--io-timeout -1", "--io-timeout", "-1"},
      {"--shard-io-timeout abc", "--shard-io-timeout", "abc"},
      {"--max-connections 1.5", "--max-connections", "1.5"},
      {"--drain-timeout never", "--drain-timeout", "never"},
  };
  for (const auto& c : kCases) {
    expect_rejected(kDaemonPath, c.args, c.flag, c.value);
  }
}

TEST_F(FlagStrictnessTest, DaemonRejectsBadPeerList) {
  std::string out;
  EXPECT_EQ(run_tool(kDaemonPath, "--peers 127.0.0.1:abc", &out), 2) << out;
  EXPECT_NE(out.find("--peers"), std::string::npos) << out;
  EXPECT_EQ(run_tool(kDaemonPath, "--peers example.com:80", &out), 2) << out;
}

TEST_F(FlagStrictnessTest, CliRejectsTheSilentAtoiFamilyOnEveryNumericFlag) {
  const std::string layer = "--layer 16,16,8,8,3 --device tiny ";
  const struct {
    const char* args;
    const char* flag;
    const char* value;
  } kCases[] = {
      {"--jobs banana", "--jobs", "banana"},
      {"--jobs 4x", "--jobs", "4x"},
      {"--jobs -1", "--jobs", "-1"},
      {"--top-k 0", "--top-k", "0"},
      {"--top-k twelve", "--top-k", "twelve"},
      {"--fleet 0", "--fleet", "0"},
      {"--fleet 2.5", "--fleet", "2.5"},
      {"--freq fast", "--freq", "fast"},
      {"--min-util half", "--min-util", "half"},
  };
  for (const auto& c : kCases) {
    expect_rejected(kCliPath, layer + c.args, c.flag, c.value);
  }
  // Doubles that parse but land outside the flag's range still exit 2 with
  // the flag's own range message.
  std::string out;
  EXPECT_EQ(run_tool(kCliPath, layer + "--freq -100", &out), 2);
  EXPECT_NE(out.find("--freq"), std::string::npos) << out;
  EXPECT_EQ(run_tool(kCliPath, layer + "--min-util 1.5", &out), 2);
  EXPECT_NE(out.find("--min-util"), std::string::npos) << out;
  EXPECT_EQ(run_tool(kCliPath, "--deploy alexnet:banana", &out), 2);
  EXPECT_NE(out.find("bad weight 'banana'"), std::string::npos) << out;
}

TEST_F(FlagStrictnessTest, DaemonEphemeralPortIsStillReported) {
  // `--port 0` is a legitimate value (bind ephemeral, print the choice) —
  // strictness must not have swallowed it. The daemon serves until
  // signalled, so bound its life with timeout(1).
  std::string out;
  run_tool("timeout", std::string("-s TERM 2 ") + kDaemonPath +
                          " --port 0 --drain-timeout 100 --log-level off",
           &out);
  const std::size_t at = out.find("sasynthd listening on 127.0.0.1:");
  ASSERT_NE(at, std::string::npos) << out;
  // The reported port is a real (nonzero) kernel choice.
  const std::string tail = out.substr(at + std::string("sasynthd listening on 127.0.0.1:").size());
  EXPECT_GT(std::atoi(tail.c_str()), 0) << out;
}

}  // namespace
}  // namespace sasynth
