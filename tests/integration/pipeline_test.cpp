// Whole-CNN pipeline on the simulated systolic array as a test: two conv
// layers (each under its own DSE-chosen design), ReLU, max-pool, an FC tail
// converted per §2.1, softmax — verified end to end against a pure software
// reference. The test version of examples/tiny_inference.cpp.
#include <gtest/gtest.h>

#include "core/dse.h"
#include "loopnest/conv_nest.h"
#include "nn/fc.h"
#include "nn/postops.h"
#include "nn/quantize.h"
#include "nn/reference.h"
#include "sim/systolic_array.h"
#include "util/rng.h"

namespace sasynth {
namespace {

Tensor conv_on_array(const ConvLayerDesc& layer, const ConvData& data) {
  const LoopNest nest = build_conv_nest(layer);
  DseOptions options;
  options.min_dsp_util = 0.5;
  options.max_rows = 8;
  options.max_cols = 8;
  options.max_vec = 8;
  const DesignSpaceExplorer explorer(tiny_test_device(), DataType::kFloat32,
                                     options);
  const DseResult result = explorer.explore(nest);
  EXPECT_FALSE(result.empty());
  return simulate_systolic(nest, result.best()->design, layer, data).output;
}

Tensor pad_input(const ConvLayerDesc& layer, const Tensor& activation) {
  Tensor input({layer.in_maps, layer.in_rows(), layer.in_cols()});
  for (std::int64_t c = 0; c < activation.dim(0); ++c) {
    for (std::int64_t h = 0; h < activation.dim(1); ++h) {
      for (std::int64_t w = 0; w < activation.dim(2); ++w) {
        input.at(c, h, w) = activation.at(c, h, w);
      }
    }
  }
  return input;
}

TEST(PipelineIntegration, TinyCnnOnSimulatedArrayMatchesSoftware) {
  Rng rng(31415);
  const ConvLayerDesc conv1 = make_conv("p_conv1", 3, 8, 8, 3);
  const ConvLayerDesc conv2 = make_conv("p_conv2", 8, 8, 2, 3);
  const FcLayerDesc fc{"p_fc", 8 * 2 * 2, 6};
  const ConvLayerDesc fc_conv = fc_as_conv(fc, 8, 2);

  ConvData d1 = make_random_conv_data(conv1, rng, -0.5F, 0.5F);
  Tensor w2({conv2.out_maps, conv2.in_maps, 3, 3});
  w2.fill_random(rng, -0.5F, 0.5F);
  Tensor fc_w({fc.out_features, fc.in_features});
  fc_w.fill_random(rng, -0.5F, 0.5F);

  // Hardware path.
  const Tensor a1 = conv_on_array(conv1, d1);
  const Tensor p1 = max_pool(relu(a1), 2, 2);
  ConvData d2;
  d2.input = pad_input(conv2, p1);
  d2.weights = w2;
  const Tensor r2 = relu(conv_on_array(conv2, d2));
  ConvData d3;
  d3.input = pad_input(fc_conv, r2);
  d3.weights = fc_weights_as_conv(fc, fc_w, 8, 2);
  const Tensor probs = softmax(flatten(conv_on_array(fc_conv, d3)));

  // Software reference.
  const Tensor ref1 = max_pool(relu(reference_conv(conv1, d1)), 2, 2);
  ConvData rd2;
  rd2.input = pad_input(conv2, ref1);
  rd2.weights = w2;
  const Tensor ref2 = relu(reference_conv(conv2, rd2));
  const Tensor ref_probs = softmax(fc_forward(fc, flatten(ref2), fc_w));

  EXPECT_LT(Tensor::max_abs_diff(probs, ref_probs), 1e-4F);
  EXPECT_EQ(argmax(probs), argmax(ref_probs));
  // Probabilities are a distribution.
  float sum = 0.0F;
  for (std::int64_t i = 0; i < probs.size(); ++i) sum += probs.at(i);
  EXPECT_NEAR(sum, 1.0F, 1e-5F);
}

TEST(PipelineIntegration, QuantizedTailMatchesFloatWithinBudget) {
  // Run the FC tail in the 8/16-bit fixed datapath and check the class
  // decision survives (the accuracy-preservation claim, §5.2).
  Rng rng(2718);
  const FcLayerDesc fc{"q_fc", 32, 6};
  const ConvLayerDesc fc_conv = fc_as_conv(fc);
  ConvData data = make_conv_data(fc_conv);
  Tensor fc_w({fc.out_features, fc.in_features});
  fc_w.fill_random(rng, -0.5F, 0.5F);
  data.weights = fc_weights_as_conv(fc, fc_w, fc.in_features, 1);
  data.input.fill_random(rng, -1.0F, 1.0F);

  const Tensor fp = reference_conv(fc_conv, data);
  const Tensor fx = fixed_point_conv(fc_conv, data, 8, 16);
  EXPECT_EQ(argmax(flatten(fp)), argmax(flatten(fx)));
  EXPECT_LT(compare_quantized(fp, fx).relative_rms, 0.02);
}

}  // namespace
}  // namespace sasynth
