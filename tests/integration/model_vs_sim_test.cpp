// Cross-validation of the analytical models against the two simulators —
// the repository's equivalent of the paper's model-vs-board methodology.
#include <gtest/gtest.h>

#include "core/dse.h"
#include "core/perf_model.h"
#include "fpga/freq_model.h"
#include "loopnest/conv_nest.h"
#include "nn/network.h"
#include "sim/perf_sim.h"
#include "sim/systolic_array.h"
#include "util/rng.h"

namespace sasynth {
namespace {

TEST(ModelVsSim, EfficiencyIdentity) {
  // The analytical Eff (Eq. 1) equals the cycle-accurate simulator's measured
  // PE-activity ratio on a mix of dividing and non-dividing shapes.
  const ConvLayerDesc layer = make_conv("mv", 7, 9, 5, 3);
  const LoopNest nest = build_conv_nest(layer);
  Rng rng(3);
  const ConvData data = make_random_conv_data(layer, rng);
  const std::vector<ArrayShape> shapes{{2, 5, 4}, {3, 3, 2}, {4, 2, 8}};
  for (const ArrayShape& shape : shapes) {
    const DesignPoint design(
        nest, SystolicMapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI},
        shape, {2, 1, 1, 5, 3, 3});
    const SimResult sim = simulate_systolic(nest, design, layer, data);
    EXPECT_NEAR(sim.measured_efficiency(), dsp_efficiency(nest, design), 1e-12)
        << shape.to_string();
  }
}

TEST(ModelVsSim, CycleCountIdentity) {
  const ConvLayerDesc layer = make_conv("cc", 6, 8, 6, 3);
  const LoopNest nest = build_conv_nest(layer);
  const ConvData data = make_conv_data(layer);
  const DesignPoint design(
      nest, SystolicMapping{ConvLoops::kO, ConvLoops::kR, ConvLoops::kI},
      ArrayShape{4, 3, 2}, {1, 2, 3, 1, 3, 3});
  const SimResult sim = simulate_systolic(nest, design, layer, data);
  EXPECT_EQ(sim.pipelined_cycles, modeled_compute_cycles(nest, design));
}

TEST(ModelVsSim, PerfSimWithinTwoPercentOfModelAcrossDesigns) {
  // Fig. 7(b)'s headline: the analytical model matches the "board" within
  // ~2% once the real clock is used. Sweep well-formed tilings (blocks that
  // divide the granule counts — the kind phase 1 selects) on AlexNet conv5.
  // DDR burst overhead is zeroed because Eqs. 9-10 do not model it.
  const ConvLayerDesc layer = alexnet_conv5();
  const LoopNest nest = build_conv_nest(layer);
  const FpgaDevice device = arria10_gt1150();
  const std::vector<std::vector<std::int64_t>> tilings{
      {4, 4, 1, 13, 3, 3}, {2, 8, 1, 13, 3, 3}, {4, 8, 1, 13, 3, 3},
      {2, 2, 1, 13, 3, 3}};
  for (const auto& middle : tilings) {
    const DesignPoint design(
        nest, SystolicMapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI},
        ArrayShape{11, 13, 8}, std::vector<std::int64_t>(middle));
    PerfSimOptions options;
    options.freq_mhz = 250.0;
    options.ddr_overhead_cycles = 0;
    const PerfSimResult board =
        simulate_performance(nest, design, device, DataType::kFloat32, options);
    const PerfEstimate model =
        estimate_performance(nest, design, device, DataType::kFloat32, 250.0);
    EXPECT_NEAR(board.achieved_gops, model.throughput_gops,
                0.02 * model.throughput_gops)
        << design.to_string(nest);
  }
}

TEST(ModelVsSim, ClipHeavyTilingsStayWithinFifteenPercent) {
  // Tilings whose blocks clip heavily (oversized middle bounds) lose some
  // transfer/compute overlap the analytical model cannot see; the gap stays
  // bounded (~15%) and always pessimistic on the board side.
  const ConvLayerDesc layer = alexnet_conv5();
  const LoopNest nest = build_conv_nest(layer);
  const FpgaDevice device = arria10_gt1150();
  const std::vector<std::vector<std::int64_t>> tilings{
      {8, 2, 1, 16, 3, 3}, {4, 8, 1, 8, 3, 3}};
  for (const auto& middle : tilings) {
    const DesignPoint design(
        nest, SystolicMapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI},
        ArrayShape{11, 13, 8}, std::vector<std::int64_t>(middle));
    PerfSimOptions options;
    options.freq_mhz = 250.0;
    options.ddr_overhead_cycles = 0;
    const PerfSimResult board =
        simulate_performance(nest, design, device, DataType::kFloat32, options);
    const PerfEstimate model =
        estimate_performance(nest, design, device, DataType::kFloat32, 250.0);
    EXPECT_LE(board.achieved_gops, model.throughput_gops * 1.001)
        << design.to_string(nest);
    EXPECT_GE(board.achieved_gops, model.throughput_gops * 0.85)
        << design.to_string(nest);
  }
}

TEST(ModelVsSim, DseWinnerIsFunctionallyCorrect) {
  // The design the DSE picks for a small layer must compute the right
  // convolution in the cycle-accurate simulator.
  const ConvLayerDesc layer = make_conv("win", 8, 8, 6, 3);
  const LoopNest nest = build_conv_nest(layer);
  DseOptions options;
  options.min_dsp_util = 0.5;
  options.max_rows = 8;
  options.max_cols = 8;
  options.max_vec = 8;
  const DesignSpaceExplorer explorer(tiny_test_device(), DataType::kFloat32,
                                     options);
  const DseResult result = explorer.explore(nest);
  ASSERT_FALSE(result.empty());

  Rng rng(17);
  const ConvData data = make_random_conv_data(layer, rng);
  const Tensor ref = reference_conv(layer, data);
  const SimResult sim =
      simulate_systolic(nest, result.best()->design, layer, data);
  EXPECT_LT(Tensor::max_abs_diff(sim.output, ref), 1e-3F);
}

TEST(ModelVsSim, RealizedFrequencyConsistency) {
  // Phase-2 realized estimates must equal re-running the model at the
  // realized clock (no hidden state).
  const ConvLayerDesc layer = alexnet_conv5();
  const LoopNest nest = build_conv_nest(layer);
  const FpgaDevice device = arria10_gt1150();
  DseOptions options;
  options.min_dsp_util = 0.85;
  const DesignSpaceExplorer explorer(device, DataType::kFloat32, options);
  const DseResult result = explorer.explore(nest);
  ASSERT_FALSE(result.empty());
  for (const DseCandidate& c : result.top) {
    const PerfEstimate recomputed = estimate_performance(
        nest, c.design, device, DataType::kFloat32, c.realized_freq_mhz);
    EXPECT_DOUBLE_EQ(c.realized.throughput_gops, recomputed.throughput_gops);
    const double freq = pseudo_pnr_frequency_mhz(
        device, c.resources.report, c.design.signature());
    EXPECT_DOUBLE_EQ(c.realized_freq_mhz, freq);
  }
}

}  // namespace
}  // namespace sasynth
