#include "nn/layer.h"

#include <gtest/gtest.h>

namespace sasynth {
namespace {

ConvLayerDesc conv5() { return make_conv("c5", 192, 128, 13, 3); }

TEST(ConvLayer, DerivedDims) {
  const ConvLayerDesc layer = conv5();
  EXPECT_EQ(layer.in_rows(), 15);  // (13-1)*1 + 3
  EXPECT_EQ(layer.in_cols(), 15);
  EXPECT_EQ(layer.weight_elems(), 192 * 128 * 9);
  EXPECT_EQ(layer.input_elems(), 192 * 15 * 15);
  EXPECT_EQ(layer.output_elems(), 128 * 13 * 13);
}

TEST(ConvLayer, StridedInputDims) {
  const ConvLayerDesc conv1 = make_conv("c1", 3, 96, 55, 11, 4);
  EXPECT_EQ(conv1.in_rows(), 54 * 4 + 11);  // 227
  EXPECT_EQ(conv1.in_cols(), 227);
}

TEST(ConvLayer, OpsCount) {
  const ConvLayerDesc layer = conv5();
  EXPECT_EQ(layer.macs_per_group(),
            192LL * 128 * 13 * 13 * 3 * 3);
  EXPECT_EQ(layer.total_ops(), 2 * layer.macs_per_group());
}

TEST(ConvLayer, GroupsMultiplyOps) {
  ConvLayerDesc layer = conv5();
  layer.groups = 2;
  EXPECT_EQ(layer.total_macs(), 2 * layer.macs_per_group());
}

TEST(ConvLayer, Validate) {
  EXPECT_TRUE(conv5().validate().empty());
  ConvLayerDesc bad = conv5();
  bad.in_maps = 0;
  EXPECT_FALSE(bad.validate().empty());
  bad = conv5();
  bad.kernel = 0;
  EXPECT_FALSE(bad.validate().empty());
  bad = conv5();
  bad.stride = 0;
  EXPECT_FALSE(bad.validate().empty());
  bad = conv5();
  bad.groups = 0;
  EXPECT_FALSE(bad.validate().empty());
}

TEST(ConvLayer, SummaryMentionsDims) {
  const std::string s = conv5().summary();
  EXPECT_NE(s.find("(192,128,13,13,3)"), std::string::npos);
  EXPECT_NE(s.find("c5"), std::string::npos);
}

TEST(ConvLayer, Equality) {
  EXPECT_EQ(conv5(), conv5());
  ConvLayerDesc other = conv5();
  other.kernel = 5;
  EXPECT_FALSE(conv5() == other);
}

TEST(FoldStrided, AlexNetConv1) {
  const ConvLayerDesc conv1 = make_conv("conv1", 3, 96, 55, 11, 4);
  const ConvLayerDesc folded = fold_strided_layer(conv1);
  EXPECT_EQ(folded.stride, 1);
  EXPECT_EQ(folded.in_maps, 3 * 16);   // I * stride^2
  EXPECT_EQ(folded.kernel, 3);         // ceil(11/4)
  EXPECT_EQ(folded.out_maps, 96);
  EXPECT_EQ(folded.out_rows, 55);
  // Folding pads the kernel: op count grows (the paper's conv1 DSP
  // efficiency penalty).
  EXPECT_GE(folded.total_macs(), conv1.total_macs());
}

TEST(FoldStrided, Stride1IsIdentity) {
  const ConvLayerDesc layer = conv5();
  EXPECT_EQ(fold_strided_layer(layer), layer);
}

TEST(FoldStrided, ExactDivision) {
  // 8x8 kernel stride 2 folds without padding waste: ops preserved exactly.
  const ConvLayerDesc layer = make_conv("x", 4, 8, 10, 8, 2);
  const ConvLayerDesc folded = fold_strided_layer(layer);
  EXPECT_EQ(folded.kernel, 4);
  EXPECT_EQ(folded.in_maps, 16);
  EXPECT_EQ(folded.total_macs(), layer.total_macs());
}

}  // namespace
}  // namespace sasynth
