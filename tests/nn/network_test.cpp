#include "nn/network.h"

#include <gtest/gtest.h>

namespace sasynth {
namespace {

TEST(AlexNet, LayerStructure) {
  const Network net = make_alexnet();
  ASSERT_EQ(net.layers.size(), 5U);
  // conv1 folded to stride 1.
  EXPECT_EQ(net.layers[0].stride, 1);
  EXPECT_EQ(net.layers[0].in_maps, 48);
  EXPECT_EQ(net.layers[0].kernel, 3);
  // Per-group dims of the grouped layers (paper's layer-5 example).
  EXPECT_EQ(net.layers[4].in_maps, 192);
  EXPECT_EQ(net.layers[4].out_maps, 128);
  EXPECT_EQ(net.layers[4].out_rows, 13);
  EXPECT_EQ(net.layers[4].groups, 2);
  EXPECT_EQ(net.layers[1].groups, 2);
  EXPECT_EQ(net.layers[2].groups, 1);
}

TEST(AlexNet, UnfoldedConv1) {
  const Network net = make_alexnet(/*fold_conv1=*/false);
  EXPECT_EQ(net.layers[0].stride, 4);
  EXPECT_EQ(net.layers[0].kernel, 11);
  EXPECT_EQ(net.layers[0].in_maps, 3);
}

TEST(AlexNet, Conv5MatchesPaperExample) {
  const ConvLayerDesc layer = alexnet_conv5();
  EXPECT_EQ(layer.in_maps, 192);
  EXPECT_EQ(layer.out_maps, 128);
  EXPECT_EQ(layer.out_rows, 13);
  EXPECT_EQ(layer.out_cols, 13);
  EXPECT_EQ(layer.kernel, 3);
}

TEST(Vgg16, LayerStructure) {
  const Network net = make_vgg16();
  ASSERT_EQ(net.layers.size(), 13U);
  for (const ConvLayerDesc& layer : net.layers) {
    EXPECT_EQ(layer.kernel, 3);
    EXPECT_EQ(layer.stride, 1);
    EXPECT_EQ(layer.groups, 1);
  }
  EXPECT_EQ(net.layers[0].in_maps, 3);
  EXPECT_EQ(net.layers[0].out_maps, 64);
  EXPECT_EQ(net.layers[0].out_rows, 224);
  EXPECT_EQ(net.layers[12].in_maps, 512);
  EXPECT_EQ(net.layers[12].out_rows, 14);
}

TEST(Vgg16, TotalOpsNearThirtyGops) {
  // VGG16 conv layers are ~30.7 GFlop per image (well-known figure).
  const double gops = static_cast<double>(make_vgg16().total_ops()) * 1e-9;
  EXPECT_GT(gops, 28.0);
  EXPECT_LT(gops, 32.0);
}

TEST(AlexNet, TotalOpsOrderOfMagnitude) {
  // AlexNet conv layers are ~1.3-1.5 GFlop per image (folding inflates
  // conv1 somewhat).
  const double gops = static_cast<double>(make_alexnet().total_ops()) * 1e-9;
  EXPECT_GT(gops, 1.0);
  EXPECT_LT(gops, 3.0);
}

TEST(GoogleNet, LayerStructure) {
  const Network net = make_googlenet();
  // 3 stem + 9 modules x 6 branch convolutions.
  ASSERT_EQ(net.layers.size(), 3U + 9U * 6U);
  EXPECT_EQ(net.layers[0].kernel, 7);
  EXPECT_EQ(net.layers[0].stride, 2);
  // Every layer validates; kernel sizes limited to {1, 3, 5, 7}.
  for (const ConvLayerDesc& layer : net.layers) {
    EXPECT_TRUE(layer.validate().empty()) << layer.summary();
    EXPECT_TRUE(layer.kernel == 1 || layer.kernel == 3 || layer.kernel == 5 ||
                layer.kernel == 7)
        << layer.summary();
  }
  // Spot-check a published module config: inception 4e's 3x3 branch.
  const ConvLayerDesc* l = net.find_layer("inc4e_3x3");
  ASSERT_NE(l, nullptr);
  EXPECT_EQ(l->in_maps, 160);
  EXPECT_EQ(l->out_maps, 320);
  EXPECT_EQ(l->out_rows, 14);
}

TEST(GoogleNet, TotalOpsNearThreeGops) {
  // GoogLeNet conv work is ~3 GFlop/image (2 x ~1.5 GMACs).
  const double gops = static_cast<double>(make_googlenet().total_ops()) * 1e-9;
  EXPECT_GT(gops, 2.0);
  EXPECT_LT(gops, 4.5);
}

TEST(Network, FindLayer) {
  const Network net = make_vgg16();
  ASSERT_NE(net.find_layer("conv3_2"), nullptr);
  EXPECT_EQ(net.find_layer("conv3_2")->in_maps, 256);
  EXPECT_EQ(net.find_layer("nope"), nullptr);
}

TEST(Network, SummaryListsAllLayers) {
  const Network net = make_tiny_testnet();
  const std::string s = net.summary();
  EXPECT_NE(s.find("TinyTestNet"), std::string::npos);
  EXPECT_NE(s.find("t1"), std::string::npos);
  EXPECT_NE(s.find("t3"), std::string::npos);
}

TEST(TinyTestNet, Valid) {
  for (const ConvLayerDesc& layer : make_tiny_testnet().layers) {
    EXPECT_TRUE(layer.validate().empty()) << layer.summary();
  }
}

}  // namespace
}  // namespace sasynth
