#include "nn/fc.h"

#include <gtest/gtest.h>

#include "nn/reference.h"
#include "util/rng.h"

namespace sasynth {
namespace {

TEST(FcLayer, Validate) {
  EXPECT_TRUE((FcLayerDesc{"ok", 4, 2}).validate().empty());
  EXPECT_FALSE((FcLayerDesc{"bad", 0, 2}).validate().empty());
  EXPECT_FALSE((FcLayerDesc{"bad", 4, 0}).validate().empty());
}

TEST(FcLayer, AlexNetDims) {
  EXPECT_EQ(alexnet_fc6().in_features, 9216);
  EXPECT_EQ(alexnet_fc6().out_features, 4096);
  EXPECT_EQ(alexnet_fc7().in_features, 4096);
  EXPECT_EQ(alexnet_fc8().out_features, 1000);
}

TEST(FcAsConv, PreservesMacCount) {
  const FcLayerDesc fc = alexnet_fc6();
  const ConvLayerDesc conv = fc_as_conv(fc, 256, 6);
  EXPECT_EQ(conv.in_maps, 256);
  EXPECT_EQ(conv.kernel, 6);
  EXPECT_EQ(conv.out_maps, 4096);
  EXPECT_EQ(conv.out_rows, 1);
  EXPECT_EQ(conv.out_cols, 1);
  EXPECT_EQ(conv.total_macs(), fc.total_macs());
}

TEST(FcAsConv, VectorInputIsOneByOne) {
  const ConvLayerDesc conv = fc_as_conv(alexnet_fc7());
  EXPECT_EQ(conv.kernel, 1);
  EXPECT_EQ(conv.in_maps, 4096);
  EXPECT_EQ(conv.total_macs(), alexnet_fc7().total_macs());
}

TEST(FcForward, MatchesHandComputation) {
  const FcLayerDesc fc{"t", 3, 2};
  Tensor in({3});
  in.at(0) = 1.0F;
  in.at(1) = 2.0F;
  in.at(2) = -1.0F;
  Tensor w({2, 3});
  w.at(0, 0) = 1.0F;
  w.at(0, 1) = 0.0F;
  w.at(0, 2) = 2.0F;
  w.at(1, 0) = -1.0F;
  w.at(1, 1) = 1.0F;
  w.at(1, 2) = 0.5F;
  const Tensor out = fc_forward(fc, in, w);
  EXPECT_FLOAT_EQ(out.at(0), 1.0F - 2.0F);
  EXPECT_FLOAT_EQ(out.at(1), -1.0F + 2.0F - 0.5F);
}

TEST(FcAsConv, ConvolutionComputesTheSameResult) {
  // The §2.1 equivalence, verified numerically: FC forward == converted conv
  // forward on the same (reshaped) data.
  const std::int64_t in_maps = 4;
  const std::int64_t map = 3;
  const FcLayerDesc fc{"equiv", in_maps * map * map, 5};
  Rng rng(7);
  Tensor fc_in({fc.in_features});
  Tensor fc_w({fc.out_features, fc.in_features});
  fc_in.fill_random(rng);
  fc_w.fill_random(rng);

  const Tensor fc_out = fc_forward(fc, fc_in, fc_w);

  const ConvLayerDesc conv = fc_as_conv(fc, in_maps, map);
  ConvData data = make_conv_data(conv);
  // Reshape the FC input vector into the [C][H][W] volume.
  for (std::int64_t c = 0; c < in_maps; ++c) {
    for (std::int64_t h = 0; h < map; ++h) {
      for (std::int64_t w = 0; w < map; ++w) {
        data.input.at(c, h, w) = fc_in.at((c * map + h) * map + w);
      }
    }
  }
  data.weights = fc_weights_as_conv(fc, fc_w, in_maps, map);
  const Tensor conv_out = reference_conv(conv, data);
  ASSERT_EQ(conv_out.shape(), (std::vector<std::int64_t>{5, 1, 1}));
  for (std::int64_t o = 0; o < 5; ++o) {
    EXPECT_NEAR(conv_out.at(o, 0, 0), fc_out.at(o), 1e-4F);
  }
}

}  // namespace
}  // namespace sasynth
