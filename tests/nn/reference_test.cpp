#include "nn/reference.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sasynth {
namespace {

TEST(ReferenceConv, IdentityKernel) {
  // 1x1 kernel with weight 1 on a single map copies the input.
  const ConvLayerDesc layer = make_conv("id", 1, 1, 4, 1);
  ConvData data = make_conv_data(layer);
  data.weights.at(0, 0, 0, 0) = 1.0F;
  Rng rng(1);
  data.input.fill_random(rng);
  const Tensor out = reference_conv(layer, data);
  for (std::int64_t r = 0; r < 4; ++r) {
    for (std::int64_t c = 0; c < 4; ++c) {
      EXPECT_EQ(out.at(0, r, c), data.input.at(0, r, c));
    }
  }
}

TEST(ReferenceConv, BoxFilterSum) {
  // All-ones 3x3 kernel on all-ones input: every output is I*K*K.
  const ConvLayerDesc layer = make_conv("box", 2, 1, 3, 3);
  ConvData data = make_conv_data(layer);
  data.input.fill(1.0F);
  data.weights.fill(1.0F);
  const Tensor out = reference_conv(layer, data);
  for (std::int64_t r = 0; r < 3; ++r) {
    for (std::int64_t c = 0; c < 3; ++c) {
      EXPECT_FLOAT_EQ(out.at(0, r, c), 18.0F);  // 2*3*3
    }
  }
}

TEST(ReferenceConv, HandComputedExample) {
  // 1 map, 2x2 output, 2x2 kernel, hand-checkable numbers.
  const ConvLayerDesc layer = make_conv("hand", 1, 1, 2, 2);
  ConvData data = make_conv_data(layer);
  // Input (3x3): 1 2 3 / 4 5 6 / 7 8 9.
  float v = 1.0F;
  for (std::int64_t r = 0; r < 3; ++r) {
    for (std::int64_t c = 0; c < 3; ++c) data.input.at(0, r, c) = v++;
  }
  // Kernel: 1 0 / 0 1 (trace picker).
  data.weights.at(0, 0, 0, 0) = 1.0F;
  data.weights.at(0, 0, 1, 1) = 1.0F;
  const Tensor out = reference_conv(layer, data);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 1.0F + 5.0F);
  EXPECT_FLOAT_EQ(out.at(0, 0, 1), 2.0F + 6.0F);
  EXPECT_FLOAT_EQ(out.at(0, 1, 0), 4.0F + 8.0F);
  EXPECT_FLOAT_EQ(out.at(0, 1, 1), 5.0F + 9.0F);
}

TEST(ReferenceConv, StridedSampling) {
  // Stride 2, 1x1 kernel: output samples every other input pixel.
  const ConvLayerDesc layer = make_conv("s2", 1, 1, 3, 1, 2);
  ConvData data = make_conv_data(layer);
  data.weights.at(0, 0, 0, 0) = 1.0F;
  for (std::int64_t r = 0; r < layer.in_rows(); ++r) {
    for (std::int64_t c = 0; c < layer.in_cols(); ++c) {
      data.input.at(0, r, c) = static_cast<float>(10 * r + c);
    }
  }
  const Tensor out = reference_conv(layer, data);
  EXPECT_FLOAT_EQ(out.at(0, 1, 2), 10.0F * 2 + 4);
  EXPECT_FLOAT_EQ(out.at(0, 2, 0), 10.0F * 4 + 0);
}

TEST(ReferenceConv, LinearityInWeights) {
  const ConvLayerDesc layer = make_conv("lin", 3, 2, 4, 3);
  Rng rng(5);
  ConvData data = make_random_conv_data(layer, rng);
  const Tensor out1 = reference_conv(layer, data);
  // Double the weights -> double the output.
  for (std::int64_t i = 0; i < data.weights.size(); ++i) {
    data.weights.data()[i] *= 2.0F;
  }
  const Tensor out2 = reference_conv(layer, data);
  for (std::int64_t i = 0; i < out1.size(); ++i) {
    EXPECT_NEAR(out2.data()[i], 2.0F * out1.data()[i], 1e-4F);
  }
}

TEST(ReferenceConv, F64MatchesF32Closely) {
  const ConvLayerDesc layer = make_conv("f64", 8, 4, 5, 3);
  Rng rng(7);
  const ConvData data = make_random_conv_data(layer, rng);
  const Tensor f32 = reference_conv(layer, data);
  const Tensor f64 = reference_conv_f64(layer, data);
  EXPECT_LT(Tensor::max_abs_diff(f32, f64), 1e-3F);
}

TEST(ReferenceConv, OutputShape) {
  const ConvLayerDesc layer = make_conv("shape", 2, 7, 5, 3);
  const ConvData data = make_conv_data(layer);
  const Tensor out = reference_conv(layer, data);
  EXPECT_EQ(out.shape(), (std::vector<std::int64_t>{7, 5, 5}));
}

TEST(MakeRandomConvData, DeterministicAcrossRuns) {
  const ConvLayerDesc layer = make_conv("det", 2, 2, 3, 3);
  Rng r1(11);
  Rng r2(11);
  const ConvData a = make_random_conv_data(layer, r1);
  const ConvData b = make_random_conv_data(layer, r2);
  EXPECT_EQ(Tensor::max_abs_diff(a.input, b.input), 0.0F);
  EXPECT_EQ(Tensor::max_abs_diff(a.weights, b.weights), 0.0F);
}

}  // namespace
}  // namespace sasynth
