#include "nn/winograd.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sasynth {
namespace {

TEST(Winograd, Applicability) {
  EXPECT_TRUE(winograd_applicable(make_conv("a", 4, 4, 8, 3)));
  EXPECT_FALSE(winograd_applicable(make_conv("b", 4, 4, 8, 5)));
  EXPECT_FALSE(winograd_applicable(make_conv("c", 4, 4, 8, 3, 2)));
  EXPECT_FALSE(winograd_applicable(make_conv("d", 4, 4, 8, 1)));
}

TEST(Winograd, WeightTransformIdentityKernel) {
  // A centered delta kernel transforms to G e11 G^T; checking one known
  // entry validates matrix orientation: center tap spreads as outer product
  // of G's middle column (0.5, 0.5) pattern.
  const ConvLayerDesc layer = make_conv("wt", 1, 1, 4, 3);
  Tensor w({1, 1, 3, 3});
  w.at(0, 0, 1, 1) = 1.0F;  // delta at the kernel center
  const Tensor u = winograd_transform_weights(layer, w);
  EXPECT_EQ(u.shape(), (std::vector<std::int64_t>{1, 1, 4, 4}));
  EXPECT_FLOAT_EQ(u.at(0, 0, 0, 0), 0.0F);
  EXPECT_FLOAT_EQ(u.at(0, 0, 1, 1), 0.25F);
  EXPECT_FLOAT_EQ(u.at(0, 0, 2, 2), 0.25F);
  EXPECT_FLOAT_EQ(u.at(0, 0, 1, 2), -0.25F);
}

TEST(Winograd, MatchesReferenceEvenOutput) {
  const ConvLayerDesc layer = make_conv("wg", 5, 4, 8, 3);
  Rng rng(11);
  const ConvData data = make_random_conv_data(layer, rng);
  const Tensor direct = reference_conv(layer, data);
  const Tensor fast = winograd_conv(layer, data);
  EXPECT_LT(Tensor::max_abs_diff(direct, fast), 1e-3F);
}

TEST(Winograd, MatchesReferenceOddOutput) {
  // Odd output size exercises the tile clipping path.
  const ConvLayerDesc layer = make_conv("wgo", 3, 4, 13, 3);
  Rng rng(13);
  const ConvData data = make_random_conv_data(layer, rng);
  const Tensor direct = reference_conv(layer, data);
  const Tensor fast = winograd_conv(layer, data);
  EXPECT_LT(Tensor::max_abs_diff(direct, fast), 1e-3F);
}

TEST(Winograd, SingleTile) {
  const ConvLayerDesc layer = make_conv("wg1", 2, 2, 2, 3);
  Rng rng(17);
  const ConvData data = make_random_conv_data(layer, rng);
  EXPECT_LT(Tensor::max_abs_diff(reference_conv(layer, data),
                                 winograd_conv(layer, data)),
            1e-4F);
}

// Property sweep over layer geometries.
class WinogradSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(WinogradSweep, MatchesReference) {
  const auto [in_maps, out_maps, size] = GetParam();
  const ConvLayerDesc layer = make_conv("wgs", in_maps, out_maps, size, 3);
  Rng rng(static_cast<std::uint64_t>(in_maps * 100 + out_maps * 10 + size));
  const ConvData data = make_random_conv_data(layer, rng);
  EXPECT_LT(Tensor::max_abs_diff(reference_conv(layer, data),
                                 winograd_conv(layer, data)),
            2e-3F);
}

INSTANTIATE_TEST_SUITE_P(Geometries, WinogradSweep,
                         ::testing::Combine(::testing::Values(1, 3, 8),
                                            ::testing::Values(1, 4),
                                            ::testing::Values(2, 5, 6, 9)));

TEST(WinogradGain, ModelValues) {
  const WinogradGain gain = winograd_gain(make_conv("g", 64, 64, 14, 3));
  ASSERT_TRUE(gain.applicable);
  EXPECT_DOUBLE_EQ(gain.mult_reduction, 2.25);
  EXPECT_DOUBLE_EQ(gain.weight_footprint_growth, 16.0 / 9.0);
  // Projected ~2x with the default overhead (the paper's cited factor).
  EXPECT_GT(gain.projected_speedup, 1.8);
  EXPECT_LT(gain.projected_speedup, 2.25);
  EXPECT_NE(gain.summary().find("2.25x"), std::string::npos);
}

TEST(WinogradGain, NotApplicableIsNeutral) {
  const WinogradGain gain = winograd_gain(make_conv("g5", 4, 4, 8, 5));
  EXPECT_FALSE(gain.applicable);
  EXPECT_DOUBLE_EQ(gain.projected_speedup, 1.0);
  EXPECT_DOUBLE_EQ(gain.mult_reduction, 1.0);
}

}  // namespace
}  // namespace sasynth
