#include "nn/fft_conv.h"

#include <gtest/gtest.h>

#include <tuple>

#include "util/rng.h"

namespace sasynth {
namespace {

TEST(Fft1d, RoundTrip) {
  Rng rng(3);
  std::vector<std::complex<double>> data(16);
  std::vector<std::complex<double>> original(16);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = {rng.next_double(-1, 1), rng.next_double(-1, 1)};
    original[i] = data[i];
  }
  fft1d(data, false);
  fft1d(data, true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-12);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-12);
  }
}

TEST(Fft1d, ImpulseIsFlatSpectrum) {
  std::vector<std::complex<double>> data(8, {0.0, 0.0});
  data[0] = {1.0, 0.0};
  fft1d(data, false);
  for (const std::complex<double>& x : data) {
    EXPECT_NEAR(x.real(), 1.0, 1e-12);
    EXPECT_NEAR(x.imag(), 0.0, 1e-12);
  }
}

TEST(Fft1d, ParsevalEnergy) {
  Rng rng(5);
  std::vector<std::complex<double>> data(32);
  double time_energy = 0.0;
  for (std::complex<double>& x : data) {
    x = {rng.next_double(-1, 1), 0.0};
    time_energy += std::norm(x);
  }
  fft1d(data, false);
  double freq_energy = 0.0;
  for (const std::complex<double>& x : data) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy / 32.0, time_energy, 1e-9);
}

TEST(FftConv, ImpulseKernelCopiesInput) {
  const ConvLayerDesc layer = make_conv("fftid", 1, 1, 5, 3);
  ConvData data = make_conv_data(layer);
  data.weights.at(0, 0, 0, 0) = 1.0F;  // picks IN[r][c]
  Rng rng(7);
  data.input.fill_random(rng);
  const Tensor out = fft_conv(layer, data);
  for (std::int64_t r = 0; r < 5; ++r) {
    for (std::int64_t c = 0; c < 5; ++c) {
      EXPECT_NEAR(out.at(0, r, c), data.input.at(0, r, c), 1e-4F);
    }
  }
}

class FftConvSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(FftConvSweep, MatchesReference) {
  const auto [in_maps, size, kernel, stride] = GetParam();
  const ConvLayerDesc layer =
      make_conv("fft", in_maps, 3, size, kernel, stride);
  Rng rng(static_cast<std::uint64_t>(in_maps * 1000 + size * 100 +
                                     kernel * 10 + stride));
  const ConvData data = make_random_conv_data(layer, rng);
  const Tensor direct = reference_conv(layer, data);
  const Tensor fast = fft_conv(layer, data);
  EXPECT_LT(Tensor::max_abs_diff(direct, fast), 1e-3F) << layer.summary();
}

INSTANTIATE_TEST_SUITE_P(Geometries, FftConvSweep,
                         ::testing::Values(std::make_tuple(1, 6, 3, 1),
                                           std::make_tuple(4, 8, 3, 1),
                                           std::make_tuple(2, 7, 5, 1),
                                           std::make_tuple(3, 5, 1, 1),
                                           std::make_tuple(2, 6, 11, 1),
                                           std::make_tuple(2, 5, 3, 2),
                                           std::make_tuple(1, 4, 11, 4)));

TEST(FftConv, StatsCountMultiplies) {
  const ConvLayerDesc layer = make_conv("fftstat", 4, 4, 8, 3);
  Rng rng(11);
  const ConvData data = make_random_conv_data(layer, rng);
  FftConvStats stats;
  (void)fft_conv(layer, data, &stats);
  EXPECT_GT(stats.real_mults, 0);
  EXPECT_EQ(stats.direct_mults, layer.macs_per_group());
  EXPECT_NE(stats.summary().find("reduction"), std::string::npos);
}

TEST(FftConv, LargeKernelBeatsDirectSmallKernelDoesNot) {
  // The trade-off the fast-algorithms bench shows: on a stride-1 11x11
  // kernel with enough channels to amortize the input/inverse transforms,
  // the FFT spends fewer runtime multiplies than direct convolution; on a
  // small image with a 3x3 kernel it spends more.
  Rng rng(13);
  const ConvLayerDesc big = make_conv("fftbig", 16, 16, 20, 11);
  FftConvStats big_stats;
  (void)fft_conv(big, make_random_conv_data(big, rng), &big_stats);
  EXPECT_GT(big_stats.mult_reduction(), 1.0) << big_stats.summary();

  const ConvLayerDesc small = make_conv("fftsmall", 2, 2, 4, 3);
  FftConvStats small_stats;
  (void)fft_conv(small, make_random_conv_data(small, rng), &small_stats);
  EXPECT_LT(small_stats.mult_reduction(), 1.0) << small_stats.summary();
}

}  // namespace
}  // namespace sasynth
