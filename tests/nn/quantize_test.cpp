#include "nn/quantize.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace sasynth {
namespace {

TEST(Quantize, RoundTripWithinStep) {
  Tensor t({4});
  t.at(0) = 0.5F;
  t.at(1) = -0.25F;
  t.at(2) = 0.99F;
  t.at(3) = -1.0F;
  const QuantizedTensor q = quantize(t, 8);
  const Tensor back = dequantize(q);
  // Error bounded by half a quantization step.
  const float step = static_cast<float>(q.scale());
  EXPECT_LE(Tensor::max_abs_diff(t, back), step / 2.0F + 1e-7F);
}

TEST(Quantize, ZeroTensor) {
  Tensor t({3});
  const QuantizedTensor q = quantize(t, 8);
  for (const std::int32_t v : q.values) EXPECT_EQ(v, 0);
  const Tensor back = dequantize(q);
  EXPECT_EQ(Tensor::max_abs_diff(t, back), 0.0F);
}

TEST(Quantize, FracBitsScaleLargeValues) {
  Tensor t({1});
  t.at(0) = 100.0F;
  const QuantizedTensor q = quantize(t, 8);
  // 100 must fit in int8 => frac_bits <= 0.
  EXPECT_LE(q.frac_bits, 0);
  EXPECT_NEAR(dequantize(q).at(0), 100.0F, 100.0F * 0.02F);
}

TEST(Quantize, SaturationClamps) {
  Tensor t({2});
  t.at(0) = 1.0F;
  t.at(1) = -1.0F;
  const QuantizedTensor q = quantize_with_frac(t, 8, 10);  // scale too big
  EXPECT_EQ(q.values[0], 127);
  EXPECT_EQ(q.values[1], -128);
}

TEST(Quantize, SixteenBitFinerThanEight) {
  Tensor t({64});
  Rng rng(3);
  t.fill_random(rng, -1.0F, 1.0F);
  const Tensor b8 = dequantize(quantize(t, 8));
  const Tensor b16 = dequantize(quantize(t, 16));
  EXPECT_LT(Tensor::rms_diff(t, b16), Tensor::rms_diff(t, b8));
}

TEST(FixedPointConv, MatchesFloatWithinTolerance) {
  const ConvLayerDesc layer = make_conv("fx", 8, 4, 6, 3);
  Rng rng(17);
  const ConvData data = make_random_conv_data(layer, rng);
  const Tensor ref = reference_conv(layer, data);
  const Tensor fx = fixed_point_conv(layer, data, 8, 16);
  const QuantErrorReport report = compare_quantized(ref, fx);
  // The paper quotes <2% accuracy loss for 8/16-bit; the numeric RMS error
  // of the datapath itself is far below that.
  EXPECT_LT(report.relative_rms, 0.02);
  EXPECT_GT(report.ref_rms, 0.0);
}

TEST(FixedPointConv, WiderPixelsReduceError) {
  const ConvLayerDesc layer = make_conv("fxw", 4, 4, 5, 3);
  Rng rng(23);
  const ConvData data = make_random_conv_data(layer, rng);
  const Tensor ref = reference_conv(layer, data);
  const QuantErrorReport r8 =
      compare_quantized(ref, fixed_point_conv(layer, data, 8, 8));
  const QuantErrorReport r16 =
      compare_quantized(ref, fixed_point_conv(layer, data, 8, 16));
  EXPECT_LT(r16.rms_err, r8.rms_err);
}

TEST(FixedPointConv, ExactForPowerOfTwoValues) {
  // Inputs/weights representable exactly in both formats: zero error.
  const ConvLayerDesc layer = make_conv("exact", 2, 2, 3, 2);
  ConvData data = make_conv_data(layer);
  data.input.fill(0.5F);
  data.weights.fill(0.25F);
  const Tensor ref = reference_conv(layer, data);
  const Tensor fx = fixed_point_conv(layer, data, 8, 16);
  EXPECT_EQ(Tensor::max_abs_diff(ref, fx), 0.0F);
}

TEST(QuantErrorReport, SummaryContainsFields) {
  QuantErrorReport r;
  r.max_abs_err = 0.5;
  r.relative_rms = 0.01;
  const std::string s = r.summary();
  EXPECT_NE(s.find("max_abs_err"), std::string::npos);
  EXPECT_NE(s.find("relative_rms"), std::string::npos);
}

// Parameterized: quantization error shrinks monotonically with bit width.
class QuantBitsTest : public ::testing::TestWithParam<int> {};

TEST_P(QuantBitsTest, ErrorBoundedByStep) {
  const int bits = GetParam();
  Tensor t({256});
  Rng rng(31);
  t.fill_random(rng, -4.0F, 4.0F);
  const QuantizedTensor q = quantize(t, bits);
  const Tensor back = dequantize(q);
  EXPECT_LE(Tensor::max_abs_diff(t, back),
            static_cast<float>(q.scale()) / 2.0F + 1e-6F);
}

INSTANTIATE_TEST_SUITE_P(Widths, QuantBitsTest,
                         ::testing::Values(4, 6, 8, 10, 12, 16));

}  // namespace
}  // namespace sasynth
