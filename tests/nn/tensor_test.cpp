#include "nn/tensor.h"

#include <gtest/gtest.h>
#include <cmath>

#include "util/rng.h"

namespace sasynth {
namespace {

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6);
  EXPECT_EQ(t.rank(), 2);
  for (std::int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t.data()[i], 0.0F);
}

TEST(Tensor, ShapeAccessors) {
  Tensor t({4, 5, 6});
  EXPECT_EQ(t.dim(0), 4);
  EXPECT_EQ(t.dim(1), 5);
  EXPECT_EQ(t.dim(2), 6);
  EXPECT_EQ(t.shape_str(), "[4 x 5 x 6]");
}

TEST(Tensor, RowMajorLayout) {
  Tensor t({2, 3, 4});
  t.at(1, 2, 3) = 5.0F;
  // Row-major: offset = 1*12 + 2*4 + 3 = 23.
  EXPECT_EQ(t.data()[23], 5.0F);
  EXPECT_EQ(t.at(1, 2, 3), 5.0F);
}

TEST(Tensor, OffsetVector) {
  Tensor t({3, 4});
  EXPECT_EQ(t.offset({0, 0}), 0);
  EXPECT_EQ(t.offset({2, 3}), 11);
  EXPECT_EQ(t.offset({1, 2}), 6);
}

TEST(Tensor, Rank1Through4Access) {
  Tensor t1({5});
  t1.at(4) = 1.0F;
  EXPECT_EQ(t1.at(4), 1.0F);
  Tensor t2({2, 2});
  t2.at(1, 1) = 2.0F;
  EXPECT_EQ(t2.at(1, 1), 2.0F);
  Tensor t4({2, 2, 2, 2});
  t4.at(1, 0, 1, 0) = 3.0F;
  EXPECT_EQ(t4.at(1, 0, 1, 0), 3.0F);
}

TEST(Tensor, Fill) {
  Tensor t({3, 3});
  t.fill(7.5F);
  for (std::int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t.data()[i], 7.5F);
}

TEST(Tensor, FillRandomDeterministic) {
  Tensor a({10, 10});
  Tensor b({10, 10});
  Rng ra(3);
  Rng rb(3);
  a.fill_random(ra);
  b.fill_random(rb);
  EXPECT_EQ(Tensor::max_abs_diff(a, b), 0.0F);
  EXPECT_TRUE(Tensor::all_close(a, b, 0.0F));
}

TEST(Tensor, Diffs) {
  Tensor a({2, 2});
  Tensor b({2, 2});
  a.at(0, 0) = 1.0F;
  b.at(0, 0) = 1.5F;
  b.at(1, 1) = -2.0F;
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(a, b), 2.0F);
  EXPECT_NEAR(Tensor::rms_diff(a, b), std::sqrt((0.25 + 4.0) / 4.0), 1e-9);
  EXPECT_FALSE(Tensor::all_close(a, b, 0.1F));
  EXPECT_TRUE(Tensor::all_close(a, b, 2.0F));
}

TEST(Tensor, AllCloseShapeMismatch) {
  Tensor a({2, 2});
  Tensor b({4});
  EXPECT_FALSE(Tensor::all_close(a, b, 100.0F));
}

}  // namespace
}  // namespace sasynth
