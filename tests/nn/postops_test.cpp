#include "nn/postops.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace sasynth {
namespace {

TEST(Relu, ClampsNegatives) {
  Tensor t({4});
  t.at(0) = -1.0F;
  t.at(1) = 0.0F;
  t.at(2) = 2.5F;
  t.at(3) = -0.1F;
  const Tensor out = relu(t);
  EXPECT_FLOAT_EQ(out.at(0), 0.0F);
  EXPECT_FLOAT_EQ(out.at(1), 0.0F);
  EXPECT_FLOAT_EQ(out.at(2), 2.5F);
  EXPECT_FLOAT_EQ(out.at(3), 0.0F);
}

TEST(Sigmoid, KnownValues) {
  Tensor t({3});
  t.at(0) = 0.0F;
  t.at(1) = 100.0F;
  t.at(2) = -100.0F;
  const Tensor out = sigmoid(t);
  EXPECT_FLOAT_EQ(out.at(0), 0.5F);
  EXPECT_NEAR(out.at(1), 1.0F, 1e-6F);
  EXPECT_NEAR(out.at(2), 0.0F, 1e-6F);
}

TEST(MaxPool, TwoByTwoStrideTwo) {
  Tensor t({1, 4, 4});
  float v = 0.0F;
  for (std::int64_t r = 0; r < 4; ++r) {
    for (std::int64_t c = 0; c < 4; ++c) t.at(0, r, c) = v++;
  }
  const Tensor out = max_pool(t, 2, 2);
  ASSERT_EQ(out.shape(), (std::vector<std::int64_t>{1, 2, 2}));
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 5.0F);
  EXPECT_FLOAT_EQ(out.at(0, 0, 1), 7.0F);
  EXPECT_FLOAT_EQ(out.at(0, 1, 0), 13.0F);
  EXPECT_FLOAT_EQ(out.at(0, 1, 1), 15.0F);
}

TEST(MaxPool, OverlappingWindows) {
  // AlexNet-style 3x3 stride-2 pooling: output (H-3)/2+1.
  Tensor t({2, 5, 5});
  t.fill(1.0F);
  t.at(1, 2, 2) = 9.0F;
  const Tensor out = max_pool(t, 3, 2);
  ASSERT_EQ(out.shape(), (std::vector<std::int64_t>{2, 2, 2}));
  for (std::int64_t r = 0; r < 2; ++r) {
    for (std::int64_t c = 0; c < 2; ++c) {
      EXPECT_FLOAT_EQ(out.at(0, r, c), 1.0F);
      EXPECT_FLOAT_EQ(out.at(1, r, c), 9.0F);  // the peak is in every window
    }
  }
}

TEST(AvgPool, Uniform) {
  Tensor t({1, 4, 4});
  t.fill(3.0F);
  const Tensor out = avg_pool(t, 2, 2);
  for (std::int64_t i = 0; i < out.size(); ++i) {
    EXPECT_FLOAT_EQ(out.data()[i], 3.0F);
  }
}

TEST(AvgPool, Mixed) {
  Tensor t({1, 2, 2});
  t.at(0, 0, 0) = 1.0F;
  t.at(0, 0, 1) = 2.0F;
  t.at(0, 1, 0) = 3.0F;
  t.at(0, 1, 1) = 6.0F;
  const Tensor out = avg_pool(t, 2, 1);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 3.0F);
}

TEST(Flatten, PreservesOrderAndCount) {
  Tensor t({2, 2, 2});
  for (std::int64_t i = 0; i < 8; ++i) t.data()[i] = static_cast<float>(i);
  const Tensor out = flatten(t);
  ASSERT_EQ(out.shape(), (std::vector<std::int64_t>{8}));
  for (std::int64_t i = 0; i < 8; ++i) {
    EXPECT_FLOAT_EQ(out.at(i), static_cast<float>(i));
  }
}

TEST(Softmax, SumsToOneAndOrders) {
  Tensor t({3});
  t.at(0) = 1.0F;
  t.at(1) = 3.0F;
  t.at(2) = 2.0F;
  const Tensor out = softmax(t);
  float sum = 0.0F;
  for (std::int64_t i = 0; i < 3; ++i) sum += out.at(i);
  EXPECT_NEAR(sum, 1.0F, 1e-6F);
  EXPECT_GT(out.at(1), out.at(2));
  EXPECT_GT(out.at(2), out.at(0));
}

TEST(Softmax, StableForLargeInputs) {
  Tensor t({2});
  t.at(0) = 1000.0F;
  t.at(1) = 1001.0F;
  const Tensor out = softmax(t);
  EXPECT_FALSE(std::isnan(out.at(0)));
  EXPECT_NEAR(out.at(0) + out.at(1), 1.0F, 1e-6F);
}

TEST(Argmax, FirstOfTies) {
  Tensor t({4});
  t.at(0) = 1.0F;
  t.at(1) = 5.0F;
  t.at(2) = 5.0F;
  t.at(3) = 0.0F;
  EXPECT_EQ(argmax(t), 1);
}

}  // namespace
}  // namespace sasynth
