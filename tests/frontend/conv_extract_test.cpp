#include "frontend/conv_extract.h"

#include <gtest/gtest.h>

#include "frontend/flow.h"
#include "frontend/parser.h"
#include "loopnest/conv_nest.h"
#include "nn/network.h"

namespace sasynth {
namespace {

TEST(ConvExtract, RecoverDescriptorFromBuiltNest) {
  const ConvLayerDesc layer = alexnet_conv5();
  const ConvExtraction ex = extract_conv_layer(build_conv_nest(layer));
  ASSERT_TRUE(ex.ok) << ex.error;
  EXPECT_EQ(ex.layer.out_maps, 128);
  EXPECT_EQ(ex.layer.in_maps, 192);
  EXPECT_EQ(ex.layer.out_rows, 13);
  EXPECT_EQ(ex.layer.out_cols, 13);
  EXPECT_EQ(ex.layer.kernel, 3);
  EXPECT_EQ(ex.layer.stride, 1);
  EXPECT_EQ(ex.loop_o, ConvLoops::kO);
  EXPECT_EQ(ex.loop_q, ConvLoops::kQ);
}

TEST(ConvExtract, RoundTripThroughSourceText) {
  // render -> parse -> extract recovers the original descriptor, for both
  // unit and non-unit strides.
  for (const std::int64_t stride : {1LL, 2LL, 4LL}) {
    ConvLayerDesc layer = make_conv("rt", 6, 10, 7, 3, stride);
    const ParseResult parsed = parse_loop_nest(render_conv_source(layer));
    ASSERT_TRUE(parsed.ok) << parsed.error;
    const ConvExtraction ex = extract_conv_layer(parsed.nest);
    ASSERT_TRUE(ex.ok) << ex.error;
    EXPECT_EQ(ex.layer.in_maps, 6);
    EXPECT_EQ(ex.layer.out_maps, 10);
    EXPECT_EQ(ex.layer.out_rows, 7);
    EXPECT_EQ(ex.layer.kernel, 3);
    EXPECT_EQ(ex.layer.stride, stride);
  }
}

TEST(ConvExtract, ArbitraryLoopOrderAccepted) {
  // Loop roles come from access structure, not position: permute the nest.
  const char* const src = R"(
for (r = 0; r < 5; r++)
 for (q = 0; q < 3; q++)
  for (o = 0; o < 8; o++)
   for (c = 0; c < 5; c++)
    for (i = 0; i < 4; i++)
     for (p = 0; p < 3; p++)
      OUT[o][r][c] += W[o][i][p][q] * IN[i][r + p][c + q];
)";
  const ParseResult parsed = parse_loop_nest(src);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const ConvExtraction ex = extract_conv_layer(parsed.nest);
  ASSERT_TRUE(ex.ok) << ex.error;
  EXPECT_EQ(ex.layer.out_maps, 8);
  EXPECT_EQ(ex.layer.in_maps, 4);
  EXPECT_EQ(ex.loop_o, 2U);
  EXPECT_EQ(ex.loop_r, 0U);
}

TEST(ConvExtract, RenamedArraysAccepted) {
  const char* const src = R"(
for (a = 0; a < 4; a++)
 for (b = 0; b < 4; b++)
  for (x = 0; x < 5; x++)
   for (y = 0; y < 5; y++)
    for (u = 0; u < 3; u++)
     for (v = 0; v < 3; v++)
      result[a][y][x] += coeff[a][b][u][v] * img[b][y + u][x + v];
)";
  const ParseResult parsed = parse_loop_nest(src);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const ConvExtraction ex = extract_conv_layer(parsed.nest);
  ASSERT_TRUE(ex.ok) << ex.error;
  EXPECT_EQ(ex.layer.out_maps, 4);
  EXPECT_EQ(ex.layer.out_rows, 5);
}

struct RejectCase {
  const char* name;
  const char* source;
};

class ConvExtractRejectTest : public ::testing::TestWithParam<RejectCase> {};

TEST_P(ConvExtractRejectTest, Rejected) {
  const ParseResult parsed = parse_loop_nest(GetParam().source);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const ConvExtraction ex = extract_conv_layer(parsed.nest);
  EXPECT_FALSE(ex.ok);
  EXPECT_FALSE(ex.error.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ConvExtractRejectTest,
    ::testing::Values(
        RejectCase{"five_loops",
                   "for (o = 0; o < 4; o++)\n for (i = 0; i < 4; i++)\n  for "
                   "(r = 0; r < 4; r++)\n   for (p = 0; p < 3; p++)\n    for "
                   "(q = 0; q < 3; q++)\n     O[o][r][r] += W[o][i][p][q] * "
                   "IN[i][r + p][r + q];"},
        RejectCase{"rank2_weights",
                   "for (o = 0; o < 4; o++)\n for (i = 0; i < 4; i++)\n  for "
                   "(c = 0; c < 4; c++)\n   for (r = 0; r < 4; r++)\n    for "
                   "(p = 0; p < 3; p++)\n     for (q = 0; q < 3; q++)\n      "
                   "O[o][r][c] += W[o][i] * IN[i][r + p][c + q];"},
        RejectCase{"nonsquare_kernel",
                   "for (o = 0; o < 4; o++)\n for (i = 0; i < 4; i++)\n  for "
                   "(c = 0; c < 4; c++)\n   for (r = 0; r < 4; r++)\n    for "
                   "(p = 0; p < 3; p++)\n     for (q = 0; q < 5; q++)\n      "
                   "O[o][r][c] += W[o][i][p][q] * IN[i][r + p][c + q];"},
        RejectCase{"mismatched_strides",
                   "for (o = 0; o < 4; o++)\n for (i = 0; i < 4; i++)\n  for "
                   "(c = 0; c < 4; c++)\n   for (r = 0; r < 4; r++)\n    for "
                   "(p = 0; p < 3; p++)\n     for (q = 0; q < 3; q++)\n      "
                   "O[o][r][c] += W[o][i][p][q] * IN[i][2*r + p][3*c + q];"},
        RejectCase{"matmul",
                   "for (x = 0; x < 4; x++)\n for (y = 0; y < 4; y++)\n  for "
                   "(k = 0; k < 4; k++)\n   for (d1 = 0; d1 < 2; d1++)\n    "
                   "for (d2 = 0; d2 < 2; d2++)\n     for (d3 = 0; d3 < 2; "
                   "d3++)\n      Cm[x][y][k] += A[x][k][d1][d2] * "
                   "B[k][x + d1][y + d3];"}),
    [](const ::testing::TestParamInfo<RejectCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace sasynth
