#include "frontend/lexer.h"

#include <gtest/gtest.h>

namespace sasynth {
namespace {

std::vector<Token> lex_ok(const std::string& src) {
  std::vector<Token> tokens;
  std::string error;
  EXPECT_TRUE(lex(src, &tokens, &error)) << error;
  return tokens;
}

TEST(Lexer, EmptyInput) {
  const std::vector<Token> tokens = lex_ok("");
  ASSERT_EQ(tokens.size(), 1U);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEnd);
}

TEST(Lexer, IdentifiersAndNumbers) {
  const std::vector<Token> tokens = lex_ok("for o 128 _x1");
  ASSERT_EQ(tokens.size(), 5U);
  EXPECT_TRUE(tokens[0].is_ident("for"));
  EXPECT_TRUE(tokens[1].is_ident("o"));
  EXPECT_EQ(tokens[2].kind, TokenKind::kNumber);
  EXPECT_EQ(tokens[2].value, 128);
  EXPECT_TRUE(tokens[3].is_ident("_x1"));
}

TEST(Lexer, Digraphs) {
  const std::vector<Token> tokens = lex_ok("o++ x += +");
  EXPECT_TRUE(tokens[1].is_punct("++"));
  EXPECT_TRUE(tokens[3].is_punct("+="));
  EXPECT_TRUE(tokens[4].is_punct("+"));
}

TEST(Lexer, Punctuation) {
  const std::vector<Token> tokens = lex_ok("( ) [ ] { } ; < = *");
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    EXPECT_EQ(tokens[i].kind, TokenKind::kPunct);
  }
}

TEST(Lexer, PragmaCapturesWholeLine) {
  const std::vector<Token> tokens = lex_ok("#pragma sasynth systolic\nfor");
  ASSERT_GE(tokens.size(), 2U);
  EXPECT_EQ(tokens[0].kind, TokenKind::kPragma);
  EXPECT_EQ(tokens[0].text, "pragma sasynth systolic");
  EXPECT_TRUE(tokens[1].is_ident("for"));
}

TEST(Lexer, LineCommentsSkipped) {
  const std::vector<Token> tokens = lex_ok("a // comment with * and ;\nb");
  ASSERT_EQ(tokens.size(), 3U);
  EXPECT_TRUE(tokens[0].is_ident("a"));
  EXPECT_TRUE(tokens[1].is_ident("b"));
}

TEST(Lexer, LineNumbersTracked) {
  const std::vector<Token> tokens = lex_ok("a\nb\n\nc");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[2].line, 4);
}

TEST(Lexer, MalformedNumberRejected) {
  std::vector<Token> tokens;
  std::string error;
  EXPECT_FALSE(lex("123abc", &tokens, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos);
}

TEST(Lexer, UnexpectedCharacterRejected) {
  std::vector<Token> tokens;
  std::string error;
  EXPECT_FALSE(lex("a $ b", &tokens, &error));
  EXPECT_NE(error.find("'$'"), std::string::npos);
}

}  // namespace
}  // namespace sasynth
