#include "frontend/flow.h"

#include <gtest/gtest.h>

#include "nn/network.h"

namespace sasynth {
namespace {

FlowOptions tiny_flow_options() {
  FlowOptions options;
  options.device = tiny_test_device();
  options.dtype = DataType::kFloat32;
  options.dse.min_dsp_util = 0.5;
  options.dse.max_rows = 8;
  options.dse.max_cols = 8;
  options.dse.max_vec = 8;
  return options;
}

const char* const kTinyConv = R"(
#pragma sasynth systolic
for (o = 0; o < 8; o++)
 for (i = 0; i < 8; i++)
  for (c = 0; c < 6; c++)
   for (r = 0; r < 6; r++)
    for (p = 0; p < 3; p++)
     for (q = 0; q < 3; q++)
      OUT[o][r][c] += W[o][i][p][q] * IN[i][r + p][c + q];
)";

TEST(Flow, EndToEndSuccess) {
  const FlowResult result = run_automation_flow(kTinyConv, tiny_flow_options());
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.parse.ok);
  EXPECT_TRUE(result.conv.ok);
  EXPECT_FALSE(result.dse.empty());
  EXPECT_GT(result.best.realized_gops(), 0.0);
  // All artifacts produced.
  EXPECT_NE(result.kernel.kernel_cl.find("__kernel void pe"),
            std::string::npos);
  EXPECT_NE(result.kernel.params_h.find("#define CFG_O 8"), std::string::npos);
  EXPECT_NE(result.host_program.find("clEnqueueTask"), std::string::npos);
  EXPECT_NE(result.report.find("Design Space Exploration Report"),
            std::string::npos);
}

TEST(Flow, KernelParamsMatchChosenDesign) {
  const FlowResult result = run_automation_flow(kTinyConv, tiny_flow_options());
  ASSERT_TRUE(result.ok) << result.error;
  const ArrayShape& shape = result.best.design.shape();
  EXPECT_NE(result.kernel.params_h.find(
                "#define PE_ROWS " + std::to_string(shape.rows)),
            std::string::npos);
  EXPECT_NE(result.kernel.params_h.find(
                "#define SIMD_VEC " + std::to_string(shape.vec)),
            std::string::npos);
}

TEST(Flow, ParseErrorPropagates) {
  const FlowResult result =
      run_automation_flow("for (a = 1; a < 2; a++) x;", tiny_flow_options());
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("parse error"), std::string::npos);
}

TEST(Flow, NonConvNestRejected) {
  const char* const matvec = R"(
for (x = 0; x < 4; x++)
 for (k = 0; k < 4; k++)
  Y[x] += A[x][k] * V[k];
)";
  const FlowResult result = run_automation_flow(matvec, tiny_flow_options());
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("unsupported loop nest"), std::string::npos);
}

TEST(Flow, PragmaRequirementEnforced) {
  FlowOptions options = tiny_flow_options();
  options.require_pragma = true;
  const std::string no_pragma = R"(
for (o = 0; o < 8; o++)
 for (i = 0; i < 8; i++)
  for (c = 0; c < 6; c++)
   for (r = 0; r < 6; r++)
    for (p = 0; p < 3; p++)
     for (q = 0; q < 3; q++)
      OUT[o][r][c] += W[o][i][p][q] * IN[i][r + p][c + q];
)";
  EXPECT_FALSE(run_automation_flow(no_pragma, options).ok);
  EXPECT_TRUE(run_automation_flow(kTinyConv, options).ok);
}

TEST(Flow, ImpossibleDeviceReportsNoDesign) {
  FlowOptions options = tiny_flow_options();
  options.device.bram_blocks = 1;  // nothing fits
  const FlowResult result = run_automation_flow(kTinyConv, options);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("no valid design"), std::string::npos);
}

TEST(RenderConvSource, MatchesCode1Shape) {
  const std::string src = render_conv_source(alexnet_conv5());
  EXPECT_NE(src.find("#pragma sasynth systolic"), std::string::npos);
  EXPECT_NE(src.find("for (o = 0; o < 128; o++)"), std::string::npos);
  EXPECT_NE(src.find("IN[i][r + p][c + q]"), std::string::npos);
  const std::string strided =
      render_conv_source(make_conv("s", 3, 96, 55, 11, 4));
  EXPECT_NE(strided.find("IN[i][4*r + p][4*c + q]"), std::string::npos);
}

}  // namespace
}  // namespace sasynth
