#include "frontend/parser.h"

#include <gtest/gtest.h>

#include "loopnest/conv_nest.h"
#include "util/rng.h"

namespace sasynth {
namespace {

const char* const kConvSource = R"(
#pragma sasynth systolic
for (o = 0; o < 128; o++)
 for (i = 0; i < 192; i++)
  for (c = 0; c < 13; c++)
   for (r = 0; r < 13; r++)
    for (p = 0; p < 3; p++)
     for (q = 0; q < 3; q++)
      OUT[o][r][c] += W[o][i][p][q] * IN[i][r + p][c + q];
)";

TEST(Parser, ParsesCode1) {
  const ParseResult result = parse_loop_nest(kConvSource);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.nest.num_loops(), 6U);
  EXPECT_EQ(result.nest.loop(0).name, "o");
  EXPECT_EQ(result.nest.loop(0).trip, 128);
  EXPECT_EQ(result.nest.loop(5).name, "q");
  EXPECT_EQ(result.nest.num_accesses(), 3U);
  EXPECT_TRUE(result.has_pragma_word("systolic"));
  EXPECT_FALSE(result.has_pragma_word("winograd"));
}

TEST(Parser, AccessStructure) {
  const ParseResult result = parse_loop_nest(kConvSource);
  ASSERT_TRUE(result.ok);
  const LoopNest& nest = result.nest;
  const std::size_t out = nest.find_access("OUT");
  ASSERT_NE(out, LoopNest::npos);
  EXPECT_EQ(nest.accesses()[out].role, AccessRole::kReduce);
  EXPECT_EQ(nest.accesses()[out].access.rank(), 3U);
  const std::size_t in = nest.find_access("IN");
  ASSERT_NE(in, LoopNest::npos);
  // IN dim 1 is r + p.
  EXPECT_EQ(nest.accesses()[in].access.indices[1].coeff(3), 1);  // r
  EXPECT_EQ(nest.accesses()[in].access.indices[1].coeff(4), 1);  // p
}

TEST(Parser, IntDeclarationAndBraces) {
  const char* const src = R"(
for (int a = 0; a < 4; a++) {
  for (int b = 0; b < 5; b++) {
    O[a] += X[b] * Y[a][b];
  }
}
)";
  const ParseResult result = parse_loop_nest(src);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.nest.num_loops(), 2U);
  EXPECT_EQ(result.nest.loop(1).trip, 5);
}

TEST(Parser, StridedAccess) {
  const char* const src = R"(
for (o = 0; o < 4; o++)
 for (i = 0; i < 4; i++)
  for (c = 0; c < 4; c++)
   for (r = 0; r < 4; r++)
    for (p = 0; p < 3; p++)
     for (q = 0; q < 3; q++)
      OUT[o][r][c] += W[o][i][p][q] * IN[i][2*r + p][2*c + q];
)";
  const ParseResult result = parse_loop_nest(src);
  ASSERT_TRUE(result.ok) << result.error;
  const LoopNest& nest = result.nest;
  const std::size_t in = nest.find_access("IN");
  EXPECT_EQ(nest.accesses()[in].access.indices[1].coeff(3), 2);
  // Reversed coefficient order also accepted: q*2.
  const char* const src2 = R"(
for (a = 0; a < 4; a++)
 for (b = 0; b < 4; b++)
  O[a] += X[a][b*2] * Y[b];
)";
  const ParseResult r2 = parse_loop_nest(src2);
  ASSERT_TRUE(r2.ok) << r2.error;
  EXPECT_EQ(r2.nest.accesses()[1].access.indices[1].coeff(1), 2);
}

TEST(Parser, MultiplePragmas) {
  const std::string src = std::string("#pragma one\n#pragma two three\n") +
                          "for (a = 0; a < 2; a++)\n O[a] += X[a] * Y[a];\n";
  const ParseResult result = parse_loop_nest(src);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.pragmas.size(), 2U);
  EXPECT_TRUE(result.has_pragma_word("three"));
}

TEST(ParserFuzz, RandomTokenSoupNeverCrashes) {
  // Robustness: arbitrary token sequences must produce a clean error (or,
  // rarely, a valid parse), never a crash or hang.
  const std::vector<std::string> vocab{
      "for", "(", ")", "[", "]", "{", "}", ";", "<", "=", "+", "*", "++",
      "+=", "o", "i", "OUT", "W", "IN", "0", "1", "13", "int",
      "#pragma sasynth systolic\n"};
  Rng rng(4242);
  for (int trial = 0; trial < 400; ++trial) {
    std::string source;
    const std::int64_t len = rng.next_range(1, 40);
    for (std::int64_t t = 0; t < len; ++t) {
      source += vocab[rng.next_below(vocab.size())];
      source += " ";
    }
    const ParseResult result = parse_loop_nest(source);
    if (!result.ok) {
      EXPECT_FALSE(result.error.empty());
    }
  }
}

TEST(ParserFuzz, TruncatedConvPrefixesFailCleanly) {
  const std::string full = R"(#pragma sasynth systolic
for (o = 0; o < 8; o++)
 for (i = 0; i < 8; i++)
  OUT[o][i] += W[o][i] * IN[i][o];
)";
  for (std::size_t cut = 0; cut < full.size(); cut += 3) {
    const ParseResult result = parse_loop_nest(full.substr(0, cut));
    if (cut < full.size() - 2) {
      EXPECT_FALSE(result.ok) << "prefix length " << cut;
    }
  }
}

struct BadCase {
  const char* name;
  const char* source;
  const char* expect_in_error;
};

class ParserErrorTest : public ::testing::TestWithParam<BadCase> {};

TEST_P(ParserErrorTest, Rejected) {
  const ParseResult result = parse_loop_nest(GetParam().source);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find(GetParam().expect_in_error), std::string::npos)
      << "actual error: " << result.error;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParserErrorTest,
    ::testing::Values(
        BadCase{"nonzero_start",
                "for (a = 1; a < 4; a++)\n O[a] += X[a] * Y[a];", "start at 0"},
        BadCase{"wrong_cond_var",
                "for (a = 0; b < 4; a++)\n O[a] += X[a] * Y[a];",
                "condition"},
        BadCase{"wrong_inc_var",
                "for (a = 0; a < 4; b++)\n O[a] += X[a] * Y[a];",
                "increment"},
        BadCase{"shadowing",
                "for (a = 0; a < 4; a++)\n for (a = 0; a < 2; a++)\n  O[a] += "
                "X[a] * Y[a];",
                "shadows"},
        BadCase{"zero_bound",
                "for (a = 0; a < 0; a++)\n O[a] += X[a] * Y[a];", ">= 1"},
        BadCase{"unknown_iter",
                "for (a = 0; a < 4; a++)\n O[a] += X[z] * Y[a];",
                "not an enclosing loop"},
        BadCase{"no_subscript",
                "for (a = 0; a < 4; a++)\n O += X[a] * Y[a];", "expected '['"},
        BadCase{"trailing_tokens",
                "for (a = 0; a < 4; a++)\n O[a] += X[a] * Y[a]; extra",
                "trailing"},
        BadCase{"missing_semicolon",
                "for (a = 0; a < 4; a++)\n O[a] += X[a] * Y[a]", "';'"},
        BadCase{"not_mac",
                "for (a = 0; a < 4; a++)\n O[a] += X[a];", "'*'"}),
    [](const ::testing::TestParamInfo<BadCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace sasynth
