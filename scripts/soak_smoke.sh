#!/usr/bin/env bash
# Soak smoke for sasynthd: ~60 seconds of mixed TCP traffic — cacheable
# requests, cold requests on tight deadlines, dead-on-arrival requests,
# health/ping probes — while fault storms (stalls, short reads, admission
# errors, disk-store failures) are armed, finished by a SIGTERM.
#
# Pass criteria:
#   * the daemon never crashes and exits 0 after a clean drain
#     ("drained, exiting" on stderr);
#   * ok AND timeout verdicts were both actually served;
#   * the `requests` counter sampled via `health` is monotonic;
#   * no sanitizer report in either log (the CI sanitize jobs run this
#     script too).
#
# Usage: scripts/soak_smoke.sh [path/to/sasynthd]
#   SOAK_SECONDS overrides the traffic duration (default 60).
set -u

BIN=${1:-build/tools/sasynthd}
DURATION=${SOAK_SECONDS:-60}

fail() { echo "soak_smoke: FAIL: $*" >&2; exit 1; }

[ -x "$BIN" ] || fail "daemon binary not found: $BIN"

workdir=$(mktemp -d)
daemon_pid=""
cleanup() {
  [ -n "$daemon_pid" ] && kill -KILL "$daemon_pid" 2>/dev/null
  rm -rf "$workdir"
}
trap cleanup EXIT

# The storm: a handful of stalled reads (each ends one session via the I/O
# timeout), a long benign short-read/short-write storm, a burst of admission
# faults (retry verdicts), and failing disk persists (memory tier carries on).
export SASYNTH_FAULTS='tcp.read:stall@25x15,tcp.write:short_read@3x400,sched.admit:error@60x5,cache.store:enospc@2x10'

"$BIN" --port 0 --cache "$workdir/cache" --jobs 4 \
  --default-deadline 5000 --io-timeout 1000 --drain-timeout 8000 \
  --metrics-out "$workdir/metrics.prom" \
  > "$workdir/stdout.log" 2> "$workdir/stderr.log" &
daemon_pid=$!

# --port 0 prints the chosen port on stdout.
port=""
for _ in $(seq 1 100); do
  port=$(sed -n 's/^sasynthd listening on 127\.0\.0\.1:\([0-9][0-9]*\)$/\1/p' \
         "$workdir/stdout.log" | head -n 1)
  [ -n "$port" ] && break
  kill -0 "$daemon_pid" 2>/dev/null || break
  sleep 0.1
done
[ -n "$port" ] || { cat "$workdir/stderr.log" >&2; fail "daemon never reported its port"; }
echo "soak_smoke: daemon pid=$daemon_pid port=$port, running ${DURATION}s of traffic"

# One fresh connection per call; reads until $2 end-terminated blocks arrived.
# Sessions killed mid-flight by the armed stalls make read time out or the
# connection drop — both are expected, the caller just gets a short answer.
talk() {
  local script=$1 blocks=$2 out="" line seen=0
  exec 3<>"/dev/tcp/127.0.0.1/$port" 2>/dev/null || return 1
  printf '%b' "$script" >&3 2>/dev/null
  while [ "$seen" -lt "$blocks" ] && IFS= read -r -t 10 line <&3; do
    out+=$line$'\n'
    [ "$line" = "end" ] && seen=$((seen + 1))
  done
  exec 3<&- 3>&-
  printf '%s' "$out"
}

req_tiny='sasynth-request v1\nlayer 16,16,8,8,3\ndevice tiny\noption min_util 0.5\nend\n'
req_tiny2='sasynth-request v1\nlayer 8,16,4,4,3\ndevice tiny\noption min_util 0.5\nend\n'
# Cold AlexNet-sized layer on a budget far below its DSE time: mid-DSE timeout.
req_tight='sasynth-request v1\nlayer 48,128,13,13,3\ndeadline_ms 100\nend\n'
# Dead on arrival: shed at admission.
req_doa='sasynth-request v1\nlayer 16,16,8,8,3\ndevice tiny\ndeadline_ms 0\nend\n'

ok_seen=0
timeout_seen=0
health_samples="$workdir/health_requests.txt"
: > "$health_samples"

end_at=$(( $(date +%s) + DURATION ))
i=0
while [ "$(date +%s)" -lt "$end_at" ]; do
  kill -0 "$daemon_pid" 2>/dev/null || fail "daemon died mid-soak (see $workdir/stderr.log)"
  i=$((i + 1))
  case $((i % 7)) in
    0) talk 'ping\n' 1 >/dev/null ;;
    1|4) resp=$(talk "$req_tiny" 1)
         case $resp in *"sasynth-response v1 ok"*) ok_seen=$((ok_seen + 1));; esac ;;
    2) resp=$(talk "$req_tight" 1)
       case $resp in *"sasynth-response v1 timeout"*) timeout_seen=$((timeout_seen + 1));; esac ;;
    3) resp=$(talk "$req_doa" 1)
       case $resp in *"timeout deadline expired before admission"*) timeout_seen=$((timeout_seen + 1));; esac ;;
    5) resp=$(talk "$req_tiny2" 1)
       case $resp in *"sasynth-response v1 ok"*) ok_seen=$((ok_seen + 1));; esac ;;
    6) resp=$(talk 'health\n' 1)
       case $resp in
         *"sasynth-health v1"*)
           printf '%s\n' "$resp" | sed -n 's/^requests \([0-9][0-9]*\)$/\1/p' >> "$health_samples" ;;
       esac ;;
  esac
done
echo "soak_smoke: traffic done after $i connections (ok=$ok_seen timeout=$timeout_seen)"

[ "$ok_seen" -ge 1 ] || fail "no ok verdict was ever served"
[ "$timeout_seen" -ge 1 ] || fail "no timeout verdict was ever served"
[ -s "$health_samples" ] || fail "no health sample ever answered"

# Counters are monotonic: the requests series sampled via health never dips.
sort -n -C "$health_samples" || fail "health 'requests' counter went backwards: $(tr '\n' ' ' < "$health_samples")"

# Finish line: SIGTERM must drain and exit 0.
kill -TERM "$daemon_pid"
status=0
wait "$daemon_pid" || status=$?
daemon_pid=""
[ "$status" -eq 0 ] || { cat "$workdir/stderr.log" >&2; fail "daemon exited $status after SIGTERM"; }
grep -q 'received SIGTERM, draining' "$workdir/stderr.log" \
  || fail "drain start message missing from stderr"
grep -q 'drained, exiting' "$workdir/stderr.log" \
  || fail "clean-drain message missing from stderr"
[ -s "$workdir/metrics.prom" ] || fail "--metrics-out dump missing after drain"

# No crash or sanitizer report anywhere.
if grep -E -q 'AddressSanitizer|ThreadSanitizer|UndefinedBehaviorSanitizer|runtime error:|Segmentation fault' \
     "$workdir/stdout.log" "$workdir/stderr.log"; then
  cat "$workdir/stderr.log" >&2
  fail "sanitizer/crash report in the daemon logs"
fi

echo "soak_smoke: PASS"
