#!/usr/bin/env bash
# Fleet-resilience chaos smoke for sasynthd: 3 worker daemons + 1 coordinator
# with circuit breakers, hedging, and the background re-admission prober all
# armed (docs/SERVING.md "Peer health"). scripts/shard_smoke.sh covers the
# one-shot kill; this script flaps a worker and asserts the full breaker
# lifecycle end to end:
#
# Phase 1 (healthy identity): the mixed trace replays byte-identical between
# the coordinator and a plain single daemon.
#
# Phase 2 (SIGSTOP): one worker is frozen mid-fleet. Requests keep getting
# terminal, byte-identical responses (hedged local re-execution races the
# stalled RPC); after --peer-failure-threshold failures the peer's breaker
# opens in `health`.
#
# Phase 3 (SIGCONT): the worker thaws; the prober's ping moves it to
# half-open and the next request's single-flight probe closes the breaker —
# automatic re-admission, no restart.
#
# Phase 4 (SIGKILL + same-port restart): the worker is killed outright, the
# breaker re-opens, a fresh worker binds the same port, and the prober
# re-admits it within one backoff step. The full trace then replays
# byte-identical again.
#
# Finish line: breaker/probe/hedge counters visible in stats --format=prom,
# SIGTERM drain exits 0, and no daemon log carries a sanitizer report.
#
# Usage: scripts/chaos_smoke.sh [path/to/sasynthd]
set -u

BIN=${1:-build/tools/sasynthd}

fail() { echo "chaos_smoke: FAIL: $*" >&2; exit 1; }

[ -x "$BIN" ] || fail "daemon binary not found: $BIN"

workdir=$(mktemp -d)
cleanup() {
  for f in "$workdir"/*.pid; do
    [ -f "$f" ] || continue
    kill -CONT "$(cat "$f")" 2>/dev/null
    kill -KILL "$(cat "$f")" 2>/dev/null
    wait "$(cat "$f")" 2>/dev/null
  done
  rm -rf "$workdir"
}
trap cleanup EXIT

# Starts a daemon on the given port (0 = ephemeral) with extra flags. NOT
# called in $(...) — the daemon must stay a child of this shell so `wait`
# can collect it; port/pid come back via files (daemon_port/daemon_pid).
start_daemon() {
  local tag=$1 port=$2; shift 2
  "$BIN" --port "$port" --log-level warn "$@" \
    > "$workdir/$tag.out" 2> "$workdir/$tag.err" &
  local pid=$!
  echo "$pid" > "$workdir/$tag.pid"
  local got=""
  for _ in $(seq 1 100); do
    got=$(sed -n 's/^sasynthd listening on 127\.0\.0\.1:\([0-9][0-9]*\)$/\1/p' \
          "$workdir/$tag.out" | head -n 1)
    [ -n "$got" ] && break
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
  done
  [ -n "$got" ] || { cat "$workdir/$tag.err" >&2; fail "$tag never reported its port"; }
  echo "$got" > "$workdir/$tag.port"
}

daemon_pid() { cat "$workdir/$1.pid"; }
daemon_port() { cat "$workdir/$1.port"; }

# One fresh connection: send the script, read one end-terminated block.
talk() {
  local port=$1 script=$2 out="" line
  exec 3<>"/dev/tcp/127.0.0.1/$port" 2>/dev/null || return 1
  printf '%b' "$script" >&3 2>/dev/null
  while IFS= read -r -t 60 line <&3; do
    out+=$line$'\n'
    [ "$line" = "end" ] && break
  done
  exec 3<&- 3>&-
  printf '%s' "$out"
}

# One per-peer breaker field from the coordinator's `health` rows
# (peer<i>_<field> <value>; server.cpp health_text).
health_field() {
  local port=$1 peer=$2 field=$3
  talk "$port" 'health\n' | sed -n "s/^peer${peer}_${field} //p" | head -n 1
}

# Polls health_field until it equals the wanted value. Generous bound
# (~30 s) so TSan-built daemons and backed-off probe schedules both fit.
wait_for_state() {
  local port=$1 peer=$2 want=$3 what=$4 state=""
  for _ in $(seq 1 120); do
    state=$(health_field "$port" "$peer" state)
    [ "$state" = "$want" ] && return 0
    sleep 0.25
  done
  talk "$port" 'health\n' >&2
  fail "$what: peer$peer never reached state '$want' (last: '$state')"
}

# The request must shard, degrade, or hedge — never hang or corrupt: assert
# a terminal verdict byte-identical to the single-node reference.
check_identical() {
  local trace=$1 what=$2
  local ref got
  ref=$(talk "$single_port" "$trace")
  got=$(talk "$coord_port" "$trace")
  case $got in
    *"sasynth-response v1 ok"*|*"sasynth-response v1 timeout"*) ;;
    *) fail "$what: no terminal verdict: $got" ;;
  esac
  [ "$got" = "$ref" ] || fail "$what: response differs from single node"
}

# The mixed trace (same layers as shard_smoke.sh): AlexNet conv1/conv2 and
# GoogLeNet layers across jobs 1 and 4.
traces=(
  'sasynth-request v1\nlayer 3,64,55,55,11,4,1\ndevice arria10_gt1150\noption jobs 1\nend\n'
  'sasynth-request v1\nlayer 96,256,27,27,5,1,2\ndevice arria10_gt1150\noption jobs 4\nend\n'
  'sasynth-request v1\nlayer 192,96,28,28,1\ndevice arria10_gt1150\noption jobs 4\nend\n'
  'sasynth-request v1\nlayer 480,192,14,14,3\ndevice arria10_gt1150\noption jobs 4\nend\n'
)

start_daemon w1 0
start_daemon w2 0
start_daemon w3 0
start_daemon single 0
w1_port=$(daemon_port w1)
w2_port=$(daemon_port w2)
w3_port=$(daemon_port w3)
single_port=$(daemon_port single)
# --no-cache so every request re-enters the fan-out (a DesignCache hit would
# bypass the breakers we are here to exercise). Short io-timeout bounds each
# failure; threshold 2 opens after two bad requests; probe every 500 ms;
# hedge stalled peers after 200 ms.
start_daemon coord 0 \
  --peers "127.0.0.1:$w1_port,127.0.0.1:$w2_port,127.0.0.1:$w3_port" \
  --no-cache --shard-io-timeout 1000 --peer-failure-threshold 2 \
  --peer-probe-interval 500 --shard-hedge-ms 200
coord_port=$(daemon_port coord)
echo "chaos_smoke: workers $w1_port $w2_port $w3_port, single $single_port, coordinator $coord_port"

# --- phase 1: healthy byte-identity ---
for i in "${!traces[@]}"; do
  check_identical "${traces[$i]}" "healthy trace $i"
done
[ "$(health_field "$coord_port" 1 state)" = "closed" ] \
  || fail "peer1 not closed after the healthy pass"
echo "chaos_smoke: healthy pass done (${#traces[@]} requests byte-identical)"

# --- phase 2: SIGSTOP w2 — hedged responses, then the breaker opens ---
kill -STOP "$(daemon_pid w2)"
for i in "${!traces[@]}"; do
  check_identical "${traces[$i]}" "stopped-worker trace $i"
done
wait_for_state "$coord_port" 1 open "after SIGSTOP"
echo "chaos_smoke: breaker open for frozen w2 (responses stayed identical)"

# --- phase 3: SIGCONT w2 — prober re-admits without a restart ---
kill -CONT "$(daemon_pid w2)"
for _ in $(seq 1 120); do
  state=$(health_field "$coord_port" 1 state)
  [ "$state" = "closed" ] && break
  # half-open: the next request carries the single-flight probe RPC.
  check_identical "${traces[0]}" "re-admission probe request"
  sleep 0.25
done
[ "$(health_field "$coord_port" 1 state)" = "closed" ] \
  || fail "thawed w2 was never re-admitted"
check_identical "${traces[1]}" "post-re-admission request"
echo "chaos_smoke: thawed w2 re-admitted (breaker closed again)"

# --- phase 4: SIGKILL w2, restart on the same port, automatic re-admission ---
kill -KILL "$(daemon_pid w2)"
wait "$(daemon_pid w2)" 2>/dev/null
rm -f "$workdir/w2.pid"
for i in "${!traces[@]}"; do
  check_identical "${traces[$i]}" "killed-worker trace $i"
done
wait_for_state "$coord_port" 1 open "after SIGKILL"
opens=$(health_field "$coord_port" 1 breaker_opens)
[ "${opens:-0}" -ge 2 ] || fail "expected >= 2 breaker opens for w2, got '$opens'"

start_daemon w2b "$w2_port"
# The prober's next successful ping flips open -> half-open; one request
# then closes it. Backoff is capped at 16x the 500 ms base, so the generous
# wait_for_state bound covers the worst-case schedule.
for _ in $(seq 1 120); do
  state=$(health_field "$coord_port" 1 state)
  [ "$state" = "closed" ] && break
  [ "$state" = "half_open" ] && check_identical "${traces[0]}" "restart probe request"
  sleep 0.25
done
[ "$(health_field "$coord_port" 1 state)" = "closed" ] \
  || fail "restarted w2 was never re-admitted"
for i in "${!traces[@]}"; do
  check_identical "${traces[$i]}" "post-restart trace $i"
done
echo "chaos_smoke: killed w2 restarted on port $w2_port and re-admitted"

# --- counters: the lifecycle must be visible in the registry ---
prom=$(talk "$coord_port" 'stats --format=prom\n')
prom_value() { printf '%s\n' "$prom" | awk -v n="sasynth_$1" '$1 == n { print $2 }'; }
[ "$(prom_value shard_breaker_opens_total)" -ge 2 ] 2>/dev/null \
  || fail "shard_breaker_opens_total not >= 2: $(prom_value shard_breaker_opens_total)"
[ "$(prom_value shard_probes_total)" -ge 1 ] 2>/dev/null \
  || fail "shard_probes_total not >= 1: $(prom_value shard_probes_total)"
[ "$(prom_value shard_hedges_total)" -ge 1 ] 2>/dev/null \
  || fail "shard_hedges_total not >= 1: $(prom_value shard_hedges_total)"
[ "$(prom_value shard_hedge_wins_total)" -ge 1 ] 2>/dev/null \
  || fail "shard_hedge_wins_total not >= 1: $(prom_value shard_hedge_wins_total)"
echo "chaos_smoke: breaker/probe/hedge counters all visible in prom stats"

# --- finish: drain the coordinator with a request in flight ---
( talk "$coord_port" 'sasynth-request v1\nlayer 256,384,13,13,3\ndevice arria10_gt1150\noption jobs 4\nend\n' \
    > "$workdir/inflight.txt" ) &
inflight=$!
sleep 0.2
kill -TERM "$(daemon_pid coord)"
status=0
wait "$(daemon_pid coord)" || status=$?
wait "$inflight" 2>/dev/null
[ "$status" -eq 0 ] || { cat "$workdir/coord.err" >&2; fail "coordinator exited $status after SIGTERM"; }
grep -q 'drained, exiting' "$workdir/coord.err" \
  || fail "clean-drain message missing from coordinator stderr"
grep -q 'sasynth-response v1' "$workdir/inflight.txt" \
  || fail "in-flight request got no response across the drain"

# No crash or sanitizer report in any daemon log.
if grep -E -q 'AddressSanitizer|ThreadSanitizer|UndefinedBehaviorSanitizer|runtime error:|Segmentation fault' \
     "$workdir"/*.out "$workdir"/*.err; then
  grep -E 'AddressSanitizer|ThreadSanitizer|UndefinedBehaviorSanitizer|runtime error:|Segmentation fault' \
    "$workdir"/*.err >&2 || true
  fail "sanitizer/crash report in a daemon log"
fi

echo "chaos_smoke: PASS"
