#!/usr/bin/env python3
"""Checks that every relative markdown link in the repo's docs resolves.

Scans the tracked *.md files (top level plus docs/) for inline links
`[text](target)`. External links (http/https/mailto) are skipped — CI must
not depend on network reachability — and `#anchor` fragments are stripped
before the filesystem check. Exits 1 listing every broken link.

Usage: scripts/check_markdown_links.py [repo_root]
"""

import re
import sys
from pathlib import Path

# Inline links only; reference-style links are not used in this repo.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:")


def markdown_files(root: Path):
    yield from sorted(root.glob("*.md"))
    yield from sorted((root / "docs").glob("*.md"))


def check_file(md: Path, root: Path):
    broken = []
    text = md.read_text(encoding="utf-8")
    for line_no, line in enumerate(text.splitlines(), start=1):
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_SCHEMES):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:  # pure in-page anchor
                continue
            resolved = (md.parent / path_part).resolve()
            if not resolved.exists():
                broken.append(f"{md.relative_to(root)}:{line_no}: {target}")
    return broken


def main():
    root = Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    broken = []
    checked = 0
    for md in markdown_files(root):
        checked += 1
        broken.extend(check_file(md, root))
    if broken:
        print(f"{len(broken)} broken markdown link(s):")
        for entry in broken:
            print(f"  {entry}")
        return 1
    print(f"markdown links OK ({checked} files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
