#!/usr/bin/env python3
"""Checks that every relative markdown link in the repo's docs resolves.

Scans the tracked *.md files (top level plus docs/) for inline links
`[text](target)`. External links (http/https/mailto) are skipped — CI must
not depend on network reachability. A `#anchor` fragment on a markdown
target (including pure in-page anchors) must match a heading in that file
under GitHub's slugging rules — a renamed section breaks its deep links
silently otherwise. Exits 1 listing every broken link.

Usage: scripts/check_markdown_links.py [repo_root]
"""

import re
import sys
from pathlib import Path

# Inline links only; reference-style links are not used in this repo.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*$")
SKIP_SCHEMES = ("http://", "https://", "mailto:")


def markdown_files(root: Path):
    yield from sorted(root.glob("*.md"))
    yield from sorted((root / "docs").glob("*.md"))


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces to dashes."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def heading_slugs(md: Path, cache: dict) -> set:
    if md not in cache:
        slugs = set()
        in_fence = False
        for line in md.read_text(encoding="utf-8").splitlines():
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            match = HEADING_RE.match(line)
            if match:
                slugs.add(github_slug(match.group(1)))
        cache[md] = slugs
    return cache[md]


def check_file(md: Path, root: Path, slug_cache: dict):
    broken = []
    text = md.read_text(encoding="utf-8")
    for line_no, line in enumerate(text.splitlines(), start=1):
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_SCHEMES):
                continue
            path_part, _, anchor = target.partition("#")
            where = md if not path_part else (md.parent / path_part).resolve()
            if path_part and not where.exists():
                broken.append(f"{md.relative_to(root)}:{line_no}: {target}")
                continue
            if anchor and where.suffix == ".md":
                if github_slug(anchor) not in heading_slugs(where, slug_cache):
                    broken.append(
                        f"{md.relative_to(root)}:{line_no}: {target} "
                        f"(no heading matches #{anchor})"
                    )
    return broken


def main():
    root = Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    broken = []
    checked = 0
    slug_cache = {}
    for md in markdown_files(root):
        checked += 1
        broken.extend(check_file(md, root, slug_cache))
    if broken:
        print(f"{len(broken)} broken markdown link(s):")
        for entry in broken:
            print(f"  {entry}")
        return 1
    print(f"markdown links OK ({checked} files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
