#!/usr/bin/env bash
# Guard the SoA fast path: compile src/core/lean_batch.cpp with the
# compiler's vectorization report enabled and fail unless the Eq. 1/8
# bound loops actually vectorized. The batched LeanModel only earns its
# keep while `batch_pt_bounds` compiles to SIMD — a refactor that
# reintroduces a lane-serial dependency (or hides the loop behind a call)
# would silently fall back to scalar code and this script is what catches
# it in CI.
#
# The check is element-wise arithmetic only (no reductions), so forcing
# vectorization on cannot reassociate or fuse anything: results stay
# bit-identical to the scalar model (tests/core/dse_prune_equivalence_test
# pins that separately).
#
# Usage: scripts/check_vectorization.sh [compiler]
#   CXX or argv1 overrides the compiler (default g++). Works with GCC
#   (-fopt-info-vec-optimized) and Clang (-Rpass=loop-vectorize).
set -u

cd "$(dirname "$0")/.."

CXX_BIN=${1:-${CXX:-g++}}
SOURCE=src/core/lean_batch.cpp

fail() { echo "check_vectorization: FAIL: $*" >&2; exit 1; }

command -v "$CXX_BIN" >/dev/null 2>&1 || fail "compiler not found: $CXX_BIN"
[ -f "$SOURCE" ] || fail "missing $SOURCE"

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

if "$CXX_BIN" --version 2>/dev/null | grep -qi clang; then
  report_flags="-Rpass=loop-vectorize"
  pattern="vectorized loop"
else
  report_flags="-fopt-info-vec-optimized"
  pattern="loop vectorized"
fi

log="$workdir/vec.log"
if ! "$CXX_BIN" -std=c++20 -O2 -ftree-vectorize $report_flags -I src \
    -c "$SOURCE" -o "$workdir/lean_batch.o" 2> "$log"; then
  cat "$log" >&2
  fail "compilation of $SOURCE failed"
fi

hits=$(grep -c "$pattern" "$log" || true)
if [ "${hits:-0}" -eq 0 ]; then
  cat "$log" >&2
  fail "no '$pattern' report for $SOURCE — the SoA bound loop went scalar"
fi

echo "check_vectorization: OK ($CXX_BIN reported $hits vectorized loop(s) in $SOURCE)"
