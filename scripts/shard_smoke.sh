#!/usr/bin/env bash
# Multi-process shard smoke for sasynthd: 3 worker daemons + 1 coordinator
# on loopback, all separate processes (the unit tests cover the in-process
# topology; this is the real deployment shape).
#
# Phase 1 (identity): a mixed request trace — several real AlexNet/GoogLeNet
# layers at jobs 1 and 4 — is replayed against the coordinator and against a
# plain single daemon; every response must be byte-identical.
#
# Phase 2 (degradation): one worker is SIGKILLed, then the trace is replayed
# cold (fresh coordinator, so nothing is served from its DesignCache).
# Every request must still get a terminal ok/timeout verdict with bytes
# identical to single-node — a dead peer degrades, never corrupts.
#
# Finish line: SIGTERM to the coordinator with work in flight must drain
# and exit 0.
#
# Usage: scripts/shard_smoke.sh [path/to/sasynthd]
set -u

BIN=${1:-build/tools/sasynthd}

fail() { echo "shard_smoke: FAIL: $*" >&2; exit 1; }

[ -x "$BIN" ] || fail "daemon binary not found: $BIN"

workdir=$(mktemp -d)
cleanup() {
  for f in "$workdir"/*.pid; do
    [ -f "$f" ] || continue
    kill -KILL "$(cat "$f")" 2>/dev/null
    wait "$(cat "$f")" 2>/dev/null
  done
  rm -rf "$workdir"
}
trap cleanup EXIT

# Starts a daemon with the given extra flags. Deliberately NOT called in a
# $(...) substitution — the daemon must stay a child of this shell so `wait`
# can collect its exit status; the port and pid come back via files, read
# with daemon_port/daemon_pid <tag>.
start_daemon() {
  local tag=$1; shift
  "$BIN" --port 0 --log-level warn "$@" \
    > "$workdir/$tag.out" 2> "$workdir/$tag.err" &
  local pid=$!
  echo "$pid" > "$workdir/$tag.pid"
  local port=""
  for _ in $(seq 1 100); do
    port=$(sed -n 's/^sasynthd listening on 127\.0\.0\.1:\([0-9][0-9]*\)$/\1/p' \
           "$workdir/$tag.out" | head -n 1)
    [ -n "$port" ] && break
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
  done
  [ -n "$port" ] || { cat "$workdir/$tag.err" >&2; fail "$tag never reported its port"; }
  echo "$port" > "$workdir/$tag.port"
}

daemon_pid() { cat "$workdir/$1.pid"; }
daemon_port() { cat "$workdir/$1.port"; }

# One fresh connection: send the script, read one end-terminated block.
talk() {
  local port=$1 script=$2 out="" line
  exec 3<>"/dev/tcp/127.0.0.1/$port" 2>/dev/null || return 1
  printf '%b' "$script" >&3 2>/dev/null
  while IFS= read -r -t 60 line <&3; do
    out+=$line$'\n'
    [ "$line" = "end" ] && break
  done
  exec 3<&- 3>&-
  printf '%s' "$out"
}

# The mixed trace: real AlexNet conv1/conv2 and GoogLeNet layers x jobs 1,4.
traces=(
  'sasynth-request v1\nlayer 3,64,55,55,11,4,1\ndevice arria10_gt1150\noption jobs 1\nend\n'
  'sasynth-request v1\nlayer 3,64,55,55,11,4,1\ndevice arria10_gt1150\noption jobs 4\nend\n'
  'sasynth-request v1\nlayer 96,256,27,27,5,1,2\ndevice arria10_gt1150\noption jobs 4\nend\n'
  'sasynth-request v1\nlayer 192,96,28,28,1\ndevice arria10_gt1150\noption jobs 1\nend\n'
  'sasynth-request v1\nlayer 192,96,28,28,1\ndevice arria10_gt1150\noption jobs 4\nend\n'
  'sasynth-request v1\nlayer 480,192,14,14,3\ndevice arria10_gt1150\noption jobs 4\nend\n'
)

start_daemon w1
start_daemon w2
start_daemon w3
start_daemon single
w1_port=$(daemon_port w1)
w2_port=$(daemon_port w2)
w3_port=$(daemon_port w3)
single_port=$(daemon_port single)
start_daemon coord \
  --peers "127.0.0.1:$w1_port,127.0.0.1:$w2_port,127.0.0.1:$w3_port" \
  --shard-io-timeout 10000
coord_port=$(daemon_port coord)
echo "shard_smoke: workers $w1_port $w2_port $w3_port, single $single_port, coordinator $coord_port"

# --- phase 1: byte-identity over the mixed trace ---
for i in "${!traces[@]}"; do
  ref=$(talk "$single_port" "${traces[$i]}")
  got=$(talk "$coord_port" "${traces[$i]}")
  case $ref in
    *"sasynth-response v1 ok"*) ;;
    *) fail "single daemon failed trace $i: $ref" ;;
  esac
  [ "$got" = "$ref" ] || fail "trace $i differs between coordinator and single node"
done
echo "shard_smoke: identity pass done (${#traces[@]} requests byte-identical)"

# --- phase 2: SIGKILL one worker, replay cold through a fresh coordinator ---
kill -KILL "$(daemon_pid w2)"
wait "$(daemon_pid w2)" 2>/dev/null || true
rm -f "$workdir/w2.pid"
start_daemon coord2 \
  --peers "127.0.0.1:$w1_port,127.0.0.1:$w2_port,127.0.0.1:$w3_port" \
  --shard-io-timeout 10000
coord2_port=$(daemon_port coord2)
for i in "${!traces[@]}"; do
  ref=$(talk "$single_port" "${traces[$i]}")
  got=$(talk "$coord2_port" "${traces[$i]}")
  case $got in
    *"sasynth-response v1 ok"*|*"sasynth-response v1 timeout"*) ;;
    *) fail "trace $i got no terminal verdict after worker kill: $got" ;;
  esac
  [ "$got" = "$ref" ] || fail "trace $i differs from single node after worker kill"
done
echo "shard_smoke: degradation pass done (worker w2 dead, all verdicts terminal and identical)"

# --- finish: drain the degraded coordinator with a request in flight ---
( talk "$coord2_port" 'sasynth-request v1\nlayer 256,384,13,13,3\ndevice arria10_gt1150\noption jobs 4\nend\n' \
    > "$workdir/inflight.txt" ) &
inflight=$!
sleep 0.2
kill -TERM "$(daemon_pid coord2)"
status=0
wait "$(daemon_pid coord2)" || status=$?
wait "$inflight" 2>/dev/null
[ "$status" -eq 0 ] || { cat "$workdir/coord2.err" >&2; fail "coordinator exited $status after SIGTERM"; }
grep -q 'drained, exiting' "$workdir/coord2.err" \
  || fail "clean-drain message missing from coordinator stderr"
grep -q 'sasynth-response v1' "$workdir/inflight.txt" \
  || fail "in-flight request got no response across the drain"

# No crash or sanitizer report in any daemon log.
if grep -E -q 'AddressSanitizer|ThreadSanitizer|UndefinedBehaviorSanitizer|runtime error:|Segmentation fault' \
     "$workdir"/*.out "$workdir"/*.err; then
  grep -E 'AddressSanitizer|ThreadSanitizer|UndefinedBehaviorSanitizer|runtime error:|Segmentation fault' \
    "$workdir"/*.err >&2 || true
  fail "sanitizer/crash report in a daemon log"
fi

echo "shard_smoke: PASS"
