#!/usr/bin/env python3
"""Doc-drift gate: the CLI flags and the documentation must agree.

Runs `sasynth_cli --help` and `sasynthd --help` and checks, per tool:

  1. every flag the binary advertises appears in README.md (the flag
     tables) and in at least one file under docs/;
  2. every `--flag` a README flag-table row documents for that tool is
     actually advertised by the binary (no stale rows).

Usage: scripts/check_flag_docs.py <sasynth_cli-path> <sasynthd-path> [root]
"""

import re
import subprocess
import sys
from pathlib import Path

# Flags as the help text advertises them, anywhere in the text: the usage
# synopsis mentions --layer mid-line, not at the start of its own row.
HELP_FLAG_RE = re.compile(r"(--[a-z][a-z0-9-]*)")
# Flags as README table rows document them: `| `--flag` ... |`.
TABLE_FLAG_RE = re.compile(r"^\|\s*`(--[a-z][a-z0-9-]*)")


def help_flags(binary: str):
    proc = subprocess.run(
        [binary, "--help"], capture_output=True, text=True, timeout=30
    )
    if proc.returncode != 0:
        raise SystemExit(
            f"{binary} --help exited {proc.returncode}:\n{proc.stderr}"
        )
    flags = set(HELP_FLAG_RE.findall(proc.stdout))
    if not flags:
        raise SystemExit(f"{binary} --help advertised no flags:\n{proc.stdout}")
    return flags


def table_flags(text: str, section: str):
    """Flags documented in the README table under `### <section> flags`."""
    flags = set()
    in_section = False
    for line in text.splitlines():
        if line.startswith("#"):
            in_section = line.strip() == f"### {section} flags"
            continue
        if in_section:
            match = TABLE_FLAG_RE.match(line)
            if match:
                flags.add(match.group(1))
    return flags


def main():
    if len(sys.argv) < 3:
        print(__doc__.strip())
        return 2
    root = Path(sys.argv[3] if len(sys.argv) > 3 else ".").resolve()
    readme = (root / "README.md").read_text(encoding="utf-8")
    docs_text = "\n".join(
        p.read_text(encoding="utf-8") for p in sorted((root / "docs").glob("*.md"))
    )

    errors = []
    for tool, binary in (("sasynth_cli", sys.argv[1]), ("sasynthd", sys.argv[2])):
        advertised = help_flags(binary)
        documented = table_flags(readme, tool)
        for flag in sorted(advertised - documented):
            errors.append(f"{tool}: {flag} in --help but not in the README "
                          f"'### {tool} flags' table")
        for flag in sorted(documented - advertised):
            errors.append(f"{tool}: {flag} documented in README but not in "
                          f"--help (stale row?)")
        for flag in sorted(advertised):
            if flag not in docs_text:
                errors.append(f"{tool}: {flag} not mentioned anywhere in docs/")

    if errors:
        print(f"{len(errors)} flag documentation drift error(s):")
        for error in errors:
            print(f"  {error}")
        return 1
    print("flag documentation in sync with --help")
    return 0


if __name__ == "__main__":
    sys.exit(main())
