// Event-loop concurrency benchmark: what singleflight coalescing buys a
// synthesis service under a duplicate-request storm.
//
// For each session count (1, 16, 64, 256) a fresh cold server is stood up
// behind the event-loop TCP transport, and N real TCP clients simultaneously
// send the *same* request. Per-session wall latency (connect -> full
// response) is reported as p50/p99 together with the coalesce hit rate
// (coalesced sessions / N) and the number of DSE executions the storm cost.
//
// Emits BENCH_serve_concurrency.json, one row per session count, and exits
// nonzero unless at the largest scale:
//   * every transcript is byte-identical to a fresh handle() of the block
//     (coalescing must never change a response byte), and
//   * 256 concurrent duplicate cold sessions cost at most 2 DSE executions —
//     the acceptance gate for coalescing being real, not cosmetic.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "serve/event_loop.h"
#include "serve/server.h"
#include "serve/tcp.h"

namespace {

using namespace sasynth;

constexpr int kScales[] = {1, 16, 64, 256};
constexpr const char* kBlock =
    "sasynth-request v1\n"
    "layer 48,128,27,27,5,1,2\n"  // AlexNet conv2: a real multi-ms DSE
    "device arria10_gt1150\n"
    "end\n";

int connect_loopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::string read_to_eof(int fd) {
  std::string out;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return out;
    }
    out.append(chunk, static_cast<std::size_t>(n));
  }
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = p * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

struct ScaleResult {
  int sessions = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double coalesce_rate = 0.0;
  std::int64_t dse_runs = 0;
  bool byte_identical = false;
};

ScaleResult run_scale(int sessions, const std::string& reference) {
  ServeOptions options;
  options.jobs = 4;
  options.queue_limit = 512;  // the gate measures coalescing, not shedding
  SynthServer server(options);

  EventLoopOptions loop_options;
  EventLoopServer loop(server, loop_options);
  std::string error;
  if (!loop.start(&error)) {
    std::printf("ERROR: %s\n", error.c_str());
    return {};
  }
  std::thread loop_thread([&] { loop.run(); });

  std::vector<double> latency_ms(static_cast<std::size_t>(sessions), 0.0);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(sessions));
  for (int i = 0; i < sessions; ++i) {
    clients.emplace_back([&, i] {
      latency_ms[static_cast<std::size_t>(i)] =
          bench::timed_ms("bench.serve_concurrency_session", [&] {
            const int fd = connect_loopback(loop.port());
            if (fd < 0) {
              mismatches.fetch_add(1);
              return;
            }
            bool ok = write_all_fd(fd, kBlock);
            ::shutdown(fd, SHUT_WR);
            const std::string transcript = read_to_eof(fd);
            ::close(fd);
            if (!ok || transcript != reference) mismatches.fetch_add(1);
          });
    });
  }
  for (std::thread& t : clients) t.join();
  loop.request_stop();
  loop_thread.join();

  ScaleResult result;
  result.sessions = sessions;
  result.p50_ms = percentile(latency_ms, 0.50);
  result.p99_ms = percentile(latency_ms, 0.99);
  result.coalesce_rate = static_cast<double>(server.counters().coalesced.load()) /
                         static_cast<double>(sessions);
  result.dse_runs = server.counters().dse_runs.load();
  result.byte_identical = mismatches.load() == 0;
  return result;
}

}  // namespace

int main() {
  // The reference bytes every session must receive, from a throwaway server.
  std::string reference;
  {
    SynthServer reference_server({});
    reference = reference_server.handle(kBlock);
    if (reference.rfind("sasynth-response v1 ok", 0) != 0) {
      std::printf("ERROR: reference request failed: %s\n", reference.c_str());
      return 1;
    }
  }

  std::printf("--- serve concurrency benchmark (duplicate-request storm) ---\n");
  std::vector<ScaleResult> results;
  for (const int sessions : kScales) {
    results.push_back(run_scale(sessions, reference));
    const ScaleResult& r = results.back();
    std::printf(
        "  %4d sessions: p50 %8.2f ms  p99 %8.2f ms  coalesced %.3f  "
        "dse_runs %lld  byte-identical %s\n",
        r.sessions, r.p50_ms, r.p99_ms, r.coalesce_rate,
        static_cast<long long>(r.dse_runs), r.byte_identical ? "yes" : "NO");
  }

  std::FILE* out = std::fopen("BENCH_serve_concurrency.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "[\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const ScaleResult& r = results[i];
      std::fprintf(out,
                   "  {\"sessions\": %d, \"p50_ms\": %.4f, \"p99_ms\": %.4f, "
                   "\"coalesce_rate\": %.4f, \"dse_runs\": %lld}%s\n",
                   r.sessions, r.p50_ms, r.p99_ms, r.coalesce_rate,
                   static_cast<long long>(r.dse_runs),
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(out, "]\n");
    std::fclose(out);
    std::printf("wrote BENCH_serve_concurrency.json\n");
  }

  int status = 0;
  for (const ScaleResult& r : results) {
    if (!r.byte_identical) {
      std::printf("ERROR: %d-session storm produced a non-identical response\n",
                  r.sessions);
      status = 1;
    }
  }
  const ScaleResult& largest = results.back();
  // The acceptance gate: at 256 concurrent duplicates, the first session
  // leads a DSE and everyone else coalesces onto it (or hits the cache the
  // leader populated). Allowing 2 covers one benign race — a session that
  // slips in after complete() but before the flight's result is cached.
  if (largest.dse_runs > 2) {
    std::printf(
        "ERROR: %d duplicate sessions cost %lld DSE executions (expected <= "
        "2): coalescing is not working\n",
        largest.sessions, static_cast<long long>(largest.dse_runs));
    status = 1;
  }
  return status;
}
