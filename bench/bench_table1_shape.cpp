// Table 1: impact of the systolic array shape on DSP utilization, DSP
// efficiency and peak throughput (AlexNet conv5, fp32, 280 MHz).
//
// Paper values: sys1 (11,13,8): 71.5% util, 96.97% eff, 621 GFlops.
//               sys2 (16,10,8): 80.0% util, 60.00% eff (*), 466 GFlops.
// (*) The printed 60.00% is inconsistent with the same row's 466-GFlops peak
// (= 65.0% x 2 x 1280 x 280 MHz); our model reports the consistent 65.0%.
// The utilization column uses the paper's 1600-unit denominator alongside
// the 1518 physical DSP blocks of the GT1150.
#include <cstdio>

#include "bench_util.h"
#include "core/perf_model.h"
#include "loopnest/conv_nest.h"
#include "nn/network.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace sasynth;
  bench::print_header("Table 1 - Impact of Systolic Array Shape",
                      "DAC'17 Table 1 (AlexNet conv5, fp32, 280 MHz)");

  const ConvLayerDesc layer = alexnet_conv5();
  const LoopNest nest = build_conv_nest(layer);
  const FpgaDevice device = arria10_gt1150();
  const SystolicMapping mapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI};

  struct Config {
    const char* name;
    ArrayShape shape;
    std::vector<std::int64_t> middle;
    double paper_util;
    double paper_eff;
    double paper_gflops;
  };
  const std::vector<Config> configs{
      {"sys1", ArrayShape{11, 13, 8}, {4, 4, 1, 13, 3, 3}, 71.5, 96.97, 621.0},
      {"sys2", ArrayShape{16, 10, 8}, {1, 4, 2, 13, 3, 3}, 80.0, 60.00, 466.0},
  };

  AsciiTable table;
  table.row()
      .cell("config")
      .cell("ROW")
      .cell("COL")
      .cell("VEC")
      .cell("util/1600")
      .cell("util/1518")
      .cell("DSP eff")
      .cell("peak Gflops")
      .cell("paper eff")
      .cell("paper Gflops");
  for (const Config& config : configs) {
    const DesignPoint design(nest, mapping, config.shape,
                             std::vector<std::int64_t>(config.middle));
    const PerfEstimate perf = estimate_performance(
        nest, design, device, DataType::kFloat32, 280.0);
    table.row()
        .cell(config.name)
        .cell(config.shape.rows)
        .cell(config.shape.cols)
        .cell(config.shape.vec)
        .percent(static_cast<double>(design.num_lanes()) / 1600.0, 1)
        .percent(static_cast<double>(design.num_lanes()) / 1518.0, 1)
        .percent(perf.eff, 2)
        .cell(perf.pt_gops, 1)
        .cell(sasynth::strformat("%.2f%%", config.paper_eff))
        .cell(config.paper_gflops, 0);
  }
  table.print();
  bench::print_note(
      "sys1 beats sys2 despite lower utilization because its shape matches "
      "the mapped trip counts (128, 13, 192) - the paper's Table 1 point.");
  bench::print_note(
      "paper prints sys2 eff 60.00%, inconsistent with its own 466-GFlops "
      "peak; our 65.0% matches the peak column (see EXPERIMENTS.md).");
  return 0;
}
