// Fig. 3: cycle-level scheduling of a 3x3 systolic array — the wavefront
// ramp-up. The cycle-accurate simulator records how many PEs are active at
// each cycle of the first block; the paper's figure shows all nine PEs
// active "after five cycles".
#include <cstdio>

#include "bench_util.h"
#include "loopnest/conv_nest.h"
#include "nn/reference.h"
#include "sim/systolic_array.h"
#include "util/rng.h"

int main() {
  using namespace sasynth;
  bench::print_header("Fig. 3 - Cycle-level schedule of a 3x3 array",
                      "DAC'17 Fig. 3 wavefront example");

  const ConvLayerDesc layer = make_conv("fig3", 4, 3, 4, 2);
  const LoopNest nest = build_conv_nest(layer);
  const DesignPoint design(
      nest, SystolicMapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI},
      ArrayShape{3, 3, 2}, {1, 2, 2, 4, 2, 2});

  Rng rng(1);
  const ConvData data = make_random_conv_data(layer, rng);
  SimOptions options;
  options.record_first_block_activity = true;
  const SimResult result = simulate_systolic(nest, design, layer, data, options);

  const Tensor ref = reference_conv(layer, data);
  const float err = Tensor::max_abs_diff(result.output, ref);
  std::printf("functional check vs reference conv: max |err| = %.2g (%s)\n\n",
              static_cast<double>(err), err < 1e-3F ? "PASS" : "FAIL");

  std::printf("cycle | active PEs (of 9) | wavefront picture\n");
  std::printf("------+-------------------+------------------\n");
  for (std::size_t t = 0; t < result.first_block_active_pes.size(); ++t) {
    const std::int64_t active = result.first_block_active_pes[t];
    std::printf("%5zu | %17lld | ", t, static_cast<long long>(active));
    for (std::int64_t i = 0; i < active; ++i) std::putchar('#');
    std::putchar('\n');
    if (t > 12) {
      std::printf("  ... (steady state until the block drains)\n");
      break;
    }
  }
  std::printf("\n%s\n", result.summary().c_str());
  bench::print_note(
      "all 9 PEs are active from cycle 4 (the fifth cycle) onward - exactly "
      "the Fig. 3 ramp; the trailing cycles mirror the ramp as the last "
      "wavefronts drain.");
  return 0;
}
