// Shared helpers for the table/figure reproduction binaries.
#pragma once

#include <cstdio>
#include <string>

namespace sasynth::bench {

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline void print_note(const std::string& note) {
  std::printf("NOTE: %s\n", note.c_str());
}

}  // namespace sasynth::bench
