// Shared helpers for the table/figure reproduction binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "obs/trace.h"

namespace sasynth::bench {

/// Times one call on the obs span clock (the same steady clock the trace
/// records), so bench numbers and --trace-out spans can never disagree.
/// Returns milliseconds; the span lands in the trace when tracing is on.
template <typename Fn>
inline double timed_ms(const char* span_name, Fn&& fn) {
  obs::ScopedSpan span(span_name, "bench");
  std::forward<Fn>(fn)();
  return span.elapsed_seconds() * 1e3;
}

/// Scans argv for "--jobs N" (shared by the DSE benches). Returns 0 when
/// absent, which lets DseOptions fall back to SASYNTH_JOBS / all cores.
inline int parse_jobs_flag(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0) {
      const int v = std::atoi(argv[i + 1]);
      return v > 0 ? v : 0;
    }
  }
  return 0;
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline void print_note(const std::string& note) {
  std::printf("NOTE: %s\n", note.c_str());
}

}  // namespace sasynth::bench
