// Fig. 7(b): analytical-model accuracy. The top-14 phase-1 designs are run
// through pseudo-P&R for their true clock and through the block-pipeline
// performance simulator ("on-board run"); the figure compares three series:
//   estimated (assumed 280 MHz clock), model @ realized clock, board.
// Paper result: model @ real clock matches the board within <2% on average.
#include <cstdio>

#include <cmath>

#include "bench_util.h"
#include "core/dse.h"
#include "loopnest/conv_nest.h"
#include "nn/network.h"
#include "sim/perf_sim.h"
#include "util/csv.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace sasynth;
  bench::print_header("Fig. 7(b) - Analytical model vs on-board results",
                      "DAC'17 Fig. 7(b), AlexNet conv5 fp32, top-14 designs");

  const ConvLayerDesc layer = alexnet_conv5();
  const LoopNest nest = build_conv_nest(layer);
  const FpgaDevice device = arria10_gt1150();
  DseOptions options;
  options.assumed_freq_mhz = 280.0;
  options.min_dsp_util = 0.70;
  options.top_k = 14;
  const DesignSpaceExplorer explorer(device, DataType::kFloat32, options);
  const DseResult result = explorer.explore(nest);

  AsciiTable table;
  table.row()
      .cell("#")
      .cell("shape")
      .cell("est@280 Gops")
      .cell("P&R MHz")
      .cell("model Gops")
      .cell("board Gops")
      .cell("error");
  CsvWriter csv;
  csv.header({"rank", "shape", "estimated_gops", "realized_mhz", "model_gops",
              "board_gops", "error_pct"});
  double total_err = 0.0;
  for (std::size_t i = 0; i < result.top.size(); ++i) {
    const DseCandidate& c = result.top[i];
    PerfSimOptions board_options;
    board_options.freq_mhz = c.realized_freq_mhz;
    const PerfSimResult board = simulate_performance(
        nest, c.design, device, DataType::kFloat32, board_options);
    const double err =
        std::fabs(c.realized_gops() - board.achieved_gops) /
        board.achieved_gops * 100.0;
    total_err += err;
    table.row()
        .cell(static_cast<std::int64_t>(i + 1))
        .cell(c.design.shape().to_string())
        .cell(c.estimated_gops(), 1)
        .cell(c.realized_freq_mhz, 1)
        .cell(c.realized_gops(), 1)
        .cell(board.achieved_gops, 1)
        .cell(strformat("%.2f%%", err));
    csv.row()
        .cell(static_cast<std::int64_t>(i + 1))
        .cell(c.design.shape().to_string())
        .cell(c.estimated_gops(), 2)
        .cell(c.realized_freq_mhz, 2)
        .cell(c.realized_gops(), 2)
        .cell(board.achieved_gops, 2)
        .cell(err, 3);
  }
  table.print();
  csv.write_file("fig7b_model_accuracy.csv");
  std::printf("\naverage model-vs-board error: %.2f%% (paper: <2%%)\n",
              total_err / static_cast<double>(result.top.size()));
  bench::print_note(
      "shape agreement: designs with equal estimated throughput spread in "
      "realized clock (the phase-2 rationale); model at the true clock "
      "tracks the board within ~2%.");
  return 0;
}
