// The PE-shape block of Table 3: the unified design chosen for each
// (model, precision) pair with its realized frequency and resource
// utilization percentages.
//
// Paper block:
//   AlexNet fp32: (11,14,8) @ 270.8 MHz  LUT 57% DSP 81% BRAM 45% FF 40%
//   VGG     fp32: (8,19,8)  @ 252.6 MHz  LUT 59% DSP 81% BRAM 47% FF 40%
// (the fixed-point VGG design appears in the comparison columns: 1500 MAC
// units = 49% of the 3036 fixed-MAC capacity, 231.9 MHz).
#include <cstdio>

#include "bench_util.h"
#include "core/unified.h"
#include "nn/network.h"
#include "util/table.h"

int main() {
  using namespace sasynth;
  bench::print_header("Table 3 (design block) - Unified designs per model",
                      "DAC'17 Table 3 PE-shape rows");

  struct Job {
    const char* label;
    Network net;
    DataType dtype;
    const char* paper;
  };
  const std::vector<Job> jobs{
      {"AlexNet fp32", make_alexnet(), DataType::kFloat32,
       "(11,14,8) @270.8MHz LUT57% DSP81% BRAM45% FF40%"},
      {"VGG16 fp32", make_vgg16(), DataType::kFloat32,
       "(8,19,8) @252.6MHz LUT59% DSP81% BRAM47% FF40%"},
      {"VGG16 fixed8/16", make_vgg16(), DataType::kFixed8_16,
       "1500 MACs (49% of fixed capacity) @231.9MHz"},
  };

  AsciiTable table;
  table.row()
      .cell("model")
      .cell("shape")
      .cell("lanes")
      .cell("freq MHz")
      .cell("LUT")
      .cell("DSP blk")
      .cell("BRAM")
      .cell("FF")
      .cell("Gops")
      .cell("paper design");
  for (const Job& job : jobs) {
    UnifiedOptions options;
    options.dse.min_dsp_util = 0.70;
    options.shape_shortlist = 32;
    const UnifiedDesign design =
        select_unified_design(job.net, arria10_gt1150(), job.dtype, options);
    if (!design.valid) {
      std::printf("%s: no valid design\n", job.label);
      continue;
    }
    const ResourceReport& r = design.resources.report;
    table.row()
        .cell(job.label)
        .cell(design.design.shape().to_string())
        .cell(design.design.num_lanes())
        .cell(design.realized_freq_mhz, 1)
        .percent(r.logic_util, 0)
        .percent(r.dsp_util, 0)
        .percent(r.bram_util, 0)
        .percent(r.ff_util, 0)
        .cell(design.aggregate_gops, 1)
        .cell(job.paper);
  }
  table.print();
  bench::print_note(
      "shape agreement: ~1100-1500 MAC lanes (fp32) at 230-290 MHz with "
      "roughly balanced LUT/BRAM pressure; fixed mode doubles lane capacity "
      "per DSP block.");
  return 0;
}
