// Ablation of the two §4 pruning devices on a layer small enough to verify
// against unpruned search:
//   1. power-of-two middle bounds vs exhaustive integer bounds — the pruned
//      search must find the same optimal throughput (the §4 optimality
//      argument: throughput is monotone in s, BRAM rounds up to pow2);
//   2. the c_s utilization floor (Eq. 12) — design-space size and best
//      design quality as c_s varies;
//   3. every pruning rule as one table row, with the skipped/spent counts
//      read back from the process-global obs metrics (`.value()` deltas
//      around the workload, the same counters the daemon exports) rather
//      than re-derived from DseStats.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/dse.h"
#include "core/mapping.h"
#include "loopnest/conv_nest.h"
#include "loopnest/reuse.h"
#include "nn/network.h"
#include "obs/metrics.h"
#include "serve/server.h"
#include "util/table.h"

int main() {
  using namespace sasynth;
  bench::print_header("Ablation - DSE pruning devices",
                      "DAC'17 §4 (Eq. 12 and power-of-two reuse pruning)");

  const ConvLayerDesc layer = make_conv("abl", 32, 24, 12, 3);
  const LoopNest nest = build_conv_nest(layer);
  const FpgaDevice device = tiny_test_device();

  // Part 1: pow2 vs brute-force reuse search, per shape.
  std::printf("Part 1: reuse-strategy search, pow2 pruning vs brute force\n");
  AsciiTable part1;
  part1.row()
      .cell("shape")
      .cell("pow2 best Gops")
      .cell("pow2 evals")
      .cell("brute best Gops")
      .cell("brute evals")
      .cell("optimum kept");
  const SystolicMapping mapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI};
  for (const ArrayShape shape :
       {ArrayShape{4, 4, 4}, ArrayShape{6, 3, 2}, ArrayShape{8, 2, 4}}) {
    DseOptions pow2;
    pow2.min_dsp_util = 0.0;
    DseOptions brute = pow2;
    brute.pow2_middle = false;
    const DesignSpaceExplorer e_pow2(device, DataType::kFloat32, pow2);
    const DesignSpaceExplorer e_brute(device, DataType::kFloat32, brute);
    DesignPoint d_pow2;
    DesignPoint d_brute;
    DseStats s_pow2;
    DseStats s_brute;
    if (!e_pow2.best_reuse_strategy(nest, mapping, shape, &d_pow2, &s_pow2) ||
        !e_brute.best_reuse_strategy(nest, mapping, shape, &d_brute,
                                     &s_brute)) {
      continue;
    }
    const double t_pow2 =
        estimate_performance(nest, d_pow2, device, DataType::kFloat32, 280.0)
            .throughput_gops;
    const double t_brute =
        estimate_performance(nest, d_brute, device, DataType::kFloat32, 280.0)
            .throughput_gops;
    part1.row()
        .cell(shape.to_string())
        .cell(t_pow2, 2)
        .cell(s_pow2.reuse_evaluated)
        .cell(t_brute, 2)
        .cell(s_brute.reuse_evaluated)
        .cell(t_pow2 >= t_brute - 1e-6 ? "yes" : "NO");
  }
  part1.print();

  // Part 2: c_s sweep.
  std::printf("\nPart 2: Eq. 12 utilization floor c_s\n");
  AsciiTable part2;
  part2.row()
      .cell("c_s")
      .cell("shapes kept")
      .cell("candidates")
      .cell("best est Gops")
      .cell("phase1 s");
  for (const double cs : {0.0, 0.25, 0.5, 0.75, 0.9}) {
    DseOptions options;
    options.min_dsp_util = cs;
    options.max_rows = 16;
    options.max_cols = 16;
    options.max_vec = 8;
    const DesignSpaceExplorer explorer(device, DataType::kFloat32, options);
    DseStats stats;
    const std::vector<DseCandidate> all =
        explorer.enumerate_phase1(nest, &stats);
    part2.row()
        .cell(cs, 2)
        .cell(stats.shapes_after_prune)
        .cell(static_cast<std::int64_t>(all.size()))
        .cell(all.empty() ? 0.0 : all.front().estimated_gops(), 2)
        .cell(stats.phase1_seconds, 3);
  }
  part2.print();

  // Part 3: one row per pruning rule, read back from the obs registry. The
  // workload is three serve requests on an AlexNet-conv5-sized layer: a cold
  // sweep, an H/W-only-differing sibling (hint tier), and a relaxed-c_s
  // retry of the first (exact tier). Every count is a before/after delta of
  // the process-global counters the daemon exports — the bench re-derives
  // nothing, so a rule that stops firing shows up here as a zero row.
  std::printf("\nPart 3: per-rule pruning ablation (obs counter deltas)\n");
  obs::set_metrics_enabled(true);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  struct Rule {
    const char* label;
    const char* pruned;  // events removed (or replayed) by the rule
    const char* spent;   // extra bound/seed evaluations the rule costs
  };
  const Rule rules[] = {
      {"mapping feasibility (Eq. 2/3)",
       "dse_mappings_pruned_feasibility_total", nullptr},
      {"c_s utilization floor (Eq. 12)", "dse_shapes_pruned_util_total",
       nullptr},
      {"pow2 middle bounds", "dse_reuse_pruned_pow2_total", nullptr},
      {"item bound-and-floor skip", "dse_items_pruned_bound_total",
       "dse_bound_seed_evals_total"},
      {"DFS corner-bound subtree skip", "dse_reuse_subtrees_pruned_total",
       "dse_reuse_bound_evals_total"},
      {"sweep cache, exact tier", "sweep_cache_exact_hits_total", nullptr},
      {"sweep cache, hint tier", "sweep_cache_hint_hits_total", nullptr},
  };
  std::int64_t before_pruned[std::size(rules)];
  std::int64_t before_spent[std::size(rules)];
  for (std::size_t r = 0; r < std::size(rules); ++r) {
    before_pruned[r] = registry.counter(rules[r].pruned).value();
    before_spent[r] =
        rules[r].spent ? registry.counter(rules[r].spent).value() : 0;
  }

  ServeOptions serve_options;
  serve_options.jobs = 1;
  serve_options.cache_enabled = false;  // force every request through DSE
  serve_options.sweep_cache_capacity = 1u << 16;
  SynthServer server(serve_options);
  const char* kCold =
      "sasynth-request v1\n"
      "layer 384,256,13,13,3\n"
      "device arria10_gt1150\n"
      "option min_util 0.8\n"
      "end\n";
  const char* kHwSibling =
      "sasynth-request v1\n"
      "layer 384,256,15,15,3\n"
      "device arria10_gt1150\n"
      "option min_util 0.8\n"
      "end\n";
  const char* kRelaxed =
      "sasynth-request v1\n"
      "layer 384,256,13,13,3\n"
      "device arria10_gt1150\n"
      "option min_util 0.7\n"
      "end\n";
  // On the tiny device the sweep accepts fewer than top_k candidates, so the
  // item floor stays -inf and every middle bound is memoized — the pair below
  // is what lights up the hint tier (H/W-only siblings share no trip counts).
  const char* kTinyCold =
      "sasynth-request v1\n"
      "layer 16,16,8,8,3\n"
      "device tiny\n"
      "option min_util 0.5\n"
      "end\n";
  const char* kTinySibling =
      "sasynth-request v1\n"
      "layer 16,16,6,6,3\n"
      "device tiny\n"
      "option min_util 0.5\n"
      "end\n";
  for (const char* request :
       {kCold, kHwSibling, kRelaxed, kTinyCold, kTinySibling}) {
    const std::string response = server.handle(request);
    if (response.rfind("sasynth-response v1 ok", 0) != 0) {
      std::fprintf(stderr, "serve request failed:\n%s\n", response.c_str());
      return 1;
    }
  }

  AsciiTable part3;
  part3.row().cell("rule").cell("events pruned/hit").cell("bound evals spent");
  for (std::size_t r = 0; r < std::size(rules); ++r) {
    const std::int64_t pruned =
        registry.counter(rules[r].pruned).value() - before_pruned[r];
    part3.row()
        .cell(rules[r].label)
        .cell(pruned)
        .cell(rules[r].spent ? std::to_string(registry.counter(rules[r].spent)
                                                  .value() -
                                              before_spent[r])
                             : std::string("-"));
  }
  part3.print();
  bench::print_note(
      "pow2 pruning keeps the optimum at a fraction of the evaluations; "
      "raising c_s cuts the space further without losing the best design "
      "until it excludes the optimum's utilization band; the Part 3 rows "
      "price each rule from the live obs counters (a bound rule is only "
      "profitable while `events pruned` dwarfs `bound evals spent`).");
  return 0;
}
