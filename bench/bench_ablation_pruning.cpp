// Ablation of the two §4 pruning devices on a layer small enough to verify
// against unpruned search:
//   1. power-of-two middle bounds vs exhaustive integer bounds — the pruned
//      search must find the same optimal throughput (the §4 optimality
//      argument: throughput is monotone in s, BRAM rounds up to pow2);
//   2. the c_s utilization floor (Eq. 12) — design-space size and best
//      design quality as c_s varies.
#include <cstdio>

#include "bench_util.h"
#include "core/dse.h"
#include "core/mapping.h"
#include "loopnest/conv_nest.h"
#include "loopnest/reuse.h"
#include "nn/network.h"
#include "util/table.h"

int main() {
  using namespace sasynth;
  bench::print_header("Ablation - DSE pruning devices",
                      "DAC'17 §4 (Eq. 12 and power-of-two reuse pruning)");

  const ConvLayerDesc layer = make_conv("abl", 32, 24, 12, 3);
  const LoopNest nest = build_conv_nest(layer);
  const FpgaDevice device = tiny_test_device();

  // Part 1: pow2 vs brute-force reuse search, per shape.
  std::printf("Part 1: reuse-strategy search, pow2 pruning vs brute force\n");
  AsciiTable part1;
  part1.row()
      .cell("shape")
      .cell("pow2 best Gops")
      .cell("pow2 evals")
      .cell("brute best Gops")
      .cell("brute evals")
      .cell("optimum kept");
  const SystolicMapping mapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI};
  for (const ArrayShape shape :
       {ArrayShape{4, 4, 4}, ArrayShape{6, 3, 2}, ArrayShape{8, 2, 4}}) {
    DseOptions pow2;
    pow2.min_dsp_util = 0.0;
    DseOptions brute = pow2;
    brute.pow2_middle = false;
    const DesignSpaceExplorer e_pow2(device, DataType::kFloat32, pow2);
    const DesignSpaceExplorer e_brute(device, DataType::kFloat32, brute);
    DesignPoint d_pow2;
    DesignPoint d_brute;
    DseStats s_pow2;
    DseStats s_brute;
    if (!e_pow2.best_reuse_strategy(nest, mapping, shape, &d_pow2, &s_pow2) ||
        !e_brute.best_reuse_strategy(nest, mapping, shape, &d_brute,
                                     &s_brute)) {
      continue;
    }
    const double t_pow2 =
        estimate_performance(nest, d_pow2, device, DataType::kFloat32, 280.0)
            .throughput_gops;
    const double t_brute =
        estimate_performance(nest, d_brute, device, DataType::kFloat32, 280.0)
            .throughput_gops;
    part1.row()
        .cell(shape.to_string())
        .cell(t_pow2, 2)
        .cell(s_pow2.reuse_evaluated)
        .cell(t_brute, 2)
        .cell(s_brute.reuse_evaluated)
        .cell(t_pow2 >= t_brute - 1e-6 ? "yes" : "NO");
  }
  part1.print();

  // Part 2: c_s sweep.
  std::printf("\nPart 2: Eq. 12 utilization floor c_s\n");
  AsciiTable part2;
  part2.row()
      .cell("c_s")
      .cell("shapes kept")
      .cell("candidates")
      .cell("best est Gops")
      .cell("phase1 s");
  for (const double cs : {0.0, 0.25, 0.5, 0.75, 0.9}) {
    DseOptions options;
    options.min_dsp_util = cs;
    options.max_rows = 16;
    options.max_cols = 16;
    options.max_vec = 8;
    const DesignSpaceExplorer explorer(device, DataType::kFloat32, options);
    DseStats stats;
    const std::vector<DseCandidate> all =
        explorer.enumerate_phase1(nest, &stats);
    part2.row()
        .cell(cs, 2)
        .cell(stats.shapes_after_prune)
        .cell(static_cast<std::int64_t>(all.size()))
        .cell(all.empty() ? 0.0 : all.front().estimated_gops(), 2)
        .cell(stats.phase1_seconds, 3);
  }
  part2.print();
  bench::print_note(
      "pow2 pruning keeps the optimum at a fraction of the evaluations; "
      "raising c_s cuts the space further without losing the best design "
      "until it excludes the optimum's utilization band.");
  return 0;
}
