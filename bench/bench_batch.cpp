// Batch-size ablation: latency-vs-throughput of the pipelined accelerator.
//
// The paper quotes per-image latency and aggregate throughput; they coincide
// only once the block pipeline is warm. This bench shows the throughput
// curve versus batch size for the AlexNet conv5 design and the batch needed
// to reach 90/99% of the steady-state rate.
#include <cstdio>

#include "bench_util.h"
#include "sim/batch.h"
#include "loopnest/conv_nest.h"
#include "nn/network.h"
#include "util/table.h"

int main() {
  using namespace sasynth;
  bench::print_header("Batch pipelining ablation",
                      "latency/throughput decomposition of the Table 3 numbers");

  const ConvLayerDesc layer = alexnet_conv5();
  const LoopNest nest = build_conv_nest(layer);
  const DesignPoint design(
      nest, SystolicMapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI},
      ArrayShape{11, 13, 8}, {4, 4, 1, 13, 3, 3});
  const BatchAnalysis analysis(nest, design, layer, arria10_gt1150(),
                               DataType::kFloat32, 250.0);
  std::printf("%s\n\n", analysis.summary().c_str());

  AsciiTable table;
  table.row().cell("batch").cell("total ms").cell("ms/image").cell("Gops")
      .cell("of asymptote");
  for (const std::int64_t images : {1LL, 2LL, 4LL, 8LL, 16LL, 64LL, 256LL}) {
    table.row()
        .cell(images)
        .cell(analysis.batch_latency_ms(images), 3)
        .cell(analysis.batch_latency_ms(images) / static_cast<double>(images),
              3)
        .cell(analysis.batch_throughput_gops(images), 1)
        .percent(analysis.batch_throughput_gops(images) /
                     analysis.steady_throughput_gops(),
                 1);
  }
  table.print();
  std::printf("\nbatch for 90%% of steady state: %lld; for 99%%: %lld\n",
              static_cast<long long>(analysis.batch_for_fraction(0.90)),
              static_cast<long long>(analysis.batch_for_fraction(0.99)));
  bench::print_note(
      "the cold-start cost is one block load; single-image latency is "
      "within a few percent of the steady state for this layer, which is "
      "why the paper can quote per-image latency.");
  return 0;
}
