// Deployment-flexibility cost study: what does serving AlexNet + VGG-16 +
// GoogLeNet from shared bitstreams cost against the bespoke ideal?
//
// Three operating points on the Arria 10 GT1150:
//   bespoke   — one unified design per network (three bitstreams, each
//               network on its own: the paper's §5.3 flow, the upper bound)
//   flexible  — one design for the whole mix (K=1 fleet: a single
//               reprogram-free board serves all three networks)
//   fleet K=3 — the fleet optimizer may ship three designs and assigns each
//               network to its best one (should recover most of bespoke)
//
// Reports weighted latency (equal traffic shares) and per-network Gops, and
// cross-checks fleet-selection determinism across jobs counts.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/unified.h"
#include "deploy/fleet.h"
#include "fpga/device.h"
#include "nn/network.h"

using namespace sasynth;

namespace {

struct MixPoint {
  std::string label;
  double weighted_latency_ms = 0.0;
  double weighted_gops = 0.0;
  int num_designs = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const int jobs = bench::parse_jobs_flag(argc, argv);
  bench::print_header("Fixed-fleet deployment vs bespoke synthesis",
                      "ISSUE 7 (runtime-flexible deployment; extends §5.3)");

  const FpgaDevice device = arria10_gt1150();
  const DataType dtype = DataType::kFloat32;
  const std::vector<deploy::WorkloadEntry> workload = {
      {make_alexnet(), 1.0}, {make_vgg16(), 1.0}, {make_googlenet(), 1.0}};

  UnifiedOptions unified_options;
  unified_options.dse.min_dsp_util = 0.70;
  unified_options.dse.jobs = jobs;
  unified_options.shape_shortlist = 16;

  // Bespoke bound: each network on its own unified design (one bitstream
  // per network; reprogramming between networks assumed free).
  double bespoke_weighted_ms = 0.0;
  std::vector<double> bespoke_gops;
  const double bespoke_ms = bench::timed_ms("bench.deploy.bespoke", [&] {
    for (const deploy::WorkloadEntry& entry : workload) {
      const UnifiedDesign own = select_unified_design(entry.net, device, dtype,
                                                      unified_options);
      if (!own.valid) {
        std::printf("ERROR: no unified design for %s\n",
                    entry.net.name.c_str());
        std::exit(1);
      }
      bespoke_weighted_ms += entry.weight * own.total_latency_ms;
      bespoke_gops.push_back(own.aggregate_gops);
    }
  });

  deploy::FleetOptions fleet_options;
  fleet_options.unified = unified_options;

  auto run_fleet = [&](int num_designs, const char* span) {
    fleet_options.num_designs = num_designs;
    deploy::FleetResult fleet;
    const double ms = bench::timed_ms(span, [&] {
      fleet = deploy::select_fleet(workload, device, dtype, fleet_options);
    });
    if (!fleet.valid) {
      std::printf("ERROR: fleet K=%d failed: %s\n", num_designs,
                  fleet.error.c_str());
      std::exit(1);
    }
    std::printf("\nK=%d selection (%.0f ms):\n%s\n", num_designs, ms,
                fleet.summary().c_str());
    return fleet;
  };

  const deploy::FleetResult flexible =
      run_fleet(1, "bench.deploy.flexible");
  const deploy::FleetResult fleet3 = run_fleet(3, "bench.deploy.fleet3");

  // Determinism cross-check: the K=3 selection must be bit-identical when
  // the candidate enumeration runs serial.
  bool deterministic = true;
  {
    deploy::FleetOptions serial = fleet_options;
    serial.num_designs = 3;
    serial.unified.dse.jobs = 1;
    serial.unified.jobs = 1;
    const deploy::FleetResult replay =
        deploy::select_fleet(workload, device, dtype, serial);
    deterministic = replay.valid &&
                    replay.designs.size() == fleet3.designs.size() &&
                    replay.weighted_latency_ms == fleet3.weighted_latency_ms;
    for (std::size_t d = 0; deterministic && d < replay.designs.size(); ++d) {
      deterministic = replay.designs[d].signature() ==
                      fleet3.designs[d].signature();
    }
  }

  const MixPoint points[] = {
      {"bespoke (3 bitstreams)", bespoke_weighted_ms, 0.0, 3},
      {"flexible (K=1)", flexible.weighted_latency_ms, flexible.weighted_gops,
       1},
      {"fleet (K=3)", fleet3.weighted_latency_ms, fleet3.weighted_gops, 3},
  };
  std::printf("\n%-24s %10s %14s\n", "mode", "designs", "weighted ms");
  for (const MixPoint& p : points) {
    std::printf("%-24s %10d %14.3f\n", p.label.c_str(), p.num_designs,
                p.weighted_latency_ms);
  }
  const double flexible_penalty =
      flexible.weighted_latency_ms / bespoke_weighted_ms;
  const double fleet_penalty =
      fleet3.weighted_latency_ms / bespoke_weighted_ms;
  std::printf(
      "\nlatency vs bespoke: flexible %.2fx, fleet %.2fx "
      "(bespoke selection took %.0f ms)\n",
      flexible_penalty, fleet_penalty, bespoke_ms);
  bench::print_note(
      "bespoke assumes free reprogramming between networks; the fleet rows "
      "are what one (K=1) or three (K=3) fixed bitstreams actually deliver.");

  std::FILE* out = std::fopen("BENCH_deploy.json", "w");
  if (out != nullptr) {
    std::fprintf(
        out,
        "{\"device\": \"%s\", \"jobs\": %d, "
        "\"bespoke_weighted_ms\": %.6f, "
        "\"flexible_weighted_ms\": %.6f, \"flexible_weighted_gops\": %.3f, "
        "\"fleet3_weighted_ms\": %.6f, \"fleet3_weighted_gops\": %.3f, "
        "\"flexible_penalty\": %.4f, \"fleet3_penalty\": %.4f, "
        "\"alexnet_bespoke_gops\": %.3f, \"vgg16_bespoke_gops\": %.3f, "
        "\"googlenet_bespoke_gops\": %.3f, "
        "\"deterministic\": %s}\n",
        device.name.c_str(), jobs, bespoke_weighted_ms,
        flexible.weighted_latency_ms, flexible.weighted_gops,
        fleet3.weighted_latency_ms, fleet3.weighted_gops, flexible_penalty,
        fleet_penalty, bespoke_gops[0], bespoke_gops[1], bespoke_gops[2],
        deterministic ? "true" : "false");
    std::fclose(out);
    std::printf("wrote BENCH_deploy.json\n");
  }

  if (!deterministic) {
    std::printf("ERROR: fleet selection not deterministic across jobs\n");
    return 1;
  }
  // Sanity: a bigger fleet can only help, and the flexible single design can
  // never beat the bespoke-per-network bound.
  if (fleet3.weighted_latency_ms >
      flexible.weighted_latency_ms * (1.0 + 1e-9)) {
    std::printf("ERROR: K=3 fleet worse than K=1\n");
    return 1;
  }
  if (flexible_penalty < 1.0 - 1e-9) {
    std::printf("ERROR: flexible design beats the bespoke bound\n");
    return 1;
  }
  return 0;
}
