// Serving-path benchmark: what the DesignCache buys a synthesis service.
//
// Phase 1 (cold): the AlexNet conv-layer request stream hits an empty cache,
// so every request pays a full two-phase DSE. Phase 2 (warm): N concurrent
// clients replay the same stream against the now-populated cache; every
// request must be answered from the DesignCache (hit rate 1.0) and must be
// byte-identical to its cold response.
//
// Emits BENCH_serve.json with per-phase request counts, p50/p95 latency and
// hit rate, and exits nonzero if the warm path misses the cache or is not at
// least 10x faster at the median — the acceptance gate for the cache being
// real, not cosmetic.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "nn/network.h"
#include "serve/server.h"
#include "util/strings.h"

namespace {

using namespace sasynth;

constexpr int kClients = 4;
constexpr int kWarmRepeats = 2;  ///< per client, over the whole stream

std::vector<std::string> alexnet_request_stream() {
  std::vector<std::string> blocks;
  for (const ConvLayerDesc& layer : make_alexnet().layers) {
    blocks.push_back(strformat(
        "sasynth-request v1\n"
        "layer %lld,%lld,%lld,%lld,%lld,%lld,%lld\n"
        "device arria10_gt1150\n"
        "end\n",
        static_cast<long long>(layer.in_maps),
        static_cast<long long>(layer.out_maps),
        static_cast<long long>(layer.out_rows),
        static_cast<long long>(layer.out_cols),
        static_cast<long long>(layer.kernel),
        static_cast<long long>(layer.stride),
        static_cast<long long>(layer.groups)));
  }
  return blocks;
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = p * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double timed_handle(SynthServer& server, const std::string& block,
                    std::string* response) {
  return bench::timed_ms("bench.serve_handle",
                         [&] { *response = server.handle(block); });
}

}  // namespace

int main() {
  const std::vector<std::string> stream = alexnet_request_stream();

  ServeOptions options;
  options.jobs = kClients;
  SynthServer server(options);

  // --- cold: sequential, every request is a miss -> full DSE ---
  std::printf("--- serve benchmark: cold pass (%zu AlexNet layers) ---\n",
              stream.size());
  std::vector<double> cold_ms;
  std::vector<std::string> cold_responses;
  for (const std::string& block : stream) {
    std::string response;
    cold_ms.push_back(timed_handle(server, block, &response));
    if (response.rfind("sasynth-response v1 ok", 0) != 0) {
      std::printf("ERROR: cold request failed: %s\n", response.c_str());
      return 1;
    }
    cold_responses.push_back(std::move(response));
    std::printf("  %.1f ms\n", cold_ms.back());
  }
  const std::int64_t cold_hits = server.cache().stats().hits;
  const std::int64_t cold_dse_work = server.counters().dse_work_items.load();

  // --- warm: concurrent clients replay the stream, all cache hits ---
  std::printf("--- warm pass (%d clients x %d repeats) ---\n", kClients,
              kWarmRepeats);
  std::vector<double> warm_ms;
  std::mutex merge_mutex;
  bool responses_match = true;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      std::vector<double> local_ms;
      bool local_match = true;
      for (int repeat = 0; repeat < kWarmRepeats; ++repeat) {
        for (std::size_t i = 0; i < stream.size(); ++i) {
          std::string response;
          local_ms.push_back(timed_handle(server, stream[i], &response));
          local_match = local_match && response == cold_responses[i];
        }
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      warm_ms.insert(warm_ms.end(), local_ms.begin(), local_ms.end());
      responses_match = responses_match && local_match;
    });
  }
  for (std::thread& t : clients) t.join();

  const std::int64_t warm_requests =
      static_cast<std::int64_t>(kClients) * kWarmRepeats *
      static_cast<std::int64_t>(stream.size());
  const std::int64_t warm_hits = server.cache().stats().hits - cold_hits;
  const double warm_hit_rate = static_cast<double>(warm_hits) /
                               static_cast<double>(warm_requests);
  const bool dse_flat = server.counters().dse_work_items.load() == cold_dse_work;

  const double cold_p50 = percentile(cold_ms, 0.50);
  const double cold_p95 = percentile(cold_ms, 0.95);
  const double warm_p50 = percentile(warm_ms, 0.50);
  const double warm_p95 = percentile(warm_ms, 0.95);

  std::printf(
      "cold: %zu requests, p50 %.2f ms, p95 %.2f ms\n"
      "warm: %lld requests, p50 %.4f ms, p95 %.4f ms, hit rate %.3f\n"
      "warm/cold p50 speedup: %.1fx; responses byte-identical: %s; "
      "DSE counters flat: %s\n",
      cold_ms.size(), cold_p50, cold_p95,
      static_cast<long long>(warm_requests), warm_p50, warm_p95, warm_hit_rate,
      warm_p50 > 0.0 ? cold_p50 / warm_p50 : 0.0,
      responses_match ? "yes" : "NO", dse_flat ? "yes" : "NO");

  std::FILE* out = std::fopen("BENCH_serve.json", "w");
  if (out != nullptr) {
    std::fprintf(
        out,
        "[\n"
        "  {\"phase\": \"cold\", \"clients\": 1, \"requests\": %zu, "
        "\"p50_ms\": %.4f, \"p95_ms\": %.4f, \"hit_rate\": 0.0},\n"
        "  {\"phase\": \"warm\", \"clients\": %d, \"requests\": %lld, "
        "\"p50_ms\": %.4f, \"p95_ms\": %.4f, \"hit_rate\": %.4f}\n"
        "]\n",
        cold_ms.size(), cold_p50, cold_p95, kClients,
        static_cast<long long>(warm_requests), warm_p50, warm_p95,
        warm_hit_rate);
    std::fclose(out);
    std::printf("wrote BENCH_serve.json\n");
  }

  if (warm_hit_rate < 1.0 || !dse_flat) {
    std::printf("ERROR: warm pass was not fully served from the cache\n");
    return 1;
  }
  if (!responses_match) {
    std::printf("ERROR: cached responses differ from fresh ones\n");
    return 1;
  }
  if (warm_p50 * 10.0 > cold_p50) {
    std::printf("ERROR: warm p50 is not >= 10x below cold p50\n");
    return 1;
  }
  return 0;
}
