// Generalization workload: GoogLeNet (Inception v1), the third model the
// paper's introduction names. A much less regular layer mix than
// AlexNet/VGG (kernels 1/3/5/7, 57 conv layers, feature maps 7..112) —
// demonstrates the automated flow where per-model hand tuning would be
// impractical, which is the paper's core pitch.
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "core/unified.h"
#include "nn/network.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace sasynth;
  bench::print_header("GoogLeNet generalization run",
                      "framework generalization (model named in DAC'17 §2.1)");

  const Network net = make_googlenet();
  std::printf("%zu conv layers, %.2f Gops/image\n\n", net.layers.size(),
              static_cast<double>(net.total_ops()) * 1e-9);

  UnifiedOptions options;
  options.dse.min_dsp_util = 0.70;
  options.shape_shortlist = 24;
  options.jobs = bench::parse_jobs_flag(argc, argv);
  const UnifiedDesign design = select_unified_design(
      net, arria10_gt1150(), DataType::kFloat32, options);
  if (!design.valid) {
    std::printf("no valid unified design found\n");
    return 1;
  }
  std::printf("Unified design: shape=%s  freq=%.1f MHz -> %.1f Gops, %.3f "
              "ms/image\n",
              design.design.shape().to_string().c_str(),
              design.realized_freq_mhz, design.aggregate_gops,
              design.total_latency_ms);
  std::printf("Resources: %s\n\n", design.resources.report.summary().c_str());

  // Layer-class summary instead of 57 rows: aggregate by kernel size.
  struct ClassAgg {
    double ops = 0.0;
    double latency_ms = 0.0;
    double worst_eff = 1.0;
    int memory_bound = 0;
    int count = 0;
  };
  std::map<std::int64_t, ClassAgg> classes;
  for (std::size_t i = 0; i < net.layers.size(); ++i) {
    ClassAgg& agg = classes[net.layers[i].kernel];
    agg.ops += static_cast<double>(net.layers[i].total_ops());
    agg.latency_ms += design.per_layer[i].latency_ms;
    agg.worst_eff = std::min(agg.worst_eff, design.per_layer[i].eff());
    agg.memory_bound += design.per_layer[i].perf.memory_bound ? 1 : 0;
    ++agg.count;
  }
  AsciiTable table;
  table.row()
      .cell("kernel")
      .cell("layers")
      .cell("Gops share")
      .cell("latency ms")
      .cell("avg Gops")
      .cell("worst eff")
      .cell("mem-bound");
  for (const auto& [kernel, agg] : classes) {
    table.row()
        .cell(std::to_string(kernel) + "x" + std::to_string(kernel))
        .cell(static_cast<std::int64_t>(agg.count))
        .percent(agg.ops / static_cast<double>(net.total_ops()), 1)
        .cell(agg.latency_ms, 3)
        .cell(agg.ops / (agg.latency_ms * 1e-3) * 1e-9, 1)
        .percent(agg.worst_eff, 1)
        .cell(static_cast<std::int64_t>(agg.memory_bound));
  }
  table.print();
  bench::print_note(
      "the 3x3/5x5 branches run near peak; 1x1 reductions have far less "
      "reuse per output and dominate the efficiency tail - the layer-shape "
      "irregularity that motivates automated per-model DSE.");
  return 0;
}
