// Fault-injection overhead gate: the disabled fault layer must be free.
//
// Two measurements, extending the bench_obs_overhead pattern (min-of-N wall
// times, JSON artifact, non-zero exit on a blown gate):
//   1. Micro: ns per disabled Site::fire() call — the cost every fallible
//      I/O boundary pays on every call when no fault is armed. The contract
//      is one relaxed atomic load; anything past a few ns is a regression.
//   2. Serve-level: the warm-cache request latency, against which the
//      per-request injection-site cost (a generous site-checks-per-request
//      budget times the micro cost) must stay under 1%.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "faultinject/faultinject.h"
#include "obs/metrics.h"
#include "serve/server.h"

namespace {

using namespace sasynth;

constexpr int kRepeats = 7;
constexpr long long kMicroIters = 20'000'000;
constexpr int kWarmRequests = 200;
/// Upper bound on fire() checks one request can traverse (reads, writes,
/// admission, task, cache probes — with slack for multi-chunk I/O).
constexpr int kSitesPerRequest = 16;
constexpr double kOverheadLimitPct = 1.0;

const char* kRequest =
    "sasynth-request v1\n"
    "layer 16,16,8,8,3\n"
    "device tiny\n"
    "option min_util 0.5\n"
    "end\n";

double min_fire_ns() {
  fault::Site& s = fault::site(fault::kSiteTcpRead);
  double best = 1e300;
  long long sink = 0;
  for (int r = 0; r < kRepeats; ++r) {
    const double ms = bench::timed_ms("bench.fault_fire_disabled", [&] {
      for (long long i = 0; i < kMicroIters; ++i) {
        sink += static_cast<long long>(s.fire());
      }
    });
    best = std::min(best, ms);
  }
  if (sink != 0) std::printf("unexpected: disabled site fired\n");
  return best * 1e6 / static_cast<double>(kMicroIters);
}

double min_warm_request_us(SynthServer& server) {
  double best = 1e300;
  for (int r = 0; r < kRepeats; ++r) {
    const double ms = bench::timed_ms("bench.warm_requests", [&] {
      for (int i = 0; i < kWarmRequests; ++i) server.handle(kRequest);
    });
    best = std::min(best, ms);
  }
  return best * 1e3 / kWarmRequests;
}

}  // namespace

int main() {
  bench::print_header(
      "Fault-injection overhead: disabled sites on the serve path",
      "ISSUE 4 acceptance (disabled fault layer < 1% of warm request)");

  fault::disarm_all();  // the measured configuration: nothing armed

  const double fire_ns = min_fire_ns();
  std::printf("disabled Site::fire(): %.2f ns/call (min of %d x %lldM)\n",
              fire_ns, kRepeats, kMicroIters / 1'000'000);

  ServeOptions options;
  options.jobs = 1;
  options.cache_capacity = 16;
  SynthServer server(options);
  server.handle(kRequest);  // warm the cache: the DSE runs once, here
  const double warm_us = min_warm_request_us(server);
  std::printf("warm cached request: %.2f us (min of %d x %d requests)\n",
              warm_us, kRepeats, kWarmRequests);

  const double per_request_ns = fire_ns * kSitesPerRequest;
  const double overhead_pct = per_request_ns / (warm_us * 1e3) * 100.0;
  std::printf(
      "%d site checks/request -> %.1f ns = %.4f%% of a warm request "
      "(limit %.1f%%)\n",
      kSitesPerRequest, per_request_ns, overhead_pct, kOverheadLimitPct);

  std::FILE* out = std::fopen("BENCH_faultinject_overhead.json", "w");
  if (out != nullptr) {
    std::fprintf(out,
                 "{\"fire_disabled_ns\": %.4f, \"warm_request_us\": %.4f, "
                 "\"sites_per_request\": %d, \"overhead_pct\": %.6f, "
                 "\"limit_pct\": %.1f}\n",
                 fire_ns, warm_us, kSitesPerRequest, overhead_pct,
                 kOverheadLimitPct);
    std::fclose(out);
    std::printf("wrote BENCH_faultinject_overhead.json\n");
  }

  if (overhead_pct > kOverheadLimitPct) {
    std::printf("ERROR: disabled fault layer costs %.4f%% > %.1f%%\n",
                overhead_pct, kOverheadLimitPct);
    return 1;
  }
  return 0;
}
