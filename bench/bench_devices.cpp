// Device-portability sweep: the same push-button DSE retargeted at every
// device in the catalog (the framework is parameterized by the device
// description — "no hardware-related, low-level considerations are necessary
// for end users", §1).
//
// Runs the AlexNet conv5 single-layer DSE per device and reports the chosen
// design, realized clock, and throughput — showing how the optimum shifts
// with DSP count, BRAM and bandwidth.
#include <cstdio>

#include "bench_util.h"
#include "core/dse.h"
#include "loopnest/conv_nest.h"
#include "nn/network.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace sasynth;
  bench::print_header("Device portability sweep",
                      "framework retargeting (DAC'17 §1 push-button claim)");
  const int jobs = bench::parse_jobs_flag(argc, argv);

  const ConvLayerDesc layer = alexnet_conv5();
  const LoopNest nest = build_conv_nest(layer);

  AsciiTable table;
  table.row()
      .cell("device")
      .cell("DSP blocks")
      .cell("BW GB/s")
      .cell("design")
      .cell("lanes")
      .cell("P&R MHz")
      .cell("Gops")
      .cell("bound");
  for (const FpgaDevice& device :
       {arria10_gt1150(), arria10_gx1150(), xilinx_ku060(), xilinx_vc709(),
        stratix_v(), tiny_test_device()}) {
    DseOptions options;
    options.min_dsp_util = 0.70;
    options.max_rows = 64;
    options.max_cols = 64;
    options.jobs = jobs;
    const DesignSpaceExplorer explorer(device, DataType::kFloat32, options);
    const DseResult result = explorer.explore(nest);
    if (result.empty()) {
      table.row().cell(device.name).cell(device.dsp_blocks).cell(
          device.bw_total_gbs, 1);
      continue;
    }
    const DseCandidate* best = result.best();
    table.row()
        .cell(device.name)
        .cell(device.dsp_blocks)
        .cell(device.bw_total_gbs, 1)
        .cell(best->design.shape().to_string())
        .cell(best->design.num_lanes())
        .cell(best->realized_freq_mhz, 1)
        .cell(best->realized_gops(), 1)
        .cell(best->realized.memory_bound ? "memory" : "compute");
  }
  table.print();
  bench::print_note(
      "the chosen design tracks each part's fp32 MAC yield and clock "
      "(hardened-FP Arria10 leads; DSP48 parts pay the soft-float tax) - "
      "device-aware DSE, no per-device hand tuning.");
  return 0;
}
