// §6 future work: projected effect of the Winograd F(2x2,3x3) transform.
//
// The paper states (citing [17]) that Winograd could potentially double the
// throughput of its designs. This bench (a) validates the transform's
// numerics against the direct convolution, and (b) applies the arithmetic
// model to every VGG16 layer of the unified fp32 design to produce the
// projected per-layer and aggregate speedup.
#include <cstdio>

#include "bench_util.h"
#include "core/unified.h"
#include "nn/network.h"
#include "nn/winograd.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace sasynth;
  bench::print_header("Winograd ablation - projected F(2x2,3x3) speedup",
                      "DAC'17 §6 (future work), factor cited from [17]");

  // Functional validation on a VGG-shaped layer.
  const ConvLayerDesc sample = make_conv("wg", 32, 16, 14, 3);
  Rng rng(5);
  const ConvData data = make_random_conv_data(sample, rng);
  const float err = Tensor::max_abs_diff(reference_conv(sample, data),
                                         winograd_conv(sample, data));
  std::printf("numeric check (%s): max|direct - winograd| = %.2g  [%s]\n\n",
              sample.summary().c_str(), static_cast<double>(err),
              err < 1e-2F ? "PASS" : "FAIL");

  const Network net = make_vgg16();
  UnifiedOptions options;
  options.dse.min_dsp_util = 0.70;
  options.shape_shortlist = 24;
  const UnifiedDesign design = select_unified_design(
      net, arria10_gt1150(), DataType::kFloat32, options);
  if (!design.valid) {
    std::printf("no valid unified design\n");
    return 1;
  }

  AsciiTable table;
  table.row()
      .cell("layer")
      .cell("direct Gops")
      .cell("mult reduction")
      .cell("projected Gops")
      .cell("weight footprint");
  double direct_latency = 0.0;
  double wino_latency = 0.0;
  for (std::size_t i = 0; i < net.layers.size(); ++i) {
    const LayerPerf& lp = design.per_layer[i];
    const WinogradGain gain = winograd_gain(net.layers[i]);
    const double projected = lp.throughput_gops() * gain.projected_speedup;
    direct_latency += lp.latency_ms;
    wino_latency += lp.latency_ms / gain.projected_speedup;
    table.row()
        .cell(lp.layer)
        .cell(lp.throughput_gops(), 1)
        .cell(gain.mult_reduction, 2)
        .cell(projected, 1)
        .cell(gain.weight_footprint_growth, 2);
  }
  table.print();
  std::printf(
      "\naggregate: %.1f -> %.1f Gops effective (%.2fx), latency %.2f -> "
      "%.2f ms/image\n",
      design.aggregate_gops, design.aggregate_gops * direct_latency / wino_latency,
      direct_latency / wino_latency, direct_latency, wino_latency);
  bench::print_note(
      "matches the paper's expectation: ~2x potential improvement from "
      "Winograd on 3x3 layers, at a 16/9 weight-buffer cost.");
  return 0;
}
