// Roofline ablation: where the reuse strategies of §2.3 sit on the roofline,
// and where the compute/memory crossover falls as bandwidth varies.
//
// Reproduces the quantitative story behind the paper's bad-tiling example
// (Tile(2,2,2,2,2,2) needs ~67 GB/s; at 19 GB/s it achieves ~160 GFlops)
// and connects the model to the roofline methodology of [6] that the paper
// positions itself against.
#include <cstdio>

#include "bench_util.h"
#include "core/roofline.h"
#include "loopnest/conv_nest.h"
#include "nn/network.h"
#include "util/csv.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace sasynth;
  bench::print_header("Roofline ablation - reuse strategy vs bandwidth",
                      "DAC'17 §2.3 bad-tiling example / §3.4 MT model");

  const ConvLayerDesc layer = alexnet_conv5();
  const LoopNest nest = build_conv_nest(layer);
  const FpgaDevice device = arria10_gt1150();
  const SystolicMapping mapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI};
  const ArrayShape sys1{11, 13, 8};

  struct Strategy {
    const char* name;
    std::vector<std::int64_t> middle;
  };
  const std::vector<Strategy> strategies{
      {"paper tile (4,4,13,1,3,3)", {4, 4, 1, 13, 3, 3}},
      {"medium tile", {2, 2, 1, 8, 3, 3}},
      {"small tile", {1, 1, 1, 4, 1, 1}},
      {"tiny tile (paper's bad ex.)", {1, 1, 1, 2, 1, 1}},
  };

  AsciiTable table;
  table.row()
      .cell("reuse strategy")
      .cell("ops/byte")
      .cell("compute roof")
      .cell("memory roof")
      .cell("attainable")
      .cell("bound")
      .cell("BW needed for peak");
  for (const Strategy& strategy : strategies) {
    const DesignPoint design(nest, mapping, sys1,
                             std::vector<std::int64_t>(strategy.middle));
    const RooflinePoint point =
        roofline_point(nest, design, device, DataType::kFloat32, 280.0);
    const double bw_needed =
        point.compute_roof_gops / point.operational_intensity;
    table.row()
        .cell(strategy.name)
        .cell(point.operational_intensity, 1)
        .cell(point.compute_roof_gops, 1)
        .cell(point.memory_roof_gops, 1)
        .cell(point.attainable_gops, 1)
        .cell(point.memory_bound ? "memory" : "compute")
        .cell(strformat("%.1f GB/s", bw_needed));
  }
  table.print();

  // Bandwidth sweep for the paper tile: where the crossover falls.
  const DesignPoint good(nest, mapping, sys1, {4, 4, 1, 13, 3, 3});
  const std::vector<double> bws{1, 2, 4, 6, 8, 12, 16, 19.2, 24, 32, 48, 64};
  const auto sweep =
      sweep_bandwidth(nest, good, device, DataType::kFloat32, 280.0, bws);
  std::printf("\nBandwidth sweep (paper tile):\n");
  CsvWriter csv;
  csv.header({"bandwidth_gbs", "throughput_gops", "memory_bound"});
  AsciiTable sweep_table;
  sweep_table.row().cell("BW GB/s").cell("Gops").cell("bound");
  for (const BandwidthSweepSample& s : sweep) {
    sweep_table.row()
        .cell(s.bandwidth_gbs, 1)
        .cell(s.throughput_gops, 1)
        .cell(s.memory_bound ? "memory" : "compute");
    csv.row()
        .cell(s.bandwidth_gbs, 1)
        .cell(s.throughput_gops, 2)
        .cell(static_cast<std::int64_t>(s.memory_bound ? 1 : 0));
  }
  sweep_table.print();
  csv.write_file("roofline_bandwidth_sweep.csv");
  bench::print_note(
      "the tiny tile needs several times the device's 19.2 GB/s to reach its "
      "compute roof - the paper's ~67 GB/s observation; the chosen tile "
      "saturates compute well below the device bandwidth.");
  return 0;
}
