// Observability overhead gate: the instrumented DSE with metrics + tracing
// fully enabled must stay within 2% of the disabled-path wall time, and the
// explored designs must be byte-identical with observability on or off, at
// jobs 1 and jobs 4 — metrics never feed back into the search.
//
// Measures min-of-N (the repeatable lower envelope; means soak up scheduler
// noise) over a mid-size conv layer, and emits BENCH_obs_overhead.json.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/dse.h"
#include "fpga/device.h"
#include "loopnest/conv_nest.h"
#include "nn/layer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/strings.h"

namespace {

using namespace sasynth;

constexpr int kRepeats = 7;
constexpr double kOverheadLimitPct = 2.0;

/// Byte-stable serialization of an exploration result: every top design plus
/// its realized numbers, printed with round-trip precision.
std::string result_signature(const LoopNest& nest, const DseResult& result) {
  std::string sig;
  for (const DseCandidate& c : result.top) {
    sig += c.design.to_string(nest);
    sig += strformat(" est=%.17g realized=%.17g freq=%.17g\n",
                     c.estimated_gops(), c.realized_gops(),
                     c.realized_freq_mhz);
  }
  return sig;
}

DseResult run_once(const LoopNest& nest, int jobs) {
  DseOptions options;
  options.jobs = jobs;
  const DesignSpaceExplorer explorer(arria10_gt1150(), DataType::kFloat32,
                                     options);
  return explorer.explore(nest);
}

double min_wall_ms(const LoopNest& nest, int jobs) {
  double best = 1e300;
  for (int r = 0; r < kRepeats; ++r) {
    const double ms =
        bench::timed_ms("bench.dse_explore", [&] { run_once(nest, jobs); });
    best = std::min(best, ms);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const int jobs_flag = bench::parse_jobs_flag(argc, argv);
  const int jobs = jobs_flag > 0 ? jobs_flag : 4;
  bench::print_header("Observability overhead: instrumented vs disabled DSE",
                      "PR 3 acceptance (<2% overhead, identical results)");

  // AlexNet conv3-sized layer: a few hundred ms of phase-1 sweep per run.
  ConvLayerDesc layer;
  layer.name = "conv3";
  layer.in_maps = 256;
  layer.out_maps = 384;
  layer.out_rows = 13;
  layer.out_cols = 13;
  layer.kernel = 3;
  const LoopNest nest = build_conv_nest(layer);

  // Determinism gate first (cheap relative to the timing loops): the result
  // signature must not move when observability turns on, at either jobs
  // count, and must agree across jobs counts (the PR 1 invariant).
  obs::set_metrics_enabled(false);
  obs::set_trace_enabled(false);
  const std::string off_j1 = result_signature(nest, run_once(nest, 1));
  const std::string off_j4 = result_signature(nest, run_once(nest, 4));
  obs::set_metrics_enabled(true);
  obs::set_trace_enabled(true);
  const std::string on_j1 = result_signature(nest, run_once(nest, 1));
  const std::string on_j4 = result_signature(nest, run_once(nest, 4));
  const bool identical =
      !off_j1.empty() && off_j1 == on_j1 && off_j4 == on_j4 && off_j1 == off_j4;
  std::printf("results identical (obs on/off, jobs 1/4): %s\n",
              identical ? "yes" : "NO");

  obs::set_metrics_enabled(false);
  obs::set_trace_enabled(false);
  const double disabled_ms = min_wall_ms(nest, jobs);
  obs::set_metrics_enabled(true);
  obs::set_trace_enabled(true);
  const double enabled_ms = min_wall_ms(nest, jobs);
  obs::set_metrics_enabled(false);
  obs::set_trace_enabled(false);

  const double overhead_pct = (enabled_ms / disabled_ms - 1.0) * 100.0;
  std::printf(
      "jobs %d, min of %d runs: disabled %.2f ms, enabled %.2f ms, "
      "overhead %.2f%% (limit %.1f%%)\n",
      jobs, kRepeats, disabled_ms, enabled_ms, overhead_pct,
      kOverheadLimitPct);

  std::FILE* out = std::fopen("BENCH_obs_overhead.json", "w");
  if (out != nullptr) {
    std::fprintf(out,
                 "{\"layer\": \"%s\", \"jobs\": %d, \"repeats\": %d, "
                 "\"disabled_ms\": %.4f, \"enabled_ms\": %.4f, "
                 "\"overhead_pct\": %.4f, \"limit_pct\": %.1f, "
                 "\"identical\": %s}\n",
                 layer.name.c_str(), jobs, kRepeats, disabled_ms, enabled_ms,
                 overhead_pct, kOverheadLimitPct, identical ? "true" : "false");
    std::fclose(out);
    std::printf("wrote BENCH_obs_overhead.json\n");
  }

  if (!identical) {
    std::printf("ERROR: observability perturbed the DSE result\n");
    return 1;
  }
  if (overhead_pct > kOverheadLimitPct) {
    std::printf("ERROR: overhead %.2f%% exceeds %.1f%%\n", overhead_pct,
                kOverheadLimitPct);
    return 1;
  }
  return 0;
}
