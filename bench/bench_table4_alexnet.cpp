// Table 4: per-convolutional-layer throughput and DSP efficiency of the
// unified AlexNet design (fp32), plus the Table 3 block's design summary
// (PE shape, frequency, resource utilization).
//
// Paper: shape (11,14,8) @ 270.8 MHz; per-layer throughput 193.5 / 335.9 /
// 541.7 / 541.6 / 610.0, avg 496.1 GFlops; layer 1 memory-bound after
// folding. We regenerate the same rows with our DSE's unified design; the
// shape to match is: low layer-1 throughput (bandwidth-bound, folded conv1),
// near-peak deeper layers, average in the same band.
#include <cstdio>

#include "bench_util.h"
#include "core/unified.h"
#include "nn/network.h"
#include "util/table.h"

int main() {
  using namespace sasynth;
  bench::print_header(
      "Table 4 - Throughput for Convolutional Layers of AlexNet",
      "DAC'17 Table 4 + AlexNet row of the PE-shape block in Table 3");

  const Network net = make_alexnet();
  UnifiedOptions options;
  options.dse.min_dsp_util = 0.70;
  options.shape_shortlist = 32;
  const UnifiedDesign design = select_unified_design(
      net, arria10_gt1150(), DataType::kFloat32, options);
  if (!design.valid) {
    std::printf("no valid unified design found\n");
    return 1;
  }

  std::printf("Unified design: shape=%s  freq=%.1f MHz\n",
              design.design.shape().to_string().c_str(),
              design.realized_freq_mhz);
  std::printf("Resources: %s\n", design.resources.report.summary().c_str());
  std::printf("Paper:     shape=(11,14,8)  freq=270.8 MHz  LUT 57%% DSP 81%% "
              "BRAM 45%% FF 40%%\n\n");

  AsciiTable table;
  table.row()
      .cell("Layer")
      .cell("Thrpt (Gops)")
      .cell("DSP Eff")
      .cell("latency (ms)")
      .cell("bound")
      .cell("paper Thrpt");
  const double paper_thrpt[] = {193.5, 335.9, 541.7, 541.6, 610.0};
  double total_ops = 0.0;
  for (std::size_t i = 0; i < design.per_layer.size(); ++i) {
    const LayerPerf& lp = design.per_layer[i];
    total_ops += static_cast<double>(net.layers[i].total_ops());
    table.row()
        .cell(std::to_string(i + 1) + " (" + lp.layer + ")")
        .cell(lp.throughput_gops(), 1)
        .percent(lp.eff(), 2)
        .cell(lp.latency_ms, 3)
        .cell(lp.perf.memory_bound ? "memory" : "compute")
        .cell(i < 5 ? paper_thrpt[i] : 0.0, 1);
  }
  table.row()
      .cell("Avg.")
      .cell(design.aggregate_gops, 1)
      .cell("")
      .cell(design.total_latency_ms, 3)
      .cell("")
      .cell(496.1, 1);
  table.print();
  bench::print_note(
      "shape agreement: per-layer throughput is flat near the compute peak "
      "for the 13x13 layers, as in the paper.");
  bench::print_note(
      "documented deviation: the paper's conv1 is memory-bound at 193.5 "
      "GFlops because its folding + unified reuse strategy starve it at 19 "
      "GB/s; our stride-folding (I=48, K=3) leaves conv1 compute-bound. See "
      "EXPERIMENTS.md.");
  return 0;
}
