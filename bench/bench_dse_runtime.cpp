// §4 claims: design-space-exploration cost.
//   * brute force over one AlexNet conv layer: ~311 CPU-hours (paper);
//   * pruned phase 1: < 30 seconds;
//   * Eq. 12 (c_s = 80%) shrinks the mapping/shape space (160K -> 64K in the
//     paper's counting);
//   * pow2 middle-bound pruning: 17.5x average search-space saving.
//
// google-benchmark measures the pruned phase-1 wall time directly; the
// brute-force cost is reported as the analytically counted design-point
// ratio (running it for real is exactly the 300-hour experiment the paper
// declines to repeat, and so do we).
//
// The parallel-sweep section times the AlexNet phase-1 sweep at several
// worker counts, checks the top-K output is bit-identical at every count,
// and writes BENCH_dse_runtime.json so CI can track the perf trajectory.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/dse.h"
#include "loopnest/conv_nest.h"
#include "nn/network.h"
#include "util/thread_pool.h"

namespace {

using namespace sasynth;

void BM_Phase1AlexNetConv5(benchmark::State& state) {
  const LoopNest nest = build_conv_nest(alexnet_conv5());
  DseOptions options;
  options.min_dsp_util = 0.80;
  options.jobs = static_cast<int>(state.range(0));
  const DesignSpaceExplorer explorer(arria10_gt1150(), DataType::kFloat32,
                                     options);
  for (auto _ : state) {
    DseStats stats;
    benchmark::DoNotOptimize(explorer.enumerate_phase1(nest, &stats));
  }
}
BENCHMARK(BM_Phase1AlexNetConv5)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->Arg(1)
    ->Arg(0);  // 0 = SASYNTH_JOBS env / all cores

void BM_BestReuseSingleShape(benchmark::State& state) {
  const LoopNest nest = build_conv_nest(alexnet_conv5());
  DseOptions options;
  const DesignSpaceExplorer explorer(arria10_gt1150(), DataType::kFloat32,
                                     options);
  const SystolicMapping mapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI};
  for (auto _ : state) {
    DesignPoint design;
    benchmark::DoNotOptimize(explorer.best_reuse_strategy(
        nest, mapping, ArrayShape{11, 13, 8}, &design, nullptr));
  }
}
BENCHMARK(BM_BestReuseSingleShape)->Unit(benchmark::kMicrosecond);

void BM_FeasibleMappingEnumeration(benchmark::State& state) {
  const LoopNest nest = build_conv_nest(alexnet_conv5());
  const ReuseMatrix reuse = analyze_reuse(nest);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enumerate_feasible_mappings(nest, reuse));
  }
}
BENCHMARK(BM_FeasibleMappingEnumeration)->Unit(benchmark::kMicrosecond);

void report_space_reduction() {
  const LoopNest nest = build_conv_nest(alexnet_conv5());
  std::printf("\n--- §4 search-space reduction (AlexNet conv5, fp32) ---\n");
  for (const double cs : {0.0, 0.5, 0.8, 0.9}) {
    DseOptions options;
    options.min_dsp_util = cs;
    const DesignSpaceExplorer explorer(arria10_gt1150(), DataType::kFloat32,
                                       options);
    DseStats stats;
    (void)explorer.enumerate_phase1(nest, &stats);
    std::printf(
        "c_s=%.0f%%: shapes %lld -> %lld; reuse space pow2 %lld vs "
        "brute-force %lld (%.1fx saving); phase1 %.2fs\n",
        cs * 100.0, static_cast<long long>(stats.shapes_considered),
        static_cast<long long>(stats.shapes_after_prune),
        static_cast<long long>(stats.reuse_space_pow2),
        static_cast<long long>(stats.reuse_space_bruteforce),
        static_cast<double>(stats.reuse_space_bruteforce) /
            static_cast<double>(stats.reuse_space_pow2),
        stats.phase1_seconds);
  }
  std::printf(
      "paper: 160K -> 64K mappings at c_s=80%%; 17.5x avg reuse-search "
      "saving; brute force ~311 h vs phase 1 < 30 s.\n\n");
}

/// One jobs setting over the full AlexNet conv sweep: every layer explored
/// end to end, phase-1 wall time summed from DseStats.
struct SweepRun {
  int jobs_requested = 0;
  int jobs_used = 0;
  double phase1_seconds = 0.0;
  std::vector<DseResult> results;  ///< per layer, for the identity check
};

SweepRun run_alexnet_sweep(int jobs) {
  const Network net = make_alexnet();
  DseOptions options;
  options.min_dsp_util = 0.80;
  options.jobs = jobs;
  const DesignSpaceExplorer explorer(arria10_gt1150(), DataType::kFloat32,
                                     options);
  SweepRun run;
  run.jobs_requested = jobs;
  for (const ConvLayerDesc& layer : net.layers) {
    DseResult result = explorer.explore_layer(layer);
    run.phase1_seconds += result.stats.phase1_seconds;
    run.jobs_used = result.stats.jobs_used;
    run.results.push_back(std::move(result));
  }
  return run;
}

/// Bit-identical comparison of two sweep outputs (designs, order, and the
/// floating-point estimates, compared with ==, not a tolerance).
bool sweeps_identical(const SweepRun& a, const SweepRun& b) {
  if (a.results.size() != b.results.size()) return false;
  for (std::size_t l = 0; l < a.results.size(); ++l) {
    const std::vector<DseCandidate>& ta = a.results[l].top;
    const std::vector<DseCandidate>& tb = b.results[l].top;
    if (ta.size() != tb.size()) return false;
    for (std::size_t i = 0; i < ta.size(); ++i) {
      if (!(ta[i].design == tb[i].design)) return false;
      if (ta[i].estimate.throughput_gops != tb[i].estimate.throughput_gops ||
          ta[i].realized_freq_mhz != tb[i].realized_freq_mhz ||
          ta[i].realized.throughput_gops != tb[i].realized.throughput_gops) {
        return false;
      }
    }
  }
  return true;
}

void report_parallel_speedup(int jobs_flag) {
  std::printf("--- phase-1 parallel sweep (AlexNet, all conv layers) ---\n");
  std::vector<int> settings = {1, 2, 4, 8};
  if (jobs_flag > 0) settings.push_back(jobs_flag);

  std::vector<SweepRun> runs;
  for (const int jobs : settings) runs.push_back(run_alexnet_sweep(jobs));
  const double serial = runs.front().phase1_seconds;

  std::string json = "[\n";
  bool all_identical = true;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const SweepRun& run = runs[i];
    const double speedup = serial / run.phase1_seconds;
    const bool identical = sweeps_identical(runs.front(), run);
    all_identical = all_identical && identical;
    std::printf("jobs=%d (used %d): phase1 %.3fs, speedup %.2fx, top-K %s\n",
                run.jobs_requested, run.jobs_used, run.phase1_seconds, speedup,
                identical ? "identical" : "DIVERGED");
    char line[256];
    std::snprintf(line, sizeof(line),
                  "  {\"layer\": \"alexnet\", \"jobs\": %d, \"jobs_used\": %d, "
                  "\"phase1_seconds\": %.6f, \"speedup\": %.4f, "
                  "\"identical\": %s}%s\n",
                  run.jobs_requested, run.jobs_used, run.phase1_seconds,
                  speedup, identical ? "true" : "false",
                  i + 1 < runs.size() ? "," : "");
    json += line;
  }
  json += "]\n";

  std::FILE* out = std::fopen("BENCH_dse_runtime.json", "w");
  if (out != nullptr) {
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::printf("wrote BENCH_dse_runtime.json\n");
  }
  if (!all_identical) {
    std::printf("ERROR: parallel sweep output diverged from jobs=1\n");
    std::exit(1);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const int jobs_flag = sasynth::bench::parse_jobs_flag(argc, argv);
  report_space_reduction();
  report_parallel_speedup(jobs_flag);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
