// §4 claims: design-space-exploration cost.
//   * brute force over one AlexNet conv layer: ~311 CPU-hours (paper);
//   * pruned phase 1: < 30 seconds;
//   * Eq. 12 (c_s = 80%) shrinks the mapping/shape space (160K -> 64K in the
//     paper's counting);
//   * pow2 middle-bound pruning: 17.5x average search-space saving.
//
// google-benchmark measures the pruned phase-1 wall time directly; the
// brute-force cost is reported as the analytically counted design-point
// ratio (running it for real is exactly the 300-hour experiment the paper
// declines to repeat, and so do we).
//
// The parallel-sweep section times the AlexNet phase-1 sweep at several
// worker counts, checks the top-K output is bit-identical at every count,
// and writes BENCH_dse_runtime.json so CI can track the perf trajectory.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/dse.h"
#include "loopnest/conv_nest.h"
#include "nn/network.h"
#include "serve/sweep_cache.h"
#include "util/thread_pool.h"

namespace {

using namespace sasynth;

void BM_Phase1AlexNetConv5(benchmark::State& state) {
  const LoopNest nest = build_conv_nest(alexnet_conv5());
  DseOptions options;
  options.min_dsp_util = 0.80;
  options.jobs = static_cast<int>(state.range(0));
  const DesignSpaceExplorer explorer(arria10_gt1150(), DataType::kFloat32,
                                     options);
  for (auto _ : state) {
    DseStats stats;
    benchmark::DoNotOptimize(explorer.enumerate_phase1(nest, &stats));
  }
}
BENCHMARK(BM_Phase1AlexNetConv5)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->Arg(1)
    ->Arg(0);  // 0 = SASYNTH_JOBS env / all cores

void BM_BestReuseSingleShape(benchmark::State& state) {
  const LoopNest nest = build_conv_nest(alexnet_conv5());
  DseOptions options;
  const DesignSpaceExplorer explorer(arria10_gt1150(), DataType::kFloat32,
                                     options);
  const SystolicMapping mapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI};
  for (auto _ : state) {
    DesignPoint design;
    benchmark::DoNotOptimize(explorer.best_reuse_strategy(
        nest, mapping, ArrayShape{11, 13, 8}, &design, nullptr));
  }
}
BENCHMARK(BM_BestReuseSingleShape)->Unit(benchmark::kMicrosecond);

void BM_FeasibleMappingEnumeration(benchmark::State& state) {
  const LoopNest nest = build_conv_nest(alexnet_conv5());
  const ReuseMatrix reuse = analyze_reuse(nest);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enumerate_feasible_mappings(nest, reuse));
  }
}
BENCHMARK(BM_FeasibleMappingEnumeration)->Unit(benchmark::kMicrosecond);

void report_space_reduction() {
  const LoopNest nest = build_conv_nest(alexnet_conv5());
  std::printf("\n--- §4 search-space reduction (AlexNet conv5, fp32) ---\n");
  for (const double cs : {0.0, 0.5, 0.8, 0.9}) {
    DseOptions options;
    options.min_dsp_util = cs;
    const DesignSpaceExplorer explorer(arria10_gt1150(), DataType::kFloat32,
                                       options);
    DseStats stats;
    (void)explorer.enumerate_phase1(nest, &stats);
    std::printf(
        "c_s=%.0f%%: shapes %lld -> %lld; reuse space pow2 %lld vs "
        "brute-force %lld (%.1fx saving); phase1 %.2fs\n",
        cs * 100.0, static_cast<long long>(stats.shapes_considered),
        static_cast<long long>(stats.shapes_after_prune),
        static_cast<long long>(stats.reuse_space_pow2),
        static_cast<long long>(stats.reuse_space_bruteforce),
        static_cast<double>(stats.reuse_space_bruteforce) /
            static_cast<double>(stats.reuse_space_pow2),
        stats.phase1_seconds);
  }
  std::printf(
      "paper: 160K -> 64K mappings at c_s=80%%; 17.5x avg reuse-search "
      "saving; brute force ~311 h vs phase 1 < 30 s.\n\n");
}

/// Deduplicated conv layers (repeated inception branches collapse, so the
/// exhaustive baseline costs what it must and no more).
std::vector<ConvLayerDesc> unique_layers(const Network& net) {
  std::vector<ConvLayerDesc> out;
  std::set<std::string> seen;
  for (const ConvLayerDesc& layer : net.layers) {
    const std::string key =
        std::to_string(layer.in_maps) + "," + std::to_string(layer.out_maps) +
        "," + std::to_string(layer.out_rows) + "," +
        std::to_string(layer.out_cols) + "," + std::to_string(layer.kernel) +
        "," + std::to_string(layer.stride) + "," +
        std::to_string(layer.groups);
    if (seen.insert(key).second) out.push_back(layer);
  }
  return out;
}

struct PruneRun {
  double seconds = 0.0;
  std::int64_t evals = 0;         ///< reuse_evaluated + corner-bound evals
  std::int64_t items_pruned = 0;
  std::vector<std::vector<DseCandidate>> per_layer;
};

PruneRun run_network_phase1(const std::vector<ConvLayerDesc>& layers,
                            bool prune, int jobs, SweepMemo* memo) {
  PruneRun run;
  for (const ConvLayerDesc& layer : layers) {
    const LoopNest nest = build_conv_nest(layer);
    DseOptions options;
    options.min_dsp_util = 0.80;
    options.jobs = jobs;
    options.bound_prune = prune;
    options.sweep_memo = memo;
    const DesignSpaceExplorer explorer(arria10_gt1150(), DataType::kFloat32,
                                       options);
    DseStats stats;
    const auto t0 = std::chrono::steady_clock::now();
    run.per_layer.push_back(explorer.enumerate_phase1(nest, &stats));
    run.seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    run.evals += stats.reuse_evaluated + stats.reuse_bound_evals;
    run.items_pruned += stats.items_pruned_bound;
  }
  return run;
}

bool topk_identical(const PruneRun& exhaustive, const PruneRun& pruned,
                    std::size_t top_k) {
  if (exhaustive.per_layer.size() != pruned.per_layer.size()) return false;
  for (std::size_t l = 0; l < exhaustive.per_layer.size(); ++l) {
    const std::vector<DseCandidate>& ex = exhaustive.per_layer[l];
    const std::vector<DseCandidate>& pr = pruned.per_layer[l];
    const std::size_t k = std::min(top_k, std::min(ex.size(), pr.size()));
    if (pr.size() < std::min(top_k, ex.size())) return false;
    for (std::size_t i = 0; i < k; ++i) {
      if (!(ex[i].design == pr[i].design) ||
          ex[i].estimate.throughput_gops != pr[i].estimate.throughput_gops) {
        return false;
      }
    }
  }
  return true;
}

/// Exhaustive-vs-pruned differential per bundled network: wall time, model
/// evaluations, and the bit-identity of the surviving top-K. Exits nonzero
/// when a gate fails:
///   * pruned may never evaluate more reuse strategies than exhaustive
///     (corner-bound overhead included);
///   * cold AlexNet at jobs=1 must prune >= 10x (the PR's acceptance
///     number; measured ~200x);
///   * the top-K must match bit for bit on every layer.
/// The warm row reruns AlexNet with a SweepCache carried over from the cold
/// pruned run (the incremental-DSE tier; stretch target 100x vs exhaustive).
std::string report_prune_speedup() {
  std::printf("--- branch-and-bound pruning vs exhaustive sweep ---\n");
  std::string json;
  bool gates_ok = true;
  double alexnet_cold_speedup = 0.0;
  for (const char* name : {"alexnet", "vgg16", "googlenet"}) {
    const bool is_alexnet = std::string(name) == "alexnet";
    const Network net = is_alexnet                    ? make_alexnet()
                        : std::string(name) == "vgg16" ? make_vgg16()
                                                        : make_googlenet();
    // AlexNet runs serial (the acceptance gate is defined at jobs=1); the
    // larger networks use every core to keep the bench turnaround sane —
    // the evals gate is jobs-invariant either way.
    const int jobs = is_alexnet ? 1 : 0;
    const std::vector<ConvLayerDesc> layers = unique_layers(net);
    const PruneRun exhaustive =
        run_network_phase1(layers, /*prune=*/false, jobs, nullptr);
    const PruneRun pruned =
        run_network_phase1(layers, /*prune=*/true, jobs, nullptr);
    const bool identical = topk_identical(exhaustive, pruned, 14);
    const double speedup = exhaustive.seconds / pruned.seconds;
    if (is_alexnet) alexnet_cold_speedup = speedup;
    std::printf(
        "%-10s (%zu uniq layers, jobs=%d): exhaustive %.2fs (%lld evals), "
        "pruned %.2fs (%lld evals, %lld items pruned), speedup %.1fx, "
        "top-K %s\n",
        name, layers.size(), jobs, exhaustive.seconds,
        static_cast<long long>(exhaustive.evals), pruned.seconds,
        static_cast<long long>(pruned.evals),
        static_cast<long long>(pruned.items_pruned), speedup,
        identical ? "identical" : "DIVERGED");
    char line[512];
    std::snprintf(
        line, sizeof(line),
        "  {\"network\": \"%s\", \"jobs\": %d, "
        "\"exhaustive_seconds\": %.6f, \"exhaustive_evals\": %lld, "
        "\"pruned_seconds\": %.6f, \"pruned_evals\": %lld, "
        "\"items_pruned\": %lld, \"speedup\": %.2f, \"identical\": %s},\n",
        name, jobs, exhaustive.seconds,
        static_cast<long long>(exhaustive.evals), pruned.seconds,
        static_cast<long long>(pruned.evals),
        static_cast<long long>(pruned.items_pruned), speedup,
        identical ? "true" : "false");
    json += line;
    if (!identical) {
      std::printf("ERROR: pruned top-K diverged from exhaustive on %s\n",
                  name);
      gates_ok = false;
    }
    if (pruned.evals > exhaustive.evals) {
      std::printf(
          "ERROR: pruned sweep evaluated more candidates than exhaustive on "
          "%s (%lld > %lld)\n",
          name, static_cast<long long>(pruned.evals),
          static_cast<long long>(exhaustive.evals));
      gates_ok = false;
    }
    // Warm incremental rerun: same layers with the sweep cache populated by
    // a first pruned pass (exact tier replays the floor-seeding DFS runs;
    // the hint tier seeds the floors of repeated geometry).
    if (is_alexnet) {
      SweepCache cache(1 << 16);
      (void)run_network_phase1(layers, /*prune=*/true, jobs, &cache);
      const PruneRun warm =
          run_network_phase1(layers, /*prune=*/true, jobs, &cache);
      const bool warm_identical = topk_identical(exhaustive, warm, 14);
      const double warm_speedup = exhaustive.seconds / warm.seconds;
      std::printf(
          "%-10s warm sweep-cache rerun: %.2fs (%lld evals), %.1fx vs "
          "exhaustive, top-K %s\n",
          name, warm.seconds, static_cast<long long>(warm.evals),
          warm_speedup, warm_identical ? "identical" : "DIVERGED");
      std::snprintf(
          line, sizeof(line),
          "  {\"network\": \"%s_warm\", \"jobs\": %d, "
          "\"pruned_seconds\": %.6f, \"pruned_evals\": %lld, "
          "\"speedup\": %.2f, \"identical\": %s},\n",
          name, jobs, warm.seconds, static_cast<long long>(warm.evals),
          warm_speedup, warm_identical ? "true" : "false");
      json += line;
      gates_ok = gates_ok && warm_identical;
    }
  }
  if (alexnet_cold_speedup < 10.0) {
    std::printf("ERROR: cold AlexNet jobs=1 prune speedup %.1fx < 10x gate\n",
                alexnet_cold_speedup);
    gates_ok = false;
  }
  if (!gates_ok) std::exit(1);
  std::printf("\n");
  return json;
}

/// One jobs setting over the full AlexNet conv sweep: every layer explored
/// end to end, phase-1 wall time summed from DseStats.
struct SweepRun {
  int jobs_requested = 0;
  int jobs_used = 0;
  double phase1_seconds = 0.0;
  std::vector<DseResult> results;  ///< per layer, for the identity check
};

SweepRun run_alexnet_sweep(int jobs) {
  const Network net = make_alexnet();
  DseOptions options;
  options.min_dsp_util = 0.80;
  options.jobs = jobs;
  const DesignSpaceExplorer explorer(arria10_gt1150(), DataType::kFloat32,
                                     options);
  SweepRun run;
  run.jobs_requested = jobs;
  for (const ConvLayerDesc& layer : net.layers) {
    DseResult result = explorer.explore_layer(layer);
    run.phase1_seconds += result.stats.phase1_seconds;
    run.jobs_used = result.stats.jobs_used;
    run.results.push_back(std::move(result));
  }
  return run;
}

/// Bit-identical comparison of two sweep outputs (designs, order, and the
/// floating-point estimates, compared with ==, not a tolerance).
bool sweeps_identical(const SweepRun& a, const SweepRun& b) {
  if (a.results.size() != b.results.size()) return false;
  for (std::size_t l = 0; l < a.results.size(); ++l) {
    const std::vector<DseCandidate>& ta = a.results[l].top;
    const std::vector<DseCandidate>& tb = b.results[l].top;
    if (ta.size() != tb.size()) return false;
    for (std::size_t i = 0; i < ta.size(); ++i) {
      if (!(ta[i].design == tb[i].design)) return false;
      if (ta[i].estimate.throughput_gops != tb[i].estimate.throughput_gops ||
          ta[i].realized_freq_mhz != tb[i].realized_freq_mhz ||
          ta[i].realized.throughput_gops != tb[i].realized.throughput_gops) {
        return false;
      }
    }
  }
  return true;
}

void report_parallel_speedup(int jobs_flag, const std::string& prune_json) {
  std::printf("--- phase-1 parallel sweep (AlexNet, all conv layers) ---\n");
  std::vector<int> settings = {1, 2, 4, 8};
  if (jobs_flag > 0) settings.push_back(jobs_flag);

  std::vector<SweepRun> runs;
  for (const int jobs : settings) runs.push_back(run_alexnet_sweep(jobs));
  const double serial = runs.front().phase1_seconds;

  std::string json = "[\n" + prune_json;
  bool all_identical = true;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const SweepRun& run = runs[i];
    const double speedup = serial / run.phase1_seconds;
    const bool identical = sweeps_identical(runs.front(), run);
    all_identical = all_identical && identical;
    std::printf("jobs=%d (used %d): phase1 %.3fs, speedup %.2fx, top-K %s\n",
                run.jobs_requested, run.jobs_used, run.phase1_seconds, speedup,
                identical ? "identical" : "DIVERGED");
    char line[256];
    std::snprintf(line, sizeof(line),
                  "  {\"layer\": \"alexnet\", \"jobs\": %d, \"jobs_used\": %d, "
                  "\"phase1_seconds\": %.6f, \"speedup\": %.4f, "
                  "\"identical\": %s}%s\n",
                  run.jobs_requested, run.jobs_used, run.phase1_seconds,
                  speedup, identical ? "true" : "false",
                  i + 1 < runs.size() ? "," : "");
    json += line;
  }
  json += "]\n";

  std::FILE* out = std::fopen("BENCH_dse_runtime.json", "w");
  if (out != nullptr) {
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::printf("wrote BENCH_dse_runtime.json\n");
  }
  if (!all_identical) {
    std::printf("ERROR: parallel sweep output diverged from jobs=1\n");
    std::exit(1);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const int jobs_flag = sasynth::bench::parse_jobs_flag(argc, argv);
  report_space_reduction();
  const std::string prune_json = report_prune_speedup();
  report_parallel_speedup(jobs_flag, prune_json);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
