// §4 claims: design-space-exploration cost.
//   * brute force over one AlexNet conv layer: ~311 CPU-hours (paper);
//   * pruned phase 1: < 30 seconds;
//   * Eq. 12 (c_s = 80%) shrinks the mapping/shape space (160K -> 64K in the
//     paper's counting);
//   * pow2 middle-bound pruning: 17.5x average search-space saving.
//
// google-benchmark measures the pruned phase-1 wall time directly; the
// brute-force cost is reported as the analytically counted design-point
// ratio (running it for real is exactly the 300-hour experiment the paper
// declines to repeat, and so do we).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/dse.h"
#include "loopnest/conv_nest.h"
#include "nn/network.h"

namespace {

using namespace sasynth;

void BM_Phase1AlexNetConv5(benchmark::State& state) {
  const LoopNest nest = build_conv_nest(alexnet_conv5());
  DseOptions options;
  options.min_dsp_util = 0.80;
  const DesignSpaceExplorer explorer(arria10_gt1150(), DataType::kFloat32,
                                     options);
  for (auto _ : state) {
    DseStats stats;
    benchmark::DoNotOptimize(explorer.enumerate_phase1(nest, &stats));
  }
}
BENCHMARK(BM_Phase1AlexNetConv5)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_BestReuseSingleShape(benchmark::State& state) {
  const LoopNest nest = build_conv_nest(alexnet_conv5());
  DseOptions options;
  const DesignSpaceExplorer explorer(arria10_gt1150(), DataType::kFloat32,
                                     options);
  const SystolicMapping mapping{ConvLoops::kO, ConvLoops::kC, ConvLoops::kI};
  for (auto _ : state) {
    DesignPoint design;
    benchmark::DoNotOptimize(explorer.best_reuse_strategy(
        nest, mapping, ArrayShape{11, 13, 8}, &design, nullptr));
  }
}
BENCHMARK(BM_BestReuseSingleShape)->Unit(benchmark::kMicrosecond);

void BM_FeasibleMappingEnumeration(benchmark::State& state) {
  const LoopNest nest = build_conv_nest(alexnet_conv5());
  const ReuseMatrix reuse = analyze_reuse(nest);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enumerate_feasible_mappings(nest, reuse));
  }
}
BENCHMARK(BM_FeasibleMappingEnumeration)->Unit(benchmark::kMicrosecond);

void report_space_reduction() {
  const LoopNest nest = build_conv_nest(alexnet_conv5());
  std::printf("\n--- §4 search-space reduction (AlexNet conv5, fp32) ---\n");
  for (const double cs : {0.0, 0.5, 0.8, 0.9}) {
    DseOptions options;
    options.min_dsp_util = cs;
    const DesignSpaceExplorer explorer(arria10_gt1150(), DataType::kFloat32,
                                       options);
    DseStats stats;
    (void)explorer.enumerate_phase1(nest, &stats);
    std::printf(
        "c_s=%.0f%%: shapes %lld -> %lld; reuse space pow2 %lld vs "
        "brute-force %lld (%.1fx saving); phase1 %.2fs\n",
        cs * 100.0, static_cast<long long>(stats.shapes_considered),
        static_cast<long long>(stats.shapes_after_prune),
        static_cast<long long>(stats.reuse_space_pow2),
        static_cast<long long>(stats.reuse_space_bruteforce),
        static_cast<double>(stats.reuse_space_bruteforce) /
            static_cast<double>(stats.reuse_space_pow2),
        stats.phase1_seconds);
  }
  std::printf(
      "paper: 160K -> 64K mappings at c_s=80%%; 17.5x avg reuse-search "
      "saving; brute force ~311 h vs phase 1 < 30 s.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  report_space_reduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
