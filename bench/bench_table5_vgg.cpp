// Table 5: per-convolutional-layer throughput and DSP efficiency of the
// unified VGG16 design (fp32), plus the VGG row of the Table 3 PE-shape
// block.
//
// Paper: shape (8,19,8) @ 252.6 MHz; layer 1 ~224 GFlops, layers 3-13
// ~600-603 GFlops at 96.97% efficiency, average 561.4 GFlops.
#include <cstdio>

#include "bench_util.h"
#include "core/unified.h"
#include "nn/network.h"
#include "util/table.h"

int main() {
  using namespace sasynth;
  bench::print_header(
      "Table 5 - Throughput for Convolutional Layers of VGG16",
      "DAC'17 Table 5 + VGG row of the PE-shape block in Table 3");

  const Network net = make_vgg16();
  UnifiedOptions options;
  options.dse.min_dsp_util = 0.70;
  options.shape_shortlist = 32;
  const UnifiedDesign design = select_unified_design(
      net, arria10_gt1150(), DataType::kFloat32, options);
  if (!design.valid) {
    std::printf("no valid unified design found\n");
    return 1;
  }

  std::printf("Unified design: shape=%s  freq=%.1f MHz\n",
              design.design.shape().to_string().c_str(),
              design.realized_freq_mhz);
  std::printf("Resources: %s\n", design.resources.report.summary().c_str());
  std::printf("Paper:     shape=(8,19,8)  freq=252.6 MHz  LUT 59%% DSP 81%% "
              "BRAM 47%% FF 40%%\n\n");

  const double paper_thrpt[] = {223.86, 450.11, 600.27, 601.69, 601.57,
                                602.44, 602.44, 602.42, 602.83, 602.83,
                                602.49, 602.49, 602.49};
  AsciiTable table;
  table.row()
      .cell("Layer")
      .cell("Thrpt (Gops)")
      .cell("DSP Eff")
      .cell("latency (ms)")
      .cell("bound")
      .cell("paper Thrpt");
  for (std::size_t i = 0; i < design.per_layer.size(); ++i) {
    const LayerPerf& lp = design.per_layer[i];
    table.row()
        .cell(std::to_string(i + 1) + " (" + lp.layer + ")")
        .cell(lp.throughput_gops(), 1)
        .percent(lp.eff(), 2)
        .cell(lp.latency_ms, 3)
        .cell(lp.perf.memory_bound ? "memory" : "compute")
        .cell(i < 13 ? paper_thrpt[i] : 0.0, 2);
  }
  table.row()
      .cell("Avg.")
      .cell(design.aggregate_gops, 1)
      .cell("")
      .cell(design.total_latency_ms, 3)
      .cell("")
      .cell(561.38, 2);
  table.print();
  bench::print_note(
      "shape agreement: first layer(s) below peak (3 input maps starve the "
      "vector dimension), deep layers uniform near the compute bound - the "
      "regularity advantage over AlexNet the paper highlights in §5.3.");
  return 0;
}
