// The paper's motivating claim (§1-2): direct-connected (broadcast) PE
// arrays cannot scale to the latest devices because interconnect fan-out
// collapses their clock, while the systolic array's local, short,
// peer-to-peer wiring keeps frequency high "even in the case of massive
// parallelization with over a thousand PEs".
//
// This bench sweeps the PE count and compares the two interconnect styles'
// modeled clocks and resulting peak throughputs (fp32, one MAC per PE-lane,
// SIMD 8) — reproducing the crossover that justifies the architecture.
#include <cstdio>

#include <cmath>

#include "bench_util.h"
#include "fpga/freq_model.h"
#include "util/strings.h"
#include "util/csv.h"
#include "util/table.h"

int main() {
  using namespace sasynth;
  bench::print_header("Fan-out motivation - systolic vs broadcast scaling",
                      "DAC'17 §1-2 (why a systolic array at all)");

  const FpgaDevice device = arria10_gt1150();
  constexpr std::int64_t kVec = 8;

  AsciiTable table;
  table.row()
      .cell("PEs")
      .cell("MAC lanes")
      .cell("broadcast MHz")
      .cell("systolic MHz")
      .cell("broadcast Gops")
      .cell("systolic Gops")
      .cell("systolic gain");
  CsvWriter csv;
  csv.header({"pes", "lanes", "broadcast_mhz", "systolic_mhz",
              "broadcast_gops", "systolic_gops"});
  for (const std::int64_t pes : {9LL, 16LL, 36LL, 64LL, 100LL, 144LL, 190LL}) {
    const std::int64_t lanes = pes * kVec;
    if (lanes > device.dsp_blocks) break;

    ResourceReport report;
    report.dsp_util =
        static_cast<double>(lanes) / static_cast<double>(device.dsp_blocks);
    report.bram_util = 0.4;
    report.logic_util = 0.3 + 0.4 * report.dsp_util;
    report.ff_util = report.logic_util / 2.0;

    const double f_sys = frequency_trend_mhz(device, report);
    const double f_bcast = broadcast_frequency_mhz(device, pes * kVec);
    const double g_sys = 2.0 * static_cast<double>(lanes) * f_sys * 1e-3;
    const double g_bcast = 2.0 * static_cast<double>(lanes) * f_bcast * 1e-3;
    table.row()
        .cell(pes)
        .cell(lanes)
        .cell(f_bcast, 1)
        .cell(f_sys, 1)
        .cell(g_bcast, 1)
        .cell(g_sys, 1)
        .cell(strformat("%.2fx", g_sys / g_bcast));
    csv.row()
        .cell(pes)
        .cell(lanes)
        .cell(f_bcast, 2)
        .cell(f_sys, 2)
        .cell(g_bcast, 2)
        .cell(g_sys, 2);
  }
  table.print();
  csv.write_file("fanout_motivation.csv");
  bench::print_note(
      "small arrays: interconnect style barely matters. At the ~1.5K-lane "
      "scale of an Arria 10, the broadcast clock collapses toward 100 MHz "
      "(the 120-200 MHz designs in the comparison table) while the systolic "
      "clock stays near 280 MHz - the paper's reason to exist.");
  return 0;
}
