// Shard-tier benchmark: what fanning phase 1 out over worker daemons costs
// (and buys) against single-node execution on the same machine.
//
// For each shard count the full AlexNet conv stream is replayed cold against
// a fresh coordinator whose peers are in-process worker daemons on loopback
// — the real TCP path, not a mock. Every sharded response must be
// byte-identical to the single-node reference; a mismatch is an immediate
// failure, since determinism is the tier's whole contract.
//
// Emits BENCH_shard.json with per-shard-count request counts, p50/p95
// latency, and the degraded-range counter (which must be 0 on loopback).
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "nn/network.h"
#include "obs/metrics.h"
#include "serve/event_loop.h"
#include "serve/server.h"
#include "util/strings.h"

namespace {

using namespace sasynth;

constexpr int kMaxShards = 3;
constexpr int kJobs = 4;

std::vector<std::string> alexnet_request_stream() {
  std::vector<std::string> blocks;
  for (const ConvLayerDesc& layer : make_alexnet().layers) {
    blocks.push_back(strformat(
        "sasynth-request v1\n"
        "layer %lld,%lld,%lld,%lld,%lld,%lld,%lld\n"
        "device arria10_gt1150\n"
        "option jobs %d\n"
        "end\n",
        static_cast<long long>(layer.in_maps),
        static_cast<long long>(layer.out_maps),
        static_cast<long long>(layer.out_rows),
        static_cast<long long>(layer.out_cols),
        static_cast<long long>(layer.kernel),
        static_cast<long long>(layer.stride),
        static_cast<long long>(layer.groups), kJobs));
  }
  return blocks;
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = p * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

/// One in-process worker daemon on an ephemeral loopback port.
class WorkerDaemon {
 public:
  WorkerDaemon() : server_({}) {
    loop_ = std::make_unique<EventLoopServer>(server_, EventLoopOptions{});
    std::string error;
    if (!loop_->start(&error)) {
      std::fprintf(stderr, "worker start failed: %s\n", error.c_str());
      std::exit(1);
    }
    thread_ = std::thread([this] { loop_->run(); });
  }
  ~WorkerDaemon() {
    loop_->request_stop();
    thread_.join();
  }
  std::string peer() const {
    return "127.0.0.1:" + std::to_string(loop_->port());
  }

 private:
  SynthServer server_;
  std::unique_ptr<EventLoopServer> loop_;
  std::thread thread_;
};

struct Row {
  int shards = 0;
  std::size_t requests = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  std::int64_t degraded = 0;
};

}  // namespace

int main() {
  const std::vector<std::string> stream = alexnet_request_stream();
  obs::set_metrics_enabled(true);
  obs::Counter& degraded_counter =
      obs::MetricsRegistry::global().counter("shard_degraded_total");

  // Single-node reference, also the shards=0 baseline row.
  std::printf("--- shard benchmark: single-node reference (%zu layers) ---\n",
              stream.size());
  std::vector<std::string> reference;
  std::vector<Row> rows;
  {
    Row row;
    row.shards = 0;
    std::vector<double> ms;
    SynthServer single({});
    for (const std::string& block : stream) {
      std::string response;
      ms.push_back(bench::timed_ms("bench.shard_single",
                                   [&] { response = single.handle(block); }));
      if (response.rfind("sasynth-response v1 ok", 0) != 0) {
        std::printf("ERROR: reference request failed: %s\n", response.c_str());
        return 1;
      }
      reference.push_back(std::move(response));
    }
    row.requests = stream.size();
    row.p50_ms = percentile(ms, 0.50);
    row.p95_ms = percentile(ms, 0.95);
    rows.push_back(row);
    std::printf("  p50 %.2f ms, p95 %.2f ms\n", row.p50_ms, row.p95_ms);
  }

  std::vector<std::unique_ptr<WorkerDaemon>> workers;
  for (int i = 0; i < kMaxShards; ++i) {
    workers.push_back(std::make_unique<WorkerDaemon>());
  }

  for (int shards = 1; shards <= kMaxShards; ++shards) {
    std::printf("--- sharded pass: %d worker(s) ---\n", shards);
    ServeOptions options;
    for (int p = 0; p < shards; ++p) {
      options.shard_peers.push_back(workers[p]->peer());
    }
    const std::int64_t degraded_before = degraded_counter.value();
    // Fresh coordinator per shard count: a cold DesignCache keeps every
    // request on the shard path.
    SynthServer coordinator(options);
    Row row;
    row.shards = shards;
    std::vector<double> ms;
    for (std::size_t i = 0; i < stream.size(); ++i) {
      std::string response;
      ms.push_back(bench::timed_ms(
          "bench.shard_fanout", [&] { response = coordinator.handle(stream[i]); }));
      if (response != reference[i]) {
        std::printf("ERROR: shards=%d response %zu differs from single-node\n",
                    shards, i);
        return 1;
      }
    }
    row.requests = stream.size();
    row.p50_ms = percentile(ms, 0.50);
    row.p95_ms = percentile(ms, 0.95);
    row.degraded = degraded_counter.value() - degraded_before;
    rows.push_back(row);
    std::printf("  p50 %.2f ms, p95 %.2f ms, degraded %lld\n", row.p50_ms,
                row.p95_ms, static_cast<long long>(row.degraded));
    if (row.degraded != 0) {
      std::printf("ERROR: loopback workers degraded %lld range(s)\n",
                  static_cast<long long>(row.degraded));
      return 1;
    }
  }

  std::FILE* out = std::fopen("BENCH_shard.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "[\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(out,
                   "  {\"shards\": %d, \"requests\": %zu, \"p50_ms\": %.4f, "
                   "\"p95_ms\": %.4f, \"degraded\": %lld, "
                   "\"byte_identical\": true}%s\n",
                   r.shards, r.requests, r.p50_ms, r.p95_ms,
                   static_cast<long long>(r.degraded),
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "]\n");
    std::fclose(out);
    std::printf("wrote BENCH_shard.json\n");
  }
  std::printf("all sharded responses byte-identical to single-node\n");
  return 0;
}
