// Ablation of the unified-design decision (§5.3): the paper uses one
// configuration for all conv layers "because it has big performance overhead
// to reprogram the FPGA for different layers". This bench quantifies that
// trade-off: per-layer optimal designs vs the unified design, with and
// without the reconfiguration cost (full-chip partial reconfiguration of an
// Arria 10 takes on the order of 100 ms).
#include <cstdio>

#include "bench_util.h"
#include "core/dse.h"
#include "core/unified.h"
#include "nn/network.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace sasynth;
  bench::print_header("Ablation - unified vs per-layer designs",
                      "DAC'17 §5.3 (reprogramming-overhead rationale)");

  const Network net = make_alexnet();
  const FpgaDevice device = arria10_gt1150();
  constexpr double kReconfigMs = 100.0;  // FPGA reprogram cost per switch

  // Unified design.
  UnifiedOptions uopts;
  uopts.dse.min_dsp_util = 0.70;
  uopts.shape_shortlist = 24;
  const UnifiedDesign unified =
      select_unified_design(net, device, DataType::kFloat32, uopts);
  if (!unified.valid) {
    std::printf("no unified design\n");
    return 1;
  }

  // Per-layer optima.
  DseOptions lopts;
  lopts.min_dsp_util = 0.80;
  const DesignSpaceExplorer explorer(device, DataType::kFloat32, lopts);
  AsciiTable table;
  table.row()
      .cell("layer")
      .cell("unified Gops")
      .cell("per-layer Gops")
      .cell("gain")
      .cell("per-layer shape");
  double per_layer_ms = 0.0;
  for (std::size_t i = 0; i < net.layers.size(); ++i) {
    const DseResult result = explorer.explore_layer(net.layers[i]);
    if (result.empty()) continue;
    const DseCandidate* best = result.best();
    const double layer_ms =
        static_cast<double>(net.layers[i].total_ops()) /
        (best->realized_gops() * 1e9) * 1e3;
    per_layer_ms += layer_ms;
    table.row()
        .cell(net.layers[i].name)
        .cell(unified.per_layer[i].throughput_gops(), 1)
        .cell(best->realized_gops(), 1)
        .cell(strformat("%.2fx", best->realized_gops() /
                                     unified.per_layer[i].throughput_gops()))
        .cell(best->design.shape().to_string());
  }
  table.print();

  const double reconfig_ms =
      kReconfigMs * static_cast<double>(net.layers.size() - 1);
  const double total_ops = static_cast<double>(net.total_ops());
  std::printf("\nunified:           %8.2f ms/image (%.1f Gops)\n",
              unified.total_latency_ms, unified.aggregate_gops);
  std::printf("per-layer, free:   %8.2f ms/image (%.1f Gops) - hypothetical\n",
              per_layer_ms, total_ops / (per_layer_ms * 1e-3) * 1e-9);
  std::printf("per-layer, + %3.0fms reconfig/switch: %8.2f ms/image (%.2f "
              "Gops)\n",
              kReconfigMs, per_layer_ms + reconfig_ms,
              total_ops / ((per_layer_ms + reconfig_ms) * 1e-3) * 1e-9);
  bench::print_note(
      "per-layer specialization buys a few percent at best but the "
      "reprogramming cost is two orders of magnitude larger than the whole "
      "inference - exactly why the paper unifies.");
  return 0;
}
