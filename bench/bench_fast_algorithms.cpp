// §6 future work, both cited transforms compared: Winograd F(2x2,3x3) [27]
// and frequency-domain (FFT) convolution [28] against direct convolution,
// per AlexNet layer. Winograd wins on the 3x3 layers, FFT on the large
// first-layer kernel — the standard trade-off an extended version of the
// paper's framework would explore per layer.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "nn/fft_conv.h"
#include "nn/network.h"
#include "nn/winograd.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace sasynth;
  bench::print_header("Fast-algorithm ablation - direct vs Winograd vs FFT",
                      "DAC'17 §6 future work ([27] Winograd, [28] FFT)");

  // Scaled-down layer geometries (channel counts reduced so the functional
  // FFT/Winograd runs finish instantly). FFT kernel transforms are offline
  // (weights are constant), matching Winograd's offline U = G g G^T.
  struct Case {
    const char* name;
    ConvLayerDesc layer;
  };
  const std::vector<Case> cases{
      {"11x11 s1 (conv1 unfolded)", make_conv("c1", 16, 16, 20, 11)},
      {"11x11 s4 (conv1 strided)", make_conv("c1s", 3, 8, 14, 11, 4)},
      {"5x5 (conv2-like)", make_conv("c2", 16, 16, 16, 5)},
      {"3x3 (conv3-like)", make_conv("c3", 8, 8, 13, 3)},
  };

  AsciiTable table;
  table.row()
      .cell("layer class")
      .cell("direct mults")
      .cell("winograd")
      .cell("fft")
      .cell("winograd vs direct")
      .cell("fft vs direct")
      .cell("numerics");
  Rng rng(2027);
  for (const Case& c : cases) {
    const ConvData data = make_random_conv_data(c.layer, rng);
    const Tensor ref = reference_conv(c.layer, data);

    FftConvStats fft_stats;
    const Tensor fft_out = fft_conv(c.layer, data, &fft_stats);
    float err = Tensor::max_abs_diff(ref, fft_out);

    const WinogradGain wg = winograd_gain(c.layer);
    std::string wino_mults = "n/a";
    std::string wino_ratio = "n/a";
    if (wg.applicable) {
      const Tensor wino_out = winograd_conv(c.layer, data);
      err = std::max(err, Tensor::max_abs_diff(ref, wino_out));
      const double mults =
          static_cast<double>(fft_stats.direct_mults) / wg.mult_reduction;
      wino_mults = strformat("%.0f", mults);
      wino_ratio = strformat("%.2fx", wg.mult_reduction);
    }
    table.row()
        .cell(c.name)
        .cell(fft_stats.direct_mults)
        .cell(wino_mults)
        .cell(fft_stats.real_mults)
        .cell(wino_ratio)
        .cell(strformat("%.2fx", fft_stats.mult_reduction()))
        .cell(err < 1e-2F ? "PASS" : "FAIL");
  }
  table.print();
  bench::print_note(
      "FFT amortizes its transforms over K^2 and wins on the 11x11 first "
      "layer; Winograd's 2.25x is the better fit for the 3x3 bulk - matching "
      "the [17]/[28]/[29] landscape the paper cites.");
  return 0;
}
