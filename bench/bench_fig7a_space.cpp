// Fig. 7(a): the pruned design space of AlexNet conv layers (fp32, 280 MHz):
// every valid phase-1 design option as a (DSP, BRAM, throughput) point.
//
// Renders a coarse ASCII density map (darker = higher best throughput in the
// cell, matching the figure's shading) and writes the full scatter to
// fig7a_design_space.csv for re-plotting.
#include <cstdio>

#include <algorithm>
#include <vector>

#include "bench_util.h"
#include "core/dse.h"
#include "loopnest/conv_nest.h"
#include "nn/network.h"
#include "util/csv.h"

int main() {
  using namespace sasynth;
  bench::print_header("Fig. 7(a) - Pruned design space (AlexNet conv5, fp32)",
                      "DAC'17 Fig. 7(a), 280 MHz assumed clock");

  const ConvLayerDesc layer = alexnet_conv5();
  const LoopNest nest = build_conv_nest(layer);
  const FpgaDevice device = arria10_gt1150();
  DseOptions options;
  options.assumed_freq_mhz = 280.0;
  options.min_dsp_util = 0.70;
  // Fig 7a plots the full candidate space; branch-and-bound pruning drops
  // everything below the top-K floor from the dump, so it must stay off.
  options.bound_prune = false;
  const DesignSpaceExplorer explorer(device, DataType::kFloat32, options);
  DseStats stats;
  const std::vector<DseCandidate> all = explorer.enumerate_phase1(nest, &stats);
  std::printf("%zu valid design options after pruning (%s)\n\n", all.size(),
              stats.summary().c_str());

  // CSV scatter.
  CsvWriter csv;
  csv.header({"dsp_blocks", "bram_blocks", "throughput_gops", "eff",
              "mapping", "shape"});
  for (const DseCandidate& c : all) {
    csv.row()
        .cell(c.resources.dsp_blocks)
        .cell(c.resources.bram_blocks)
        .cell(c.estimated_gops(), 2)
        .cell(c.estimate.eff, 4)
        .cell(c.design.mapping().to_string(nest))
        .cell(c.design.shape().to_string());
  }
  const char* const csv_path = "fig7a_design_space.csv";
  if (csv.write_file(csv_path)) {
    std::printf("scatter written to %s (%zu rows)\n\n", csv_path, all.size());
  }

  // ASCII density map: x = DSP utilization bins, y = BRAM utilization bins;
  // cell character encodes the best throughput in the cell.
  constexpr int kXBins = 24;
  constexpr int kYBins = 12;
  double best[kYBins][kXBins] = {};
  double max_gops = 0.0;
  for (const DseCandidate& c : all) {
    const int x = std::min(kXBins - 1,
                           static_cast<int>(c.resources.report.dsp_util * kXBins));
    const int y = std::min(
        kYBins - 1, static_cast<int>(c.resources.report.bram_util * kYBins));
    best[y][x] = std::max(best[y][x], c.estimated_gops());
    max_gops = std::max(max_gops, c.estimated_gops());
  }
  const char* shades = " .:-=+*#%@";
  std::printf("BRAM util\n");
  for (int y = kYBins - 1; y >= 0; --y) {
    std::printf("%5.0f%% |", (y + 1) * 100.0 / kYBins);
    for (int x = 0; x < kXBins; ++x) {
      const int level =
          best[y][x] <= 0.0
              ? 0
              : 1 + static_cast<int>(best[y][x] / max_gops * 8.999) ;
      std::putchar(shades[std::min(level, 9)]);
    }
    std::printf("|\n");
  }
  std::printf("        ");
  for (int x = 0; x < kXBins; ++x) std::putchar('-');
  std::printf("\n         0%%        DSP utilization        100%%\n");
  std::printf("shade = best throughput in cell (max %.0f Gops)\n", max_gops);
  bench::print_note(
      "shape agreement with Fig. 7(a): the dark (high-throughput) region "
      "sits at moderate BRAM and high-but-not-maximal DSP - high throughput "
      "does not require maxing out either resource.");
  return 0;
}
