// sasynth_cli — the push-button command-line driver of paper Fig. 6.
//
// Usage:
//   sasynth_cli [options] input.c          # annotated loop nest from a file
//   sasynth_cli [options] --layer I,O,R,C,K[,stride[,groups]]
//
// Options:
//   --device NAME     arria10_gt1150 (default) | arria10_gx1150 | ku060 |
//                     vc709 | stratixv | tiny
//   --dtype NAME      float32 (default) | fixed8_16
//   --freq MHZ        phase-1 assumed clock (default 280)
//   --min-util FRAC   Eq. 12 utilization floor c_s (default 0.8)
//   --top-k N         candidates carried into pseudo-P&R (default 14)
//   --jobs N          DSE worker threads (default: SASYNTH_JOBS env, then
//                     hardware concurrency; results identical at any N)
//   --design-cache D  persistent design cache directory (shared with
//                     sasynthd): a repeated (layer, device, dtype, options)
//                     tuple skips the DSE and answers from the cache
//   --out DIR         write params.h / addressing.h / systolic_conv.cl /
//                     host.c / report.md
//   --save-design F   write the chosen design point to F (sasynth-design v1)
//   --design F        skip the DSE: load the design from F, validate it for
//                     this layer, and generate/evaluate it directly
//   --fixed-design F  deployment mode: load a fixed design from F and fold
//                     every layer of --network onto it (src/deploy); rejects
//                     a design whose recorded device differs from --device
//   --network NAME    network for --fixed-design:
//                     alexnet|vgg16|googlenet|tiny
//   --deploy MIX      fleet mode: pick --fleet designs for a weighted
//                     workload "net[:weight],net[:weight],..." (networks as
//                     in --network; weights default 1)
//   --fleet K         fleet size for --deploy (default 1)
//   --print-kernel    dump the generated kernel to stdout
//   --metrics-out F   enable metrics, dump the registry to F at exit
//                     (.json = JSON, anything else = Prometheus text)
//   --trace-out F     enable span recording, write Chrome trace JSON to F
//                     at exit (load in chrome://tracing or Perfetto)
//   --log-level NAME  debug|info|warn|error|off (default warn; unrecognized
//                     names warn and fall back to info)
//   --verbose         info-level logging (same as --log-level info)
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "codegen/host_gen.h"
#include "codegen/report_gen.h"
#include "flag_parse.h"
#include "deploy/fleet.h"
#include "deploy/fold.h"
#include "loopnest/conv_nest.h"
#include "nn/network.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "core/design_io.h"
#include "core/mapping.h"
#include "fpga/freq_model.h"
#include "frontend/flow.h"
#include "loopnest/reuse.h"
#include "nn/layer.h"
#include "serve/design_cache.h"
#include "serve/protocol.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/strings.h"

namespace {

using namespace sasynth;

void print_usage(std::FILE* out) {
  std::fprintf(out,
               "usage: sasynth_cli [options] (input.c | --layer "
               "I,O,R,C,K[,s[,g]])\n"
               "  --device NAME     %s\n"
               "  --dtype NAME      float32|fixed8_16\n"
               "  --freq MHZ        assumed phase-1 clock (default 280)\n"
               "  --min-util F      DSP utilization floor c_s (default 0.8)\n"
               "  --top-k N         phase-2 candidate count (default 14)\n"
               "  --jobs N          DSE worker threads (0 = SASYNTH_JOBS env "
               "or all cores)\n"
               "  --design-cache D  persistent design cache directory\n"
               "  --out DIR         write generated artifacts\n"
               "  --save-design F   write the chosen design point to F\n"
               "  --design F        skip the DSE, evaluate the design from F\n"
               "  --fixed-design F  fold every layer of --network onto the "
               "design from F\n"
               "  --network NAME    network for --fixed-design: %s\n"
               "  --deploy MIX      select a design fleet for "
               "\"net[:weight],...\"\n"
               "  --fleet K         fleet size for --deploy (default 1)\n"
               "  --print-kernel    dump kernel source to stdout\n"
               "  --metrics-out F   dump metrics at exit (.json = JSON, else "
               "Prometheus text)\n"
               "  --trace-out F     record spans, write Chrome trace JSON at "
               "exit\n"
               "  --log-level NAME  debug|info|warn|error|off (default warn; "
               "unrecognized\n"
               "                    names warn and fall back to info)\n"
               "  --verbose         info logging\n",
               device_name_list(), network_name_list());
}

[[noreturn]] void usage(const char* message = nullptr) {
  if (message != nullptr) std::fprintf(stderr, "error: %s\n\n", message);
  print_usage(stderr);
  std::exit(2);
}

bool write_file(const std::filesystem::path& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
  return static_cast<bool>(out);
}

/// Writes --metrics-out / --trace-out on scope exit, so every return path of
/// main (including error exits after the flags were parsed) produces the
/// dumps the user asked for.
struct ObsDump {
  std::string metrics_path;
  std::string trace_path;

  ~ObsDump() {
    if (!metrics_path.empty()) {
      const obs::MetricsRegistry& r = obs::MetricsRegistry::global();
      const std::string text =
          ends_with(metrics_path, ".json") ? r.to_json() : r.to_prom();
      if (!write_file(metrics_path, text)) {
        std::fprintf(stderr, "warning: cannot write %s\n",
                     metrics_path.c_str());
      }
    }
    if (!trace_path.empty() &&
        !write_file(trace_path,
                    obs::TraceRecorder::global().to_chrome_trace())) {
      std::fprintf(stderr, "warning: cannot write %s\n", trace_path.c_str());
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  FlowOptions options;
  options.device = arria10_gt1150();
  options.dtype = DataType::kFloat32;

  std::string input_path;
  std::string layer_spec;
  std::string out_dir;
  std::string save_design_path;
  std::string load_design_path;
  std::string design_cache_dir;
  std::string fixed_design_path;
  std::string network_name;
  std::string deploy_mix;
  int fleet_size = 1;
  bool print_kernel = false;
  ObsDump obs_dump;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) usage((std::string(flag) + " needs a value").c_str());
      return argv[++i];
    };
    if (arg == "--device") {
      if (!parse_device_name(next_value("--device"), &options.device)) {
        usage("unknown device");
      }
    } else if (arg == "--dtype") {
      if (!parse_data_type(next_value("--dtype"), &options.dtype)) {
        usage("unknown dtype");
      }
    } else if (arg == "--freq") {
      options.dse.assumed_freq_mhz =
          require_double_flag("--freq", next_value("--freq"), usage);
      if (options.dse.assumed_freq_mhz <= 0.0) {
        usage("--freq must be > 0 (MHz)");
      }
    } else if (arg == "--min-util") {
      options.dse.min_dsp_util =
          require_double_flag("--min-util", next_value("--min-util"), usage);
      if (options.dse.min_dsp_util < 0.0 || options.dse.min_dsp_util > 1.0) {
        usage("--min-util must be in [0, 1]");
      }
    } else if (arg == "--top-k") {
      options.dse.top_k = static_cast<int>(require_int_flag(
          "--top-k", next_value("--top-k"), 1, 1 << 20, usage));
    } else if (arg == "--jobs") {
      options.dse.jobs = static_cast<int>(require_int_flag(
          "--jobs", next_value("--jobs"), 0, 1 << 20, usage));
    } else if (arg == "--design-cache") {
      design_cache_dir = next_value("--design-cache");
    } else if (arg == "--out") {
      out_dir = next_value("--out");
    } else if (arg == "--save-design") {
      save_design_path = next_value("--save-design");
    } else if (arg == "--design") {
      load_design_path = next_value("--design");
    } else if (arg == "--fixed-design") {
      fixed_design_path = next_value("--fixed-design");
    } else if (arg == "--network") {
      network_name = next_value("--network");
    } else if (arg == "--deploy") {
      deploy_mix = next_value("--deploy");
    } else if (arg == "--fleet") {
      fleet_size = static_cast<int>(require_int_flag(
          "--fleet", next_value("--fleet"), 1, 1 << 20, usage));
    } else if (arg == "--layer") {
      layer_spec = next_value("--layer");
    } else if (arg == "--print-kernel") {
      print_kernel = true;
    } else if (arg == "--metrics-out") {
      obs_dump.metrics_path = next_value("--metrics-out");
      obs::set_metrics_enabled(true);
    } else if (arg == "--trace-out") {
      obs_dump.trace_path = next_value("--trace-out");
      obs::set_trace_enabled(true);
    } else if (arg == "--log-level") {
      // parse_log_level warns (and falls back to info) on unknown names.
      set_log_level(parse_log_level(next_value("--log-level")));
    } else if (arg == "--verbose") {
      set_log_level(LogLevel::kInfo);
    } else if (arg == "--help" || arg == "-h") {
      // Asked-for help goes to stdout and is a success, not a usage error.
      print_usage(stdout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      usage(("unknown option " + arg).c_str());
    } else {
      input_path = arg;
    }
  }

  // Deployment modes run on whole networks (src/deploy) and need no input
  // source; they return before the loop-nest front end.
  if (!fixed_design_path.empty()) {
    if (network_name.empty()) {
      usage("--fixed-design needs --network (which model to fold onto it)");
    }
    Network net;
    if (!parse_network_name(network_name, &net)) {
      usage(("unknown --network (expected " +
             std::string(network_name_list()) + ")")
                .c_str());
    }
    std::ifstream design_in(fixed_design_path);
    if (!design_in) {
      std::fprintf(stderr, "error: cannot read %s\n",
                   fixed_design_path.c_str());
      return 1;
    }
    std::stringstream design_text;
    design_text << design_in.rdbuf();
    // Folded load: the design may come from any layer's bespoke synthesis;
    // structural validation only, against any of the network's nests.
    const LoopNest probe = build_conv_nest(net.layers.front());
    const DesignLoadResult loaded = load_design_text(
        design_text.str(), probe, DesignLoadMode::kFolded);
    if (!loaded.ok) {
      std::fprintf(stderr, "error: %s: %s\n", fixed_design_path.c_str(),
                   loaded.error.c_str());
      return 1;
    }
    if (!loaded.device_name.empty() &&
        loaded.device_name != options.device.name) {
      std::fprintf(stderr,
                   "error: %s was synthesized for device '%s' but --device "
                   "is '%s' (resource and frequency models do not transfer; "
                   "pass --device %s to evaluate it there)\n",
                   fixed_design_path.c_str(), loaded.device_name.c_str(),
                   options.device.name.c_str(), loaded.device_name.c_str());
      return 1;
    }
    const deploy::FixedDesignEval eval = deploy::evaluate_fixed_design(
        net, loaded.design, options.device, options.dtype);
    std::printf("%s", eval.summary(net).c_str());
    if (!eval.valid) {
      std::fprintf(stderr, "error: %s\n", eval.error.c_str());
      return 1;
    }
    return 0;
  }

  if (!deploy_mix.empty()) {
    std::vector<deploy::WorkloadEntry> workload;
    for (const std::string& part : split(deploy_mix, ',')) {
      const std::vector<std::string> fields = split(trim(part), ':');
      deploy::WorkloadEntry entry;
      if (fields.empty() || fields.size() > 2 ||
          !parse_network_name(trim(fields[0]), &entry.net)) {
        usage(("--deploy: bad entry '" + part + "' (expected net[:weight], "
               "networks: " + std::string(network_name_list()) + ")")
                  .c_str());
      }
      if (fields.size() == 2) {
        // Strict like every flag number: "alexnet:banana" must not silently
        // become weight 0 (atof) and then read as a range error.
        if (!parse_double_strict(trim(fields[1]), &entry.weight) ||
            !(entry.weight > 0.0)) {
          usage(("--deploy: bad weight '" + trim(fields[1]) + "' in '" + part +
                 "' (expected a number > 0)")
                    .c_str());
        }
      }
      workload.push_back(std::move(entry));
    }
    deploy::FleetOptions fleet_options;
    fleet_options.unified.dse = options.dse;
    fleet_options.num_designs = fleet_size;
    const deploy::FleetResult fleet = deploy::select_fleet(
        workload, options.device, options.dtype, fleet_options);
    if (!fleet.valid) {
      std::fprintf(stderr, "error: %s\n", fleet.error.c_str());
      return 1;
    }
    std::printf("%s", fleet.summary().c_str());
    if (!save_design_path.empty()) {
      // One file per design: F for design 0, F.1, F.2, ... for the rest.
      bool ok = true;
      for (std::size_t d = 0; d < fleet.designs.size(); ++d) {
        const std::string path =
            d == 0 ? save_design_path
                   : save_design_path + "." + std::to_string(d);
        ok &= write_file(path,
                         save_design_text(fleet.designs[d],
                                          options.device.name));
        if (ok) std::printf("design %zu saved to %s\n", d, path.c_str());
      }
      if (!ok) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     save_design_path.c_str());
        return 1;
      }
    }
    return 0;
  }
  if (!network_name.empty()) {
    usage("--network only applies to --fixed-design");
  }

  std::string source;
  if (!layer_spec.empty()) {
    ConvLayerDesc layer;
    std::string layer_error;
    if (!parse_layer_fields(layer_spec, &layer, &layer_error)) {
      usage(("--layer: " + layer_error).c_str());
    }
    source = render_conv_source(layer);
  } else if (!input_path.empty()) {
    std::ifstream in(input_path);
    if (!in) {
      std::fprintf(stderr, "error: cannot read %s\n", input_path.c_str());
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    source = buffer.str();
  } else {
    usage("no input given");
  }

  // Front end first — every path below (DSE, --design, cache) needs the
  // parsed nest and the recovered layer descriptor.
  FlowResult result;
  result.parse = parse_loop_nest(source);
  if (!result.parse.ok) {
    std::fprintf(stderr, "error: parse error: %s\n",
                 result.parse.error.c_str());
    return 1;
  }
  result.conv = extract_conv_layer(result.parse.nest);
  if (!result.conv.ok) {
    std::fprintf(stderr, "error: unsupported loop nest: %s\n",
                 result.conv.error.c_str());
    return 1;
  }
  const LoopNest& nest = result.parse.nest;

  // Evaluates a known design (loaded or cached) without re-running the DSE —
  // the same deterministic models the explorer itself uses.
  auto evaluate_design = [&](const DesignPoint& design) -> bool {
    const ReuseMatrix reuse = analyze_reuse(nest);
    std::string why;
    if (!is_feasible_mapping(nest, reuse, design.mapping(), &why)) {
      std::fprintf(stderr, "error: design is not feasible for this layer: %s\n",
                   why.c_str());
      return false;
    }
    result.best.design = design;
    result.best.estimate = estimate_performance(
        nest, design, options.device, options.dtype,
        options.dse.assumed_freq_mhz);
    result.best.resources =
        model_resources(nest, design, options.device, options.dtype);
    result.best.realized_freq_mhz = pseudo_pnr_frequency_mhz(
        options.device, result.best.resources.report, design.signature());
    result.best.realized = estimate_performance(
        nest, design, options.device, options.dtype,
        result.best.realized_freq_mhz);
    result.dse.top.push_back(result.best);
    result.kernel = generate_opencl_kernel(nest, design, result.conv.layer,
                                           options.dtype);
    result.host_program =
        generate_host_program(nest, design, result.conv.layer, options.dtype);
    result.report = generate_design_report(nest, result.best,
                                           result.conv.layer, options.device,
                                           options.dtype);
    result.ok = true;
    return true;
  };

  if (!load_design_path.empty()) {
    // Bypass the DSE: evaluate the supplied design directly.
    std::ifstream design_in(load_design_path);
    if (!design_in) {
      std::fprintf(stderr, "error: cannot read %s\n",
                   load_design_path.c_str());
      return 1;
    }
    std::stringstream design_text;
    design_text << design_in.rdbuf();
    const DesignLoadResult loaded =
        load_design_text(design_text.str(), nest);
    if (!loaded.ok) {
      std::fprintf(stderr, "error: %s: %s\n", load_design_path.c_str(),
                   loaded.error.c_str());
      return 1;
    }
    if (!evaluate_design(loaded.design)) return 1;
  } else {
    // DSE path, memoized through the design cache when one is configured.
    ServeRequest request;
    std::string canonical;
    if (!design_cache_dir.empty()) {
      request.layer = result.conv.layer;
      request.device = options.device;
      request.dtype = options.dtype;
      request.dse = options.dse;
      canonical = canonical_request_text(request);
    }
    DesignCache cache(design_cache_dir, 16);
    DesignPoint cached_design;
    bool cache_hit = !design_cache_dir.empty() &&
                     cache.lookup(canonical, nest, &cached_design);
    if (cache_hit) {
      std::printf("cache   : hit key=%016llx (%s) — DSE skipped\n",
                  static_cast<unsigned long long>(fnv1a64(canonical)),
                  design_cache_dir.c_str());
      SA_LOG_INFO << "design cache hit, skipping DSE";
      if (!evaluate_design(cached_design)) return 1;
    } else {
      result = run_automation_flow(source, options);
      if (!result.ok) {
        std::fprintf(stderr, "error: %s\n", result.error.c_str());
        return 1;
      }
      if (!design_cache_dir.empty()) {
        cache.insert(canonical, result.best.design);
        std::printf("cache   : miss key=%016llx (%s) — design stored\n",
                    static_cast<unsigned long long>(fnv1a64(canonical)),
                    design_cache_dir.c_str());
      }
    }
  }

  if (!save_design_path.empty()) {
    std::ofstream out(save_design_path);
    // Record the device so --fixed-design can reject cross-device loads.
    out << save_design_text(result.best.design, options.device.name);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   save_design_path.c_str());
      return 1;
    }
    std::printf("design saved to %s\n", save_design_path.c_str());
  }

  std::printf("layer   : %s\n", result.conv.layer.summary().c_str());
  std::printf("device  : %s\n", options.device.summary().c_str());
  std::printf("dse     : %s\n", result.dse.stats.summary().c_str());
  std::printf("design  : %s\n", result.best.design.to_string(nest).c_str());
  std::printf("perf    : %s\n", result.best.realized.summary().c_str());
  std::printf("resource: %s\n", result.best.resources.report.summary().c_str());

  if (print_kernel) {
    std::printf("\n--- params.h ---\n%s", result.kernel.params_h.c_str());
    std::printf("\n--- systolic_conv.cl ---\n%s", result.kernel.kernel_cl.c_str());
  }

  if (!out_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    bool ok = true;
    ok &= write_file(std::filesystem::path(out_dir) / "params.h",
                     result.kernel.params_h);
    ok &= write_file(std::filesystem::path(out_dir) / "systolic_conv.cl",
                     result.kernel.kernel_cl);
    ok &= write_file(std::filesystem::path(out_dir) / "addressing.h",
                     result.kernel.addressing_h);
    ok &= write_file(std::filesystem::path(out_dir) / "host.c",
                     result.host_program);
    ok &= write_file(std::filesystem::path(out_dir) / "report.md",
                     result.report);
    if (!ok) {
      std::fprintf(stderr, "error: failed writing artifacts to %s\n",
                   out_dir.c_str());
      return 1;
    }
    std::printf("artifacts written to %s/\n", out_dir.c_str());
  }
  return 0;
}
