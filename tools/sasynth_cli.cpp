// sasynth_cli — the push-button command-line driver of paper Fig. 6.
//
// Usage:
//   sasynth_cli [options] input.c          # annotated loop nest from a file
//   sasynth_cli [options] --layer I,O,R,C,K[,stride]
//
// Options:
//   --device NAME     arria10_gt1150 (default) | arria10_gx1150 | ku060 |
//                     vc709 | stratixv | tiny
//   --dtype NAME      float32 (default) | fixed8_16
//   --freq MHZ        phase-1 assumed clock (default 280)
//   --min-util FRAC   Eq. 12 utilization floor c_s (default 0.8)
//   --top-k N         candidates carried into pseudo-P&R (default 14)
//   --jobs N          DSE worker threads (default: SASYNTH_JOBS env, then
//                     hardware concurrency; results identical at any N)
//   --out DIR         write params.h / addressing.h / systolic_conv.cl /
//                     host.c / report.md
//   --save-design F   write the chosen design point to F (sasynth-design v1)
//   --design F        skip the DSE: load the design from F, validate it for
//                     this layer, and generate/evaluate it directly
//   --print-kernel    dump the generated kernel to stdout
//   --verbose         info-level logging
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "codegen/host_gen.h"
#include "codegen/report_gen.h"
#include "core/design_io.h"
#include "core/mapping.h"
#include "fpga/freq_model.h"
#include "frontend/flow.h"
#include "loopnest/reuse.h"
#include "nn/layer.h"
#include "util/logging.h"
#include "util/strings.h"

namespace {

using namespace sasynth;

[[noreturn]] void usage(const char* message = nullptr) {
  if (message != nullptr) std::fprintf(stderr, "error: %s\n\n", message);
  std::fprintf(stderr,
               "usage: sasynth_cli [options] (input.c | --layer I,O,R,C,K[,s])\n"
               "  --device NAME   arria10_gt1150|arria10_gx1150|ku060|vc709|"
               "stratixv|tiny\n"
               "  --dtype NAME    float32|fixed8_16\n"
               "  --freq MHZ      assumed phase-1 clock (default 280)\n"
               "  --min-util F    DSP utilization floor c_s (default 0.8)\n"
               "  --top-k N       phase-2 candidate count (default 14)\n"
               "  --jobs N        DSE worker threads (0 = SASYNTH_JOBS env or "
               "all cores)\n"
               "  --out DIR       write generated artifacts\n"
               "  --print-kernel  dump kernel source to stdout\n"
               "  --verbose       info logging\n");
  std::exit(2);
}

bool pick_device(const std::string& name, FpgaDevice* out) {
  const std::string lower = to_lower(name);
  if (lower == "arria10_gt1150" || lower == "gt1150") *out = arria10_gt1150();
  else if (lower == "arria10_gx1150" || lower == "gx1150") *out = arria10_gx1150();
  else if (lower == "ku060") *out = xilinx_ku060();
  else if (lower == "vc709") *out = xilinx_vc709();
  else if (lower == "stratixv") *out = stratix_v();
  else if (lower == "tiny") *out = tiny_test_device();
  else return false;
  return true;
}

bool parse_layer_spec(const std::string& spec, ConvLayerDesc* layer) {
  const std::vector<std::string> parts = split(spec, ',');
  if (parts.size() != 5 && parts.size() != 6) return false;
  std::vector<std::int64_t> values;
  for (const std::string& part : parts) {
    char* end = nullptr;
    const long long v = std::strtoll(part.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || v < 1) return false;
    values.push_back(v);
  }
  *layer = make_conv("cli_layer", values[0], values[1], values[2], values[4],
                     parts.size() == 6 ? values[5] : 1);
  layer->out_cols = values[3];
  return layer->validate().empty();
}

bool write_file(const std::filesystem::path& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  FlowOptions options;
  options.device = arria10_gt1150();
  options.dtype = DataType::kFloat32;

  std::string input_path;
  std::string layer_spec;
  std::string out_dir;
  std::string save_design_path;
  std::string load_design_path;
  bool print_kernel = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) usage((std::string(flag) + " needs a value").c_str());
      return argv[++i];
    };
    if (arg == "--device") {
      if (!pick_device(next_value("--device"), &options.device)) {
        usage("unknown device");
      }
    } else if (arg == "--dtype") {
      if (!parse_data_type(next_value("--dtype"), &options.dtype)) {
        usage("unknown dtype");
      }
    } else if (arg == "--freq") {
      options.dse.assumed_freq_mhz = std::atof(next_value("--freq").c_str());
      if (options.dse.assumed_freq_mhz <= 0.0) usage("bad --freq");
    } else if (arg == "--min-util") {
      options.dse.min_dsp_util = std::atof(next_value("--min-util").c_str());
      if (options.dse.min_dsp_util < 0.0 || options.dse.min_dsp_util > 1.0) {
        usage("--min-util must be in [0, 1]");
      }
    } else if (arg == "--top-k") {
      options.dse.top_k = std::atoi(next_value("--top-k").c_str());
      if (options.dse.top_k < 1) usage("bad --top-k");
    } else if (arg == "--jobs") {
      options.dse.jobs = std::atoi(next_value("--jobs").c_str());
      if (options.dse.jobs < 0) usage("bad --jobs");
    } else if (arg == "--out") {
      out_dir = next_value("--out");
    } else if (arg == "--save-design") {
      save_design_path = next_value("--save-design");
    } else if (arg == "--design") {
      load_design_path = next_value("--design");
    } else if (arg == "--layer") {
      layer_spec = next_value("--layer");
    } else if (arg == "--print-kernel") {
      print_kernel = true;
    } else if (arg == "--verbose") {
      set_log_level(LogLevel::kInfo);
    } else if (arg == "--help" || arg == "-h") {
      usage();
    } else if (!arg.empty() && arg[0] == '-') {
      usage(("unknown option " + arg).c_str());
    } else {
      input_path = arg;
    }
  }

  std::string source;
  if (!layer_spec.empty()) {
    ConvLayerDesc layer;
    if (!parse_layer_spec(layer_spec, &layer)) {
      usage("--layer expects I,O,R,C,K[,stride] positive integers");
    }
    source = render_conv_source(layer);
  } else if (!input_path.empty()) {
    std::ifstream in(input_path);
    if (!in) {
      std::fprintf(stderr, "error: cannot read %s\n", input_path.c_str());
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    source = buffer.str();
  } else {
    usage("no input given");
  }

  FlowResult result;
  if (load_design_path.empty()) {
    result = run_automation_flow(source, options);
    if (!result.ok) {
      std::fprintf(stderr, "error: %s\n", result.error.c_str());
      return 1;
    }
  } else {
    // Bypass the DSE: parse + extract, then evaluate the supplied design.
    result.parse = parse_loop_nest(source);
    if (!result.parse.ok) {
      std::fprintf(stderr, "error: parse error: %s\n",
                   result.parse.error.c_str());
      return 1;
    }
    result.conv = extract_conv_layer(result.parse.nest);
    if (!result.conv.ok) {
      std::fprintf(stderr, "error: unsupported loop nest: %s\n",
                   result.conv.error.c_str());
      return 1;
    }
    std::ifstream design_in(load_design_path);
    if (!design_in) {
      std::fprintf(stderr, "error: cannot read %s\n",
                   load_design_path.c_str());
      return 1;
    }
    std::stringstream design_text;
    design_text << design_in.rdbuf();
    const DesignLoadResult loaded =
        load_design_text(design_text.str(), result.parse.nest);
    if (!loaded.ok) {
      std::fprintf(stderr, "error: %s: %s\n", load_design_path.c_str(),
                   loaded.error.c_str());
      return 1;
    }
    const ReuseMatrix reuse = analyze_reuse(result.parse.nest);
    std::string why;
    if (!is_feasible_mapping(result.parse.nest, reuse,
                             loaded.design.mapping(), &why)) {
      std::fprintf(stderr, "error: design is not feasible for this layer: %s\n",
                   why.c_str());
      return 1;
    }
    result.best.design = loaded.design;
    result.best.estimate =
        estimate_performance(result.parse.nest, loaded.design, options.device,
                             options.dtype, options.dse.assumed_freq_mhz);
    result.best.resources = model_resources(result.parse.nest, loaded.design,
                                            options.device, options.dtype);
    result.best.realized_freq_mhz = pseudo_pnr_frequency_mhz(
        options.device, result.best.resources.report,
        loaded.design.signature());
    result.best.realized =
        estimate_performance(result.parse.nest, loaded.design, options.device,
                             options.dtype, result.best.realized_freq_mhz);
    result.dse.top.push_back(result.best);
    result.kernel = generate_opencl_kernel(result.parse.nest, loaded.design,
                                           result.conv.layer, options.dtype);
    result.host_program =
        generate_host_program(result.parse.nest, loaded.design,
                              result.conv.layer, options.dtype);
    result.report =
        generate_design_report(result.parse.nest, result.best,
                               result.conv.layer, options.device, options.dtype);
    result.ok = true;
  }

  if (!save_design_path.empty()) {
    std::ofstream out(save_design_path);
    out << save_design_text(result.best.design);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   save_design_path.c_str());
      return 1;
    }
    std::printf("design saved to %s\n", save_design_path.c_str());
  }

  const LoopNest& nest = result.parse.nest;
  std::printf("layer   : %s\n", result.conv.layer.summary().c_str());
  std::printf("device  : %s\n", options.device.summary().c_str());
  std::printf("dse     : %s\n", result.dse.stats.summary().c_str());
  std::printf("design  : %s\n", result.best.design.to_string(nest).c_str());
  std::printf("perf    : %s\n", result.best.realized.summary().c_str());
  std::printf("resource: %s\n", result.best.resources.report.summary().c_str());

  if (print_kernel) {
    std::printf("\n--- params.h ---\n%s", result.kernel.params_h.c_str());
    std::printf("\n--- systolic_conv.cl ---\n%s", result.kernel.kernel_cl.c_str());
  }

  if (!out_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    bool ok = true;
    ok &= write_file(std::filesystem::path(out_dir) / "params.h",
                     result.kernel.params_h);
    ok &= write_file(std::filesystem::path(out_dir) / "systolic_conv.cl",
                     result.kernel.kernel_cl);
    ok &= write_file(std::filesystem::path(out_dir) / "addressing.h",
                     result.kernel.addressing_h);
    ok &= write_file(std::filesystem::path(out_dir) / "host.c",
                     result.host_program);
    ok &= write_file(std::filesystem::path(out_dir) / "report.md",
                     result.report);
    if (!ok) {
      std::fprintf(stderr, "error: failed writing artifacts to %s\n",
                   out_dir.c_str());
      return 1;
    }
    std::printf("artifacts written to %s/\n", out_dir.c_str());
  }
  return 0;
}
