// sasynthd — synthesis-as-a-service daemon.
//
// Serves the sasynth-request v1 protocol (see docs/SERVING.md) over stdio
// (default) or a loopback TCP port, in front of a persistent DesignCache:
// a (layer, device, dtype, options) tuple that has been solved before is
// answered from the cache without re-entering the design space exploration.
//
// Usage:
//   sasynthd [options]
//     --port N            serve TCP on 127.0.0.1:N (0 = ephemeral, the
//                         chosen port is printed on stdout); default is stdio
//     --cache DIR         persistent design cache directory
//     --cache-capacity N  in-memory LRU entries (default 1024)
//     --no-cache          disable the design cache entirely
//     --sweep-cache-capacity N  incremental-DSE sweep-memo entries
//                         (default 65536; 0 disables the tier)
//     --jobs N            worker threads (0 = SASYNTH_JOBS env or all cores)
//     --queue N           admission queue bound (default 64); beyond it
//                         requests get a retry response (backpressure)
//     --default-deadline MS  deadline for requests without deadline_ms
//                         (0 = none, the default)
//     --io-timeout MS     per-read/write transport timeout for TCP sessions
//                         (default 30000; 0 = never time out)
//     --peers LIST        shard-coordinator mode: comma-separated worker
//                         daemons ("host:port,..."); phase 1 of every cache-
//                         missing request fans out over them, byte-identical
//                         to single-node (docs/SERVING.md "Sharding")
//     --shard-io-timeout MS  per connect/write/read bound on shard peer I/O
//                         (default 30000; 0 = unbounded); a slower peer's
//                         range is re-executed locally
//     --peer-failure-threshold N  consecutive peer failures that open its
//                         circuit breaker (default 3); an open peer's
//                         ranges skip the connect and run locally until a
//                         health probe re-admits it
//     --peer-probe-interval MS  background re-admission probe cadence and
//                         backoff base (default 1000; 0 = no prober)
//     --shard-hedge-ms MS hedge delay for slow peers: after MS the range is
//                         also run locally and the first result wins
//                         (default 0 = no hedging)
//     --max-connections N open TCP connection bound (0 = unlimited, the
//                         default); a client beyond it gets a retry response
//                         and an immediate close
//     --drain-timeout MS  bound on the SIGTERM/SIGINT graceful drain
//                         (default 5000)
//     --metrics-out FILE  dump the metrics registry at exit (.json = JSON,
//                         anything else = Prometheus text)
//     --trace-out FILE    record spans, write Chrome trace JSON at exit
//     --log-level NAME    debug|info|warn|error|off (default warn;
//                         unrecognized names warn and fall back to info)
//
// Metrics are always on in the daemon (the registry is the `stats
// --format=prom|json` data source); tracing only with --trace-out.
//
// Shutdown: the `shutdown` protocol command (or EOF on stdio) drains every
// accepted request, flushes responses in order, then exits. SIGTERM/SIGINT
// trigger the same drain bounded by --drain-timeout: stop accepting, finish
// in-flight work, dump observability, exit 0 (or 1 if the bound expired with
// work still in flight).
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "faultinject/faultinject.h"
#include "flag_parse.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/event_loop.h"
#include "serve/server.h"
#include "serve/tcp.h"
#include "util/logging.h"
#include "util/strings.h"

namespace {

using namespace sasynth;

void print_usage(std::FILE* out) {
  std::fprintf(out,
               "usage: sasynthd [options]\n"
               "  --port N            TCP on 127.0.0.1:N (0 = ephemeral); "
               "default stdio\n"
               "  --cache DIR         persistent design cache directory\n"
               "  --cache-capacity N  in-memory LRU entries (default 1024)\n"
               "  --no-cache          disable the design cache\n"
               "  --sweep-cache-capacity N  incremental-DSE sweep entries "
               "(default 65536; 0 = off)\n"
               "  --jobs N            worker threads (0 = SASYNTH_JOBS env or "
               "all cores)\n"
               "  --queue N           admission queue bound (default 64)\n"
               "  --default-deadline MS  deadline for requests without "
               "deadline_ms (0 = none)\n"
               "  --io-timeout MS     TCP per-read/write timeout (default "
               "30000; 0 = off)\n"
               "  --peers LIST        shard worker daemons "
               "(\"host:port,...\"); phase 1 fans\n"
               "                      out over them, byte-identical to "
               "single-node\n"
               "  --shard-io-timeout MS  per-step shard peer I/O bound "
               "(default 30000;\n"
               "                      0 = unbounded)\n"
               "  --peer-failure-threshold N  consecutive failures that open "
               "a peer's\n"
               "                      circuit breaker (default 3)\n"
               "  --peer-probe-interval MS  re-admission probe cadence / "
               "backoff base\n"
               "                      (default 1000; 0 = no prober)\n"
               "  --shard-hedge-ms MS hedge delay for slow peers (default 0 "
               "= off)\n"
               "  --max-connections N open TCP connection bound (0 = "
               "unlimited); beyond it\n"
               "                      clients get a retry response and a "
               "close\n"
               "  --drain-timeout MS  SIGTERM/SIGINT graceful drain bound "
               "(default 5000)\n"
               "  --metrics-out FILE  dump metrics at exit (.json = JSON, "
               "else Prometheus text)\n"
               "  --trace-out FILE    record spans, write Chrome trace JSON "
               "at exit\n"
               "  --log-level NAME    debug|info|warn|error|off (default "
               "warn; unrecognized\n"
               "                      names warn and fall back to info)\n");
}

[[noreturn]] void usage(const char* message = nullptr) {
  if (message != nullptr) std::fprintf(stderr, "error: %s\n\n", message);
  print_usage(stderr);
  std::exit(2);
}

/// Flushes the metrics registry / trace buffer to the --metrics-out and
/// --trace-out paths (empty = skip). Failures warn; the serve exit status is
/// not hostage to an unwritable dump path.
void dump_observability(const std::string& metrics_path,
                        const std::string& trace_path) {
  auto write_or_warn = [](const std::string& path, const std::string& text) {
    std::ofstream out(path, std::ios::trunc);
    out << text;
    if (!out) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    }
  };
  if (!metrics_path.empty()) {
    const obs::MetricsRegistry& r = obs::MetricsRegistry::global();
    write_or_warn(metrics_path, ends_with(metrics_path, ".json")
                                    ? r.to_json()
                                    : r.to_prom());
  }
  if (!trace_path.empty()) {
    write_or_warn(trace_path, obs::TraceRecorder::global().to_chrome_trace());
  }
}

/// Last signal delivered (0 = none). Written by the async handler, polled by
/// the drain watcher — the handler itself does nothing non-async-signal-safe.
std::atomic<int> g_signal{0};

void on_signal(int sig) { g_signal.store(sig); }

/// Polls g_signal (~50 ms) and runs the stdio-mode graceful drain when it
/// fires: stop reading (begin_drain), wait up to drain_timeout_ms for
/// in-flight requests, dump observability, exit. _Exit skips static
/// destructors on purpose — the session may still be parked on a dead stdin,
/// and a clean drain must not hang on it. (TCP mode drains through the event
/// loop instead; see serve_tcp.)
class DrainWatcher {
 public:
  DrainWatcher(SynthServer& server, std::int64_t drain_timeout_ms,
               std::string metrics_out, std::string trace_out)
      : thread_([&server, drain_timeout_ms,
                 metrics_out = std::move(metrics_out),
                 trace_out = std::move(trace_out), this] {
          while (!stop_.load()) {
            const int sig = g_signal.load();
            if (sig != 0) {
              std::fprintf(stderr,
                           "sasynthd: received %s, draining (up to %lld ms)\n",
                           sig == SIGTERM ? "SIGTERM" : "SIGINT",
                           static_cast<long long>(drain_timeout_ms));
              std::fflush(stderr);
              server.begin_drain();
              const bool drained =
                  server.scheduler().drain_for(drain_timeout_ms);
              dump_observability(metrics_out, trace_out);
              std::fprintf(stderr,
                           drained
                               ? "sasynthd: drained, exiting\n"
                               : "sasynthd: drain timeout with work still in "
                                 "flight, exiting\n");
              std::fflush(nullptr);
              std::_Exit(drained ? 0 : 1);
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
          }
        }) {}

  ~DrainWatcher() {
    stop_.store(true);
    thread_.join();
  }

 private:
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

int serve_stdio(SynthServer& server, std::int64_t drain_timeout_ms,
                const std::string& metrics_out, const std::string& trace_out) {
  DrainWatcher watcher(server, drain_timeout_ms, metrics_out, trace_out);
  server.serve(
      [](std::string* line) {
        return static_cast<bool>(std::getline(std::cin, *line));
      },
      [](const std::string& response) {
        std::cout << response;
        std::cout.flush();
      });
  return 0;
}

int serve_tcp(SynthServer& server, int port, std::int64_t max_connections,
              std::int64_t drain_timeout_ms, const std::string& metrics_out,
              const std::string& trace_out) {
  EventLoopOptions loop_options;
  loop_options.port = port;
  loop_options.max_connections = max_connections;
  loop_options.drain_timeout_ms = drain_timeout_ms;
  EventLoopServer loop(server, loop_options);
  std::string error;
  if (!loop.start(&error)) {
    // One line, fatal: an operator restarting into EADDRINUSE needs the
    // reason and the errno, not a stack of log noise.
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  // On stdout (not stderr) and flushed immediately: with --port 0 the
  // kernel-chosen port IS the program's output, and wrappers scrape it.
  std::printf("sasynthd listening on 127.0.0.1:%d\n", loop.port());
  std::fflush(stdout);

  // The signal watcher only announces the drain and hands it to the loop;
  // the loop itself bounds it (drain_timeout_ms) and reports via run()'s
  // status. A second signal while draining is absorbed — the bound, not the
  // operator's patience, decides when a stuck drain gives up.
  std::atomic<bool> watcher_stop{false};
  std::thread watcher([&] {
    while (!watcher_stop.load()) {
      const int sig = g_signal.load();
      if (sig != 0) {
        std::fprintf(stderr,
                     "sasynthd: received %s, draining (up to %lld ms)\n",
                     sig == SIGTERM ? "SIGTERM" : "SIGINT",
                     static_cast<long long>(drain_timeout_ms));
        std::fflush(stderr);
        loop.request_stop();
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });
  const int status = loop.run();
  watcher_stop.store(true);
  watcher.join();
  if (g_signal.load() != 0) {
    // The signal path owns its own exit: dump, report, _Exit. Skipping
    // static destructors is deliberate — a forced drain (status 1) leaves
    // pool workers mid-request, and exiting must not hang on them.
    dump_observability(metrics_out, trace_out);
    std::fprintf(stderr, status == 0
                             ? "sasynthd: drained, exiting\n"
                             : "sasynthd: drain timeout with work still in "
                               "flight, exiting\n");
    std::fflush(nullptr);
    std::_Exit(status);
  }
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  ServeOptions options;
  options.io_timeout_ms = 30000;  // daemon default; library default stays 0
  int port = -1;                  // -1 = stdio
  std::int64_t max_connections = 0;
  std::int64_t drain_timeout_ms = 5000;
  std::string metrics_out_path;
  std::string trace_out_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) usage((std::string(flag) + " needs a value").c_str());
      return argv[++i];
    };
    if (arg == "--port") {
      port = static_cast<int>(
          require_int_flag("--port", next_value("--port"), 0, 65535, usage));
    } else if (arg == "--cache") {
      options.cache_dir = next_value("--cache");
    } else if (arg == "--cache-capacity") {
      // Through int64 end to end (no int intermediate): capacities ≥ 2^31
      // must widen into size_t instead of wrapping.
      options.cache_capacity = static_cast<std::size_t>(
          require_int_flag("--cache-capacity", next_value("--cache-capacity"),
                           1, std::numeric_limits<std::int64_t>::max(), usage));
    } else if (arg == "--sweep-cache-capacity") {
      options.sweep_cache_capacity = static_cast<std::size_t>(require_int_flag(
          "--sweep-cache-capacity", next_value("--sweep-cache-capacity"), 0,
          std::numeric_limits<std::int64_t>::max(), usage));
    } else if (arg == "--no-cache") {
      options.cache_enabled = false;
    } else if (arg == "--jobs") {
      options.jobs = static_cast<int>(require_int_flag(
          "--jobs", next_value("--jobs"), 0, 1 << 20, usage));
    } else if (arg == "--queue") {
      options.queue_limit =
          require_int_flag("--queue", next_value("--queue"), 1,
                           std::numeric_limits<std::int64_t>::max(), usage);
    } else if (arg == "--default-deadline") {
      options.default_deadline_ms = require_int_flag(
          "--default-deadline", next_value("--default-deadline"), 0,
          std::numeric_limits<std::int64_t>::max(), usage);
    } else if (arg == "--io-timeout") {
      options.io_timeout_ms =
          require_int_flag("--io-timeout", next_value("--io-timeout"), 0,
                           std::numeric_limits<std::int64_t>::max(), usage);
    } else if (arg == "--peers") {
      const std::string error =
          parse_peer_list(next_value("--peers"), &options.shard_peers);
      if (!error.empty()) usage(error.c_str());
    } else if (arg == "--shard-io-timeout") {
      options.shard_io_timeout_ms = require_int_flag(
          "--shard-io-timeout", next_value("--shard-io-timeout"), 0,
          std::numeric_limits<std::int64_t>::max(), usage);
    } else if (arg == "--peer-failure-threshold") {
      options.shard_failure_threshold = static_cast<int>(require_int_flag(
          "--peer-failure-threshold", next_value("--peer-failure-threshold"),
          1, 1 << 20, usage));
    } else if (arg == "--peer-probe-interval") {
      options.shard_probe_interval_ms = require_int_flag(
          "--peer-probe-interval", next_value("--peer-probe-interval"), 0,
          std::numeric_limits<std::int64_t>::max(), usage);
    } else if (arg == "--shard-hedge-ms") {
      options.shard_hedge_ms = require_int_flag(
          "--shard-hedge-ms", next_value("--shard-hedge-ms"), 0,
          std::numeric_limits<std::int64_t>::max(), usage);
    } else if (arg == "--max-connections") {
      max_connections = require_int_flag(
          "--max-connections", next_value("--max-connections"), 0,
          std::numeric_limits<std::int64_t>::max(), usage);
    } else if (arg == "--drain-timeout") {
      drain_timeout_ms = require_int_flag(
          "--drain-timeout", next_value("--drain-timeout"), 0,
          std::numeric_limits<std::int64_t>::max(), usage);
    } else if (arg == "--metrics-out") {
      metrics_out_path = next_value("--metrics-out");
    } else if (arg == "--trace-out") {
      trace_out_path = next_value("--trace-out");
    } else if (arg == "--log-level") {
      // parse_log_level warns (and falls back to info) on unknown names.
      set_log_level(parse_log_level(next_value("--log-level")));
    } else if (arg == "--help" || arg == "-h") {
      // Asked-for help goes to stdout and is a success, not a usage error.
      print_usage(stdout);
      return 0;
    } else {
      usage(("unknown option " + arg).c_str());
    }
  }

  // A client that disconnects mid-response must surface as EPIPE on the
  // write (handled per-session), never as a SIGPIPE killing every other
  // session in the process.
  std::signal(SIGPIPE, SIG_IGN);
  // SIGTERM/SIGINT run the bounded graceful drain (DrainWatcher above)
  // instead of the default instant kill.
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  // The registry is the data source of `stats --format=prom|json`, so the
  // daemon always collects; span recording stays opt-in (--trace-out).
  obs::set_metrics_enabled(true);
  if (!trace_out_path.empty()) obs::set_trace_enabled(true);

  // Deterministic fault injection (docs/SERVING.md, "Failure modes"): the
  // SASYNTH_FAULTS spec arms named failure sites for harness runs.
  const int armed = fault::install_from_env();
  if (armed > 0) {
    SA_LOG_WARN << "sasynthd: SASYNTH_FAULTS armed " << armed
                << " fault injection site(s)";
  }

  SynthServer server(options);
  if (!options.shard_peers.empty()) {
    SA_LOG_INFO << "sasynthd: shard coordinator over "
                << options.shard_peers.size() << " worker peer(s)";
  }
  SA_LOG_INFO << "sasynthd: jobs=" << server.scheduler().jobs()
              << " queue=" << options.queue_limit << " cache="
              << (options.cache_enabled
                      ? (options.cache_dir.empty() ? "<memory>"
                                                   : options.cache_dir.c_str())
                      : "<disabled>");
  const int status =
      port >= 0 ? serve_tcp(server, port, max_connections, drain_timeout_ms,
                            metrics_out_path, trace_out_path)
                : serve_stdio(server, drain_timeout_ms, metrics_out_path,
                              trace_out_path);
  dump_observability(metrics_out_path, trace_out_path);
  SA_LOG_INFO << "sasynthd: exiting\n";
  return status;
}
