// sasynthd — synthesis-as-a-service daemon.
//
// Serves the sasynth-request v1 protocol (see docs/SERVING.md) over stdio
// (default) or a loopback TCP port, in front of a persistent DesignCache:
// a (layer, device, dtype, options) tuple that has been solved before is
// answered from the cache without re-entering the design space exploration.
//
// Usage:
//   sasynthd [options]
//     --port N            serve TCP on 127.0.0.1:N (0 = ephemeral, printed
//                         on stderr); default is stdio
//     --cache DIR         persistent design cache directory
//     --cache-capacity N  in-memory LRU entries (default 1024)
//     --no-cache          disable the design cache entirely
//     --jobs N            worker threads (0 = SASYNTH_JOBS env or all cores)
//     --queue N           admission queue bound (default 64); beyond it
//                         requests get a retry response (backpressure)
//     --log-level NAME    debug|info|warn|error|off (default warn)
//
// Shutdown: the `shutdown` protocol command (or EOF on stdio) drains every
// accepted request, flushes responses in order, then exits.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.h"
#include "serve/tcp.h"
#include "util/logging.h"

namespace {

using namespace sasynth;

[[noreturn]] void usage(const char* message = nullptr) {
  if (message != nullptr) std::fprintf(stderr, "error: %s\n\n", message);
  std::fprintf(stderr,
               "usage: sasynthd [options]\n"
               "  --port N            TCP on 127.0.0.1:N (0 = ephemeral); "
               "default stdio\n"
               "  --cache DIR         persistent design cache directory\n"
               "  --cache-capacity N  in-memory LRU entries (default 1024)\n"
               "  --no-cache          disable the design cache\n"
               "  --jobs N            worker threads (0 = SASYNTH_JOBS env or "
               "all cores)\n"
               "  --queue N           admission queue bound (default 64)\n"
               "  --log-level NAME    debug|info|warn|error|off\n");
  std::exit(2);
}

int serve_stdio(SynthServer& server) {
  server.serve(
      [](std::string* line) {
        return static_cast<bool>(std::getline(std::cin, *line));
      },
      [](const std::string& response) {
        std::cout << response;
        std::cout.flush();
      });
  return 0;
}

int serve_tcp(SynthServer& server, int port) {
  TcpListener listener;
  std::string error;
  if (!listener.listen_on(port, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  // Flushed immediately so wrappers (tests, scripts) can scrape the port.
  std::fprintf(stderr, "sasynthd listening on 127.0.0.1:%d\n",
               listener.port());
  std::fflush(stderr);

  std::vector<std::thread> sessions;
  for (;;) {
    const int client = listener.accept_client();
    if (client < 0) break;
    sessions.emplace_back([&server, &listener, client] {
      serve_fd_session(server, client);
      // First session to process `shutdown` also unblocks the accept loop.
      if (server.stop_requested()) listener.close_listener();
    });
    if (server.stop_requested()) {
      listener.close_listener();
      break;
    }
  }
  listener.close_listener();
  for (std::thread& t : sessions) t.join();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ServeOptions options;
  int port = -1;  // -1 = stdio

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) usage((std::string(flag) + " needs a value").c_str());
      return argv[++i];
    };
    if (arg == "--port") {
      port = std::atoi(next_value("--port").c_str());
      if (port < 0 || port > 65535) usage("bad --port");
    } else if (arg == "--cache") {
      options.cache_dir = next_value("--cache");
    } else if (arg == "--cache-capacity") {
      const int capacity = std::atoi(next_value("--cache-capacity").c_str());
      if (capacity < 1) usage("bad --cache-capacity");
      options.cache_capacity = static_cast<std::size_t>(capacity);
    } else if (arg == "--no-cache") {
      options.cache_enabled = false;
    } else if (arg == "--jobs") {
      options.jobs = std::atoi(next_value("--jobs").c_str());
      if (options.jobs < 0) usage("bad --jobs");
    } else if (arg == "--queue") {
      options.queue_limit = std::atoll(next_value("--queue").c_str());
      if (options.queue_limit < 1) usage("bad --queue");
    } else if (arg == "--log-level") {
      set_log_level(parse_log_level(next_value("--log-level")));
    } else if (arg == "--help" || arg == "-h") {
      usage();
    } else {
      usage(("unknown option " + arg).c_str());
    }
  }

  SynthServer server(options);
  SA_LOG_INFO << "sasynthd: jobs=" << server.scheduler().jobs()
              << " queue=" << options.queue_limit << " cache="
              << (options.cache_enabled
                      ? (options.cache_dir.empty() ? "<memory>"
                                                   : options.cache_dir.c_str())
                      : "<disabled>");
  const int status = port >= 0 ? serve_tcp(server, port) : serve_stdio(server);
  SA_LOG_INFO << "sasynthd: exiting\n";
  return status;
}
