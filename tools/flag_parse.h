// Strict command-line flag conversion shared by sasynthd and sasynth_cli.
//
// std::atoi returns 0 on garbage, so "--port abc" used to sail through the
// 0..65535 range check and bind a kernel-chosen ephemeral port — the silent-
// atoi bug family. Every numeric flag now goes through the same strict
// parser the wire protocol uses (util/strings parse_*_strict: whole token
// consumed, overflow rejects), and a violation exits 2 through the tool's
// usage() with a message naming the flag and the offending value:
//
//   error: bad --port value 'abc' (expected an integer in 0..65535)
#pragma once

#include <cstdint>
#include <string>

#include "util/strings.h"

namespace sasynth {

/// The tool's [[noreturn]] usage(message) entry. Taken as a plain function
/// pointer so this header stays independent of either tool's internals.
using FlagFail = void (*)(const char*);

/// Strict int64 flag conversion with an inclusive range check. Non-numeric
/// input, trailing garbage, overflow and out-of-range values all exit 2
/// through `fail` with the flag and value named.
inline std::int64_t require_int_flag(const char* flag, const std::string& value,
                                     std::int64_t lo, std::int64_t hi,
                                     FlagFail fail) {
  std::int64_t parsed = 0;
  if (!parse_int64_strict(value, &parsed) || parsed < lo || parsed > hi) {
    fail(strformat("bad %s value '%s' (expected an integer in %lld..%lld)",
                   flag, value.c_str(), static_cast<long long>(lo),
                   static_cast<long long>(hi))
             .c_str());
  }
  return parsed;
}

/// Strict double flag conversion. Rejects non-numeric input, trailing
/// garbage and overflow with the flag and value named; range constraints
/// stay at the call site (they differ per flag and deserve their own
/// messages).
inline double require_double_flag(const char* flag, const std::string& value,
                                  FlagFail fail) {
  double parsed = 0.0;
  if (!parse_double_strict(value, &parsed)) {
    fail(strformat("bad %s value '%s' (expected a number)", flag,
                   value.c_str())
             .c_str());
  }
  return parsed;
}

}  // namespace sasynth
