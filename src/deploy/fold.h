// Fixed-design execution: fold an arbitrary layer onto a fixed DesignPoint.
//
// The DSE synthesizes one bespoke design per layer, but a deployed FPGA has
// exactly one bitstream: every layer of every hosted model must execute on
// whatever (row, col, vec) array was built (Systolic-CNN, PAPERS.md). The
// mapping primitive is the DIVCEIL fold of SET-ISCA2023 (SNIPPETS.md): a
// layer whose trip counts do not divide the design's bounds is padded up to
// the next array quantum — ceil(N_l / t_l) granules along every loop — and
// the padded lanes/cycles are charged as waste rather than rejected.
//
// plan_fold() is deterministic and device-free: it decides feasibility (the
// design's loop mapping must satisfy the Eq. 2/3/11 feasibility conditions
// on the *layer's own* nest), retargets the middle bounds so the schedule
// doesn't spin through empty blocks, and reports per-loop and aggregate
// padding statistics. evaluate_fixed_design() layers the device on top:
// resources and realized pseudo-P&R frequency of the fixed array, then the
// folded performance estimate of every layer of a network.
//
// Identity guarantee (the differential-testing anchor): a layer planned onto
// its own bespoke design yields `identity == true` and a retargeted design
// *equal* to the input, so every downstream number reproduces the bespoke
// path bit for bit. The middle-bound clamp preserves this because a DSE-
// chosen middle bound never exceeds round_up_pow2(ceil(N_l / t_l)).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/design_point.h"
#include "core/perf_model.h"
#include "core/resource_model.h"
#include "fpga/datatype.h"
#include "fpga/device.h"
#include "loopnest/loop_nest.h"
#include "nn/network.h"

namespace sasynth::deploy {

/// Per-loop fold decision: how one loop of the layer maps onto the fixed
/// array dimension that covers it.
struct LoopFold {
  std::string loop;          ///< loop name ("o", "i", ...)
  std::int64_t trip = 0;     ///< N_l, the layer's trip count
  std::int64_t inner = 1;    ///< t_l, the fixed design's hardware extent
  std::int64_t middle = 1;   ///< s'_l, the retargeted middle bound
  std::int64_t granules = 0; ///< ceil(N_l / t_l), units of executed work
  std::int64_t folds = 0;    ///< outer trip: ceil(N_l / (s'_l * t_l))
  std::int64_t pad = 0;      ///< granules * t_l - N_l padded iterations
};

struct FoldPlan {
  bool feasible = false;
  std::string error;      ///< why infeasible (empty when feasible)
  /// The fixed design with middle bounds retargeted to this nest:
  /// s'_l = min(s_l, round_up_pow2(ceil(N_l / t_l))). Hardware-identical to
  /// the input (same mapping, same array shape — the middle bounds are a
  /// schedule, not silicon) but never larger than the layer needs.
  DesignPoint design;
  /// True when retargeting was a no-op (design == the fixed input); implied
  /// for a layer on its own bespoke design. Distinct from zero waste: a
  /// bespoke design can still pad (13 rows on an 11-row array).
  bool identity = false;
  std::vector<LoopFold> loops;
  std::int64_t effective_iterations = 0;
  std::int64_t executed_iterations = 0;  ///< padded to the array quantum
  double waste_ratio = 0.0;  ///< (executed - effective) / executed

  std::string summary() const;
};

/// Computes the deterministic fold/pad plan for `nest` on `fixed`.
/// Infeasible (with `error` set) when the design's mapping is out of range
/// for the nest or fails the feasibility conditions on the layer's own reuse
/// analysis. Fault site: `deploy.plan`. Metrics: `deploy_mapped_total`,
/// `deploy_infeasible_total`, `deploy_fold_waste_ratio`.
FoldPlan plan_fold(const LoopNest& nest, const DesignPoint& fixed);

/// One layer's outcome under a fixed design.
struct FixedLayerPerf {
  std::string layer;
  FoldPlan plan;
  FoldedPerfEstimate perf;  ///< meaningful only when plan.feasible
  double latency_ms = 0.0;
};

/// A fixed design evaluated over a whole network at its realized clock.
struct FixedDesignEval {
  bool valid = false;  ///< every layer feasible and the array fits the device
  std::string error;
  DesignPoint design;             ///< the fixed design (not retargeted)
  double realized_freq_mhz = 0.0;
  ResourceUsage resources;        ///< the fixed array's synthesis cost
  std::vector<FixedLayerPerf> per_layer;
  double total_latency_ms = 0.0;  ///< one image through all conv layers
  double aggregate_gops = 0.0;    ///< total ops / total latency
  bool memory_bound_layers = false;

  std::string summary(const Network& net) const;
};

/// Evaluates `design` on every layer of `net`: resources of the fixed array,
/// realized pseudo-P&R frequency, then per-layer folded estimates. A layer
/// whose fold plan is infeasible marks the whole evaluation invalid (its
/// row is still reported). The resource/frequency derivation matches the
/// bespoke CLI path exactly when `net` is a single layer and `design` its
/// bespoke design, which is what makes fold-identity end-to-end testable.
FixedDesignEval evaluate_fixed_design(const Network& net,
                                      const DesignPoint& design,
                                      const FpgaDevice& device, DataType dtype);

}  // namespace sasynth::deploy
