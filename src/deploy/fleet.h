// Fleet optimizer: pick K designs for a weighted multi-network workload.
//
// The "what if I can only afford K bitstreams" scenario: a serving fleet
// hosts several CNNs with known traffic shares and can program each board
// with one of at most K synthesized arrays. Selecting the K designs is a
// facility-location problem — open K facilities (designs) so that every
// client (network) is served by its best open facility, minimizing the
// weighted sum of per-image latencies:
//
//   minimize  sum_n  weight_n * min_{d in S, |S| <= K}  latency_n(d)
//
// where latency_n(d) folds every layer of network n onto design d
// (deploy::plan_fold) and evaluates the folded estimate at d's realized
// pseudo-P&R clock. The candidate pool comes from the unified-selection
// shortlist machinery (core/unified.cpp): stage-1/2 candidates of the
// merged workload plus each network individually, deduplicated by design
// signature in a fixed order.
//
// Selection is greedy (the classic 1-1/e approximation), fully
// deterministic: the latency matrix is evaluated in workload order, ties
// break toward the smallest pool index, and the result is bit-identical at
// any jobs count (parallelism only exists inside candidate enumeration,
// which is itself deterministic).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/design_point.h"
#include "core/unified.h"
#include "fpga/datatype.h"
#include "fpga/device.h"
#include "nn/network.h"

namespace sasynth::deploy {

/// One hosted network and its traffic share (relative weight, > 0).
struct WorkloadEntry {
  Network net;
  double weight = 1.0;
};

struct FleetOptions {
  /// DSE knobs + shortlist size + jobs for the candidate enumeration.
  UnifiedOptions unified;
  /// K: how many designs the fleet may ship. The selector always returns
  /// exactly min(K, feasible pool size) designs.
  int num_designs = 1;
};

/// Which design a network is assigned to and what it costs there.
struct NetworkPlan {
  std::string network;
  double weight = 1.0;
  std::size_t design_index = 0;  ///< into FleetResult::designs
  double latency_ms = 0.0;       ///< one image through all conv layers
  double aggregate_gops = 0.0;
};

struct FleetResult {
  bool valid = false;
  bool cancelled = false;  ///< the cancel token fired mid-selection
  std::string error;
  std::vector<DesignPoint> designs;        ///< selection order
  std::vector<double> realized_freq_mhz;   ///< per design
  std::vector<NetworkPlan> plans;          ///< workload order
  double weighted_latency_ms = 0.0;  ///< the objective: sum w_n * latency_n
  double weighted_gops = 0.0;  ///< sum w_n * ops_n / sum w_n * latency_n

  std::string summary() const;
};

/// Runs the full selection. Deterministic at any options.unified.jobs value.
/// Fault site: `deploy.select` (fires before any work). Cancellation
/// (options.unified.dse.cancel) is polled between enumeration stages and
/// per matrix row; a fired token yields `cancelled == true, valid == false`.
FleetResult select_fleet(const std::vector<WorkloadEntry>& workload,
                         const FpgaDevice& device, DataType dtype,
                         const FleetOptions& options);

/// Pure evaluation half of the selector: given an already-chosen fleet,
/// recompute realized frequencies, the per-network assignment and the
/// weighted objective. select_fleet's tail and the serving cache-hit path
/// (serve/server.cpp) both answer through this function, so a cached fleet
/// response is byte-identical to a fresh one by construction. Invalid when
/// a network cannot fold onto any of the given designs.
FleetResult evaluate_fleet(const std::vector<WorkloadEntry>& workload,
                           const std::vector<DesignPoint>& designs,
                           const FpgaDevice& device, DataType dtype);

}  // namespace sasynth::deploy
