#include "deploy/fold.h"

#include <algorithm>

#include "core/mapping.h"
#include "faultinject/faultinject.h"
#include "fpga/freq_model.h"
#include "loopnest/conv_nest.h"
#include "loopnest/reuse.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/math_util.h"
#include "util/strings.h"

namespace sasynth::deploy {

namespace {

/// Deploy metric handles, resolved once (the ServeMetrics pattern).
struct DeployMetrics {
  obs::Counter& mapped;
  obs::Counter& infeasible;
  obs::Histogram& waste;

  static DeployMetrics& get() {
    static DeployMetrics m{
        obs::MetricsRegistry::global().counter("deploy_mapped_total"),
        obs::MetricsRegistry::global().counter("deploy_infeasible_total"),
        // Pad waste is a fraction in [0, 1]; the latency ladder is useless
        // here, so the histogram gets its own decade-ish bucket bounds.
        obs::MetricsRegistry::global().histogram(
            "deploy_fold_waste_ratio",
            {0.001, 0.01, 0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 0.9})};
    return m;
  }
};

}  // namespace

FoldPlan plan_fold(const LoopNest& nest, const DesignPoint& fixed) {
  fault::raise_if_armed(fault::kSiteDeployPlan);
  FoldPlan plan;
  auto infeasible = [&](const std::string& why) {
    plan.error = why;
    if (obs::metrics_enabled()) DeployMetrics::get().infeasible.add(1);
    return plan;
  };

  const std::string structural = fixed.validate_folded(nest);
  if (!structural.empty()) return infeasible(structural);

  // The mapping decision (which loop drives rows/cols/lanes) must be
  // feasible on *this* nest's reuse structure. All build_conv_nest nests
  // share one c_rl pattern (Eq. 3 depends only on which coefficients are
  // zero), but fixed designs can come from structurally different
  // frontend-extracted nests, where a home-feasible mapping is not.
  std::string why;
  const ReuseMatrix reuse = analyze_reuse(nest);
  if (!is_feasible_mapping(nest, reuse, fixed.mapping(), &why)) {
    return infeasible("mapping infeasible for this layer: " + why);
  }

  // Retarget the middle bounds: a fixed design synthesized for a bigger
  // layer would otherwise spin s_l feeder iterations where this layer has
  // work for far fewer. The clamp cap round_up_pow2(ceil(N/t)) (not the
  // tighter ceil(N/t)) is what preserves bespoke identity: the DSE's
  // power-of-two candidate lists top out at exactly that value, so a
  // design's own middle bound is never clamped on its home layer.
  const std::vector<std::int64_t>& middle = fixed.tiling().middle_bounds();
  const std::vector<std::int64_t>& inner = fixed.tiling().inner_bounds();
  std::vector<std::int64_t> retargeted(middle);
  for (std::size_t l = 0; l < nest.num_loops(); ++l) {
    retargeted[l] = std::min(
        middle[l], round_up_pow2(ceil_div(nest.loop(l).trip, inner[l])));
  }
  plan.design = fixed;
  plan.design.set_middle_bounds(std::move(retargeted));
  plan.identity = plan.design == fixed;

  const TilingSpec& tiling = plan.design.tiling();
  for (std::size_t l = 0; l < nest.num_loops(); ++l) {
    LoopFold f;
    f.loop = nest.loop(l).name;
    f.trip = nest.loop(l).trip;
    f.inner = tiling.inner(l);
    f.middle = tiling.middle(l);
    f.granules = tiling.granules(nest, l);
    f.folds = tiling.outer_trip(nest, l);
    f.pad = f.granules * f.inner - f.trip;
    plan.loops.push_back(std::move(f));
  }
  plan.effective_iterations = nest.total_iterations();
  plan.executed_iterations = tiling.executed_iterations(nest);
  plan.waste_ratio =
      static_cast<double>(plan.executed_iterations - plan.effective_iterations) /
      static_cast<double>(plan.executed_iterations);
  plan.feasible = true;
  if (obs::metrics_enabled()) {
    DeployMetrics& m = DeployMetrics::get();
    m.mapped.add(1);
    m.waste.observe(plan.waste_ratio);
  }
  return plan;
}

std::string FoldPlan::summary() const {
  if (!feasible) return "infeasible fold: " + error;
  std::string out =
      strformat("fold%s waste=%.2f%% (%lld of %lld iterations padded)",
                identity ? " [identity]" : "", waste_ratio * 100.0,
                static_cast<long long>(executed_iterations -
                                       effective_iterations),
                static_cast<long long>(executed_iterations));
  for (const LoopFold& f : loops) {
    if (f.pad == 0 && f.folds <= 1 && f.inner == 1) continue;
    out += strformat("\n  %-4s trip=%-5lld t=%-4lld s=%-4lld granules=%-5lld "
                     "folds=%-3lld pad=%lld",
                     f.loop.c_str(), static_cast<long long>(f.trip),
                     static_cast<long long>(f.inner),
                     static_cast<long long>(f.middle),
                     static_cast<long long>(f.granules),
                     static_cast<long long>(f.folds),
                     static_cast<long long>(f.pad));
  }
  return out;
}

FixedDesignEval evaluate_fixed_design(const Network& net,
                                      const DesignPoint& design,
                                      const FpgaDevice& device,
                                      DataType dtype) {
  obs::ScopedSpan span("deploy.evaluate", "deploy");
  span.arg("layers", static_cast<std::int64_t>(net.layers.size()));
  FixedDesignEval eval;
  eval.design = design;
  if (net.layers.empty()) {
    eval.error = "network has no layers";
    return eval;
  }

  // The synthesized array is one piece of hardware: its buffers are sized by
  // the *fixed* design's block domain, which is nest-independent, so any
  // conv nest of the network yields the same report. Realized frequency
  // follows the bespoke derivation (worst-case report + design signature).
  const LoopNest first_nest = build_conv_nest(net.layers.front());
  eval.resources = model_resources(first_nest, design, device, dtype);
  eval.realized_freq_mhz = pseudo_pnr_frequency_mhz(
      device, eval.resources.report, design.signature());

  bool all_feasible = true;
  double latency_ms = 0.0;
  for (const ConvLayerDesc& layer : net.layers) {
    const LoopNest nest = build_conv_nest(layer);
    FixedLayerPerf lp;
    lp.layer = layer.name;
    lp.plan = plan_fold(nest, design);
    if (lp.plan.feasible) {
      lp.perf = estimate_folded_performance(nest, lp.plan.design, device,
                                            dtype, eval.realized_freq_mhz);
      lp.latency_ms = layer_latency_ms(layer, lp.perf.perf);
      latency_ms += lp.latency_ms;
      eval.memory_bound_layers |= lp.perf.perf.memory_bound;
    } else {
      all_feasible = false;
    }
    eval.per_layer.push_back(std::move(lp));
  }
  if (!all_feasible) {
    eval.error = "one or more layers cannot fold onto this design";
    return eval;
  }
  if (eval.resources.bram_blocks > device.bram_blocks ||
      !eval.resources.report.fits()) {
    eval.error = "design does not fit the device";
    return eval;
  }
  eval.total_latency_ms = latency_ms;
  eval.aggregate_gops =
      static_cast<double>(net.total_ops()) / (latency_ms * 1e-3) * 1e-9;
  eval.valid = true;
  return eval;
}

std::string FixedDesignEval::summary(const Network& net) const {
  std::string out = strformat(
      "%s on fixed design %s @%.1f MHz -> %s\n", net.name.c_str(),
      design.shape().to_string().c_str(), realized_freq_mhz,
      valid ? strformat("%.1f Gops, %.2f ms/image", aggregate_gops,
                        total_latency_ms)
                  .c_str()
            : ("INVALID: " + error).c_str());
  out += "  " + resources.report.summary() + "\n";
  for (const FixedLayerPerf& lp : per_layer) {
    if (!lp.plan.feasible) {
      out += strformat("  %-10s INFEASIBLE: %s\n", lp.layer.c_str(),
                       lp.plan.error.c_str());
      continue;
    }
    out += strformat(
        "  %-10s %8.1f Gops  eff %6.2f%%  waste %6.2f%%  %8.3f ms%s%s\n",
        lp.layer.c_str(), lp.perf.perf.throughput_gops,
        lp.perf.perf.eff * 100.0, lp.perf.waste_ratio * 100.0, lp.latency_ms,
        lp.plan.identity ? "  [bespoke]" : "",
        lp.perf.perf.memory_bound ? "  [memory-bound]" : "");
  }
  return out;
}

}  // namespace sasynth::deploy
