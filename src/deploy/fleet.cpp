#include "deploy/fleet.h"

#include <algorithm>
#include <limits>
#include <set>

#include "core/resource_model.h"
#include "deploy/fold.h"
#include "faultinject/faultinject.h"
#include "fpga/freq_model.h"
#include "loopnest/conv_nest.h"
#include "obs/trace.h"
#include "util/strings.h"

namespace sasynth::deploy {

namespace {

/// Uncoverable (network, design) cells. Large but finite so sums of a few
/// cells cannot overflow to inf and break the < comparisons.
constexpr double kInfeasibleMs = 1e18;

/// A candidate design realized on the device.
struct PoolEntry {
  DesignPoint design;
  double realized_freq_mhz = 0.0;
};

}  // namespace

FleetResult select_fleet(const std::vector<WorkloadEntry>& workload,
                         const FpgaDevice& device, DataType dtype,
                         const FleetOptions& options) {
  fault::raise_if_armed(fault::kSiteDeploySelect);
  obs::ScopedSpan select_span("deploy.select", "deploy");
  select_span.arg("networks", static_cast<std::int64_t>(workload.size()));
  select_span.arg("k", options.num_designs);

  FleetResult result;
  if (workload.empty()) {
    result.error = "empty workload";
    return result;
  }
  if (options.num_designs < 1) {
    result.error = "num_designs must be >= 1";
    return result;
  }
  for (const WorkloadEntry& w : workload) {
    if (!(w.weight > 0.0)) {
      result.error = "workload weights must be > 0";
      return result;
    }
    if (w.net.layers.empty()) {
      result.error = "workload network '" + w.net.name + "' has no layers";
      return result;
    }
  }
  const CancelToken& cancel = options.unified.dse.cancel;
  auto cancelled_result = [&]() {
    result.cancelled = true;
    result.error = "selection cancelled";
    return result;
  };

  // Candidate pool: unified stage-1/2 survivors of the merged workload (the
  // compromise designs) plus each network individually (the specialists),
  // trimmed to top_k per source, deduplicated by signature in that order.
  std::vector<UnifiedCandidate> pool_candidates;
  {
    obs::ScopedSpan span("deploy.candidates", "deploy");
    Network merged;
    merged.name = "mix";
    for (const WorkloadEntry& w : workload) {
      merged.layers.insert(merged.layers.end(), w.net.layers.begin(),
                           w.net.layers.end());
    }
    std::vector<const Network*> sources;
    sources.push_back(&merged);
    for (const WorkloadEntry& w : workload) sources.push_back(&w.net);

    const std::size_t per_source =
        static_cast<std::size_t>(std::max(1, options.unified.dse.top_k));
    std::set<std::string> seen;
    for (const Network* net : sources) {
      bool enum_cancelled = false;
      std::vector<UnifiedCandidate> cands = enumerate_unified_candidates(
          *net, device, dtype, options.unified, &enum_cancelled);
      if (enum_cancelled || cancel.cancelled()) return cancelled_result();
      if (cands.size() > per_source) cands.resize(per_source);
      for (UnifiedCandidate& c : cands) {
        if (seen.insert(c.design.signature()).second) {
          pool_candidates.push_back(std::move(c));
        }
      }
    }
    span.arg("pool", static_cast<std::int64_t>(pool_candidates.size()));
  }
  if (pool_candidates.empty()) {
    result.error = "no feasible candidate designs";
    return result;
  }

  // Realize every candidate on the device; drop the ones that don't fit.
  // The resource report is nest-independent (fixed block domain), so the
  // first layer of the first workload network serves as the probe nest.
  std::vector<PoolEntry> pool;
  {
    const LoopNest probe_nest =
        build_conv_nest(workload.front().net.layers.front());
    for (UnifiedCandidate& c : pool_candidates) {
      const ResourceUsage usage =
          model_resources(probe_nest, c.design, device, dtype);
      if (usage.bram_blocks > device.bram_blocks) continue;
      if (options.unified.dse.enforce_soft_logic && !usage.report.fits()) {
        continue;
      }
      PoolEntry entry;
      entry.design = std::move(c.design);
      entry.realized_freq_mhz = pseudo_pnr_frequency_mhz(
          device, usage.report, entry.design.signature());
      pool.push_back(std::move(entry));
    }
  }
  if (pool.empty()) {
    result.error = "no candidate design fits the device";
    return result;
  }

  // Latency matrix: networks x pool. Evaluated serially — each cell is a
  // handful of closed-form folded estimates, and a serial walk keeps the
  // deploy.plan fault contract simple (exceptions propagate to the caller
  // instead of being swallowed by a pool worker).
  std::vector<std::vector<double>> latency(
      workload.size(), std::vector<double>(pool.size(), kInfeasibleMs));
  {
    obs::ScopedSpan span("deploy.matrix", "deploy");
    span.arg("cells",
             static_cast<std::int64_t>(workload.size() * pool.size()));
    for (std::size_t n = 0; n < workload.size(); ++n) {
      if (cancel.cancelled()) return cancelled_result();
      const Network& net = workload[n].net;
      std::vector<LoopNest> nests;
      nests.reserve(net.layers.size());
      for (const ConvLayerDesc& layer : net.layers) {
        nests.push_back(build_conv_nest(layer));
      }
      for (std::size_t d = 0; d < pool.size(); ++d) {
        double ms = 0.0;
        bool feasible = true;
        for (std::size_t i = 0; i < net.layers.size(); ++i) {
          const FoldPlan plan = plan_fold(nests[i], pool[d].design);
          if (!plan.feasible) {
            feasible = false;
            break;
          }
          const FoldedPerfEstimate perf = estimate_folded_performance(
              nests[i], plan.design, device, dtype, pool[d].realized_freq_mhz);
          ms += layer_latency_ms(net.layers[i], perf.perf);
        }
        if (feasible) latency[n][d] = ms;
      }
    }
  }
  for (std::size_t n = 0; n < workload.size(); ++n) {
    const double best =
        *std::min_element(latency[n].begin(), latency[n].end());
    if (best >= kInfeasibleMs) {
      result.error = "network '" + workload[n].net.name +
                     "' cannot fold onto any candidate design";
      return result;
    }
  }

  // Greedy facility location: K rounds, each adding the pool entry that
  // minimizes the weighted objective; ties (within 1e-12 relative) break
  // toward the smaller pool index, so the selection is a pure function of
  // the matrix. No early stop — a round with zero marginal gain still ships
  // a design (callers asked for K).
  std::vector<std::size_t> selected;
  {
    obs::ScopedSpan span("deploy.greedy", "deploy");
    const std::size_t k = std::min<std::size_t>(
        static_cast<std::size_t>(options.num_designs), pool.size());
    std::vector<double> best_ms(workload.size(),
                                std::numeric_limits<double>::infinity());
    std::vector<bool> in_fleet(pool.size(), false);
    for (std::size_t round = 0; round < k; ++round) {
      std::size_t pick = pool.size();
      double pick_obj = std::numeric_limits<double>::infinity();
      for (std::size_t d = 0; d < pool.size(); ++d) {
        if (in_fleet[d]) continue;
        double obj = 0.0;
        for (std::size_t n = 0; n < workload.size(); ++n) {
          obj += workload[n].weight * std::min(best_ms[n], latency[n][d]);
        }
        if (obj < pick_obj * (1.0 - 1e-12)) {
          pick = d;
          pick_obj = obj;
        }
      }
      in_fleet[pick] = true;
      selected.push_back(pick);
      for (std::size_t n = 0; n < workload.size(); ++n) {
        best_ms[n] = std::min(best_ms[n], latency[n][pick]);
      }
    }
    span.arg("selected", static_cast<std::int64_t>(selected.size()));
  }

  // Assignment + objective: delegate to the pure evaluator over the chosen
  // designs. The recomputed cells are bit-identical to the matrix above
  // (same closed-form estimates), and answering through evaluate_fleet is
  // what makes a cached fleet response byte-equal to a fresh one.
  std::vector<DesignPoint> fleet_designs;
  fleet_designs.reserve(selected.size());
  for (const std::size_t d : selected) fleet_designs.push_back(pool[d].design);
  return evaluate_fleet(workload, fleet_designs, device, dtype);
}

FleetResult evaluate_fleet(const std::vector<WorkloadEntry>& workload,
                           const std::vector<DesignPoint>& designs,
                           const FpgaDevice& device, DataType dtype) {
  FleetResult result;
  if (workload.empty()) {
    result.error = "empty workload";
    return result;
  }
  if (designs.empty()) {
    result.error = "empty fleet";
    return result;
  }
  for (const WorkloadEntry& w : workload) {
    if (!(w.weight > 0.0)) {
      result.error = "workload weights must be > 0";
      return result;
    }
    if (w.net.layers.empty()) {
      result.error = "workload network '" + w.net.name + "' has no layers";
      return result;
    }
  }

  // Realized clock per design (same probe-nest derivation as the selector:
  // the resource report is nest-independent).
  const LoopNest probe_nest =
      build_conv_nest(workload.front().net.layers.front());
  std::vector<double> freqs;
  freqs.reserve(designs.size());
  for (const DesignPoint& design : designs) {
    const ResourceUsage usage =
        model_resources(probe_nest, design, device, dtype);
    freqs.push_back(
        pseudo_pnr_frequency_mhz(device, usage.report, design.signature()));
  }

  double weighted_ops = 0.0;
  double weighted_ms = 0.0;
  for (const WorkloadEntry& w : workload) {
    std::vector<LoopNest> nests;
    nests.reserve(w.net.layers.size());
    for (const ConvLayerDesc& layer : w.net.layers) {
      nests.push_back(build_conv_nest(layer));
    }
    NetworkPlan plan;
    plan.network = w.net.name;
    plan.weight = w.weight;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t d = 0; d < designs.size(); ++d) {
      double ms = 0.0;
      bool feasible = true;
      for (std::size_t i = 0; i < w.net.layers.size(); ++i) {
        const FoldPlan fold = plan_fold(nests[i], designs[d]);
        if (!fold.feasible) {
          feasible = false;
          break;
        }
        const FoldedPerfEstimate perf = estimate_folded_performance(
            nests[i], fold.design, device, dtype, freqs[d]);
        ms += layer_latency_ms(w.net.layers[i], perf.perf);
      }
      // Earliest design achieving the minimum (strict <): deterministic.
      if (feasible && ms < best) {
        best = ms;
        plan.design_index = d;
      }
    }
    if (!(best < kInfeasibleMs)) {
      result.plans.clear();
      result.error =
          "network '" + w.net.name + "' cannot fold onto the given fleet";
      result.valid = false;
      return result;
    }
    plan.latency_ms = best;
    plan.aggregate_gops = static_cast<double>(w.net.total_ops()) /
                          (best * 1e-3) * 1e-9;
    weighted_ms += plan.weight * best;
    weighted_ops += plan.weight * static_cast<double>(w.net.total_ops());
    result.plans.push_back(std::move(plan));
  }
  result.designs = designs;
  result.realized_freq_mhz = std::move(freqs);
  result.weighted_latency_ms = weighted_ms;
  result.weighted_gops = weighted_ops / (weighted_ms * 1e-3) * 1e-9;
  result.valid = true;
  return result;
}

std::string FleetResult::summary() const {
  if (!valid) return "fleet selection failed: " + error;
  std::string out = strformat(
      "fleet of %zu design(s): weighted %.2f ms/image mix, %.1f Gops\n",
      designs.size(), weighted_latency_ms, weighted_gops);
  for (std::size_t d = 0; d < designs.size(); ++d) {
    out += strformat("  design %zu: %s @%.1f MHz\n", d,
                     designs[d].signature().c_str(), realized_freq_mhz[d]);
  }
  for (const NetworkPlan& p : plans) {
    out += strformat(
        "  %-10s w=%-5.2f -> design %zu  %8.3f ms/image  %8.1f Gops\n",
        p.network.c_str(), p.weight, p.design_index, p.latency_ms,
        p.aggregate_gops);
  }
  return out;
}

}  // namespace sasynth::deploy
