// Recognizes the convolution pattern in a parsed LoopNest and recovers the
// ConvLayerDesc — the bridge from the generic front end to the CNN-specific
// generators and simulators.
//
// The pattern (paper Code 1, any loop order, any identifier names):
//   reduce array  OUT[o][r][c]
//   read array    W[o][i][p][q]
//   read array    IN[i][s*r + p][s*c + q]      (s = stride >= 1)
// Loop roles are inferred from the access structure, not from names.
#pragma once

#include <cstddef>
#include <string>

#include "loopnest/loop_nest.h"
#include "nn/layer.h"

namespace sasynth {

struct ConvExtraction {
  bool ok = false;
  std::string error;
  ConvLayerDesc layer;

  /// Loop positions (indices into the nest) of the recovered roles.
  std::size_t loop_o = 0, loop_i = 0, loop_c = 0, loop_r = 0, loop_p = 0,
              loop_q = 0;
};

ConvExtraction extract_conv_layer(const LoopNest& nest);

}  // namespace sasynth
