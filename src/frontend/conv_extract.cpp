#include "frontend/conv_extract.h"

#include <vector>

namespace sasynth {

namespace {

/// If `expr` is exactly 1 * iterator with no constant, returns the iterator;
/// otherwise npos.
std::size_t single_iter(const AffineExpr& expr) {
  if (expr.constant() != 0) return LoopNest::npos;
  std::size_t found = LoopNest::npos;
  for (std::size_t l = 0; l < expr.num_loops(); ++l) {
    if (expr.coeff(l) == 0) continue;
    if (expr.coeff(l) != 1 || found != LoopNest::npos) return LoopNest::npos;
    found = l;
  }
  return found;
}

/// True if `expr` is exactly stride*spatial + kernel (stride >= 1, no
/// constant, no other iterators), for the two already-identified loops.
/// Fills `stride` on success.
bool matches_strided(const AffineExpr& expr, std::size_t spatial,
                     std::size_t kernel, std::int64_t* stride) {
  if (expr.constant() != 0) return false;
  if (expr.coeff(kernel) != 1) return false;
  const std::int64_t s = expr.coeff(spatial);
  if (s < 1) return false;
  for (std::size_t l = 0; l < expr.num_loops(); ++l) {
    if (l != spatial && l != kernel && expr.coeff(l) != 0) return false;
  }
  *stride = s;
  return true;
}

}  // namespace

ConvExtraction extract_conv_layer(const LoopNest& nest) {
  ConvExtraction out;
  auto fail = [&](const std::string& msg) {
    out.error = msg;
    return out;
  };

  if (nest.num_loops() != 6) return fail("convolution requires 6 loops");
  if (nest.num_accesses() != 3) return fail("convolution requires 3 arrays");

  const ArrayAccess* reduce = nullptr;
  std::vector<const ArrayAccess*> reads;
  for (const ArrayAccess& a : nest.accesses()) {
    if (a.role == AccessRole::kReduce) reduce = &a;
    else reads.push_back(&a);
  }
  if (reduce == nullptr || reads.size() != 2) {
    return fail("expected one reduction array and two operands");
  }
  if (reduce->access.rank() != 3) return fail("output array must be rank 3");

  // Identify W (rank 4) and IN (rank 3) among the operands.
  const ArrayAccess* w = nullptr;
  const ArrayAccess* in = nullptr;
  for (const ArrayAccess* r : reads) {
    if (r->access.rank() == 4) w = r;
    if (r->access.rank() == 3) in = r;
  }
  if (w == nullptr || in == nullptr) {
    return fail("operands must be the rank-4 weights and rank-3 input");
  }

  // OUT[o][r][c]
  out.loop_o = single_iter(reduce->access.indices[0]);
  out.loop_r = single_iter(reduce->access.indices[1]);
  out.loop_c = single_iter(reduce->access.indices[2]);
  if (out.loop_o == LoopNest::npos || out.loop_r == LoopNest::npos ||
      out.loop_c == LoopNest::npos) {
    return fail("output access must be OUT[o][r][c]");
  }

  // W[o][i][p][q]
  if (single_iter(w->access.indices[0]) != out.loop_o) {
    return fail("weight dim 0 must be the output-map loop");
  }
  out.loop_i = single_iter(w->access.indices[1]);
  out.loop_p = single_iter(w->access.indices[2]);
  out.loop_q = single_iter(w->access.indices[3]);
  if (out.loop_i == LoopNest::npos || out.loop_p == LoopNest::npos ||
      out.loop_q == LoopNest::npos) {
    return fail("weight access must be W[o][i][p][q]");
  }

  // IN[i][s*r+p][s*c+q]
  if (single_iter(in->access.indices[0]) != out.loop_i) {
    return fail("input dim 0 must be the input-map loop");
  }
  std::int64_t stride_r = 0, stride_c = 0;
  if (!matches_strided(in->access.indices[1], out.loop_r, out.loop_p,
                       &stride_r)) {
    return fail("input dim 1 must be stride*r + p");
  }
  if (!matches_strided(in->access.indices[2], out.loop_c, out.loop_q,
                       &stride_c)) {
    return fail("input dim 2 must be stride*c + q");
  }
  if (stride_r != stride_c) return fail("row/column strides must match");
  if (nest.loop(out.loop_p).trip != nest.loop(out.loop_q).trip) {
    return fail("kernel must be square (equal p and q trip counts)");
  }

  // Distinctness of the six roles.
  const std::size_t roles[6] = {out.loop_o, out.loop_i, out.loop_c,
                                out.loop_r, out.loop_p, out.loop_q};
  for (int a = 0; a < 6; ++a) {
    for (int b = a + 1; b < 6; ++b) {
      if (roles[a] == roles[b]) return fail("loop roles must be distinct");
    }
  }

  out.layer.name = "parsed_conv";
  out.layer.out_maps = nest.loop(out.loop_o).trip;
  out.layer.in_maps = nest.loop(out.loop_i).trip;
  out.layer.out_rows = nest.loop(out.loop_r).trip;
  out.layer.out_cols = nest.loop(out.loop_c).trip;
  out.layer.kernel = nest.loop(out.loop_p).trip;
  out.layer.stride = stride_r;
  out.layer.groups = 1;
  out.ok = true;
  return out;
}

}  // namespace sasynth
