#include "frontend/flow.h"

#include "codegen/host_gen.h"
#include "codegen/report_gen.h"
#include "util/strings.h"

namespace sasynth {

FlowResult run_automation_flow(const std::string& source,
                               const FlowOptions& options) {
  FlowResult result;

  // 1. Front end: parse and validate.
  result.parse = parse_loop_nest(source);
  if (!result.parse.ok) {
    result.error = "parse error: " + result.parse.error;
    return result;
  }
  if (options.require_pragma && !result.parse.has_pragma_word("systolic")) {
    result.error = "input is not annotated with '#pragma ... systolic'";
    return result;
  }

  // 2. Pattern analysis: recover the convolution descriptor.
  result.conv = extract_conv_layer(result.parse.nest);
  if (!result.conv.ok) {
    result.error = "unsupported loop nest: " + result.conv.error;
    return result;
  }

  // 3. Design space exploration (two phases, §4).
  const DesignSpaceExplorer explorer(options.device, options.dtype,
                                     options.dse);
  result.dse = explorer.explore(result.parse.nest);
  if (result.dse.empty()) {
    result.error =
        "design space exploration found no valid design (constraints too "
        "tight for this device)";
    return result;
  }
  result.best = *result.dse.best();

  // 4. Template instantiation: kernel + host + report.
  result.kernel = generate_opencl_kernel(result.parse.nest, result.best.design,
                                         result.conv.layer, options.dtype);
  result.host_program = generate_host_program(
      result.parse.nest, result.best.design, result.conv.layer, options.dtype);
  result.report = generate_dse_report(result.parse.nest, result.dse,
                                      result.conv.layer, options.device,
                                      options.dtype);
  result.ok = true;
  return result;
}

std::string render_conv_source(const ConvLayerDesc& layer) {
  std::string out = "#pragma sasynth systolic\n";
  auto emit_for = [&out](int depth, const char* var, std::int64_t bound) {
    out += std::string(static_cast<std::size_t>(2 * depth), ' ') +
           strformat("for (%s = 0; %s < %lld; %s++)\n", var, var,
                     static_cast<long long>(bound), var);
  };
  emit_for(0, "o", layer.out_maps);
  emit_for(1, "i", layer.in_maps);
  emit_for(2, "c", layer.out_cols);
  emit_for(3, "r", layer.out_rows);
  emit_for(4, "p", layer.kernel);
  emit_for(5, "q", layer.kernel);
  if (layer.stride == 1) {
    out += "            OUT[o][r][c] += W[o][i][p][q] * IN[i][r + p][c + q];\n";
  } else {
    out += strformat(
        "            OUT[o][r][c] += W[o][i][p][q] * IN[i][%lld*r + p][%lld*c "
        "+ q];\n",
        static_cast<long long>(layer.stride),
        static_cast<long long>(layer.stride));
  }
  return out;
}

}  // namespace sasynth
