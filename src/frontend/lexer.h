// Tokenizer for the pragma-annotated C loop-nest input (paper Fig. 6, left).
//
// The accepted language is the restricted C subset the paper's users write:
// perfectly nested counted for-loops around one multiply-accumulate
// statement, optionally preceded by a `#pragma` line. This replaces the ROSE
// front end of the original flow.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sasynth {

enum class TokenKind {
  kIdent,      ///< identifiers and keywords (for, int, ...)
  kNumber,     ///< decimal integer literal
  kPunct,      ///< one of ( ) [ ] { } ; < = + * and the digraphs ++ +=
  kPragma,     ///< a whole "#pragma ..." line (text without the '#')
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  std::int64_t value = 0;  ///< for kNumber
  int line = 0;

  bool is_ident(const char* s) const;
  bool is_punct(const char* s) const;
};

/// Tokenizes `source`. On lexical error returns false and sets `error`
/// ("line N: message"). Line comments (//...) are skipped.
bool lex(const std::string& source, std::vector<Token>* tokens,
         std::string* error);

}  // namespace sasynth
