// Recursive-descent parser: pragma-annotated perfect loop nest -> LoopNest IR.
//
// Grammar (C subset of paper Fig. 6):
//   program := pragma* loop
//   loop    := 'for' '(' ['int'] id '=' NUM ';' id '<' NUM ';' id '++' ')'
//              ( '{' inner '}' | inner )
//   inner   := loop | stmt
//   stmt    := access '+=' access '*' access ';'
//   access  := id ('[' expr ']')+
//   expr    := term ('+' term)*
//   term    := NUM '*' id | id '*' NUM | id | NUM
//
// The loop variable must match in all three header positions; index
// expressions may only reference enclosing loop variables.
#pragma once

#include <string>
#include <vector>

#include "loopnest/loop_nest.h"

namespace sasynth {

struct ParseResult {
  bool ok = false;
  std::string error;                ///< "line N: message" when !ok
  std::vector<std::string> pragmas; ///< text of leading #pragma lines
  LoopNest nest;

  /// True if any pragma mentions the given word (e.g. "systolic").
  bool has_pragma_word(const std::string& word) const;
};

/// Parses a source string into a LoopNest.
ParseResult parse_loop_nest(const std::string& source);

}  // namespace sasynth
