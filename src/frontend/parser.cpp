#include "frontend/parser.h"

#include <cassert>

#include "frontend/lexer.h"
#include "util/strings.h"

namespace sasynth {

bool ParseResult::has_pragma_word(const std::string& word) const {
  for (const std::string& pragma : pragmas) {
    for (const std::string& token : split_ws(pragma)) {
      if (token == word) return true;
    }
  }
  return false;
}

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  ParseResult run() {
    ParseResult result;
    while (peek().kind == TokenKind::kPragma) {
      result.pragmas.push_back(next().text);
    }
    if (!parse_loop(&result.nest)) {
      result.error = error_;
      return result;
    }
    if (peek().kind != TokenKind::kEnd) {
      result.error = err_here("trailing tokens after the loop nest");
      return result;
    }
    const std::string nest_error = result.nest.validate();
    if (!nest_error.empty()) {
      result.error = "line 1: " + nest_error;
      return result;
    }
    result.ok = true;
    return result;
  }

 private:
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& next() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }

  std::string err_here(const std::string& msg) const {
    return "line " + std::to_string(peek().line) + ": " + msg;
  }
  bool fail(const std::string& msg) {
    if (error_.empty()) error_ = err_here(msg);
    return false;
  }
  bool expect_punct(const char* p) {
    if (!peek().is_punct(p)) {
      return fail(std::string("expected '") + p + "', got '" + peek().text + "'");
    }
    next();
    return true;
  }

  std::size_t find_loop_var(const std::string& name) const {
    for (std::size_t l = 0; l < loop_vars_.size(); ++l) {
      if (loop_vars_[l] == name) return l;
    }
    return static_cast<std::size_t>(-1);
  }

  bool parse_loop(LoopNest* nest) {
    if (!peek().is_ident("for")) return fail("expected 'for'");
    next();
    if (!expect_punct("(")) return false;
    if (peek().is_ident("int")) next();
    if (peek().kind != TokenKind::kIdent) return fail("expected loop variable");
    const std::string var = next().text;
    if (find_loop_var(var) != static_cast<std::size_t>(-1)) {
      return fail("loop variable '" + var + "' shadows an enclosing loop");
    }
    if (!expect_punct("=")) return false;
    if (peek().kind != TokenKind::kNumber || peek().value != 0) {
      return fail("loops must start at 0");
    }
    next();
    if (!expect_punct(";")) return false;
    if (peek().kind != TokenKind::kIdent || peek().text != var) {
      return fail("condition must test the loop variable '" + var + "'");
    }
    next();
    if (!expect_punct("<")) return false;
    if (peek().kind != TokenKind::kNumber) return fail("expected loop bound");
    const std::int64_t bound = next().value;
    if (bound < 1) return fail("loop bound must be >= 1");
    if (!expect_punct(";")) return false;
    if (peek().kind != TokenKind::kIdent || peek().text != var) {
      return fail("increment must use the loop variable '" + var + "'");
    }
    next();
    if (!expect_punct("++")) return false;
    if (!expect_punct(")")) return false;

    nest->add_loop(var, bound);
    loop_vars_.push_back(var);

    const bool braced = peek().is_punct("{");
    if (braced) next();
    bool ok;
    if (peek().is_ident("for")) {
      ok = parse_loop(nest);
    } else {
      ok = parse_statement(nest);
    }
    if (!ok) return false;
    if (braced && !expect_punct("}")) return false;
    loop_vars_.pop_back();
    return true;
  }

  bool parse_statement(LoopNest* nest) {
    AccessFunction lhs;
    if (!parse_access(&lhs)) return false;
    if (!expect_punct("+=")) return false;
    AccessFunction a;
    if (!parse_access(&a)) return false;
    if (!expect_punct("*")) return false;
    AccessFunction b;
    if (!parse_access(&b)) return false;
    if (!expect_punct(";")) return false;
    nest->add_access(ArrayAccess{std::move(lhs), AccessRole::kReduce});
    nest->add_access(ArrayAccess{std::move(a), AccessRole::kRead});
    nest->add_access(ArrayAccess{std::move(b), AccessRole::kRead});
    return true;
  }

  bool parse_access(AccessFunction* access) {
    if (peek().kind != TokenKind::kIdent) return fail("expected array name");
    access->array = next().text;
    if (!peek().is_punct("[")) return fail("expected '[' after array name");
    while (peek().is_punct("[")) {
      next();
      AffineExpr expr;
      if (!parse_expr(&expr)) return false;
      access->indices.push_back(std::move(expr));
      if (!expect_punct("]")) return false;
    }
    return true;
  }

  bool parse_expr(AffineExpr* expr) {
    *expr = AffineExpr(loop_vars_.size());
    if (!parse_term(expr)) return false;
    while (peek().is_punct("+")) {
      next();
      if (!parse_term(expr)) return false;
    }
    return true;
  }

  bool parse_term(AffineExpr* expr) {
    if (peek().kind == TokenKind::kNumber) {
      const std::int64_t value = next().value;
      if (peek().is_punct("*")) {
        next();
        if (peek().kind != TokenKind::kIdent) {
          return fail("expected iterator after '*'");
        }
        return add_iter_term(expr, next().text, value);
      }
      expr->set_constant(expr->constant() + value);
      return true;
    }
    if (peek().kind == TokenKind::kIdent) {
      const std::string name = next().text;
      if (peek().is_punct("*")) {
        next();
        if (peek().kind != TokenKind::kNumber) {
          return fail("expected coefficient after '*'");
        }
        return add_iter_term(expr, name, next().value);
      }
      return add_iter_term(expr, name, 1);
    }
    return fail("expected index term");
  }

  bool add_iter_term(AffineExpr* expr, const std::string& name,
                     std::int64_t coeff) {
    const std::size_t loop = find_loop_var(name);
    if (loop == static_cast<std::size_t>(-1)) {
      return fail("'" + name + "' is not an enclosing loop variable");
    }
    expr->add_term(loop, coeff);
    return true;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::vector<std::string> loop_vars_;
  std::string error_;
};

}  // namespace

ParseResult parse_loop_nest(const std::string& source) {
  ParseResult result;
  std::vector<Token> tokens;
  std::string lex_error;
  if (!lex(source, &tokens, &lex_error)) {
    result.error = lex_error;
    return result;
  }
  Parser parser(std::move(tokens));
  return parser.run();
}

}  // namespace sasynth
