#include "frontend/lexer.h"

#include <cctype>

#include "util/strings.h"

namespace sasynth {

bool Token::is_ident(const char* s) const {
  return kind == TokenKind::kIdent && text == s;
}

bool Token::is_punct(const char* s) const {
  return kind == TokenKind::kPunct && text == s;
}

bool lex(const std::string& source, std::vector<Token>* tokens,
         std::string* error) {
  tokens->clear();
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = source.size();

  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = "line " + std::to_string(line) + ": " + msg;
    return false;
  };

  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (c == '#') {
      // Whole-line pragma/preprocessor token.
      const std::size_t start = i + 1;
      std::size_t end = start;
      while (end < n && source[end] != '\n') ++end;
      Token t;
      t.kind = TokenKind::kPragma;
      t.text = trim(source.substr(start, end - start));
      t.line = line;
      tokens->push_back(std::move(t));
      i = end;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      const std::size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(source[i])) ||
                       source[i] == '_')) {
        ++i;
      }
      Token t;
      t.kind = TokenKind::kIdent;
      t.text = source.substr(start, i - start);
      t.line = line;
      tokens->push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      const std::size_t start = i;
      while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) ++i;
      if (i < n && (std::isalpha(static_cast<unsigned char>(source[i])) ||
                    source[i] == '_')) {
        return fail("malformed number");
      }
      Token t;
      t.kind = TokenKind::kNumber;
      t.text = source.substr(start, i - start);
      t.value = std::stoll(t.text);
      t.line = line;
      tokens->push_back(std::move(t));
      continue;
    }
    // Punctuation, including the ++ and += digraphs.
    static const char* singles = "()[]{};<=+*";
    if (std::string(singles).find(c) != std::string::npos) {
      Token t;
      t.kind = TokenKind::kPunct;
      t.line = line;
      if (c == '+' && i + 1 < n && (source[i + 1] == '+' || source[i + 1] == '=')) {
        t.text = source.substr(i, 2);
        i += 2;
      } else {
        t.text = std::string(1, c);
        ++i;
      }
      tokens->push_back(std::move(t));
      continue;
    }
    return fail(std::string("unexpected character '") + c + "'");
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.line = line;
  tokens->push_back(std::move(end));
  return true;
}

}  // namespace sasynth
