// End-to-end push-button automation flow (paper §5.1, Fig. 6):
//   C source -> front end (parse + analysis) -> design space exploration
//   -> template instantiation (OpenCL kernel + host) -> design report.
//
// Users write the annotated loop nest; everything else is derived. The
// hardware synthesis step is replaced by the pseudo-P&R model inside the DSE
// (phase 2).
#pragma once

#include <string>

#include "codegen/opencl_gen.h"
#include "core/dse.h"
#include "fpga/datatype.h"
#include "fpga/device.h"
#include "frontend/conv_extract.h"
#include "frontend/parser.h"

namespace sasynth {

struct FlowOptions {
  FpgaDevice device;
  DataType dtype = DataType::kFloat32;
  DseOptions dse;
  /// Require a "#pragma ... systolic" annotation on the input (the paper's
  /// opt-in marker). Disabled by default for programmatic use.
  bool require_pragma = false;
};

struct FlowResult {
  bool ok = false;
  std::string error;

  ParseResult parse;
  ConvExtraction conv;
  DseResult dse;
  DseCandidate best;        ///< the design that will be built

  KernelSources kernel;
  std::string host_program;
  std::string report;
};

/// Runs the complete flow on a source string.
FlowResult run_automation_flow(const std::string& source,
                               const FlowOptions& options);

/// Renders the canonical annotated C source for a layer — what a user of the
/// paper's framework would write (also used to round-trip-test the parser).
std::string render_conv_source(const ConvLayerDesc& layer);

}  // namespace sasynth
