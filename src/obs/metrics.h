// Process-wide metrics substrate: monotonic counters, gauges, and
// fixed-bucket latency histograms with approximate percentiles, behind a
// near-zero-cost disabled path.
//
// Design rules (docs/OBSERVABILITY.md is the user-facing contract):
//   * Recording never allocates, locks, or branches beyond one relaxed
//     atomic load of the global enable flag — instruments may live on hot
//     paths (thread-pool ranges, per-request serving), though per-item DSE
//     inner loops still must not touch the registry (they aggregate into
//     DseStats and publish once per exploration).
//   * Handles returned by the registry are stable for the registry's
//     lifetime; call sites resolve a name once and keep the reference.
//   * Disabled (the default) means values stay zero: recording is gated,
//     reading is always allowed. sasynthd enables metrics at startup;
//     sasynth_cli enables them for --metrics-out/--trace-out runs.
//   * Metrics never feed back into computation, so enabling them cannot
//     perturb DSE results (tests/obs/obs_determinism_test.cpp pins this).
//
// This library sits below util (thread_pool is instrumented with it), so it
// depends on nothing but the standard library.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sasynth::obs {

/// Global metrics switch. Off by default: a process that never opts in pays
/// one relaxed load per instrument and records nothing.
bool metrics_enabled();
void set_metrics_enabled(bool enabled);

/// Monotonic event counter (prom type `counter`; name them `*_total`).
class Counter {
 public:
  void add(std::int64_t n = 1) {
    if (metrics_enabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-write-wins instantaneous value (prom type `gauge`).
class Gauge {
 public:
  void set(std::int64_t v) {
    if (metrics_enabled()) value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t n) {
    if (metrics_enabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// The shared fixed bucket ladder for latency histograms, in milliseconds:
/// a 1-2-5 series from 1 µs to 60 s (plus the implicit +Inf overflow).
/// One ladder everywhere keeps every latency metric comparable and the
/// serialized formats stable.
const std::vector<double>& latency_buckets_ms();

/// Fixed-bucket histogram with prom-style cumulative serialization and
/// linear-interpolation percentile estimates (exact only at bucket edges;
/// the ladder is dense enough for p50/p95/p99 reporting).
class Histogram {
 public:
  /// `bounds` are ascending upper bucket edges; one overflow bucket is
  /// appended implicitly. Defaults to latency_buckets_ms().
  explicit Histogram(std::vector<double> bounds = latency_buckets_ms());

  void observe(double value);

  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Approximate value at quantile q in (0, 1]; 0 when empty. Values in the
  /// overflow bucket report the last finite bound.
  double percentile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) count; index bounds().size() is overflow.
  std::int64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::int64_t>[]> buckets_;  ///< bounds+overflow
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Name -> instrument registry. Registration takes a mutex; recording
/// through a returned reference is lock-free. One process-global instance
/// (`global()`) serves the whole flow; tests may build private registries.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the named instrument, creating it on first use. References
  /// stay valid for the registry's lifetime. A name identifies exactly one
  /// kind; reusing it for another kind creates a distinct instrument but
  /// collides in the prom rendering — follow the `*_total`/`*_ms` naming
  /// convention and it cannot happen.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  /// Prometheus text exposition (sorted by name; `prefix` prepended to every
  /// metric name). Histogram buckets render cumulatively with `le` labels.
  std::string to_prom(const std::string& prefix = "sasynth_") const;

  /// JSON snapshot: {"counters": {...}, "gauges": {...}, "histograms":
  /// {name: {count, sum, p50, p95, p99, buckets: [{le, count}, ...]}}}.
  /// Bucket counts here are per-bucket, not cumulative.
  std::string to_json() const;

  /// Zeroes every registered value. Handles stay valid (tests, bench reruns).
  void reset_values();

  static MetricsRegistry& global();

 private:
  template <typename T>
  struct Named {
    std::string name;
    std::unique_ptr<T> instrument;
  };

  template <typename T>
  T& find_or_create(std::vector<Named<T>>& list, const std::string& name);

  mutable std::mutex mutex_;
  std::vector<Named<Counter>> counters_;
  std::vector<Named<Gauge>> gauges_;
  std::vector<Named<Histogram>> histograms_;
};

}  // namespace sasynth::obs
