#include "obs/metrics.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

namespace sasynth::obs {

namespace {

std::atomic<bool> g_metrics_enabled{false};

/// Minimal printf-to-string (obs sits below util, so no strformat here).
std::string fmt(const char* format, ...) {
  char buffer[128];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  return buffer;
}

/// Doubles in serialized output: %g with enough digits to round-trip the
/// values we emit (bucket edges, sums, percentiles) deterministically.
std::string fmt_double(double v) { return fmt("%.12g", v); }

}  // namespace

bool metrics_enabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

const std::vector<double>& latency_buckets_ms() {
  static const std::vector<double> kBuckets = {
      0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1,  0.2,  0.5,   1.0,   2.0,
      5.0,   10.0,  20.0,  50.0, 100., 200., 500., 1e3,  2e3,   5e3,
      1e4,   2e4,   6e4};
  return kBuckets;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  buckets_ = std::make_unique<std::atomic<std::int64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double value) {
  if (!metrics_enabled()) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

double Histogram::percentile(double q) const {
  const std::int64_t total = count();
  if (total <= 0) return 0.0;
  const std::int64_t rank = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(q * static_cast<double>(total) + 0.5));
  std::int64_t cumulative = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    const std::int64_t in_bucket = bucket_count(i);
    if (cumulative + in_bucket < rank) {
      cumulative += in_bucket;
      continue;
    }
    if (i == bounds_.size()) return bounds_.empty() ? 0.0 : bounds_.back();
    const double lower = i == 0 ? 0.0 : bounds_[i - 1];
    const double upper = bounds_[i];
    if (in_bucket <= 0) return upper;
    const double frac = static_cast<double>(rank - cumulative) /
                        static_cast<double>(in_bucket);
    return lower + (upper - lower) * frac;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

template <typename T>
T& MetricsRegistry::find_or_create(std::vector<Named<T>>& list,
                                   const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Named<T>& entry : list) {
    if (entry.name == name) return *entry.instrument;
  }
  list.push_back(Named<T>{name, std::make_unique<T>()});
  return *list.back().instrument;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return find_or_create(counters_, name);
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return find_or_create(gauges_, name);
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return find_or_create(histograms_, name);
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Named<Histogram>& entry : histograms_) {
    if (entry.name == name) return *entry.instrument;
  }
  histograms_.push_back(
      Named<Histogram>{name, std::make_unique<Histogram>(std::move(bounds))});
  return *histograms_.back().instrument;
}

namespace {

/// Snapshot of (name, instrument*) pairs sorted by name, so both serialized
/// formats are independent of registration order.
template <typename T, typename List>
std::vector<std::pair<std::string, const T*>> sorted_view(const List& list) {
  std::vector<std::pair<std::string, const T*>> view;
  view.reserve(list.size());
  for (const auto& entry : list) {
    view.emplace_back(entry.name, entry.instrument.get());
  }
  std::sort(view.begin(), view.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return view;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += fmt("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::to_prom(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, c] : sorted_view<Counter>(counters_)) {
    out += "# TYPE " + prefix + name + " counter\n";
    out += prefix + name + " " + fmt("%lld", static_cast<long long>(c->value())) +
           "\n";
  }
  for (const auto& [name, g] : sorted_view<Gauge>(gauges_)) {
    out += "# TYPE " + prefix + name + " gauge\n";
    out += prefix + name + " " + fmt("%lld", static_cast<long long>(g->value())) +
           "\n";
  }
  for (const auto& [name, h] : sorted_view<Histogram>(histograms_)) {
    out += "# TYPE " + prefix + name + " histogram\n";
    std::int64_t cumulative = 0;
    for (std::size_t i = 0; i < h->bounds().size(); ++i) {
      cumulative += h->bucket_count(i);
      out += prefix + name + "_bucket{le=\"" + fmt_double(h->bounds()[i]) +
             "\"} " + fmt("%lld", static_cast<long long>(cumulative)) + "\n";
    }
    cumulative += h->bucket_count(h->bounds().size());
    out += prefix + name + "_bucket{le=\"+Inf\"} " +
           fmt("%lld", static_cast<long long>(cumulative)) + "\n";
    out += prefix + name + "_sum " + fmt_double(h->sum()) + "\n";
    out += prefix + name + "_count " +
           fmt("%lld", static_cast<long long>(h->count())) + "\n";
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : sorted_view<Counter>(counters_)) {
    out += std::string(first ? "" : ",") + "\n    \"" + json_escape(name) +
           "\": " + fmt("%lld", static_cast<long long>(c->value()));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : sorted_view<Gauge>(gauges_)) {
    out += std::string(first ? "" : ",") + "\n    \"" + json_escape(name) +
           "\": " + fmt("%lld", static_cast<long long>(g->value()));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : sorted_view<Histogram>(histograms_)) {
    out += std::string(first ? "" : ",") + "\n    \"" + json_escape(name) +
           "\": {\"count\": " + fmt("%lld", static_cast<long long>(h->count())) +
           ", \"sum\": " + fmt_double(h->sum()) +
           ", \"p50\": " + fmt_double(h->percentile(0.50)) +
           ", \"p95\": " + fmt_double(h->percentile(0.95)) +
           ", \"p99\": " + fmt_double(h->percentile(0.99)) + ", \"buckets\": [";
    for (std::size_t i = 0; i <= h->bounds().size(); ++i) {
      const std::string le =
          i < h->bounds().size() ? fmt_double(h->bounds()[i]) : "\"+Inf\"";
      out += std::string(i == 0 ? "" : ", ") + "{\"le\": " + le +
             ", \"count\": " +
             fmt("%lld", static_cast<long long>(h->bucket_count(i))) + "}";
    }
    out += "]}";
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : counters_) entry.instrument->reset();
  for (auto& entry : gauges_) entry.instrument->reset();
  for (auto& entry : histograms_) entry.instrument->reset();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace sasynth::obs
