#include "obs/trace.h"

#include <cstdio>

namespace sasynth::obs {

namespace {

std::atomic<bool> g_trace_enabled{false};
std::atomic<int> g_next_thread_id{0};

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string fmt_us(double us) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  return buf;
}

}  // namespace

bool trace_enabled() { return g_trace_enabled.load(std::memory_order_relaxed); }

void set_trace_enabled(bool enabled) {
  // Pin the global recorder's epoch before the first span can open, so no
  // recorded span starts before the epoch (negative ts confuses viewers).
  if (enabled) TraceRecorder::global();
  g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

TraceRecorder::TraceRecorder(std::size_t capacity)
    : epoch_(std::chrono::steady_clock::now()), capacity_(capacity) {}

void TraceRecorder::record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(std::move(event));
}

double TraceRecorder::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

std::string TraceRecorder::to_chrome_trace() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    out += std::string(i == 0 ? "" : ",") + "\n  {\"name\": \"" +
           escape(e.name) + "\", \"cat\": \"" + escape(e.category) +
           "\", \"ph\": \"X\", \"pid\": 1, \"tid\": " + std::to_string(e.tid) +
           ", \"ts\": " + fmt_us(e.ts_us) + ", \"dur\": " + fmt_us(e.dur_us);
    if (!e.args.empty()) {
      out += ", \"args\": {";
      for (std::size_t a = 0; a < e.args.size(); ++a) {
        out += std::string(a == 0 ? "" : ", ") + "\"" +
               escape(e.args[a].first) +
               "\": " + std::to_string(e.args[a].second);
      }
      out += "}";
    }
    out += "}";
  }
  out += events_.empty() ? "]}\n" : "\n]}\n";
  return out;
}

int TraceRecorder::thread_id() {
  thread_local const int id =
      g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

ScopedSpan::ScopedSpan(const char* name, const char* category)
    : name_(name),
      category_(category),
      start_(std::chrono::steady_clock::now()),
      active_(trace_enabled()) {}

ScopedSpan::~ScopedSpan() {
  if (!active_ || !trace_enabled()) return;
  TraceRecorder& recorder = TraceRecorder::global();
  TraceEvent event;
  event.name = name_;
  event.category = category_;
  event.tid = TraceRecorder::thread_id();
  const double end_us = recorder.now_us();
  const double dur_us = elapsed_seconds() * 1e6;
  event.ts_us = end_us - dur_us;
  event.dur_us = dur_us;
  event.args = std::move(args_);
  recorder.record(std::move(event));
}

void ScopedSpan::arg(const char* key, std::int64_t value) {
  if (active_) args_.emplace_back(key, value);
}

double ScopedSpan::elapsed_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

}  // namespace sasynth::obs
