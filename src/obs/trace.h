// Phase tracing: nestable spans recorded as Chrome trace_event "complete"
// events, dumpable as JSON for chrome://tracing or https://ui.perfetto.dev.
//
// A span is an RAII scope (ScopedSpan) on one thread; the recorder stores
// (name, category, thread, start, duration, args). Spans on the same thread
// nest by time containment — exactly how the Chrome viewer draws them — so
// "phase-1 sweep" naturally contains its per-shard spans. Timestamps come
// from one steady clock anchored at the recorder's epoch; they never feed
// back into any computation, so tracing cannot perturb DSE results.
//
// Cost model: with tracing disabled (the default), a ScopedSpan is two
// steady_clock reads and one relaxed flag load — spans wrap phases and
// work-item ranges, never model evaluations, so even the enabled path stays
// under the <2% overhead budget (bench/bench_obs_overhead.cpp enforces it).
// The recorder buffer is bounded; events beyond the capacity are counted as
// dropped rather than grown without bound.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace sasynth::obs {

/// Global tracing switch, independent of the metrics switch (traces grow
/// memory; metrics do not). Off by default.
bool trace_enabled();
void set_trace_enabled(bool enabled);

/// One completed span ("ph":"X" in the Chrome trace format).
struct TraceEvent {
  std::string name;
  std::string category;
  int tid = 0;         ///< stable small id per OS thread (first span = 0)
  double ts_us = 0.0;  ///< start, microseconds since the recorder epoch
  double dur_us = 0.0;
  std::vector<std::pair<std::string, std::int64_t>> args;
};

class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = 1 << 20);
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Appends one event (thread-safe). Beyond capacity the event is dropped
  /// and counted. Also the test hook for building traces with fixed
  /// timestamps — serialization golden tests depend on that determinism.
  void record(TraceEvent event);

  /// Microseconds since this recorder's construction (its trace epoch).
  double now_us() const;

  std::vector<TraceEvent> snapshot() const;
  std::size_t size() const;
  std::int64_t dropped() const { return dropped_.load(); }
  void clear();

  /// Chrome trace_event JSON ({"traceEvents": [...]}), events in recorded
  /// order. Load in chrome://tracing or Perfetto.
  std::string to_chrome_trace() const;

  /// Stable per-thread integer id (assigned on first use, process-wide).
  static int thread_id();

  static TraceRecorder& global();

 private:
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::size_t capacity_;
  std::atomic<std::int64_t> dropped_{0};
};

/// RAII span against the global recorder. Also the single timing primitive
/// of the codebase: elapsed_seconds() works whether or not tracing is
/// enabled, so DseStats phase timers and the benches read the same clock the
/// trace records.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* category = "sasynth");
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a key/value pair to the emitted event (no-op when tracing was
  /// disabled at construction).
  void arg(const char* key, std::int64_t value);

  /// Wall seconds since construction; always available.
  double elapsed_seconds() const;

 private:
  const char* name_;
  const char* category_;
  std::chrono::steady_clock::time_point start_;
  bool active_;  ///< tracing was on when the span opened
  std::vector<std::pair<std::string, std::int64_t>> args_;
};

}  // namespace sasynth::obs
