#include "nn/quantize.h"

#include <cassert>
#include <cmath>

#include "util/strings.h"

namespace sasynth {

double QuantizedTensor::scale() const { return std::ldexp(1.0, -frac_bits); }

namespace {

int choose_frac_bits(const Tensor& t, int bits) {
  float max_abs = 0.0F;
  for (std::int64_t i = 0; i < t.size(); ++i) {
    max_abs = std::max(max_abs, std::fabs(t.data()[i]));
  }
  if (max_abs == 0.0F) return bits - 1;
  // Want max_abs * 2^frac <= 2^(bits-1) - 1; find the largest such frac.
  int frac = bits - 1;
  const double limit = std::ldexp(1.0, bits - 1) - 1.0;
  while (frac > -63 && max_abs * std::ldexp(1.0, frac) > limit) --frac;
  return frac;
}

std::int32_t saturate(double v, int bits) {
  const double lo = -std::ldexp(1.0, bits - 1);
  const double hi = std::ldexp(1.0, bits - 1) - 1.0;
  if (v < lo) v = lo;
  if (v > hi) v = hi;
  return static_cast<std::int32_t>(v);
}

}  // namespace

QuantizedTensor quantize(const Tensor& t, int bits) {
  return quantize_with_frac(t, bits, choose_frac_bits(t, bits));
}

QuantizedTensor quantize_with_frac(const Tensor& t, int bits, int frac_bits) {
  assert(bits >= 2 && bits <= 32);
  QuantizedTensor q;
  q.shape = t.shape();
  q.bits = bits;
  q.frac_bits = frac_bits;
  q.values.resize(static_cast<std::size_t>(t.size()));
  const double scale = std::ldexp(1.0, frac_bits);
  for (std::int64_t i = 0; i < t.size(); ++i) {
    q.values[static_cast<std::size_t>(i)] =
        saturate(std::nearbyint(static_cast<double>(t.data()[i]) * scale), bits);
  }
  return q;
}

Tensor dequantize(const QuantizedTensor& q) {
  Tensor t(q.shape);
  const double scale = q.scale();
  for (std::int64_t i = 0; i < t.size(); ++i) {
    t.data()[i] = static_cast<float>(q.values[static_cast<std::size_t>(i)] * scale);
  }
  return t;
}

Tensor fixed_point_conv(const ConvLayerDesc& layer, const ConvData& data,
                        int weight_bits, int pixel_bits) {
  const QuantizedTensor w = quantize(data.weights, weight_bits);
  const QuantizedTensor in = quantize(data.input, pixel_bits);
  Tensor out({layer.out_maps, layer.out_rows, layer.out_cols});
  const double out_scale = std::ldexp(1.0, -(w.frac_bits + in.frac_bits));

  const std::int64_t in_rows = layer.in_rows();
  const std::int64_t in_cols = layer.in_cols();
  auto in_at = [&](std::int64_t i, std::int64_t r, std::int64_t c) {
    return in.values[static_cast<std::size_t>((i * in_rows + r) * in_cols + c)];
  };
  auto w_at = [&](std::int64_t o, std::int64_t i, std::int64_t p,
                  std::int64_t q) {
    return w.values[static_cast<std::size_t>(
        ((o * layer.in_maps + i) * layer.kernel + p) * layer.kernel + q)];
  };

  for (std::int64_t o = 0; o < layer.out_maps; ++o) {
    for (std::int64_t r = 0; r < layer.out_rows; ++r) {
      for (std::int64_t c = 0; c < layer.out_cols; ++c) {
        std::int64_t acc = 0;  // 64-bit accumulate: headroom is free in C++
        for (std::int64_t i = 0; i < layer.in_maps; ++i) {
          for (std::int64_t p = 0; p < layer.kernel; ++p) {
            for (std::int64_t q = 0; q < layer.kernel; ++q) {
              acc += static_cast<std::int64_t>(w_at(o, i, p, q)) *
                     in_at(i, r * layer.stride + p, c * layer.stride + q);
            }
          }
        }
        out.at(o, r, c) = static_cast<float>(static_cast<double>(acc) * out_scale);
      }
    }
  }
  return out;
}

QuantErrorReport compare_quantized(const Tensor& reference,
                                   const Tensor& fixed) {
  QuantErrorReport report;
  report.max_abs_err = Tensor::max_abs_diff(reference, fixed);
  report.rms_err = Tensor::rms_diff(reference, fixed);
  double acc = 0.0;
  for (std::int64_t i = 0; i < reference.size(); ++i) {
    acc += static_cast<double>(reference.data()[i]) * reference.data()[i];
  }
  report.ref_rms =
      reference.size() > 0
          ? std::sqrt(acc / static_cast<double>(reference.size()))
          : 0.0;
  report.relative_rms =
      report.ref_rms > 0.0 ? report.rms_err / report.ref_rms : 0.0;
  return report;
}

std::string QuantErrorReport::summary() const {
  return strformat(
      "max_abs_err=%.3g rms_err=%.3g ref_rms=%.3g relative_rms=%.3g%%",
      max_abs_err, rms_err, ref_rms, relative_rms * 100.0);
}

}  // namespace sasynth
