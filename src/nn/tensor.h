// Dense row-major float tensor used by the reference convolution and the
// cycle-accurate simulator.
//
// The framework only needs small, simple tensors (synthetic layer inputs and
// weights), so this is a value type over std::vector<float> with explicit
// shape/stride bookkeeping — no views, no broadcasting.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace sasynth {

class Rng;

class Tensor {
 public:
  /// Empty (rank-0, zero elements) tensor.
  Tensor() = default;

  /// Zero-initialized tensor of the given shape. All extents must be >= 1.
  explicit Tensor(std::vector<std::int64_t> shape);
  Tensor(std::initializer_list<std::int64_t> shape);

  const std::vector<std::int64_t>& shape() const { return shape_; }
  std::int64_t rank() const { return static_cast<std::int64_t>(shape_.size()); }
  std::int64_t dim(std::int64_t axis) const;
  std::int64_t size() const { return static_cast<std::int64_t>(data_.size()); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Element access (bounds-checked in debug builds).
  float& at(std::int64_t i0);
  float& at(std::int64_t i0, std::int64_t i1);
  float& at(std::int64_t i0, std::int64_t i1, std::int64_t i2);
  float& at(std::int64_t i0, std::int64_t i1, std::int64_t i2, std::int64_t i3);
  float at(std::int64_t i0) const;
  float at(std::int64_t i0, std::int64_t i1) const;
  float at(std::int64_t i0, std::int64_t i1, std::int64_t i2) const;
  float at(std::int64_t i0, std::int64_t i1, std::int64_t i2,
           std::int64_t i3) const;

  /// Linear offset of a multi-index (rank must match).
  std::int64_t offset(const std::vector<std::int64_t>& index) const;

  /// Fills with a constant.
  void fill(float value);

  /// Fills with deterministic uniform values in [lo, hi).
  void fill_random(Rng& rng, float lo = -1.0F, float hi = 1.0F);

  /// Max |a - b| over all elements. Shapes must match.
  static float max_abs_diff(const Tensor& a, const Tensor& b);

  /// Root-mean-square difference. Shapes must match.
  static double rms_diff(const Tensor& a, const Tensor& b);

  /// True if shapes match and every element differs by <= tol.
  static bool all_close(const Tensor& a, const Tensor& b, float tol);

  /// "[2 x 3 x 4]" for debugging.
  std::string shape_str() const;

 private:
  void init_strides();
  std::int64_t offset4(std::int64_t i0, std::int64_t i1, std::int64_t i2,
                       std::int64_t i3) const;

  std::vector<std::int64_t> shape_;
  std::vector<std::int64_t> strides_;
  std::vector<float> data_;
};

}  // namespace sasynth
