#include "nn/layer.h"

#include "util/math_util.h"
#include "util/strings.h"

namespace sasynth {

std::int64_t ConvLayerDesc::in_rows() const {
  return (out_rows - 1) * stride + kernel;
}

std::int64_t ConvLayerDesc::in_cols() const {
  return (out_cols - 1) * stride + kernel;
}

std::int64_t ConvLayerDesc::macs_per_group() const {
  return in_maps * out_maps * out_rows * out_cols * kernel * kernel;
}

std::int64_t ConvLayerDesc::total_macs() const {
  return macs_per_group() * groups;
}

std::int64_t ConvLayerDesc::total_ops() const { return 2 * total_macs(); }

std::int64_t ConvLayerDesc::weight_elems() const {
  return out_maps * in_maps * kernel * kernel;
}

std::int64_t ConvLayerDesc::input_elems() const {
  return in_maps * in_rows() * in_cols();
}

std::int64_t ConvLayerDesc::output_elems() const {
  return out_maps * out_rows * out_cols;
}

std::string ConvLayerDesc::validate() const {
  if (in_maps < 1) return "in_maps must be >= 1";
  if (out_maps < 1) return "out_maps must be >= 1";
  if (out_rows < 1) return "out_rows must be >= 1";
  if (out_cols < 1) return "out_cols must be >= 1";
  if (kernel < 1) return "kernel must be >= 1";
  if (stride < 1) return "stride must be >= 1";
  if (groups < 1) return "groups must be >= 1";
  return "";
}

std::string ConvLayerDesc::summary() const {
  return strformat("%s: (I,O,R,C,K)=(%lld,%lld,%lld,%lld,%lld) s%lld g%lld",
                   name.c_str(), static_cast<long long>(in_maps),
                   static_cast<long long>(out_maps),
                   static_cast<long long>(out_rows),
                   static_cast<long long>(out_cols),
                   static_cast<long long>(kernel),
                   static_cast<long long>(stride),
                   static_cast<long long>(groups));
}

bool ConvLayerDesc::operator==(const ConvLayerDesc& other) const {
  return name == other.name && in_maps == other.in_maps &&
         out_maps == other.out_maps && out_rows == other.out_rows &&
         out_cols == other.out_cols && kernel == other.kernel &&
         stride == other.stride && groups == other.groups;
}

ConvLayerDesc make_conv(std::string name, std::int64_t in_maps,
                        std::int64_t out_maps, std::int64_t out_size,
                        std::int64_t kernel, std::int64_t stride,
                        std::int64_t groups) {
  ConvLayerDesc layer;
  layer.name = std::move(name);
  layer.in_maps = in_maps;
  layer.out_maps = out_maps;
  layer.out_rows = out_size;
  layer.out_cols = out_size;
  layer.kernel = kernel;
  layer.stride = stride;
  layer.groups = groups;
  return layer;
}

ConvLayerDesc fold_strided_layer(const ConvLayerDesc& layer) {
  if (layer.stride == 1) return layer;
  ConvLayerDesc folded = layer;
  folded.name = layer.name + "_folded";
  folded.in_maps = layer.in_maps * layer.stride * layer.stride;
  folded.kernel = ceil_div(layer.kernel, layer.stride);
  folded.stride = 1;
  return folded;
}

}  // namespace sasynth
