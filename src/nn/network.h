// Whole-network descriptions and the two evaluation models from the paper.
//
// The paper evaluates AlexNet and VGG16 convolutional layers (fully connected
// layers can be converted to convolutions, §2.1, and are out of scope of the
// tables). AlexNet's grouped layers are described per group (matching the
// paper's layer-5 example) and conv1 is folded to stride 1 (§5.3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace sasynth {

struct Network {
  std::string name;
  std::vector<ConvLayerDesc> layers;

  /// Total conv ops per image (2 * MACs, including group replication).
  std::int64_t total_ops() const;

  /// Returns nullptr if no layer has that name.
  const ConvLayerDesc* find_layer(const std::string& layer_name) const;

  /// Multi-line human-readable listing.
  std::string summary() const;
};

/// AlexNet convolutional layers with per-group dimensions; conv1 is folded to
/// stride 1 when `fold_conv1` is set (the configuration used by the paper's
/// Table 4 design).
Network make_alexnet(bool fold_conv1 = true);

/// Raw (unfolded) AlexNet conv5 — the running example of §2.3 / Table 1:
/// (I,O,R,C,P,Q) = (192,128,13,13,3,3).
ConvLayerDesc alexnet_conv5();

/// VGG16's 13 convolutional layers (Table 5).
Network make_vgg16();

/// GoogLeNet (Inception v1) convolutional layers — the third model the
/// paper's introduction names. 57 conv layers: the three stem convolutions
/// plus nine inception modules, each contributing the 1x1 branch, the 3x3
/// reduce+conv pair, the 5x5 reduce+conv pair and the pool projection.
/// Exercises kernel sizes 1/3/5/7 and strides 1/2, demonstrating the DSE on
/// a much less regular layer mix than AlexNet/VGG.
Network make_googlenet();

/// A small synthetic network for tests: every dimension <= 8.
Network make_tiny_testnet();

/// Builds a bundled network by canonical name: "alexnet", "vgg16",
/// "googlenet" or "tiny" (the test network). Returns false (out untouched)
/// on an unknown name — the list a caller should echo is network_name_list().
bool parse_network_name(const std::string& name, Network* out);

/// "alexnet|vgg16|googlenet|tiny" for usage/error messages.
const char* network_name_list();

}  // namespace sasynth
