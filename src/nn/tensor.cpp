#include "nn/tensor.h"

#include <cassert>
#include <cmath>

#include "util/rng.h"
#include "util/strings.h"

namespace sasynth {

Tensor::Tensor(std::vector<std::int64_t> shape) : shape_(std::move(shape)) {
  init_strides();
}

Tensor::Tensor(std::initializer_list<std::int64_t> shape)
    : shape_(shape) {
  init_strides();
}

void Tensor::init_strides() {
  strides_.assign(shape_.size(), 1);
  std::int64_t total = 1;
  for (std::size_t i = shape_.size(); i-- > 0;) {
    assert(shape_[i] >= 1);
    strides_[i] = total;
    total *= shape_[i];
  }
  data_.assign(static_cast<std::size_t>(total), 0.0F);
}

std::int64_t Tensor::dim(std::int64_t axis) const {
  assert(axis >= 0 && axis < rank());
  return shape_[static_cast<std::size_t>(axis)];
}

std::int64_t Tensor::offset4(std::int64_t i0, std::int64_t i1, std::int64_t i2,
                             std::int64_t i3) const {
  // Unused trailing indices are passed as 0 with stride lookup guarded by rank.
  std::int64_t off = 0;
  const std::int64_t idx[4] = {i0, i1, i2, i3};
  for (std::int64_t a = 0; a < rank(); ++a) {
    assert(idx[a] >= 0 && idx[a] < shape_[static_cast<std::size_t>(a)]);
    off += idx[a] * strides_[static_cast<std::size_t>(a)];
  }
  return off;
}

float& Tensor::at(std::int64_t i0) {
  assert(rank() == 1);
  return data_[static_cast<std::size_t>(offset4(i0, 0, 0, 0))];
}
float& Tensor::at(std::int64_t i0, std::int64_t i1) {
  assert(rank() == 2);
  return data_[static_cast<std::size_t>(offset4(i0, i1, 0, 0))];
}
float& Tensor::at(std::int64_t i0, std::int64_t i1, std::int64_t i2) {
  assert(rank() == 3);
  return data_[static_cast<std::size_t>(offset4(i0, i1, i2, 0))];
}
float& Tensor::at(std::int64_t i0, std::int64_t i1, std::int64_t i2,
                  std::int64_t i3) {
  assert(rank() == 4);
  return data_[static_cast<std::size_t>(offset4(i0, i1, i2, i3))];
}
float Tensor::at(std::int64_t i0) const {
  return const_cast<Tensor*>(this)->at(i0);
}
float Tensor::at(std::int64_t i0, std::int64_t i1) const {
  return const_cast<Tensor*>(this)->at(i0, i1);
}
float Tensor::at(std::int64_t i0, std::int64_t i1, std::int64_t i2) const {
  return const_cast<Tensor*>(this)->at(i0, i1, i2);
}
float Tensor::at(std::int64_t i0, std::int64_t i1, std::int64_t i2,
                 std::int64_t i3) const {
  return const_cast<Tensor*>(this)->at(i0, i1, i2, i3);
}

std::int64_t Tensor::offset(const std::vector<std::int64_t>& index) const {
  assert(static_cast<std::int64_t>(index.size()) == rank());
  std::int64_t off = 0;
  for (std::size_t i = 0; i < index.size(); ++i) {
    assert(index[i] >= 0 && index[i] < shape_[i]);
    off += index[i] * strides_[i];
  }
  return off;
}

void Tensor::fill(float value) {
  for (float& v : data_) v = value;
}

void Tensor::fill_random(Rng& rng, float lo, float hi) {
  rng.fill_uniform(data_, lo, hi);
}

float Tensor::max_abs_diff(const Tensor& a, const Tensor& b) {
  assert(a.shape() == b.shape());
  float m = 0.0F;
  for (std::int64_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a.data()[i] - b.data()[i]));
  }
  return m;
}

double Tensor::rms_diff(const Tensor& a, const Tensor& b) {
  assert(a.shape() == b.shape());
  if (a.size() == 0) return 0.0;
  double acc = 0.0;
  for (std::int64_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a.data()[i]) - b.data()[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(a.size()));
}

bool Tensor::all_close(const Tensor& a, const Tensor& b, float tol) {
  if (a.shape() != b.shape()) return false;
  return max_abs_diff(a, b) <= tol;
}

std::string Tensor::shape_str() const {
  std::vector<std::string> dims;
  dims.reserve(shape_.size());
  for (const std::int64_t d : shape_) dims.push_back(std::to_string(d));
  return "[" + join(dims, " x ") + "]";
}

}  // namespace sasynth
