// Non-convolutional layer operators (paper §2.1 lists pooling, sigmoid and
// ReLU among the common computation blocks). These run on the host side of
// the accelerator (they are a negligible fraction of the work) but are
// needed to execute a whole network end to end through the simulator.
#pragma once

#include <cstdint>

#include "nn/tensor.h"

namespace sasynth {

/// Element-wise max(0, x).
Tensor relu(const Tensor& input);

/// Element-wise logistic sigmoid.
Tensor sigmoid(const Tensor& input);

/// Max pooling over a [C][H][W] tensor with a square window.
/// Output dims: floor((H - size) / stride) + 1.
Tensor max_pool(const Tensor& input, std::int64_t size, std::int64_t stride);

/// Average pooling with the same geometry as max_pool.
Tensor avg_pool(const Tensor& input, std::int64_t size, std::int64_t stride);

/// Flattens any tensor to rank 1 (channel-major order preserved).
Tensor flatten(const Tensor& input);

/// Numerically stable softmax over a rank-1 tensor.
Tensor softmax(const Tensor& input);

/// Index of the maximum element of a rank-1 tensor.
std::int64_t argmax(const Tensor& input);

}  // namespace sasynth
