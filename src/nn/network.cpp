#include "nn/network.h"

#include "util/strings.h"

namespace sasynth {

std::int64_t Network::total_ops() const {
  std::int64_t total = 0;
  for (const ConvLayerDesc& layer : layers) total += layer.total_ops();
  return total;
}

const ConvLayerDesc* Network::find_layer(const std::string& layer_name) const {
  for (const ConvLayerDesc& layer : layers) {
    if (layer.name == layer_name) return &layer;
  }
  return nullptr;
}

std::string Network::summary() const {
  std::string out = name + " (" + std::to_string(layers.size()) + " conv layers, " +
                    format_trimmed(static_cast<double>(total_ops()) * 1e-9, 3) +
                    " Gops/image)\n";
  for (const ConvLayerDesc& layer : layers) {
    out += "  " + layer.summary() + "\n";
  }
  return out;
}

Network make_alexnet(bool fold_conv1) {
  Network net;
  net.name = "AlexNet";
  // conv1: 3 -> 96, 55x55 output, 11x11 kernel, stride 4, no groups.
  ConvLayerDesc conv1 = make_conv("conv1", 3, 96, 55, 11, /*stride=*/4);
  net.layers.push_back(fold_conv1 ? fold_strided_layer(conv1) : conv1);
  // conv2: 96 -> 256, 27x27, 5x5, groups 2 => per-group 48 -> 128.
  net.layers.push_back(make_conv("conv2", 48, 128, 27, 5, 1, /*groups=*/2));
  // conv3: 256 -> 384, 13x13, 3x3, no groups.
  net.layers.push_back(make_conv("conv3", 256, 384, 13, 3));
  // conv4: 384 -> 384, 13x13, 3x3, groups 2 => per-group 192 -> 192.
  net.layers.push_back(make_conv("conv4", 192, 192, 13, 3, 1, /*groups=*/2));
  // conv5: 384 -> 256, 13x13, 3x3, groups 2 => per-group 192 -> 128.
  net.layers.push_back(make_conv("conv5", 192, 128, 13, 3, 1, /*groups=*/2));
  return net;
}

ConvLayerDesc alexnet_conv5() {
  ConvLayerDesc layer = make_conv("alexnet_conv5", 192, 128, 13, 3);
  return layer;
}

Network make_vgg16() {
  Network net;
  net.name = "VGG16";
  net.layers.push_back(make_conv("conv1_1", 3, 64, 224, 3));
  net.layers.push_back(make_conv("conv1_2", 64, 64, 224, 3));
  net.layers.push_back(make_conv("conv2_1", 64, 128, 112, 3));
  net.layers.push_back(make_conv("conv2_2", 128, 128, 112, 3));
  net.layers.push_back(make_conv("conv3_1", 128, 256, 56, 3));
  net.layers.push_back(make_conv("conv3_2", 256, 256, 56, 3));
  net.layers.push_back(make_conv("conv3_3", 256, 256, 56, 3));
  net.layers.push_back(make_conv("conv4_1", 256, 512, 28, 3));
  net.layers.push_back(make_conv("conv4_2", 512, 512, 28, 3));
  net.layers.push_back(make_conv("conv4_3", 512, 512, 28, 3));
  net.layers.push_back(make_conv("conv5_1", 512, 512, 14, 3));
  net.layers.push_back(make_conv("conv5_2", 512, 512, 14, 3));
  net.layers.push_back(make_conv("conv5_3", 512, 512, 14, 3));
  return net;
}

Network make_googlenet() {
  Network net;
  net.name = "GoogLeNet";
  // Stem.
  net.layers.push_back(make_conv("conv1_7x7", 3, 64, 112, 7, /*stride=*/2));
  net.layers.push_back(make_conv("conv2_red", 64, 64, 56, 1));
  net.layers.push_back(make_conv("conv2_3x3", 64, 192, 56, 3));

  // One inception module: six convolutions.
  struct Inception {
    const char* name;
    std::int64_t in, b1, r3, b3, r5, b5, pool;
    std::int64_t size;
  };
  const Inception modules[] = {
      {"3a", 192, 64, 96, 128, 16, 32, 32, 28},
      {"3b", 256, 128, 128, 192, 32, 96, 64, 28},
      {"4a", 480, 192, 96, 208, 16, 48, 64, 14},
      {"4b", 512, 160, 112, 224, 24, 64, 64, 14},
      {"4c", 512, 128, 128, 256, 24, 64, 64, 14},
      {"4d", 512, 112, 144, 288, 32, 64, 64, 14},
      {"4e", 528, 256, 160, 320, 32, 128, 128, 14},
      {"5a", 832, 256, 160, 320, 32, 128, 128, 7},
      {"5b", 832, 384, 192, 384, 48, 128, 128, 7},
  };
  for (const Inception& m : modules) {
    const std::string prefix = std::string("inc") + m.name;
    net.layers.push_back(make_conv(prefix + "_1x1", m.in, m.b1, m.size, 1));
    net.layers.push_back(make_conv(prefix + "_3x3r", m.in, m.r3, m.size, 1));
    net.layers.push_back(make_conv(prefix + "_3x3", m.r3, m.b3, m.size, 3));
    net.layers.push_back(make_conv(prefix + "_5x5r", m.in, m.r5, m.size, 1));
    net.layers.push_back(make_conv(prefix + "_5x5", m.r5, m.b5, m.size, 5));
    net.layers.push_back(make_conv(prefix + "_pool", m.in, m.pool, m.size, 1));
  }
  return net;
}

Network make_tiny_testnet() {
  Network net;
  net.name = "TinyTestNet";
  net.layers.push_back(make_conv("t1", 4, 8, 6, 3));
  net.layers.push_back(make_conv("t2", 8, 8, 4, 3));
  net.layers.push_back(make_conv("t3", 8, 4, 4, 1));
  return net;
}

bool parse_network_name(const std::string& name, Network* out) {
  if (name == "alexnet") {
    *out = make_alexnet();
  } else if (name == "vgg16") {
    *out = make_vgg16();
  } else if (name == "googlenet") {
    *out = make_googlenet();
  } else if (name == "tiny") {
    *out = make_tiny_testnet();
  } else {
    return false;
  }
  return true;
}

const char* network_name_list() { return "alexnet|vgg16|googlenet|tiny"; }

}  // namespace sasynth
