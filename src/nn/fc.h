// Fully connected layers and their conversion to convolutions (paper §2.1:
// "fully connected layers can be converted into convolutional layers [10]").
//
// The conversion lets the same systolic array run the FC tail of AlexNet /
// VGG: an FC layer consuming a [C][H][W] feature volume is exactly a
// convolution with kernel H(=W), unit output size and O = out_features; an
// FC-on-FC layer is a 1x1 convolution.
#pragma once

#include <cstdint>
#include <string>

#include "nn/layer.h"
#include "nn/tensor.h"

namespace sasynth {

struct FcLayerDesc {
  std::string name;
  std::int64_t in_features = 0;
  std::int64_t out_features = 0;

  std::int64_t total_macs() const { return in_features * out_features; }
  std::string validate() const;
};

/// FC over a flattened square feature volume [in_maps][map_size][map_size]:
/// the equivalent convolution has I = in_maps, K = map_size, R = C = 1,
/// O = out_features. Precondition: in_maps * map_size^2 == fc.in_features.
ConvLayerDesc fc_as_conv(const FcLayerDesc& fc, std::int64_t in_maps,
                         std::int64_t map_size);

/// FC whose input is already a vector (previous layer was FC): a 1x1 conv
/// with I = in_features.
ConvLayerDesc fc_as_conv(const FcLayerDesc& fc);

/// Reference FC forward: out[o] = sum_i w[o][i] * in[i].
/// `input` is rank-1 [in_features]; `weights` rank-2 [out][in].
Tensor fc_forward(const FcLayerDesc& fc, const Tensor& input,
                  const Tensor& weights);

/// Reshapes FC weights [out][in_maps*map^2] into the converted conv's
/// [O][I][K][K] layout (row-major flattening i = (c * map + h) * map + w
/// ... i.e. channel-major, matching a [C][H][W] activation volume).
Tensor fc_weights_as_conv(const FcLayerDesc& fc, const Tensor& weights,
                          std::int64_t in_maps, std::int64_t map_size);

/// AlexNet's three FC layers (fc6: 256x6x6 -> 4096, fc7, fc8 -> 1000).
FcLayerDesc alexnet_fc6();
FcLayerDesc alexnet_fc7();
FcLayerDesc alexnet_fc8();

}  // namespace sasynth
