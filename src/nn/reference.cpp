#include "nn/reference.h"

#include <cassert>
#include <vector>

#include "util/rng.h"

namespace sasynth {

ConvData make_conv_data(const ConvLayerDesc& layer) {
  assert(layer.validate().empty());
  ConvData data;
  data.input = Tensor({layer.in_maps, layer.in_rows(), layer.in_cols()});
  data.weights =
      Tensor({layer.out_maps, layer.in_maps, layer.kernel, layer.kernel});
  return data;
}

ConvData make_random_conv_data(const ConvLayerDesc& layer, Rng& rng, float lo,
                               float hi) {
  ConvData data = make_conv_data(layer);
  data.input.fill_random(rng, lo, hi);
  data.weights.fill_random(rng, lo, hi);
  return data;
}

namespace {

template <typename Acc>
Tensor conv_impl(const ConvLayerDesc& layer, const ConvData& data) {
  assert(data.input.shape() ==
         (std::vector<std::int64_t>{layer.in_maps, layer.in_rows(),
                                    layer.in_cols()}));
  assert(data.weights.shape() ==
         (std::vector<std::int64_t>{layer.out_maps, layer.in_maps,
                                    layer.kernel, layer.kernel}));
  Tensor out({layer.out_maps, layer.out_rows, layer.out_cols});
  for (std::int64_t o = 0; o < layer.out_maps; ++o) {
    for (std::int64_t r = 0; r < layer.out_rows; ++r) {
      for (std::int64_t c = 0; c < layer.out_cols; ++c) {
        Acc acc = 0;
        for (std::int64_t i = 0; i < layer.in_maps; ++i) {
          for (std::int64_t p = 0; p < layer.kernel; ++p) {
            for (std::int64_t q = 0; q < layer.kernel; ++q) {
              acc += static_cast<Acc>(data.weights.at(o, i, p, q)) *
                     static_cast<Acc>(
                         data.input.at(i, r * layer.stride + p,
                                       c * layer.stride + q));
            }
          }
        }
        out.at(o, r, c) = static_cast<float>(acc);
      }
    }
  }
  return out;
}

}  // namespace

Tensor reference_conv(const ConvLayerDesc& layer, const ConvData& data) {
  return conv_impl<float>(layer, data);
}

Tensor reference_conv_f64(const ConvLayerDesc& layer, const ConvData& data) {
  return conv_impl<double>(layer, data);
}

}  // namespace sasynth
