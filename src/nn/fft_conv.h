// Frequency-domain convolution — the second §6 future-work item (the paper
// cites [28], Zhang & Prasanna's FPGA'17 CPU-FPGA FFT convolution, next to
// Winograd).
//
// conv(IN, W) is computed per (output map, input map) pair as a pointwise
// product in the frequency domain: both operands are zero-padded to a
// power-of-two tile, transformed with a radix-2 2-D FFT, multiplied,
// accumulated over input maps, and inverse-transformed once per output map.
// The valid-correlation region is then extracted (and subsampled for strided
// layers).
//
// The implementation counts its multiplies so the fast-algorithms ablation
// can compare measured arithmetic against direct convolution and Winograd:
// FFT amortizes best for large kernels (AlexNet's 11x11), Winograd for 3x3 —
// the standard trade-off the paper's future work would navigate.
#pragma once

#include <complex>
#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.h"
#include "nn/reference.h"
#include "nn/tensor.h"

namespace sasynth {

/// In-place radix-2 decimation-in-time FFT. `data.size()` must be a power of
/// two. `inverse` applies the conjugate transform and the 1/N scaling.
void fft1d(std::vector<std::complex<double>>& data, bool inverse);

/// Arithmetic counters of one fft_conv run (real-multiply equivalents:
/// one complex multiply = 4 real multiplies). Kernel transforms are counted
/// separately: weights are constant across inference, so their FFTs are
/// performed once offline (exactly like Winograd's U = G g G^T).
struct FftConvStats {
  std::int64_t real_mults = 0;     ///< runtime: input FFTs + pointwise + inverse
  std::int64_t offline_mults = 0;  ///< one-time kernel transforms
  std::int64_t direct_mults = 0;   ///< I*O*R*C*K^2 for comparison

  double mult_reduction() const {
    return real_mults > 0
               ? static_cast<double>(direct_mults) /
                     static_cast<double>(real_mults)
               : 0.0;
  }
  std::string summary() const;
};

/// Frequency-domain convolution of one group; bit-compatible (up to float
/// rounding) with reference_conv. Any kernel size and stride.
Tensor fft_conv(const ConvLayerDesc& layer, const ConvData& data,
                FftConvStats* stats = nullptr);

}  // namespace sasynth
