// Convolutional layer descriptor — the workload unit of the whole framework.
//
// Dimensions follow the paper's Code 1 naming:
//   O = output feature maps (loop L1)
//   I = input feature maps  (loop L2)
//   C = output feature columns (loop L3)
//   R = output feature rows    (loop L4)
//   K = kernel size (loops L5 = p, L6 = q)
//
// Grouped convolutions (AlexNet conv2/4/5) are described by their per-group
// dimensions plus a `groups` replication count, matching how the paper quotes
// AlexNet layer 5 as (I,O,R,C,P,Q) = (192,128,13,13,3,3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sasynth {

struct ConvLayerDesc {
  std::string name;
  std::int64_t in_maps = 0;   ///< I — input feature maps (per group)
  std::int64_t out_maps = 0;  ///< O — output feature maps (per group)
  std::int64_t out_rows = 0;  ///< R
  std::int64_t out_cols = 0;  ///< C
  std::int64_t kernel = 0;    ///< K (square kernels, P = Q = K)
  std::int64_t stride = 1;
  std::int64_t groups = 1;    ///< replication count; groups run sequentially

  /// Rows/cols of the (already padded) input feature map required to produce
  /// the R x C output with a valid convolution: (R-1)*stride + K.
  std::int64_t in_rows() const;
  std::int64_t in_cols() const;

  /// MAC count for one group: I*O*R*C*K*K.
  std::int64_t macs_per_group() const;

  /// Total MACs including group replication.
  std::int64_t total_macs() const;

  /// Total arithmetic operations (2 per MAC: multiply + accumulate), the unit
  /// of all GFlops/Gops numbers in the paper.
  std::int64_t total_ops() const;

  /// Element counts for one group's arrays.
  std::int64_t weight_elems() const;  ///< O*I*K*K
  std::int64_t input_elems() const;   ///< I*in_rows*in_cols
  std::int64_t output_elems() const;  ///< O*R*C

  /// Validates all extents (>=1, stride>=1). Returns an error message or "".
  std::string validate() const;

  /// "conv3: (I,O,R,C,K)=(256,384,13,13,3) s1 g1" style summary.
  std::string summary() const;

  bool operator==(const ConvLayerDesc& other) const;
};

/// Convenience factory for square-output stride-1 layers.
ConvLayerDesc make_conv(std::string name, std::int64_t in_maps,
                        std::int64_t out_maps, std::int64_t out_size,
                        std::int64_t kernel, std::int64_t stride = 1,
                        std::int64_t groups = 1);

/// Folds a large-kernel strided layer into an equivalent stride-1 layer with
/// more, smaller input feature maps (the paper folds AlexNet conv1 this way
/// so one unified array design fits all layers, §5.3).
///
/// The fold moves the stride*stride spatial phases of the input into the
/// channel dimension: I' = I * stride * stride, K' = ceil(K / stride),
/// stride' = 1, R/C/O unchanged. The op count grows by the kernel padding
/// ratio (I'*K'^2 >= I*K^2), which the paper reports as reduced DSP
/// efficiency on that layer.
ConvLayerDesc fold_strided_layer(const ConvLayerDesc& layer);

}  // namespace sasynth
