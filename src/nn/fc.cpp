#include "nn/fc.h"

#include <cassert>

namespace sasynth {

std::string FcLayerDesc::validate() const {
  if (in_features < 1) return "in_features must be >= 1";
  if (out_features < 1) return "out_features must be >= 1";
  return "";
}

ConvLayerDesc fc_as_conv(const FcLayerDesc& fc, std::int64_t in_maps,
                         std::int64_t map_size) {
  assert(fc.validate().empty());
  assert(in_maps * map_size * map_size == fc.in_features);
  ConvLayerDesc conv;
  conv.name = fc.name + "_as_conv";
  conv.in_maps = in_maps;
  conv.out_maps = fc.out_features;
  conv.out_rows = 1;
  conv.out_cols = 1;
  conv.kernel = map_size;
  conv.stride = 1;
  conv.groups = 1;
  assert(conv.total_macs() == fc.total_macs());
  return conv;
}

ConvLayerDesc fc_as_conv(const FcLayerDesc& fc) {
  return fc_as_conv(fc, fc.in_features, 1);
}

Tensor fc_forward(const FcLayerDesc& fc, const Tensor& input,
                  const Tensor& weights) {
  assert(input.shape() == (std::vector<std::int64_t>{fc.in_features}));
  assert(weights.shape() ==
         (std::vector<std::int64_t>{fc.out_features, fc.in_features}));
  Tensor out({fc.out_features});
  for (std::int64_t o = 0; o < fc.out_features; ++o) {
    float acc = 0.0F;
    for (std::int64_t i = 0; i < fc.in_features; ++i) {
      acc += weights.at(o, i) * input.at(i);
    }
    out.at(o) = acc;
  }
  return out;
}

Tensor fc_weights_as_conv(const FcLayerDesc& fc, const Tensor& weights,
                          std::int64_t in_maps, std::int64_t map_size) {
  assert(in_maps * map_size * map_size == fc.in_features);
  Tensor conv_w({fc.out_features, in_maps, map_size, map_size});
  for (std::int64_t o = 0; o < fc.out_features; ++o) {
    for (std::int64_t c = 0; c < in_maps; ++c) {
      for (std::int64_t h = 0; h < map_size; ++h) {
        for (std::int64_t w = 0; w < map_size; ++w) {
          conv_w.at(o, c, h, w) =
              weights.at(o, (c * map_size + h) * map_size + w);
        }
      }
    }
  }
  return conv_w;
}

FcLayerDesc alexnet_fc6() { return FcLayerDesc{"fc6", 256 * 6 * 6, 4096}; }
FcLayerDesc alexnet_fc7() { return FcLayerDesc{"fc7", 4096, 4096}; }
FcLayerDesc alexnet_fc8() { return FcLayerDesc{"fc8", 4096, 1000}; }

}  // namespace sasynth
