#include "nn/winograd.h"

#include <cassert>

#include "util/strings.h"

namespace sasynth {

namespace {

// F(2x2, 3x3) transform matrices.
constexpr double kBT[4][4] = {
    {1, 0, -1, 0}, {0, 1, 1, 0}, {0, -1, 1, 0}, {0, 1, 0, -1}};
constexpr double kG[4][3] = {
    {1, 0, 0}, {0.5, 0.5, 0.5}, {0.5, -0.5, 0.5}, {0, 0, 1}};
constexpr double kAT[2][4] = {{1, 1, 1, 0}, {0, 1, -1, -1}};

/// U = G g G^T for one 3x3 kernel.
void transform_kernel(const double g[3][3], double u[4][4]) {
  double tmp[4][3];
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 3; ++j) {
      tmp[i][j] = kG[i][0] * g[0][j] + kG[i][1] * g[1][j] + kG[i][2] * g[2][j];
    }
  }
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      u[i][j] =
          tmp[i][0] * kG[j][0] + tmp[i][1] * kG[j][1] + tmp[i][2] * kG[j][2];
    }
  }
}

/// V = B^T d B for one 4x4 input tile.
void transform_input(const double d[4][4], double v[4][4]) {
  double tmp[4][4];
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      tmp[i][j] = kBT[i][0] * d[0][j] + kBT[i][1] * d[1][j] +
                  kBT[i][2] * d[2][j] + kBT[i][3] * d[3][j];
    }
  }
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      v[i][j] = tmp[i][0] * kBT[j][0] + tmp[i][1] * kBT[j][1] +
                tmp[i][2] * kBT[j][2] + tmp[i][3] * kBT[j][3];
    }
  }
}

/// y = A^T m A for one accumulated 4x4 tile (2x2 result).
void transform_output(const double m[4][4], double y[2][2]) {
  double tmp[2][4];
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 4; ++j) {
      tmp[i][j] = kAT[i][0] * m[0][j] + kAT[i][1] * m[1][j] +
                  kAT[i][2] * m[2][j] + kAT[i][3] * m[3][j];
    }
  }
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      y[i][j] = tmp[i][0] * kAT[j][0] + tmp[i][1] * kAT[j][1] +
                tmp[i][2] * kAT[j][2] + tmp[i][3] * kAT[j][3];
    }
  }
}

}  // namespace

bool winograd_applicable(const ConvLayerDesc& layer) {
  return layer.kernel == 3 && layer.stride == 1;
}

Tensor winograd_transform_weights(const ConvLayerDesc& layer,
                                  const Tensor& weights) {
  assert(winograd_applicable(layer));
  Tensor u({layer.out_maps, layer.in_maps, 4, 4});
  for (std::int64_t o = 0; o < layer.out_maps; ++o) {
    for (std::int64_t i = 0; i < layer.in_maps; ++i) {
      double g[3][3];
      for (int p = 0; p < 3; ++p) {
        for (int q = 0; q < 3; ++q) {
          g[p][q] = weights.at(o, i, p, q);
        }
      }
      double out[4][4];
      transform_kernel(g, out);
      for (int p = 0; p < 4; ++p) {
        for (int q = 0; q < 4; ++q) {
          u.at(o, i, p, q) = static_cast<float>(out[p][q]);
        }
      }
    }
  }
  return u;
}

Tensor winograd_conv(const ConvLayerDesc& layer, const ConvData& data) {
  assert(winograd_applicable(layer));
  const Tensor u = winograd_transform_weights(layer, data.weights);
  Tensor out({layer.out_maps, layer.out_rows, layer.out_cols});

  const std::int64_t tile_rows = (layer.out_rows + 1) / 2;
  const std::int64_t tile_cols = (layer.out_cols + 1) / 2;
  const std::int64_t in_rows = layer.in_rows();
  const std::int64_t in_cols = layer.in_cols();

  for (std::int64_t o = 0; o < layer.out_maps; ++o) {
    for (std::int64_t tr = 0; tr < tile_rows; ++tr) {
      for (std::int64_t tc = 0; tc < tile_cols; ++tc) {
        double m[4][4] = {};
        for (std::int64_t i = 0; i < layer.in_maps; ++i) {
          // Gather the 4x4 input tile (zero beyond the input extent; only
          // padded when the output size is odd).
          double d[4][4];
          for (int r = 0; r < 4; ++r) {
            for (int c = 0; c < 4; ++c) {
              const std::int64_t rr = tr * 2 + r;
              const std::int64_t cc = tc * 2 + c;
              d[r][c] = (rr < in_rows && cc < in_cols)
                            ? data.input.at(i, rr, cc)
                            : 0.0;
            }
          }
          double v[4][4];
          transform_input(d, v);
          for (int r = 0; r < 4; ++r) {
            for (int c = 0; c < 4; ++c) {
              m[r][c] += static_cast<double>(u.at(o, i, r, c)) * v[r][c];
            }
          }
        }
        double y[2][2];
        transform_output(m, y);
        for (int r = 0; r < 2; ++r) {
          for (int c = 0; c < 2; ++c) {
            const std::int64_t rr = tr * 2 + r;
            const std::int64_t cc = tc * 2 + c;
            if (rr < layer.out_rows && cc < layer.out_cols) {
              out.at(o, rr, cc) = static_cast<float>(y[r][c]);
            }
          }
        }
      }
    }
  }
  return out;
}

WinogradGain winograd_gain(const ConvLayerDesc& layer,
                           double transform_overhead) {
  WinogradGain gain;
  gain.applicable = winograd_applicable(layer);
  if (!gain.applicable) {
    gain.mult_reduction = 1.0;
    gain.weight_footprint_growth = 1.0;
    gain.projected_speedup = 1.0;
    return gain;
  }
  const double in_maps = static_cast<double>(layer.in_maps);
  gain.direct_mults_per_output = 9.0 * in_maps;       // 36 mults / 4 outputs
  gain.winograd_mults_per_output = 4.0 * in_maps;     // 16 mults / 4 outputs
  gain.mult_reduction =
      gain.direct_mults_per_output / gain.winograd_mults_per_output;  // 2.25
  gain.weight_footprint_growth = 16.0 / 9.0;
  gain.projected_speedup = gain.mult_reduction * (1.0 - transform_overhead);
  return gain;
}

std::string WinogradGain::summary() const {
  if (!applicable) return "winograd: not applicable";
  return strformat(
      "winograd F(2x2,3x3): %.2fx fewer multiplies, %.2fx weight footprint, "
      "projected %.2fx speedup",
      mult_reduction, weight_footprint_growth, projected_speedup);
}

}  // namespace sasynth
