// Fixed-point quantization for the paper's 8/16-bit evaluation mode.
//
// The paper evaluates a fixed-point variant with 8-bit weights and 16-bit
// pixels (§5.2) and cites a <2% top-1/top-5 accuracy degradation. Real
// ImageNet accuracy needs trained weights we do not have; instead this module
// provides the numeric machinery (symmetric power-of-two-scale quantization,
// int32 accumulation) and the tests/benches report numeric error between
// float and fixed convolution on synthetic data — exercising exactly the
// datapath the fixed-point designs implement.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.h"
#include "nn/reference.h"
#include "nn/tensor.h"

namespace sasynth {

/// A tensor quantized to B-bit signed integers with a power-of-two scale:
///   real_value ~= q * 2^-frac_bits, q in [-2^(B-1), 2^(B-1)-1].
struct QuantizedTensor {
  std::vector<std::int32_t> values;
  std::vector<std::int64_t> shape;
  int bits = 0;
  int frac_bits = 0;

  std::int64_t size() const { return static_cast<std::int64_t>(values.size()); }
  double scale() const;  ///< 2^-frac_bits
};

/// Chooses frac_bits so the max-|x| value fits, then rounds-to-nearest with
/// saturation.
QuantizedTensor quantize(const Tensor& t, int bits);

/// Quantizes with a fixed frac_bits (for sharing scales across tensors).
QuantizedTensor quantize_with_frac(const Tensor& t, int bits, int frac_bits);

/// Reconstructs floats (q * scale).
Tensor dequantize(const QuantizedTensor& q);

/// Fixed-point convolution: int32 MAC accumulation over quantized weights and
/// inputs, final rescale to float. Mirrors the DSP datapath of the fixed
/// designs (8-bit weights x 16-bit pixels accumulate exactly in int32 for the
/// layer sizes in scope).
Tensor fixed_point_conv(const ConvLayerDesc& layer, const ConvData& data,
                        int weight_bits, int pixel_bits);

/// Error summary between a float reference and a fixed-point result.
struct QuantErrorReport {
  double max_abs_err = 0.0;
  double rms_err = 0.0;
  double ref_rms = 0.0;        ///< RMS magnitude of the reference
  double relative_rms = 0.0;   ///< rms_err / ref_rms (0 if ref_rms == 0)

  std::string summary() const;
};

QuantErrorReport compare_quantized(const Tensor& reference,
                                   const Tensor& fixed);

}  // namespace sasynth
