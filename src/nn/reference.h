// Golden-model convolution (the literal Code 1 loop nest).
//
// The cycle-accurate simulator and the generated kernels are validated
// against this implementation. It is deliberately the naive six-loop form —
// correctness by construction — not an optimized conv.
#pragma once

#include <cstdint>

#include "nn/layer.h"
#include "nn/tensor.h"

namespace sasynth {

class Rng;

/// Inputs for one group of a convolutional layer.
struct ConvData {
  Tensor input;    ///< [I][in_rows][in_cols] (already padded)
  Tensor weights;  ///< [O][I][K][K]
};

/// Allocates tensors with the right shapes for `layer` (one group).
ConvData make_conv_data(const ConvLayerDesc& layer);

/// Allocates and fills with deterministic random data.
ConvData make_random_conv_data(const ConvLayerDesc& layer, Rng& rng,
                               float lo = -1.0F, float hi = 1.0F);

/// OUT[o][r][c] = sum_{i,p,q} W[o][i][p][q] * IN[i][r*stride+p][c*stride+q].
/// Returns a [O][R][C] tensor.
Tensor reference_conv(const ConvLayerDesc& layer, const ConvData& data);

/// Same computation but accumulating in double precision; used to bound the
/// float-reassociation error of tiled/systolic execution orders in tests.
Tensor reference_conv_f64(const ConvLayerDesc& layer, const ConvData& data);

}  // namespace sasynth
