#include "nn/fft_conv.h"

#include <cassert>
#include <cmath>

#include "util/math_util.h"
#include "util/strings.h"

namespace sasynth {

namespace {

constexpr double kPi = 3.14159265358979323846;

using Cvec = std::vector<std::complex<double>>;

/// 2-D FFT over a row-major h x w grid (both powers of two).
void fft2d(Cvec& grid, std::int64_t h, std::int64_t w, bool inverse,
           std::int64_t* mult_counter) {
  Cvec line;
  // Rows.
  line.resize(static_cast<std::size_t>(w));
  for (std::int64_t r = 0; r < h; ++r) {
    for (std::int64_t c = 0; c < w; ++c) {
      line[static_cast<std::size_t>(c)] =
          grid[static_cast<std::size_t>(r * w + c)];
    }
    fft1d(line, inverse);
    for (std::int64_t c = 0; c < w; ++c) {
      grid[static_cast<std::size_t>(r * w + c)] =
          line[static_cast<std::size_t>(c)];
    }
  }
  // Columns.
  line.resize(static_cast<std::size_t>(h));
  for (std::int64_t c = 0; c < w; ++c) {
    for (std::int64_t r = 0; r < h; ++r) {
      line[static_cast<std::size_t>(r)] =
          grid[static_cast<std::size_t>(r * w + c)];
    }
    fft1d(line, inverse);
    for (std::int64_t r = 0; r < h; ++r) {
      grid[static_cast<std::size_t>(r * w + c)] =
          line[static_cast<std::size_t>(r)];
    }
  }
  if (mult_counter != nullptr) {
    // Each length-n FFT performs (n/2) log2(n) complex butterflies, one
    // complex multiply each (4 real multiplies).
    const std::int64_t row_mults = h * (w / 2) * floor_log2(w);
    const std::int64_t col_mults = w * (h / 2) * floor_log2(h);
    *mult_counter += 4 * (row_mults + col_mults);
  }
}

}  // namespace

void fft1d(Cvec& data, bool inverse) {
  const std::size_t n = data.size();
  assert(n > 0 && (n & (n - 1)) == 0);
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; (j & bit) != 0; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * kPi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (std::complex<double>& x : data) x /= static_cast<double>(n);
  }
}

Tensor fft_conv(const ConvLayerDesc& layer, const ConvData& data,
                FftConvStats* stats) {
  assert(layer.validate().empty());
  const std::int64_t in_rows = layer.in_rows();
  const std::int64_t in_cols = layer.in_cols();
  // Full linear convolution needs in + K - 1 points per axis.
  const std::int64_t fft_h = round_up_pow2(in_rows + layer.kernel - 1);
  const std::int64_t fft_w = round_up_pow2(in_cols + layer.kernel - 1);
  const std::int64_t n = fft_h * fft_w;

  std::int64_t mults = 0;
  std::int64_t offline_mults = 0;

  // Transform every input map once.
  std::vector<Cvec> in_hat(static_cast<std::size_t>(layer.in_maps));
  for (std::int64_t i = 0; i < layer.in_maps; ++i) {
    Cvec grid(static_cast<std::size_t>(n), {0.0, 0.0});
    for (std::int64_t r = 0; r < in_rows; ++r) {
      for (std::int64_t c = 0; c < in_cols; ++c) {
        grid[static_cast<std::size_t>(r * fft_w + c)] = data.input.at(i, r, c);
      }
    }
    fft2d(grid, fft_h, fft_w, /*inverse=*/false, &mults);
    in_hat[static_cast<std::size_t>(i)] = std::move(grid);
  }

  Tensor out({layer.out_maps, layer.out_rows, layer.out_cols});
  Cvec acc;
  Cvec kernel_grid;
  for (std::int64_t o = 0; o < layer.out_maps; ++o) {
    acc.assign(static_cast<std::size_t>(n), {0.0, 0.0});
    for (std::int64_t i = 0; i < layer.in_maps; ++i) {
      // Correlation = convolution with the flipped kernel: place W reversed.
      kernel_grid.assign(static_cast<std::size_t>(n), {0.0, 0.0});
      for (std::int64_t p = 0; p < layer.kernel; ++p) {
        for (std::int64_t q = 0; q < layer.kernel; ++q) {
          kernel_grid[static_cast<std::size_t>(
              (layer.kernel - 1 - p) * fft_w + (layer.kernel - 1 - q))] =
              data.weights.at(o, i, p, q);
        }
      }
      fft2d(kernel_grid, fft_h, fft_w, /*inverse=*/false, &offline_mults);
      const Cvec& x = in_hat[static_cast<std::size_t>(i)];
      for (std::int64_t k = 0; k < n; ++k) {
        acc[static_cast<std::size_t>(k)] +=
            x[static_cast<std::size_t>(k)] * kernel_grid[static_cast<std::size_t>(k)];
      }
      mults += 4 * n;  // pointwise complex multiplies
    }
    fft2d(acc, fft_h, fft_w, /*inverse=*/true, &mults);
    // Valid-correlation region starts at (K-1, K-1); stride subsamples.
    for (std::int64_t r = 0; r < layer.out_rows; ++r) {
      for (std::int64_t c = 0; c < layer.out_cols; ++c) {
        const std::int64_t rr = layer.kernel - 1 + r * layer.stride;
        const std::int64_t cc = layer.kernel - 1 + c * layer.stride;
        out.at(o, r, c) = static_cast<float>(
            acc[static_cast<std::size_t>(rr * fft_w + cc)].real());
      }
    }
  }

  if (stats != nullptr) {
    stats->real_mults = mults;
    stats->offline_mults = offline_mults;
    stats->direct_mults = layer.macs_per_group();
  }
  return out;
}

std::string FftConvStats::summary() const {
  return strformat(
      "fft conv: %lld runtime real multiplies (+%lld offline) vs %lld direct "
      "(%.2fx reduction)",
      static_cast<long long>(real_mults),
      static_cast<long long>(offline_mults),
      static_cast<long long>(direct_mults), mult_reduction());
}

}  // namespace sasynth
