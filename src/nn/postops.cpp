#include "nn/postops.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sasynth {

Tensor relu(const Tensor& input) {
  Tensor out(input.shape());
  for (std::int64_t i = 0; i < input.size(); ++i) {
    out.data()[i] = std::max(0.0F, input.data()[i]);
  }
  return out;
}

Tensor sigmoid(const Tensor& input) {
  Tensor out(input.shape());
  for (std::int64_t i = 0; i < input.size(); ++i) {
    out.data()[i] = 1.0F / (1.0F + std::exp(-input.data()[i]));
  }
  return out;
}

namespace {

template <typename Reduce>
Tensor pool_impl(const Tensor& input, std::int64_t size, std::int64_t stride,
                 Reduce reduce, bool average) {
  assert(input.rank() == 3);
  assert(size >= 1 && stride >= 1);
  const std::int64_t channels = input.dim(0);
  const std::int64_t in_h = input.dim(1);
  const std::int64_t in_w = input.dim(2);
  assert(in_h >= size && in_w >= size);
  const std::int64_t out_h = (in_h - size) / stride + 1;
  const std::int64_t out_w = (in_w - size) / stride + 1;
  Tensor out({channels, out_h, out_w});
  for (std::int64_t c = 0; c < channels; ++c) {
    for (std::int64_t r = 0; r < out_h; ++r) {
      for (std::int64_t w = 0; w < out_w; ++w) {
        float acc = average ? 0.0F : input.at(c, r * stride, w * stride);
        for (std::int64_t pr = 0; pr < size; ++pr) {
          for (std::int64_t pw = 0; pw < size; ++pw) {
            acc = reduce(acc, input.at(c, r * stride + pr, w * stride + pw));
          }
        }
        out.at(c, r, w) =
            average ? acc / static_cast<float>(size * size) : acc;
      }
    }
  }
  return out;
}

}  // namespace

Tensor max_pool(const Tensor& input, std::int64_t size, std::int64_t stride) {
  return pool_impl(
      input, size, stride, [](float a, float b) { return std::max(a, b); },
      /*average=*/false);
}

Tensor avg_pool(const Tensor& input, std::int64_t size, std::int64_t stride) {
  return pool_impl(
      input, size, stride, [](float a, float b) { return a + b; },
      /*average=*/true);
}

Tensor flatten(const Tensor& input) {
  Tensor out({std::max<std::int64_t>(input.size(), 1)});
  for (std::int64_t i = 0; i < input.size(); ++i) {
    out.data()[i] = input.data()[i];
  }
  return out;
}

Tensor softmax(const Tensor& input) {
  assert(input.rank() == 1);
  Tensor out(input.shape());
  float max_v = input.data()[0];
  for (std::int64_t i = 1; i < input.size(); ++i) {
    max_v = std::max(max_v, input.data()[i]);
  }
  double sum = 0.0;
  for (std::int64_t i = 0; i < input.size(); ++i) {
    const double e = std::exp(static_cast<double>(input.data()[i] - max_v));
    out.data()[i] = static_cast<float>(e);
    sum += e;
  }
  for (std::int64_t i = 0; i < input.size(); ++i) {
    out.data()[i] = static_cast<float>(out.data()[i] / sum);
  }
  return out;
}

std::int64_t argmax(const Tensor& input) {
  assert(input.size() > 0);
  std::int64_t best = 0;
  for (std::int64_t i = 1; i < input.size(); ++i) {
    if (input.data()[i] > input.data()[best]) best = i;
  }
  return best;
}

}  // namespace sasynth
