// Winograd fast convolution F(2x2, 3x3) — the paper's §6 future-work item.
//
// The paper cites [17, 27-29]: applying the Winograd transformation to the
// 3x3 convolutions can roughly double the throughput of the systolic design
// because each 2x2 output tile needs 16 multiplications instead of 36
// (a 2.25x reduction in multiply work; the practical gain the paper quotes
// from [17] is ~2x after transform overheads).
//
// This module implements the numeric transformation:
//   Y = A^T [ (G g G^T) .* (B^T d B) ] A        (per tile, per channel pair)
// with the canonical F(2,3) matrices
//   B^T = [1 0 -1 0; 0 1 1 0; 0 -1 1 0; 0 1 0 -1]
//   G   = [1 0 0; 1/2 1/2 1/2; 1/2 -1/2 1/2; 0 0 1]
//   A^T = [1 1 1 0; 0 1 -1 -1]
// and the arithmetic-saving model used by the ablation bench.
#pragma once

#include <cstdint>
#include <string>

#include "nn/layer.h"
#include "nn/reference.h"
#include "nn/tensor.h"

namespace sasynth {

/// True if the layer admits the F(2x2,3x3) transform: 3x3 kernel, stride 1.
bool winograd_applicable(const ConvLayerDesc& layer);

/// Winograd convolution of one group. Requires winograd_applicable(layer).
/// Output rows/cols that are not multiples of 2 are handled by padding the
/// tile grid and clipping the result.
Tensor winograd_conv(const ConvLayerDesc& layer, const ConvData& data);

/// Pre-transformed weights U = G g G^T for every (o, i): a [O][I][4][4]
/// tensor (exposed so tests can check the transform in isolation and so the
/// buffer-size impact can be modeled: 16/9 growth of the weight working set).
Tensor winograd_transform_weights(const ConvLayerDesc& layer,
                                  const Tensor& weights);

/// Arithmetic model of the transform for the analytical throughput model.
struct WinogradGain {
  bool applicable = false;
  /// Multiplications per output point, direct vs Winograd (36/4 = 9 vs
  /// 16/4 = 4 for F(2x2,3x3) at I = 1; scales with I).
  double direct_mults_per_output = 0.0;
  double winograd_mults_per_output = 0.0;
  /// direct/winograd multiply ratio = 2.25 for F(2x2,3x3).
  double mult_reduction = 1.0;
  /// Weight working-set growth (16/9) — the transform's BRAM cost.
  double weight_footprint_growth = 1.0;
  /// Projected end throughput multiplier after transform overhead: the
  /// paper's cited practical factor (~2x), modeled as a derate of the ideal
  /// 2.25x.
  double projected_speedup = 1.0;

  std::string summary() const;
};

WinogradGain winograd_gain(const ConvLayerDesc& layer,
                           double transform_overhead = 0.12);

}  // namespace sasynth
