#include "sim/memory.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sasynth {

DdrModel::DdrModel(const FpgaDevice& device, double freq_mhz) {
  assert(freq_mhz > 0.0);
  const double freq_hz = freq_mhz * 1e6;
  bytes_per_cycle_total_ = device.bw_total_gbs * 1e9 / freq_hz;
  bytes_per_cycle_port_ = device.bw_port_gbs * 1e9 / freq_hz;
}

std::int64_t DdrModel::port_cycles(double bytes) const {
  if (bytes <= 0.0) return 0;
  return static_cast<std::int64_t>(std::ceil(bytes / bytes_per_cycle_port_));
}

std::int64_t DdrModel::transfer_cycles(
    const std::vector<double>& port_bytes) const {
  double total = 0.0;
  std::int64_t slowest_port = 0;
  for (const double bytes : port_bytes) {
    total += bytes;
    slowest_port = std::max(slowest_port, port_cycles(bytes));
  }
  const auto aggregate = static_cast<std::int64_t>(
      std::ceil(total / bytes_per_cycle_total_));
  return std::max(aggregate, slowest_port);
}

}  // namespace sasynth
