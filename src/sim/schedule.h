// Cycle-level schedule of the systolic array (paper Fig. 3).
//
// Execution is organized as: outer blocks (one per iteration of the outer
// loops), each processed as a sequence of middle-loop "wavefronts"; at
// wavefront m of a block with outer index vector g, PE (x, y) and SIMD lane
// v execute the original iteration
//
//   i_l = (g_l * s_l + m_l) * t_l + inner_l
//
// where m_l are the mixed-radix digits of m under the block's (possibly
// clipped) middle radices, and inner_l is x / y / v for the loop mapped to
// rows / cols / vec (0 for unmapped loops). Boundary blocks clip their middle
// loops — the sequential feeders simply stop early — so only the inner
// (array-shape) quantization pads. The systolic skew means PE (x, y) executes
// wavefront m at cycle t = m + x + y; data injected at the array boundary
// reaches it through neighbour-to-neighbour shifting exactly on time.
#pragma once

#include <cstdint>
#include <vector>

#include "core/design_point.h"
#include "loopnest/loop_nest.h"

namespace sasynth {

class BlockSchedule {
 public:
  BlockSchedule(const LoopNest& nest, const DesignPoint& design);

  std::int64_t num_blocks() const { return num_blocks_; }

  /// Wavefronts of a full (interior) block: prod(s).
  std::int64_t full_block_wavefronts() const { return full_wavefronts_; }

  /// Wavefronts of a specific block (boundary blocks clip).
  std::int64_t wavefronts(std::int64_t block) const;

  /// Sum of wavefronts over all blocks: prod_l ceil(N_l / t_l).
  std::int64_t total_wavefronts() const { return total_wavefronts_; }

  /// Mixed-radix decomposition of a block id into per-loop outer indices.
  std::vector<std::int64_t> decompose_block(std::int64_t block) const;

  /// The block's middle radices (clipped s_l on boundary blocks).
  std::vector<std::int64_t> middle_radices(std::int64_t block) const;

  /// Mixed-radix decomposition of wavefront m under the block's radices.
  std::vector<std::int64_t> decompose_middle(std::int64_t block,
                                             std::int64_t m) const;

  /// Fills `iters` with the global iteration vector for (block, m, x, y, v).
  /// Returns true if every index is inside its loop's trip count; false means
  /// the slot is padding (inner-quantization waste).
  bool global_iters(std::int64_t block, std::int64_t m, std::int64_t x,
                    std::int64_t y, std::int64_t v,
                    std::vector<std::int64_t>& iters) const;

  /// Cycle at which PE (x, y) executes wavefront m.
  static std::int64_t cycle_of(std::int64_t m, std::int64_t x, std::int64_t y) {
    return m + x + y;
  }

  /// Cycles from first injection to the last PE finishing the last wavefront
  /// of one block: wavefronts(block) + rows + cols - 2.
  std::int64_t block_span_cycles(std::int64_t block) const;

  const DesignPoint& design() const { return design_; }

 private:
  DesignPoint design_;
  std::vector<std::int64_t> trips_;
  std::vector<std::int64_t> outer_trips_;   ///< G_l = ceil(N_l / (s_l t_l))
  std::vector<std::int64_t> middle_bounds_; ///< s_l
  std::vector<std::int64_t> inner_bounds_;  ///< t_l
  std::vector<std::int64_t> granules_;      ///< ceil(N_l / t_l)
  std::int64_t num_blocks_ = 0;
  std::int64_t full_wavefronts_ = 0;
  std::int64_t total_wavefronts_ = 0;
};

}  // namespace sasynth
