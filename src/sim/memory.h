// Off-chip (DDR) transfer timing model used by the performance simulator.
//
// Converts byte counts into clock cycles at the accelerator's frequency,
// respecting both the aggregate bandwidth and the per-port bandwidth limits
// the paper's MT model distinguishes (Eqs. 9-10).
#pragma once

#include <cstdint>
#include <vector>

#include "fpga/device.h"

namespace sasynth {

class DdrModel {
 public:
  DdrModel(const FpgaDevice& device, double freq_mhz);

  double bytes_per_cycle_total() const { return bytes_per_cycle_total_; }
  double bytes_per_cycle_port() const { return bytes_per_cycle_port_; }

  /// Cycles to move `bytes` through one port.
  std::int64_t port_cycles(double bytes) const;

  /// Cycles for a set of concurrent per-port transfers: the aggregate limit
  /// applies to the sum, each port limit to its own stream; the transfer
  /// finishes when the slowest constraint is met.
  std::int64_t transfer_cycles(const std::vector<double>& port_bytes) const;

 private:
  double bytes_per_cycle_total_;
  double bytes_per_cycle_port_;
};

}  // namespace sasynth
