// Batch (multi-image) pipelining analysis.
//
// The paper reports both latency per image and aggregate throughput; the two
// coincide only when the pipeline is warm. Streaming a batch of images back
// to back amortizes the cold-start transfer and the array fill/drain, so
// throughput approaches the steady-state rate as the batch grows:
//
//   time(B) = cold_image + (B - 1) * steady_image
//
// This module derives both terms from the block-pipeline simulator and
// exposes the throughput-vs-batch-size curve (the latency/throughput
// trade-off FPGA inference papers routinely quote).
#pragma once

#include <cstdint>
#include <string>

#include "core/design_point.h"
#include "fpga/datatype.h"
#include "fpga/device.h"
#include "loopnest/loop_nest.h"
#include "nn/layer.h"

namespace sasynth {

class BatchAnalysis {
 public:
  /// Analyzes one layer (all groups) under a design at a clock.
  BatchAnalysis(const LoopNest& nest, const DesignPoint& design,
                const ConvLayerDesc& layer, const FpgaDevice& device,
                DataType dtype, double freq_mhz);

  /// Effective operations per image (2 * MACs * groups).
  double image_ops() const { return image_ops_; }

  /// First-image latency (cold pipeline: exposed first load).
  double cold_image_ms() const { return cold_ms_; }

  /// Marginal latency of each further image (warm pipeline).
  double steady_image_ms() const { return steady_ms_; }

  /// Total wall time for a batch of `images`.
  double batch_latency_ms(std::int64_t images) const;

  /// Aggregate throughput for a batch (Gops).
  double batch_throughput_gops(std::int64_t images) const;

  /// Asymptotic (infinite-batch) throughput.
  double steady_throughput_gops() const;

  /// Smallest batch whose throughput reaches `fraction` of the asymptote.
  std::int64_t batch_for_fraction(double fraction) const;

  std::string summary() const;

 private:
  double image_ops_ = 0.0;
  double cold_ms_ = 0.0;
  double steady_ms_ = 0.0;
};

}  // namespace sasynth
