#include "sim/systolic_array.h"

#include <cassert>
#include <unordered_map>

#include "loopnest/conv_nest.h"
#include "sim/schedule.h"
#include "util/strings.h"

namespace sasynth {

namespace {

/// Reads a tensor element addressed by an access function at a global
/// iteration point; returns 0 for any out-of-range index (zero-padded
/// buffers on boundary blocks).
float guarded_read(const Tensor& tensor, const AccessFunction& access,
                   const std::vector<std::int64_t>& iters) {
  assert(static_cast<std::int64_t>(access.rank()) == tensor.rank());
  std::int64_t offset = 0;
  std::int64_t stride = 1;
  // Compute the row-major offset with bounds checks per dimension.
  // (Iterate dims from last to first to build strides on the fly.)
  std::vector<std::int64_t> idx = access.eval(iters);
  for (std::int64_t d = tensor.rank(); d-- > 0;) {
    const std::int64_t i = idx[static_cast<std::size_t>(d)];
    if (i < 0 || i >= tensor.dim(d)) return 0.0F;
    offset += i * stride;
    stride *= tensor.dim(d);
  }
  return tensor.data()[offset];
}

/// Offset of an OUT access, or -1 when out of range.
std::int64_t guarded_offset(const Tensor& tensor, const AccessFunction& access,
                            const std::vector<std::int64_t>& iters) {
  std::int64_t offset = 0;
  std::int64_t stride = 1;
  std::vector<std::int64_t> idx = access.eval(iters);
  for (std::int64_t d = tensor.rank(); d-- > 0;) {
    const std::int64_t i = idx[static_cast<std::size_t>(d)];
    if (i < 0 || i >= tensor.dim(d)) return -1;
    offset += i * stride;
    stride *= tensor.dim(d);
  }
  return offset;
}

}  // namespace

double SimResult::measured_efficiency() const {
  if (mac_slots == 0) return 0.0;
  return static_cast<double>(active_macs) / static_cast<double>(mac_slots);
}

std::string SimResult::summary() const {
  return strformat(
      "%lld blocks x %lld wavefronts, %lld cycles pipelined, eff %.2f%%",
      static_cast<long long>(num_blocks),
      static_cast<long long>(wavefronts_per_block),
      static_cast<long long>(pipelined_cycles),
      measured_efficiency() * 100.0);
}

SimResult simulate_systolic_nest(const LoopNest& nest,
                                 const DesignPoint& design,
                                 const std::vector<const Tensor*>& operands,
                                 Tensor* output, const SimOptions& options) {
  assert(design.validate(nest).empty());
  assert(output != nullptr);
  assert(operands.size() == nest.num_accesses());
  const BlockSchedule schedule(nest, design);
  const std::int64_t rows = design.shape().rows;
  const std::int64_t cols = design.shape().cols;
  const std::int64_t vec = design.shape().vec;

  // Classify accesses: one reduction target, two streamed operands.
  std::size_t out_idx = LoopNest::npos;
  std::vector<std::size_t> read_idx;
  for (std::size_t a = 0; a < nest.num_accesses(); ++a) {
    if (nest.accesses()[a].role == AccessRole::kReduce) out_idx = a;
    else read_idx.push_back(a);
  }
  assert(out_idx != LoopNest::npos && read_idx.size() == 2);
  const AccessFunction& out_f = nest.accesses()[out_idx].access;
  const AccessFunction& f0 = nest.accesses()[read_idx[0]].access;
  const AccessFunction& f1 = nest.accesses()[read_idx[1]].access;

  // Orientation: the operand invariant in the row loop is shared by all PEs
  // of a column and therefore shifts vertically (fed per column); the other
  // operand shifts horizontally (fed per row). Either operand can take
  // either direction depending on the mapping.
  const bool first_vertical = f0.invariant_in(design.mapping().row_loop);
  assert(first_vertical
             ? f1.invariant_in(design.mapping().col_loop)
             : (f1.invariant_in(design.mapping().row_loop) &&
                f0.invariant_in(design.mapping().col_loop)));
  const AccessFunction& vert_f = first_vertical ? f0 : f1;
  const AccessFunction& horz_f = first_vertical ? f1 : f0;
  const Tensor& vert_tensor =
      *operands[first_vertical ? read_idx[0] : read_idx[1]];
  const Tensor& horz_tensor =
      *operands[first_vertical ? read_idx[1] : read_idx[0]];

  SimResult result;
  result.output = std::move(*output);
  result.num_blocks = schedule.num_blocks();
  result.wavefronts_per_block = schedule.full_block_wavefronts();
  result.pipelined_cycles = schedule.total_wavefronts() + rows + cols - 2;
  result.mac_slots = schedule.total_wavefronts() * rows * cols * vec;

  // Per-PE shift registers for the two operand streams; each carries a SIMD
  // vector. Two banks model the clock edge.
  const std::size_t num_pes = static_cast<std::size_t>(rows * cols);
  std::vector<std::vector<float>> in_reg(num_pes, std::vector<float>(vec, 0.0F));
  std::vector<std::vector<float>> in_next(num_pes, std::vector<float>(vec, 0.0F));
  std::vector<std::vector<float>> w_reg = in_reg;
  std::vector<std::vector<float>> w_next = in_reg;
  auto pe = [cols](std::int64_t x, std::int64_t y) {
    return static_cast<std::size_t>(x * cols + y);
  };

  // Per-PE output accumulators keyed by the OUT tensor offset.
  std::vector<std::unordered_map<std::int64_t, float>> acc(num_pes);

  std::vector<std::int64_t> iters;
  std::vector<std::int64_t> valid_probe;

  for (std::int64_t block = 0; block < schedule.num_blocks(); ++block) {
    const std::int64_t M = schedule.wavefronts(block);
    // Fill the per-column buffers (the IB chain for the vertically shifted
    // operand) and per-row buffers (the WB chain for the horizontal one):
    // entry m holds the SIMD vector the boundary PE consumes at wavefront m.
    // The vertical operand is invariant in the row loop (feasibility), so
    // x = 0 is representative; symmetrically the horizontal one uses y = 0.
    std::vector<std::vector<float>> ib(
        static_cast<std::size_t>(cols),
        std::vector<float>(static_cast<std::size_t>(M * vec), 0.0F));
    std::vector<std::vector<float>> wb(
        static_cast<std::size_t>(rows),
        std::vector<float>(static_cast<std::size_t>(M * vec), 0.0F));
    for (std::int64_t m = 0; m < M; ++m) {
      for (std::int64_t v = 0; v < vec; ++v) {
        for (std::int64_t y = 0; y < cols; ++y) {
          schedule.global_iters(block, m, 0, y, v, iters);
          ib[static_cast<std::size_t>(y)][static_cast<std::size_t>(m * vec + v)] =
              guarded_read(vert_tensor, vert_f, iters);
        }
        for (std::int64_t x = 0; x < rows; ++x) {
          schedule.global_iters(block, m, x, 0, v, iters);
          wb[static_cast<std::size_t>(x)][static_cast<std::size_t>(m * vec + v)] =
              guarded_read(horz_tensor, horz_f, iters);
        }
      }
    }

    const std::int64_t span = M + rows + cols - 2;
    for (std::int64_t cycle = 0; cycle < span; ++cycle) {
      // Shift phase: boundary PEs load from buffers (with the IB/WB chain
      // skew), interior PEs load from their neighbours.
      for (std::int64_t x = 0; x < rows; ++x) {
        for (std::int64_t y = 0; y < cols; ++y) {
          std::vector<float>& in_dst = in_next[pe(x, y)];
          if (x == 0) {
            const std::int64_t m = cycle - y;
            for (std::int64_t v = 0; v < vec; ++v) {
              in_dst[static_cast<std::size_t>(v)] =
                  (m >= 0 && m < M)
                      ? ib[static_cast<std::size_t>(y)]
                          [static_cast<std::size_t>(m * vec + v)]
                      : 0.0F;
            }
          } else {
            in_dst = in_reg[pe(x - 1, y)];
          }
          std::vector<float>& w_dst = w_next[pe(x, y)];
          if (y == 0) {
            const std::int64_t m = cycle - x + options.inject_skew_error;
            for (std::int64_t v = 0; v < vec; ++v) {
              w_dst[static_cast<std::size_t>(v)] =
                  (m >= 0 && m < M)
                      ? wb[static_cast<std::size_t>(x)]
                          [static_cast<std::size_t>(m * vec + v)]
                      : 0.0F;
            }
          } else {
            w_dst = w_reg[pe(x, y - 1)];
          }
        }
      }
      in_reg.swap(in_next);
      w_reg.swap(w_next);

      // Compute phase: PE (x, y) executes wavefront m = cycle - x - y.
      std::int64_t active_pes_this_cycle = 0;
      for (std::int64_t x = 0; x < rows; ++x) {
        for (std::int64_t y = 0; y < cols; ++y) {
          const std::int64_t m = cycle - x - y;
          if (m < 0 || m >= M) continue;
          ++active_pes_this_cycle;
          // SIMD dot product through the accumulation chain.
          float dot = 0.0F;
          const std::vector<float>& in_v = in_reg[pe(x, y)];
          const std::vector<float>& w_v = w_reg[pe(x, y)];
          for (std::int64_t v = 0; v < vec; ++v) {
            dot += in_v[static_cast<std::size_t>(v)] *
                   w_v[static_cast<std::size_t>(v)];
            // Count effective lanes (Eq. 1 numerator).
            if (schedule.global_iters(block, m, x, y, v, valid_probe)) {
              ++result.active_macs;
            }
          }
          // Accumulate into the per-PE output register for this OUT address
          // (v = 0 is representative: OUT is invariant in the vec loop).
          schedule.global_iters(block, m, x, y, 0, iters);
          const std::int64_t offset =
              guarded_offset(result.output, out_f, iters);
          if (offset >= 0) acc[pe(x, y)][offset] += dot;
        }
      }
      if (options.record_first_block_activity && block == 0) {
        result.first_block_active_pes.push_back(active_pes_this_cycle);
      }
    }

    // Drain: output registers shift down the columns into the OBs, which
    // accumulate into the output feature maps. Functionally we add the PE
    // accumulators into the tensor; the drain latency overlaps the next
    // block's compute thanks to the output double buffer.
    for (std::size_t p = 0; p < num_pes; ++p) {
      for (const auto& [offset, value] : acc[p]) {
        result.output.data()[offset] += value;
      }
      acc[p].clear();
    }
  }
  return result;
}

SimResult simulate_systolic(const LoopNest& nest, const DesignPoint& design,
                            const ConvLayerDesc& layer, const ConvData& data,
                            const SimOptions& options) {
  const std::size_t out_idx = nest.find_access(kOutArray);
  const std::size_t w_idx = nest.find_access(kWeightArray);
  const std::size_t in_idx = nest.find_access(kInArray);
  assert(out_idx != LoopNest::npos && w_idx != LoopNest::npos &&
         in_idx != LoopNest::npos);
  std::vector<const Tensor*> operands(nest.num_accesses(), nullptr);
  operands[w_idx] = &data.weights;
  operands[in_idx] = &data.input;
  (void)out_idx;
  Tensor output({layer.out_maps, layer.out_rows, layer.out_cols});
  return simulate_systolic_nest(nest, design, operands, &output, options);
}

SimResult simulate_systolic(const DesignPoint& design,
                            const ConvLayerDesc& layer, const ConvData& data,
                            const SimOptions& options) {
  return simulate_systolic(build_conv_nest(layer), design, layer, data,
                           options);
}

}  // namespace sasynth
