#include "sim/batch.h"

#include <cassert>

#include "sim/perf_sim.h"
#include "util/strings.h"

namespace sasynth {

BatchAnalysis::BatchAnalysis(const LoopNest& nest, const DesignPoint& design,
                             const ConvLayerDesc& layer,
                             const FpgaDevice& device, DataType dtype,
                             double freq_mhz) {
  PerfSimOptions warm;
  warm.freq_mhz = freq_mhz;
  PerfSimOptions cold = warm;
  cold.cold_start = true;
  const PerfSimResult warm_run =
      simulate_performance(nest, design, device, dtype, warm);
  const PerfSimResult cold_run =
      simulate_performance(nest, design, device, dtype, cold);
  image_ops_ = static_cast<double>(layer.total_ops());
  steady_ms_ = simulated_layer_latency_ms(layer, warm_run);
  cold_ms_ = simulated_layer_latency_ms(layer, cold_run);
  assert(cold_ms_ >= steady_ms_);
}

double BatchAnalysis::batch_latency_ms(std::int64_t images) const {
  assert(images >= 1);
  return cold_ms_ + static_cast<double>(images - 1) * steady_ms_;
}

double BatchAnalysis::batch_throughput_gops(std::int64_t images) const {
  return static_cast<double>(images) * image_ops_ /
         (batch_latency_ms(images) * 1e-3) * 1e-9;
}

double BatchAnalysis::steady_throughput_gops() const {
  return image_ops_ / (steady_ms_ * 1e-3) * 1e-9;
}

std::int64_t BatchAnalysis::batch_for_fraction(double fraction) const {
  assert(fraction > 0.0 && fraction < 1.0);
  const double target = fraction * steady_throughput_gops();
  std::int64_t images = 1;
  while (batch_throughput_gops(images) < target) {
    images *= 2;
    if (images > (1LL << 40)) break;  // defensive: should converge long before
  }
  // Binary search the exact crossover in (images/2, images].
  std::int64_t lo = images / 2 + 1;
  std::int64_t hi = images;
  if (batch_throughput_gops(1) >= target) return 1;
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (batch_throughput_gops(mid) >= target) hi = mid;
    else lo = mid + 1;
  }
  return hi;
}

std::string BatchAnalysis::summary() const {
  return strformat(
      "cold %.3f ms, steady %.3f ms/image -> %.1f Gops asymptotic "
      "(batch-1: %.1f Gops)",
      cold_ms_, steady_ms_, steady_throughput_gops(), batch_throughput_gops(1));
}

}  // namespace sasynth
