// Block-level performance simulator — the "on-board run" of the framework.
//
// Executes the double-buffered block pipeline of the architecture at cycle
// granularity without simulating individual MACs: per block, the array
// computes for M = prod(s) cycles while the DDR engine loads the next
// block's working set (and stores outputs). The block's wall time is
// max(compute, transfer) plus a fixed per-block DDR burst/latency overhead;
// the array fill/drain skew is paid once.
//
// The analytical model (Eqs. 7-10) predicts this simulator's throughput to
// within the fill/drain and burst-overhead epsilon — reproducing the <2%
// model-vs-board agreement of paper Fig. 7(b).
#pragma once

#include <cstdint>
#include <string>

#include "core/design_point.h"
#include "fpga/datatype.h"
#include "fpga/device.h"
#include "loopnest/loop_nest.h"
#include "nn/layer.h"
#include "nn/network.h"

namespace sasynth {

struct PerfSimOptions {
  double freq_mhz = 280.0;
  /// Fixed DDR latency/burst-setup cycles charged per block transfer.
  std::int64_t ddr_overhead_cycles = 200;
  /// Charge the first block's load as exposed latency. Off by default: in
  /// steady streaming (many images / layers back-to-back) the prologue
  /// overlaps the previous work, which is what the paper's throughput
  /// numbers measure.
  bool cold_start = false;
};

struct PerfSimResult {
  std::int64_t num_blocks = 0;
  std::int64_t compute_cycles = 0;       ///< blocks * M + skew
  std::int64_t transfer_cycles = 0;      ///< per-block transfer * blocks
  std::int64_t total_cycles = 0;         ///< pipelined wall cycles
  std::int64_t stall_cycles = 0;         ///< cycles the array waited on DDR
  double seconds = 0.0;
  double achieved_gops = 0.0;            ///< effective ops / wall time
  bool memory_bound = false;

  std::string summary() const;
};

/// Runs the block pipeline for one group of the layer; `nest` must be the
/// layer's conv nest.
PerfSimResult simulate_performance(const LoopNest& nest,
                                   const DesignPoint& design,
                                   const FpgaDevice& device, DataType dtype,
                                   const PerfSimOptions& options = {});

/// Whole-layer wall time (all groups sequential), in milliseconds.
double simulated_layer_latency_ms(const ConvLayerDesc& layer,
                                  const PerfSimResult& result);

/// Whole-network "board run": every conv layer simulated under the same
/// unified design, latencies summed. Returns milliseconds per image.
double simulate_network_latency_ms(const Network& net,
                                   const DesignPoint& design,
                                   const FpgaDevice& device, DataType dtype,
                                   const PerfSimOptions& options = {});

}  // namespace sasynth
