#include "sim/schedule.h"

#include <cassert>

#include "util/math_util.h"

namespace sasynth {

BlockSchedule::BlockSchedule(const LoopNest& nest, const DesignPoint& design)
    : design_(design) {
  // Folded validation (see perf_sim.cpp): deploy executes fixed designs on
  // arbitrary nests; the schedule's boundary clipping covers the fold.
  assert(design.validate_folded(nest).empty());
  const TilingSpec& tiling = design.tiling();
  trips_ = nest.trip_counts();
  num_blocks_ = 1;
  full_wavefronts_ = 1;
  total_wavefronts_ = 1;
  for (std::size_t l = 0; l < nest.num_loops(); ++l) {
    middle_bounds_.push_back(tiling.middle(l));
    inner_bounds_.push_back(tiling.inner(l));
    outer_trips_.push_back(tiling.outer_trip(nest, l));
    granules_.push_back(tiling.granules(nest, l));
    num_blocks_ *= outer_trips_.back();
    full_wavefronts_ *= middle_bounds_.back();
    total_wavefronts_ *= granules_.back();
  }
}

std::vector<std::int64_t> BlockSchedule::decompose_block(
    std::int64_t block) const {
  assert(block >= 0 && block < num_blocks_);
  std::vector<std::int64_t> digits(outer_trips_.size(), 0);
  // Last loop is the fastest-varying digit (innermost outer loop).
  for (std::size_t l = outer_trips_.size(); l-- > 0;) {
    digits[l] = block % outer_trips_[l];
    block /= outer_trips_[l];
  }
  return digits;
}

std::vector<std::int64_t> BlockSchedule::middle_radices(
    std::int64_t block) const {
  const std::vector<std::int64_t> g = decompose_block(block);
  std::vector<std::int64_t> radices(middle_bounds_.size(), 1);
  for (std::size_t l = 0; l < middle_bounds_.size(); ++l) {
    // Granules remaining along loop l after the block's start.
    const std::int64_t remaining = granules_[l] - g[l] * middle_bounds_[l];
    radices[l] = std::min(middle_bounds_[l], remaining);
    assert(radices[l] >= 1);
  }
  return radices;
}

std::int64_t BlockSchedule::wavefronts(std::int64_t block) const {
  std::int64_t m = 1;
  for (const std::int64_t r : middle_radices(block)) m *= r;
  return m;
}

std::vector<std::int64_t> BlockSchedule::decompose_middle(
    std::int64_t block, std::int64_t m) const {
  const std::vector<std::int64_t> radices = middle_radices(block);
  std::vector<std::int64_t> digits(radices.size(), 0);
  for (std::size_t l = radices.size(); l-- > 0;) {
    digits[l] = m % radices[l];
    m /= radices[l];
  }
  assert(m == 0);
  return digits;
}

bool BlockSchedule::global_iters(std::int64_t block, std::int64_t m,
                                 std::int64_t x, std::int64_t y,
                                 std::int64_t v,
                                 std::vector<std::int64_t>& iters) const {
  const std::vector<std::int64_t> g = decompose_block(block);
  const std::vector<std::int64_t> mid = decompose_middle(block, m);
  iters.assign(trips_.size(), 0);
  const SystolicMapping& mapping = design_.mapping();
  bool valid = true;
  for (std::size_t l = 0; l < trips_.size(); ++l) {
    std::int64_t inner = 0;
    if (l == mapping.row_loop) inner = x;
    else if (l == mapping.col_loop) inner = y;
    else if (l == mapping.vec_loop) inner = v;
    iters[l] = (g[l] * middle_bounds_[l] + mid[l]) * inner_bounds_[l] + inner;
    if (iters[l] >= trips_[l]) valid = false;
  }
  return valid;
}

std::int64_t BlockSchedule::block_span_cycles(std::int64_t block) const {
  return wavefronts(block) + design_.shape().rows + design_.shape().cols - 2;
}

}  // namespace sasynth
