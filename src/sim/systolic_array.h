// Cycle-accurate functional simulator of the 2-D systolic array (Figs. 1-3).
//
// The simulator executes the architecture literally:
//   * weights travel right through per-PE registers (one hop per cycle),
//   * input pixels travel down through per-PE registers,
//   * each PE holds a SIMD vector of MAC lanes whose partial products are
//     combined by the accumulation chain into a per-output register,
//   * boundary PEs are fed by the IB (per column) and WB (per row) buffers
//     with the systolic skew of Fig. 3 (PE (x,y) sees wavefront m at cycle
//     m + x + y).
// Out-of-range block padding injects zeros, exactly like the zero-initialized
// buffers of the hardware, so boundary blocks waste cycles but never corrupt
// results.
//
// Because every operand physically shifts through neighbour registers, a
// wrong skew/mapping produces wrong outputs — matching the reference
// convolution is evidence the dataflow (not just the arithmetic) is right.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/design_point.h"
#include "loopnest/loop_nest.h"
#include "nn/layer.h"
#include "nn/reference.h"
#include "nn/tensor.h"

namespace sasynth {

struct SimOptions {
  /// Record how many PEs are active at each cycle of the first block
  /// (the Fig. 3 wavefront picture).
  bool record_first_block_activity = false;

  /// Failure injection: offsets the wavefront the weight-boundary buffers
  /// present by this many cycles, desynchronizing the two operand streams —
  /// the bug class the systolic skew exists to prevent. Non-zero values must
  /// make the simulation produce wrong results (tests assert the harness
  /// catches it); 0 is the correct hardware.
  std::int64_t inject_skew_error = 0;
};

struct SimResult {
  Tensor output;  ///< [O][R][C]

  std::int64_t num_blocks = 0;
  std::int64_t wavefronts_per_block = 0;  ///< full-block M = prod(s)

  /// Back-to-back pipelined compute cycles:
  /// total_wavefronts + rows + cols - 2 (double-buffered feeding; boundary
  /// blocks clip their middle loops).
  std::int64_t pipelined_cycles = 0;

  std::int64_t active_macs = 0;  ///< lanes that executed a real iteration
  std::int64_t mac_slots = 0;    ///< lanes * total_wavefronts

  /// active_macs / mac_slots; equals the analytical Eff (Eq. 1).
  double measured_efficiency() const;

  /// Active-PE counts per cycle of block 0 (when recorded).
  std::vector<std::int64_t> first_block_active_pes;

  std::string summary() const;
};

/// Generic entry point: simulates any feasible nest (one reduction array,
/// two operand arrays with affine accesses — convolution, matrix multiply,
/// ...). `operands` maps each *read* access index of the nest to its tensor
/// (the reduction access's slot is ignored); `output` must be preallocated
/// with the reduction array's shape and is accumulated into.
SimResult simulate_systolic_nest(
    const LoopNest& nest, const DesignPoint& design,
    const std::vector<const Tensor*>& operands, Tensor* output,
    const SimOptions& options = {});

/// Simulates one group of `layer` under `design`. `nest` must be the conv
/// nest of `layer`; `design` must be feasible for it.
SimResult simulate_systolic(const LoopNest& nest, const DesignPoint& design,
                            const ConvLayerDesc& layer, const ConvData& data,
                            const SimOptions& options = {});

/// Convenience overload that builds the nest internally.
SimResult simulate_systolic(const DesignPoint& design,
                            const ConvLayerDesc& layer, const ConvData& data,
                            const SimOptions& options = {});

}  // namespace sasynth
