#include "sim/perf_sim.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "core/resource_model.h"
#include "loopnest/conv_nest.h"
#include "loopnest/domain.h"
#include "sim/memory.h"
#include "sim/schedule.h"
#include "util/strings.h"

namespace sasynth {

PerfSimResult simulate_performance(const LoopNest& nest,
                                   const DesignPoint& design,
                                   const FpgaDevice& device, DataType dtype,
                                   const PerfSimOptions& options) {
  // Folded validation: the simulator executes any structurally sound tiling,
  // including a fixed design folded onto a layer it was not synthesized for
  // (src/deploy) — boundary clipping already handles non-dividing bounds.
  assert(design.validate_folded(nest).empty());
  const TilingSpec& tiling = design.tiling();
  const DdrModel ddr(device, options.freq_mhz);

  PerfSimResult result;
  const BlockSchedule schedule(nest, design);
  result.num_blocks = schedule.num_blocks();

  // Per-block working-set bytes per memory port (IN, W, OUT streams).
  // Boundary blocks clip their middle loops, so they transfer only the
  // clipped footprint (the feeders stop early, exactly like the compute).
  std::vector<double> elem_bytes;
  for (std::size_t a = 0; a < nest.num_accesses(); ++a) {
    elem_bytes.push_back(bytes_per_element(dtype, nest, a));
  }
  auto block_transfer_cycles = [&](std::int64_t block) {
    const std::vector<std::int64_t> radices = schedule.middle_radices(block);
    std::vector<std::int64_t> extents(radices.size());
    for (std::size_t l = 0; l < radices.size(); ++l) {
      extents[l] = radices[l] * tiling.inner(l);
    }
    const RectDomain clipped(std::move(extents));
    std::vector<double> port_bytes;
    for (std::size_t a = 0; a < nest.num_accesses(); ++a) {
      port_bytes.push_back(
          static_cast<double>(
              closed_form_footprint(nest.accesses()[a].access, clipped)) *
          elem_bytes[a]);
    }
    return ddr.transfer_cycles(port_bytes) + options.ddr_overhead_cycles;
  };

  // Double-buffered pipeline recurrence: the DDR serializes block loads and
  // a load may run at most one block ahead (two buffers):
  //   finish_load(b)    = max(finish_load(b-1), finish_compute(b-2)) + T_b
  //   finish_compute(b) = max(finish_compute(b-1), finish_load(b)) + w_b
  // A cold start exposes block 0's load; in steady streaming (many images
  // back to back — what the paper's throughput numbers measure) the first
  // buffer is already full.
  std::int64_t transfer_total = 0;
  std::int64_t finish_load_prev = 0;
  std::int64_t finish_compute_prev = 0;
  std::int64_t finish_compute_prev2 = 0;
  for (std::int64_t b = 0; b < result.num_blocks; ++b) {
    const std::int64_t transfer = block_transfer_cycles(b);
    transfer_total += transfer;
    const std::int64_t finish_load =
        (b == 0 && !options.cold_start)
            ? 0
            : std::max(finish_load_prev, finish_compute_prev2) + transfer;
    const std::int64_t finish_compute =
        std::max(finish_compute_prev, finish_load) + schedule.wavefronts(b);
    finish_load_prev = finish_load;
    finish_compute_prev2 = finish_compute_prev;
    finish_compute_prev = finish_compute;
  }
  const std::int64_t skew =
      design.shape().rows + design.shape().cols - 2;
  // Array fill/drain is paid once across the pipelined blocks.
  const std::int64_t cycles = finish_compute_prev + skew;
  const std::int64_t stalls =
      finish_compute_prev - schedule.total_wavefronts() -
      (options.cold_start ? block_transfer_cycles(0) : 0);

  result.compute_cycles = schedule.total_wavefronts() + skew;
  result.transfer_cycles = transfer_total;
  result.total_cycles = cycles;
  result.stall_cycles = stalls;
  result.memory_bound = stalls > 0;
  result.seconds =
      static_cast<double>(cycles) / (options.freq_mhz * 1e6);
  const double effective_ops = 2.0 * static_cast<double>(nest.total_iterations());
  result.achieved_gops = effective_ops / result.seconds * 1e-9;
  return result;
}

double simulated_layer_latency_ms(const ConvLayerDesc& layer,
                                  const PerfSimResult& result) {
  return result.seconds * 1e3 * static_cast<double>(layer.groups);
}

double simulate_network_latency_ms(const Network& net,
                                   const DesignPoint& design,
                                   const FpgaDevice& device, DataType dtype,
                                   const PerfSimOptions& options) {
  double total_ms = 0.0;
  for (const ConvLayerDesc& layer : net.layers) {
    const LoopNest nest = build_conv_nest(layer);
    const PerfSimResult result =
        simulate_performance(nest, design, device, dtype, options);
    total_ms += simulated_layer_latency_ms(layer, result);
  }
  return total_ms;
}

std::string PerfSimResult::summary() const {
  return strformat(
      "%lld blocks, %lld cycles (%lld compute, %lld stalled)%s -> %.1f Gops",
      static_cast<long long>(num_blocks), static_cast<long long>(total_cycles),
      static_cast<long long>(compute_cycles),
      static_cast<long long>(stall_cycles),
      memory_bound ? " [memory-bound]" : "", achieved_gops);
}

}  // namespace sasynth
