// Deterministic fault injection for the fallible I/O boundaries of the
// serving stack: TCP read/write/accept, DesignCache disk load/store/evict,
// scheduler admission, and request-task execution on the thread pool.
//
// Design rules (modeled on the obs enable-flag pattern):
//   * Zero overhead when disabled: a site check is one relaxed atomic load
//     of the global arm flag and nothing else — no lock, no allocation, no
//     string compare. The flag only turns on when a fault is armed.
//   * Sites are named and resolved once (like metrics handles): call sites
//     keep a `static Site&` reference; the registry lookup happens one time.
//   * Faults are deterministic: a spec selects the error kind, the call
//     ordinal it starts firing on, and how many times it fires. The same
//     spec against the same request stream injects the same faults.
//   * Two front doors: the `SASYNTH_FAULTS` environment spec string
//     (install_from_env(), read by sasynthd at startup) and the C++ arming
//     API used by tests/faultinject/.
//   * Every fired fault increments the obs counter `faults_injected_total`;
//     every graceful-degradation path (injected or real) reports through
//     note_degraded(), which increments `degraded_total`. Both appear in
//     `stats --format=prom|json` and --metrics-out dumps.
//
// Spec string grammar (entries comma-separated):
//
//   SASYNTH_FAULTS=site:kind[@after][xcount]
//
//   site   one of known_sites() (e.g. tcp.read, cache.store, sched.admit)
//   kind   short_read | eintr | epipe | enospc | corrupt | error | stall
//   @after first site call that fires, 1-based (default 1 = the next call)
//   xcount how many consecutive calls fire (default 1; x* = every call
//          from `after` on)
//
//   Example: SASYNTH_FAULTS=tcp.read:eintr@1x3,cache.store:enospc
//
// What a fired kind means is defined by the site that owns it (the table
// lives in docs/SERVING.md "Failure modes & degradation"); arming a kind a
// site does not implement is legal and acts like `error` there.
//
// This library sits between obs and util (util/thread_pool reports swallowed
// task exceptions through note_degraded), so it depends only on obs and the
// standard library.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace sasynth::fault {

/// Error kinds a site can be armed with. Sites interpret them (a short read
/// is meaningless for an accept); unimplemented kinds degrade to kError.
enum class ErrorKind {
  kNone = 0,
  kShortRead,  ///< deliver fewer bytes than were available
  kEintr,      ///< the call fails with EINTR (retryable)
  kEpipe,      ///< write fails as if the peer vanished (EPIPE)
  kEnospc,     ///< disk write fails as if the volume filled (ENOSPC)
  kCorrupt,    ///< the bytes read are corrupted in flight
  kError,      ///< generic fatal I/O error (EIO)
  kStall,      ///< the peer goes silent (slow-loris); tcp.read/tcp.write
               ///< model it as an elapsed I/O timeout when one is armed,
               ///< a brief real delay otherwise; other sites treat it as
               ///< kError like any unimplemented kind
};

/// Canonical spec-string name of a kind ("short_read", ...); "none" for
/// kNone.
const char* kind_name(ErrorKind kind);

/// Parses a spec-string kind name. Returns false (out untouched) on an
/// unknown name.
bool parse_kind(const std::string& name, ErrorKind* out);

/// The injection surface. Tests iterate known_sites() to sweep every point;
/// call sites reference these constants so a typo cannot silently create a
/// dead site.
inline constexpr const char* kSiteTcpRead = "tcp.read";
inline constexpr const char* kSiteTcpWrite = "tcp.write";
inline constexpr const char* kSiteTcpAccept = "tcp.accept";
inline constexpr const char* kSiteCacheLoad = "cache.load";
inline constexpr const char* kSiteCacheStore = "cache.store";
inline constexpr const char* kSiteCacheEvict = "cache.evict";
inline constexpr const char* kSiteSchedAdmit = "sched.admit";
inline constexpr const char* kSitePoolTask = "pool.task";
inline constexpr const char* kSiteDeployPlan = "deploy.plan";
inline constexpr const char* kSiteDeploySelect = "deploy.select";
/// Event-loop internals (serve/event_loop.h). `loop.poll` fires per
/// epoll_wait/poll call — any injected kind models a transient poller error
/// the loop must absorb and retry. `loop.wakeup` fires per cross-thread
/// wakeup — an injected kind models a *lost* eventfd/self-pipe write, which
/// the loop's bounded wait tick must recover from (a completion may be
/// delayed, never dropped). Neither site exists on the blocking
/// thread-per-session path, so the blocking fault sweep skips them.
inline constexpr const char* kSiteLoopPoll = "loop.poll";
inline constexpr const char* kSiteLoopWakeup = "loop.wakeup";
/// Shard-coordinator peer I/O (serve/shard.h), one site per RPC step. Any
/// injected kind fails that step, and a failed step never fails the request:
/// the coordinator re-executes the peer's item range locally (counted in
/// `shard_degraded_total` on top of the usual `degraded_total`).
inline constexpr const char* kSiteShardConnect = "shard.connect";
inline constexpr const char* kSiteShardRead = "shard.read";
inline constexpr const char* kSiteShardWrite = "shard.write";

/// Background health probe of an open-breaker peer (serve/peer_health.h).
/// Any injected kind fails the probe: the peer stays open and the next
/// probe backs off one more step — no request is ever touched.
inline constexpr const char* kSiteShardProbe = "shard.probe";

/// Every site name above, in a stable order.
const std::vector<std::string>& known_sites();

/// Global arm flag: true while at least one fault is armed. The only cost a
/// disabled site check pays is this relaxed load.
bool faults_enabled();

/// One armed fault at one site.
struct FaultSpec {
  ErrorKind kind = ErrorKind::kNone;
  std::int64_t after = 1;  ///< first firing call ordinal (1-based)
  std::int64_t count = 1;  ///< consecutive firing calls; < 0 = unlimited
};

/// A named injection point. Construction happens inside the registry; call
/// sites hold a reference from site() and call fire() on the fallible path.
class Site {
 public:
  explicit Site(std::string name) : name_(std::move(name)) {}

  Site(const Site&) = delete;
  Site& operator=(const Site&) = delete;

  /// The per-call check. Returns kNone (for free) unless a fault is armed
  /// somewhere; otherwise counts the call and returns the armed kind when
  /// this call falls in the firing window.
  ErrorKind fire() {
    if (!faults_enabled()) return ErrorKind::kNone;
    return fire_slow();
  }

  const std::string& name() const { return name_; }

  /// Faults this site has injected since the last disarm_all().
  std::int64_t injected() const;

 private:
  friend void arm(const std::string&, const FaultSpec&);
  friend void disarm_all();

  ErrorKind fire_slow();

  const std::string name_;
  mutable std::mutex mutex_;
  FaultSpec spec_;            ///< kind == kNone when disarmed
  std::int64_t calls_ = 0;    ///< fire() calls while enabled
  std::int64_t injected_ = 0; ///< calls that returned != kNone
};

/// Resolves (creating on first use) the named site. References stay valid
/// for the process lifetime; resolve once and keep the reference.
Site& site(const char* name);

/// Arms `spec` at the named site (replacing any previous spec there) and
/// turns the global flag on. Site call/injection counters reset so `after`
/// counts from the next call.
void arm(const std::string& site_name, const FaultSpec& spec);

/// Disarms every site, resets all counters, and turns the global flag off.
void disarm_all();

/// Parses a full spec string ("site:kind[@N][xM],...") and arms each entry.
/// On a malformed entry, stops, reports in `error` (may be null), and leaves
/// earlier entries armed. Empty input is a no-op success.
bool parse_and_arm(const std::string& spec_string, std::string* error);

/// Reads SASYNTH_FAULTS and arms it. Malformed entries are reported on
/// stderr and skipped — a bad spec must not take the daemon down. Returns
/// the number of armed entries.
int install_from_env();

/// Total faults injected across all sites since the last disarm_all().
std::int64_t injected_total();

/// Records one graceful degradation (fallback to fresh DSE, dropped
/// session, transient-accept retry, swallowed task error...) in the obs
/// counter `degraded_total`. Callable from any thread; no-op while metrics
/// are disabled, like every obs instrument.
void note_degraded();

/// Thrown by raise_if_armed to simulate a task body failing mid-flight.
class FaultInjected : public std::runtime_error {
 public:
  explicit FaultInjected(const std::string& site_name)
      : std::runtime_error("injected fault at " + site_name) {}
};

/// Convenience for exception-shaped sites (pool.task): throws FaultInjected
/// when the site fires, otherwise returns.
void raise_if_armed(const char* site_name);

}  // namespace sasynth::fault
