#include "faultinject/faultinject.h"

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "obs/metrics.h"

namespace sasynth::fault {

namespace {

std::atomic<bool> g_faults_enabled{false};

/// Fault metrics (docs/OBSERVABILITY.md): faults fired by this layer and
/// graceful degradations reported by the handling sites. Handles resolved
/// once per process, in the obs style.
struct FaultMetrics {
  obs::Counter& injected;
  obs::Counter& degraded;

  static FaultMetrics& get() {
    static FaultMetrics* m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::global();
      return new FaultMetrics{
          r.counter("faults_injected_total"),
          r.counter("degraded_total"),
      };
    }();
    return *m;
  }
};

/// Site registry: append-only so references stay valid forever (the handles
/// contract). Guarded by its own mutex; lookups happen once per call site.
struct Registry {
  std::mutex mutex;
  std::vector<std::unique_ptr<Site>> sites;

  static Registry& get() {
    static Registry* r = new Registry;
    return *r;
  }
};

}  // namespace

const char* kind_name(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kNone: return "none";
    case ErrorKind::kShortRead: return "short_read";
    case ErrorKind::kEintr: return "eintr";
    case ErrorKind::kEpipe: return "epipe";
    case ErrorKind::kEnospc: return "enospc";
    case ErrorKind::kCorrupt: return "corrupt";
    case ErrorKind::kError: return "error";
    case ErrorKind::kStall: return "stall";
  }
  return "none";
}

bool parse_kind(const std::string& name, ErrorKind* out) {
  for (const ErrorKind kind :
       {ErrorKind::kShortRead, ErrorKind::kEintr, ErrorKind::kEpipe,
        ErrorKind::kEnospc, ErrorKind::kCorrupt, ErrorKind::kError,
        ErrorKind::kStall}) {
    if (name == kind_name(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

const std::vector<std::string>& known_sites() {
  static const std::vector<std::string> kSites = {
      kSiteTcpRead,    kSiteTcpWrite,     kSiteTcpAccept,   kSiteCacheLoad,
      kSiteCacheStore, kSiteCacheEvict,   kSiteSchedAdmit,  kSitePoolTask,
      kSiteDeployPlan, kSiteDeploySelect, kSiteLoopPoll,    kSiteLoopWakeup,
      kSiteShardConnect, kSiteShardRead,  kSiteShardWrite, kSiteShardProbe};
  return kSites;
}

bool faults_enabled() {
  return g_faults_enabled.load(std::memory_order_relaxed);
}

std::int64_t Site::injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return injected_;
}

ErrorKind Site::fire_slow() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (spec_.kind == ErrorKind::kNone) return ErrorKind::kNone;
  ++calls_;
  if (calls_ < spec_.after) return ErrorKind::kNone;
  if (spec_.count >= 0 && calls_ >= spec_.after + spec_.count) {
    return ErrorKind::kNone;  // firing window exhausted
  }
  ++injected_;
  FaultMetrics::get().injected.add(1);
  return spec_.kind;
}

Site& site(const char* name) {
  Registry& r = Registry::get();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (const std::unique_ptr<Site>& s : r.sites) {
    if (s->name() == name) return *s;
  }
  r.sites.push_back(std::make_unique<Site>(name));
  return *r.sites.back();
}

void arm(const std::string& site_name, const FaultSpec& spec) {
  Site& s = site(site_name.c_str());
  {
    std::lock_guard<std::mutex> lock(s.mutex_);
    s.spec_ = spec;
    s.calls_ = 0;
    s.injected_ = 0;
  }
  if (spec.kind != ErrorKind::kNone) {
    g_faults_enabled.store(true, std::memory_order_relaxed);
  }
}

void disarm_all() {
  // Order matters: drop the flag first so new fire() calls take the free
  // path, then clear specs under each site's lock.
  g_faults_enabled.store(false, std::memory_order_relaxed);
  Registry& r = Registry::get();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (const std::unique_ptr<Site>& s : r.sites) {
    std::lock_guard<std::mutex> site_lock(s->mutex_);
    s->spec_ = FaultSpec{};
    s->calls_ = 0;
    s->injected_ = 0;
  }
}

namespace {

/// Parses one "site:kind[@after][xcount]" entry.
bool parse_entry(const std::string& entry, FaultSpec* spec, std::string* name,
                 std::string* error) {
  const std::size_t colon = entry.find(':');
  if (colon == std::string::npos || colon == 0) {
    *error = "'" + entry + "': expected site:kind";
    return false;
  }
  *name = entry.substr(0, colon);
  bool known = false;
  for (const std::string& s : known_sites()) known = known || s == *name;
  if (!known) {
    *error = "'" + *name + "' is not a known fault site";
    return false;
  }
  std::string rest = entry.substr(colon + 1);

  // Split the optional suffixes off the kind, rightmost first: xCOUNT, @AFTER.
  // A marker that is present with an empty value ("error@x3", "error@2x") is
  // a typo, not an omission — reject it rather than guess.
  auto take_suffix = [&rest](char marker, std::string* value) {
    const std::size_t pos = rest.rfind(marker);
    if (pos == std::string::npos) return false;
    *value = rest.substr(pos + 1);
    rest.erase(pos);
    return true;
  };
  std::string count_text;
  std::string after_text;
  const bool has_count = take_suffix('x', &count_text);
  const bool has_after = take_suffix('@', &after_text);

  if (!parse_kind(rest, &spec->kind)) {
    *error = "'" + rest + "' is not a fault kind (short_read, eintr, epipe, "
             "enospc, corrupt, error, stall)";
    return false;
  }
  auto parse_positive = [](const std::string& text, std::int64_t* out) {
    if (text.empty()) return false;
    char* end = nullptr;
    const long long v = std::strtoll(text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || v < 1) return false;
    *out = v;
    return true;
  };
  if (has_after && !parse_positive(after_text, &spec->after)) {
    *error = "'@" + after_text + "': after must be a positive integer";
    return false;
  }
  if (has_count) {
    if (count_text == "*") {
      spec->count = -1;
    } else if (!parse_positive(count_text, &spec->count)) {
      *error = "'x" + count_text + "': count must be a positive integer or *";
      return false;
    }
  }
  return true;
}

}  // namespace

bool parse_and_arm(const std::string& spec_string, std::string* error) {
  std::size_t begin = 0;
  while (begin <= spec_string.size()) {
    std::size_t comma = spec_string.find(',', begin);
    if (comma == std::string::npos) comma = spec_string.size();
    const std::string entry = spec_string.substr(begin, comma - begin);
    begin = comma + 1;
    if (entry.empty()) continue;
    FaultSpec spec;
    std::string name;
    std::string why;
    if (!parse_entry(entry, &spec, &name, &why)) {
      if (error != nullptr) *error = why;
      return false;
    }
    arm(name, spec);
  }
  return true;
}

int install_from_env() {
  const char* env = std::getenv("SASYNTH_FAULTS");
  if (env == nullptr || *env == '\0') return 0;
  int armed = 0;
  std::size_t begin = 0;
  const std::string spec_string(env);
  // Entry-at-a-time so one typo skips that entry, not the whole spec: a
  // misread fault plan must degrade the experiment, never the daemon.
  while (begin <= spec_string.size()) {
    std::size_t comma = spec_string.find(',', begin);
    if (comma == std::string::npos) comma = spec_string.size();
    const std::string entry = spec_string.substr(begin, comma - begin);
    begin = comma + 1;
    if (entry.empty()) continue;
    std::string why;
    if (parse_and_arm(entry, &why)) {
      ++armed;
    } else {
      std::fprintf(stderr, "warning: SASYNTH_FAULTS: %s (entry skipped)\n",
                   why.c_str());
    }
  }
  return armed;
}

std::int64_t injected_total() {
  Registry& r = Registry::get();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::int64_t total = 0;
  for (const std::unique_ptr<Site>& s : r.sites) total += s->injected();
  return total;
}

void note_degraded() { FaultMetrics::get().degraded.add(1); }

void raise_if_armed(const char* site_name) {
  if (!faults_enabled()) return;  // the free path: no lookup, no lock
  Site& s = site(site_name);
  if (s.fire() != ErrorKind::kNone) throw FaultInjected(s.name());
}

}  // namespace sasynth::fault
