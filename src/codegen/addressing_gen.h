// Generation of the kernel's addressing header.
//
// The systolic kernel needs, besides the shape/tile constants, the concrete
// address arithmetic that the paper's template framework instantiates per
// design: how a (block, wavefront, PE coordinate, SIMD lane) tuple maps to
// DDR addresses of the streamed operands, to the per-PE output register
// index, and to the drain addresses. This module emits that arithmetic as
// plain C (shared between the OpenCL kernel and the host), derived from the
// same schedule math the cycle-accurate simulator executes — and tests
// compile the emitted header with the system C compiler and cross-check it
// against BlockSchedule.
#pragma once

#include <string>

#include "core/design_point.h"
#include "loopnest/loop_nest.h"
#include "nn/layer.h"

namespace sasynth {

struct AddressingInfo {
  std::string header;     ///< the generated addressing.h text
  bool in_is_vertical = true;  ///< orientation: IN shifts down (else W does)
  std::int64_t out_regs_per_pe = 0;
  std::int64_t num_blocks = 0;
};

/// Generates the addressing header for a conv design. The nest must be the
/// canonical conv nest (arrays OUT/W/IN).
AddressingInfo generate_addressing(const LoopNest& nest,
                                   const DesignPoint& design,
                                   const ConvLayerDesc& layer);

}  // namespace sasynth
