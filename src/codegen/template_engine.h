// Minimal text-template engine for the source-to-source generators.
//
// Supports {{key}} substitution and {{#key}}...{{/key}} conditional sections
// (kept if the key is bound to a truthy value). Unbound {{key}} references
// are an error, so stale templates fail loudly instead of emitting broken
// kernels.
#pragma once

#include <map>
#include <string>

namespace sasynth {

class TemplateEngine {
 public:
  TemplateEngine() = default;

  /// Binds a replacement value.
  TemplateEngine& bind(const std::string& key, const std::string& value);
  TemplateEngine& bind(const std::string& key, long long value);
  TemplateEngine& bind(const std::string& key, double value, int decimals = 4);

  /// Binds a section flag: {{#key}}...{{/key}} is kept iff true.
  TemplateEngine& bind_section(const std::string& key, bool enabled);

  /// Renders `text`, substituting all bindings.
  /// On error (unbound key, unterminated section) returns an empty string and
  /// sets error().
  std::string render(const std::string& text) const;

  const std::string& error() const { return error_; }

 private:
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> sections_;
  mutable std::string error_;
};

}  // namespace sasynth
