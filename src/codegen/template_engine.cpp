#include "codegen/template_engine.h"

#include "util/strings.h"

namespace sasynth {

TemplateEngine& TemplateEngine::bind(const std::string& key,
                                     const std::string& value) {
  values_[key] = value;
  return *this;
}

TemplateEngine& TemplateEngine::bind(const std::string& key, long long value) {
  values_[key] = std::to_string(value);
  return *this;
}

TemplateEngine& TemplateEngine::bind(const std::string& key, double value,
                                     int decimals) {
  values_[key] = strformat("%.*f", decimals, value);
  return *this;
}

TemplateEngine& TemplateEngine::bind_section(const std::string& key,
                                             bool enabled) {
  sections_[key] = enabled;
  return *this;
}

std::string TemplateEngine::render(const std::string& text) const {
  error_.clear();
  std::string out;
  std::size_t pos = 0;
  // Section suppression depth: when > 0 we are inside a disabled section.
  int suppressed = 0;
  while (pos < text.size()) {
    const std::size_t open = text.find("{{", pos);
    if (open == std::string::npos) {
      if (suppressed == 0) out.append(text.substr(pos));
      break;
    }
    if (suppressed == 0) out.append(text.substr(pos, open - pos));
    const std::size_t close = text.find("}}", open + 2);
    if (close == std::string::npos) {
      error_ = "unterminated {{ at offset " + std::to_string(open);
      return "";
    }
    const std::string token = text.substr(open + 2, close - open - 2);
    pos = close + 2;
    if (!token.empty() && token.front() == '#') {
      const std::string key = token.substr(1);
      const auto it = sections_.find(key);
      if (it == sections_.end()) {
        error_ = "unbound section '" + key + "'";
        return "";
      }
      if (suppressed > 0 || !it->second) ++suppressed;
      continue;
    }
    if (!token.empty() && token.front() == '/') {
      if (suppressed > 0) --suppressed;
      continue;
    }
    if (suppressed > 0) continue;
    const auto it = values_.find(token);
    if (it == values_.end()) {
      error_ = "unbound key '" + token + "'";
      return "";
    }
    out.append(it->second);
  }
  return out;
}

}  // namespace sasynth
