// Source-to-source generation of the systolic OpenCL kernel (paper Fig. 6).
//
// Instantiates the design point into an Intel-FPGA-OpenCL-style kernel file:
// feeder kernels stream the IB/WB contents through channels, an autorun PE
// grid shifts operands between neighbours, and a drain kernel collects the
// output shift chain. The generated text is what the paper hands to the
// Intel SDK; here it is a verifiable artifact (tests parse the parameters
// back out and check design consistency).
#pragma once

#include <string>

#include "core/design_point.h"
#include "fpga/datatype.h"
#include "loopnest/loop_nest.h"
#include "nn/layer.h"

namespace sasynth {

struct KernelSources {
  std::string kernel_cl;     ///< device code (OpenCL)
  std::string params_h;      ///< shared parameter header
  std::string addressing_h;  ///< generated address arithmetic (plain C)
};

/// Generates the kernel for one layer/design pair. The nest provides loop
/// names and trip counts; the design provides the mapping, array shape and
/// tile sizes embedded in the parameter header.
KernelSources generate_opencl_kernel(const LoopNest& nest,
                                     const DesignPoint& design,
                                     const ConvLayerDesc& layer,
                                     DataType dtype);

}  // namespace sasynth
