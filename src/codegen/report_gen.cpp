#include "codegen/report_gen.h"

#include "core/roofline.h"
#include "util/strings.h"
#include "util/table.h"

namespace sasynth {

std::string generate_design_report(const LoopNest& nest,
                                   const DseCandidate& candidate,
                                   const ConvLayerDesc& layer,
                                   const FpgaDevice& device, DataType dtype) {
  const DesignPoint& design = candidate.design;
  std::string out;
  out += "# Systolic Array Design Report\n\n";
  out += "* Layer: `" + layer.summary() + "`\n";
  out += "* Device: " + device.summary() + "\n";
  out += "* Data type: " + data_type_name(dtype) + "\n\n";
  out += "## Architecture\n\n";
  out += "* Mapping: `" + design.mapping().to_string(nest) + "`\n";
  out += "* PE array shape: `" + design.shape().to_string() + "` (" +
         std::to_string(design.shape().num_pes()) + " PEs, " +
         std::to_string(design.num_lanes()) + " MAC lanes)\n";
  out += "* Tiling: `" + design.tiling().to_string() + "`\n\n";
  out += "## Resources\n\n";
  out += "* " + candidate.resources.report.summary() + "\n\n";
  out += "## Performance\n\n";
  out += "* Estimated (assumed clock): " + candidate.estimate.summary() + "\n";
  if (candidate.realized_freq_mhz > 0.0) {
    out += "* Realized (pseudo-P&R clock): " + candidate.realized.summary() +
           "\n";
  }
  out += strformat("* Layer latency: %.3f ms (all %lld groups)\n",
                   layer_latency_ms(layer, candidate.realized_freq_mhz > 0.0
                                               ? candidate.realized
                                               : candidate.estimate),
                   static_cast<long long>(layer.groups));
  const RooflinePoint roofline = roofline_point(
      nest, candidate.design, device, dtype,
      candidate.realized_freq_mhz > 0.0 ? candidate.realized_freq_mhz
                                        : candidate.estimate.freq_mhz);
  out += "* Roofline: " + roofline.summary() + "\n";
  return out;
}

std::string generate_dse_report(const LoopNest& nest, const DseResult& result,
                                const ConvLayerDesc& layer,
                                const FpgaDevice& device, DataType dtype) {
  std::string out;
  out += "# Design Space Exploration Report\n\n";
  out += "* Layer: `" + layer.summary() + "`\n";
  out += "* Device: " + device.summary() + "\n";
  out += "* Data type: " + data_type_name(dtype) + "\n";
  out += "* " + result.stats.summary() + "\n\n";
  out += "## Top candidates\n\n";

  AsciiTable table;
  table.row()
      .cell("#")
      .cell("mapping")
      .cell("shape")
      .cell("est Gops")
      .cell("DSP eff")
      .cell("BRAM")
      .cell("P&R MHz")
      .cell("realized Gops");
  for (std::size_t i = 0; i < result.top.size(); ++i) {
    const DseCandidate& c = result.top[i];
    table.row()
        .cell(static_cast<std::int64_t>(i + 1))
        .cell(c.design.mapping().to_string(nest))
        .cell(c.design.shape().to_string())
        .cell(c.estimated_gops(), 1)
        .percent(c.estimate.eff, 2)
        .cell(c.resources.bram_blocks)
        .cell(c.realized_freq_mhz, 1)
        .cell(c.realized_gops(), 1);
  }
  out += "```\n" + table.render() + "```\n";
  if (const DseCandidate* best = result.best()) {
    out += "\nBest realized design: `" + best->design.to_string(nest) + "` -> " +
           strformat("%.1f Gops @ %.1f MHz\n", best->realized_gops(),
                     best->realized_freq_mhz);
  }
  return out;
}

}  // namespace sasynth
