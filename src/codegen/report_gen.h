// Markdown design-report generation: the human-readable artifact the
// automation flow emits next to the kernel/host sources.
#pragma once

#include <string>

#include "core/dse.h"
#include "fpga/datatype.h"
#include "fpga/device.h"
#include "loopnest/loop_nest.h"
#include "nn/layer.h"

namespace sasynth {

/// One-design report: mapping, shape, tiles, resources, performance.
std::string generate_design_report(const LoopNest& nest,
                                   const DseCandidate& candidate,
                                   const ConvLayerDesc& layer,
                                   const FpgaDevice& device, DataType dtype);

/// DSE summary report: statistics plus the top-K candidate table.
std::string generate_dse_report(const LoopNest& nest, const DseResult& result,
                                const ConvLayerDesc& layer,
                                const FpgaDevice& device, DataType dtype);

}  // namespace sasynth
