// Host-program generation: the C/C++ side of the push-button flow (Fig. 6).
//
// Produces a self-contained OpenCL host source that allocates the layer's
// buffers, programs the device with the generated kernel binary, launches
// the feeder/PE/drain pipeline block by block, and verifies the result
// against a software reference — mirroring the host template the paper's
// framework instantiates.
#pragma once

#include <string>

#include "core/design_point.h"
#include "fpga/datatype.h"
#include "loopnest/loop_nest.h"
#include "nn/layer.h"

namespace sasynth {

std::string generate_host_program(const LoopNest& nest,
                                  const DesignPoint& design,
                                  const ConvLayerDesc& layer, DataType dtype);

}  // namespace sasynth
