#include "util/deadline.h"

#include <algorithm>

namespace sasynth {

Deadline Deadline::after_ms(std::int64_t ms) {
  Deadline d;
  d.bounded_ = true;
  d.when_ = std::chrono::steady_clock::now() +
            std::chrono::milliseconds(std::max<std::int64_t>(0, ms));
  return d;
}

bool Deadline::expired() const {
  if (!bounded_) return false;
  return std::chrono::steady_clock::now() >= when_;
}

std::int64_t Deadline::remaining_ms() const {
  if (!bounded_) {
    // Large enough that min(remaining, anything-sane) picks the other side,
    // small enough that adding a poll tick to it cannot overflow.
    return std::int64_t{1} << 53;
  }
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             when_ - std::chrono::steady_clock::now())
      .count();
}

CancelToken CancelToken::cancellable() {
  return CancelToken(std::make_shared<State>());
}

CancelToken CancelToken::with_deadline(Deadline deadline) {
  auto state = std::make_shared<State>();
  state->deadline = deadline;
  return CancelToken(std::move(state));
}

void CancelToken::request_cancel() {
  if (state_) state_->cancelled.store(true, std::memory_order_relaxed);
}

bool CancelToken::cancelled() const {
  if (!state_) return false;
  if (state_->cancelled.load(std::memory_order_relaxed)) return true;
  if (state_->deadline.expired()) {
    // Latch the expiry: later polls skip the clock read, and copies that
    // race with a request_cancel() agree on the outcome.
    state_->cancelled.store(true, std::memory_order_relaxed);
    return true;
  }
  return false;
}

Deadline CancelToken::deadline() const {
  return state_ ? state_->deadline : Deadline();
}

void CancelToken::set_cut_at_item(std::int64_t index) {
  if (state_) state_->cut_at.store(index, std::memory_order_relaxed);
}

bool CancelToken::cut(std::int64_t item_index) const {
  if (!state_) return false;
  const std::int64_t cut_at = state_->cut_at.load(std::memory_order_relaxed);
  if (cut_at >= 0 && item_index >= cut_at) return true;
  return cancelled();
}

}  // namespace sasynth
