// Fixed-size worker pool for data-parallel sweeps (the DSE's phase-1 hot
// loop). Work is submitted as contiguous index ranges over [0, count): the
// caller's body runs on whichever worker dequeues the range, so bodies must
// tag results by item index (not worker identity) when output order matters.
// Exceptions thrown by a body are captured and rethrown on the calling
// thread after all workers drain.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/deadline.h"

namespace sasynth {

class ThreadPool {
 public:
  /// Body of a parallel loop: processes items [begin, end); `worker` is a
  /// stable index in [0, jobs()) usable for thread-local accumulators.
  using RangeBody =
      std::function<void(std::int64_t begin, std::int64_t end, int worker)>;

  /// jobs <= 0 resolves through resolve_jobs() (SASYNTH_JOBS env, then
  /// hardware concurrency). jobs == 1 creates no threads at all: for_each
  /// runs inline on the caller.
  ///
  /// inline_single = false spawns a worker thread even at jobs == 1, so
  /// submit() never runs a task on the caller. An event-loop submitter
  /// needs this: inline execution would block the loop (and every other
  /// session) behind one request — on a single-core host the default
  /// resolution lands on jobs == 1, which made that a real failure mode,
  /// not a corner case. for_each is unaffected: at jobs == 1 it stays
  /// serial on the caller either way.
  explicit ThreadPool(int jobs = 0, bool inline_single = true);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Resolved worker count (>= 1).
  int jobs() const { return jobs_; }

  /// Splits [0, count) into chunks of `chunk` items (0 picks a chunk that
  /// yields ~8 ranges per worker for load balance), queues them, and blocks
  /// until every range has run. Rethrows the first captured exception.
  /// Not reentrant: one for_each at a time per pool.
  void for_each(std::int64_t count, const RangeBody& body,
                std::int64_t chunk = 0);

  /// Queues a one-off task for any worker (FIFO). In inline mode
  /// (jobs() == 1 with inline_single, i.e. no worker threads) the task runs
  /// immediately on the caller, which keeps single-threaded flows
  /// deterministic. Tasks own their errors: an
  /// exception escaping a task is swallowed, not rethrown (unlike for_each).
  /// A task must not call for_each, submit, or wait_tasks on its own pool.
  ///
  /// Tasks may carry a CancelToken: the pool still runs a cancelled task
  /// (the owner decides what shedding means), but a task observed cancelled
  /// at dequeue is counted in `pool_tasks_expired_total` — the queue-side
  /// view of work that waited past its deadline.
  void submit(std::function<void()> task, CancelToken token = CancelToken());

  /// Blocks until every task queued via submit() has finished. Independent
  /// of for_each (ranges and tasks are tracked separately).
  void wait_tasks();

  /// Worker count requested via the SASYNTH_JOBS environment variable, or 0
  /// when unset/invalid.
  static int env_jobs();

  /// requested > 0 wins; otherwise SASYNTH_JOBS; otherwise
  /// hardware_concurrency (at least 1).
  static int resolve_jobs(int requested);

 private:
  struct Range {
    std::int64_t begin = 0;
    std::int64_t end = 0;
  };

  void worker_loop(int worker);
  void run_serial(std::int64_t count, const RangeBody& body);

  int jobs_ = 1;
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  std::vector<Range> queue_;        ///< pending ranges of the active for_each
  const RangeBody* body_ = nullptr; ///< active body (null when idle)
  std::int64_t inflight_ = 0;       ///< ranges dequeued but not finished
  struct Task {
    std::function<void()> fn;
    double enqueue_us = 0.0;  ///< obs clock at submit; < 0 when not sampled
    CancelToken token;        ///< inert unless the submitter passed one
  };
  std::deque<Task> tasks_;          ///< pending submit() tasks
  std::int64_t task_inflight_ = 0;  ///< tasks dequeued but not finished
  std::exception_ptr first_error_;
  bool shutdown_ = false;
};

}  // namespace sasynth
