// ASCII table renderer for the benchmark binaries.
//
// Every bench regenerates one of the paper's tables/figures as text; this
// class takes rows of cells and renders an aligned, boxed table the way the
// paper prints them, so EXPERIMENTS.md diffs are readable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sasynth {

class AsciiTable {
 public:
  /// Creates a table; the first added row is treated as the header when
  /// `with_header` is true (rendered with a separator line below it).
  explicit AsciiTable(bool with_header = true);

  /// Adds a full row of cells.
  AsciiTable& add_row(std::vector<std::string> cells);

  /// Convenience: starts a row builder.
  class RowBuilder {
   public:
    explicit RowBuilder(AsciiTable& table);
    ~RowBuilder();
    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;

    RowBuilder& cell(std::string text);
    RowBuilder& cell(std::int64_t value);
    RowBuilder& cell(double value, int decimals);
    RowBuilder& percent(double fraction, int decimals);

   private:
    AsciiTable& table_;
    std::vector<std::string> cells_;
  };

  RowBuilder row() { return RowBuilder(*this); }

  /// Renders the table; every column is padded to its widest cell.
  std::string render() const;

  /// Renders and writes to stdout.
  void print() const;

  std::size_t row_count() const { return rows_.size(); }
  std::size_t column_count() const;

 private:
  bool with_header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sasynth
