// Monotonic deadlines and cooperative cancellation.
//
// A Deadline is a point on std::chrono::steady_clock (never the wall clock:
// NTP steps must not expire requests), or "unbounded". A CancelToken is a
// cheap copyable handle to shared cancellation state that long-running work
// polls cooperatively: the DSE checks it at work-item granularity, the
// scheduler at admission and dequeue, transports while blocked in poll().
//
// Cancellation is advisory — nothing is interrupted preemptively. A token
// reports cancelled when either (a) request_cancel() was called on any copy,
// or (b) its deadline expired. Work that observes cancellation stops early
// and surfaces a partial result (DseStatus::kCancelled), never a silent
// truncation.
//
// Determinism: wall-clock expiry is inherently racy across thread counts, so
// tokens also support an item-index *cut* (set_cut_at_item): phase-1 work
// items with index >= the cut are skipped by every worker, exactly, which
// makes a cancelled partial top-K bit-identical at jobs=1 and jobs=N. Tests
// use the cut; production uses deadlines; both flow through the same
// DseStatus::kCancelled path.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace sasynth {

/// A monotonic-clock deadline. Default-constructed = unbounded (never
/// expires). Copyable, trivially cheap to pass by value.
class Deadline {
 public:
  Deadline() = default;  ///< unbounded

  /// A deadline `ms` milliseconds from now; negative clamps to 0 (already
  /// expired — `deadline_ms 0` means "answer instantly or time out").
  static Deadline after_ms(std::int64_t ms);

  bool unbounded() const { return !bounded_; }

  /// True once the clock passed the deadline. Unbounded never expires.
  bool expired() const;

  /// Milliseconds until expiry (<= 0 once expired). A large sentinel
  /// (~292 years) when unbounded, so callers can min() without branching.
  std::int64_t remaining_ms() const;

 private:
  std::chrono::steady_clock::time_point when_{};
  bool bounded_ = false;
};

/// Shared-state cancellation handle. The default-constructed token is
/// *inert*: it never reports cancelled and costs nothing to copy (no
/// allocation) — the right value for "no deadline configured". Cancellable
/// tokens come from cancellable() or with_deadline(); every copy shares one
/// state block.
class CancelToken {
 public:
  CancelToken() = default;  ///< inert: never cancels

  /// A token with no deadline that cancels only via request_cancel().
  static CancelToken cancellable();

  /// A token that reports cancelled once `deadline` expires (or on an
  /// explicit request_cancel(), whichever first).
  static CancelToken with_deadline(Deadline deadline);

  /// Requests cancellation on every copy of this token. No-op on an inert
  /// token. Safe from any thread, idempotent.
  void request_cancel();

  /// True when cancellation was requested or the deadline expired.
  bool cancelled() const;

  /// The token's deadline (unbounded for inert / cancellable() tokens).
  Deadline deadline() const;

  /// Deterministic cut for tests and benches: after set_cut_at_item(k),
  /// cut(i) is true for every i >= k regardless of timing or thread count.
  /// cut(i) also folds in cancelled(), so polling loops need one call.
  void set_cut_at_item(std::int64_t index);
  bool cut(std::int64_t item_index) const;

  /// True for the default-constructed token, which can never report
  /// cancelled. Work that is only safe (or only worthwhile) when it is
  /// guaranteed to run to completion — e.g. the DSE's cross-request
  /// floor seeding, which must not influence a truncated partial result —
  /// keys off this.
  bool inert() const { return state_ == nullptr; }

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    std::atomic<std::int64_t> cut_at{-1};  ///< -1 = no cut
    Deadline deadline;                     ///< immutable after construction
  };

  explicit CancelToken(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;  ///< null = inert
};

}  // namespace sasynth
