#include "util/csv.h"

#include <cstdio>

#include "util/strings.h"

namespace sasynth {

CsvWriter& CsvWriter::header(std::vector<std::string> names) {
  header_ = std::move(names);
  return *this;
}

CsvWriter& CsvWriter::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

CsvWriter::RowBuilder::RowBuilder(CsvWriter& writer) : writer_(writer) {}

CsvWriter::RowBuilder::~RowBuilder() { writer_.add_row(std::move(cells_)); }

CsvWriter::RowBuilder& CsvWriter::RowBuilder::cell(std::string text) {
  cells_.push_back(std::move(text));
  return *this;
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::cell(std::int64_t value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::cell(double value, int decimals) {
  cells_.push_back(strformat("%.*f", decimals, value));
  return *this;
}

std::string CsvWriter::escape_field(const std::string& field) {
  const bool needs_quotes = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

std::string CsvWriter::str() const {
  std::string out;
  auto emit_row = [&out](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += escape_field(row[i]);
    }
    out.push_back('\n');
  };
  if (!header_.empty()) emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
  return out;
}

bool CsvWriter::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string data = str();
  const std::size_t written = std::fwrite(data.data(), 1, data.size(), f);
  const int rc = std::fclose(f);
  return written == data.size() && rc == 0;
}

}  // namespace sasynth
