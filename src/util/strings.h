// String helpers used by the code generator, the C-subset front end and the
// report writers. Kept dependency-free; all functions are pure.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sasynth {

/// Splits on a single character; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char sep);

/// Splits on any whitespace run; empty fields are dropped.
std::vector<std::string> split_ws(std::string_view s);

/// Removes leading and trailing whitespace.
std::string trim(std::string_view s);

/// True if `s` starts with / ends with the given prefix/suffix.
bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to);

/// Lower-cases ASCII.
std::string to_lower(std::string_view s);

/// printf-style formatting into a std::string.
std::string strformat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Repeats a string n times.
std::string repeat(std::string_view s, int n);

/// Indents every line of `s` by `spaces` spaces (including the first).
std::string indent(std::string_view s, int spaces);

/// Formats a double with `digits` significant decimals, trimming trailing
/// zeros ("12.50" -> "12.5", "3.00" -> "3").
std::string format_trimmed(double v, int digits);

/// Strict base-10 int64 conversion (the serve-protocol posture): the entire
/// token must be consumed — non-numeric input, trailing garbage, overflow
/// (ERANGE) and the empty string all reject with *out untouched. The strict
/// posture exists because std::atoi's silent 0 turns "--port abc" into "bind
/// an ephemeral port"; every flag and protocol integer goes through this.
bool parse_int64_strict(const std::string& token, std::int64_t* out);

/// Strict double conversion, same posture: entire token consumed,
/// empty/garbage/overflow reject. Accepts whatever strtod accepts otherwise
/// (including inf/nan spellings) — callers range-check.
bool parse_double_strict(const std::string& token, double* out);

}  // namespace sasynth
