#include "util/rng.h"

#include <cassert>
#include <string>

namespace sasynth {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a64(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fnv1a64(const std::string& s) { return fnv1a64(s.data(), s.size()); }

Rng::Rng(std::uint64_t seed) {
  s0_ = splitmix64(seed);
  s1_ = splitmix64(s0_);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;  // xorshift state must be nonzero
}

std::uint64_t Rng::next_u64() {
  std::uint64_t x = s0_;
  const std::uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias on small n.
  const std::uint64_t limit = ~0ULL - (~0ULL % n);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

std::int64_t Rng::next_range(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::next_double(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Rng::next_gaussian() {
  double sum = 0.0;
  for (int i = 0; i < 12; ++i) sum += next_double();
  return sum - 6.0;
}

void Rng::fill_uniform(std::vector<float>& out, float lo, float hi) {
  for (float& v : out) {
    v = static_cast<float>(next_double(lo, hi));
  }
}

}  // namespace sasynth
