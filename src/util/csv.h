// CSV writer for benchmark output (figure data series).
//
// Figure benches emit both a human-readable table and a machine-readable CSV
// so the figures can be re-plotted; fields containing separators/quotes are
// quoted per RFC 4180.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sasynth {

class CsvWriter {
 public:
  CsvWriter() = default;

  /// Sets the header row (written first).
  CsvWriter& header(std::vector<std::string> names);

  /// Appends a data row. Row length may differ from header length.
  CsvWriter& add_row(std::vector<std::string> cells);

  class RowBuilder {
   public:
    explicit RowBuilder(CsvWriter& writer);
    ~RowBuilder();
    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;

    RowBuilder& cell(std::string text);
    RowBuilder& cell(std::int64_t value);
    RowBuilder& cell(double value, int decimals = 6);

   private:
    CsvWriter& writer_;
    std::vector<std::string> cells_;
  };

  RowBuilder row() { return RowBuilder(*this); }

  /// Serializes header + rows with RFC 4180 quoting.
  std::string str() const;

  /// Writes to a file; returns false on I/O failure.
  bool write_file(const std::string& path) const;

  std::size_t row_count() const { return rows_.size(); }

  /// Quotes a single field if needed (exposed for tests).
  static std::string escape_field(const std::string& field);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sasynth
