#include "util/math_util.h"

#include <cassert>
#include <limits>

namespace sasynth {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  assert(b > 0);
  assert(a >= 0);
  return (a + b - 1) / b;
}

std::int64_t round_up(std::int64_t a, std::int64_t b) {
  return ceil_div(a, b) * b;
}

std::int64_t round_up_pow2(std::int64_t a) {
  assert(a >= 1);
  // 2^62 is the largest int64 power of two; shifting it again would move a
  // bit into the sign position (UB). Anything above it saturates.
  constexpr std::int64_t kMaxPow2 = std::int64_t{1} << 62;
  if (a > kMaxPow2) return std::numeric_limits<std::int64_t>::max();
  std::int64_t p = 1;
  while (p < a) p <<= 1;
  return p;
}

bool is_pow2(std::int64_t a) {
  return a >= 1 && (a & (a - 1)) == 0;
}

int floor_log2(std::int64_t a) {
  assert(a >= 1);
  int l = 0;
  while (a > 1) {
    a >>= 1;
    ++l;
  }
  return l;
}

int ceil_log2(std::int64_t a) {
  assert(a >= 1);
  return floor_log2(a) + (is_pow2(a) ? 0 : 1);
}

std::int64_t gcd(std::int64_t a, std::int64_t b) {
  while (b != 0) {
    const std::int64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

bool checked_mul(std::int64_t a, std::int64_t b, std::int64_t* out) {
  return !__builtin_mul_overflow(a, b, out);
}

std::int64_t sat_mul(std::int64_t a, std::int64_t b) {
  std::int64_t r;
  if (__builtin_mul_overflow(a, b, &r)) {
    return std::numeric_limits<std::int64_t>::max();
  }
  return r;
}

bool checked_product(const std::vector<std::int64_t>& v, std::int64_t* out) {
  std::int64_t p = 1;
  for (const std::int64_t x : v) {
    if (__builtin_mul_overflow(p, x, &p)) return false;
  }
  *out = p;
  return true;
}

std::int64_t lcm(std::int64_t a, std::int64_t b) {
  if (a == 0 || b == 0) return 0;
  return sat_mul(a / gcd(a, b), b);
}

std::int64_t product(const std::vector<std::int64_t>& v) {
  std::int64_t p;
  if (!checked_product(v, &p)) return std::numeric_limits<std::int64_t>::max();
  return p;
}

std::vector<std::int64_t> divisors(std::int64_t n) {
  assert(n >= 1);
  std::vector<std::int64_t> small;
  std::vector<std::int64_t> large;
  for (std::int64_t d = 1; d * d <= n; ++d) {
    if (n % d == 0) {
      small.push_back(d);
      if (d != n / d) large.push_back(n / d);
    }
  }
  for (auto it = large.rbegin(); it != large.rend(); ++it) small.push_back(*it);
  return small;
}

std::vector<std::int64_t> pow2_candidates(std::int64_t n) {
  assert(n >= 1);
  std::vector<std::int64_t> out;
  for (std::int64_t p = 1; p <= n; p <<= 1) out.push_back(p);
  return out;
}

std::vector<std::int64_t> pow2_candidates_covering(std::int64_t n) {
  assert(n >= 1);
  std::vector<std::int64_t> out;
  std::int64_t p = 1;
  for (;; p <<= 1) {
    out.push_back(p);
    if (p >= n) break;
  }
  return out;
}

std::int64_t clamp64(std::int64_t v, std::int64_t lo, std::int64_t hi) {
  if (v < lo) return lo;
  if (v > hi) return hi;
  return v;
}

}  // namespace sasynth
