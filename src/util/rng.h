// Deterministic random number generation.
//
// All synthetic workloads (tensor data, quantization inputs) and the
// pseudo-P&R jitter must be reproducible run to run, so the framework uses
// an explicit splitmix64/xoshiro-style generator instead of std::random
// distributions (whose sequences are implementation-defined).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sasynth {

/// SplitMix64: used to seed and as a one-shot hash of 64-bit keys.
std::uint64_t splitmix64(std::uint64_t x);

/// Deterministic hash of a byte string (FNV-1a, 64-bit). Used to derive
/// per-design pseudo-P&R jitter from the design's textual signature.
std::uint64_t fnv1a64(const void* data, std::size_t size);
std::uint64_t fnv1a64(const std::string& s);

/// Small, fast, reproducible generator (xorshift128+).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5a17a11dULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, n). Precondition: n > 0.
  std::uint64_t next_below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi);

  /// Approximately standard normal (sum of 12 uniforms, CLT).
  double next_gaussian();

  /// Fills a float buffer with uniform values in [lo, hi).
  void fill_uniform(std::vector<float>& out, float lo, float hi);

 private:
  std::uint64_t s0_;
  std::uint64_t s1_;
};

}  // namespace sasynth
