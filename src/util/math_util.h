// Small integer/math helpers shared across the synthesis framework.
//
// All quantities in the analytical models (loop trip counts, tile sizes,
// resource counts) are non-negative 64-bit integers; these helpers provide
// the ceiling-division / power-of-two arithmetic that Eqs. 1, 5 and 6 of the
// paper are built from.
#pragma once

#include <cstdint>
#include <vector>

namespace sasynth {

/// Ceiling division for non-negative integers. ceil_div(0, b) == 0.
/// Precondition: b > 0.
std::int64_t ceil_div(std::int64_t a, std::int64_t b);

/// Rounds `a` up to the next multiple of `b`. Precondition: b > 0, a >= 0.
std::int64_t round_up(std::int64_t a, std::int64_t b);

/// Smallest power of two >= a (a >= 1). round_up_pow2(1) == 1. Saturates to
/// INT64_MAX when the next power of two does not fit in int64 (a > 2^62) —
/// shifting past the sign bit would be undefined behavior.
/// This models the Intel OpenCL flow's buffer allocation, which rounds
/// memory sizes up to powers of two (paper §3.3, Eq. 6).
std::int64_t round_up_pow2(std::int64_t a);

/// True if a is a power of two (a >= 1).
bool is_pow2(std::int64_t a);

/// floor(log2(a)) for a >= 1.
int floor_log2(std::int64_t a);

/// ceil(log2(a)) for a >= 1.
int ceil_log2(std::int64_t a);

/// Greatest common divisor (non-negative inputs).
std::int64_t gcd(std::int64_t a, std::int64_t b);

/// Checked multiply: *out = a * b and true, or false when the product does
/// not fit in int64 (*out unspecified). Non-negative inputs.
bool checked_mul(std::int64_t a, std::int64_t b, std::int64_t* out);

/// Saturating multiply for non-negative inputs: a * b, or INT64_MAX on
/// overflow. A footprint/size that saturates always fails any resource
/// budget check, which is exactly the right outcome for an overflowed model.
std::int64_t sat_mul(std::int64_t a, std::int64_t b);

/// Checked product of extents: false when the running product overflows
/// int64. Empty product is 1.
bool checked_product(const std::vector<std::int64_t>& v, std::int64_t* out);

/// Least common multiple; saturates to INT64_MAX if the result does not fit
/// (a saturated LCM fails every divisibility/resource test downstream).
std::int64_t lcm(std::int64_t a, std::int64_t b);

/// Product of a vector of extents, saturating to INT64_MAX on overflow.
/// Empty product is 1.
std::int64_t product(const std::vector<std::int64_t>& v);

/// All divisors of n in increasing order. Precondition: n >= 1.
std::vector<std::int64_t> divisors(std::int64_t n);

/// Powers of two 1, 2, 4, ... <= n (n >= 1).
std::vector<std::int64_t> pow2_candidates(std::int64_t n);

/// Powers of two 1, 2, 4, ..., first value >= n included (covers the bound).
/// E.g. pow2_candidates_covering(13) == {1, 2, 4, 8, 16}.
/// Used by the DSE's middle-loop pruning (paper §4): tile bounds are explored
/// only at powers of two because BRAM allocation rounds up to powers of two.
std::vector<std::int64_t> pow2_candidates_covering(std::int64_t n);

/// Saturating clamp of `v` into [lo, hi].
std::int64_t clamp64(std::int64_t v, std::int64_t lo, std::int64_t hi);

}  // namespace sasynth
