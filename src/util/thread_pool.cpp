#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "faultinject/faultinject.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace sasynth {

namespace {

/// Pool metrics (docs/OBSERVABILITY.md): range/task throughput plus the
/// submit-to-dequeue queue wait. Handles resolved once per process.
struct PoolMetrics {
  obs::Counter& ranges;
  obs::Counter& tasks;
  obs::Counter& tasks_expired;
  obs::Histogram& task_wait_ms;

  static PoolMetrics& get() {
    static PoolMetrics* m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::global();
      return new PoolMetrics{
          r.counter("pool_ranges_total"),
          r.counter("pool_tasks_total"),
          r.counter("pool_tasks_expired_total"),
          r.histogram("pool_task_wait_ms"),
      };
    }();
    return *m;
  }
};

}  // namespace

int ThreadPool::env_jobs() {
  const char* env = std::getenv("SASYNTH_JOBS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == nullptr || *end != '\0' || v < 1) return 0;
  return static_cast<int>(std::min<long>(v, 1024));
}

int ThreadPool::resolve_jobs(int requested) {
  if (requested > 0) return requested;
  const int env = env_jobs();
  if (env > 0) return env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int jobs, bool inline_single)
    : jobs_(resolve_jobs(jobs)) {
  if (jobs_ == 1 && inline_single) return;  // inline mode: no threads
  threads_.reserve(static_cast<std::size_t>(jobs_));
  for (int w = 0; w < jobs_; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  if (threads_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::run_serial(std::int64_t count, const RangeBody& body) {
  if (count > 0) {
    PoolMetrics::get().ranges.add(1);
    body(0, count, 0);
  }
}

void ThreadPool::for_each(std::int64_t count, const RangeBody& body,
                          std::int64_t chunk) {
  if (count <= 0) return;
  if (jobs_ == 1 || count == 1) {
    run_serial(count, body);
    return;
  }
  if (chunk <= 0) {
    // ~8 ranges per worker amortizes queue traffic while keeping enough
    // granules that one expensive item cannot straggle a whole partition.
    chunk = std::max<std::int64_t>(1, count / (static_cast<std::int64_t>(jobs_) * 8));
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.clear();
    for (std::int64_t begin = 0; begin < count; begin += chunk) {
      queue_.push_back(Range{begin, std::min(begin + chunk, count)});
    }
    PoolMetrics::get().ranges.add(static_cast<std::int64_t>(queue_.size()));
    body_ = &body;
    first_error_ = nullptr;
    inflight_ = 0;
  }
  work_ready_.notify_all();
  std::unique_lock<std::mutex> lock(mutex_);
  work_done_.wait(lock, [this] { return queue_.empty() && inflight_ == 0; });
  body_ = nullptr;
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::submit(std::function<void()> task, CancelToken token) {
  PoolMetrics& pm = PoolMetrics::get();
  if (threads_.empty()) {
    // Inline mode: run on the caller so single-threaded flows stay
    // deterministic and need no synchronization.
    pm.tasks.add(1);
    pm.task_wait_ms.observe(0.0);
    if (token.cancelled()) pm.tasks_expired.add(1);
    try {
      task();
    } catch (const std::exception& e) {
      SA_LOG_WARN << "thread pool: inline task threw (" << e.what() << ")";
      fault::note_degraded();
    } catch (...) {
      SA_LOG_WARN << "thread pool: inline task threw";
      fault::note_degraded();
    }
    return;
  }
  // Sample the enqueue clock only when metrics are on; a negative stamp
  // tells the dequeuing worker to skip the wait-time observation.
  const double enqueue_us =
      obs::metrics_enabled() ? obs::TraceRecorder::global().now_us() : -1.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push_back(Task{std::move(task), enqueue_us, std::move(token)});
  }
  work_ready_.notify_one();
}

void ThreadPool::wait_tasks() {
  if (threads_.empty()) return;
  std::unique_lock<std::mutex> lock(mutex_);
  work_done_.wait(lock, [this] { return tasks_.empty() && task_inflight_ == 0; });
}

void ThreadPool::worker_loop(int worker) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_ready_.wait(lock, [this] {
      return shutdown_ || !queue_.empty() || !tasks_.empty();
    });
    if (shutdown_ && queue_.empty() && tasks_.empty()) return;
    if (!queue_.empty()) {
      const Range range = queue_.back();
      queue_.pop_back();
      const RangeBody* body = body_;
      ++inflight_;
      lock.unlock();
      std::exception_ptr err;
      try {
        (*body)(range.begin, range.end, worker);
      } catch (...) {
        err = std::current_exception();
      }
      lock.lock();
      if (err && !first_error_) first_error_ = err;
      --inflight_;
      if (queue_.empty() && inflight_ == 0) work_done_.notify_all();
      continue;
    }
    Task task = std::move(tasks_.front());
    tasks_.pop_front();
    ++task_inflight_;
    lock.unlock();
    PoolMetrics& pm = PoolMetrics::get();
    pm.tasks.add(1);
    if (task.enqueue_us >= 0.0) {
      pm.task_wait_ms.observe(
          (obs::TraceRecorder::global().now_us() - task.enqueue_us) * 1e-3);
    }
    if (task.token.cancelled()) pm.tasks_expired.add(1);
    try {
      task.fn();
    } catch (const std::exception& e) {
      // Submitted tasks own their errors (for_each keeps rethrow semantics),
      // but a swallowed throw is still a degraded event worth counting.
      SA_LOG_WARN << "thread pool: task threw (" << e.what() << ")";
      fault::note_degraded();
    } catch (...) {
      SA_LOG_WARN << "thread pool: task threw";
      fault::note_degraded();
    }
    lock.lock();
    --task_inflight_;
    if (tasks_.empty() && task_inflight_ == 0) work_done_.notify_all();
  }
}

}  // namespace sasynth
