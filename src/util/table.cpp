#include "util/table.h"

#include <algorithm>
#include <cstdio>

#include "util/strings.h"

namespace sasynth {

AsciiTable::AsciiTable(bool with_header) : with_header_(with_header) {}

AsciiTable& AsciiTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

AsciiTable::RowBuilder::RowBuilder(AsciiTable& table) : table_(table) {}

AsciiTable::RowBuilder::~RowBuilder() { table_.add_row(std::move(cells_)); }

AsciiTable::RowBuilder& AsciiTable::RowBuilder::cell(std::string text) {
  cells_.push_back(std::move(text));
  return *this;
}

AsciiTable::RowBuilder& AsciiTable::RowBuilder::cell(std::int64_t value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

AsciiTable::RowBuilder& AsciiTable::RowBuilder::cell(double value,
                                                     int decimals) {
  cells_.push_back(strformat("%.*f", decimals, value));
  return *this;
}

AsciiTable::RowBuilder& AsciiTable::RowBuilder::percent(double fraction,
                                                        int decimals) {
  cells_.push_back(strformat("%.*f%%", decimals, fraction * 100.0));
  return *this;
}

std::size_t AsciiTable::column_count() const {
  std::size_t n = 0;
  for (const auto& row : rows_) n = std::max(n, row.size());
  return n;
}

std::string AsciiTable::render() const {
  const std::size_t ncols = column_count();
  if (ncols == 0) return "";

  std::vector<std::size_t> widths(ncols, 0);
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_separator = [&]() {
    std::string line = "+";
    for (std::size_t c = 0; c < ncols; ++c) {
      line += std::string(widths[c] + 2, '-');
      line += "+";
    }
    line += "\n";
    return line;
  };

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    line += "\n";
    return line;
  };

  std::string out = render_separator();
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out += render_row(rows_[r]);
    if (r == 0 && with_header_ && rows_.size() > 1) out += render_separator();
  }
  out += render_separator();
  return out;
}

void AsciiTable::print() const { std::fputs(render().c_str(), stdout); }

}  // namespace sasynth
