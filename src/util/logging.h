// Minimal leveled logger used by the DSE and the automation flow.
//
// The flow is a batch tool, so logging goes to stderr and is filtered by a
// process-global level. No dependencies, thread-safety via a single mutex.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace sasynth {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-global minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parses "debug"/"info"/"warn"/"error"/"off" (case-insensitive).
/// Unrecognized names fall back to kInfo; the single-argument form emits a
/// warning when that happens (a silently wrong --log-level in a serving
/// deployment is exactly the misconfiguration that goes unnoticed).
LogLevel parse_log_level(const std::string& name);

/// As above, but reports whether `name` was recognized instead of warning;
/// `recognized` must be non-null.
LogLevel parse_log_level(const std::string& name, bool* recognized);

const char* log_level_name(LogLevel level);

namespace detail {

/// Stream-style log record; emits on destruction if enabled.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace sasynth

#define SA_LOG(level)                                                       \
  ::sasynth::detail::LogMessage(::sasynth::LogLevel::k##level, __FILE__, \
                                __LINE__)

#define SA_LOG_DEBUG SA_LOG(Debug)
#define SA_LOG_INFO SA_LOG(Info)
#define SA_LOG_WARN SA_LOG(Warn)
#define SA_LOG_ERROR SA_LOG(Error)
