#include "util/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace sasynth {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    const std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(items[i]);
  }
  return out;
}

std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  std::size_t pos = 0;
  while (true) {
    const std::size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(s.substr(pos));
      return out;
    }
    out.append(s.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
}

std::string to_lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s)
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  return out;
}

std::string strformat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string repeat(std::string_view s, int n) {
  std::string out;
  out.reserve(s.size() * static_cast<std::size_t>(n > 0 ? n : 0));
  for (int i = 0; i < n; ++i) out.append(s);
  return out;
}

std::string indent(std::string_view s, int spaces) {
  const std::string pad(static_cast<std::size_t>(spaces > 0 ? spaces : 0), ' ');
  std::string out;
  bool at_line_start = true;
  for (const char c : s) {
    if (at_line_start && c != '\n') {
      out.append(pad);
      at_line_start = false;
    }
    out.push_back(c);
    if (c == '\n') at_line_start = true;
  }
  return out;
}

std::string format_trimmed(double v, int digits) {
  std::string s = strformat("%.*f", digits, v);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

bool parse_int64_strict(const std::string& token, std::int64_t* out) {
  // strtoll/strtod skip leading whitespace; "whole token consumed" means
  // leading space is garbage too, so reject it up front.
  if (token.empty() || std::isspace(static_cast<unsigned char>(token[0]))) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(token.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || errno == ERANGE) return false;
  *out = v;
  return true;
}

bool parse_double_strict(const std::string& token, double* out) {
  if (token.empty() || std::isspace(static_cast<unsigned char>(token[0]))) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end == nullptr || *end != '\0' || errno == ERANGE) return false;
  *out = v;
  return true;
}

}  // namespace sasynth
