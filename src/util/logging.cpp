#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <cstring>
#include <iostream>

namespace sasynth {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_emit_mutex;

const char* basename_of(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

LogLevel parse_log_level(const std::string& name, bool* recognized) {
  *recognized = true;
  std::string lower;
  lower.reserve(name.size());
  for (const char c : name) lower.push_back(static_cast<char>(std::tolower(c)));
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  *recognized = false;
  return LogLevel::kInfo;
}

LogLevel parse_log_level(const std::string& name) {
  bool recognized = false;
  const LogLevel level = parse_log_level(name, &recognized);
  if (!recognized) {
    SA_LOG_WARN << "unrecognized log level '" << name
                << "', falling back to info "
                << "(expected debug|info|warn|error|off)";
  }
  return level;
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

namespace detail {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= g_level.load() && level != LogLevel::kOff),
      level_(level) {
  if (enabled_) {
    stream_ << "[" << log_level_name(level_) << " " << basename_of(file) << ":"
            << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::cerr << stream_.str() << "\n";
}

}  // namespace detail
}  // namespace sasynth
