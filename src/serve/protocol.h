// Line-oriented request/response protocol of the synthesis service
// (sasynthd), in the style of design_io's `sasynth-design v1` text format.
//
// A request is a block of lines:
//
//   sasynth-request v1
//   layer I,O,R,C,K[,stride[,groups]]
//   device <name>            (optional, default arria10_gt1150)
//   dtype <name>             (optional, default float32)
//   option <key> <value>     (optional, repeatable; see kOptionKeys below)
//   deadline_ms <N>          (optional, at most once; N >= 0 milliseconds of
//                            end-to-end budget — see docs/SERVING.md
//                            "Deadlines & overload")
//   end
//
// Outside a block, the bare commands `stats`, `ping`, `health` and
// `shutdown` are recognized by the server session.
//
// A successful response carries the chosen design point (as an embeddable
// `sasynth-design v1` blob), the predicted performance at the realized
// pseudo-P&R clock, and the resource/timing summary:
//
//   sasynth-response v1 ok
//   sasynth-design v1
//   mapping row=<l> col=<l> vec=<l>
//   shape <rows> <cols> <vec>
//   middle <s_0> ... <s_n-1>
//   perf freq_mhz=<f> throughput_gops=<f> latency_ms=<f> memory_bound=<0|1>
//   resource dsp=<n> bram=<n> luts=<n> ffs=<n> dsp_util=<f> bram_util=<f> logic_util=<f>
//   end
//
// Responses are a pure function of the request: cache state, worker count and
// request interleaving never change a single byte (the serve determinism
// tests assert this), so whether an answer came from the DesignCache or a
// fresh DSE is reported only through logs and the `stats` command.
//
// Failure responses are single-line verdicts:
//
//   sasynth-response v1 error <message>     (malformed request, no design)
//   sasynth-response v1 retry <message>     (admission queue full; back off)
//
// followed by `end`.
//
// A deadline that expires before the exploration completes yields a timeout
// verdict. When a best-so-far design exists it follows the verdict line in
// exactly the ok-payload layout (design blob, perf, resource), so clients
// parse one shape for both:
//
//   sasynth-response v1 timeout <message>   [+ optional design payload]
//
// also `end`-terminated. Timeout messages are fixed strings (no numbers), so
// a timed-out request is deterministic for a given cancellation point.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/design_point.h"
#include "core/dse.h"
#include "core/perf_model.h"
#include "fpga/datatype.h"
#include "fpga/device.h"
#include "fpga/synth.h"
#include "nn/layer.h"

namespace sasynth {

/// Protocol line markers.
inline constexpr const char* kRequestMagic = "sasynth-request v1";
inline constexpr const char* kResponseMagic = "sasynth-response v1";
inline constexpr const char* kStatsMagic = "sasynth-stats v1";
inline constexpr const char* kHealthMagic = "sasynth-health v1";
inline constexpr const char* kBlockEnd = "end";

/// One synthesis request, fully resolved (defaults applied).
struct ServeRequest {
  ConvLayerDesc layer;
  FpgaDevice device;
  DataType dtype = DataType::kFloat32;
  DseOptions dse;
  /// End-to-end budget in milliseconds; -1 = none given (the server may
  /// substitute --default-deadline). 0 is legal and means "already expired":
  /// the scheduler sheds it at admission with a deterministic timeout
  /// verdict, without ever consulting the cache or paying for a DSE. Like
  /// dse.jobs, the deadline is execution policy — it never enters
  /// canonical_request_text(), so a deadlined request hits the same cache
  /// entry as the plain one.
  std::int64_t deadline_ms = -1;

  ServeRequest();
};

struct ParsedRequest {
  bool ok = false;
  std::string error;
  ServeRequest request;
};

/// Parses "I,O,R,C,K[,stride[,groups]]" (positive integers). Shared by the
/// protocol and sasynth_cli's --layer flag.
bool parse_layer_fields(const std::string& spec, ConvLayerDesc* out,
                        std::string* error);

/// Parses a full request block (with or without the trailing `end`).
/// Never throws; unknown fields, unknown option keys and out-of-range values
/// all produce ok=false with a message.
ParsedRequest parse_request_block(const std::string& block);

/// One `option <key> <value>` setter over a DseOptions. Shared by the
/// synthesis and deploy (deploy_protocol.h) request parsers so both speak
/// the same option vocabulary. Returns an error message or "".
std::string apply_dse_option(DseOptions* dse, const std::string& key,
                             const std::string& value);

/// The canonical option lines (freq..bound_prune, fixed order, %.17g
/// doubles) shared by canonical_request_text and the deploy canonical text.
/// `dse.jobs` and cancellation state are execution policy and excluded.
std::string canonical_dse_options_text(const DseOptions& dse);

/// Canonical text form of the complete request tuple
/// (layer, device, dtype, options) — the DesignCache key material. Every
/// option is rendered explicitly (a request omitting an option hashes equal
/// to one spelling out the default), in a fixed order with %.17g doubles.
/// `dse.jobs` is deliberately excluded: worker count never changes results
/// (PR 1's determinism guarantee), so it must not fragment the cache.
std::string canonical_request_text(const ServeRequest& request);

/// FNV-1a (util/rng.h) key of the canonical text.
std::uint64_t request_cache_key(const ServeRequest& request);

/// Response formatters. All output ends with "end\n".
std::string format_ok_response(const DesignPoint& design,
                               const PerfEstimate& realized,
                               const ResourceReport& resources,
                               double latency_ms);
std::string format_error_response(const std::string& message);
std::string format_retry_response(const std::string& message);

/// Timeout verdict without a payload (the deadline expired before any
/// candidate existed — at admission, in the queue, or in an empty sweep).
std::string format_timeout_response(const std::string& message);

/// Timeout verdict carrying the best-so-far design in the ok-payload layout.
std::string format_timeout_response(const std::string& message,
                                    const DesignPoint& design,
                                    const PerfEstimate& realized,
                                    const ResourceReport& resources,
                                    double latency_ms);

}  // namespace sasynth
