// Line-oriented request/response protocol of the synthesis service
// (sasynthd), in the style of design_io's `sasynth-design v1` text format.
//
// A request is a block of lines:
//
//   sasynth-request v1
//   layer I,O,R,C,K[,stride[,groups]]
//   device <name>            (optional, default arria10_gt1150)
//   dtype <name>             (optional, default float32)
//   option <key> <value>     (optional, repeatable; see kOptionKeys below)
//   end
//
// Outside a block, the bare commands `stats`, `ping` and `shutdown` are
// recognized by the server session.
//
// A successful response carries the chosen design point (as an embeddable
// `sasynth-design v1` blob), the predicted performance at the realized
// pseudo-P&R clock, and the resource/timing summary:
//
//   sasynth-response v1 ok
//   sasynth-design v1
//   mapping row=<l> col=<l> vec=<l>
//   shape <rows> <cols> <vec>
//   middle <s_0> ... <s_n-1>
//   perf freq_mhz=<f> throughput_gops=<f> latency_ms=<f> memory_bound=<0|1>
//   resource dsp=<n> bram=<n> luts=<n> ffs=<n> dsp_util=<f> bram_util=<f> logic_util=<f>
//   end
//
// Responses are a pure function of the request: cache state, worker count and
// request interleaving never change a single byte (the serve determinism
// tests assert this), so whether an answer came from the DesignCache or a
// fresh DSE is reported only through logs and the `stats` command.
//
// Failure responses are single-line verdicts:
//
//   sasynth-response v1 error <message>     (malformed request, no design)
//   sasynth-response v1 retry <message>     (admission queue full; back off)
//
// followed by `end`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/design_point.h"
#include "core/dse.h"
#include "core/perf_model.h"
#include "fpga/datatype.h"
#include "fpga/device.h"
#include "fpga/synth.h"
#include "nn/layer.h"

namespace sasynth {

/// Protocol line markers.
inline constexpr const char* kRequestMagic = "sasynth-request v1";
inline constexpr const char* kResponseMagic = "sasynth-response v1";
inline constexpr const char* kStatsMagic = "sasynth-stats v1";
inline constexpr const char* kBlockEnd = "end";

/// One synthesis request, fully resolved (defaults applied).
struct ServeRequest {
  ConvLayerDesc layer;
  FpgaDevice device;
  DataType dtype = DataType::kFloat32;
  DseOptions dse;

  ServeRequest();
};

struct ParsedRequest {
  bool ok = false;
  std::string error;
  ServeRequest request;
};

/// Parses "I,O,R,C,K[,stride[,groups]]" (positive integers). Shared by the
/// protocol and sasynth_cli's --layer flag.
bool parse_layer_fields(const std::string& spec, ConvLayerDesc* out,
                        std::string* error);

/// Parses a full request block (with or without the trailing `end`).
/// Never throws; unknown fields, unknown option keys and out-of-range values
/// all produce ok=false with a message.
ParsedRequest parse_request_block(const std::string& block);

/// Canonical text form of the complete request tuple
/// (layer, device, dtype, options) — the DesignCache key material. Every
/// option is rendered explicitly (a request omitting an option hashes equal
/// to one spelling out the default), in a fixed order with %.17g doubles.
/// `dse.jobs` is deliberately excluded: worker count never changes results
/// (PR 1's determinism guarantee), so it must not fragment the cache.
std::string canonical_request_text(const ServeRequest& request);

/// FNV-1a (util/rng.h) key of the canonical text.
std::uint64_t request_cache_key(const ServeRequest& request);

/// Response formatters. All output ends with "end\n".
std::string format_ok_response(const DesignPoint& design,
                               const PerfEstimate& realized,
                               const ResourceReport& resources,
                               double latency_ms);
std::string format_error_response(const std::string& message);
std::string format_retry_response(const std::string& message);

}  // namespace sasynth
