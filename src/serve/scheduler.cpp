#include "serve/scheduler.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "faultinject/faultinject.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace sasynth {

namespace {

/// Scheduler metrics (docs/OBSERVABILITY.md): admission outcomes, the live
/// queue depth, the accept-to-execute queue wait, and the deadline shedding
/// counters.
struct SchedMetrics {
  obs::Counter& admitted;
  obs::Counter& rejected;
  obs::Counter& rejected_expired;
  obs::Counter& shed_expired;
  obs::Gauge& queue_depth;
  obs::Histogram& queue_wait_ms;

  static SchedMetrics& get() {
    static SchedMetrics* m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::global();
      return new SchedMetrics{
          r.counter("serve_admitted_total"),
          r.counter("serve_rejected_total"),
          r.counter("serve_rejected_expired_total"),
          r.counter("serve_shed_expired_total"),
          r.gauge("serve_queue_depth"),
          r.histogram("serve_queue_wait_ms"),
      };
    }();
    return *m;
  }
};

}  // namespace

RequestScheduler::RequestScheduler(int jobs, std::int64_t queue_limit)
    // inline_single = false: try_submit must never execute the request on
    // the caller. The caller is the event-loop thread (or a stdio reader),
    // and an inline DSE would block every other session — which is exactly
    // what happens at jobs == 1, the default resolution on a 1-core host.
    : queue_limit_(std::max<std::int64_t>(1, queue_limit)),
      pool_(jobs, /*inline_single=*/false) {}

Admission RequestScheduler::try_submit(Work work, Deadline deadline,
                                       CancelToken token) {
  static fault::Site& admit_site = fault::site(fault::kSiteSchedAdmit);
  SchedMetrics& sm = SchedMetrics::get();
  // Shed before anything else: admitting a dead request would only let it
  // occupy a slot a live one could use. Checked outside the lock — expiry
  // needs no queue state.
  if (deadline.expired()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++rejected_expired_;
    }
    sm.rejected_expired.add(1);
    return Admission::kExpired;
  }
  const bool admit_fault = admit_site.fire() != fault::ErrorKind::kNone;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (admit_fault || pending_ >= queue_limit_) {
      // An injected admission failure is indistinguishable from a full
      // queue on purpose: the caller's retry-response path is exactly what
      // the fault is exercising.
      ++rejected_;
      sm.rejected.add(1);
      if (admit_fault) fault::note_degraded();
      return Admission::kQueueFull;
    }
    ++pending_;
    high_water_ = std::max(high_water_, pending_);
    sm.admitted.add(1);
    sm.queue_depth.set(pending_);
  }
  const double accept_us =
      obs::metrics_enabled() ? obs::TraceRecorder::global().now_us() : -1.0;
  pool_.submit(
      [this, accept_us, deadline, work = std::move(work)] {
        SchedMetrics& m = SchedMetrics::get();
        if (accept_us >= 0.0) {
          m.queue_wait_ms.observe(
              (obs::TraceRecorder::global().now_us() - accept_us) * 1e-3);
        }
        // Dequeue-side shedding: the deadline ran out while this request sat
        // behind others. The callback still runs (the session's ordered
        // writer needs a response for every seq) but is told to skip the
        // work itself.
        const bool shed = deadline.expired();
        if (shed) {
          {
            std::lock_guard<std::mutex> lock(mutex_);
            ++shed_expired_;
          }
          m.shed_expired.add(1);
        }
        try {
          work(shed);
        } catch (const std::exception& e) {
          // A throwing work item must not leak its admission slot: pending_
          // would never reach zero again and every later drain() would hang
          // the session. The error itself is the submitter's to handle.
          SA_LOG_WARN << "scheduler: work item threw (" << e.what()
                      << "), releasing its admission slot";
          fault::note_degraded();
        } catch (...) {
          SA_LOG_WARN
              << "scheduler: work item threw, releasing its admission slot";
          fault::note_degraded();
        }
        std::lock_guard<std::mutex> lock(mutex_);
        --pending_;
        m.queue_depth.set(pending_);
        idle_.notify_all();
      },
      std::move(token));
  return Admission::kAccepted;
}

void RequestScheduler::submit_followup(std::function<void()> fn) {
  SchedMetrics& sm = SchedMetrics::get();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++pending_;
    high_water_ = std::max(high_water_, pending_);
    sm.queue_depth.set(pending_);
  }
  pool_.submit([this, fn = std::move(fn)] {
    try {
      fn();
    } catch (const std::exception& e) {
      // Like a throwing work item: the slot must be released or every later
      // drain() hangs; the error itself is the continuation's to handle.
      SA_LOG_WARN << "scheduler: follow-up threw (" << e.what()
                  << "), releasing its slot";
      fault::note_degraded();
    } catch (...) {
      SA_LOG_WARN << "scheduler: follow-up threw, releasing its slot";
      fault::note_degraded();
    }
    std::lock_guard<std::mutex> lock(mutex_);
    --pending_;
    SchedMetrics::get().queue_depth.set(pending_);
    idle_.notify_all();
  });
}

void RequestScheduler::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return pending_ == 0; });
}

bool RequestScheduler::drain_for(std::int64_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  return idle_.wait_for(lock,
                        std::chrono::milliseconds(
                            std::max<std::int64_t>(0, timeout_ms)),
                        [this] { return pending_ == 0; });
}

std::int64_t RequestScheduler::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_;
}

std::int64_t RequestScheduler::high_water() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return high_water_;
}

std::int64_t RequestScheduler::rejected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rejected_;
}

std::int64_t RequestScheduler::rejected_expired() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rejected_expired_;
}

std::int64_t RequestScheduler::shed_expired() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shed_expired_;
}

}  // namespace sasynth
