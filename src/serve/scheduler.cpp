#include "serve/scheduler.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sasynth {

namespace {

/// Scheduler metrics (docs/OBSERVABILITY.md): admission outcomes, the live
/// queue depth, and the accept-to-execute queue wait.
struct SchedMetrics {
  obs::Counter& admitted;
  obs::Counter& rejected;
  obs::Gauge& queue_depth;
  obs::Histogram& queue_wait_ms;

  static SchedMetrics& get() {
    static SchedMetrics* m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::global();
      return new SchedMetrics{
          r.counter("serve_admitted_total"),
          r.counter("serve_rejected_total"),
          r.gauge("serve_queue_depth"),
          r.histogram("serve_queue_wait_ms"),
      };
    }();
    return *m;
  }
};

}  // namespace

RequestScheduler::RequestScheduler(int jobs, std::int64_t queue_limit)
    : queue_limit_(std::max<std::int64_t>(1, queue_limit)), pool_(jobs) {}

bool RequestScheduler::try_submit(std::function<void()> work) {
  SchedMetrics& sm = SchedMetrics::get();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (pending_ >= queue_limit_) {
      ++rejected_;
      sm.rejected.add(1);
      return false;
    }
    ++pending_;
    high_water_ = std::max(high_water_, pending_);
    sm.admitted.add(1);
    sm.queue_depth.set(pending_);
  }
  const double accept_us =
      obs::metrics_enabled() ? obs::TraceRecorder::global().now_us() : -1.0;
  pool_.submit([this, accept_us, work = std::move(work)] {
    SchedMetrics& m = SchedMetrics::get();
    if (accept_us >= 0.0) {
      m.queue_wait_ms.observe(
          (obs::TraceRecorder::global().now_us() - accept_us) * 1e-3);
    }
    work();
    std::lock_guard<std::mutex> lock(mutex_);
    --pending_;
    m.queue_depth.set(pending_);
    idle_.notify_all();
  });
  return true;
}

void RequestScheduler::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return pending_ == 0; });
}

std::int64_t RequestScheduler::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_;
}

std::int64_t RequestScheduler::high_water() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return high_water_;
}

std::int64_t RequestScheduler::rejected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rejected_;
}

}  // namespace sasynth
