#include "serve/scheduler.h"

#include <algorithm>
#include <utility>

namespace sasynth {

RequestScheduler::RequestScheduler(int jobs, std::int64_t queue_limit)
    : queue_limit_(std::max<std::int64_t>(1, queue_limit)), pool_(jobs) {}

bool RequestScheduler::try_submit(std::function<void()> work) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (pending_ >= queue_limit_) {
      ++rejected_;
      return false;
    }
    ++pending_;
    high_water_ = std::max(high_water_, pending_);
  }
  pool_.submit([this, work = std::move(work)] {
    work();
    std::lock_guard<std::mutex> lock(mutex_);
    --pending_;
    idle_.notify_all();
  });
  return true;
}

void RequestScheduler::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return pending_ == 0; });
}

std::int64_t RequestScheduler::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_;
}

std::int64_t RequestScheduler::high_water() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return high_water_;
}

std::int64_t RequestScheduler::rejected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rejected_;
}

}  // namespace sasynth
