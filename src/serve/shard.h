// Sharded phase-1 DSE across daemons: the `sasynth-shard v1` wire block and
// the coordinator that partitions the (mapping, shape) work-item space over
// worker daemons and reduces their partial top-Ks.
//
// Shard assignment is a deterministic index-range split of the phase-1 item
// list (DesignSpaceExplorer::count_phase1_items) — never load-dependent —
// and the reduce step is the same stable (estimated_gops desc, bram asc,
// item order) merge the in-process sweep uses, so the coordinator's response
// is byte-identical to single-node execution at any shard count, any jobs
// count, and any cache state. Each worker evaluates only its window
// (DseOptions::shard_begin/shard_end); the windowed candidate list is
// exactly the full sweep's list restricted to the window, every item of
// range p precedes every item of range q > p, and the global top-K
// restricted to one range is a prefix of that range's order — so merging
// per-range top-Ks with earlier-range-wins ties reproduces the single-node
// top-K bit for bit.
//
// A shard request block (coordinator -> worker):
//
//   sasynth-shard v1
//   shard_items <begin> <end>     (the item window, half-open)
//   layer I,O,R,C,K,stride,groups
//   device <name>
//   dtype <name>
//   option <key> <value>          (the canonical option set, canonical
//                                  order; min_util carries the coordinator's
//                                  current relax-round floor and auto_relax
//                                  is forced off — relaxation is a global
//                                  decision the coordinator owns)
//   deadline_ms <N>               (optional: remaining budget at dispatch)
//   end
//
// Everything after the shard_items line is an ordinary request body —
// parse_shard_request_block strips the shard framing and delegates to
// parse_request_block, so the two protocols cannot drift.
//
// A worker answers with its windowed partial (one candidate per surviving
// work item, already stable-sorted, truncated to top_k):
//
//   sasynth-shard-response v1 ok
//   items <N>            (the worker's own count of the FULL item list — a
//                         mismatch with the coordinator's count means the
//                         nodes disagree on the enumeration and the range
//                         is re-executed locally instead of merged)
//   cancelled <0|1>
//   work_items <W>
//   candidates <C>
//   <C embedded `sasynth-design v1` blobs, 4 lines each>
//   end
//
// or `sasynth-shard-response v1 error <message>` + `end`.
//
// Degradation contract: a dead/slow/faulty peer (fault sites shard.connect,
// shard.read, shard.write), a malformed partial, or an item-count mismatch
// never fails the request — the coordinator re-executes that peer's range
// locally under the request's remaining deadline budget, counted in
// `shard_degraded_total` (and `degraded_total` via fault::note_degraded).
//
// Resilience tier (serve/peer_health.h): every RPC outcome feeds a per-peer
// circuit breaker. An open breaker skips the doomed connect entirely (the
// range goes straight to local re-execution, so a dead peer costs the fleet
// one timeout total, not one per request); a half-open peer gets exactly one
// in-flight probe request; and with hedge_ms > 0 a slow-but-alive peer is
// hedged — after the delay the coordinator re-executes the range locally and
// takes whichever finishes first. None of this can change a response byte:
// both execution sites enumerate the identical window.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/dse.h"
#include "serve/peer_health.h"
#include "serve/protocol.h"
#include "util/thread_pool.h"

namespace sasynth {

inline constexpr const char* kShardRequestMagic = "sasynth-shard v1";
inline constexpr const char* kShardResponseMagic = "sasynth-shard-response v1";

/// One parsed shard work order: the fully resolved inner request plus the
/// item window the worker must evaluate.
struct ShardRequest {
  ServeRequest request;
  std::int64_t item_begin = 0;
  std::int64_t item_end = 0;
};

struct ParsedShardRequest {
  bool ok = false;
  std::string error;
  ShardRequest request;
};

/// Parses a `sasynth-shard v1` block (with or without the trailing `end`).
/// Strict like parse_request_block: a missing/duplicate/garbled shard_items
/// line, a bad window, or any inner-request error yields ok=false.
ParsedShardRequest parse_shard_request_block(const std::string& block);

/// Serializes a shard work order. `request.dse` is rendered through the
/// existing canonical option set (min_util/auto_relax included as-is — the
/// caller pins the relax round before formatting). deadline_ms < 0 omits
/// the line.
std::string format_shard_request_block(const ServeRequest& request,
                                       std::int64_t item_begin,
                                       std::int64_t item_end,
                                       std::int64_t deadline_ms);

/// One worker's windowed partial result.
struct ShardPartial {
  bool ok = false;
  std::string error;          ///< set when ok == false
  std::int64_t total_items = 0;  ///< the worker's full item-list count
  std::int64_t work_items = 0;   ///< window items actually dispatched
  bool cancelled = false;        ///< the worker's token fired mid-window
  std::vector<DesignPoint> designs;  ///< sorted, truncated to top_k
};

std::string format_shard_response(const ShardPartial& partial);
std::string format_shard_error_response(const std::string& message);

/// Parses a worker response; every design blob is validated against `nest`
/// (DesignLoadMode::kStrict), so a corrupt peer degrades instead of feeding
/// the merge garbage.
ShardPartial parse_shard_response(const std::string& text,
                                  const LoopNest& nest);

struct ShardOptions {
  /// Worker endpoints, "host:port" each (numeric IPv4 or "localhost" —
  /// sasynthd binds loopback only, so a shard fleet is co-located by
  /// design; remote fleets front workers with a real ingress). Empty
  /// disables the tier.
  std::vector<std::string> peers;
  /// Per-step (connect / write / read) bound on peer I/O, milliseconds;
  /// 0 = unbounded. A stalled peer costs at most this much before its range
  /// degrades to local re-execution.
  std::int64_t io_timeout_ms = 30000;
  /// Consecutive request-path failures that open a peer's circuit breaker
  /// (--peer-failure-threshold).
  int failure_threshold = 3;
  /// Background prober cadence and backoff base, milliseconds
  /// (--peer-probe-interval); 0 disables the prober (breakers still open,
  /// but only an operator restart re-admits a peer).
  std::int64_t probe_interval_ms = 1000;
  /// Hedge delay, milliseconds (--shard-hedge-ms): how long the coordinator
  /// waits on a peer RPC before starting local re-execution of the same
  /// range and taking whichever finishes first. 0 disables hedging (wait
  /// for the RPC's own io timeouts, the pre-hedge behavior).
  std::int64_t hedge_ms = 0;
};

/// Validates and splits a "host:port,host:port,..." flag value. Returns an
/// error message or "" (with the peers appended to `out`).
std::string parse_peer_list(const std::string& spec,
                            std::vector<std::string>* out);

/// The coordinator: a drop-in replacement for DesignSpaceExplorer::explore
/// that fans phase 1 out over the peer fleet and runs phase 2 locally on
/// the merged top-K. explore() is thread-safe and callable from scheduler
/// pool tasks; RPCs run on a persistent worker pool sized to the peer count
/// (not one short-lived thread per range per request), and every outcome
/// feeds the shared PeerHealthRegistry.
class ShardCoordinator {
 public:
  explicit ShardCoordinator(ShardOptions options);
  ~ShardCoordinator();

  bool enabled() const { return !options_.peers.empty(); }
  int num_peers() const { return static_cast<int>(options_.peers.size()); }
  const ShardOptions& options() const { return options_; }

  /// The per-peer breaker registry; null when the tier is disabled (no
  /// peers). Exposed for health/stats surfacing and tests.
  PeerHealthRegistry* health() const { return health_.get(); }

  /// Joins the background prober thread. Idempotent; the server calls it at
  /// drain/shutdown so the prober never outlives the transports.
  void stop_health_prober();

  /// Sharded two-phase DSE for one resolved request. Mirrors
  /// DesignSpaceExplorer::explore exactly — including the auto_relax_util
  /// retry loop, which must be driven globally (a per-worker relax decision
  /// would depend on where the range boundaries fell): each round fans the
  /// full item list out at one utilization floor, and only a globally empty
  /// round relaxes. `request.dse.cancel` governs both the peer RPC budget
  /// and local fallbacks; a fired token yields DseStatus::kCancelled with
  /// the best-so-far merge, same as in-process.
  DseResult explore(const ServeRequest& request, const LoopNest& nest) const;

 private:
  /// One utilization round: split, consult the breaker registry, fan out,
  /// degrade skipped/failed ranges to local re-execution (hedging slow
  /// ones), merge. Appends `cancelled` into *cancelled (never clears it).
  std::vector<DseCandidate> run_round(const ServeRequest& request,
                                      const LoopNest& nest, double util,
                                      DseStats* stats, bool* cancelled) const;

  /// One peer RPC (connect + send + receive + parse). ok=false on any
  /// transport/protocol failure; never throws.
  ShardPartial call_peer(const std::string& peer, const std::string& block,
                         const LoopNest& nest) const;

  /// Local re-execution of one range (the degradation path).
  std::vector<DseCandidate> local_window(const ServeRequest& request,
                                         const LoopNest& nest, double util,
                                         std::int64_t begin, std::int64_t end,
                                         bool* cancelled) const;

  ShardOptions options_;
  // health_ before rpc_pool_: the pool destructs (and joins its in-flight
  // RPC tasks, which report into the registry) first. Both are null when
  // the tier is disabled. Mutable because explore() is const — the breaker
  // bookkeeping is execution policy, never response content.
  mutable std::unique_ptr<PeerHealthRegistry> health_;
  mutable std::unique_ptr<ThreadPool> rpc_pool_;
};

}  // namespace sasynth
