// Sharded phase-1 DSE across daemons: the `sasynth-shard v1` wire block and
// the coordinator that partitions the (mapping, shape) work-item space over
// worker daemons and reduces their partial top-Ks.
//
// Shard assignment is a deterministic index-range split of the phase-1 item
// list (DesignSpaceExplorer::count_phase1_items) — never load-dependent —
// and the reduce step is the same stable (estimated_gops desc, bram asc,
// item order) merge the in-process sweep uses, so the coordinator's response
// is byte-identical to single-node execution at any shard count, any jobs
// count, and any cache state. Each worker evaluates only its window
// (DseOptions::shard_begin/shard_end); the windowed candidate list is
// exactly the full sweep's list restricted to the window, every item of
// range p precedes every item of range q > p, and the global top-K
// restricted to one range is a prefix of that range's order — so merging
// per-range top-Ks with earlier-range-wins ties reproduces the single-node
// top-K bit for bit.
//
// A shard request block (coordinator -> worker):
//
//   sasynth-shard v1
//   shard_items <begin> <end>     (the item window, half-open)
//   layer I,O,R,C,K,stride,groups
//   device <name>
//   dtype <name>
//   option <key> <value>          (the canonical option set, canonical
//                                  order; min_util carries the coordinator's
//                                  current relax-round floor and auto_relax
//                                  is forced off — relaxation is a global
//                                  decision the coordinator owns)
//   deadline_ms <N>               (optional: remaining budget at dispatch)
//   end
//
// Everything after the shard_items line is an ordinary request body —
// parse_shard_request_block strips the shard framing and delegates to
// parse_request_block, so the two protocols cannot drift.
//
// A worker answers with its windowed partial (one candidate per surviving
// work item, already stable-sorted, truncated to top_k):
//
//   sasynth-shard-response v1 ok
//   items <N>            (the worker's own count of the FULL item list — a
//                         mismatch with the coordinator's count means the
//                         nodes disagree on the enumeration and the range
//                         is re-executed locally instead of merged)
//   cancelled <0|1>
//   work_items <W>
//   candidates <C>
//   <C embedded `sasynth-design v1` blobs, 4 lines each>
//   end
//
// or `sasynth-shard-response v1 error <message>` + `end`.
//
// Degradation contract: a dead/slow/faulty peer (fault sites shard.connect,
// shard.read, shard.write), a malformed partial, or an item-count mismatch
// never fails the request — the coordinator re-executes that peer's range
// locally under the request's remaining deadline budget, counted in
// `shard_degraded_total` (and `degraded_total` via fault::note_degraded).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/dse.h"
#include "serve/protocol.h"

namespace sasynth {

inline constexpr const char* kShardRequestMagic = "sasynth-shard v1";
inline constexpr const char* kShardResponseMagic = "sasynth-shard-response v1";

/// One parsed shard work order: the fully resolved inner request plus the
/// item window the worker must evaluate.
struct ShardRequest {
  ServeRequest request;
  std::int64_t item_begin = 0;
  std::int64_t item_end = 0;
};

struct ParsedShardRequest {
  bool ok = false;
  std::string error;
  ShardRequest request;
};

/// Parses a `sasynth-shard v1` block (with or without the trailing `end`).
/// Strict like parse_request_block: a missing/duplicate/garbled shard_items
/// line, a bad window, or any inner-request error yields ok=false.
ParsedShardRequest parse_shard_request_block(const std::string& block);

/// Serializes a shard work order. `request.dse` is rendered through the
/// existing canonical option set (min_util/auto_relax included as-is — the
/// caller pins the relax round before formatting). deadline_ms < 0 omits
/// the line.
std::string format_shard_request_block(const ServeRequest& request,
                                       std::int64_t item_begin,
                                       std::int64_t item_end,
                                       std::int64_t deadline_ms);

/// One worker's windowed partial result.
struct ShardPartial {
  bool ok = false;
  std::string error;          ///< set when ok == false
  std::int64_t total_items = 0;  ///< the worker's full item-list count
  std::int64_t work_items = 0;   ///< window items actually dispatched
  bool cancelled = false;        ///< the worker's token fired mid-window
  std::vector<DesignPoint> designs;  ///< sorted, truncated to top_k
};

std::string format_shard_response(const ShardPartial& partial);
std::string format_shard_error_response(const std::string& message);

/// Parses a worker response; every design blob is validated against `nest`
/// (DesignLoadMode::kStrict), so a corrupt peer degrades instead of feeding
/// the merge garbage.
ShardPartial parse_shard_response(const std::string& text,
                                  const LoopNest& nest);

struct ShardOptions {
  /// Worker endpoints, "host:port" each (numeric IPv4 or "localhost" —
  /// sasynthd binds loopback only, so a shard fleet is co-located by
  /// design; remote fleets front workers with a real ingress). Empty
  /// disables the tier.
  std::vector<std::string> peers;
  /// Per-step (connect / write / read) bound on peer I/O, milliseconds;
  /// 0 = unbounded. A stalled peer costs at most this much before its range
  /// degrades to local re-execution.
  std::int64_t io_timeout_ms = 30000;
};

/// Validates and splits a "host:port,host:port,..." flag value. Returns an
/// error message or "" (with the peers appended to `out`).
std::string parse_peer_list(const std::string& spec,
                            std::vector<std::string>* out);

/// The coordinator: a drop-in replacement for DesignSpaceExplorer::explore
/// that fans phase 1 out over the peer fleet and runs phase 2 locally on
/// the merged top-K. Stateless beyond its options; explore() is thread-safe
/// and callable from scheduler pool tasks (it spawns one short-lived thread
/// per nonempty range).
class ShardCoordinator {
 public:
  explicit ShardCoordinator(ShardOptions options);

  bool enabled() const { return !options_.peers.empty(); }
  int num_peers() const { return static_cast<int>(options_.peers.size()); }
  const ShardOptions& options() const { return options_; }

  /// Sharded two-phase DSE for one resolved request. Mirrors
  /// DesignSpaceExplorer::explore exactly — including the auto_relax_util
  /// retry loop, which must be driven globally (a per-worker relax decision
  /// would depend on where the range boundaries fell): each round fans the
  /// full item list out at one utilization floor, and only a globally empty
  /// round relaxes. `request.dse.cancel` governs both the peer RPC budget
  /// and local fallbacks; a fired token yields DseStatus::kCancelled with
  /// the best-so-far merge, same as in-process.
  DseResult explore(const ServeRequest& request, const LoopNest& nest) const;

 private:
  /// One utilization round: split, fan out, degrade failed ranges to local
  /// re-execution, merge. Appends `cancelled` into *cancelled (never
  /// clears it).
  std::vector<DseCandidate> run_round(const ServeRequest& request,
                                      const LoopNest& nest, double util,
                                      DseStats* stats, bool* cancelled) const;

  /// One peer RPC (connect + send + receive + parse). ok=false on any
  /// transport/protocol failure; never throws.
  ShardPartial call_peer(const std::string& peer, const std::string& block,
                         const LoopNest& nest) const;

  /// Local re-execution of one range (the degradation path).
  std::vector<DseCandidate> local_window(const ServeRequest& request,
                                         const LoopNest& nest, double util,
                                         std::int64_t begin, std::int64_t end,
                                         bool* cancelled) const;

  ShardOptions options_;
};

}  // namespace sasynth
