// Deployment request protocol of the synthesis service (sasynthd): fleet
// selection over a weighted multi-network workload, the serving face of
// src/deploy. Shares the response magic, option vocabulary and framing
// conventions of the synthesis protocol (protocol.h).
//
// A deploy request is a block of lines:
//
//   sasynth-deploy v1
//   network <name> [weight]   (repeatable, at least one; weight > 0,
//                             default 1.0; names: alexnet|vgg16|googlenet|
//                             tiny — see nn::parse_network_name)
//   fleet <K>                 (optional, default 1; how many designs the
//                             fleet may ship, 1..64)
//   device <name>             (optional, default arria10_gt1150)
//   dtype <name>              (optional, default float32)
//   option <key> <value>      (optional, repeatable; same keys as the
//                             synthesis request)
//   deadline_ms <N>           (optional, at most once)
//   end
//
// A successful response carries the K selected designs (each as an
// embeddable `sasynth-design v1` blob at its realized pseudo-P&R clock),
// the per-network assignment, and the weighted objective:
//
//   sasynth-response v1 ok
//   fleet <K> weighted_latency_ms=<f> weighted_gops=<f>
//   design <i> freq_mhz=<f>
//   sasynth-design v1
//   mapping row=<l> col=<l> vec=<l>
//   shape <rows> <cols> <vec>
//   middle <s_0> ... <s_n-1>
//   ... (K design stanzas) ...
//   assign <network> weight=<g> design=<i> latency_ms=<f> gops=<f>
//   ... (one assign line per network, workload order) ...
//   end
//
// Error / retry / timeout verdicts reuse the synthesis formatters
// (single-line verdict + `end`; deploy timeout messages are fixed strings).
// Like synthesis responses, a deploy response is a pure function of the
// request: the server answers cache hits and fresh selections through the
// same deploy::evaluate_fleet call, so the bytes never differ.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/dse.h"
#include "deploy/fleet.h"
#include "fpga/datatype.h"
#include "fpga/device.h"

namespace sasynth {

inline constexpr const char* kDeployRequestMagic = "sasynth-deploy v1";

/// One `network <name> [weight]` line, resolved.
struct DeployWorkloadItem {
  std::string network;  ///< canonical name (validated at parse time)
  double weight = 1.0;
};

/// One deploy request, fully resolved (defaults applied).
struct DeployRequest {
  std::vector<DeployWorkloadItem> workload;
  int fleet_size = 1;
  FpgaDevice device;
  DataType dtype = DataType::kFloat32;
  DseOptions dse;
  /// Same semantics as ServeRequest::deadline_ms (execution policy, never
  /// part of the canonical text).
  std::int64_t deadline_ms = -1;

  DeployRequest();
};

struct ParsedDeployRequest {
  bool ok = false;
  std::string error;
  DeployRequest request;
};

/// Parses a full deploy block (with or without the trailing `end`).
/// Never throws; unknown fields/networks/options produce ok=false.
ParsedDeployRequest parse_deploy_request_block(const std::string& block);

/// Canonical text of the complete deploy tuple (workload in request order,
/// fleet size, device, dtype, options) — DesignCache key material. Leads
/// with a `deploy` line so deploy keys can never collide with synthesis
/// keys, which lead with `layer`. `dse.jobs` and the deadline are excluded
/// (execution policy, same rule as canonical_request_text).
std::string canonical_deploy_request_text(const DeployRequest& request);

/// Cache key material for the i-th design of a K-design fleet: the
/// canonical text plus a `fleet_design i/K` discriminator line. The server
/// stores each selected design under its own derived key and only answers
/// from cache when all K lookups hit.
std::string deploy_cache_entry_text(const std::string& canonical,
                                    int index, int fleet_size);

/// Formats the ok payload from an evaluated fleet (result.valid must hold).
std::string format_deploy_ok_response(const deploy::FleetResult& result);

}  // namespace sasynth
